(** Execution histories and the conflict-serializability check.

    Section 2 of the paper asserts that rollbacks "do not interfere with
    the serializability of the two-phase protocol"; this module is the
    oracle our property tests use to hold the whole engine to that claim.

    We record, per transaction and entity, the interval during which the
    lock was held (shared intervals are reads, exclusive intervals are
    writes — the store-visible write happens at the unlock that installs
    the final local copy). Work undone by a rollback is {!discard}ed: a
    released entity was never observed by anyone (the local copy dies, the
    global value never changed), so it must leave no trace in the history.
    Serializability of the {e committed} transactions is then acyclicity
    of the precedence graph over conflicting intervals. *)

type txn = int
type entity = Prb_storage.Store.entity
type mode = Prb_txn.Lock_mode.t

type interval = {
  txn : txn;
  entity : entity;
  mode : mode;
  granted_at : int;
  released_at : int;
}

type t

val create : unit -> t

val note_grant : t -> tick:int -> txn -> entity -> mode -> unit
(** A lock was granted (an upgrade re-grant replaces the open shared
    interval with an exclusive one). *)

val note_release : t -> tick:int -> txn -> entity -> unit
(** The lock was released at unlock/commit time: closes the open
    interval. Ignored when no interval is open (shared locks released by a
    rollback are discarded instead). *)

val discard : t -> txn -> entity -> unit
(** Partial rollback released this entity: erase the open interval. *)

val discard_txn : t -> txn -> unit
(** Total removal of a transaction: erase its open intervals and any
    closed-but-uncommitted ones. *)

val commit_txn : t -> txn -> unit
(** Transaction finished; its closed intervals become part of the
    committed history. @raise Invalid_argument if it still has an open
    interval. *)

val committed : t -> interval list
(** Committed intervals, sorted by grant tick then txn. *)

val precedence_graph : t -> Prb_graph.Digraph.t
(** Vertices: committed transactions. Edge [a -> b] when [a] and [b] hold
    conflicting locks on an entity and [a]'s interval ends before [b]'s
    begins. *)

val overlapping_conflicts : t -> (interval * interval) list
(** Conflicting committed intervals that overlap in time — impossible
    under a correct lock manager; non-empty means the engine is broken. *)

val serializable : t -> bool
(** No overlapping conflicts and an acyclic precedence graph. *)

val equivalent_serial_order : t -> txn list option
(** A topological order witnessing serializability, when it holds. *)
