lib/history/history.mli: Prb_graph Prb_storage Prb_txn
