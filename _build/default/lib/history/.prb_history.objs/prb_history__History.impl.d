lib/history/history.ml: Hashtbl List Prb_graph Prb_storage Prb_txn String
