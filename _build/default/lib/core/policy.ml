type t = Min_cost | Ordered_min_cost | Youngest | Requester | Random_victim

let equal a b =
  match (a, b) with
  | Min_cost, Min_cost
  | Ordered_min_cost, Ordered_min_cost
  | Youngest, Youngest
  | Requester, Requester
  | Random_victim, Random_victim -> true
  | (Min_cost | Ordered_min_cost | Youngest | Requester | Random_victim), _ ->
      false

let to_string = function
  | Min_cost -> "min-cost"
  | Ordered_min_cost -> "ordered"
  | Youngest -> "youngest"
  | Requester -> "requester"
  | Random_victim -> "random"

let of_string = function
  | "min-cost" -> Some Min_cost
  | "ordered" -> Some Ordered_min_cost
  | "youngest" -> Some Youngest
  | "requester" -> Some Requester
  | "random" -> Some Random_victim
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all = [ Min_cost; Ordered_min_cost; Youngest; Requester; Random_victim ]
