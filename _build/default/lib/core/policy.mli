(** Victim-selection policies for deadlock removal (Sections 3.1–3.2).

    - [Min_cost]: the paper's pure optimisation — break every cycle at
      minimum total rollback cost, with no other constraint. Exposed to
      {e potentially infinite mutual preemption} (Figure 2).
    - [Ordered_min_cost]: Theorem 2's cure — only transactions that
      entered the system {e after} the conflict-causing requester are
      preemptible (falling back to the requester itself when none is);
      minimise cost within that set. Livelock-free.
    - [Youngest]: classic heuristic of [7,10]: always preempt the
      latest-arrived member of each cycle.
    - [Requester]: always roll back the transaction whose request closed
      the cycle(s) — simple, livelock-free, usually not cost-optimal.
    - [Random_victim]: uniform choice, the control arm of the ablation. *)

type t = Min_cost | Ordered_min_cost | Youngest | Requester | Random_victim

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val of_string : string -> t option

val all : t list
(** Every policy, for the ablation sweeps. *)
