lib/core/resolver.ml: Array List Policy Prb_graph Prb_storage Prb_util
