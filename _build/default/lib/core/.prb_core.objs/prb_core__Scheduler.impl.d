lib/core/scheduler.ml: Fmt Hashtbl List Logs Policy Prb_history Prb_lock Prb_rollback Prb_storage Prb_txn Prb_util Prb_wfg Printf Resolver String
