lib/core/resolver.mli: Policy Prb_storage Prb_util
