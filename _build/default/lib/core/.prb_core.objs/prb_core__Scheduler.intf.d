lib/core/scheduler.mli: Format Policy Prb_history Prb_lock Prb_rollback Prb_storage Prb_txn Prb_wfg Resolver
