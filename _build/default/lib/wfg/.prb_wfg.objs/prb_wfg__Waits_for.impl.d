lib/wfg/waits_for.ml: Buffer Fmt Hashtbl List Prb_graph Prb_storage Printf
