lib/wfg/waits_for.mli: Format Prb_storage
