lib/lock/lock_table.mli: Prb_storage Prb_txn
