lib/lock/lock_table.ml: Hashtbl List Prb_storage Prb_txn
