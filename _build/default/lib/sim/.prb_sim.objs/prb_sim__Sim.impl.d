lib/sim/sim.ml: Array Float Fmt List Option Prb_core Prb_history Prb_storage Prb_util Prb_workload
