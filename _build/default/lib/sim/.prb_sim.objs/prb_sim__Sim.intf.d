lib/sim/sim.mli: Format Prb_core Prb_storage Prb_txn Prb_workload
