(** Mutable undirected graph over integer vertices, for the paper's
    state-dependency graphs (Section 4): vertices are lock states, edges
    record value-destroying writes, and the *articulation points* identify
    the well-defined (restorable) states (Theorem 4, Corollary 1). *)

type t

val create : unit -> t

val copy : t -> t

val add_vertex : t -> int -> unit
val remove_vertex : t -> int -> unit
val mem_vertex : t -> int -> bool

val add_edge : t -> int -> int -> unit
(** Undirected, simple; self-loops are stored but never affect articulation
    points. *)

val remove_edge : t -> int -> int -> unit
val mem_edge : t -> int -> int -> bool

val neighbours : t -> int -> int list
(** Ascending; a self-loop lists the vertex once. *)

val degree : t -> int -> int

val vertices : t -> int list
val edges : t -> (int * int) list
(** Each undirected edge reported once as [(min, max)]. *)

val n_vertices : t -> int
val n_edges : t -> int

val articulation_points : t -> int list
(** Hopcroft–Tarjan cut vertices, ascending. A vertex is an articulation
    point iff removing it increases the number of connected components. *)

val connected_components : t -> int list list
(** Each sorted ascending; components ordered by smallest member. *)

val is_connected : t -> bool
(** Vacuously true for the empty graph. *)
