(** Minimum-cost vertex cut sets for deadlock removal (paper Section 3.2).

    With shared and exclusive locks one wait response may close many cycles
    at once — all passing through the requesting transaction — and optimal
    deadlock removal asks for a set of transactions of minimum total
    rollback cost whose removal breaks every cycle. The paper notes this is
    (believed) NP-complete, kin to feedback vertex set; accordingly we
    provide an exact exponential solver for the small instances real
    deadlocks produce, and a greedy heuristic for scale, and benchmark one
    against the other (experiment E8/fig3). *)

type instance = {
  cycles : int list list;  (** each cycle as a list of vertex ids *)
  cost : int -> float;  (** rollback cost of removing a vertex *)
}

val exact : ?node_budget:int -> instance -> int list option
(** Branch-and-bound minimum-cost hitting set over the cycles. Returns the
    chosen vertices sorted ascending, [None] only if the search exceeds
    [node_budget] expansions (default [1_000_000]) without proving an
    optimum — callers then fall back to {!greedy}. An instance with no
    cycles yields [Some []]. Deterministic: ties broken by vertex id. *)

val greedy : instance -> int list
(** Classic set-cover heuristic: repeatedly remove the vertex with the best
    (cycles hit / cost) ratio until no cycle survives. ln(n)-approximate
    for hitting set; linear-ish in practice. *)

val total_cost : instance -> int list -> float
(** Sum of costs of a vertex set. *)

val is_cut : instance -> int list -> bool
(** Does the set intersect every cycle? *)
