module Iset = Set.Make (Int)

type instance = { cycles : int list list; cost : int -> float }

let total_cost t set = List.fold_left (fun acc v -> acc +. t.cost v) 0.0 set

let is_cut t set =
  let s = Iset.of_list set in
  List.for_all (fun cycle -> List.exists (fun v -> Iset.mem v s) cycle) t.cycles

let candidate_vertices t =
  List.fold_left (fun acc c -> List.fold_left (fun a v -> Iset.add v a) acc c)
    Iset.empty t.cycles
  |> Iset.elements

(* Cycles not yet hit by [chosen]. *)
let surviving t chosen =
  List.filter (fun c -> not (List.exists (fun v -> Iset.mem v chosen) c)) t.cycles

let greedy t =
  let rec loop chosen =
    match surviving t chosen with
    | [] -> Iset.elements chosen
    | alive ->
        let verts = candidate_vertices { t with cycles = alive } in
        let score v =
          let hits =
            List.length (List.filter (List.exists (fun w -> w = v)) alive)
          in
          let c = t.cost v in
          (* Best hits-per-cost; guard against zero-cost vertices. *)
          float_of_int hits /. Float.max c 1e-9
        in
        let best =
          List.fold_left
            (fun acc v ->
              match acc with
              | None -> Some (v, score v)
              | Some (_, s) as keep ->
                  let sv = score v in
                  if sv > s +. 1e-12 then Some (v, sv) else keep)
            None verts
        in
        (match best with
        | None -> Iset.elements chosen (* unreachable: alive cycles non-empty *)
        | Some (v, _) -> loop (Iset.add v chosen))
  in
  loop Iset.empty

exception Budget_exhausted

let exact ?(node_budget = 1_000_000) t =
  (* Branch and bound on the first surviving cycle: one branch per vertex of
     that cycle. Upper bound initialised by the greedy solution. *)
  let best_set = ref (greedy t) in
  let best_cost = ref (total_cost t !best_set) in
  let nodes = ref 0 in
  let rec search chosen chosen_cost =
    incr nodes;
    if !nodes > node_budget then raise Budget_exhausted;
    if chosen_cost < !best_cost -. 1e-12 then
      match surviving t chosen with
      | [] ->
          best_set := Iset.elements chosen;
          best_cost := chosen_cost
      | cycle :: _ ->
          (* Branch on each vertex of the cheapest-to-describe cycle;
             dedupe and ascend for determinism. *)
          let verts = Iset.elements (Iset.of_list cycle) in
          List.iter
            (fun v ->
              if not (Iset.mem v chosen) then
                search (Iset.add v chosen) (chosen_cost +. t.cost v))
            verts
  in
  match search Iset.empty 0.0 with
  | () -> Some !best_set
  | exception Budget_exhausted -> None
