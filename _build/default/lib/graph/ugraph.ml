module Iset = Set.Make (Int)

type t = { adj : (int, Iset.t ref) Hashtbl.t }

let create () = { adj = Hashtbl.create 64 }

let copy t =
  let out = Hashtbl.create (Hashtbl.length t.adj) in
  Hashtbl.iter (fun k v -> Hashtbl.replace out k (ref !v)) t.adj;
  { adj = out }

let add_vertex t v =
  if not (Hashtbl.mem t.adj v) then Hashtbl.replace t.adj v (ref Iset.empty)

let mem_vertex t v = Hashtbl.mem t.adj v

let nbrs t v =
  match Hashtbl.find_opt t.adj v with None -> Iset.empty | Some s -> !s

let remove_vertex t v =
  if mem_vertex t v then begin
    Iset.iter
      (fun w ->
        match Hashtbl.find_opt t.adj w with
        | Some s -> s := Iset.remove v !s
        | None -> ())
      (nbrs t v);
    Hashtbl.remove t.adj v
  end

let add_edge t u v =
  add_vertex t u;
  add_vertex t v;
  let su = Hashtbl.find t.adj u in
  su := Iset.add v !su;
  let sv = Hashtbl.find t.adj v in
  sv := Iset.add u !sv

let remove_edge t u v =
  (match Hashtbl.find_opt t.adj u with
  | Some s -> s := Iset.remove v !s
  | None -> ());
  match Hashtbl.find_opt t.adj v with
  | Some s -> s := Iset.remove u !s
  | None -> ()

let mem_edge t u v = Iset.mem v (nbrs t u)

let neighbours t v = Iset.elements (nbrs t v)
let degree t v = Iset.cardinal (nbrs t v)

let vertices t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.adj [] |> List.sort compare

let edges t =
  Hashtbl.fold
    (fun u s acc ->
      Iset.fold (fun v acc -> if u <= v then (u, v) :: acc else acc) !s acc)
    t.adj []
  |> List.sort compare

let n_vertices t = Hashtbl.length t.adj
let n_edges t = List.length (edges t)

(* Hopcroft–Tarjan, recursive DFS. Depth is bounded by the number of lock
   states of one transaction, which is small; recursion is fine. *)
let articulation_points t =
  let disc = Hashtbl.create 64 in
  let low = Hashtbl.create 64 in
  let cut = Hashtbl.create 16 in
  let timer = ref 0 in
  let rec dfs parent v =
    Hashtbl.replace disc v !timer;
    Hashtbl.replace low v !timer;
    incr timer;
    let children = ref 0 in
    Iset.iter
      (fun w ->
        if w <> v then
          if not (Hashtbl.mem disc w) then begin
            incr children;
            dfs (Some v) w;
            Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find low w));
            (match parent with
            | Some _ when Hashtbl.find low w >= Hashtbl.find disc v ->
                Hashtbl.replace cut v ()
            | _ -> ())
          end
          else if parent <> Some w then
            Hashtbl.replace low v (min (Hashtbl.find low v) (Hashtbl.find disc w)))
      (nbrs t v);
    if parent = None && !children > 1 then Hashtbl.replace cut v ()
  in
  List.iter (fun v -> if not (Hashtbl.mem disc v) then dfs None v) (vertices t);
  Hashtbl.fold (fun v () acc -> v :: acc) cut [] |> List.sort compare

let connected_components t =
  let seen = Hashtbl.create 64 in
  let component v0 =
    let acc = ref [] in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        acc := v :: !acc;
        Iset.iter visit (nbrs t v)
      end
    in
    visit v0;
    List.sort compare !acc
  in
  List.filter_map
    (fun v -> if Hashtbl.mem seen v then None else Some (component v))
    (vertices t)

let is_connected t = List.length (connected_components t) <= 1
