lib/graph/ugraph.mli:
