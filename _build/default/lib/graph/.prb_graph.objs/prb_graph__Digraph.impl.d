lib/graph/digraph.ml: Hashtbl Int List Set
