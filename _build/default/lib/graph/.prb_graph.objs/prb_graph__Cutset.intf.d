lib/graph/cutset.mli:
