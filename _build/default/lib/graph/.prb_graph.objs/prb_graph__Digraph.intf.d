lib/graph/digraph.mli: Hashtbl
