lib/graph/ugraph.ml: Hashtbl Int List Set
