lib/graph/cutset.ml: Float Int List Set
