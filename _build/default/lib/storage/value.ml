type t = Int of int | Text of string | Bool of bool

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> x = y
  | (Int _ | Text _ | Bool _), _ -> false

let compare a b =
  let rank = function Int _ -> 0 | Text _ -> 1 | Bool _ -> 2 in
  match (a, b) with
  | Int x, Int y -> Stdlib.compare x y
  | Text x, Text y -> String.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Text s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b

let to_string v = Fmt.str "%a" pp v

let int n = Int n
let text s = Text s
let bool b = Bool b

let string_hash s =
  (* FNV-1a, 64-bit folded into OCaml's int range; deterministic across
     runs unlike [Hashtbl.hash] seeds under randomization. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let as_int = function
  | Int n -> n
  | Bool b -> if b then 1 else 0
  | Text s -> string_hash s

let lift2 f a b = Int (f (as_int a) (as_int b))

let add = lift2 ( + )
let sub = lift2 ( - )
let mul = lift2 ( * )
let neg v = Int (-as_int v)
let min_v = lift2 min
let max_v = lift2 max

let mix v =
  let z = Int64.of_int (as_int v) in
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  let z = Int64.(logxor z (shift_right_logical z 31)) in
  Int (Int64.to_int z land max_int)
