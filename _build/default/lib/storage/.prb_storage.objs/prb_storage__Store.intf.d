lib/storage/store.mli: Value
