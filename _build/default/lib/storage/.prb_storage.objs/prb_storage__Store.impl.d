lib/storage/store.ml: Hashtbl List String Value
