lib/storage/value.ml: Char Fmt Int64 Stdlib String
