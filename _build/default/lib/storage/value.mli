(** Values stored in global entities and transaction-local variables.

    The paper's analysis is value-agnostic; a small concrete value type
    keeps programs replayable (rollback re-executes operations and must
    reproduce identical states) and lets tests compare states exactly. *)

type t = Int of int | Text of string | Bool of bool

val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int : int -> t
val text : string -> t
val bool : bool -> t

val as_int : t -> int
(** Numeric view used by arithmetic in the expression language: [Int n] is
    [n], [Bool b] is 0/1, [Text s] is a deterministic hash of [s]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t
val min_v : t -> t -> t
val max_v : t -> t -> t

val mix : t -> t
(** A cheap injective-ish integer mixer (splitmix64 finaliser truncated to
    OCaml int), used by synthetic workloads so written values depend on
    read values in a non-trivial, deterministic way. *)
