(** Hand-shaped domain workloads used by the examples and integration
    tests: the kinds of transactions the paper's introduction motivates
    (concurrent queries and updates over a shared database). *)

val bank_store : n_accounts:int -> balance:int -> Prb_storage.Store.t
(** Accounts ["acct000" ...], each holding [balance]. *)

val account_name : int -> string

val transfer :
  name:string -> from_acct:int -> to_acct:int -> amount:int -> Prb_txn.Program.t
(** Debit one account, credit another — the classic deadlock-prone pair
    when two transfers run in opposite directions. Locks both accounts
    exclusively, in argument order. *)

val audit : name:string -> accounts:int list -> Prb_txn.Program.t
(** Shared-lock all listed accounts and total them into a local — the
    long reader that turns Section 3.2's multi-cycle deadlocks on. *)

val balance_invariant :
  n_accounts:int -> balance:int -> Prb_storage.Store.Constraint.t
(** Transfers preserve the total: Σ balances = n * initial. *)

val inventory_store :
  n_items:int -> stock:int -> Prb_storage.Store.t
(** Items ["item000" ...] with a stock counter each. *)

val item_name : int -> string

val order :
  name:string -> items:(int * int) list -> Prb_txn.Program.t
(** Reserve quantities from several items (exclusive locks in argument
    order): multi-entity updates whose lock order the caller controls —
    opposite orders collide. *)

val restock : name:string -> item:int -> quantity:int -> Prb_txn.Program.t

(** Order-entry, TPC-C-flavoured: warehouses hold stock and a running
    year-to-date total, districts hold a next-order-id counter. A
    new-order transaction touches its district counter (a famous hot
    spot), several stock entries, and the warehouse total — the layered
    contention pattern that makes victim choice and rollback depth matter
    in practice. *)

val order_entry_store :
  n_warehouses:int -> districts_per_warehouse:int -> items_per_warehouse:int ->
  stock:int -> Prb_storage.Store.t

val warehouse_ytd : int -> Prb_storage.Store.entity
val district_counter : warehouse:int -> district:int -> Prb_storage.Store.entity
val stock_entry : warehouse:int -> item:int -> Prb_storage.Store.entity

val new_order :
  name:string ->
  warehouse:int ->
  district:int ->
  lines:(int * int) list ->
  Prb_txn.Program.t
(** [lines] are (item, quantity) pairs within the warehouse, deduplicated
    by the caller. Locks: district counter (X), each line's stock (X),
    warehouse YTD (X, last — the hot total is held briefly). *)

val stock_level :
  name:string -> warehouse:int -> items:int list -> Prb_txn.Program.t
(** Read-only stock inspection: shared locks only. *)

