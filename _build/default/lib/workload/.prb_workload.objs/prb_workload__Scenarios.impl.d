lib/workload/scenarios.ml: List Prb_storage Prb_txn Printf
