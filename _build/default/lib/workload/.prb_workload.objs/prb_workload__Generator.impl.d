lib/workload/generator.ml: Fmt Hashtbl List Prb_storage Prb_txn Prb_util Printf
