lib/workload/scenarios.mli: Prb_storage Prb_txn
