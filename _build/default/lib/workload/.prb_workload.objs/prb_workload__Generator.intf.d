lib/workload/generator.mli: Prb_storage Prb_txn Prb_util
