module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr

let account_name i = Printf.sprintf "acct%03d" i

let bank_store ~n_accounts ~balance =
  let store = Store.create () in
  for i = 0 to n_accounts - 1 do
    Store.define store (account_name i) (Value.int balance)
  done;
  store

let transfer ~name ~from_acct ~to_acct ~amount =
  let src = account_name from_acct and dst = account_name to_acct in
  Program.make ~name
    ~locals:[ ("src_bal", Value.int 0); ("dst_bal", Value.int 0) ]
    [
      Program.lock_x src;
      Program.read src "src_bal";
      Program.write src Expr.(var "src_bal" - int amount);
      Program.lock_x dst;
      Program.read dst "dst_bal";
      Program.write dst Expr.(var "dst_bal" + int amount);
      Program.unlock src;
      Program.unlock dst;
    ]

let audit ~name ~accounts =
  let locals = [ ("sum", Value.int 0); ("tmp", Value.int 0) ] in
  let ops =
    List.concat_map
      (fun i ->
        [
          Program.lock_s (account_name i);
          Program.read (account_name i) "tmp";
          Program.assign "sum" Expr.(var "sum" + var "tmp");
        ])
      accounts
    @ List.map (fun i -> Program.unlock (account_name i)) accounts
  in
  Program.make ~name ~locals ops

let balance_invariant ~n_accounts ~balance =
  Store.Constraint.sum_preserved ~name:"bank total"
    (List.init n_accounts account_name)
    ~expected:(n_accounts * balance)

let item_name i = Printf.sprintf "item%03d" i

let inventory_store ~n_items ~stock =
  let store = Store.create () in
  for i = 0 to n_items - 1 do
    Store.define store (item_name i) (Value.int stock)
  done;
  store

let order ~name ~items =
  let locals = [ ("stock", Value.int 0) ] in
  let ops =
    List.concat_map
      (fun (item, qty) ->
        [
          Program.lock_x (item_name item);
          Program.read (item_name item) "stock";
          Program.write (item_name item)
            Expr.(Max (var "stock" - int qty, int 0));
        ])
      items
    @ List.map (fun (item, _) -> Program.unlock (item_name item)) items
  in
  Program.make ~name ~locals ops

let restock ~name ~item ~quantity =
  Program.make ~name
    ~locals:[ ("stock", Value.int 0) ]
    [
      Program.lock_x (item_name item);
      Program.read (item_name item) "stock";
      Program.write (item_name item) Expr.(var "stock" + int quantity);
      Program.unlock (item_name item);
    ]

(* --- order entry ------------------------------------------------------ *)

let warehouse_ytd w = Printf.sprintf "w%02d_ytd" w
let district_counter ~warehouse ~district =
  Printf.sprintf "w%02d_d%02d_next" warehouse district
let stock_entry ~warehouse ~item = Printf.sprintf "w%02d_s%03d" warehouse item

let order_entry_store ~n_warehouses ~districts_per_warehouse
    ~items_per_warehouse ~stock =
  let store = Store.create () in
  for w = 0 to n_warehouses - 1 do
    Store.define store (warehouse_ytd w) (Value.int 0);
    for d = 0 to districts_per_warehouse - 1 do
      Store.define store
        (district_counter ~warehouse:w ~district:d)
        (Value.int 1)
    done;
    for i = 0 to items_per_warehouse - 1 do
      Store.define store (stock_entry ~warehouse:w ~item:i) (Value.int stock)
    done
  done;
  store

let new_order ~name ~warehouse ~district ~lines =
  let counter = district_counter ~warehouse ~district in
  let locals =
    [ ("order_id", Value.int 0); ("stock", Value.int 0); ("ytd", Value.int 0) ]
  in
  let total_qty = List.fold_left (fun acc (_, q) -> acc + q) 0 lines in
  let ops =
    [
      (* the hot district counter: take the order id *)
      Program.lock_x counter;
      Program.read counter "order_id";
      Program.write counter Expr.(var "order_id" + int 1);
    ]
    @ List.concat_map
        (fun (item, qty) ->
          let s = stock_entry ~warehouse ~item in
          [
            Program.lock_x s;
            Program.read s "stock";
            Program.write s Expr.(Max (var "stock" - int qty, int 0));
          ])
        lines
    @ [
        (* the warehouse-wide total, locked last and held briefly *)
        Program.lock_x (warehouse_ytd warehouse);
        Program.read (warehouse_ytd warehouse) "ytd";
        Program.write (warehouse_ytd warehouse)
          Expr.(var "ytd" + int total_qty);
        Program.unlock (warehouse_ytd warehouse);
        Program.unlock counter;
      ]
    @ List.map (fun (item, _) -> Program.unlock (stock_entry ~warehouse ~item)) lines
  in
  Program.make ~name ~locals ops

let stock_level ~name ~warehouse ~items =
  let locals = [ ("low", Value.int 0); ("stock", Value.int 0) ] in
  let ops =
    List.concat_map
      (fun item ->
        let s = stock_entry ~warehouse ~item in
        [
          Program.lock_s s;
          Program.read s "stock";
          Program.assign "low" Expr.(Min (var "low", var "stock"));
        ])
      items
    @ List.map (fun item -> Program.unlock (stock_entry ~warehouse ~item)) items
  in
  Program.make ~name ~locals ops
