module Value = Prb_storage.Value

type error = { line : int; message : string }

let pp_error ppf e = Fmt.pf ppf "line %d: %s" e.line e.message

exception Fail of string

(* --- Lexer ------------------------------------------------------------ *)

type token =
  | Ident of string
  | Int of int
  | Str of string
  | Lparen
  | Rparen
  | Comma
  | Plus
  | Minus
  | Star
  | Assign (* := *)
  | Eq

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_'

let is_digit c = c >= '0' && c <= '9'

let tokenize line =
  let n = String.length line in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let read_int () =
    let start = !i in
    while !i < n && is_digit line.[!i] do
      incr i
    done;
    int_of_string (String.sub line start (!i - start))
  in
  while !i < n do
    let c = line.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n (* comment to end of line *)
    else if is_digit c then emit (Int (read_int ()))
    else if c = '-' && !i + 1 < n && is_digit line.[!i + 1] then begin
      incr i;
      emit (Int (-read_int ()))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char line.[!i] do
        incr i
      done;
      emit (Ident (String.sub line start (!i - start)))
    end
    else if c = '"' then begin
      (* OCaml-style quoted string as printed by %S *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match line.[!i] with
        | '"' -> closed := true
        | '\\' when !i + 1 < n ->
            incr i;
            Buffer.add_char buf
              (match line.[!i] with
              | 'n' -> '\n'
              | 't' -> '\t'
              | '\\' -> '\\'
              | '"' -> '"'
              | other -> other)
        | other -> Buffer.add_char buf other);
        incr i
      done;
      if not !closed then raise (Fail "unterminated string literal");
      emit (Str (Buffer.contents buf))
    end
    else begin
      (match c with
      | '(' -> emit Lparen
      | ')' -> emit Rparen
      | ',' -> emit Comma
      | '+' -> emit Plus
      | '*' -> emit Star
      | '-' -> emit Minus
      | ':' ->
          if !i + 1 < n && line.[!i + 1] = '=' then begin
            incr i;
            emit Assign
          end
          else raise (Fail "expected ':=' ")
      | '=' -> emit Eq
      | other -> raise (Fail (Printf.sprintf "unexpected character %C" other)));
      incr i
    end
  done;
  List.rev !tokens

(* --- Token-stream parser ---------------------------------------------- *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let next s =
  match s.toks with
  | [] -> raise (Fail "unexpected end of line")
  | t :: rest ->
      s.toks <- rest;
      t

let expect s t what =
  let got = next s in
  if got <> t then raise (Fail (Printf.sprintf "expected %s" what))

let ident s =
  match next s with
  | Ident x -> x
  | _ -> raise (Fail "expected an identifier")

let at_end s = s.toks = []

let value_literal s =
  match next s with
  | Int n -> Value.int n
  | Str str -> Value.text str
  | Ident "true" -> Value.bool true
  | Ident "false" -> Value.bool false
  | _ -> raise (Fail "expected a value literal")

let rec expr s =
  match next s with
  | Int n -> Expr.Const (Value.int n)
  | Str str -> Expr.Const (Value.text str)
  | Ident "true" -> Expr.Const (Value.bool true)
  | Ident "false" -> Expr.Const (Value.bool false)
  | Ident "min" -> binary_call s (fun a b -> Expr.Min (a, b))
  | Ident "max" -> binary_call s (fun a b -> Expr.Max (a, b))
  | Ident "mix" ->
      expect s Lparen "'('";
      let a = expr s in
      expect s Rparen "')'";
      Expr.Mix a
  | Ident x -> Expr.Var x
  | Lparen -> (
      (* (- a) or (a op b) *)
      match peek s with
      | Some Minus ->
          ignore (next s);
          let a = expr s in
          expect s Rparen "')'";
          Expr.Neg a
      | _ ->
          let a = expr s in
          let op =
            match next s with
            | Plus -> fun x y -> Expr.Add (x, y)
            | Minus -> fun x y -> Expr.Sub (x, y)
            | Star -> fun x y -> Expr.Mul (x, y)
            | _ -> raise (Fail "expected an operator (+, -, *)")
          in
          let b = expr s in
          expect s Rparen "')'";
          op a b)
  | _ -> raise (Fail "expected an expression")

and binary_call s mk =
  expect s Lparen "'('";
  let a = expr s in
  expect s Comma "','";
  let b = expr s in
  expect s Rparen "')'";
  mk a b

let entity_arg s =
  expect s Lparen "'('";
  let e = ident s in
  expect s Rparen "')'";
  e

(* --- Statements -------------------------------------------------------- *)

type statement =
  | Header of string
  | Local of string * Value.t
  | Op of Program.op

(* The printer's "NN:" position labels are stripped before lexing (see
   [logical_lines]); here every line is a bare statement. *)
let statement_of_line line =
  let toks = tokenize line in
  match toks with
  | [] -> None
  | Ident "transaction" :: Ident name :: [] -> Some (Header name)
  | Ident "transaction" :: _ -> raise (Fail "expected: transaction NAME")
  | Ident "local" :: _ ->
      let s = { toks = List.tl toks } in
      let name = ident s in
      expect s Eq "'='";
      let v = value_literal s in
      if not (at_end s) then raise (Fail "trailing tokens after local");
      Some (Local (name, v))
  | Ident "lockX" :: _ ->
      let s = { toks = List.tl toks } in
      let e = entity_arg s in
      if not (at_end s) then raise (Fail "trailing tokens");
      Some (Op (Program.lock_x e))
  | Ident "lockS" :: _ ->
      let s = { toks = List.tl toks } in
      let e = entity_arg s in
      if not (at_end s) then raise (Fail "trailing tokens");
      Some (Op (Program.lock_s e))
  | Ident "unlock" :: _ ->
      let s = { toks = List.tl toks } in
      let e = entity_arg s in
      if not (at_end s) then raise (Fail "trailing tokens");
      Some (Op (Program.unlock e))
  | Ident "write" :: _ ->
      let s = { toks = List.tl toks } in
      expect s Lparen "'('";
      let e = ident s in
      expect s Comma "','";
      let x = expr s in
      expect s Rparen "')'";
      if not (at_end s) then raise (Fail "trailing tokens");
      Some (Op (Program.write e x))
  | Ident v :: Assign :: Ident "read" :: Lparen :: _ ->
      let s = { toks = List.tl (List.tl (List.tl toks)) } in
      (* s now starts at Lparen *)
      expect s Lparen "'('";
      let e = ident s in
      expect s Rparen "')'";
      if not (at_end s) then raise (Fail "trailing tokens");
      Some (Op (Program.read e v))
  | Ident v :: Assign :: _ ->
      let s = { toks = List.tl (List.tl toks) } in
      let x = expr s in
      if not (at_end s) then raise (Fail "trailing tokens");
      Some (Op (Program.assign v x))
  | _ -> raise (Fail "unrecognised statement")

(* Pre-process: drop blank/comment lines; strip the printer's "NN:"
   position labels (digits followed by ':' not part of ':='). *)
let logical_lines text =
  String.split_on_char '\n' text
  |> List.mapi (fun idx line -> (idx + 1, line))
  |> List.filter_map (fun (no, raw) ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then None
         else
           let line =
             (* strip leading "NN:" label *)
             let len = String.length line in
             let rec digits i = if i < len && is_digit line.[i] then digits (i + 1) else i in
             let d = digits 0 in
             if d > 0 && d < len && line.[d] = ':' && not (d + 1 < len && line.[d + 1] = '=')
             then String.trim (String.sub line (d + 1) (len - d - 1))
             else line
           in
           Some (no, line))

exception Fail_at of int * string

let parse_statements text =
  List.map
    (fun (no, line) ->
      match statement_of_line line with
      | Some st -> (no, st)
      | None -> assert false (* blank lines were filtered *)
      | exception Fail message -> raise (Fail_at (no, message)))
    (logical_lines text)

let build_programs statements =
  (* group by Header *)
  let rec groups acc current = function
    | [] -> List.rev (match current with None -> acc | Some c -> c :: acc)
    | (no, Header name) :: rest ->
        let acc = match current with None -> acc | Some c -> c :: acc in
        groups acc (Some (no, name, [], [])) rest
    | (no, Local (v, x)) :: rest -> (
        match current with
        | None -> raise (Fail_at (no, "'local' before 'transaction'"))
        | Some (hno, name, locals, ops) ->
            if ops <> [] then
              raise (Fail_at (no, "locals must precede operations"));
            groups acc (Some (hno, name, (v, x) :: locals, ops)) rest)
    | (no, Op op) :: rest -> (
        match current with
        | None -> raise (Fail_at (no, "operation before 'transaction'"))
        | Some (hno, name, locals, ops) ->
            groups acc (Some (hno, name, locals, op :: ops)) rest)
  in
  let gs = groups [] None statements in
  List.map
    (fun (_, name, locals, ops) ->
      Program.make ~name ~locals:(List.rev locals) (List.rev ops))
    gs

let run_parse text =
  try Ok (build_programs (parse_statements text)) with
  | Fail_at (line, message) -> Error { line; message }
  | Fail message -> Error { line = 0; message }
  | Invalid_argument message -> Error { line = 0; message }

let parse_many text = run_parse text

let parse text =
  match run_parse text with
  | Error e -> Error e
  | Ok [ p ] -> Ok p
  | Ok [] -> Error { line = 0; message = "no transaction found" }
  | Ok _ -> Error { line = 0; message = "expected exactly one transaction" }

let to_string p = Fmt.str "%a" Program.pp p
