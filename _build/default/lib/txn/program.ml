module Value = Prb_storage.Value

type entity = Prb_storage.Store.entity
type var = Expr.var

type op =
  | Lock of Lock_mode.t * entity
  | Unlock of entity
  | Read of entity * var
  | Write of entity * Expr.t
  | Assign of var * Expr.t

type t = {
  name : string;
  locals : (var * Value.t) list;
  ops : op array;
}

let make ~name ~locals ops =
  let names = List.map fst locals in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Program.make: duplicate local variable";
  { name; locals; ops = Array.of_list ops }

type violation =
  | Lock_after_unlock
  | Already_locked of entity
  | Unlock_not_held of entity
  | Read_without_lock of entity
  | Write_without_exclusive of entity
  | Undeclared_variable of var

let pp_violation ppf = function
  | Lock_after_unlock -> Fmt.string ppf "lock request after an unlock"
  | Already_locked e -> Fmt.pf ppf "entity %s already locked" e
  | Unlock_not_held e -> Fmt.pf ppf "unlock of %s which is not held" e
  | Read_without_lock e -> Fmt.pf ppf "read of %s without a lock" e
  | Write_without_exclusive e ->
      Fmt.pf ppf "write of %s without an exclusive lock" e
  | Undeclared_variable v -> Fmt.pf ppf "undeclared local variable %s" v

let validate t =
  let held : (entity, Lock_mode.t) Hashtbl.t = Hashtbl.create 8 in
  let declared = Hashtbl.create 8 in
  List.iter (fun (v, _) -> Hashtbl.replace declared v ()) t.locals;
  let unlocked = ref false in
  let errs = ref [] in
  let report i v = errs := (i, v) :: !errs in
  let check_vars i expr =
    List.iter
      (fun v -> if not (Hashtbl.mem declared v) then report i (Undeclared_variable v))
      (Expr.vars expr)
  in
  Array.iteri
    (fun i op ->
      match op with
      | Lock (mode, e) ->
          if !unlocked then report i Lock_after_unlock;
          if Hashtbl.mem held e then report i (Already_locked e)
          else Hashtbl.replace held e mode
      | Unlock e ->
          if Hashtbl.mem held e then begin
            Hashtbl.remove held e;
            unlocked := true
          end
          else report i (Unlock_not_held e)
      | Read (e, v) ->
          if not (Hashtbl.mem held e) then report i (Read_without_lock e);
          if not (Hashtbl.mem declared v) then report i (Undeclared_variable v)
      | Write (e, expr) ->
          (match Hashtbl.find_opt held e with
          | Some Lock_mode.Exclusive -> ()
          | Some Lock_mode.Shared | None ->
              report i (Write_without_exclusive e));
          check_vars i expr
      | Assign (v, expr) ->
          if not (Hashtbl.mem declared v) then report i (Undeclared_variable v);
          check_vars i expr)
    t.ops;
  match List.rev !errs with [] -> Ok () | errs -> Error errs

let length t = Array.length t.ops

let n_locks t =
  Array.fold_left
    (fun acc op -> match op with Lock _ -> acc + 1 | _ -> acc)
    0 t.ops

let lock_index_of_op t pos =
  let count = ref 0 in
  for i = 0 to min (pos - 1) (Array.length t.ops - 1) do
    match t.ops.(i) with Lock _ -> incr count | _ -> ()
  done;
  !count

let lock_op_position t k =
  let seen = ref 0 in
  let found = ref (-1) in
  Array.iteri
    (fun i op ->
      match op with
      | Lock _ ->
          if !seen = k && !found < 0 then found := i;
          incr seen
      | _ -> ())
    t.ops;
  if !found < 0 then invalid_arg "Program.lock_op_position: no such lock";
  !found

let lock_at t k =
  match t.ops.(lock_op_position t k) with
  | Lock (mode, e) -> (mode, e)
  | _ -> assert false

let lock_state_of_entity t e =
  let rec scan k i =
    if i >= Array.length t.ops then None
    else
      match t.ops.(i) with
      | Lock (_, e') when String.equal e e' -> Some k
      | Lock _ -> scan (k + 1) (i + 1)
      | _ -> scan k (i + 1)
  in
  scan 0 0

let last_lock_position t =
  let found = ref None in
  Array.iteri (fun i op -> match op with Lock _ -> found := Some i | _ -> ()) t.ops;
  !found

let is_three_phase t =
  let n = n_locks t in
  let ok = ref true in
  Array.iteri
    (fun i op ->
      match op with
      | Write _ -> if lock_index_of_op t i < n then ok := false
      | Lock _ | Unlock _ | Read _ | Assign _ -> ())
    t.ops;
  !ok

(* A Read destroys its target local's previous value just like an Assign
   does — the paper's Section 4 monitoring covers "all write operations to
   both local variables and global entities". *)
let written_object = function
  | Write (e, _) -> Some ("G:" ^ e)
  | Assign (v, _) | Read (_, v) -> Some ("L:" ^ v)
  | Lock _ | Unlock _ -> None

let write_profile t =
  let profile : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i op ->
      match written_object op with
      | Some key ->
          let idx = lock_index_of_op t i in
          (match Hashtbl.find_opt profile key with
          | Some l -> l := idx :: !l
          | None -> Hashtbl.replace profile key (ref [ idx ]))
      | None -> ())
    t.ops;
  Hashtbl.fold (fun key l acc -> (key, List.rev !l) :: acc) profile []
  |> List.sort compare

let damage_span t =
  List.fold_left
    (fun acc (_, segments) ->
      match segments with
      | [] -> acc
      | first :: _ ->
          let last = List.fold_left max first segments in
          acc + (last - first))
    0 (write_profile t)

(* Objects read / written by an operation, for commutation analysis.
   Lock/Unlock count as writers of their entity so data operations never
   cross the lock boundary of the entity they touch. *)
let reads_writes = function
  | Lock (_, e) | Unlock e -> ([], [ "G:" ^ e ])
  | Read (e, v) -> ([ "G:" ^ e ], [ "L:" ^ v ])
  | Write (e, expr) -> (List.map (fun v -> "L:" ^ v) (Expr.vars expr), [ "G:" ^ e ])
  | Assign (v, expr) ->
      (List.map (fun u -> "L:" ^ u) (Expr.vars expr), [ "L:" ^ v ])

let commute a b =
  let ra, wa = reads_writes a and rb, wb = reads_writes b in
  let disjoint xs ys = not (List.exists (fun x -> List.mem x ys) xs) in
  disjoint wa rb && disjoint wa wb && disjoint wb ra

let movable = function
  | Write _ | Assign _ -> true
  | Lock _ | Unlock _ | Read _ -> false

(* Is there an earlier operation writing the same object? Only non-first
   writes are clustered leftwards, so an object's first write keeps its
   lock segment and [damage_span] can only shrink. *)
let has_earlier_write ops i =
  match written_object ops.(i) with
  | None -> false
  | Some key ->
      let rec scan j =
        j >= 0 && (written_object ops.(j) = Some key || scan (j - 1))
      in
      scan (i - 1)

let cluster_writes t =
  let ops = Array.copy t.ops in
  let n = Array.length ops in
  (* Bubble non-first writes leftwards towards their object's previous
     write. Each swap is semantics-preserving (operands commute) and
     weakly decreases the damage span, but two commuting writes that both
     want to move left can trade places forever — so the passes are
     bounded: [n] passes let any op travel the whole array, which reaches
     the fixpoint in every non-oscillating case and merely stops early in
     the oscillating ones. *)
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass < n do
    changed := false;
    incr pass;
    for i = 1 to n - 1 do
      if movable ops.(i) && has_earlier_write ops i && commute ops.(i - 1) ops.(i)
      then begin
        let tmp = ops.(i - 1) in
        ops.(i - 1) <- ops.(i);
        ops.(i) <- tmp;
        changed := true
      end
    done
  done;
  { t with ops }

let make_three_phase t =
  match last_lock_position t with
  | None -> t
  | Some _ ->
      let ops = Array.copy t.ops in
      let last_lock () =
        let found = ref 0 in
        Array.iteri
          (fun i op -> match op with Lock _ -> found := i | _ -> ())
          ops;
        !found
      in
      (* Bubble data operations rightwards until they clear the final
         lock request. Passes are bounded like in [cluster_writes]: two
         commuting writes stuck under a common blocker would otherwise
         trade places forever. *)
      let n = Array.length ops in
      let changed = ref true in
      let pass = ref 0 in
      while !changed && !pass < n do
        changed := false;
        incr pass;
        let boundary = last_lock () in
        for i = n - 2 downto 0 do
          if i < boundary && movable ops.(i) && commute ops.(i) ops.(i + 1)
          then begin
            let tmp = ops.(i + 1) in
            ops.(i + 1) <- ops.(i);
            ops.(i) <- tmp;
            changed := true
          end
        done
      done;
      { t with ops }

let hoist_locks t =
  let ops = Array.copy t.ops in
  let n = Array.length ops in
  let is_lock = function Lock _ -> true | Unlock _ | Read _ | Write _ | Assign _ -> false in
  let is_barrier = function
    | Lock _ | Unlock _ -> true
    | Read _ | Write _ | Assign _ -> false
  in
  (* Bubble lock requests leftwards past commuting data operations. Locks
     never swap with locks or unlocks (relative lock order is part of the
     transaction's identity, and crossing an unlock would break the
     two-phase shape) and the commutation check stops a lock at any
     operation touching its entity. Bounded passes as in
     [cluster_writes]. *)
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass < n do
    changed := false;
    incr pass;
    for idx = 1 to n - 1 do
      if
        is_lock ops.(idx)
        && (not (is_barrier ops.(idx - 1)))
        && commute ops.(idx - 1) ops.(idx)
      then begin
        let tmp = ops.(idx - 1) in
        ops.(idx - 1) <- ops.(idx);
        ops.(idx) <- tmp;
        changed := true
      end
    done
  done;
  { t with ops }

let make_acquire_update_release t = make_three_phase (hoist_locks t)

let pp_op ppf = function
  | Lock (m, e) -> Fmt.pf ppf "lock%a(%s)" Lock_mode.pp m e
  | Unlock e -> Fmt.pf ppf "unlock(%s)" e
  | Read (e, v) -> Fmt.pf ppf "%s := read(%s)" v e
  | Write (e, x) -> Fmt.pf ppf "write(%s, %a)" e Expr.pp x
  | Assign (v, x) -> Fmt.pf ppf "%s := %a" v Expr.pp x

let pp ppf t =
  Fmt.pf ppf "@[<v>transaction %s" t.name;
  List.iter (fun (v, x) -> Fmt.pf ppf "@,  local %s = %a" v Value.pp x) t.locals;
  Array.iteri (fun i op -> Fmt.pf ppf "@,  %2d: %a" i pp_op op) t.ops;
  Fmt.pf ppf "@]"

let equal_op a b =
  match (a, b) with
  | Lock (m1, e1), Lock (m2, e2) -> Lock_mode.equal m1 m2 && String.equal e1 e2
  | Unlock e1, Unlock e2 -> String.equal e1 e2
  | Read (e1, v1), Read (e2, v2) -> String.equal e1 e2 && String.equal v1 v2
  | Write (e1, x1), Write (e2, x2) -> String.equal e1 e2 && Expr.equal x1 x2
  | Assign (v1, x1), Assign (v2, x2) -> String.equal v1 v2 && Expr.equal x1 x2
  | (Lock _ | Unlock _ | Read _ | Write _ | Assign _), _ -> false

let equal a b =
  String.equal a.name b.name
  && List.length a.locals = List.length b.locals
  && List.for_all2
       (fun (v1, x1) (v2, x2) -> String.equal v1 v2 && Value.equal x1 x2)
       a.locals b.locals
  && Array.length a.ops = Array.length b.ops
  && Array.for_all2 equal_op a.ops b.ops

let lock_x e = Lock (Lock_mode.Exclusive, e)
let lock_s e = Lock (Lock_mode.Shared, e)
let unlock e = Unlock e
let read e v = Read (e, v)
let write e x = Write (e, x)
let assign v x = Assign (v, x)
