(** A concrete text syntax for transaction programs.

    The format is the one {!Program.pp} prints, so programs round-trip;
    it lets the CLI and tests load transactions from files instead of
    constructing them in OCaml:

    {v
    transaction transfer
      local src_bal = 0
      local dst_bal = 0
      lockX(acct0)
      src_bal := read(acct0)
      write(acct0, (src_bal - 10))
      lockS(acct1)
      dst_bal := read(acct1)
      unlock(acct0)
      unlock(acct1)
    v}

    Statements, one per line (a leading "NN:" position label from the
    printer is accepted and ignored; blank lines and [#]-comments too):

    - [local NAME = VALUE] — declarations first; values are integers,
      [true]/[false], or double-quoted strings
    - [lockX(entity)] / [lockS(entity)] / [unlock(entity)]
    - [VAR := read(entity)]
    - [write(entity, EXPR)]
    - [VAR := EXPR]

    Expressions: integer literals, [true]/[false], quoted strings,
    variables, [(a + b)], [(a - b)], [(a * b)], [(- a)], [min(a, b)],
    [max(a, b)], [mix(a)]. Binary operators require parentheses — no
    precedence climbing, by design (the printer always parenthesises). *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Program.t, error) result
(** Parse one program from a string. The parsed program is {e not}
    validated against the locking discipline — callers compose with
    {!Program.validate} so all errors can be reported together. *)

val parse_many : string -> (Program.t list, error) result
(** Parse a file of several [transaction] blocks. *)

val to_string : Program.t -> string
(** {!Program.pp} as a string; [parse] of the result succeeds with an
    equal program (round-trip, qcheck-tested). *)
