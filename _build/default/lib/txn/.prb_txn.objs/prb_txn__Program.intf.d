lib/txn/program.mli: Expr Format Lock_mode Prb_storage
