lib/txn/program.ml: Array Expr Fmt Hashtbl List Lock_mode Prb_storage String
