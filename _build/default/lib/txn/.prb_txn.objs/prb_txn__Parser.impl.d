lib/txn/parser.ml: Buffer Expr Fmt List Prb_storage Printf Program String
