lib/txn/expr.mli: Format Prb_storage
