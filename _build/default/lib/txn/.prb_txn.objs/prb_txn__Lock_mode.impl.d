lib/txn/lock_mode.ml: Format
