lib/txn/expr.ml: Fmt List Prb_storage String
