lib/txn/lock_mode.mli: Format
