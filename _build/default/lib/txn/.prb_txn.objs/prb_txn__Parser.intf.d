lib/txn/parser.mli: Format Program
