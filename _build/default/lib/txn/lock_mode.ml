type t = Shared | Exclusive

let equal a b =
  match (a, b) with
  | Shared, Shared | Exclusive, Exclusive -> true
  | (Shared | Exclusive), _ -> false

let compatible held requested =
  match (held, requested) with
  | Shared, Shared -> true
  | Shared, Exclusive | Exclusive, Shared | Exclusive, Exclusive -> false

let to_string = function Shared -> "S" | Exclusive -> "X"

let pp ppf t = Format.pp_print_string ppf (to_string t)
