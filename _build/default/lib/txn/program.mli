(** Transaction programs: straight-line sequences of lock, unlock, read,
    write and local-assignment operations (the paper's Section 2 model).

    A program is pure data. Executing it is the scheduler's job
    ({!Prb_core}); re-executing a suffix after a partial rollback is
    guaranteed to reproduce the same states because every computation is an
    {!Expr.t} over locals.

    Terminology used throughout the library (DESIGN.md Section 4):
    the {b lock index} of an operation is the number of [Lock] operations
    strictly before it; {b lock state} [L_i] is the transaction state
    immediately before its i-th lock request; a program with [n] locks has
    lock states [L_0 .. L_n] where rolling back to [L_0] is a total
    restart. Operations with lock index [i] form {b segment} [i]. *)

type entity = Prb_storage.Store.entity
type var = Expr.var

type op =
  | Lock of Lock_mode.t * entity  (** the paper's LS / LX requests *)
  | Unlock of entity  (** two-phase: no Lock may follow *)
  | Read of entity * var  (** [var := local view of entity] *)
  | Write of entity * Expr.t  (** update the transaction-local copy *)
  | Assign of var * Expr.t  (** local computation *)

type t = private {
  name : string;
  locals : (var * Prb_storage.Value.t) list;  (** declared initial values *)
  ops : op array;
}

val make :
  name:string -> locals:(var * Prb_storage.Value.t) list -> op list -> t
(** Build a program. @raise Invalid_argument on duplicate local names. Does
    {e not} validate locking discipline — use {!validate} so callers can
    report all violations at once. *)

(** Locking-discipline violations detected by {!validate}; each is paired
    with the offending operation's index. *)
type violation =
  | Lock_after_unlock  (** breaks the two-phase rule *)
  | Already_locked of entity  (** re-lock (incl. upgrade) of a held entity *)
  | Unlock_not_held of entity
  | Read_without_lock of entity
  | Write_without_exclusive of entity
  | Undeclared_variable of var

val pp_violation : Format.formatter -> violation -> unit

val validate : t -> (unit, (int * violation) list) result
(** Check the locking discipline. A valid program may omit trailing
    unlocks; the system releases remaining locks at termination (paper
    Section 1). *)

(* Analysis *)

val length : t -> int
val n_locks : t -> int
(** Number of [Lock] operations = number of non-initial lock states. *)

val lock_index_of_op : t -> int -> int
(** Lock index (segment) of the operation at a position. *)

val lock_op_position : t -> int -> int
(** [lock_op_position t k] is the position of the k-th (0-based) [Lock].
    @raise Invalid_argument if [k >= n_locks t]. *)

val lock_at : t -> int -> Lock_mode.t * entity
(** Mode and entity of the k-th [Lock]. *)

val lock_state_of_entity : t -> entity -> int option
(** [Some k] when the program's k-th lock request is for this entity —
    rolling back to lock state [k] is exactly what releases it. *)

val last_lock_position : t -> int option

val is_three_phase : t -> bool
(** True when every [Write] has lock index [n_locks] (i.e. runs after the
    final lock request) — the paper's acquire/update/release structure that
    makes a transaction immune to rollback once its last lock is granted. *)

val write_profile : t -> (string * int list) list
(** For every written object — globals keyed ["G:name"], locals ["L:name"]
    — the lock indices (segments) of its writes in program order. [Read]
    counts as a write to its target local (it destroys the previous
    value). The damage a single-copy rollback implementation suffers is
    governed by the span from each object's first to last write
    (DESIGN.md Section 4). *)

val damage_span : t -> int
(** Sum over written objects of (last write segment − first write
    segment): 0 for perfectly clustered writes; the count of lock states
    made non-restorable, with multiplicity, otherwise. *)

(* Structure transforms (Section 5 of the paper) *)

val cluster_writes : t -> t
(** Semantics-preserving reordering that bubbles every non-first write of
    an object towards that object's previous write, past independent
    operations (two adjacent operations commute when their read/write
    object sets are disjoint; locks and unlocks keep their relative order
    and an operation never crosses the lock of an entity it touches).
    Same-entity writes pile up together, which is exactly the paper's
    Figure 5 restructuring; [damage_span] never increases. *)

val make_three_phase : t -> t
(** Best-effort dual transform: bubble writes {e later} until they sit
    after the last lock request. Check the result with {!is_three_phase} —
    data dependencies can make full three-phase structure unreachable. *)

val hoist_locks : t -> t
(** Bubble every lock request as early as possible (past data operations
    that do not touch its entity; locks keep their relative order). The
    acquisition phase of the paper's acquire/update/release structure:
    the transaction reaches its last lock request — after which it can
    declare itself immune to rollback — as soon as its data dependences
    allow, at the price of holding locks longer. Semantics-preserving. *)

val make_acquire_update_release : t -> t
(** [hoist_locks] followed by {!make_three_phase}: best-effort full
    three-phase restructuring. *)

(* Pretty-printing *)

val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool
(** Structural equality (name included). *)

(* Convenience constructors for hand-written programs and tests. *)

val lock_x : entity -> op
val lock_s : entity -> op
val unlock : entity -> op
val read : entity -> var -> op
val write : entity -> Expr.t -> op
val assign : var -> Expr.t -> op
