module Value = Prb_storage.Value

type var = string

type t =
  | Const of Value.t
  | Var of var
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Min of t * t
  | Max of t * t
  | Mix of t

let rec eval env = function
  | Const v -> v
  | Var x -> env x
  | Add (a, b) -> Value.add (eval env a) (eval env b)
  | Sub (a, b) -> Value.sub (eval env a) (eval env b)
  | Mul (a, b) -> Value.mul (eval env a) (eval env b)
  | Neg a -> Value.neg (eval env a)
  | Min (a, b) -> Value.min_v (eval env a) (eval env b)
  | Max (a, b) -> Value.max_v (eval env a) (eval env b)
  | Mix a -> Value.mix (eval env a)

let vars t =
  let rec collect acc = function
    | Const _ -> acc
    | Var x -> x :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Min (a, b) | Max (a, b) ->
        collect (collect acc a) b
    | Neg a | Mix a -> collect acc a
  in
  List.sort_uniq compare (collect [] t)

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Value.equal x y
  | Var x, Var y -> String.equal x y
  | Add (a1, b1), Add (a2, b2)
  | Sub (a1, b1), Sub (a2, b2)
  | Mul (a1, b1), Mul (a2, b2)
  | Min (a1, b1), Min (a2, b2)
  | Max (a1, b1), Max (a2, b2) -> equal a1 a2 && equal b1 b2
  | Neg x, Neg y | Mix x, Mix y -> equal x y
  | ( ( Const _ | Var _ | Add _ | Sub _ | Mul _ | Neg _ | Min _ | Max _
      | Mix _ ),
      _ ) -> false

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Var x -> Fmt.string ppf x
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Neg a -> Fmt.pf ppf "(- %a)" pp a
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b
  | Mix a -> Fmt.pf ppf "mix(%a)" pp a

let int n = Const (Value.int n)
let var x = Var x
let ( + ) a b = Add (a, b)
let ( - ) a b = Sub (a, b)
let ( * ) a b = Mul (a, b)
