(** First-order expressions over transaction-local variables.

    Writes and local assignments compute their value through this little
    language rather than opaque closures, which keeps transaction programs
    *data*: printable, generatable by the workload layer, structurally
    comparable, and — crucially for partial rollback — deterministically
    re-executable after the program counter is reset. *)

type var = string

type t =
  | Const of Prb_storage.Value.t
  | Var of var  (** current value of a local variable *)
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Neg of t
  | Min of t * t
  | Max of t * t
  | Mix of t  (** splitmix-style integer mixing, for synthetic updates *)

val eval : (var -> Prb_storage.Value.t) -> t -> Prb_storage.Value.t
(** Evaluate under an environment. @raise Not_found if the environment
    lacks a variable (programs are validated against this upfront). *)

val vars : t -> var list
(** Free variables, sorted, deduplicated. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(* Constructors mirroring common workload idioms. *)

val int : int -> t
val var : var -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
