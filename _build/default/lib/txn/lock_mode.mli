(** Lock modes of the paper's Section 2: shared (read-only) and exclusive
    (read/write). *)

type t = Shared | Exclusive

val equal : t -> t -> bool

val compatible : t -> t -> bool
(** [compatible held requested] — can both be granted simultaneously to
    different transactions? Only [Shared]/[Shared] is. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["S"] or ["X"], the conventional abbreviations. *)
