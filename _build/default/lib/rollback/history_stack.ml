module Value = Prb_storage.Value

type t = {
  budget : int;
  created : int;
  initial : Value.t;
  mutable versions : (int * Value.t) list; (* newest first; lock indices strictly decreasing *)
  mutable n_versions : int;
  mutable damaged : (int * int) list; (* [lo, hi) ascending, disjoint, merged *)
  mutable peak : int;
}

let create ~budget ~created_at ~initial =
  if budget < 1 then invalid_arg "History_stack.create: budget < 1";
  {
    budget;
    created = created_at;
    initial;
    versions = [];
    n_versions = 0;
    damaged = [];
    peak = 1;
  }

let created_at t = t.created

let current t =
  match t.versions with [] -> t.initial | (_, v) :: _ -> v

let n_versions t = t.n_versions
let n_copies t = t.n_versions + 1
let peak_copies t = t.peak

let add_damage t lo hi =
  if lo < hi then begin
    (* Insert and merge; the list stays short (one interval per eviction,
       adjacent evictions merge). *)
    let merged =
      let rec insert = function
        | [] -> [ (lo, hi) ]
        | (a, b) :: rest ->
            if hi < a then (lo, hi) :: (a, b) :: rest
            else if b < lo then (a, b) :: insert rest
            else
              (* overlap or adjacency *)
              insert_merged (min a lo) (max b hi) rest
      and insert_merged a b = function
        | [] -> [ (a, b) ]
        | (c, d) :: rest ->
            if b < c then (a, b) :: (c, d) :: rest
            else insert_merged a (max b d) rest
      in
      insert t.damaged
    in
    t.damaged <- merged
  end

(* Evict the oldest retained version; the states it covered — from its own
   write index up to the next version's — become damaged. *)
let evict_oldest t =
  let rec split acc = function
    | [] -> assert false
    | [ (w, _) ] ->
        let upper =
          match acc with [] -> assert false | (w', _) :: _ -> w'
        in
        (List.rev acc, w, upper)
    | x :: rest -> split (x :: acc) rest
  in
  let kept, lo, hi = split [] t.versions in
  t.versions <- kept;
  t.n_versions <- t.n_versions - 1;
  add_damage t lo hi

let write t ~lock_index value =
  (match t.versions with
  | (w, _) :: _ when lock_index < w ->
      invalid_arg "History_stack.write: lock index went backwards"
  | _ -> ());
  (match t.versions with
  | (w, _) :: rest when w = lock_index ->
      (* Same segment: only the final value of a segment is observable at
         any lock state, so coalesce. *)
      t.versions <- (w, value) :: rest
  | _ ->
      t.versions <- (lock_index, value) :: t.versions;
      t.n_versions <- t.n_versions + 1;
      if t.n_versions > t.budget then evict_oldest t);
  if t.n_versions + 1 > t.peak then t.peak <- t.n_versions + 1

let damaged t = t.damaged

let is_restorable t q =
  not (List.exists (fun (lo, hi) -> lo <= q && q < hi) t.damaged)

let value_at t q =
  if not (is_restorable t q) then None
  else
    let rec newest_at = function
      | [] -> t.initial
      | (w, v) :: rest -> if w <= q then v else newest_at rest
    in
    Some (newest_at t.versions)

let truncate t q =
  if not (is_restorable t q) then
    invalid_arg "History_stack.truncate: target state is damaged";
  t.versions <- List.filter (fun (w, _) -> w <= q) t.versions;
  t.n_versions <- List.length t.versions;
  t.damaged <- List.filter (fun (_, hi) -> hi <= q) t.damaged

let pp ppf t =
  Fmt.pf ppf "@[<h>history(created=%d, current=%a, versions=[%a], damaged=[%a])@]"
    t.created Value.pp (current t)
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any ":") int Value.pp))
    t.versions
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any ",") int int))
    t.damaged
