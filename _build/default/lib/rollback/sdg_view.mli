(** Static state-dependency-graph analysis of a transaction program
    (paper Section 4, Figures 4 and 5).

    The SDG of a transaction that runs to completion is determined by the
    program text alone: vertices are lock states [0 .. n] (labelled by
    lock index), chain edges join consecutive states, and every non-first
    write to an object adds an edge from the object's {e index of
    restorability} (the last lock state before its first write) to the
    write's segment. A state is {e well-defined} — reproducible under a
    single-copy implementation — iff no edge strictly spans it, which by
    Corollary 1 is the articulation-point condition.

    The runtime equivalent for partially-executed transactions lives in
    {!Txn_state}; on completed transactions the two agree (tested). *)

val of_program : Prb_txn.Program.t -> Prb_graph.Ugraph.t
(** The paper's graph: vertices [0 .. n_locks] plus chain edges, and one
    edge [{w1 - 1, w}] per non-first write in segment [w] to an object
    first written in segment [w1]. A pre-lock write ([w1 = 0]) uses the
    synthetic vertex [-1]. *)

val damage_intervals : Prb_txn.Program.t -> (int * int) list
(** Disjoint, merged, ascending intervals [[lo, hi)] of lock states that a
    single-copy implementation cannot restore: one interval [\[first write
    segment, last write segment)] per object written in two or more
    segments. *)

val well_defined_states : Prb_txn.Program.t -> int list
(** Lock states [0 .. n_locks] outside every damage interval, ascending.
    [0] (total restart — always reachable by re-executing the local
    pre-lock prefix) and [n_locks] (the current state) are always
    included — the paper's "trivial" well-defined states. *)

val well_defined_via_articulation : Prb_txn.Program.t -> int list
(** The same set computed the paper's way — articulation points of
    {!of_program} (interior states), plus the trivial endpoints. Agrees
    with {!well_defined_states}; both are exposed so tests can check the
    equivalence (Theorem 4 / Corollary 1). *)

val to_dot : Prb_txn.Program.t -> string
(** Graphviz rendering of {!of_program}: lock states as nodes (doubled
    circles for well-defined ones), chain edges solid, write edges dashed
    and labelled with the object that caused them. *)

val rollback_overshoot : Prb_txn.Program.t -> string -> int option
(** [rollback_overshoot p entity] — if a deadlock forced [p] to release
    [entity], a single-copy implementation rolls back to the nearest
    well-defined state at or below the entity's lock state; the result is
    that distance in lock states (0 when the lock state itself is
    well-defined). [None] when the program never locks the entity. *)
