type t = Total | Mcs | Sdg | Sdg_k of int

let version_budget = function
  | Total | Sdg -> 1
  | Mcs -> max_int
  | Sdg_k k ->
      if k < 0 then invalid_arg "Strategy.version_budget: negative k";
      1 + k

let equal a b =
  match (a, b) with
  | Total, Total | Mcs, Mcs | Sdg, Sdg -> true
  | Sdg_k i, Sdg_k j -> i = j
  | (Total | Mcs | Sdg | Sdg_k _), _ -> false

let to_string = function
  | Total -> "total"
  | Mcs -> "mcs"
  | Sdg -> "sdg"
  | Sdg_k k -> Printf.sprintf "sdg+%d" k

let of_string = function
  | "total" -> Some Total
  | "mcs" -> Some Mcs
  | "sdg" -> Some Sdg
  | s ->
      let prefix = "sdg+" in
      let lp = String.length prefix in
      if String.length s > lp && String.sub s 0 lp = prefix then
        match int_of_string_opt (String.sub s lp (String.length s - lp)) with
        | Some k when k >= 0 -> Some (Sdg_k k)
        | Some _ | None -> None
      else None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let all_basic = [ Total; Mcs; Sdg ]
