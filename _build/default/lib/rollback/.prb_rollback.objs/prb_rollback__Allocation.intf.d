lib/rollback/allocation.mli: Prb_txn
