lib/rollback/sdg_view.mli: Prb_graph Prb_txn
