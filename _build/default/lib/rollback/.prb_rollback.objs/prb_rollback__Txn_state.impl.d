lib/rollback/txn_state.ml: Array Fmt Fun Hashtbl History_stack List Option Prb_storage Prb_txn Strategy String
