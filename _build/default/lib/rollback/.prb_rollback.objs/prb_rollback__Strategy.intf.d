lib/rollback/strategy.mli: Format
