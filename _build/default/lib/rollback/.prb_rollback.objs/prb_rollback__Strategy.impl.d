lib/rollback/strategy.ml: Format Printf String
