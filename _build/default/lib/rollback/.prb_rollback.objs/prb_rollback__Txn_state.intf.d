lib/rollback/txn_state.mli: Format Prb_storage Prb_txn Strategy
