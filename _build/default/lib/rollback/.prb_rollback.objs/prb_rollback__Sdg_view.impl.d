lib/rollback/sdg_view.ml: Buffer Fun List Prb_graph Prb_txn Printf
