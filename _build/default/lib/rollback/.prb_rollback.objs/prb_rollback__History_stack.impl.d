lib/rollback/history_stack.ml: Fmt List Prb_storage
