lib/rollback/history_stack.mli: Format Prb_storage
