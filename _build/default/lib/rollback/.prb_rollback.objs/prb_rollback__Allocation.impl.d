lib/rollback/allocation.ml: Array Fun List Prb_txn
