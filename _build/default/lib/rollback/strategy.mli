(** Rollback implementation strategies (paper Section 4, plus the Section 5
    extension).

    All four share one mechanism — a per-object version history with a
    retention budget (see {!History_stack}) — and differ only in the budget
    and in how far back they are able (or willing) to roll:

    - {b Total}: the classical remove-and-restart of [7,10]. One local copy
      per object; the only rollback target is lock state 0.
    - {b Mcs}: the multi-lock copy strategy. Unbounded version stacks, so
      every lock state is restorable; worst-case space n(n+1)/2 copies of
      globals (Theorem 3).
    - {b Sdg}: the state-dependency-graph strategy. One local copy per
      object; overwritten values are gone, so only {e well-defined} lock
      states are restorable and rollback may overshoot the minimal target.
    - {b Sdg_k k}: the paper's closing extension — [k] extra retained
      copies per object push more states into the well-defined set. *)

type t =
  | Total
  | Mcs
  | Sdg
  | Sdg_k of int  (** extra retained versions per object; [Sdg_k 0 = Sdg] *)

val version_budget : t -> int
(** Maximum number of versions (live copy included) a {!History_stack} may
    retain under the strategy: [max_int] for [Mcs], [1] for [Total]/[Sdg],
    [1 + k] for [Sdg_k k]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** ["total"], ["mcs"], ["sdg"], ["sdg+3"]. *)

val of_string : string -> t option
(** Inverse of {!to_string}, for the CLI. *)

val all_basic : t list
(** [Total; Mcs; Sdg] — the three strategies of Section 4, swept by the
    benches. *)
