(** Copy-budget allocation — the paper's closing open question.

    Section 5 ends: "The problem of determining how to allocate a bounded
    amount of extra storage to the entities in order to maximize the
    number of well-defined states in such systems remains another
    interesting question for further study." This module studies it.

    Under a single-copy (SDG) engine, an object written in distinct lock
    segments [s_1 < ... < s_m] destroys states [[s_1, s_m)]. Retaining
    [e] extra versions keeps the newest [1+e], shrinking the damage to
    [[s_1, s_{m-e})]: the j-th extra copy frees exactly the {e chunk}
    [[s_{m-j}, s_{m-j+1})]. Allocating a global budget of extra copies
    across objects to maximise the well-defined states is therefore a
    (weighted, overlapping) coverage problem. We provide a marginal-gain
    greedy — the natural heuristic, since chunks must be taken newest
    first per object — and an exhaustive solver for small instances, used
    to test the greedy and to report its optimality gap.

    Allocations feed back into the runtime through
    {!Txn_state.create}'s [copy_allocation] parameter (object keys are
    {!Prb_txn.Program.write_profile}'s: ["G:entity"] / ["L:local"]). *)

type t = (string * int) list
(** Extra copies per object key; absent keys get zero. Sorted. *)

val lookup : t -> string -> int

val chunks : Prb_txn.Program.t -> (string * (int * int) list) list
(** Per written object, the damage chunk freed by each successive extra
    copy, in the order the copies must be taken (newest chunk first);
    objects with single-segment writes have no chunks. *)

val well_defined_with :
  Prb_txn.Program.t -> allocation:(string -> int) -> int list
(** The well-defined lock states under a given allocation; with the zero
    allocation this equals {!Sdg_view.well_defined_states}, and with
    every object fully funded it is all states. *)

val greedy : Prb_txn.Program.t -> budget:int -> t
(** Spend the budget one copy at a time, each time on the object whose
    next chunk uncovers the most still-damaged states (ties to the
    lexicographically smaller key). Stops early when no chunk gains. *)

val exact : Prb_txn.Program.t -> budget:int -> t
(** Exhaustive search over distributions (exponential: test/report use on
    small programs only). Maximises well-defined states; among optima,
    spends the least and prefers the lexicographically smallest. *)

val gain : Prb_txn.Program.t -> t -> int
(** Well-defined states under the allocation minus the zero-allocation
    baseline. *)
