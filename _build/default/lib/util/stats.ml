type t = {
  mutable count : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  { count = 0; mean = 0.0; m2 = 0.0; total = 0.0; min_v = nan; max_v = nan }

let add t x =
  t.count <- t.count + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.count);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.count = 1 then begin
    t.min_v <- x;
    t.max_v <- x
  end
  else begin
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x
  end

let add_int t x = add t (float_of_int x)
let count t = t.count
let total t = t.total
let mean t = if t.count = 0 then nan else t.mean
let variance t = if t.count < 2 then 0.0 else t.m2 /. float_of_int (t.count - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else
    let n = a.count + b.count in
    let delta = b.mean -. a.mean in
    let mean =
      a.mean +. (delta *. float_of_int b.count /. float_of_int n)
    in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
          /. float_of_int n)
    in
    {
      count = n;
      mean;
      m2;
      total = a.total +. b.total;
      min_v = Float.min a.min_v b.min_v;
      max_v = Float.max a.max_v b.max_v;
    }

let percentile data p =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. float_of_int lo in
      sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let median data = percentile data 50.0

let mean_of = function
  | [] -> nan
  | xs ->
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
