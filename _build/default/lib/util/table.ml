type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string option;
  header : string list;
  aligns : align list;
  arity : int;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  let header = List.map fst columns and aligns = List.map snd columns in
  { title; header; aligns; arity = List.length columns; rows = [] }

let add_row t cells =
  if List.length cells <> t.arity then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.header) in
  let note_widths = function
    | Separator -> ()
    | Cells cells ->
        List.iteri
          (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c)
          cells
  in
  List.iter note_widths rows;
  let buf = Buffer.create 1024 in
  let rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line aligns cells =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n'
  | None -> ());
  rule ();
  line (List.map (fun _ -> Left) t.header) t.header;
  rule ();
  List.iter
    (function Separator -> rule () | Cells cells -> line t.aligns cells)
    rows;
  rule ();
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let cell_int = string_of_int

let cell_float ?(decimals = 2) f =
  if Float.is_nan f then "-" else Printf.sprintf "%.*f" decimals f

let cell_pct f =
  if Float.is_nan f then "-" else Printf.sprintf "%.1f%%" (100.0 *. f)

let cell_ratio f =
  if Float.is_nan f then "-" else Printf.sprintf "%.2fx" f
