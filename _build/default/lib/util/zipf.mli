(** Zipfian access-skew sampler.

    Database contention experiments need a hot-spot distribution: the
    probability of picking item [i] of [n] is proportional to
    [1 / (i+1)^theta]. [theta = 0] is uniform; higher values concentrate
    accesses on few entities, which drives up lock conflicts and hence
    deadlock rates — the knob the paper's motivation (rising concurrency)
    turns. *)

type t

val make : n:int -> theta:float -> t
(** [make ~n ~theta] prepares a sampler over ranks [0 .. n-1].
    @raise Invalid_argument if [n <= 0] or [theta < 0]. *)

val n : t -> int
(** Population size. *)

val theta : t -> float
(** Skew parameter. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [\[0, n)], rank 0 being the hottest. Uses inverse-CDF
    binary search over precomputed cumulative weights: O(log n) per draw. *)

val probability : t -> int -> float
(** [probability t i] is the exact probability of rank [i]. *)
