(** Plain-text table rendering for the benchmark harness.

    Every experiment in EXPERIMENTS.md prints its rows through this module
    so the output format stays uniform and greppable. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Append a row. @raise Invalid_argument if the arity does not match the
    header. *)

val add_separator : t -> unit
(** Append a horizontal rule between row groups. *)

val render : t -> string
(** Render with box-drawing in ASCII ([+-|]); columns auto-sized. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(* Cell formatting helpers used across benches. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_pct : float -> string
(** [cell_pct f] renders fraction [f] as a percentage with one decimal. *)

val cell_ratio : float -> string
(** Renders like ["3.42x"]. *)
