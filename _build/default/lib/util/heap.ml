type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { data = [||]; size = 0; next_seq = 0 }

let is_empty t = t.size = 0
let size t = t.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap entry in
    Array.blit t.data 0 ndata 0 t.size;
    t.data <- ndata
  end

let push t ~priority value =
  let entry = { prio = priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(!i) in
    t.data.(!i) <- t.data.(parent);
    t.data.(parent) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* Sift down. *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && less t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.size && less t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!i) in
          t.data.(!i) <- t.data.(!smallest);
          t.data.(!smallest) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let clear t =
  t.size <- 0;
  t.next_seq <- 0
