(** Streaming and batch statistics for experiment metrics. *)

type t
(** A mutable accumulator over float observations (Welford's algorithm, so
    mean and variance are numerically stable over long runs). *)

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val add_int : t -> int -> unit

val count : t -> int
val total : t -> float

val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two observations. *)

val stddev : t -> float

val min_value : t -> float
(** Smallest observation; [nan] when empty. *)

val max_value : t -> float
(** Largest observation; [nan] when empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (parallel variance combination). *)

val percentile : float array -> float -> float
(** [percentile data p] for [p] in [\[0,100\]] with linear interpolation;
    sorts a copy. @raise Invalid_argument on empty data or p outside
    range. *)

val median : float array -> float

val mean_of : float list -> float
(** Batch mean; [nan] on empty list. *)
