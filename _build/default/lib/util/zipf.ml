type t = { n : int; theta : float; cdf : float array }

let make ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.make: n must be positive";
  if theta < 0.0 then invalid_arg "Zipf.make: theta must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) theta);
    cdf.(i) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; theta; cdf }

let n t = t.n
let theta t = t.theta

let sample t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cumulative weight exceeds [u]. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) < u then search (mid + 1) hi else search lo mid
  in
  search 0 (t.n - 1)

let probability t i =
  if i < 0 || i >= t.n then invalid_arg "Zipf.probability: rank out of range";
  if i = 0 then t.cdf.(0) else t.cdf.(i) -. t.cdf.(i - 1)
