(** Minimal binary min-heap, used as the simulator's event queue.

    Ties are broken by insertion order so event processing is fully
    deterministic — two events scheduled for the same instant fire in the
    order they were scheduled. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> priority:int -> 'a -> unit
(** Insert with an integer priority (simulated time). *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum-priority element (earliest inserted
    among ties), or [None] when empty. *)

val peek : 'a t -> (int * 'a) option

val clear : 'a t -> unit
