(** Deterministic, splittable pseudo-random number generator.

    The whole reproduction must be replayable from a single seed, so we do
    not use [Stdlib.Random] (whose state is global and version-dependent).
    This is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a tiny,
    well-tested generator whose [split] operation yields independent
    streams, which lets every transaction, site and workload own a private
    stream derived from the experiment seed. *)

type t
(** Mutable generator state. *)

val make : int -> t
(** [make seed] creates a generator from a 63-bit seed. Two generators made
    from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues [t]'s stream;
    advancing one does not affect the other. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on
    an empty array. *)
