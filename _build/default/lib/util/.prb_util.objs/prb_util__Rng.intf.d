lib/util/rng.mli:
