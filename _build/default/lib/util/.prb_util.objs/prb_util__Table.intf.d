lib/util/table.mli:
