lib/util/stats.mli:
