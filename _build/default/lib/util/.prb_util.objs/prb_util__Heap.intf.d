lib/util/heap.mli:
