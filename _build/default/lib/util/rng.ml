type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let make seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let b = Int64.of_int bound in
  let rec draw () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    if Int64.sub r v > Int64.sub (Int64.sub Int64.max_int b) 1L then draw ()
    else Int64.to_int v
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.shift_right_logical (bits64 t) 11 in
  (* 53 random bits, the double-precision mantissa width. *)
  Int64.to_float r *. (1.0 /. 9007199254740992.0) *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let chance t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
