lib/distrib/dist_scheduler.ml: Fmt Hashtbl List Prb_core Prb_history Prb_lock Prb_rollback Prb_storage Prb_txn Prb_util Prb_wfg
