lib/distrib/dist_sim.ml: Dist_scheduler Fmt List Prb_history
