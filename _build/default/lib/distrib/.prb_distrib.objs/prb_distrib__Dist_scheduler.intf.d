lib/distrib/dist_scheduler.mli: Format Prb_core Prb_history Prb_lock Prb_rollback Prb_storage Prb_txn Prb_wfg
