lib/distrib/dist_sim.mli: Dist_scheduler Format Prb_storage Prb_txn
