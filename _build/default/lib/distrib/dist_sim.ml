module D = Dist_scheduler
module History = Prb_history.History

type config = { scheduler : D.config; mpl : int }

let default_config = { scheduler = D.default_config; mpl = 8 }

type result = {
  stats : D.stats;
  n_txns : int;
  throughput : float;
  messages_per_commit : float;
  shipped_per_commit : float;
  mean_rollback_cost : float;
  serializable : bool;
}

let run ?(config = default_config) ~store programs =
  if config.mpl < 1 then invalid_arg "Dist_sim.run: mpl must be >= 1";
  let sched = D.create config.scheduler store in
  let pending = ref programs in
  let submitted = ref 0 in
  let submit_next () =
    match !pending with
    | [] -> ()
    | p :: rest ->
        pending := rest;
        let home = !submitted mod config.scheduler.D.n_sites in
        incr submitted;
        ignore (D.submit sched ~home p)
  in
  let refill () =
    while !pending <> [] && !submitted - D.n_committed sched < config.mpl do
      submit_next ()
    done
  in
  refill ();
  while D.step sched do
    refill ()
  done;
  let stats = D.stats sched in
  let fl = float_of_int in
  let per_commit x =
    if stats.D.commits = 0 then nan else fl x /. fl stats.D.commits
  in
  {
    stats;
    n_txns = List.length programs;
    throughput =
      (if stats.D.ticks = 0 then nan
       else 1000.0 *. fl stats.D.commits /. fl stats.D.ticks);
    messages_per_commit = per_commit stats.D.messages;
    shipped_per_commit = per_commit stats.D.shipped_copies;
    mean_rollback_cost =
      (if stats.D.rollbacks = 0 then nan
       else fl stats.D.ops_lost /. fl stats.D.rollbacks);
    serializable = History.serializable (D.history sched);
  }

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>txns: %d@,%a@,throughput: %.2f commits/kTick@,\
     messages/commit: %.1f@,shipped copies/commit: %.1f@,\
     mean rollback cost: %.2f@,serializable: %b@]"
    r.n_txns D.pp_stats r.stats r.throughput r.messages_per_commit
    r.shipped_per_commit r.mean_rollback_cost r.serializable
