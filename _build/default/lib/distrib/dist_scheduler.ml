module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Lock_mode = Prb_txn.Lock_mode
module Lock_table = Prb_lock.Lock_table
module Waits_for = Prb_wfg.Waits_for
module Strategy = Prb_rollback.Strategy
module Txn_state = Prb_rollback.Txn_state
module History = Prb_history.History
module Heap = Prb_util.Heap
module Rng = Prb_util.Rng
module Policy = Prb_core.Policy
module Resolver = Prb_core.Resolver

type detection = Local_then_global of int | Wound_wait

type config = {
  n_sites : int;
  detection : detection;
  strategy : Strategy.t;
  policy : Policy.t;
  seed : int;
  max_ticks : int;
  cycle_limit : int;
  restart_delay : int;
}

(* The default victim policy differs from the centralised engine's:
   under periodic global detection the resolver works from a stale
   snapshot with no meaningful "requester", and cost-optimising policies
   (min-cost, ordered-min-cost) then re-victimise the same cheap
   transaction round after round — the Figure 2 pathology resurrected by
   staleness (measured in experiment E10b). The age-based rule converges,
   which is exactly why the distributed literature the paper cites [1,7,
   10] uses timestamps for victim selection. *)
let default_config =
  {
    n_sites = 4;
    detection = Local_then_global 50;
    strategy = Strategy.Sdg;
    policy = Policy.Youngest;
    seed = 1;
    max_ticks = 1_000_000;
    cycle_limit = 256;
    restart_delay = 0;
  }

exception Stuck of string

(* Event payloads: a transaction id, or the periodic global detector. *)
let detector_event = -1

type meta = { home : int; mutable last_site : int }

type t = {
  cfg : config;
  store : Store.t;
  site_fn : Store.entity -> int;
  locks : Lock_table.t;
  wfg : Waits_for.t;
  txns : (int, Txn_state.t) Hashtbl.t;
  metas : (int, meta) Hashtbl.t;
  events : int Heap.t;
  hist : History.t;
  rng : Rng.t;
  mutable next_id : int;
  mutable tick : int;
  mutable commits : int;
  mutable deadlocks : int;
  mutable local_deadlocks : int;
  mutable global_deadlocks : int;
  mutable wounds : int;
  mutable rollback_events : int;
  mutable messages : int;
  mutable shipped_copies : int;
  mutable detection_rounds : int;
}

let default_site_of n_sites e =
  (Prb_storage.Value.as_int (Prb_storage.Value.text e)) mod n_sites

let create ?site_of config store =
  if config.n_sites < 1 then invalid_arg "Dist_scheduler: n_sites < 1";
  let site_fn =
    match site_of with
    | Some f -> f
    | None -> default_site_of config.n_sites
  in
  let t =
    {
      cfg = config;
      store;
      site_fn;
      locks = Lock_table.create ~fair:true ();
      wfg = Waits_for.create ();
      txns = Hashtbl.create 64;
      metas = Hashtbl.create 64;
      events = Heap.create ();
      hist = History.create ();
      rng = Rng.make config.seed;
      next_id = 0;
      tick = 0;
      commits = 0;
      deadlocks = 0;
      local_deadlocks = 0;
      global_deadlocks = 0;
      wounds = 0;
      rollback_events = 0;
      messages = 0;
      shipped_copies = 0;
      detection_rounds = 0;
    }
  in
  (match config.detection with
  | Local_then_global period ->
      if period < 1 then invalid_arg "Dist_scheduler: period < 1";
      Heap.push t.events ~priority:period detector_event
  | Wound_wait -> ());
  t

let site_of t e = t.site_fn e
let waits_for t = t.wfg
let lock_table t = t.locks
let now t = t.tick
let n_committed t = t.commits
let all_committed t = t.commits = Hashtbl.length t.txns
let history t = t.hist

let txn_state t id =
  match Hashtbl.find_opt t.txns id with
  | Some ts -> ts
  | None -> raise Not_found

let meta t id = Hashtbl.find t.metas id

let submit t ~home program =
  if home < 0 || home >= t.cfg.n_sites then
    invalid_arg "Dist_scheduler.submit: bad home site";
  let id = t.next_id in
  t.next_id <- id + 1;
  let ts =
    Txn_state.create ~strategy:t.cfg.strategy ~id ~store:t.store program
  in
  Hashtbl.replace t.txns id ts;
  Hashtbl.replace t.metas id { home; last_site = home };
  Waits_for.add_txn t.wfg id;
  Heap.push t.events ~priority:(t.tick + 1) id;
  id

let schedule t id = Heap.push t.events ~priority:(t.tick + 1) id

let refresh_waiters t e =
  List.iter
    (fun (w, _) ->
      match Lock_table.blockers t.locks w with
      | [] -> ()
      | holders -> Waits_for.set_wait t.wfg ~waiter:w ~holders e)
    (Lock_table.waiters t.locks e)

let process_grants t grants =
  List.iter
    (fun (w, mode, e) ->
      Waits_for.clear_wait t.wfg w;
      History.note_grant t.hist ~tick:t.tick w e mode;
      Txn_state.lock_granted (txn_state t w);
      (* The lock stream of [w] has now touched [e]'s site: partial
         strategies ship their bookkeeping along (Section 3.3). *)
      let m = meta t w in
      let s = site_of t e in
      if s <> m.last_site then begin
        if not (Strategy.equal t.cfg.strategy Strategy.Total) then begin
          t.messages <- t.messages + 1;
          t.shipped_copies <-
            t.shipped_copies + Txn_state.current_copies (txn_state t w)
        end;
        m.last_site <- s
      end;
      schedule t w)
    grants

let release_lock t id e =
  if site_of t e <> (meta t id).home then t.messages <- t.messages + 1;
  let grants = Lock_table.release t.locks id e in
  process_grants t (List.map (fun (w, m) -> (w, m, e)) grants);
  refresh_waiters t e

(* --- Rollback application (shared with both detection modes) --------- *)

let split_arcs ts entities =
  List.partition (fun e -> Txn_state.holds ts e <> None) entities

let release_cost t v entities =
  let ts = txn_state t v in
  let held, queued = split_arcs ts entities in
  let rollback_part =
    match held with
    | [] -> 0
    | es ->
        let target =
          List.fold_left
            (fun acc e -> min acc (Txn_state.rollback_target ts e))
            max_int es
        in
        Txn_state.cost_of_target ts target
  in
  rollback_part + if queued = [] then 0 else 1

let cancel_pending_request t v =
  match Lock_table.cancel_wait t.locks v with
  | Some (e, grants) ->
      process_grants t (List.map (fun (w, m) -> (w, m, e)) grants);
      refresh_waiters t e
  | None -> ()

let apply_rollback t v entities =
  let ts = txn_state t v in
  let held, _queued = split_arcs ts entities in
  cancel_pending_request t v;
  Waits_for.clear_wait t.wfg v;
  (match held with
  | [] -> ()
  | es ->
      let target =
        List.fold_left
          (fun acc e -> min acc (Txn_state.rollback_target ts e))
          (Txn_state.lock_index ts)
          es
      in
      let released = Txn_state.rollback_to ts target in
      t.rollback_events <- t.rollback_events + 1;
      (* One coordination message per remote site whose entities the
         rollback released. *)
      let home = (meta t v).home in
      let sites =
        List.sort_uniq compare (List.map (site_of t) released)
        |> List.filter (fun s -> s <> home)
      in
      t.messages <- t.messages + List.length sites;
      List.iter
        (fun e ->
          History.discard t.hist v e;
          release_lock t v e)
        released);
  Heap.push t.events ~priority:(t.tick + 1 + t.cfg.restart_delay) v

(* --- Cycle detection ------------------------------------------------- *)

let resolver_cycles t requester =
  let raw = Waits_for.cycles_through ~limit:t.cfg.cycle_limit t.wfg requester in
  let label u v =
    match List.assoc_opt v (Waits_for.waits t.wfg u) with
    | Some e -> e
    | None -> raise (Stuck "waits-for edge vanished during resolution")
  in
  List.map
    (fun cycle ->
      let rec arcs = function
        | [] -> []
        | [ last ] -> [ (requester, label last requester) ]
        | u :: (v :: _ as rest) -> (v, label u v) :: arcs rest
      in
      arcs cycle)
    raw

let is_local_cycle t cycle =
  match cycle with
  | [] -> true
  | (_, e0) :: rest ->
      let s = site_of t e0 in
      List.for_all (fun (_, e) -> site_of t e = s) rest

let resolve_cycles t requester cycles =
  t.deadlocks <- t.deadlocks + 1;
  let decision =
    Resolver.choose ~policy:t.cfg.policy ~requester
      ~entry_order:(fun v -> Txn_state.entry_order (txn_state t v))
      ~release_cost:(release_cost t) ~rng:t.rng cycles
  in
  List.iter (fun (v, entities) -> apply_rollback t v entities) decision.Resolver.victims

(* Local detection at block time: a site resolves instantly any cycle
   whose contested entities all live on it. *)
let rec resolve_local t requester round =
  if round > 1000 then raise (Stuck "local resolution did not converge");
  if Waits_for.is_blocked t.wfg requester then begin
    let local =
      List.filter (is_local_cycle t) (resolver_cycles t requester)
    in
    if local <> [] then begin
      t.local_deadlocks <- t.local_deadlocks + 1;
      resolve_cycles t requester local;
      resolve_local t requester (round + 1)
    end
  end

let blocked_txns t =
  List.filter (fun id -> Waits_for.is_blocked t.wfg id) (Waits_for.txns t.wfg)

(* Global detector: every site ships its waits-for edges to a coordinator
   which resolves everything it sees, local or not. *)
let run_global_detection t =
  t.detection_rounds <- t.detection_rounds + 1;
  t.messages <- t.messages + t.cfg.n_sites;
  let round = ref 0 in
  let rec fixpoint () =
    incr round;
    if !round > 1000 then raise (Stuck "global detection did not converge");
    let site =
      List.find_map
        (fun b ->
          match resolver_cycles t b with
          | [] -> None
          | cycles -> Some (b, cycles))
        (blocked_txns t)
    in
    match site with
    | None -> ()
    | Some (requester, cycles) ->
        t.global_deadlocks <- t.global_deadlocks + 1;
        resolve_cycles t requester cycles;
        fixpoint ()
  in
  fixpoint ()

(* Wound-wait: an older requester wounds every younger blocker — holders
   roll back to release the entity, younger queued requests requeue
   behind. Shrinking transactions are immune (Section 2's no-rollback-
   after-unlock rule) and exempt: they issue no more lock requests, so
   they can never sit on a cycle, and they will release on their own.
   Afterwards every wait edge points to an older or shrinking
   transaction, and no cycle can ever close. *)
let wound_wait t requester e blockers =
  List.iter
    (fun b ->
      if
        b > requester
        && Txn_state.phase (txn_state t b) = Txn_state.Growing
      then begin
        t.wounds <- t.wounds + 1;
        if site_of t e <> (meta t b).home then t.messages <- t.messages + 1;
        apply_rollback t b [ e ]
      end)
    blockers

(* --- Transaction stepping -------------------------------------------- *)

let handle_lock_request t id mode e =
  let ts = txn_state t id in
  let m = meta t id in
  if site_of t e <> m.home then t.messages <- t.messages + 2;
  match Lock_table.request t.locks id mode e with
  | Lock_table.Granted ->
      History.note_grant t.hist ~tick:t.tick id e mode;
      Txn_state.lock_granted ts;
      let s = site_of t e in
      if s <> m.last_site then begin
        if not (Strategy.equal t.cfg.strategy Strategy.Total) then begin
          t.messages <- t.messages + 1;
          t.shipped_copies <- t.shipped_copies + Txn_state.current_copies ts
        end;
        m.last_site <- s
      end;
      refresh_waiters t e;
      schedule t id
  | Lock_table.Blocked holders -> (
      Waits_for.set_wait t.wfg ~waiter:id ~holders e;
      match t.cfg.detection with
      | Wound_wait -> wound_wait t id e holders
      | Local_then_global _ ->
          if Waits_for.would_deadlock t.wfg ~waiter:id ~holders then
            resolve_local t id 0)

let handle_unlock t id =
  let ts = txn_state t id in
  let e, final = Txn_state.perform_unlock ts in
  (match final with Some v -> Store.install t.store e v | None -> ());
  History.note_release t.hist ~tick:t.tick id e;
  release_lock t id e;
  schedule t id

let handle_commit t id =
  let ts = txn_state t id in
  let finals = Txn_state.commit ts in
  List.iter (fun (e, v) -> Store.install t.store e v) finals;
  let held = Lock_table.held_by t.locks id in
  List.iter (fun (e, _) -> History.note_release t.hist ~tick:t.tick id e) held;
  let grants = Lock_table.release_all t.locks id in
  let home = (meta t id).home in
  List.iter
    (fun (e, _) -> if site_of t e <> home then t.messages <- t.messages + 1)
    held;
  process_grants t grants;
  List.iter (fun (e, _) -> refresh_waiters t e) held;
  Waits_for.remove_txn t.wfg id;
  History.commit_txn t.hist id;
  t.commits <- t.commits + 1

let exec_one t id =
  let ts = txn_state t id in
  match Txn_state.phase ts with
  | Txn_state.Committed -> ()
  | Txn_state.Growing | Txn_state.Shrinking -> (
      if Waits_for.is_blocked t.wfg id then ()
      else
        match Txn_state.next_action ts with
        | Txn_state.Need_lock (mode, e) -> handle_lock_request t id mode e
        | Txn_state.Need_unlock _ -> handle_unlock t id
        | Txn_state.Data_step ->
            Txn_state.exec_data_op ts;
            schedule t id
        | Txn_state.At_end -> handle_commit t id)

let step t =
  if all_committed t then false
  else
    match Heap.pop t.events with
    | None -> raise (Stuck "event queue drained with live transactions")
    | Some (tick, payload) ->
        if tick > t.cfg.max_ticks then false
        else begin
          t.tick <- max t.tick tick;
          if payload = detector_event then begin
            run_global_detection t;
            match t.cfg.detection with
            | Local_then_global period ->
                Heap.push t.events ~priority:(t.tick + period) detector_event
            | Wound_wait -> ()
          end
          else exec_one t payload;
          true
        end

let run t =
  while step t do
    ()
  done

type stats = {
  ticks : int;
  commits : int;
  deadlocks : int;
  local_deadlocks : int;
  global_deadlocks : int;
  wounds : int;
  rollbacks : int;
  ops_lost : int;
  messages : int;
  shipped_copies : int;
  detection_rounds : int;
}

let stats t =
  let fold f init = Hashtbl.fold (fun _ ts acc -> f acc ts) t.txns init in
  {
    ticks = t.tick;
    commits = t.commits;
    deadlocks = t.deadlocks;
    local_deadlocks = t.local_deadlocks;
    global_deadlocks = t.global_deadlocks;
    wounds = t.wounds;
    rollbacks = t.rollback_events;
    ops_lost = fold (fun acc ts -> acc + Txn_state.ops_lost ts) 0;
    messages = t.messages;
    shipped_copies = t.shipped_copies;
    detection_rounds = t.detection_rounds;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>ticks: %d@,commits: %d@,deadlocks: %d (local %d, global %d)@,\
     wounds: %d@,rollbacks: %d@,ops lost: %d@,messages: %d@,\
     shipped copies: %d@,detection rounds: %d@]"
    s.ticks s.commits s.deadlocks s.local_deadlocks s.global_deadlocks
    s.wounds s.rollbacks s.ops_lost s.messages s.shipped_copies
    s.detection_rounds
