(** Closed-system driver for the multi-site engine, mirroring
    {!Prb_sim.Sim}: a fixed multiprogramming level per run, admissions
    round-robin across home sites, derived metrics. *)

type config = {
  scheduler : Dist_scheduler.config;
  mpl : int;  (** concurrent transactions held in the system *)
}

val default_config : config

type result = {
  stats : Dist_scheduler.stats;
  n_txns : int;
  throughput : float;  (** commits per 1000 ticks *)
  messages_per_commit : float;
  shipped_per_commit : float;
  mean_rollback_cost : float;
  serializable : bool;
}

val run :
  ?config:config ->
  store:Prb_storage.Store.t ->
  Prb_txn.Program.t list ->
  result
(** Home sites are assigned round-robin in submission order. *)

val pp_result : Format.formatter -> result -> unit
