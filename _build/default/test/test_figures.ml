(* Exact reproduction tests for the paper's five figures (experiment ids
   E1-E5 in DESIGN.md). Each asserts the published configuration:
   Figure 1's costs 4/6/5 and victim T2, Figure 3's alternative cuts,
   Figure 4's well-defined sets {0,6} vs {0,4,6}, Figure 5's clustering
   gain. *)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Lock_mode = Prb_txn.Lock_mode
module Strategy = Prb_rollback.Strategy
module Txn_state = Prb_rollback.Txn_state
module Sdg_view = Prb_rollback.Sdg_view
module Waits_for = Prb_wfg.Waits_for
module Lock_table = Prb_lock.Lock_table
module Resolver = Prb_core.Resolver
module Policy = Prb_core.Policy
module Cutset = Prb_graph.Cutset
module Rng = Prb_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkil = Alcotest.(check (list int))

let advance ts ~stop_pc =
  while Txn_state.pc ts < stop_pc do
    match Txn_state.next_action ts with
    | Txn_state.Need_lock _ -> Txn_state.lock_granted ts
    | Txn_state.Data_step -> Txn_state.exec_data_op ts
    | Txn_state.Need_unlock _ -> ignore (Txn_state.perform_unlock ts)
    | Txn_state.At_end -> failwith "advance: past end"
  done

let filler = Program.assign "v" Expr.(Mix (var "v"))

let program_with_locks ~name ~length locks =
  Program.make ~name
    ~locals:[ ("v", Value.int 0) ]
    (List.init length (fun pc ->
         match List.assoc_opt pc locks with
         | Some e -> Program.lock_x e
         | None -> filler))

(* --- Figure 1 --------------------------------------------------------- *)

let fig1_states () =
  let store =
    Store.of_list (List.map (fun e -> (e, Value.int 0)) [ "a"; "b"; "c"; "e" ])
  in
  let mk id program = Txn_state.create ~strategy:Strategy.Mcs ~id ~store program in
  let ts2 =
    mk 2 (program_with_locks ~name:"T2" ~length:16 [ (8, "b"); (10, "a"); (12, "e") ])
  in
  let ts3 = mk 3 (program_with_locks ~name:"T3" ~length:16 [ (5, "c"); (11, "b") ]) in
  let ts4 = mk 4 (program_with_locks ~name:"T4" ~length:16 [ (10, "e"); (15, "c") ]) in
  advance ts2 ~stop_pc:12;
  advance ts3 ~stop_pc:11;
  advance ts4 ~stop_pc:15;
  (ts2, ts3, ts4)

let test_fig1_costs () =
  let ts2, ts3, ts4 = fig1_states () in
  checki "T2: 12 - 8 = 4" 4 (Txn_state.cost_to_release ts2 "b");
  checki "T3: 11 - 5 = 6" 6 (Txn_state.cost_to_release ts3 "c");
  checki "T4: 15 - 10 = 5" 5 (Txn_state.cost_to_release ts4 "e")

let test_fig1_victim_choice () =
  let ts2, ts3, ts4 = fig1_states () in
  let states = [ (2, ts2); (3, ts3); (4, ts4) ] in
  let cycles = [ [ (4, "e"); (3, "c"); (2, "b") ] ] in
  let decision =
    Resolver.choose ~policy:Policy.Min_cost ~requester:2
      ~entry_order:Fun.id
      ~release_cost:(fun v es ->
        let ts = List.assoc v states in
        List.fold_left
          (fun acc e -> max acc (Txn_state.cost_to_release ts e))
          0 es)
      ~rng:(Rng.make 1) cycles
  in
  checkb "T2 chosen, releasing b" true
    (decision.Resolver.victims = [ (2, [ "b" ]) ]);
  checkb "optimal" true decision.Resolver.optimal

let test_fig1_rollback_frees_a () =
  (* T2 locked a after b, so rolling T2 back to release b also releases a
     — the paper's "T1 no longer waits for T2". *)
  let ts2, _, _ = fig1_states () in
  let target = Txn_state.rollback_target ts2 "b" in
  let released = Txn_state.rollback_to ts2 target in
  checkb "a and b released" true (List.sort compare released = [ "a"; "b" ]);
  checki "T2 resumes at its 8th state" 8 (Txn_state.pc ts2);
  checkb "e was never held" true (Txn_state.holds ts2 "e" = None)

let test_fig1_graph_is_single_cycle () =
  let wfg = Waits_for.create () in
  List.iter (Waits_for.add_txn wfg) [ 1; 2; 3; 4 ];
  Waits_for.set_wait wfg ~waiter:2 ~holders:[ 4 ] "e";
  Waits_for.set_wait wfg ~waiter:3 ~holders:[ 2 ] "b";
  Waits_for.set_wait wfg ~waiter:4 ~holders:[ 3 ] "c";
  Waits_for.set_wait wfg ~waiter:1 ~holders:[ 2 ] "a";
  checki "one cycle through T2" 1 (List.length (Waits_for.cycles_through wfg 2));
  checkb "forest plus one cycle shape" false (Waits_for.is_exclusive_forest wfg);
  Waits_for.clear_wait wfg 2;
  checkb "removing T2's wait restores the forest" true
    (Waits_for.is_exclusive_forest wfg)

(* --- Figure 2 --------------------------------------------------------- *)

let test_fig2_policies_differ () =
  (* One deadlock, two doctrines: pure min-cost sacrifices the cheap old
     transaction; Theorem 2's ordering spares it. *)
  let cycles = [ [ (2, "f"); (3, "b") ] ] in
  let cost v _ = if v = 2 then 2 else 9 in
  let run policy =
    (Resolver.choose ~policy ~requester:3 ~entry_order:Fun.id
       ~release_cost:cost ~rng:(Rng.make 1) cycles)
      .Resolver.victims
  in
  checkb "min-cost preempts old T2" true (run Policy.Min_cost = [ (2, [ "f" ]) ]);
  checkb "ordered protects T2, rolls requester" true
    (run Policy.Ordered_min_cost = [ (3, [ "b" ]) ])

let test_fig2_mutual_preemption_livelock () =
  (* Dynamic counterpart: a hot exclusive workload under Min_cost with
     MCS's minimal rollbacks live-locks (the paper's "potentially
     infinite" scenario), while Ordered_min_cost finishes. Bounded tick
     budget turns the livelock into an observable non-completion. *)
  let module Generator = Prb_workload.Generator in
  let module Scheduler = Prb_core.Scheduler in
  let params =
    {
      Generator.default_params with
      n_entities = 16;
      zipf_theta = 0.9;
      max_locks = 8;
      read_fraction = 0.0;
    }
  in
  let run policy =
    let config =
      {
        Scheduler.default_config with
        strategy = Strategy.Mcs;
        policy;
        max_ticks = 60_000;
      }
    in
    let r =
      Prb_sim.Sim.run_generated
        ~config:{ Prb_sim.Sim.scheduler = config; mpl = 10 }
        ~params ~seed:42 ~n_txns:120 ()
    in
    r.Prb_sim.Sim.stats.Scheduler.commits
  in
  let ordered = run Policy.Ordered_min_cost in
  let min_cost = run Policy.Min_cost in
  checki "ordered finishes everything" 120 ordered;
  checkb "min-cost stalls in mutual preemption" true (min_cost < 120)

(* --- Figure 3 --------------------------------------------------------- *)

let fig3_configuration () =
  let locks = Lock_table.create ~fair:false () in
  let wfg = Waits_for.create () in
  List.iter (Waits_for.add_txn wfg) [ 1; 2; 3 ];
  let must_grant id mode e =
    match Lock_table.request locks id mode e with
    | Lock_table.Granted -> ()
    | Lock_table.Blocked _ -> assert false
  in
  must_grant 1 Lock_mode.Exclusive "a";
  must_grant 1 Lock_mode.Exclusive "b";
  must_grant 2 Lock_mode.Shared "f";
  must_grant 3 Lock_mode.Shared "f";
  (match Lock_table.request locks 2 Lock_mode.Exclusive "a" with
  | Lock_table.Blocked holders -> Waits_for.set_wait wfg ~waiter:2 ~holders "a"
  | Lock_table.Granted -> assert false);
  (match Lock_table.request locks 3 Lock_mode.Exclusive "b" with
  | Lock_table.Blocked holders -> Waits_for.set_wait wfg ~waiter:3 ~holders "b"
  | Lock_table.Granted -> assert false);
  (match Lock_table.request locks 1 Lock_mode.Exclusive "f" with
  | Lock_table.Blocked holders -> Waits_for.set_wait wfg ~waiter:1 ~holders "f"
  | Lock_table.Granted -> assert false);
  (locks, wfg)

let test_fig3_two_cycles_through_requester () =
  let _, wfg = fig3_configuration () in
  let cycles = Waits_for.cycles_through wfg 1 in
  checki "two cycles" 2 (List.length cycles);
  List.iter
    (fun c -> checkb "T1 on every cycle" true (List.mem 1 c))
    cycles

let test_fig3_conflict_classification () =
  let locks, _ = fig3_configuration () in
  checkb "X on shared-held f is Type 2" true
    (Lock_table.classify locks 9 Lock_mode.Exclusive "f" = Lock_table.Type2);
  checkb "S on X-held a is Type 1" true
    (Lock_table.classify locks 9 Lock_mode.Shared "a" = Lock_table.Type1)

let test_fig3_cut_alternatives () =
  let _, wfg = fig3_configuration () in
  let cycles = Waits_for.cycles_through wfg 1 in
  let exact cost =
    match Cutset.exact { Cutset.cycles; cost } with
    | Some cut -> cut
    | None -> Alcotest.fail "exact solver gave up"
  in
  checkil "uniform costs: cut {T1}" [ 1 ] (exact (fun _ -> 1.0));
  checkil "T1 expensive: cut {T2, T3}" [ 2; 3 ]
    (exact (fun v -> if v = 1 then 5.0 else 1.0))

(* --- Figure 4 --------------------------------------------------------- *)

(* DESIGN.md's reconstruction: 6 locks; entity A written in segments
   1, 3, 4; local c written in segments 4 and 6 (the "C := K" write is the
   segment-4 one); entity B written in segments 5 and 6. With C := K only
   states 0 and 6 are well-defined; deleting it frees state 4. *)
let fig4_txn ~with_ck =
  let ops =
    [
      Program.lock_x "A";
      Program.write "A" Expr.(int 1);
      Program.lock_x "B";
      filler;
      Program.lock_x "C";
      Program.write "A" Expr.(int 2);
      Program.lock_x "D";
      Program.write "A" Expr.(int 3);
    ]
    @ (if with_ck then [ Program.assign "c" Expr.(int 7) ] else [])
    @ [
        Program.lock_x "E";
        Program.write "B" Expr.(int 4);
        Program.lock_x "F";
        Program.write "B" Expr.(int 5);
        (if with_ck then Program.assign "c" Expr.(int 8)
         else Program.assign "w" Expr.(int 9));
      ]
  in
  Program.make
    ~name:(if with_ck then "T1" else "T1'")
    ~locals:[ ("v", Value.int 0); ("c", Value.int 0); ("w", Value.int 0) ]
    ops

let test_fig4_only_trivial_states () =
  checkil "only 0 and 6 well-defined" [ 0; 6 ]
    (Sdg_view.well_defined_states (fig4_txn ~with_ck:true))

let test_fig4_deleting_write_frees_state4 () =
  checkil "0, 4 and 6" [ 0; 4; 6 ]
    (Sdg_view.well_defined_states (fig4_txn ~with_ck:false))

let test_fig4_articulation_view_agrees () =
  List.iter
    (fun with_ck ->
      let p = fig4_txn ~with_ck in
      checkil "Theorem 4 / Corollary 1"
        (Sdg_view.well_defined_states p)
        (Sdg_view.well_defined_via_articulation p))
    [ true; false ]

let test_fig4_runtime_agrees () =
  let store =
    Store.of_list
      (List.map (fun e -> (e, Value.int 0)) [ "A"; "B"; "C"; "D"; "E"; "F" ])
  in
  List.iter
    (fun with_ck ->
      let p = fig4_txn ~with_ck in
      let ts = Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store p in
      advance ts ~stop_pc:(Program.length p);
      checkil "runtime = static"
        (Sdg_view.well_defined_states p)
        (Txn_state.well_defined_states ts))
    [ true; false ]

let test_fig4_rollback_stops_at_4 () =
  (* In T1', a single-copy rollback that must release F (lock state 5) can
     stop at the well-defined state 4 instead of falling to 0. *)
  let store =
    Store.of_list
      (List.map (fun e -> (e, Value.int 0)) [ "A"; "B"; "C"; "D"; "E"; "F" ])
  in
  let p = fig4_txn ~with_ck:false in
  let ts = Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store p in
  advance ts ~stop_pc:(Program.length p);
  checki "target for F" 4 (Txn_state.rollback_target ts "F");
  checkb "E and F released" true
    (List.sort compare (Txn_state.rollback_to ts 4) = [ "E"; "F" ]);
  (* with C := K present the same rollback must fall all the way to lock
     state 0 — the only non-trivial well-defined state left *)
  let ts' =
    Txn_state.create ~strategy:Strategy.Sdg ~id:1 ~store (fig4_txn ~with_ck:true)
  in
  advance ts' ~stop_pc:(Program.length (fig4_txn ~with_ck:true));
  checki "target collapses to lock state 0" 0 (Txn_state.rollback_target ts' "F")

(* --- Figure 5 --------------------------------------------------------- *)

let test_fig5_clustering_gain () =
  let t1 = fig4_txn ~with_ck:true in
  let t2 = Program.cluster_writes t1 in
  let wd p = List.length (Sdg_view.well_defined_states p) in
  checki "T1 keeps 2 of 7" 2 (wd t1);
  checki "clustered T2 keeps all 7" 7 (wd t2);
  checki "damage span vanishes" 0 (Program.damage_span t2);
  checkb "same operations, just reordered" true
    (Program.length t1 = Program.length t2)

let test_fig5_three_phase_immune () =
  let t1 = fig4_txn ~with_ck:true in
  let tp = Program.make_three_phase t1 in
  checkb "three-phase achieved" true (Program.is_three_phase tp);
  (* a three-phase transaction performs no monitored writes *)
  let store =
    Store.of_list
      (List.map (fun e -> (e, Value.int 0)) [ "A"; "B"; "C"; "D"; "E"; "F" ])
  in
  let ts = Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store tp in
  advance ts ~stop_pc:(Program.length tp);
  checki "zero monitored writes" 0 (Txn_state.monitored_writes ts)

let () =
  Alcotest.run "prb_figures"
    [
      ( "figure 1",
        [
          Alcotest.test_case "costs 4/6/5" `Quick test_fig1_costs;
          Alcotest.test_case "T2 chosen" `Quick test_fig1_victim_choice;
          Alcotest.test_case "rollback frees a" `Quick test_fig1_rollback_frees_a;
          Alcotest.test_case "single-cycle graph" `Quick test_fig1_graph_is_single_cycle;
        ] );
      ( "figure 2",
        [
          Alcotest.test_case "policies differ" `Quick test_fig2_policies_differ;
          Alcotest.test_case "mutual preemption livelock" `Slow
            test_fig2_mutual_preemption_livelock;
        ] );
      ( "figure 3",
        [
          Alcotest.test_case "two cycles through requester" `Quick
            test_fig3_two_cycles_through_requester;
          Alcotest.test_case "conflict types" `Quick test_fig3_conflict_classification;
          Alcotest.test_case "cut alternatives" `Quick test_fig3_cut_alternatives;
        ] );
      ( "figure 4",
        [
          Alcotest.test_case "only trivial states" `Quick test_fig4_only_trivial_states;
          Alcotest.test_case "deletion frees state 4" `Quick
            test_fig4_deleting_write_frees_state4;
          Alcotest.test_case "articulation agreement" `Quick
            test_fig4_articulation_view_agrees;
          Alcotest.test_case "runtime agreement" `Quick test_fig4_runtime_agrees;
          Alcotest.test_case "rollback stops at 4" `Quick test_fig4_rollback_stops_at_4;
        ] );
      ( "figure 5",
        [
          Alcotest.test_case "clustering gain" `Quick test_fig5_clustering_gain;
          Alcotest.test_case "three-phase immunity" `Quick test_fig5_three_phase_immune;
        ] );
    ]
