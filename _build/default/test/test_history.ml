(* Tests for Prb_history: the conflict-serializability oracle. *)

module History = Prb_history.History
module Lock_mode = Prb_txn.Lock_mode

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let s = Lock_mode.Shared
let x = Lock_mode.Exclusive

let test_serial_history () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:5 1 "a";
  History.commit_txn h 1;
  History.note_grant h ~tick:6 2 "a" x;
  History.note_release h ~tick:9 2 "a";
  History.commit_txn h 2;
  checkb "serializable" true (History.serializable h);
  checkb "order 1 then 2" true
    (History.equivalent_serial_order h = Some [ 1; 2 ])

let test_shared_reads_commute () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" s;
  History.note_grant h ~tick:1 2 "a" s;
  History.note_release h ~tick:5 1 "a";
  History.note_release h ~tick:6 2 "a";
  History.commit_txn h 1;
  History.commit_txn h 2;
  checkb "S/S overlap fine" true (History.serializable h);
  checkb "no precedence edge" true
    (Prb_graph.Digraph.n_edges (History.precedence_graph h) = 0)

let test_overlapping_conflict_detected () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_grant h ~tick:2 2 "a" x (* impossible under a correct lock
                                          manager — the oracle must flag it *);
  History.note_release h ~tick:5 1 "a";
  History.note_release h ~tick:6 2 "a";
  History.commit_txn h 1;
  History.commit_txn h 2;
  checki "one overlap" 1 (List.length (History.overlapping_conflicts h));
  checkb "not serializable" false (History.serializable h)

let test_cyclic_precedence () =
  let h = History.create () in
  (* T1 before T2 on a; T2 before T1 on b: classic non-serializable. *)
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  History.note_grant h ~tick:2 2 "a" x;
  History.note_release h ~tick:3 2 "a";
  History.note_grant h ~tick:2 2 "b" x;
  History.note_release h ~tick:3 2 "b";
  History.note_grant h ~tick:4 1 "b" x;
  History.note_release h ~tick:5 1 "b";
  History.commit_txn h 1;
  History.commit_txn h 2;
  checkb "cycle -> not serializable" false (History.serializable h);
  checkb "no serial order" true (History.equivalent_serial_order h = None)

let test_discard_erases () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.discard h 1 "a" (* partial rollback released it *);
  History.note_release h ~tick:9 1 "a" (* release after discard: no-op *);
  History.commit_txn h 1;
  checkb "no trace" true (History.committed h = [])

let test_discard_txn () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  History.note_grant h ~tick:2 1 "b" x;
  History.discard_txn h 1;
  History.commit_txn h 1;
  checkb "everything gone" true (History.committed h = [])

let test_commit_with_open_interval_rejected () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  Alcotest.check_raises "open interval"
    (Invalid_argument "History.commit_txn: transaction still holds a lock")
    (fun () -> History.commit_txn h 1)

let test_uncommitted_excluded () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  (* never committed *)
  checkb "nothing committed" true (History.committed h = []);
  checkb "vacuously serializable" true (History.serializable h)

let test_relock_after_rollback () =
  let h = History.create () in
  (* grant, discard (rollback), re-grant later: only the second interval
     survives *)
  History.note_grant h ~tick:0 1 "a" x;
  History.discard h 1 "a";
  History.note_grant h ~tick:10 1 "a" x;
  History.note_release h ~tick:12 1 "a";
  History.commit_txn h 1;
  (match History.committed h with
  | [ i ] ->
      checki "second grant tick" 10 i.History.granted_at;
      checki "release tick" 12 i.History.released_at
  | _ -> Alcotest.fail "expected exactly one interval")

let () =
  Alcotest.run "prb_history"
    [
      ( "serializability",
        [
          Alcotest.test_case "serial history" `Quick test_serial_history;
          Alcotest.test_case "shared reads commute" `Quick test_shared_reads_commute;
          Alcotest.test_case "overlap detection" `Quick test_overlapping_conflict_detected;
          Alcotest.test_case "cyclic precedence" `Quick test_cyclic_precedence;
        ] );
      ( "rollback bookkeeping",
        [
          Alcotest.test_case "discard erases" `Quick test_discard_erases;
          Alcotest.test_case "discard txn" `Quick test_discard_txn;
          Alcotest.test_case "open interval rejected" `Quick
            test_commit_with_open_interval_rejected;
          Alcotest.test_case "uncommitted excluded" `Quick test_uncommitted_excluded;
          Alcotest.test_case "relock after rollback" `Quick test_relock_after_rollback;
        ] );
    ]
