(* Tests for Prb_core.Resolver and Policy: victim selection over cycle
   sets, including the Figure 1 configuration. *)

module Resolver = Prb_core.Resolver
module Policy = Prb_core.Policy
module Rng = Prb_util.Rng

let checkb = Alcotest.(check bool)

let choose ?(policy = Policy.Min_cost) ?(requester = 1)
    ?(entry = fun v -> v) ?(cost = fun _ es -> List.length es) cycles =
  Resolver.choose ~policy ~requester ~entry_order:entry ~release_cost:cost
    ~rng:(Rng.make 1) cycles

let victims d = List.map fst d.Resolver.victims

let test_policy_string_roundtrip () =
  List.iter
    (fun p ->
      checkb "round-trip" true (Policy.of_string (Policy.to_string p) = Some p))
    Policy.all;
  checkb "garbage" true (Policy.of_string "nope" = None)

(* Figure 1: cycle over T2,T3,T4 with costs 4,6,5 — min-cost picks T2. *)
let fig1_cycles = [ [ (4, "e"); (3, "c"); (2, "b") ] ]

let fig1_cost v _ = match v with 2 -> 4 | 3 -> 6 | 4 -> 5 | _ -> 99

let test_min_cost_fig1 () =
  let d = choose ~requester:2 ~cost:fig1_cost fig1_cycles in
  checkb "T2 chosen" true (victims d = [ 2 ]);
  checkb "optimal" true d.Resolver.optimal;
  checkb "releases b" true (d.Resolver.victims = [ (2, [ "b" ]) ])

let test_requester_policy () =
  let d = choose ~policy:Policy.Requester ~requester:2 ~cost:fig1_cost fig1_cycles in
  checkb "requester chosen" true (victims d = [ 2 ])

let test_youngest_policy () =
  let d = choose ~policy:Policy.Youngest ~requester:2 ~cost:fig1_cost fig1_cycles in
  checkb "max entry order chosen" true (victims d = [ 4 ])

let test_ordered_restricts_to_younger () =
  (* requester 3: only 4 is younger; min cost among {4} = 4 even though 2
     is cheaper overall *)
  let cycles = [ [ (4, "e"); (3, "c"); (2, "b") ] ] in
  let d = choose ~policy:Policy.Ordered_min_cost ~requester:3 ~cost:fig1_cost cycles in
  checkb "older T2 protected" true (victims d = [ 4 ])

let test_ordered_falls_back_to_requester () =
  (* requester 4 is the youngest: no eligible younger member, so it rolls
     itself back *)
  let d = choose ~policy:Policy.Ordered_min_cost ~requester:4 ~cost:fig1_cost fig1_cycles in
  checkb "requester fallback" true (victims d = [ 4 ])

let test_multi_cycle_shared_vertex () =
  (* Figure 3(c): two cycles, both through requester 1. With uniform
     costs the shared vertex is the optimal cut. *)
  let cycles = [ [ (2, "f"); (1, "a") ]; [ (3, "f"); (1, "b") ] ] in
  let d = choose ~requester:1 ~cost:(fun _ _ -> 1) cycles in
  checkb "shared vertex cut" true (victims d = [ 1 ]);
  checkb "collects both entities" true
    (List.assoc 1 d.Resolver.victims = [ "a"; "b" ])

let test_multi_cycle_split_cut () =
  let cycles = [ [ (2, "f"); (1, "a") ]; [ (3, "f"); (1, "b") ] ] in
  let cost v _ = if v = 1 then 10 else 1 in
  let d = choose ~requester:1 ~cost cycles in
  checkb "split cut {2,3}" true (victims d = [ 2; 3 ])

let test_random_policy_breaks_all () =
  let cycles = [ [ (2, "f"); (1, "a") ]; [ (3, "g"); (1, "b") ] ] in
  let d = choose ~policy:Policy.Random_victim ~requester:1 cycles in
  (* whatever was picked must hit both cycles *)
  let hit cycle = List.exists (fun (m, _) -> List.mem m (victims d)) cycle in
  checkb "all cycles hit" true (List.for_all hit cycles)

let test_empty_cycles_rejected () =
  Alcotest.check_raises "no cycles" (Invalid_argument "Resolver.choose: no cycles")
    (fun () -> ignore (choose []))

let test_requester_missing_rejected () =
  Alcotest.check_raises "requester missing"
    (Invalid_argument "Resolver.choose: requester missing from a cycle")
    (fun () -> ignore (choose ~requester:9 fig1_cycles))

(* qcheck: for every policy, the decision is a cut (victims hit every
   cycle). *)
let arbitrary_cycles requester =
  QCheck.Gen.(
    list_size (int_range 1 4)
      (list_size (int_range 1 3)
         (pair (int_range 2 6) (oneofl [ "a"; "b"; "c" ])))
    |> map (fun cycles ->
           List.map (fun c -> ((requester, "r") :: c)) cycles))

let qcheck_decision_is_cut policy =
  QCheck.Test.make
    ~name:(Printf.sprintf "decision hits every cycle (%s)" (Policy.to_string policy))
    ~count:300
    (QCheck.make (arbitrary_cycles 1))
    (fun cycles ->
      let d =
        Resolver.choose ~policy ~requester:1 ~entry_order:Fun.id
          ~release_cost:(fun v es -> v + List.length es)
          ~rng:(Rng.make 7) cycles
      in
      let vs = victims d in
      List.for_all (fun c -> List.exists (fun (m, _) -> List.mem m vs) c) cycles)

(* qcheck: victims' entity lists cover exactly their cycle arcs *)
let qcheck_victim_entities_sound =
  QCheck.Test.make ~name:"victim entity lists come from their arcs" ~count:300
    (QCheck.make (arbitrary_cycles 1))
    (fun cycles ->
      let d =
        Resolver.choose ~policy:Policy.Min_cost ~requester:1
          ~entry_order:Fun.id
          ~release_cost:(fun _ es -> List.length es)
          ~rng:(Rng.make 7) cycles
      in
      List.for_all
        (fun (v, entities) ->
          List.for_all
            (fun e ->
              List.exists (List.exists (fun (m, e') -> m = v && e = e')) cycles)
            entities)
        d.Resolver.victims)

let () =
  Alcotest.run "prb_resolver"
    [
      ( "policies",
        [
          Alcotest.test_case "string round-trip" `Quick test_policy_string_roundtrip;
          Alcotest.test_case "min-cost on Figure 1" `Quick test_min_cost_fig1;
          Alcotest.test_case "requester" `Quick test_requester_policy;
          Alcotest.test_case "youngest" `Quick test_youngest_policy;
          Alcotest.test_case "ordered protects elders" `Quick
            test_ordered_restricts_to_younger;
          Alcotest.test_case "ordered requester fallback" `Quick
            test_ordered_falls_back_to_requester;
        ] );
      ( "multi-cycle",
        [
          Alcotest.test_case "shared vertex cut" `Quick test_multi_cycle_shared_vertex;
          Alcotest.test_case "split cut" `Quick test_multi_cycle_split_cut;
          Alcotest.test_case "random breaks all" `Quick test_random_policy_breaks_all;
          Alcotest.test_case "empty rejected" `Quick test_empty_cycles_rejected;
          Alcotest.test_case "requester missing rejected" `Quick
            test_requester_missing_rejected;
        ] );
      ( "properties",
        List.map (fun p -> QCheck_alcotest.to_alcotest (qcheck_decision_is_cut p)) Policy.all
        @ [ QCheck_alcotest.to_alcotest qcheck_victim_entities_sound ] );
    ]
