(* Tests for Prb_txn: lock modes, the expression language, programs —
   validation, lock-index analysis, structure transforms. *)

module Value = Prb_storage.Value
module Lock_mode = Prb_txn.Lock_mode
module Expr = Prb_txn.Expr
module Program = Prb_txn.Program

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Lock_mode --- *)

let test_compatibility () =
  checkb "S/S" true (Lock_mode.compatible Lock_mode.Shared Lock_mode.Shared);
  checkb "S/X" false (Lock_mode.compatible Lock_mode.Shared Lock_mode.Exclusive);
  checkb "X/S" false (Lock_mode.compatible Lock_mode.Exclusive Lock_mode.Shared);
  checkb "X/X" false (Lock_mode.compatible Lock_mode.Exclusive Lock_mode.Exclusive)

(* --- Expr --- *)

let env bindings v = List.assoc v bindings

let test_expr_eval () =
  let e = Expr.(var "x" + (int 3 * var "y") - int 1) in
  let result = Expr.eval (env [ ("x", Value.int 10); ("y", Value.int 2) ]) e in
  checkb "10 + 6 - 1" true (Value.equal result (Value.int 15))

let test_expr_min_max_neg () =
  let ev x = Expr.eval (env []) x in
  checkb "min" true (Value.equal (ev (Expr.Min (Expr.int 2, Expr.int 5))) (Value.int 2));
  checkb "max" true (Value.equal (ev (Expr.Max (Expr.int 2, Expr.int 5))) (Value.int 5));
  checkb "neg" true (Value.equal (ev (Expr.Neg (Expr.int 4))) (Value.int (-4)))

let test_expr_mix_deterministic () =
  let ev x = Expr.eval (env []) x in
  checkb "deterministic" true
    (Value.equal (ev (Expr.Mix (Expr.int 5))) (ev (Expr.Mix (Expr.int 5))))

let test_expr_vars () =
  let e = Expr.(Mix (var "b") + var "a" + var "b") in
  Alcotest.(check (list string)) "sorted unique" [ "a"; "b" ] (Expr.vars e)

let test_expr_equal () =
  checkb "structural" true Expr.(equal (var "x" + int 1) (var "x" + int 1));
  checkb "different" false Expr.(equal (var "x" + int 1) (var "x" + int 2));
  checkb "op matters" false Expr.(equal (var "x" + int 1) (var "x" - int 1))

(* --- Program construction and validation --- *)

let valid_program () =
  Program.make ~name:"ok"
    ~locals:[ ("v", Value.int 0) ]
    [
      Program.lock_x "a";
      Program.read "a" "v";
      Program.write "a" Expr.(var "v" + int 1);
      Program.lock_s "b";
      Program.read "b" "v";
      Program.unlock "a";
      Program.unlock "b";
    ]

let test_validate_ok () =
  checkb "valid" true (Program.validate (valid_program ()) = Ok ())

let expect_violation program violation =
  match Program.validate program with
  | Ok () -> Alcotest.fail "expected violation"
  | Error vs ->
      checkb "violation found" true (List.exists (fun (_, v) -> v = violation) vs)

let test_validate_two_phase () =
  let p =
    Program.make ~name:"2pl" ~locals:[]
      [ Program.lock_x "a"; Program.unlock "a"; Program.lock_x "b" ]
  in
  expect_violation p Program.Lock_after_unlock

let test_validate_relock () =
  let p =
    Program.make ~name:"relock" ~locals:[]
      [ Program.lock_x "a"; Program.lock_x "a" ]
  in
  expect_violation p (Program.Already_locked "a")

let test_validate_unlock_not_held () =
  let p = Program.make ~name:"u" ~locals:[] [ Program.unlock "a" ] in
  expect_violation p (Program.Unlock_not_held "a")

let test_validate_read_without_lock () =
  let p =
    Program.make ~name:"r" ~locals:[ ("v", Value.int 0) ] [ Program.read "a" "v" ]
  in
  expect_violation p (Program.Read_without_lock "a")

let test_validate_write_without_x () =
  let shared =
    Program.make ~name:"w" ~locals:[]
      [ Program.lock_s "a"; Program.write "a" (Expr.int 1) ]
  in
  expect_violation shared (Program.Write_without_exclusive "a");
  let unlocked =
    Program.make ~name:"w2" ~locals:[] [ Program.write "a" (Expr.int 1) ]
  in
  expect_violation unlocked (Program.Write_without_exclusive "a")

let test_validate_undeclared_var () =
  let p =
    Program.make ~name:"v" ~locals:[] [ Program.assign "ghost" (Expr.int 1) ]
  in
  expect_violation p (Program.Undeclared_variable "ghost");
  let p2 =
    Program.make ~name:"v2" ~locals:[]
      [ Program.lock_x "a"; Program.write "a" (Expr.var "ghost") ]
  in
  expect_violation p2 (Program.Undeclared_variable "ghost")

let test_make_duplicate_local () =
  Alcotest.check_raises "duplicate local"
    (Invalid_argument "Program.make: duplicate local variable") (fun () ->
      ignore
        (Program.make ~name:"d"
           ~locals:[ ("v", Value.int 0); ("v", Value.int 1) ]
           []))

(* --- Lock indices and analysis --- *)

(* lock A; w A; lock B; assign; w A; lock C; w C *)
let analysis_program () =
  Program.make ~name:"an"
    ~locals:[ ("v", Value.int 0) ]
    [
      Program.lock_x "A";
      Program.write "A" (Expr.int 1);
      Program.lock_x "B";
      Program.assign "v" (Expr.int 2);
      Program.write "A" (Expr.int 3);
      Program.lock_x "C";
      Program.write "C" (Expr.int 4);
    ]

let test_lock_indices () =
  let p = analysis_program () in
  checki "n_locks" 3 (Program.n_locks p);
  checki "op 0 (lock A) idx" 0 (Program.lock_index_of_op p 0);
  checki "op 1 (write A) idx" 1 (Program.lock_index_of_op p 1);
  checki "op 4 (write A again) idx" 2 (Program.lock_index_of_op p 4);
  checki "op 6 (write C) idx" 3 (Program.lock_index_of_op p 6);
  checki "lock 1 position" 2 (Program.lock_op_position p 1);
  checkb "lock_at 2" true (Program.lock_at p 2 = (Lock_mode.Exclusive, "C"));
  checkb "lock state of B" true (Program.lock_state_of_entity p "B" = Some 1);
  checkb "lock state of missing" true (Program.lock_state_of_entity p "z" = None);
  checkb "last lock position" true (Program.last_lock_position p = Some 5)

let test_write_profile_and_damage () =
  let p = analysis_program () in
  let profile = Program.write_profile p in
  checkb "A written in segments 1 and 2" true
    (List.assoc "G:A" profile = [ 1; 2 ]);
  checkb "C written once" true (List.assoc "G:C" profile = [ 3 ]);
  checkb "local v" true (List.assoc "L:v" profile = [ 2 ]);
  checki "damage span = A's spread" 1 (Program.damage_span p)

let test_three_phase_detection () =
  checkb "analysis program is not three-phase" false
    (Program.is_three_phase (analysis_program ()));
  let tp =
    Program.make ~name:"tp" ~locals:[]
      [
        Program.lock_x "A";
        Program.lock_x "B";
        Program.write "A" (Expr.int 1);
        Program.write "B" (Expr.int 2);
        Program.unlock "A";
        Program.unlock "B";
      ]
  in
  checkb "three-phase" true (Program.is_three_phase tp)

(* --- Transforms --- *)

(* Evaluate a program sequentially against a store and return the final
   store plus local values — the semantics oracle for reorderings. *)
let run_sequential program store_bindings =
  let store = Hashtbl.create 8 in
  List.iter (fun (e, v) -> Hashtbl.replace store e v) store_bindings;
  let locals = Hashtbl.create 8 in
  List.iter (fun (v, x) -> Hashtbl.replace locals v x) program.Program.locals;
  let env v = Hashtbl.find locals v in
  Array.iter
    (fun op ->
      match op with
      | Program.Lock _ | Program.Unlock _ -> ()
      | Program.Read (e, v) -> Hashtbl.replace locals v (Hashtbl.find store e)
      | Program.Write (e, x) -> Hashtbl.replace store e (Expr.eval env x)
      | Program.Assign (v, x) -> Hashtbl.replace locals v (Expr.eval env x))
    program.Program.ops;
  let dump tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
  (dump store, dump locals)

let spread_program () =
  Program.make ~name:"spread"
    ~locals:[ ("v", Value.int 0); ("w", Value.int 0) ]
    [
      Program.lock_x "A";
      Program.read "A" "v";
      Program.write "A" Expr.(var "v" + int 1);
      Program.lock_x "B";
      Program.read "B" "w";
      Program.write "B" Expr.(var "w" + int 2);
      Program.lock_x "C";
      Program.write "A" Expr.(var "v" + int 10);
      Program.lock_x "D";
      Program.write "B" Expr.(var "w" + int 20);
      Program.write "A" Expr.(var "v" + int 100);
    ]

let test_cluster_writes_preserves_semantics () =
  let p = spread_program () in
  let q = Program.cluster_writes p in
  let bindings =
    [ ("A", Value.int 5); ("B", Value.int 7); ("C", Value.int 0); ("D", Value.int 0) ]
  in
  checkb "same final state" true
    (run_sequential p bindings = run_sequential q bindings);
  checkb "still valid" true (Program.validate q = Ok ())

let test_cluster_writes_reduces_damage () =
  let p = spread_program () in
  let q = Program.cluster_writes p in
  checkb "damage reduced" true (Program.damage_span q < Program.damage_span p);
  checki "perfectly clustered here" 0 (Program.damage_span q)

let test_cluster_writes_respects_dependencies () =
  (* A read of the entity sits between two writes: they must not merge. *)
  let p =
    Program.make ~name:"dep"
      ~locals:[ ("v", Value.int 0) ]
      [
        Program.lock_x "A";
        Program.write "A" (Expr.int 1);
        Program.lock_x "B";
        Program.read "A" "v";
        Program.write "A" Expr.(var "v" + int 1);
      ]
  in
  let q = Program.cluster_writes p in
  let bindings = [ ("A", Value.int 9); ("B", Value.int 0) ] in
  checkb "semantics preserved" true
    (run_sequential p bindings = run_sequential q bindings);
  checki "damage cannot shrink past the read" (Program.damage_span p)
    (Program.damage_span q)

let test_make_three_phase () =
  let p = spread_program () in
  let q = Program.make_three_phase p in
  checkb "became three-phase" true (Program.is_three_phase q);
  let bindings =
    [ ("A", Value.int 5); ("B", Value.int 7); ("C", Value.int 0); ("D", Value.int 0) ]
  in
  checkb "semantics preserved" true
    (run_sequential p bindings = run_sequential q bindings);
  checkb "still valid" true (Program.validate q = Ok ())

let test_hoist_locks () =
  let p = spread_program () in
  let q = Program.hoist_locks p in
  let bindings =
    [ ("A", Value.int 5); ("B", Value.int 7); ("C", Value.int 0); ("D", Value.int 0) ]
  in
  checkb "semantics preserved" true
    (run_sequential p bindings = run_sequential q bindings);
  checkb "still valid" true (Program.validate q = Ok ());
  (* C and D have no data dependences: their locks hoist to the front,
     shrinking the distance to the last lock request *)
  checkb "last lock moved earlier" true
    (Option.get (Program.last_lock_position q)
    < Option.get (Program.last_lock_position p));
  (* relative lock order is preserved *)
  let lock_order p =
    Array.to_list p.Program.ops
    |> List.filter_map (function Program.Lock (_, e) -> Some e | _ -> None)
  in
  Alcotest.(check (list string)) "lock order" (lock_order p) (lock_order q)

let test_acquire_update_release () =
  let p = spread_program () in
  let q = Program.make_acquire_update_release p in
  checkb "three-phase" true (Program.is_three_phase q);
  let bindings =
    [ ("A", Value.int 5); ("B", Value.int 7); ("C", Value.int 0); ("D", Value.int 0) ]
  in
  checkb "semantics preserved" true
    (run_sequential p bindings = run_sequential q bindings)

let test_equal () =
  checkb "equal to itself" true (Program.equal (spread_program ()) (spread_program ()));
  checkb "name matters" false
    (Program.equal (spread_program ()) (analysis_program ()))

(* qcheck: random straight-line programs keep semantics under both
   transforms. Generator: a sequence over 3 entities / 2 locals with all
   locks upfront so every op order is valid. *)
let arbitrary_program =
  let gen =
    QCheck.Gen.(
      let entity = oneofl [ "A"; "B"; "C" ] in
      let localv = oneofl [ "x"; "y" ] in
      let expr =
        oneof
          [
            map (fun n -> Expr.Const (Value.int n)) small_int;
            map (fun v -> Expr.Var v) localv;
            map2 (fun v n -> Expr.(Add (Var v, Const (Value.int n)))) localv small_int;
            map (fun v -> Expr.Mix (Expr.Var v)) localv;
          ]
      in
      let data_op =
        oneof
          [
            map2 (fun e v -> Program.read e v) entity localv;
            map2 (fun e x -> Program.write e x) entity expr;
            map2 (fun v x -> Program.assign v x) localv expr;
          ]
      in
      let* body = list_size (int_range 0 20) data_op in
      let prologue = [ Program.lock_x "A"; Program.lock_x "B"; Program.lock_x "C" ] in
      return
        (Program.make ~name:"rand"
           ~locals:[ ("x", Value.int 1); ("y", Value.int 2) ]
           (prologue @ body)))
  in
  QCheck.make gen ~print:(fun p -> Fmt.str "%a" Program.pp p)

let qcheck_transforms_preserve_semantics =
  QCheck.Test.make ~name:"cluster/three-phase preserve semantics" ~count:300
    arbitrary_program (fun p ->
      let bindings =
        [ ("A", Value.int 11); ("B", Value.int 22); ("C", Value.int 33) ]
      in
      let reference = run_sequential p bindings in
      run_sequential (Program.cluster_writes p) bindings = reference
      && run_sequential (Program.make_three_phase p) bindings = reference)

let qcheck_cluster_never_increases_damage =
  QCheck.Test.make ~name:"cluster_writes never increases damage span"
    ~count:300 arbitrary_program (fun p ->
      Program.damage_span (Program.cluster_writes p) <= Program.damage_span p)

let qcheck_transforms_keep_validity =
  QCheck.Test.make ~name:"transforms keep programs valid" ~count:300
    arbitrary_program (fun p ->
      Program.validate (Program.cluster_writes p) = Ok ()
      && Program.validate (Program.make_three_phase p) = Ok ())

let qcheck_hoist_preserves_semantics =
  QCheck.Test.make ~name:"hoist_locks preserves semantics and validity"
    ~count:300 arbitrary_program (fun p ->
      let bindings =
        [ ("A", Value.int 11); ("B", Value.int 22); ("C", Value.int 33) ]
      in
      let q = Program.hoist_locks p in
      Program.validate q = Ok ()
      && run_sequential p bindings = run_sequential q bindings)

(* --- Parser --- *)

module Parser = Prb_txn.Parser

let test_parse_basic () =
  let src =
    {|
transaction demo
  local bal = 0
  lockX(acct0)
  bal := read(acct0)
  write(acct0, (bal - 10))
  lockS(acct1)
  unlock(acct0)
  unlock(acct1)
|}
  in
  match Parser.parse src with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok p ->
      checkb "name" true (p.Program.name = "demo");
      checki "ops" 6 (Program.length p);
      checkb "valid" true (Program.validate p = Ok ())

let test_parse_expressions () =
  let src =
    {|
transaction exprs
  local x = 5
  local s = "hello"
  local b = true
  x := (x + 1)
  x := ((x * 2) - -3)
  x := min(x, max(x, 0))
  x := mix((- x))
|}
  in
  match Parser.parse src with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok p -> checki "four ops" 4 (Program.length p)

let test_parse_roundtrip_handwritten () =
  let p = spread_program () in
  match Parser.parse (Parser.to_string p) with
  | Error e -> Alcotest.failf "round-trip failed: %a" Parser.pp_error e
  | Ok q -> checkb "equal after round-trip" true (Program.equal p q)

let test_parse_many () =
  let src =
    {|
# two transactions in one file
transaction a
  lockX(e)
transaction b
  lockS(e)
|}
  in
  match Parser.parse_many src with
  | Error e -> Alcotest.failf "parse error: %a" Parser.pp_error e
  | Ok ps ->
      Alcotest.(check (list string))
        "names" [ "a"; "b" ]
        (List.map (fun p -> p.Program.name) ps)

let test_parse_errors_carry_lines () =
  (match Parser.parse "transaction t\n  bogus ~~~\n" with
  | Error e -> checki "line number" 2 e.Parser.line
  | Ok _ -> Alcotest.fail "expected error");
  (match Parser.parse "  lockX(a)\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "op before transaction must fail");
  match Parser.parse "transaction t\n  lockX(a)\n  local v = 0\n" with
  | Error e -> checki "locals after ops" 3 e.Parser.line
  | Ok _ -> Alcotest.fail "late local must fail"

let qcheck_parser_roundtrip =
  QCheck.Test.make ~name:"printer/parser round-trip" ~count:300
    arbitrary_program (fun p ->
      match Parser.parse (Parser.to_string p) with
      | Ok q -> Program.equal p q
      | Error _ -> false)

let qcheck_parser_roundtrip_generated =
  QCheck.Test.make ~name:"round-trip on generated workloads" ~count:100
    QCheck.small_int (fun seed ->
      List.for_all
        (fun p ->
          match Parser.parse (Parser.to_string p) with
          | Ok q -> Program.equal p q
          | Error _ -> false)
        (Prb_workload.Generator.generate Prb_workload.Generator.default_params
           ~seed ~n:3))

let () =
  Alcotest.run "prb_txn"
    [
      ("lock_mode", [ Alcotest.test_case "compatibility" `Quick test_compatibility ]);
      ( "expr",
        [
          Alcotest.test_case "eval arithmetic" `Quick test_expr_eval;
          Alcotest.test_case "min/max/neg" `Quick test_expr_min_max_neg;
          Alcotest.test_case "mix deterministic" `Quick test_expr_mix_deterministic;
          Alcotest.test_case "vars" `Quick test_expr_vars;
          Alcotest.test_case "equal" `Quick test_expr_equal;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valid program" `Quick test_validate_ok;
          Alcotest.test_case "two-phase" `Quick test_validate_two_phase;
          Alcotest.test_case "re-lock" `Quick test_validate_relock;
          Alcotest.test_case "unlock not held" `Quick test_validate_unlock_not_held;
          Alcotest.test_case "read without lock" `Quick test_validate_read_without_lock;
          Alcotest.test_case "write without X" `Quick test_validate_write_without_x;
          Alcotest.test_case "undeclared variable" `Quick test_validate_undeclared_var;
          Alcotest.test_case "duplicate local" `Quick test_make_duplicate_local;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "lock indices" `Quick test_lock_indices;
          Alcotest.test_case "write profile / damage" `Quick test_write_profile_and_damage;
          Alcotest.test_case "three-phase detection" `Quick test_three_phase_detection;
        ] );
      ( "transforms",
        [
          Alcotest.test_case "cluster preserves semantics" `Quick
            test_cluster_writes_preserves_semantics;
          Alcotest.test_case "cluster reduces damage" `Quick
            test_cluster_writes_reduces_damage;
          Alcotest.test_case "cluster respects dependencies" `Quick
            test_cluster_writes_respects_dependencies;
          Alcotest.test_case "make_three_phase" `Quick test_make_three_phase;
          Alcotest.test_case "hoist_locks" `Quick test_hoist_locks;
          Alcotest.test_case "acquire/update/release" `Quick
            test_acquire_update_release;
          QCheck_alcotest.to_alcotest qcheck_hoist_preserves_semantics;
          Alcotest.test_case "program equality" `Quick test_equal;
          QCheck_alcotest.to_alcotest qcheck_transforms_preserve_semantics;
          QCheck_alcotest.to_alcotest qcheck_cluster_never_increases_damage;
          QCheck_alcotest.to_alcotest qcheck_transforms_keep_validity;
        ] );
      ( "parser",
        [
          Alcotest.test_case "basic program" `Quick test_parse_basic;
          Alcotest.test_case "expressions" `Quick test_parse_expressions;
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip_handwritten;
          Alcotest.test_case "multiple transactions" `Quick test_parse_many;
          Alcotest.test_case "errors carry line numbers" `Quick
            test_parse_errors_carry_lines;
          QCheck_alcotest.to_alcotest qcheck_parser_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_parser_roundtrip_generated;
        ] );
    ]
