test/test_rollback.ml: Alcotest Fun List Prb_rollback Prb_storage Prb_txn Prb_util Printf QCheck QCheck_alcotest
