test/test_history.ml: Alcotest List Prb_graph Prb_history Prb_txn
