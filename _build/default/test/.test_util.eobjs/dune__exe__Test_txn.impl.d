test/test_txn.ml: Alcotest Array Fmt Hashtbl List Option Prb_storage Prb_txn Prb_workload QCheck QCheck_alcotest
