test/test_resolver.ml: Alcotest Fun List Prb_core Prb_util Printf QCheck QCheck_alcotest
