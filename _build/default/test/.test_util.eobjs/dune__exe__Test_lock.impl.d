test/test_lock.ml: Alcotest List Prb_lock Prb_txn Printf QCheck QCheck_alcotest
