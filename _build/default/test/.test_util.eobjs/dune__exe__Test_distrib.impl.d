test/test_distrib.ml: Alcotest List Prb_distrib Prb_history Prb_rollback Prb_storage Prb_txn Prb_workload QCheck QCheck_alcotest
