test/test_wfg.mli:
