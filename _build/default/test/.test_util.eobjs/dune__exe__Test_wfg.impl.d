test/test_wfg.ml: Alcotest Fmt Hashtbl List Prb_wfg QCheck QCheck_alcotest String
