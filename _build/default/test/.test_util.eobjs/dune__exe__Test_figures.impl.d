test/test_figures.ml: Alcotest Fun List Prb_core Prb_graph Prb_lock Prb_rollback Prb_sim Prb_storage Prb_txn Prb_util Prb_wfg Prb_workload
