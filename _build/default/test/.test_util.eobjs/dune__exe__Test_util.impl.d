test/test_util.ml: Alcotest Array Float Fun List Prb_util QCheck QCheck_alcotest String
