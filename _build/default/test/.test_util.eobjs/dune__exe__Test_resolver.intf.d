test/test_resolver.mli:
