test/test_sim.ml: Alcotest List Prb_core Prb_rollback Prb_sim Prb_storage Prb_workload Printf
