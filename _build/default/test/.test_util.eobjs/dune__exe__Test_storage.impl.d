test/test_storage.ml: Alcotest List Prb_storage QCheck QCheck_alcotest
