test/test_prb.mli:
