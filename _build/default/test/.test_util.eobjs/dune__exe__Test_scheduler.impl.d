test/test_scheduler.ml: Alcotest List Prb_core Prb_history Prb_rollback Prb_storage Prb_txn Prb_util Prb_workload Printf QCheck QCheck_alcotest
