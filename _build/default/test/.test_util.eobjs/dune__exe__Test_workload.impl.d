test/test_workload.ml: Alcotest Array List Prb_core Prb_rollback Prb_storage Prb_txn Prb_workload String
