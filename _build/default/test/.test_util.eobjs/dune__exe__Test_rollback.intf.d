test/test_rollback.mli:
