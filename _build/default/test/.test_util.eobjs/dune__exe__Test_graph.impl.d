test/test_graph.ml: Alcotest Gen List Prb_graph QCheck QCheck_alcotest
