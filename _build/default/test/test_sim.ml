(* Tests for Prb_sim: the closed-system driver and its derived metrics. *)

module Sim = Prb_sim.Sim
module Scheduler = Prb_core.Scheduler
module Strategy = Prb_rollback.Strategy
module Policy = Prb_core.Policy
module Generator = Prb_workload.Generator
module Scenarios = Prb_workload.Scenarios
module Store = Prb_storage.Store

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_params =
  { Generator.default_params with n_entities = 16; zipf_theta = 0.7; max_locks = 5 }

let test_runs_everything () =
  let r = Sim.run_generated ~params:small_params ~seed:2 ~n_txns:60 () in
  checki "all commit" 60 r.Sim.stats.Scheduler.commits;
  checkb "serializable" true r.Sim.serializable;
  checkb "throughput positive" true (r.Sim.throughput > 0.0)

let test_mpl_respected () =
  (* with mpl=1 transactions run strictly serially: no blocks at all *)
  let config =
    { Sim.scheduler = Scheduler.default_config; mpl = 1 }
  in
  let r = Sim.run_generated ~config ~params:small_params ~seed:2 ~n_txns:20 () in
  checki "no blocks under mpl 1" 0 r.Sim.stats.Scheduler.blocks;
  checki "no deadlocks" 0 r.Sim.stats.Scheduler.deadlocks;
  checki "commits" 20 r.Sim.stats.Scheduler.commits

let test_contention_rises_with_mpl () =
  let run mpl =
    let config = { Sim.scheduler = Scheduler.default_config; mpl } in
    (Sim.run_generated ~config ~params:small_params ~seed:2 ~n_txns:80 ())
      .Sim.stats.Scheduler.blocks
  in
  checkb "mpl 12 blocks more than mpl 2" true (run 12 > run 2)

let test_wasted_fraction_sane () =
  let r = Sim.run_generated ~params:small_params ~seed:7 ~n_txns:60 () in
  checkb "wasted in [0,1)" true
    (r.Sim.wasted_fraction >= 0.0 && r.Sim.wasted_fraction < 1.0)

let test_deterministic () =
  let run () = Sim.run_generated ~params:small_params ~seed:3 ~n_txns:50 () in
  let a = run () and b = run () in
  checkb "same stats" true (a.Sim.stats = b.Sim.stats)

let test_run_explicit_programs () =
  let store = Scenarios.bank_store ~n_accounts:6 ~balance:100 in
  let programs =
    List.init 10 (fun i ->
        Scenarios.transfer
          ~name:(Printf.sprintf "t%d" i)
          ~from_acct:(i mod 6)
          ~to_acct:((i + 1) mod 6)
          ~amount:1)
  in
  let r = Sim.run ~store programs in
  checki "commits" 10 r.Sim.stats.Scheduler.commits;
  checkb "invariant" true
    (Store.Constraint.holds
       (Scenarios.balance_invariant ~n_accounts:6 ~balance:100)
       store)

let test_strategy_tradeoff_shape () =
  (* The paper's core claim at workload level: under identical contention,
     MCS never loses more progress than Total, and peak copies order the
     other way. *)
  let run strategy =
    let config =
      {
        Sim.scheduler = { Scheduler.default_config with strategy; seed = 1 };
        mpl = 10;
      }
    in
    Sim.run_generated ~config
      ~params:{ small_params with zipf_theta = 0.9; min_writes = 2; max_writes = 3 }
      ~seed:1 ~n_txns:100 ()
  in
  let total = run Strategy.Total and mcs = run Strategy.Mcs and sdg = run Strategy.Sdg in
  checki "total commits" 100 total.Sim.stats.Scheduler.commits;
  checki "mcs commits" 100 mcs.Sim.stats.Scheduler.commits;
  checki "sdg commits" 100 sdg.Sim.stats.Scheduler.commits;
  checkb "copies: mcs >= sdg" true (mcs.Sim.peak_copies >= sdg.Sim.peak_copies);
  checkb "copies: mcs >= total" true (mcs.Sim.peak_copies >= total.Sim.peak_copies)

(* --- open-system driver --- *)

let test_open_runs_and_measures () =
  let store = Generator.populate small_params in
  let programs = Generator.generate small_params ~seed:5 ~n:40 in
  let r =
    Sim.Open.run ~store ~arrivals_per_ktick:50.0 ~arrival_seed:5 programs
  in
  checki "all commit" 40 r.Sim.Open.closed.Sim.stats.Scheduler.commits;
  checkb "latencies positive" true (r.Sim.Open.mean_latency > 0.0);
  checkb "p95 >= p50" true (r.Sim.Open.p95_latency >= r.Sim.Open.p50_latency);
  checkb "max >= p95" true (r.Sim.Open.max_latency >= r.Sim.Open.p95_latency);
  checkb "serializable" true r.Sim.Open.closed.Sim.serializable

let test_open_latency_grows_with_load () =
  let run rate =
    let store = Generator.populate small_params in
    let programs = Generator.generate small_params ~seed:5 ~n:80 in
    (Sim.Open.run ~store ~arrivals_per_ktick:rate ~arrival_seed:5 programs)
      .Sim.Open.mean_latency
  in
  checkb "heavier load, slower responses" true (run 200.0 > run 10.0)

let test_open_light_load_is_uncontended () =
  (* arrivals sparse enough (mean gap 5000 ticks vs ~20-op programs) that
     transactions effectively run alone: latency ~ own execution time *)
  let store = Generator.populate small_params in
  let programs = Generator.generate small_params ~seed:6 ~n:20 in
  let r =
    Sim.Open.run ~store ~arrivals_per_ktick:0.2 ~arrival_seed:7 programs
  in
  checki "no blocks" 0 r.Sim.Open.closed.Sim.stats.Scheduler.blocks;
  checki "no deadlocks" 0 r.Sim.Open.closed.Sim.stats.Scheduler.deadlocks;
  checkb "latency = own execution time" true (r.Sim.Open.max_latency < 40.0)

let test_open_deterministic () =
  let run () =
    let store = Generator.populate small_params in
    let programs = Generator.generate small_params ~seed:7 ~n:30 in
    let r =
      Sim.Open.run ~store ~arrivals_per_ktick:60.0 ~arrival_seed:7 programs
    in
    (r.Sim.Open.mean_latency, r.Sim.Open.closed.Sim.stats)
  in
  checkb "identical" true (run () = run ())

let test_open_bad_rate () =
  Alcotest.check_raises "rate 0"
    (Invalid_argument "Sim.Open.run: arrival rate must be positive")
    (fun () ->
      ignore
        (Sim.Open.run ~store:(Store.create ()) ~arrivals_per_ktick:0.0
           ~arrival_seed:1 []))

let test_bad_mpl_rejected () =
  Alcotest.check_raises "mpl 0" (Invalid_argument "Sim.run: mpl must be >= 1")
    (fun () ->
      ignore (Sim.run ~config:{ Sim.default_config with mpl = 0 } ~store:(Store.create ()) []))

let () =
  Alcotest.run "prb_sim"
    [
      ( "driver",
        [
          Alcotest.test_case "runs everything" `Quick test_runs_everything;
          Alcotest.test_case "mpl 1 is serial" `Quick test_mpl_respected;
          Alcotest.test_case "contention grows with mpl" `Quick
            test_contention_rises_with_mpl;
          Alcotest.test_case "wasted fraction sane" `Quick test_wasted_fraction_sane;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "explicit programs" `Quick test_run_explicit_programs;
          Alcotest.test_case "strategy trade-off shape" `Slow
            test_strategy_tradeoff_shape;
          Alcotest.test_case "bad mpl" `Quick test_bad_mpl_rejected;
        ] );
      ( "scale",
        [
          Alcotest.test_case "1000 transactions at mpl 20" `Slow
            (fun () ->
              let params =
                {
                  Generator.default_params with
                  n_entities = 128;
                  zipf_theta = 0.6;
                  max_locks = 6;
                }
              in
              let config =
                { Sim.scheduler = Scheduler.default_config; mpl = 20 }
              in
              let r =
                Sim.run_generated ~config ~params ~seed:1 ~n_txns:1000 ()
              in
              checki "all commit" 1000 r.Sim.stats.Scheduler.commits;
              checkb "serializable" true r.Sim.serializable;
              checkb "deadlocks occurred and were survived" true
                (r.Sim.stats.Scheduler.deadlocks > 0));
        ] );
      ( "open system",
        [
          Alcotest.test_case "runs and measures" `Quick test_open_runs_and_measures;
          Alcotest.test_case "latency grows with load" `Quick
            test_open_latency_grows_with_load;
          Alcotest.test_case "light load uncontended" `Quick
            test_open_light_load_is_uncontended;
          Alcotest.test_case "deterministic" `Quick test_open_deterministic;
          Alcotest.test_case "bad rate" `Quick test_open_bad_rate;
        ] );
    ]
