(* E10: distributed systems (Section 3.3) — detection schemes, message
   accounting and the bookkeeping-shipping overhead of partial rollback. *)

open Common
module D = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim

let distributed () =
  header "E10 / Section 3.3" "multi-site: messages and shipped bookkeeping";
  let n_txns = scale 120 in
  let params =
    {
      Generator.default_params with
      n_entities = 40;
      zipf_theta = 0.6;
      max_locks = 5;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "4 sites, %d txns, mpl 10, detection period 40"
           n_txns)
      [
        ("detection", Table.Left);
        ("strategy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks l/g", Table.Left);
        ("wounds", Table.Right);
        ("ops lost", Table.Right);
        ("msgs/commit", Table.Right);
        ("shipped/commit", Table.Right);
      ]
  in
  List.iter
    (fun (detection, dname) ->
      List.iter
        (fun strategy ->
          let store = Generator.populate params in
          let programs = Generator.generate params ~seed:3 ~n:n_txns in
          let config =
            {
              Dist_sim.scheduler =
                {
                  D.default_config with
                  n_sites = 4;
                  detection;
                  strategy;
                  seed = 3;
                  max_ticks = 400_000;
                };
              mpl = 10;
            }
          in
          let r = Dist_sim.run ~config ~store programs in
          let s = r.Dist_sim.stats in
          Table.add_row table
            [
              dname;
              Strategy.to_string strategy;
              i s.D.commits;
              Printf.sprintf "%d/%d" s.D.local_deadlocks s.D.global_deadlocks;
              i s.D.wounds;
              i s.D.ops_lost;
              f2 r.Dist_sim.messages_per_commit;
              f2 r.Dist_sim.shipped_per_commit;
            ])
        Strategy.all_basic;
      Table.add_separator table)
    [ (D.Local_then_global 40, "local+global(40)"); (D.Wound_wait, "wound-wait") ];
  Table.print table;
  note
    "partial rollback keeps its progress advantage across sites, but its\n\
     version bookkeeping must chase moving transactions (shipped copies)\n\
     — the Section 3.3 overhead; total rollback ships nothing. Wound-wait\n\
     prevents deadlocks entirely and still benefits from rolling back to\n\
     the latest conflict-free state.";
  (* detection period sweep: staleness vs messages *)
  let table =
    Table.create
      ~title:"global-detection period sweep (sdg rollback)"
      [
        ("period", Table.Right);
        ("commits", Table.Right);
        ("global deadlocks", Table.Right);
        ("detection rounds", Table.Right);
        ("msgs/commit", Table.Right);
        ("ticks", Table.Right);
      ]
  in
  List.iter
    (fun period ->
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed:3 ~n:n_txns in
      let config =
        {
          Dist_sim.scheduler =
            {
              D.default_config with
              n_sites = 4;
              detection = D.Local_then_global period;
              strategy = Strategy.Sdg;
              seed = 3;
              max_ticks = 600_000;
            };
          mpl = 10;
        }
      in
      let r = Dist_sim.run ~config ~store programs in
      let s = r.Dist_sim.stats in
      Table.add_row table
        [
          i period;
          i s.D.commits;
          i s.D.global_deadlocks;
          i s.D.detection_rounds;
          f2 r.Dist_sim.messages_per_commit;
          i s.D.ticks;
        ])
    [ 10; 40; 160; 640 ];
  Table.print table;
  note
    "rarer global detection trades messages for staleness: cross-site\n\
     deadlocks persist longer, stretching the run.";
  (* E10b: victim policy under stale (periodic) detection. *)
  let table =
    Table.create
      ~title:
        "E10b: victim policy under periodic global detection (mcs \
         rollback, period 30, 200k-tick budget)"
      [
        ("policy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("outcome", Table.Left);
      ]
  in
  (* fixed size: this is a specific reproduction case, not a sweep *)
  let n = 30 in
  (* the exact reproduction configuration (found by the property tests):
     24 entities, theta 0.7 *)
  let params =
    {
      Generator.default_params with
      n_entities = 24;
      zipf_theta = 0.7;
      max_locks = 5;
    }
  in
  List.iter
    (fun policy ->
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed:0 ~n in
      let config =
        {
          Dist_sim.scheduler =
            {
              D.default_config with
              n_sites = 3;
              detection = D.Local_then_global 30;
              strategy = Strategy.Mcs;
              policy;
              seed = 0;
              max_ticks = 200_000;
            };
          mpl = 6;
        }
      in
      let r = Dist_sim.run ~config ~store programs in
      let s = r.Dist_sim.stats in
      Table.add_row table
        [
          Policy.to_string policy;
          i s.D.commits;
          i s.D.deadlocks;
          i s.D.rollbacks;
          i s.D.ops_lost;
          (if s.D.commits = n then "completed" else "LIVELOCK");
        ])
    [ Policy.Min_cost; Policy.Ordered_min_cost; Policy.Youngest;
      Policy.Requester ];
  Table.print table;
  note
    "the ordered policy — provably livelock-free when deadlocks are\n\
     resolved at request time — can re-victimise the same cheap\n\
     transaction round after round once detection works from stale\n\
     periodic snapshots where no meaningful \"requester\" exists:\n\
     Figure 2's mutual preemption resurrected by staleness. Pure\n\
     age-based selection (the timestamp rule of the paper's distributed\n\
     references) converges, which is why it is this engine's default;\n\
     which of the other policies survive is instance luck."

let run () = distributed ()
