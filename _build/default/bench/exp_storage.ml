(* E6 (Theorem 3 storage accounting) and E11 (the SDG+k extension). *)

open Common
module Txn_state = Prb_rollback.Txn_state
module Program = Prb_txn.Program

(* Peak local copies per transaction, measured by running a contended
   workload and taking the maximum over transactions; compared against
   Theorem 3's n(n+1)/2 worst case (n = locks held). *)
let thm3 () =
  header "E6 / Theorem 3" "storage: measured peak copies vs. the bound";
  let n_txns = scale 150 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "write-heavy workload (3-4 writes per entity, %d txns, mpl 8)"
           n_txns)
      [
        ("locks/txn", Table.Right);
        ("bound n(n+1)/2 + 3n", Table.Right);
        ("mcs peak", Table.Right);
        ("sdg peak", Table.Right);
        ("total peak", Table.Right);
      ]
  in
  List.iter
    (fun n_locks ->
      let params =
        {
          Generator.default_params with
          n_entities = 48;
          min_locks = n_locks;
          max_locks = n_locks;
          min_writes = 3;
          max_writes = 4;
          clustering = 0.0;
          zipf_theta = 0.4;
        }
      in
      let peak strategy =
        (run_sim ~strategy ~params ~n_txns ~seed:2 ()).Sim.peak_copies
      in
      (* the bound counts copies of globals only; our accounting adds one
         saved initial per locked entity (n more) and the four registers'
         histories, reported as-is for transparency *)
      Table.add_row table
        [
          i n_locks;
          i ((n_locks * (n_locks + 1) / 2) + n_locks);
          i (peak Strategy.Mcs);
          i (peak Strategy.Sdg);
          i (peak Strategy.Total);
        ])
    [ 2; 4; 6; 8 ];
  Table.print table;
  note
    "shape: MCS grows ~quadratically towards the Theorem 3 envelope while\n\
     the single-copy implementations stay linear in the locks held."

let sdg_k () =
  header "E11 / Section 5 extension" "SDG with k extra copies per object";
  let n_txns = scale 150 in
  let params =
    {
      Generator.default_params with
      n_entities = 24;
      zipf_theta = 0.8;
      min_writes = 2;
      max_writes = 3;
      max_locks = 7;
      clustering = 0.0;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "storage -> precision frontier (%d txns, mpl 10)"
           n_txns)
      [
        ("strategy", Table.Left);
        ("peak copies", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("mean rollback cost", Table.Right);
      ]
  in
  List.iter
    (fun strategy ->
      let r = run_sim ~mpl:10 ~seed:7 ~strategy ~params ~n_txns () in
      let s = r.Sim.stats in
      Table.add_row table
        [
          Strategy.to_string strategy;
          i r.Sim.peak_copies;
          i s.Scheduler.rollbacks;
          i s.Scheduler.ops_lost;
          f2 r.Sim.mean_rollback_cost;
        ])
    [ Strategy.Sdg; Strategy.Sdg_k 1; Strategy.Sdg_k 2; Strategy.Sdg_k 4;
      Strategy.Mcs ];
  Table.print table;
  note
    "the paper's closing question: each extra retained copy buys back\n\
     rollback precision; a small k already approaches MCS behaviour at a\n\
     fraction of its worst-case space."

(* E11b: the paper's closing question answered — allocate a bounded
   number of extra copies across objects (greedy marginal-gain optimiser)
   instead of uniformly. *)
let allocation () =
  header "E11b / Section 5 open question" "optimised copy allocation vs uniform";
  let module Program = Prb_txn.Program in
  let module Allocation = Prb_rollback.Allocation in
  let module Sdg_view = Prb_rollback.Sdg_view in
  let module Scheduler = Prb_core.Scheduler in
  let n_txns = scale 150 in
  let params =
    {
      Generator.default_params with
      n_entities = 24;
      zipf_theta = 0.8;
      min_writes = 2;
      max_writes = 3;
      max_locks = 7;
      clustering = 0.0;
    }
  in
  let programs = Generator.generate params ~seed:7 ~n:n_txns in
  let wd_fraction allocate =
    let wd, states =
      List.fold_left
        (fun (w, s) p ->
          let alloc = allocate p in
          ( w
            + List.length
                (Allocation.well_defined_with p
                   ~allocation:(Allocation.lookup alloc)),
            s + Program.n_locks p + 1 ))
        (0, 0) programs
    in
    float_of_int wd /. float_of_int states
  in
  let mean_spend allocate =
    let total =
      List.fold_left
        (fun acc p ->
          acc + List.fold_left (fun a (_, e) -> a + e) 0 (allocate p))
        0 programs
    in
    float_of_int total /. float_of_int (List.length programs)
  in
  let uniform k p =
    (* k extra copies for every damage-capable object *)
    List.map (fun (key, _) -> (key, k)) (Allocation.chunks p)
  in
  let dynamic allocate =
    let store = Generator.populate params in
    let config =
      { Sim.scheduler = { Scheduler.default_config with seed = 7 }; mpl = 10 }
    in
    let sched = Scheduler.create ~config:config.Sim.scheduler store in
    let pending = ref programs and submitted = ref 0 in
    let refill () =
      while !pending <> [] && !submitted - Scheduler.n_committed sched < 10 do
        match !pending with
        | [] -> ()
        | p :: rest ->
            pending := rest;
            incr submitted;
            let alloc = allocate p in
            ignore
              (Scheduler.submit ~copy_allocation:(Allocation.lookup alloc)
                 sched p)
      done
    in
    refill ();
    while Scheduler.step sched do
      refill ()
    done;
    Scheduler.stats sched
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "scattered-write workload, %d txns, sdg rollback + extra copies"
           n_txns)
      [
        ("allocation scheme", Table.Left);
        ("mean extra copies/txn", Table.Right);
        ("well-defined fraction", Table.Right);
        ("overshoot ops (dynamic)", Table.Right);
        ("ops lost (dynamic)", Table.Right);
      ]
  in
  List.iter
    (fun (name, allocate) ->
      let s = dynamic allocate in
      Table.add_row table
        [
          name;
          f2 (mean_spend allocate);
          pct (wd_fraction allocate);
          i s.Scheduler.overshoot_ops;
          i s.Scheduler.ops_lost;
        ])
    [
      ("none (plain sdg)", fun _ -> []);
      ("uniform +1 per object", uniform 1);
      ("optimised, budget 2", fun p -> Allocation.greedy p ~budget:2);
      ("optimised, budget 4", fun p -> Allocation.greedy p ~budget:4);
    ];
  Table.print table;
  note
    "the greedy optimiser concentrates copies on the chunks that free the\n\
     most states: a budget of ~2 copies per transaction recovers most of\n\
     what uniform funding buys with several times the storage — an answer\n\
     to the paper's closing question.";
  (* greedy vs exhaustive quality, where the exhaustive search is feasible *)
  let sample = List.filteri (fun i _ -> i < scale 60) programs in
  let matches, total =
    List.fold_left
      (fun (m, t) p ->
        let g = Allocation.gain p (Allocation.greedy p ~budget:3) in
        let e = Allocation.gain p (Allocation.exact p ~budget:3) in
        ((if g = e then m + 1 else m), t + 1))
      (0, 0) sample
  in
  note "greedy matched the exhaustive optimum on %d/%d programs (budget 3)."
    matches total

let run () =
  thm3 ();
  sdg_k ();
  allocation ()
