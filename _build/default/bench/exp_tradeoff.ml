(* E7 (the storage/progress trade-off across concurrency levels) and
   E8 (the victim-policy ablation). *)

open Common

let tradeoff () =
  header "E7 / Sections 1+4" "lost progress: partial vs. total rollback, MPL sweep";
  let n_txns = scale 200 in
  let params =
    {
      Generator.default_params with
      n_entities = 32;
      zipf_theta = 0.8;
      max_locks = 6;
      min_writes = 1;
      max_writes = 2;
    }
  in
  let seeds = if !quick then [ 3 ] else [ 3; 4; 5 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%d txns over 32 entities, theta 0.8, ordered policy \
            (means over %d seeds)"
           n_txns (List.length seeds))
      [
        ("mpl", Table.Right);
        ("strategy", Table.Left);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("overshoot", Table.Right);
        ("mean cost", Table.Right);
        ("wasted", Table.Right);
        ("throughput", Table.Right);
        ("peak copies", Table.Right);
      ]
  in
  List.iter
    (fun mpl ->
      List.iter
        (fun strategy ->
          let runs =
            List.map
              (fun seed -> run_sim ~mpl ~seed ~strategy ~params ~n_txns ())
              seeds
          in
          let mean get =
            List.fold_left (fun acc r -> acc +. get r) 0.0 runs
            /. float_of_int (List.length runs)
          in
          let stat get = mean (fun r -> float_of_int (get r.Sim.stats)) in
          Table.add_row table
            [
              i mpl;
              Strategy.to_string strategy;
              f2 (stat (fun s -> s.Scheduler.deadlocks));
              f2 (stat (fun s -> s.Scheduler.rollbacks));
              f2 (stat (fun s -> s.Scheduler.ops_lost));
              f2 (stat (fun s -> s.Scheduler.overshoot_ops));
              f2
                (mean (fun r ->
                     if Float.is_nan r.Sim.mean_rollback_cost then 0.0
                     else r.Sim.mean_rollback_cost));
              pct (mean (fun r -> r.Sim.wasted_fraction));
              f2 (mean (fun r -> r.Sim.throughput));
              f2 (mean (fun r -> float_of_int r.Sim.peak_copies));
            ])
        Strategy.all_basic;
      Table.add_separator table)
    [ 2; 4; 8; 16 ];
  Table.print table;
  note
    "shape claimed by the paper: as concurrency (and hence deadlock\n\
     frequency) rises, remove-and-restart wastes ever more work; partial\n\
     rollback (MCS exactly, SDG nearly) caps the per-deadlock loss, at\n\
     the price of extra copies (MCS) or occasional overshoot (SDG)."

let victim_ablation () =
  header "E8 / Section 3.1" "victim policy ablation";
  let n_txns = scale 150 in
  let params =
    {
      Generator.default_params with
      n_entities = 16;
      zipf_theta = 0.9;
      max_locks = 7;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "hot workload (%d txns, sdg rollback, 150k-tick budget)" n_txns)
      [
        ("policy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("ops lost", Table.Right);
        ("mean cost", Table.Right);
        ("optimal cuts", Table.Right);
        ("outcome", Table.Left);
      ]
  in
  List.iter
    (fun policy ->
      let r =
        run_sim ~mpl:10 ~seed:4 ~policy ~max_ticks:150_000
          ~strategy:Strategy.Sdg ~params ~n_txns ()
      in
      let s = r.Sim.stats in
      Table.add_row table
        [
          Policy.to_string policy;
          i s.Scheduler.commits;
          i s.Scheduler.deadlocks;
          i s.Scheduler.ops_lost;
          f2 r.Sim.mean_rollback_cost;
          i s.Scheduler.optimal_resolutions;
          (if s.Scheduler.commits = n_txns then "completed" else "LIVELOCK");
        ])
    Policy.all;
  Table.print table;
  note
    "the optimising policies pay the least per deadlock, but only the\n\
     order-respecting ones (ordered, youngest) terminate unconditionally\n\
     — exactly the paper's Section 3.1 tension."

(* The locking-discipline deviation documented in DESIGN.md, made
   measurable: under the paper's availability rule, shared re-grants
   starve exclusive waiters and partial-rollback victims re-acquire past
   them — a livelock; fair queues remove it. Exclusive-only workloads are
   unaffected, which is why the figure experiments can use the paper's
   rule verbatim. *)
let discipline_ablation () =
  header "E8b / DESIGN.md deviation" "availability rule vs. fair queues";
  let n_txns = scale 150 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%d txns, sdg rollback, ordered policy, 150k-tick budget" n_txns)
      [
        ("workload", Table.Left);
        ("discipline", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("ops lost", Table.Right);
        ("outcome", Table.Left);
      ]
  in
  List.iter
    (fun (wname, read_fraction) ->
      List.iter
        (fun (dname, fair) ->
          let params =
            {
              Generator.default_params with
              n_entities = 16;
              zipf_theta = 0.9;
              max_locks = 8;
              read_fraction;
            }
          in
          let config =
            {
              Sim.scheduler =
                {
                  Scheduler.default_config with
                  strategy = Strategy.Sdg;
                  seed = 42;
                  max_ticks = 150_000;
                  fair_locking = fair;
                };
              mpl = 10;
            }
          in
          let r = Sim.run_generated ~config ~params ~seed:42 ~n_txns () in
          let s = r.Sim.stats in
          Table.add_row table
            [
              wname;
              dname;
              i s.Scheduler.commits;
              i s.Scheduler.deadlocks;
              i s.Scheduler.ops_lost;
              (if s.Scheduler.commits = n_txns then "completed"
               else "LIVELOCK (budget exhausted)");
            ])
        [ ("fair queues", true); ("availability rule", false) ];
      Table.add_separator table)
    [ ("exclusive only", 0.0); ("30% shared", 0.3) ];
  Table.print table;
  note
    "the paper's availability rule lets rollback victims re-acquire\n\
     shared locks past a starving exclusive waiter — mild contention\n\
     shows up as extra deadlocks and lost work; at higher contention it\n\
     degenerates into the full livelock documented in DESIGN.md. Grant\n\
     decisions coincide on exclusive-only workloads, but fair queueing\n\
     still adds waiter-to-waiter edges, so detection sees (and breaks)\n\
     cycles slightly differently there too."

(* E8c: the paper's detect-and-partially-roll-back against the classic
   alternatives — timeout aborts (no detection) and timestamp prevention
   (wound-wait / wait-die). *)
let intervention_ablation () =
  header "E8c / Section 1 context" "detection + partial rollback vs. the classics";
  let n_txns = scale 100 in
  let params =
    {
      Generator.default_params with
      n_entities = 16;
      zipf_theta = 0.9;
      max_locks = 6;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%d txns, sdg rollback, mpl 10, 300k-tick budget"
           n_txns)
      [
        ("intervention", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("timeouts", Table.Right);
        ("preventions", Table.Right);
        ("ticks", Table.Right);
      ]
  in
  List.iter
    (fun (name, intervention) ->
      let config =
        {
          Sim.scheduler =
            {
              Scheduler.default_config with
              intervention;
              seed = 4;
              max_ticks = 300_000;
            };
          mpl = 10;
        }
      in
      let r = Sim.run_generated ~config ~params ~seed:4 ~n_txns () in
      let s = r.Sim.stats in
      Table.add_row table
        [
          name;
          i s.Scheduler.commits;
          i s.Scheduler.deadlocks;
          i s.Scheduler.rollbacks;
          i s.Scheduler.ops_lost;
          i s.Scheduler.timeouts;
          i s.Scheduler.preventions;
          i s.Scheduler.ticks;
        ])
    [
      ("detect + partial rollback", Scheduler.Detect);
      ("timeout 50", Scheduler.Timeout_abort 50);
      ("timeout 200", Scheduler.Timeout_abort 200);
      ("wound-wait", Scheduler.Wound_wait_c);
      ("wait-die", Scheduler.Wait_die_c);
    ];
  Table.print table;
  note
    "the paper's motivation made concrete: timeouts either stall the\n\
     system (long timers leave deadlocks standing) or abort spuriously\n\
     (short timers), and always restart from scratch; timestamp\n\
     prevention avoids deadlocks but preempts far more often than the\n\
     few real cycles require (preventions vs. the detect row's\n\
     deadlocks). Detection plus cost-chosen partial rollback touches the\n\
     fewest transactions for the least lost work."

(* E7b: the response-time view of the paper's introduction — an open
   system under a Poisson-like arrival process. *)
let response_time () =
  header "E7b / Section 1" "response time under offered load (open system)";
  let n_txns = scale 200 in
  let params =
    {
      Generator.default_params with
      n_entities = 32;
      zipf_theta = 0.8;
      max_locks = 6;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%d txns arriving Poisson-like; latency in ticks (submit to \
            commit)"
           n_txns)
      [
        ("offered /kTick", Table.Right);
        ("strategy", Table.Left);
        ("commits", Table.Right);
        ("mean latency", Table.Right);
        ("p95 latency", Table.Right);
        ("deadlocks", Table.Right);
        ("ops lost", Table.Right);
      ]
  in
  List.iter
    (fun rate ->
      List.iter
        (fun strategy ->
          let store = Generator.populate params in
          let programs = Generator.generate params ~seed:8 ~n:n_txns in
          let r =
            Sim.Open.run
              ~scheduler:
                { Scheduler.default_config with strategy; seed = 8 }
              ~store ~arrivals_per_ktick:rate ~arrival_seed:8 programs
          in
          let s = r.Sim.Open.closed.Sim.stats in
          Table.add_row table
            [
              f2 rate;
              Strategy.to_string strategy;
              i s.Scheduler.commits;
              f2 r.Sim.Open.mean_latency;
              f2 r.Sim.Open.p95_latency;
              i s.Scheduler.deadlocks;
              i s.Scheduler.ops_lost;
            ])
        Strategy.all_basic;
      Table.add_separator table)
    [ 20.0; 40.0; 80.0; 160.0 ];
  Table.print table;
  note
    "the hockey stick the paper's introduction predicts: as offered load\n\
     rises, conflicts and deadlocks multiply and response times blow up;\n\
     partial rollback's smaller per-deadlock losses buy visibly lower\n\
     tail latencies near saturation."

let run () =
  tradeoff ();
  victim_ablation ();
  discipline_ablation ();
  intervention_ablation ();
  response_time ()
