bench/exp_storage.ml: Common Generator List Prb_core Prb_rollback Prb_txn Printf Scheduler Sim Strategy Table
