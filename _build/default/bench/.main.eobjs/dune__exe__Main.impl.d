bench/main.ml: Array Common Exp_distrib Exp_figures Exp_storage Exp_structure Exp_tradeoff List Micro Printf String Sys
