bench/common.ml: Prb_core Prb_rollback Prb_sim Prb_util Prb_workload Printf
