bench/exp_figures.ml: Array Common Fun Generator List Prb_core Prb_graph Prb_lock Prb_rollback Prb_storage Prb_txn Prb_util Prb_wfg Printf Scheduler Sim String Table
