bench/micro.ml: Analyze Bechamel Benchmark Common Fun Hashtbl Instance List Measure Prb_graph Prb_rollback Prb_storage Prb_txn Prb_util Prb_wfg Printf Staged Test Time Toolkit
