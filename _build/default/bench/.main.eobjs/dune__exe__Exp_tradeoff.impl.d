bench/exp_tradeoff.ml: Common Float Generator List Policy Printf Scheduler Sim Strategy Table
