bench/main.mli:
