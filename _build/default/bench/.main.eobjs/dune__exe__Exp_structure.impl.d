bench/exp_structure.ml: Common Fun Generator List Prb_core Prb_rollback Prb_txn Printf Sim Table
