bench/exp_distrib.ml: Common Generator List Policy Prb_distrib Printf Strategy Table
