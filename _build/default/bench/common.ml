(* Shared plumbing for the experiment harness. *)

module Table = Prb_util.Table
module Scheduler = Prb_core.Scheduler
module Sim = Prb_sim.Sim
module Strategy = Prb_rollback.Strategy
module Policy = Prb_core.Policy
module Generator = Prb_workload.Generator

(* Scaled-down sweeps for `dune exec bench/main.exe -- quick`. *)
let quick = ref false

let scale n = if !quick then max 20 (n / 4) else n

let header id title =
  Printf.printf "\n=== %s — %s ===\n" id title

let note fmt = Printf.ksprintf (fun s -> print_endline s) fmt

(* One simulation run with the standard knobs. *)
let run_sim ?(mpl = 8) ?(seed = 1) ?(policy = Policy.Ordered_min_cost)
    ?(max_ticks = 400_000) ~strategy ~params ~n_txns () =
  let config =
    {
      Sim.scheduler =
        { Scheduler.default_config with strategy; policy; seed; max_ticks };
      mpl;
    }
  in
  Sim.run_generated ~config ~params ~seed ~n_txns ()

let pct x = Table.cell_pct x
let f2 x = Table.cell_float ~decimals:2 x
let i = Table.cell_int
