(* E9: three-phase (acquire/update/release) transaction structure. *)

open Common
module Txn_state = Prb_rollback.Txn_state
module Scheduler = Prb_core.Scheduler

let three_phase () =
  header "E9 / Section 5" "three-phase transaction structure";
  let n_txns = scale 150 in
  let base =
    {
      Generator.default_params with
      n_entities = 24;
      zipf_theta = 0.8;
      max_locks = 6;
      min_writes = 2;
      max_writes = 3;
    }
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "%d txns, sdg rollback, mpl 10 — structure ablation"
           n_txns)
      [
        ("structure", Table.Left);
        ("deadlocks", Table.Right);
        ("ops lost", Table.Right);
        ("overshoot", Table.Right);
        ("mean cost", Table.Right);
        ("monitored writes", Table.Right);
        ("throughput", Table.Right);
      ]
  in
  List.iter
    (fun (name, params, transform) ->
      let config =
        {
          Sim.scheduler = { Scheduler.default_config with seed = 6 };
          mpl = 10;
        }
      in
      let store = Generator.populate params in
      let programs =
        List.map transform (Generator.generate params ~seed:6 ~n:n_txns)
      in
      (* drive the scheduler directly so the per-transaction monitored
         write counters stay inspectable after the run *)
      let sched = Scheduler.create ~config:config.Sim.scheduler store in
      let pending = ref programs and submitted = ref 0 in
      let refill () =
        while
          !pending <> [] && !submitted - Scheduler.n_committed sched < 10
        do
          match !pending with
          | [] -> ()
          | p :: rest ->
              pending := rest;
              incr submitted;
              ignore (Scheduler.submit sched p)
        done
      in
      refill ();
      while Scheduler.step sched do
        refill ()
      done;
      let s = Scheduler.stats sched in
      let monitored =
        List.fold_left
          (fun acc id ->
            acc + Txn_state.monitored_writes (Scheduler.txn_state sched id))
          0 (Scheduler.all_txns sched)
      in
      let throughput =
        if s.Scheduler.ticks = 0 then nan
        else
          1000.0 *. float_of_int s.Scheduler.commits
          /. float_of_int s.Scheduler.ticks
      in
      let mean_cost =
        if s.Scheduler.rollbacks = 0 then nan
        else
          float_of_int s.Scheduler.ops_lost /. float_of_int s.Scheduler.rollbacks
      in
      Table.add_row table
        [
          name;
          i s.Scheduler.deadlocks;
          i s.Scheduler.ops_lost;
          i s.Scheduler.overshoot_ops;
          f2 mean_cost;
          i monitored;
          f2 throughput;
        ])
    [
      ("scattered writes", { base with clustering = 0.0 }, Fun.id);
      ("clustered writes", { base with clustering = 1.0 }, Fun.id);
      ("three-phase", { base with three_phase = true }, Fun.id);
      ( "restructured (hoist+sink)",
        { base with clustering = 0.0 },
        Prb_txn.Program.make_acquire_update_release );
    ];
  Table.print table;
  note
    "three-phase transactions perform no writes before their last lock:\n\
     nothing to monitor and nothing a rollback can destroy beyond the\n\
     minimum — the paper's prescription for rollback-friendly programs.\n\
     The last row applies the library's compile-time restructuring\n\
     (Section 5's closing suggestion) to the scattered workload."

let run () = three_phase ()
