(* E1-E5: the paper's five figures, regenerated (DESIGN.md Section 5). *)

open Common
module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Lock_mode = Prb_txn.Lock_mode
module Txn_state = Prb_rollback.Txn_state
module Sdg_view = Prb_rollback.Sdg_view
module Waits_for = Prb_wfg.Waits_for
module Lock_table = Prb_lock.Lock_table
module Resolver = Prb_core.Resolver
module Cutset = Prb_graph.Cutset
module Rng = Prb_util.Rng

let advance ts ~stop_pc =
  while Txn_state.pc ts < stop_pc do
    match Txn_state.next_action ts with
    | Txn_state.Need_lock _ -> Txn_state.lock_granted ts
    | Txn_state.Data_step -> Txn_state.exec_data_op ts
    | Txn_state.Need_unlock _ -> ignore (Txn_state.perform_unlock ts)
    | Txn_state.At_end -> failwith "advance: past end"
  done

let filler = Program.assign "v" Expr.(Mix (var "v"))

let program_with_locks ~name ~length locks =
  Program.make ~name
    ~locals:[ ("v", Value.int 0) ]
    (List.init length (fun pc ->
         match List.assoc_opt pc locks with
         | Some e -> Program.lock_x e
         | None -> filler))

(* --- E1: Figure 1 ------------------------------------------------------ *)

let fig1 () =
  header "E1 / Figure 1" "optimal rollback choice under exclusive locks";
  let store =
    Store.of_list (List.map (fun e -> (e, Value.int 0)) [ "a"; "b"; "c"; "e" ])
  in
  let mk id p = Txn_state.create ~strategy:Prb_rollback.Strategy.Mcs ~id ~store p in
  let ts2 =
    mk 2 (program_with_locks ~name:"T2" ~length:16 [ (8, "b"); (10, "a"); (12, "e") ])
  in
  let ts3 = mk 3 (program_with_locks ~name:"T3" ~length:16 [ (5, "c"); (11, "b") ]) in
  let ts4 = mk 4 (program_with_locks ~name:"T4" ~length:16 [ (10, "e"); (15, "c") ]) in
  advance ts2 ~stop_pc:12;
  advance ts3 ~stop_pc:11;
  advance ts4 ~stop_pc:15;
  let table =
    Table.create
      ~title:"cycle T2 -e-> T4 -c-> T3 -b-> T2 (waiter -entity-> holder)"
      [
        ("candidate", Table.Left);
        ("releases", Table.Left);
        ("waiting since state", Table.Right);
        ("entity locked at state", Table.Right);
        ("rollback cost", Table.Right);
        ("paper", Table.Right);
      ]
  in
  let states = [ (2, ts2, "b"); (3, ts3, "c"); (4, ts4, "e") ] in
  List.iter
    (fun (id, ts, e) ->
      let lock_pc =
        match Txn_state.lock_state_of ts e with
        | Some k -> Txn_state.pc ts - Txn_state.cost_of_target ts k
        | None -> assert false
      in
      ignore lock_pc;
      Table.add_row table
        [
          Printf.sprintf "T%d" id;
          e;
          i (Txn_state.pc ts);
          i (Txn_state.pc ts - Txn_state.cost_to_release ts e);
          i (Txn_state.cost_to_release ts e);
          i (match id with 2 -> 4 | 3 -> 6 | _ -> 5);
        ])
    states;
  Table.print table;
  let decision =
    Resolver.choose ~policy:Prb_core.Policy.Min_cost ~requester:2
      ~entry_order:Fun.id
      ~release_cost:(fun v es ->
        let _, ts, _ = List.find (fun (id, _, _) -> id = v) states in
        List.fold_left (fun acc e -> max acc (Txn_state.cost_to_release ts e)) 0 es)
      ~rng:(Rng.make 1)
      [ [ (4, "e"); (3, "c"); (2, "b") ] ]
  in
  (match decision.Resolver.victims with
  | [ (v, es) ] ->
      note "victim: T%d releases %s (paper: T2 releases b)" v (String.concat "," es);
      let released = Txn_state.rollback_to ts2 (Txn_state.rollback_target ts2 "b") in
      note "rollback of T2 also released %s -> T1 no longer waits (Figure 1b)"
        (String.concat "," (List.sort compare released))
  | _ -> assert false)

(* --- E2: Figure 2 ------------------------------------------------------ *)

let fig2 () =
  header "E2 / Figure 2" "potentially infinite mutual preemption";
  let cycles = [ [ (2, "f"); (3, "b") ] ] in
  let cost v _ = if v = 2 then 2 else 9 in
  let victims policy =
    (Resolver.choose ~policy ~requester:3 ~entry_order:Fun.id
       ~release_cost:cost ~rng:(Rng.make 1) cycles)
      .Resolver.victims
  in
  let show name vs =
    note "%-22s -> %s" name
      (String.concat "; "
         (List.map (fun (v, es) -> Printf.sprintf "T%d releases {%s}" v
                        (String.concat "," es)) vs))
  in
  show "min-cost (unsafe)" (victims Prb_core.Policy.Min_cost);
  show "ordered (Theorem 2)" (victims Prb_core.Policy.Ordered_min_cost);
  (* dynamic: the livelock made measurable *)
  let params =
    {
      Generator.default_params with
      n_entities = 16;
      zipf_theta = 0.9;
      max_locks = 8;
      read_fraction = 0.0;
    }
  in
  let n_txns = scale 120 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "hot exclusive workload, mcs rollback, %d txns, 60k-tick budget"
           n_txns)
      [
        ("policy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("ops lost", Table.Right);
        ("outcome", Table.Left);
      ]
  in
  List.iter
    (fun policy ->
      let r =
        run_sim ~mpl:10 ~seed:42 ~policy ~max_ticks:60_000
          ~strategy:Prb_rollback.Strategy.Mcs ~params ~n_txns ()
      in
      let s = r.Sim.stats in
      Table.add_row table
        [
          Prb_core.Policy.to_string policy;
          i s.Scheduler.commits;
          i s.Scheduler.deadlocks;
          i s.Scheduler.ops_lost;
          (if s.Scheduler.commits = n_txns then "completed"
           else "LIVELOCK (budget exhausted)");
        ])
    [ Prb_core.Policy.Min_cost; Prb_core.Policy.Ordered_min_cost;
      Prb_core.Policy.Youngest ];
  Table.print table;
  note
    "paper: unconstrained optimisation risks repeating the same preemption\n\
     forever; a time-invariant order (Theorem 2) removes the risk."

(* --- E3: Figure 3 ------------------------------------------------------ *)

let fig3 () =
  header "E3 / Figure 3" "shared locks: multi-cycle deadlocks and cut sets";
  let locks = Lock_table.create ~fair:false () in
  let wfg = Waits_for.create () in
  List.iter (Waits_for.add_txn wfg) [ 1; 2; 3 ];
  let must_grant id mode e =
    match Lock_table.request locks id mode e with
    | Lock_table.Granted -> ()
    | Lock_table.Blocked _ -> assert false
  in
  must_grant 1 Lock_mode.Exclusive "a";
  must_grant 1 Lock_mode.Exclusive "b";
  must_grant 2 Lock_mode.Shared "f";
  must_grant 3 Lock_mode.Shared "f";
  let block id e =
    match Lock_table.request locks id Lock_mode.Exclusive e with
    | Lock_table.Blocked holders -> Waits_for.set_wait wfg ~waiter:id ~holders e
    | Lock_table.Granted -> assert false
  in
  block 2 "a";
  block 3 "b";
  block 1 "f";
  let cycles = Waits_for.cycles_through wfg 1 in
  note "T1's X(f) request vs two shared holders: %d cycles close at once"
    (List.length cycles);
  let table =
    Table.create
      [
        ("cost assignment", Table.Left);
        ("optimal cut", Table.Left);
        ("cut cost", Table.Right);
        ("greedy cut", Table.Left);
        ("greedy cost", Table.Right);
      ]
  in
  let row name cost =
    let inst = { Cutset.cycles; cost } in
    let show cut =
      String.concat "," (List.map (Printf.sprintf "T%d") cut)
    in
    match Cutset.exact inst with
    | Some cut ->
        let g = Cutset.greedy inst in
        Table.add_row table
          [
            name;
            show cut;
            f2 (Cutset.total_cost inst cut);
            show g;
            f2 (Cutset.total_cost inst g);
          ]
    | None -> assert false
  in
  row "uniform (1,1,1)" (fun _ -> 1.0);
  row "T1 expensive (5,1,1)" (fun v -> if v = 1 then 5.0 else 1.0);
  row "T2 cheap (2,1,3)" (fun v -> if v = 1 then 2.0 else if v = 2 then 1.0 else 3.0);
  Table.print table;
  (* exact vs greedy at scale: random instances *)
  let rng = Rng.make 99 in
  let n_inst = scale 400 in
  let worst = ref 1.0 and sum = ref 0.0 and exactly = ref 0 in
  for _ = 1 to n_inst do
    let n_cycles = 1 + Rng.int rng 4 in
    let cycles =
      List.init n_cycles (fun _ ->
          List.init (1 + Rng.int rng 3) (fun _ -> (Rng.int rng 7, "e")))
    in
    let inst =
      {
        Cutset.cycles = List.map (List.map fst) cycles;
        cost = (fun v -> 1.0 +. float_of_int (v mod 4));
      }
    in
    match Cutset.exact inst with
    | Some cut ->
        let copt = Cutset.total_cost inst cut in
        let cg = Cutset.total_cost inst (Cutset.greedy inst) in
        let ratio = if copt = 0.0 then 1.0 else cg /. copt in
        if ratio <= 1.0 +. 1e-9 then incr exactly;
        if ratio > !worst then worst := ratio;
        sum := !sum +. ratio
    | None -> ()
  done;
  note
    "NP-hard optimisation (Section 3.2): over %d random multi-cycle\n\
     instances the greedy heuristic matched the exact minimum-cost cut\n\
     %.1f%% of the time (mean ratio %.3f, worst %.2f)."
    n_inst
    (100.0 *. float_of_int !exactly /. float_of_int n_inst)
    (!sum /. float_of_int n_inst)
    !worst

(* --- E4: Figure 4 ------------------------------------------------------ *)

let fig4_txn ~with_ck =
  let ops =
    [
      Program.lock_x "A";
      Program.write "A" Expr.(int 1);
      Program.lock_x "B";
      filler;
      Program.lock_x "C";
      Program.write "A" Expr.(int 2);
      Program.lock_x "D";
      Program.write "A" Expr.(int 3);
    ]
    @ (if with_ck then [ Program.assign "c" Expr.(int 7) ] else [])
    @ [
        Program.lock_x "E";
        Program.write "B" Expr.(int 4);
        Program.lock_x "F";
        Program.write "B" Expr.(int 5);
        (if with_ck then Program.assign "c" Expr.(int 8)
         else Program.assign "w" Expr.(int 9));
      ]
  in
  Program.make
    ~name:(if with_ck then "T1" else "T1'")
    ~locals:[ ("v", Value.int 0); ("c", Value.int 0); ("w", Value.int 0) ]
    ops

let fig4 () =
  header "E4 / Figure 4" "state-dependency graphs and well-defined states";
  let table =
    Table.create
      [
        ("transaction", Table.Left);
        ("damage intervals", Table.Left);
        ("well-defined states", Table.Left);
        ("paper", Table.Left);
      ]
  in
  let show p paper =
    let fmt_intervals l =
      String.concat ", "
        (List.map (fun (a, b) -> Printf.sprintf "[%d,%d)" a b) l)
    in
    let fmt_states l = String.concat "," (List.map string_of_int l) in
    Table.add_row table
      [
        p.Program.name;
        fmt_intervals (Sdg_view.damage_intervals p);
        fmt_states (Sdg_view.well_defined_states p);
        paper;
      ]
  in
  show (fig4_txn ~with_ck:true) "only the trivial 0 and 6";
  show (fig4_txn ~with_ck:false) "lock state 4 becomes well-defined";
  Table.print table;
  note
    "Theorem 4 check: the articulation-point computation agrees on both: %b"
    (List.for_all
       (fun ck ->
         let p = fig4_txn ~with_ck:ck in
         Sdg_view.well_defined_states p = Sdg_view.well_defined_via_articulation p)
       [ true; false ])

(* --- E5: Figure 5 ------------------------------------------------------ *)

let fig5 () =
  header "E5 / Figure 5" "write clustering preserves well-defined states";
  let t1 = fig4_txn ~with_ck:true in
  let t2 = Program.cluster_writes t1 in
  let wd p = List.length (Sdg_view.well_defined_states p) in
  let table =
    Table.create
      [
        ("transaction", Table.Left);
        ("damage span", Table.Right);
        ("well-defined", Table.Right);
        ("of states", Table.Right);
      ]
  in
  Table.add_row table [ "T1 (scattered writes)"; i (Program.damage_span t1);
                        i (wd t1); i (Program.n_locks t1 + 1) ];
  Table.add_row table [ "T2 (same ops, clustered)"; i (Program.damage_span t2);
                        i (wd t2); i (Program.n_locks t2 + 1) ];
  Table.print table;
  (* workload-level sweep: clustering knob vs static and dynamic damage *)
  let n_txns = scale 120 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "generated workloads (2-3 writes/entity, %d txns, sdg rollback)"
           n_txns)
      [
        ("clustering", Table.Right);
        ("well-defined fraction", Table.Right);
        ("mean overshoot (lock states)", Table.Right);
        ("overshoot ops (dynamic)", Table.Right);
        ("ops lost (dynamic)", Table.Right);
      ]
  in
  List.iter
    (fun clustering ->
      let params =
        {
          Generator.default_params with
          n_entities = 24;
          zipf_theta = 0.8;
          min_writes = 2;
          max_writes = 3;
          max_locks = 7;
          clustering;
        }
      in
      let programs = Generator.generate params ~seed:5 ~n:n_txns in
      let wd_frac =
        let wd, states =
          List.fold_left
            (fun (w, s) p ->
              ( w + List.length (Sdg_view.well_defined_states p),
                s + Program.n_locks p + 1 ))
            (0, 0) programs
        in
        float_of_int wd /. float_of_int states
      in
      let overshoot =
        let total, count =
          List.fold_left
            (fun (t, c) p ->
              Array.fold_left
                (fun (t, c) op ->
                  match op with
                  | Program.Lock (_, e) -> (
                      match Sdg_view.rollback_overshoot p e with
                      | Some d -> (t + d, c + 1)
                      | None -> (t, c))
                  | _ -> (t, c))
                (t, c) p.Program.ops)
            (0, 0) programs
        in
        float_of_int total /. float_of_int (max 1 count)
      in
      let r =
        run_sim ~mpl:10 ~seed:5 ~strategy:Prb_rollback.Strategy.Sdg ~params
          ~n_txns ()
      in
      Table.add_row table
        [
          f2 clustering;
          pct wd_frac;
          f2 overshoot;
          i r.Sim.stats.Scheduler.overshoot_ops;
          i r.Sim.stats.Scheduler.ops_lost;
        ])
    [ 0.0; 0.25; 0.5; 0.75; 1.0 ];
  Table.print table;
  note
    "paper: \"as few lock states as possible between successive write\n\
     operations\" maximises well-defined states; the sweep shows the\n\
     single-copy implementation recovering MCS-like precision as writes\n\
     cluster."

let run () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig4 ();
  fig5 ()
