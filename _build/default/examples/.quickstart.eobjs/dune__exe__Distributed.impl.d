examples/distributed.ml: List Prb_distrib Prb_rollback Prb_util Prb_workload Printf
