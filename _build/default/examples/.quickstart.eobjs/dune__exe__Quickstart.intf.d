examples/quickstart.mli:
