examples/figures.mli:
