examples/orderentry.mli:
