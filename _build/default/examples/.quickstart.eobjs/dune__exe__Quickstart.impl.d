examples/quickstart.ml: Fmt List Prb_core Prb_history Prb_rollback Prb_storage Prb_txn
