examples/figures.ml: Fmt List Prb_core Prb_graph Prb_lock Prb_rollback Prb_storage Prb_txn Prb_util Prb_wfg
