examples/inventory.ml: Fun Hashtbl List Prb_core Prb_rollback Prb_sim Prb_storage Prb_util Prb_workload Printf
