examples/bank.mli:
