examples/distributed.mli:
