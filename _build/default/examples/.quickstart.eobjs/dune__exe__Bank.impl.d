examples/bank.ml: List Prb_core Prb_history Prb_rollback Prb_sim Prb_storage Prb_util Prb_workload Printf
