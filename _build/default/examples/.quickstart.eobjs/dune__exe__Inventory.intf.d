examples/inventory.mli:
