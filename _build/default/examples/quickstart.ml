(* Quickstart: two wire transfers collide, deadlock, and the system
   removes the deadlock with a partial rollback instead of killing a
   transaction.

   Run with:  dune exec examples/quickstart.exe
*)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Strategy = Prb_rollback.Strategy
module Scheduler = Prb_core.Scheduler
module History = Prb_history.History

let transfer ~name ~src ~dst ~amount =
  Program.make ~name
    ~locals:[ ("from_bal", Value.int 0); ("to_bal", Value.int 0) ]
    [
      Program.lock_x src;
      Program.read src "from_bal";
      Program.write src Expr.(var "from_bal" - int amount);
      Program.lock_x dst;
      Program.read dst "to_bal";
      Program.write dst Expr.(var "to_bal" + int amount);
      Program.unlock src;
      Program.unlock dst;
    ]

let () =
  (* A two-account bank. *)
  let store =
    Store.of_list [ ("alice", Value.int 1000); ("bob", Value.int 1000) ]
  in

  (* Two transfers in opposite directions: the canonical deadlock. *)
  let t0 = transfer ~name:"alice->bob" ~src:"alice" ~dst:"bob" ~amount:100 in
  let t1 = transfer ~name:"bob->alice" ~src:"bob" ~dst:"alice" ~amount:30 in

  (* A scheduler using the paper's single-copy (state-dependency graph)
     rollback and the livelock-free ordered victim policy. *)
  let sched = Scheduler.create store in

  (* Watch the deadlock machinery work. *)
  Scheduler.set_deadlock_hook sched (fun ~requester ~cycles ~decision ->
      Fmt.pr "deadlock: T%d's request closed %d cycle(s)@." requester
        (List.length cycles);
      List.iter
        (fun (victim, entities) ->
          Fmt.pr "  -> partial rollback of T%d to release %a@." victim
            Fmt.(list ~sep:(any ", ") string)
            entities)
        decision.Prb_core.Resolver.victims);

  let id0 = Scheduler.submit sched t0 in
  let id1 = Scheduler.submit sched t1 in
  Fmt.pr "submitted T%d (%s) and T%d (%s)@." id0 t0.Program.name id1
    t1.Program.name;

  Scheduler.run sched;

  let stats = Scheduler.stats sched in
  Fmt.pr "@[<v>--- run finished ---@,%a@]@." Scheduler.pp_stats stats;
  Fmt.pr "alice = %a, bob = %a (total preserved: %b)@." Value.pp
    (Store.get store "alice") Value.pp (Store.get store "bob")
    (Value.as_int (Store.get store "alice")
     + Value.as_int (Store.get store "bob")
    = 2000);
  Fmt.pr "history serializable: %b@."
    (History.serializable (Scheduler.history sched));
  (match History.equivalent_serial_order (Scheduler.history sched) with
  | Some order ->
      Fmt.pr "equivalent serial order: %a@."
        Fmt.(list ~sep:(any " -> ") (fmt "T%d"))
        order
  | None -> assert false)
