(* Reproduction of the paper's five figures, driven through the library's
   real components (lock table, waits-for graph, transaction runtimes,
   resolver, SDG analysis) rather than the full scheduler, so each
   configuration matches the figure exactly.

   Run with:  dune exec examples/figures.exe
*)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Lock_mode = Prb_txn.Lock_mode
module Strategy = Prb_rollback.Strategy
module Txn_state = Prb_rollback.Txn_state
module Sdg_view = Prb_rollback.Sdg_view
module Waits_for = Prb_wfg.Waits_for
module Resolver = Prb_core.Resolver
module Policy = Prb_core.Policy
module Cutset = Prb_graph.Cutset
module Rng = Prb_util.Rng

let section title =
  Fmt.pr "@.=== %s ===@." title

(* Execute a transaction runtime up to (but excluding) the operation at
   [stop_pc], granting every lock immediately — we are placing the
   transaction at a precise point of its execution, not contending yet. *)
let advance ts ~stop_pc =
  while Txn_state.pc ts < stop_pc do
    match Txn_state.next_action ts with
    | Txn_state.Need_lock _ -> Txn_state.lock_granted ts
    | Txn_state.Data_step -> Txn_state.exec_data_op ts
    | Txn_state.Need_unlock _ -> ignore (Txn_state.perform_unlock ts)
    | Txn_state.At_end -> failwith "advance: ran past end of program"
  done

(* A filler op: pure local computation. *)
let filler = Program.assign "v" Expr.(Mix (var "v"))

(* A straight-line program placing exclusive lock requests at exact
   positions, padding with local computation. *)
let program_with_locks ~name ~length locks =
  let ops =
    List.init length (fun pc ->
        match List.assoc_opt pc locks with
        | Some e -> Program.lock_x e
        | None -> filler)
  in
  Program.make ~name ~locals:[ ("v", Value.int 0) ] ops

(* ---------------------------------------------------------------- *)
(* Figure 1: exclusive-lock deadlock and cost-optimal victim choice. *)
(* ---------------------------------------------------------------- *)

let figure1 () =
  section "Figure 1: optimal rollback choice (exclusive locks)";
  let store =
    Store.of_list
      (List.map (fun e -> (e, Value.int 0)) [ "a"; "b"; "c"; "d"; "e" ])
  in
  (* The configuration the paper describes:
       T2 locked b from its 8th state, requests e from state 12;
       T3 locked c from state 5, requests b from state 11;
       T4 locked e from state 10, requests c from state 15;
       T1 requests a, which T2 locked after b (so T2's rollback frees it). *)
  let t2 =
    program_with_locks ~name:"T2" ~length:16 [ (8, "b"); (10, "a"); (12, "e") ]
  in
  let t3 = program_with_locks ~name:"T3" ~length:16 [ (5, "c"); (11, "b") ] in
  let t4 = program_with_locks ~name:"T4" ~length:16 [ (10, "e"); (15, "c") ] in
  let t1 = program_with_locks ~name:"T1" ~length:16 [ (3, "a") ] in
  let mk id program =
    Txn_state.create ~strategy:Strategy.Mcs ~id ~store program
  in
  let ts1 = mk 1 t1 and ts2 = mk 2 t2 and ts3 = mk 3 t3 and ts4 = mk 4 t4 in
  advance ts2 ~stop_pc:12 (* holding b, a; requesting e *);
  advance ts3 ~stop_pc:11 (* holding c; requesting b *);
  advance ts4 ~stop_pc:15 (* holding e; requesting c *);
  advance ts1 ~stop_pc:3 (* requesting a *);
  let wfg = Waits_for.create () in
  List.iter (fun id -> Waits_for.add_txn wfg id) [ 1; 2; 3; 4 ];
  Waits_for.set_wait wfg ~waiter:2 ~holders:[ 4 ] "e";
  Waits_for.set_wait wfg ~waiter:3 ~holders:[ 2 ] "b";
  Waits_for.set_wait wfg ~waiter:4 ~holders:[ 3 ] "c";
  Waits_for.set_wait wfg ~waiter:1 ~holders:[ 2 ] "a";
  Fmt.pr "concurrency graph (waiter -entity-> holder):@.%a@." Waits_for.pp wfg;
  let states = [ (1, ts1); (2, ts2); (3, ts3); (4, ts4) ] in
  let cycles =
    List.map
      (fun cycle ->
        (* convert vertex cycle to (member, entity-to-release) arcs *)
        let rec arcs = function
          | [] -> []
          | [ last ] -> [ (2, List.assoc 2 (Waits_for.waits wfg last)) ]
          | u :: (v :: _ as rest) ->
              (v, List.assoc v (Waits_for.waits wfg u)) :: arcs rest
        in
        arcs cycle)
      (Waits_for.cycles_through wfg 2)
  in
  List.iter
    (fun cycle ->
      List.iter
        (fun (m, e) ->
          let ts = List.assoc m states in
          Fmt.pr
            "  T%d can break the cycle by releasing %s: rollback cost %d@." m
            e
            (Txn_state.cost_to_release ts e))
        cycle)
    cycles;
  let decision =
    Resolver.choose ~policy:Policy.Min_cost ~requester:2
      ~entry_order:(fun v -> v)
      ~release_cost:(fun v es ->
        let ts = List.assoc v states in
        List.fold_left (fun acc e -> max acc (Txn_state.cost_to_release ts e)) 0 es)
      ~rng:(Rng.make 1) cycles
  in
  (match decision.Resolver.victims with
  | [ (v, entities) ] ->
      Fmt.pr "chosen victim: T%d (releases %a)@." v
        Fmt.(list ~sep:(any ", ") string)
        entities;
      let ts = List.assoc v states in
      let target =
        List.fold_left
          (fun acc e -> min acc (Txn_state.rollback_target ts e))
          (Txn_state.lock_index ts) entities
      in
      let released = Txn_state.rollback_to ts target in
      Fmt.pr "rollback of T%d released %a -> T1 no longer waits for T2@." v
        Fmt.(list ~sep:(any ", ") string)
        released
  | _ -> assert false);
  Waits_for.clear_wait wfg 3 (* b released: T3 can be granted *);
  Waits_for.clear_wait wfg 1 (* a released: T1 can be granted *);
  Fmt.pr "figure 1(b) graph after the rollback:@.%a@." Waits_for.pp wfg

(* ---------------------------------------------------------------- *)
(* Figure 2: potentially infinite mutual preemption.                 *)
(* ---------------------------------------------------------------- *)

let figure2 () =
  section "Figure 2: mutual preemption vs. Theorem 2's ordering";
  (* Pure cost optimisation can preempt the same transactions forever.
     We show the two policies deciding the same deadlock differently:
     under Min_cost the *older* cheap transaction is preempted (which can
     recreate an earlier configuration — the paper's scenario); under
     Ordered_min_cost only transactions younger than the requester are
     preemptible, which Theorem 2 proves loop-free. *)
  let cycles = [ [ (2, "f"); (3, "b") ] ] in
  (* T3 (requester) closed a cycle with T2; costs: T2 cheap, T3 dear. *)
  let cost v _ = if v = 2 then 2 else 9 in
  let run policy =
    Resolver.choose ~policy ~requester:3
      ~entry_order:(fun v -> v)
      ~release_cost:cost ~rng:(Rng.make 1) cycles
  in
  let show name decision =
    Fmt.pr "%-16s -> victims: %a@." name
      Fmt.(
        list ~sep:(any ", ") (fun ppf (v, es) ->
            pf ppf "T%d(%a)" v (list ~sep:(any ", ") string) es))
      decision.Resolver.victims
  in
  show "min-cost" (run Policy.Min_cost);
  show "ordered" (run Policy.Ordered_min_cost);
  Fmt.pr
    "min-cost preempts the older T2 again and again; ordered only ever@.\
     preempts transactions younger than the conflict causer, so the@.\
     oldest live transaction always completes (Theorem 2).@."

(* ---------------------------------------------------------------- *)
(* Figure 3: shared locks — one wait closes several cycles.          *)
(* ---------------------------------------------------------------- *)

let figure3 () =
  section "Figure 3: multi-cycle deadlocks with shared locks";
  (* Figure 3(c): T2 and T3 hold shared locks on f and each waits for an
     entity T1 holds; T1's exclusive request on f closes two cycles at
     once. Breaking them needs either T1 alone, or both T2 and T3. *)
  let locks = Prb_lock.Lock_table.create ~fair:false () in
  let wfg = Waits_for.create () in
  List.iter (fun id -> Waits_for.add_txn wfg id) [ 1; 2; 3 ];
  let grant id mode e =
    match Prb_lock.Lock_table.request locks id mode e with
    | Prb_lock.Lock_table.Granted -> ()
    | Prb_lock.Lock_table.Blocked _ -> assert false
  in
  grant 1 Lock_mode.Exclusive "a";
  grant 1 Lock_mode.Exclusive "b";
  grant 2 Lock_mode.Shared "f";
  grant 3 Lock_mode.Shared "f";
  (* T2 and T3 block on T1's entities. *)
  (match Prb_lock.Lock_table.request locks 2 Lock_mode.Exclusive "a" with
  | Prb_lock.Lock_table.Blocked holders ->
      Waits_for.set_wait wfg ~waiter:2 ~holders "a"
  | Prb_lock.Lock_table.Granted -> assert false);
  (match Prb_lock.Lock_table.request locks 3 Lock_mode.Exclusive "b" with
  | Prb_lock.Lock_table.Blocked holders ->
      Waits_for.set_wait wfg ~waiter:3 ~holders "b"
  | Prb_lock.Lock_table.Granted -> assert false);
  (* T1's exclusive request on f conflicts with both shared holders. *)
  (match Prb_lock.Lock_table.request locks 1 Lock_mode.Exclusive "f" with
  | Prb_lock.Lock_table.Blocked holders ->
      Fmt.pr "T1 requests X(f); conflicting holders: %a (Type %s conflict)@."
        Fmt.(list ~sep:(any ", ") (fmt "T%d"))
        holders
        (match Prb_lock.Lock_table.classify locks 1 Lock_mode.Exclusive "f" with
        | Prb_lock.Lock_table.Type2 -> "2"
        | Prb_lock.Lock_table.Type1 -> "1"
        | Prb_lock.Lock_table.No_conflict -> "none");
      Waits_for.set_wait wfg ~waiter:1 ~holders "f"
  | Prb_lock.Lock_table.Granted -> assert false);
  Fmt.pr "graph:@.%a@." Waits_for.pp wfg;
  let cycles = Waits_for.cycles_through wfg 1 in
  Fmt.pr "cycles through the requester T1: %d@." (List.length cycles);
  (* Removal sets, as a minimum-cost vertex cut. *)
  let instance cost =
    { Cutset.cycles = List.map (fun c -> c) cycles; cost }
  in
  let show_cut name cost =
    match Cutset.exact (instance cost) with
    | Some cut ->
        Fmt.pr "  %-28s -> cut {%a} (cost %.0f)@." name
          Fmt.(list ~sep:(any ", ") (fmt "T%d"))
          cut
          (Cutset.total_cost (instance cost) cut)
    | None -> assert false
  in
  show_cut "uniform costs" (fun _ -> 1.0);
  show_cut "T1 expensive (cost 5)" (fun v -> if v = 1 then 5.0 else 1.0);
  Fmt.pr
    "with uniform costs the cut is {T1} (it lies on every cycle); when@.\
     T1 is expensive to roll back, the optimal cut becomes {T2, T3} —@.\
     exactly the paper's observation for Figure 3(c).@."

(* ---------------------------------------------------------------- *)
(* Figure 4: state-dependency graph and well-defined states.         *)
(* ---------------------------------------------------------------- *)

(* The OCR of the paper's Figure 4 transaction is unreadable; per
   DESIGN.md we reconstruct a 6-lock transaction with the property the
   text describes: no non-trivial well-defined state, until one local
   write is deleted, which makes lock state 4 well-defined. *)
let figure4_txn ~with_ck =
  let ops =
    [
      Program.lock_x "A" (* lock state 0 *);
      Program.write "A" Expr.(int 1) (* segment 1: first write to A *);
      Program.lock_x "B" (* lock state 1 *);
      filler;
      Program.lock_x "C" (* lock state 2 *);
      Program.write "A" Expr.(int 2) (* segment 3: damages states 1-2 *);
      Program.lock_x "D" (* lock state 3 *);
      Program.write "A" Expr.(int 3) (* segment 4: damages state 3 *);
    ]
    @ (if with_ck then [ Program.assign "c" Expr.(int 7) (* "C := K" *) ]
       else [])
    @ [
        Program.lock_x "E" (* lock state 4 *);
        Program.write "B" Expr.(int 4) (* segment 5: first write to B *);
        Program.lock_x "F" (* lock state 5 *);
        Program.write "B" Expr.(int 5) (* segment 6: damages state 5 *);
        (if with_ck then Program.assign "c" Expr.(int 8)
         else
           Program.assign "w" Expr.(int 9)
           (* the second write to c damages state 4 only when C:=K exists *));
      ]
  in
  Program.make
    ~name:(if with_ck then "T1" else "T1'")
    ~locals:[ ("v", Value.int 0); ("c", Value.int 0); ("w", Value.int 0) ]
    ops

let figure4 () =
  section "Figure 4: well-defined states of a state-dependency graph";
  let show program =
    let g = Sdg_view.of_program program in
    Fmt.pr "%s: SDG edges %a@." program.Program.name
      Fmt.(list ~sep:(any ", ") (pair ~sep:(any "-") int int))
      (Prb_graph.Ugraph.edges g);
    Fmt.pr "  damage intervals: %a@."
      Fmt.(list ~sep:(any ", ") (pair ~sep:(any "..") int int))
      (Sdg_view.damage_intervals program);
    Fmt.pr "  well-defined states: %a@."
      Fmt.(list ~sep:(any ", ") int)
      (Sdg_view.well_defined_states program)
  in
  let t1 = figure4_txn ~with_ck:true in
  let t1' = figure4_txn ~with_ck:false in
  show t1;
  show t1';
  Fmt.pr
    "deleting the local write (the paper's \"C := K\") turns lock state 4@.\
     well-defined: a single-copy rollback from state 6 can then stop at 4@.\
     instead of falling all the way back to 0.@."

(* ---------------------------------------------------------------- *)
(* Figure 5: write clustering multiplies well-defined states.        *)
(* ---------------------------------------------------------------- *)

let figure5 () =
  section "Figure 5: clustering writes preserves well-defined states";
  let t1 = figure4_txn ~with_ck:true in
  let clustered = Program.cluster_writes t1 in
  let count p = List.length (Sdg_view.well_defined_states p) in
  Fmt.pr "%-4s damage span %d, well-defined states %d of %d@."
    t1.Program.name (Program.damage_span t1) (count t1)
    (Program.n_locks t1 + 1);
  Fmt.pr "%-4s damage span %d, well-defined states %d of %d (same ops, reordered)@."
    "T2" (Program.damage_span clustered) (count clustered)
    (Program.n_locks clustered + 1);
  Fmt.pr
    "clustering each entity's writes right after one another (legal@.\
     reorderings only: the transforms respect data dependences) shrinks@.\
     the damage spans, so rollbacks rarely need to overshoot — the@.\
     paper's guidance for writing transactions that coexist with@.\
     single-copy partial rollback.@."

let () =
  figure1 ();
  figure2 ();
  figure3 ();
  figure4 ();
  figure5 ()
