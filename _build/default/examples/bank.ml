(* A bank under load: random transfers plus long-running audits (shared
   locks), run once per rollback strategy. Shows the storage/progress
   trade-off of the paper's Section 4 on a workload with both lock modes,
   and checks the balance invariant survives every strategy.

   Run with:  dune exec examples/bank.exe
*)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Scenarios = Prb_workload.Scenarios
module Strategy = Prb_rollback.Strategy
module Scheduler = Prb_core.Scheduler
module Sim = Prb_sim.Sim
module History = Prb_history.History
module Rng = Prb_util.Rng
module Table = Prb_util.Table

let n_accounts = 24
let initial_balance = 1000
let n_txns = 150

(* Deterministic mixed workload: 80% transfers between random accounts,
   20% audits over a random window of accounts. *)
let workload seed =
  let rng = Rng.make seed in
  List.init n_txns (fun i ->
      if Rng.chance rng 0.8 then
        let from_acct = Rng.int rng n_accounts in
        let to_acct =
          (from_acct + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts
        in
        Scenarios.transfer
          ~name:(Printf.sprintf "xfer%03d" i)
          ~from_acct ~to_acct
          ~amount:(1 + Rng.int rng 50)
      else
        let start = Rng.int rng n_accounts in
        let len = 3 + Rng.int rng 5 in
        let accounts =
          List.init len (fun k -> (start + k) mod n_accounts)
          |> List.sort_uniq compare
        in
        Scenarios.audit ~name:(Printf.sprintf "audit%03d" i) ~accounts)

let () =
  let invariant =
    Scenarios.balance_invariant ~n_accounts ~balance:initial_balance
  in
  let table =
    Table.create ~title:"bank workload: 80% transfers / 20% audits"
      [
        ("strategy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("peak copies", Table.Right);
        ("ticks", Table.Right);
        ("invariant", Table.Left);
        ("serializable", Table.Left);
      ]
  in
  List.iter
    (fun strategy ->
      let store =
        Scenarios.bank_store ~n_accounts ~balance:initial_balance
      in
      let config =
        {
          Sim.scheduler = { Scheduler.default_config with strategy; seed = 11 };
          mpl = 8;
        }
      in
      let result = Sim.run ~config ~store (workload 11) in
      let stats = result.Sim.stats in
      let invariant_ok =
        Store.Constraint.holds invariant store
      in
      Table.add_row table
        [
          Strategy.to_string strategy;
          Table.cell_int stats.Scheduler.commits;
          Table.cell_int stats.Scheduler.deadlocks;
          Table.cell_int stats.Scheduler.rollbacks;
          Table.cell_int stats.Scheduler.ops_lost;
          Table.cell_int stats.Scheduler.peak_copies;
          Table.cell_int stats.Scheduler.ticks;
          (if invariant_ok then "preserved" else "VIOLATED");
          string_of_bool result.Sim.serializable;
        ];
      assert invariant_ok;
      assert result.Sim.serializable)
    (Strategy.all_basic @ [ Strategy.Sdg_k 2 ]);
  Table.print table;
  print_endline
    "Every strategy preserves the balance invariant; they differ in how\n\
     much transaction progress a deadlock costs (ops lost) and how many\n\
     local copies they must keep (peak copies)."
