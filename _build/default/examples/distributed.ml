(* Multi-site execution (paper Section 3.3): the same workload run under
   periodic global detection and under wound-wait prevention, comparing
   messages, bookkeeping shipping and lost progress for total vs. partial
   rollback.

   Run with:  dune exec examples/distributed.exe
*)

module Generator = Prb_workload.Generator
module Strategy = Prb_rollback.Strategy
module D = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim
module Table = Prb_util.Table

let () =
  let params =
    {
      Generator.default_params with
      n_entities = 40;
      zipf_theta = 0.6;
      max_locks = 5;
    }
  in
  let n_txns = 80 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf "4 sites, %d transactions, detection every 40 ticks"
           n_txns)
      [
        ("detection", Table.Left);
        ("strategy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks (l/g)", Table.Right);
        ("wounds", Table.Right);
        ("ops lost", Table.Right);
        ("messages", Table.Right);
        ("shipped copies", Table.Right);
      ]
  in
  List.iter
    (fun (detection, dname) ->
      List.iter
        (fun strategy ->
          let store = Generator.populate params in
          let programs = Generator.generate params ~seed:3 ~n:n_txns in
          let config =
            {
              Dist_sim.scheduler =
                {
                  D.default_config with
                  n_sites = 4;
                  detection;
                  strategy;
                  seed = 3;
                  max_ticks = 300_000;
                };
              mpl = 10;
            }
          in
          let r = Dist_sim.run ~config ~store programs in
          let s = r.Dist_sim.stats in
          assert r.Dist_sim.serializable;
          Table.add_row table
            [
              dname;
              Strategy.to_string strategy;
              Table.cell_int s.D.commits;
              Printf.sprintf "%d (%d/%d)" s.D.deadlocks s.D.local_deadlocks
                s.D.global_deadlocks;
              Table.cell_int s.D.wounds;
              Table.cell_int s.D.ops_lost;
              Table.cell_int s.D.messages;
              Table.cell_int s.D.shipped_copies;
            ])
        Strategy.all_basic;
      Table.add_separator table)
    [ (D.Local_then_global 40, "local+global"); (D.Wound_wait, "wound-wait") ];
  Table.print table;
  print_endline
    "Partial rollback keeps its advantage across sites (ops lost), but a\n\
     moving transaction's version bookkeeping must follow it (shipped\n\
     copies) - the communication overhead Section 3.3 warns about; total\n\
     rollback ships nothing."
