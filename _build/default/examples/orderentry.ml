(* TPC-C-flavoured order entry: new-order transactions hammer their
   district counters and the warehouse totals while read-only stock-level
   checks take shared locks across many entries. Compares the rollback
   strategies where it matters — a deadlock on the warehouse total hits a
   transaction near the END of its work, which is exactly where partial
   rollback saves the most.

   Run with:  dune exec examples/orderentry.exe
*)

module Scenarios = Prb_workload.Scenarios
module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Strategy = Prb_rollback.Strategy
module Scheduler = Prb_core.Scheduler
module Sim = Prb_sim.Sim
module Rng = Prb_util.Rng
module Table = Prb_util.Table

let n_warehouses = 2
let districts = 4
let items = 20
let initial_stock = 100_000
let n_txns = 120

let workload seed =
  let rng = Rng.make seed in
  List.init n_txns (fun i ->
      let warehouse = Rng.int rng n_warehouses in
      if Rng.chance rng 0.75 then
        let n_lines = 2 + Rng.int rng 4 in
        let seen = Hashtbl.create 8 in
        let lines =
          List.filter_map
            (fun _ ->
              let item = Rng.int rng items in
              if Hashtbl.mem seen item then None
              else begin
                Hashtbl.replace seen item ();
                Some (item, 1 + Rng.int rng 5)
              end)
            (List.init n_lines Fun.id)
        in
        Scenarios.new_order
          ~name:(Printf.sprintf "neworder%04d" i)
          ~warehouse
          ~district:(Rng.int rng districts)
          ~lines
      else
        Scenarios.stock_level
          ~name:(Printf.sprintf "stocklvl%04d" i)
          ~warehouse
          ~items:
            (List.init (3 + Rng.int rng 5) (fun k ->
                 (k * 3 mod items)) |> List.sort_uniq compare))

let () =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "order entry: %d warehouses x %d districts, %d txns, mpl 12"
           n_warehouses districts n_txns)
      [
        ("strategy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("overshoot", Table.Right);
        ("mean cost", Table.Right);
        ("peak copies", Table.Right);
      ]
  in
  List.iter
    (fun strategy ->
      let store =
        Scenarios.order_entry_store ~n_warehouses
          ~districts_per_warehouse:districts ~items_per_warehouse:items
          ~stock:initial_stock
      in
      let config =
        {
          Sim.scheduler = { Scheduler.default_config with strategy; seed = 9 };
          mpl = 12;
        }
      in
      let r = Sim.run ~config ~store (workload 9) in
      let s = r.Sim.stats in
      assert r.Sim.serializable;
      Table.add_row table
        [
          Strategy.to_string strategy;
          Table.cell_int s.Scheduler.commits;
          Table.cell_int s.Scheduler.deadlocks;
          Table.cell_int s.Scheduler.rollbacks;
          Table.cell_int s.Scheduler.ops_lost;
          Table.cell_int s.Scheduler.overshoot_ops;
          Table.cell_float r.Sim.mean_rollback_cost;
          Table.cell_int r.Sim.peak_copies;
        ])
    (Strategy.all_basic @ [ Strategy.Sdg_k 2 ]);
  Table.print table;
  print_endline
    "New-order transactions end at the hot warehouse total: a deadlock\n\
     there costs a restart its whole order, while partial rollback only\n\
     repeats the last lock step. Every stock entry is written once,\n\
     right after its lock (Figure 5's clustered structure), so entities\n\
     cause no overshoot - what overshoot SDG shows comes from the\n\
     reused `stock' register, a local variable rewritten in every line's\n\
     segment, exactly the paper's C := K effect; two extra copies\n\
     (sdg+2) all but erase it."
