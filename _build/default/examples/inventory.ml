(* Order processing: multi-item orders whose lock orders collide, run
   under every victim policy. Demonstrates why optimisation needs
   Theorem 2's ordering: the pure policies livelock or thrash under
   symmetric contention while the ordered policy finishes.

   Run with:  dune exec examples/inventory.exe
*)

module Scenarios = Prb_workload.Scenarios
module Store = Prb_storage.Store
module Value = Prb_storage.Value
module Strategy = Prb_rollback.Strategy
module Policy = Prb_core.Policy
module Scheduler = Prb_core.Scheduler
module Sim = Prb_sim.Sim
module Rng = Prb_util.Rng
module Table = Prb_util.Table

let n_items = 12
let initial_stock = 10_000

(* Orders over overlapping item sets in clashing orders, plus restocks. *)
let workload seed n =
  let rng = Rng.make seed in
  List.init n (fun i ->
      if Rng.chance rng 0.85 then
        let n_lines = 2 + Rng.int rng 3 in
        let first = Rng.int rng n_items in
        let step = 1 + Rng.int rng (n_items - 1) in
        let dedupe_by_item lines =
          let seen = Hashtbl.create 8 in
          List.filter
            (fun (item, _) ->
              if Hashtbl.mem seen item then false
              else begin
                Hashtbl.replace seen item ();
                true
              end)
            lines
        in
        let items =
          List.init n_lines (fun k ->
              ((first + (k * step)) mod n_items, 1 + Rng.int rng 3))
          |> dedupe_by_item
          |> List.sort (fun (a, _) (b, _) -> compare a b)
          |> if Rng.bool rng then List.rev else Fun.id
        in
        Scenarios.order ~name:(Printf.sprintf "order%04d" i) ~items
      else
        Scenarios.restock
          ~name:(Printf.sprintf "restock%04d" i)
          ~item:(Rng.int rng n_items) ~quantity:(Rng.int_in rng 10 50))

let () =
  let n = 120 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "inventory orders under every victim policy (%d txns, sdg \
            rollback, 400k-tick budget)"
           n)
      [
        ("policy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("outcome", Table.Left);
      ]
  in
  List.iter
    (fun policy ->
      let store = Scenarios.inventory_store ~n_items ~stock:initial_stock in
      let config =
        {
          Sim.scheduler =
            {
              Scheduler.default_config with
              strategy = Strategy.Sdg;
              policy;
              seed = 5;
              max_ticks = 400_000;
            };
          mpl = 10;
        }
      in
      let r = Sim.run ~config ~store (workload 5 n) in
      let s = r.Sim.stats in
      Table.add_row table
        [
          Policy.to_string policy;
          Table.cell_int s.Scheduler.commits;
          Table.cell_int s.Scheduler.deadlocks;
          Table.cell_int s.Scheduler.rollbacks;
          Table.cell_int s.Scheduler.ops_lost;
          (if s.Scheduler.commits = n then "all committed"
           else "LIVELOCK (tick budget exhausted)");
        ];
      assert r.Sim.serializable)
    Policy.all;
  Table.print table;
  print_endline
    "min-cost and requester may preempt the same pair forever (the\n\
     paper's \"potentially infinite mutual preemption\", Figure 2);\n\
     ordered and youngest respect a time-invariant order (Theorem 2) and\n\
     always finish."
