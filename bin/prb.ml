(* prb — command-line driver for the partial-rollback concurrency control.

   Subcommands:
     prb sim      run a synthetic workload through the centralised engine
     prb distrib  run it through the multi-site engine
     prb sweep    compare the rollback strategies on one workload
*)

open Cmdliner

module Strategy = Prb_rollback.Strategy
module Policy = Prb_core.Policy
module Scheduler = Prb_core.Scheduler
module Generator = Prb_workload.Generator
module Sim = Prb_sim.Sim
module D = Prb_distrib.Dist_scheduler
module Table = Prb_util.Table

(* --- Shared options -------------------------------------------------- *)

let strategy_conv =
  let parse s =
    match Strategy.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Strategy.to_string s))

let policy_conv =
  let parse s =
    match Policy.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Policy.to_string p))

let strategy_arg =
  Arg.(
    value
    & opt strategy_conv Strategy.Sdg
    & info [ "strategy" ] ~docv:"STRAT"
        ~doc:"Rollback strategy: total, mcs, sdg or sdg+K.")

let policy_arg =
  Arg.(
    value
    & opt policy_conv Policy.Ordered_min_cost
    & info [ "policy" ] ~docv:"POLICY"
        ~doc:
          "Victim policy: min-cost, ordered, youngest, requester or random.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let txns_arg =
  Arg.(
    value & opt int 200
    & info [ "txns"; "n" ] ~docv:"N" ~doc:"Transactions to run.")

let mpl_arg =
  Arg.(
    value & opt int 8
    & info [ "mpl" ] ~docv:"K" ~doc:"Multiprogramming level (concurrency).")

let entities_arg =
  Arg.(
    value & opt int 64
    & info [ "entities" ] ~docv:"N" ~doc:"Database size (entities).")

let theta_arg =
  Arg.(
    value & opt float 0.6
    & info [ "theta" ] ~docv:"T" ~doc:"Zipf skew (0 = uniform).")

let read_frac_arg =
  Arg.(
    value & opt float 0.3
    & info [ "reads" ] ~docv:"F" ~doc:"Fraction of locks that are shared.")

let locks_arg =
  Arg.(
    value & opt (pair ~sep:':' int int) (3, 6)
    & info [ "locks" ] ~docv:"MIN:MAX" ~doc:"Locks per transaction.")

let clustering_arg =
  Arg.(
    value & opt float 0.5
    & info [ "clustering" ] ~docv:"C"
        ~doc:"Probability a write lands right after its entity's lock.")

let three_phase_arg =
  Arg.(
    value & flag
    & info [ "three-phase" ]
        ~doc:"Restructure transactions as acquire/update/release.")

let max_ticks_arg =
  Arg.(
    value & opt int 1_000_000
    & info [ "max-ticks" ] ~docv:"T" ~doc:"Simulation tick budget.")

let intervention_conv =
  let parse s =
    match s with
    | "detect" -> Ok Scheduler.Detect
    | "wound-wait" -> Ok Scheduler.Wound_wait_c
    | "wait-die" -> Ok Scheduler.Wait_die_c
    | _ ->
        let prefix = "timeout:" in
        let lp = String.length prefix in
        if String.length s > lp && String.sub s 0 lp = prefix then
          match int_of_string_opt (String.sub s lp (String.length s - lp)) with
          | Some n when n > 0 -> Ok (Scheduler.Timeout_abort n)
          | Some _ | None -> Error (`Msg "timeout wants a positive tick count")
        else Error (`Msg (Printf.sprintf "unknown intervention %S" s))
  in
  let print ppf = function
    | Scheduler.Detect -> Fmt.string ppf "detect"
    | Scheduler.Timeout_abort n -> Fmt.pf ppf "timeout:%d" n
    | Scheduler.Wound_wait_c -> Fmt.string ppf "wound-wait"
    | Scheduler.Wait_die_c -> Fmt.string ppf "wait-die"
  in
  Arg.conv (parse, print)

let intervention_arg =
  Arg.(
    value
    & opt intervention_conv Scheduler.Detect
    & info [ "intervention" ] ~docv:"MODE"
        ~doc:
          "Deadlock handling: $(b,detect) (the paper), $(b,timeout:N), \
           $(b,wound-wait) or $(b,wait-die).")

let detection_policy_conv =
  let module DP = Prb_core.Detection_policy in
  let parse s =
    match DP.of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown detection policy %S" s))
  in
  Arg.conv (parse, DP.pp)

let detection_policy_doc =
  "When to run deadlock detection: $(b,eager) (at every blocked request), \
   $(b,periodic:N) (a sweep every N ticks), $(b,lazy:B) or $(b,lazy:B:K) \
   (a targeted probe after B blocked ticks, backing off up to K doublings \
   on misses) or $(b,adaptive) (a sweep whose period tracks the \
   deadlock-arrival rate). Deferred policies are backstopped by a stall \
   watchdog."

let detection_policy_arg ~names =
  let module DP = Prb_core.Detection_policy in
  Arg.(
    value
    & opt detection_policy_conv DP.Eager
    & info names ~docv:"POLICY" ~doc:detection_policy_doc)

let starvation_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "starvation" ] ~docv:"K"
        ~doc:
          "Starvation guard: a transaction rolled back $(docv) times \
           becomes immune to victim selection (overridden only when a \
           cycle offers nobody else). Off by default.")

let params_of ~entities ~theta ~reads ~locks ~clustering ~three_phase =
  let min_locks, max_locks = locks in
  {
    Generator.default_params with
    n_entities = entities;
    zipf_theta = theta;
    read_fraction = reads;
    min_locks;
    max_locks;
    clustering;
    three_phase;
  }

(* --- prb sim ---------------------------------------------------------- *)

let run_sim strategy policy intervention detection starvation_limit seed txns
    mpl entities theta reads locks clustering three_phase max_ticks =
  let params =
    params_of ~entities ~theta ~reads ~locks ~clustering ~three_phase
  in
  let config =
    {
      Sim.scheduler =
        {
          Scheduler.default_config with
          strategy;
          policy;
          intervention;
          detection;
          starvation_limit;
          seed;
          max_ticks;
        };
      mpl;
    }
  in
  let result = Sim.run_generated ~config ~params ~seed ~n_txns:txns () in
  Fmt.pr "%a@." Sim.pp_result result;
  if result.Sim.stats.Scheduler.commits < txns then (
    Fmt.epr "warning: only %d/%d transactions committed (tick budget?)@."
      result.Sim.stats.Scheduler.commits txns;
    1)
  else 0

let sim_cmd =
  let doc = "run a synthetic workload through the centralised engine" in
  Cmd.v
    (Cmd.info "sim" ~doc)
    Term.(
      const run_sim $ strategy_arg $ policy_arg $ intervention_arg
      $ detection_policy_arg ~names:[ "detection" ]
      $ starvation_arg $ seed_arg $ txns_arg $ mpl_arg $ entities_arg
      $ theta_arg $ read_frac_arg $ locks_arg $ clustering_arg
      $ three_phase_arg $ max_ticks_arg)

(* --- prb sweep -------------------------------------------------------- *)

let run_sweep policy seed txns mpl entities theta reads locks clustering
    three_phase max_ticks =
  let params =
    params_of ~entities ~theta ~reads ~locks ~clustering ~three_phase
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "strategy sweep (policy=%s, mpl=%d, txns=%d, theta=%.2f)"
           (Policy.to_string policy) mpl txns theta)
      [
        ("strategy", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("rollbacks", Table.Right);
        ("ops lost", Table.Right);
        ("mean cost", Table.Right);
        ("wasted", Table.Right);
        ("peak copies", Table.Right);
        ("throughput", Table.Right);
      ]
  in
  List.iter
    (fun strategy ->
      let config =
        {
          Sim.scheduler =
            { Scheduler.default_config with strategy; policy; seed; max_ticks };
          mpl;
        }
      in
      let r = Sim.run_generated ~config ~params ~seed ~n_txns:txns () in
      let s = r.Sim.stats in
      Table.add_row table
        [
          Strategy.to_string strategy;
          Table.cell_int s.Scheduler.commits;
          Table.cell_int s.Scheduler.deadlocks;
          Table.cell_int s.Scheduler.rollbacks;
          Table.cell_int s.Scheduler.ops_lost;
          Table.cell_float r.Sim.mean_rollback_cost;
          Table.cell_pct r.Sim.wasted_fraction;
          Table.cell_int r.Sim.peak_copies;
          Table.cell_float r.Sim.throughput;
        ])
    (Strategy.all_basic @ [ Strategy.Sdg_k 2 ]);
  Table.print table;
  0

let sweep_cmd =
  let doc = "compare rollback strategies on one workload" in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run_sweep $ policy_arg $ seed_arg $ txns_arg $ mpl_arg
      $ entities_arg $ theta_arg $ read_frac_arg $ locks_arg $ clustering_arg
      $ three_phase_arg $ max_ticks_arg)

(* --- prb distrib ------------------------------------------------------ *)

let sites_arg =
  Arg.(value & opt int 4 & info [ "sites" ] ~docv:"N" ~doc:"Number of sites.")

let detection_arg =
  let parse s =
    if s = "wound-wait" then Ok D.Wound_wait
    else
      match int_of_string_opt s with
      | Some p when p > 0 -> Ok (D.Local_then_global p)
      | Some _ | None ->
          Error
            (`Msg "expected a positive detection period or \"wound-wait\"")
  in
  let print ppf = function
    | D.Wound_wait -> Fmt.string ppf "wound-wait"
    | D.Local_then_global p -> Fmt.pf ppf "%d" p
  in
  Arg.(
    value
    & opt (conv (parse, print)) (D.Local_then_global 50)
    & info [ "detection" ] ~docv:"MODE"
        ~doc:
          "Global-deadlock handling: a detection period in ticks, or \
           $(b,wound-wait).")

let run_distrib strategy policy seed txns mpl sites detection detection_policy
    starvation_limit entities theta reads locks max_ticks =
  let params =
    params_of ~entities ~theta ~reads ~locks ~clustering:0.5
      ~three_phase:false
  in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed ~n:txns in
  let config =
    {
      Prb_distrib.Dist_sim.scheduler =
        {
          D.default_config with
          n_sites = sites;
          detection;
          detection_policy;
          starvation_limit;
          strategy;
          policy;
          seed;
          max_ticks;
        };
      mpl;
    }
  in
  let result = Prb_distrib.Dist_sim.run ~config ~store programs in
  Fmt.pr "%a@." Prb_distrib.Dist_sim.pp_result result;
  if result.Prb_distrib.Dist_sim.stats.D.commits < txns then 1 else 0

let distrib_cmd =
  let doc = "run a workload through the multi-site engine" in
  Cmd.v
    (Cmd.info "distrib" ~doc)
    Term.(
      const run_distrib $ strategy_arg $ policy_arg $ seed_arg $ txns_arg
      $ mpl_arg $ sites_arg $ detection_arg
      $ detection_policy_arg ~names:[ "detection-policy" ]
      $ starvation_arg $ entities_arg $ theta_arg $ read_frac_arg $ locks_arg
      $ max_ticks_arg)

(* --- prb run: execute transactions from a file ------------------------ *)

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Transactions file (see prb.txn syntax).")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let initial_value_arg =
  Arg.(
    value & opt int 100
    & info [ "initial" ] ~docv:"N"
        ~doc:"Initial integer value for every referenced entity.")

let entities_of_programs programs =
  List.concat_map
    (fun p ->
      Array.to_list p.Prb_txn.Program.ops
      |> List.filter_map (function
           | Prb_txn.Program.Lock (_, e) -> Some e
           | _ -> None))
    programs
  |> List.sort_uniq compare

let verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ]
        ~doc:"Trace grants, blocks, deadlocks and rollbacks as they happen.")

let setup_logging verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.set_level (Some Logs.Debug) else Logs.set_level None

let run_file verbose strategy policy seed max_ticks initial path =
  setup_logging verbose;
  match Prb_txn.Parser.parse_many (read_file path) with
  | Error e ->
      Fmt.epr "%s: %a@." path Prb_txn.Parser.pp_error e;
      1
  | Ok [] ->
      Fmt.epr "%s: no transactions@." path;
      1
  | Ok programs -> (
      let invalid =
        List.filter_map
          (fun p ->
            match Prb_txn.Program.validate p with
            | Ok () -> None
            | Error vs -> Some (p.Prb_txn.Program.name, vs))
          programs
      in
      match invalid with
      | (name, (op, v) :: _) :: _ ->
          Fmt.epr "%s: transaction %s: op %d: %a@." path name op
            Prb_txn.Program.pp_violation v;
          1
      | _ ->
          let store =
            Prb_storage.Store.of_list
              (List.map
                 (fun e -> (e, Prb_storage.Value.int initial))
                 (entities_of_programs programs))
          in
          Fmt.pr "initial state:@.";
          List.iter
            (fun (e, v) -> Fmt.pr "  %s = %a@." e Prb_storage.Value.pp v)
            (Prb_storage.Store.snapshot store);
          let config =
            { Scheduler.default_config with strategy; policy; seed; max_ticks }
          in
          let sched = Scheduler.create ~config store in
          Scheduler.set_deadlock_hook sched (fun ~requester ~cycles ~decision ->
              Fmt.pr "deadlock: T%d closed %d cycle(s); victims: %a@."
                requester (List.length cycles)
                Fmt.(
                  list ~sep:(any "; ") (fun ppf (v, es) ->
                      pf ppf "T%d releases {%a}" v
                        (list ~sep:(any ",") string)
                        es))
                decision.Prb_core.Resolver.victims);
          let ids =
            List.map
              (fun p ->
                let id = Scheduler.submit sched p in
                Fmt.pr "submitted T%d = %s@." id p.Prb_txn.Program.name;
                id)
              programs
          in
          ignore ids;
          Scheduler.run sched;
          Fmt.pr "@[<v>--- finished ---@,%a@]@." Scheduler.pp_stats
            (Scheduler.stats sched);
          Fmt.pr "final state:@.";
          List.iter
            (fun (e, v) -> Fmt.pr "  %s = %a@." e Prb_storage.Value.pp v)
            (Prb_storage.Store.snapshot store);
          Fmt.pr "serializable: %b@."
            (Prb_history.History.serializable (Scheduler.history sched));
          if Scheduler.all_committed sched then 0 else 1)

let run_cmd =
  let doc = "execute a file of transactions and watch deadlock removal" in
  Cmd.v
    (Cmd.info "run" ~doc)
    Term.(
      const run_file $ verbose_arg $ strategy_arg $ policy_arg $ seed_arg
      $ max_ticks_arg $ initial_value_arg $ file_arg)

(* --- prb analyze: structure analysis of transactions ------------------ *)

let dot_arg =
  Arg.(
    value & flag
    & info [ "dot" ]
        ~doc:"Also print each transaction's state-dependency graph as DOT.")

let analyze_file dot path =
  match Prb_txn.Parser.parse_many (read_file path) with
  | Error e ->
      Fmt.epr "%s: %a@." path Prb_txn.Parser.pp_error e;
      1
  | Ok programs ->
      let table =
        Table.create ~title:"single-copy (SDG) rollback friendliness"
          [
            ("transaction", Table.Left);
            ("locks", Table.Right);
            ("damage span", Table.Right);
            ("well-defined", Table.Left);
            ("three-phase", Table.Left);
            ("after restructuring", Table.Left);
          ]
      in
      List.iter
        (fun p ->
          let module P = Prb_txn.Program in
          let module S = Prb_rollback.Sdg_view in
          let wd q =
            Printf.sprintf "%d/%d"
              (List.length (S.well_defined_states q))
              (P.n_locks q + 1)
          in
          let restructured = P.make_acquire_update_release (P.cluster_writes p) in
          Table.add_row table
            [
              p.P.name;
              Table.cell_int (P.n_locks p);
              Table.cell_int (P.damage_span p);
              wd p;
              string_of_bool (P.is_three_phase p);
              Printf.sprintf "%s well-defined, three-phase %b" (wd restructured)
                (P.is_three_phase restructured);
            ])
        programs;
      Table.print table;
      if dot then
        List.iter
          (fun p ->
            Fmt.pr "// %s@.%s@." p.Prb_txn.Program.name
              (Prb_rollback.Sdg_view.to_dot p))
          programs;
      0

let analyze_cmd =
  let doc = "analyse transaction structure for rollback friendliness" in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze_file $ dot_arg $ file_arg)

(* --- prb chaos: fault-injection sweep --------------------------------- *)

let chaos_seeds_arg =
  Arg.(
    value & opt int 20
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Fault-plan seeds to sweep (each runs both engines).")

let chaos_horizon_arg =
  Arg.(
    value & opt int 400
    & info [ "horizon" ] ~docv:"TICKS"
        ~doc:"Tick after which every plan stops injecting faults.")

let chaos_verbose_arg =
  Arg.(
    value & flag
    & info [ "verbose"; "v" ] ~doc:"Print every report, not just failures.")

let chaos_matrix_arg =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:
          "Also run the detection-policy liveness matrix: every policy \
           (eager, periodic, lazy, adaptive) on both engines, under a \
           clean plan and a detector-outage plan, with the starvation \
           guard armed — checking the usual invariants plus the \
           no-starvation bound.")

let run_chaos seeds horizon verbose matrix =
  let module Chaos = Prb_chaos.Chaos in
  let reports =
    Chaos.sweep ~horizon ~seeds ()
    @ (if matrix then Chaos.policy_matrix ~seeds () else [])
  in
  if verbose then
    List.iter (fun r -> Fmt.pr "%a@.@." Chaos.pp_report r) reports;
  let bad = Chaos.failures reports in
  List.iter (fun r -> Fmt.pr "FAIL %a@.@." Chaos.pp_report r) bad;
  Fmt.pr "chaos: %d/%d runs clean@."
    (List.length reports - List.length bad)
    (List.length reports);
  if bad = [] then 0 else 1

let chaos_cmd =
  let doc = "sweep randomized fault plans and check recovery invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs a conserved-sum transfer workload through both engines under \
         randomized fault plans (site crashes, message loss/duplication/\
         delay, detector outages, transaction crashes) and checks, after \
         every run: serializability, balance conservation, an empty lock \
         table, full commitment, and bit-for-bit replay determinism.";
    ]
  in
  Cmd.v
    (Cmd.info "chaos" ~doc ~man)
    Term.(
      const run_chaos $ chaos_seeds_arg $ chaos_horizon_arg
      $ chaos_verbose_arg $ chaos_matrix_arg)

(* --- prb bench: the E13 scaling sweep --------------------------------- *)

let bench_quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Scale the sweep down (100/500 txns instead of \
                             100/1k/5k).")

let bench_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Also write the sweep as machine-readable JSON to $(docv) \
           (conventionally $(b,BENCH_scale.json) at the repo root, the \
           file the CI perf gate uploads).")

let bench_compare_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "compare" ] ~docv:"BASELINE"
        ~doc:
          "Compare the sweep against the points in $(docv) (a file \
           previously written with $(b,--json)) and fail when throughput \
           regressed beyond the tolerance at any matching point.")

let bench_tolerance_arg =
  Arg.(
    value & opt float 0.2
    & info [ "tolerance" ] ~docv:"FRACTION"
        ~doc:
          "Allowed $(b,commits_per_sec) drop relative to the baseline \
           before $(b,--compare) fails (default 0.2 = 20%).")

let bench_policies_arg =
  Arg.(
    value & flag
    & info [ "policies" ]
        ~doc:
          "Also run the E14 detection-policy sweep (policy × contention × \
           detector outage on the centralised engine) and report each \
           policy's wall-time speedup over eager detection at equal \
           commits.")

let bench_gate_speedup_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "gate-speedup" ] ~docv:"X"
        ~doc:
          "With $(b,--policies): fail unless some deferred policy cuts \
           central high-contention wall time by at least a factor of \
           $(docv) (at equal commits, outage-free).")

let run_bench quick json compare tolerance policies gate_speedup =
  let module Scale = Prb_bench_scale.Scale in
  (* Read the baseline before --json possibly overwrites the same path. *)
  let baseline =
    match compare with
    | None -> None
    | Some path -> (
        try Some (Scale.load ~path) with
        | Sys_error msg ->
            Fmt.epr "bench: cannot read baseline: %s@." msg;
            exit 1
        | Scale.Parse_error msg ->
            Fmt.epr "bench: malformed baseline %s: %s@." path msg;
            exit 1)
  in
  let points = Scale.sweep ~quick () in
  Scale.print_table points;
  let policy_points =
    if policies then begin
      let pts = Scale.sweep_policies ~quick () in
      Scale.print_policy_table pts;
      (match Scale.best_central_speedup pts with
      | Some (policy, s) ->
          Fmt.pr
            "policy gate: best high-contention speedup over eager: %.2fx \
             (%s)@."
            s policy
      | None ->
          Fmt.pr
            "policy gate: no deferred policy matched eager's commits at high \
             contention@.");
      pts
    end
    else []
  in
  (match json with
  | Some path ->
      Scale.write_json ~path ~quick ~policies:policy_points points;
      Fmt.pr "wrote %s (%d points)@." path
        (List.length points + List.length policy_points)
  | None -> ());
  let policy_gate_failed =
    match gate_speedup with
    | None -> false
    | Some want -> (
        if not policies then begin
          Fmt.epr "bench: --gate-speedup requires --policies@.";
          true
        end
        else
          match Scale.best_central_speedup policy_points with
          | Some (policy, s) when s >= want ->
              Fmt.pr "policy gate: PASS %.2fx >= %.2fx (%s)@." s want policy;
              false
          | Some (policy, s) ->
              Fmt.epr "policy gate: FAIL best speedup %.2fx (%s) < %.2fx@." s
                policy want;
              true
          | None ->
              Fmt.epr
                "policy gate: FAIL no deferred policy matched eager's \
                 commits@.";
              true)
  in
  let compare_failed =
    match baseline with
    | None -> false
    | Some baseline -> (
        let failures, compared =
          Scale.compare_against ~tolerance ~baseline points
        in
        match failures with
        | [] ->
            Fmt.pr "perf gate: %d point(s) within %.0f%% of baseline@."
              compared (100.0 *. tolerance);
            false
        | _ ->
            List.iter
              (fun f -> Fmt.epr "perf gate: REGRESSION %s@." f)
              failures;
            Fmt.epr "perf gate: %d of %d compared point(s) regressed@."
              (List.length failures) compared;
            true)
  in
  if policy_gate_failed || compare_failed then 1 else 0

let bench_cmd =
  let doc = "run the E13 scaling benchmark (throughput on both engines)" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Sweeps transaction count × contention on the centralised and \
         multi-site engines and reports wall-clock throughput, the share \
         of time spent in deadlock detection, and allocation volume. With \
         $(b,--json) the results also land in a JSON file so successive \
         changes accumulate a comparable perf trajectory; $(b,--compare) \
         turns a previous file into a regression gate.";
    ]
  in
  Cmd.v
    (Cmd.info "bench" ~doc ~man)
    Term.(
      const run_bench $ bench_quick_arg $ bench_json_arg $ bench_compare_arg
      $ bench_tolerance_arg $ bench_policies_arg $ bench_gate_speedup_arg)

(* --- prb lint: determinism & protocol-invariant static analysis ------- *)

let lint_paths_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint. Defaults to $(b,lib) and $(b,bin) \
           of the enclosing dune project (found by walking up from the \
           current directory).")

let lint_rules_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "rules" ] ~docv:"IDS"
        ~doc:
          "Comma-separated rule ids to enable (e.g. $(b,D1,D3)). Default: \
           all rules.")

let lint_json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit findings as a JSON report object (sorted by file, line, \
           rule id; carries $(b,schema_version)).")

let lint_deep_arg =
  Arg.(
    value & flag
    & info [ "deep" ]
        ~doc:
          "Also run the typed deep pass (rules A1/P1/H1). Directory \
           arguments are analyzed through the .cmt files of the \
           enclosing dune build ($(b,_build/default/lib)) — run \
           $(b,dune build) first; dune emits the needed bin-annot \
           output by default. Explicit $(b,.ml) file arguments are \
           typechecked against the stdlib and analyzed directly.")

let default_lint_paths () =
  (* walk up to the dune-project root so [prb lint] works from anywhere
     inside the repo *)
  let rec root dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else root parent
  in
  match root (Sys.getcwd ()) with
  | Some dir ->
      [
        Filename.concat dir "lib";
        Filename.concat dir "bin";
        Filename.concat dir "bench";
      ]
      |> List.filter Sys.file_exists
  | None -> []

let run_lint paths rules json deep =
  let module Lint = Prb_lint.Lint in
  let rules =
    match rules with
    | None -> None
    | Some spec ->
        let ids =
          String.split_on_char ',' spec
          |> List.concat_map (String.split_on_char ' ')
          |> List.filter (fun s -> not (String.equal s ""))
        in
        let parsed =
          List.map
            (fun id ->
              match Lint.rule_of_id id with
              | Some r -> r
              | None ->
                  Fmt.epr "prb lint: unknown rule id %S@." id;
                  exit 2)
            ids
        in
        Some parsed
  in
  let paths =
    match paths with
    | [] -> (
        match default_lint_paths () with
        | [] ->
            Fmt.epr
              "prb lint: no PATH given and no dune-project found above the \
               current directory@.";
            exit 2
        | ps -> ps)
    | ps -> ps
  in
  let violations, errors = Lint.scan ?rules paths in
  let deep_violations, deep_errors =
    if deep then begin
      (* explicit .ml file arguments get the typed pass directly; any
         directory argument triggers the repo-wide pass over the built
         tree's .cmt files *)
      let file_violations, file_errors =
        List.fold_left
          (fun (vs, es) p ->
            if Sys.file_exists p && not (Sys.is_directory p) then
              match Prb_lint.Lint_deep.check_file p with
              | Ok v -> (v @ vs, es)
              | Error e -> (vs, (p, e) :: es)
            else (vs, es))
          ([], []) paths
      in
      let tree_violations, tree_errors =
        if List.exists (fun p -> Sys.is_directory p) paths then
          Prb_lint.Lint_deep.scan_build ()
        else ([], [])
      in
      (file_violations @ tree_violations, file_errors @ tree_errors)
    end
    else ([], [])
  in
  let deep_violations =
    match rules with
    | None -> deep_violations
    | Some rs ->
        List.filter (fun v -> List.mem v.Lint.rule rs) deep_violations
  in
  let violations =
    List.sort Lint.compare_violation (violations @ deep_violations)
  in
  let errors = errors @ deep_errors in
  if json then Fmt.pr "%s@." (Lint.report_json violations)
  else List.iter (fun v -> Fmt.pr "%a@." Lint.pp_violation v) violations;
  List.iter (fun (f, e) -> Fmt.epr "prb lint: error in %s:@.%s@." f e) errors;
  if errors <> [] then 2 else if violations <> [] then 1 else 0

let lint_cmd =
  let doc = "statically check determinism and protocol invariants" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Parses every OCaml module under the given paths (no type \
         information needed) and enforces the repository's replay-\
         determinism discipline as named rules: D1 (no hash-order Hashtbl \
         traversal in replay-critical libraries), D2 (no polymorphic \
         compare where an id module owns the order), D3 (no ambient \
         randomness or wall clock), L1 (core/lock must not depend on the \
         simulation stack), L2 (no catch-all match arm on the distributed \
         protocol message type), L3 (production code must not reference a \
         *_ref differential-test oracle).";
      `P
        "With $(b,--deep), additionally loads the typed trees (.cmt) of \
         the enclosing dune build and checks A1 (functions marked \
         [\\@hot] are transitively allocation-free), P1 (static \
         two-phase locking: no lock acquire after a release of the same \
         transaction, except through the rollback layer) and H1 \
         (Dense.Slots handles stay confined to their arena owner; \
         unsafe_* access stays in lib/util).";
      `P
        "Violations print as $(b,file:line:col: rule-id message). Suppress \
         a finding with $(b,[\\@lint.allow \"D1\"]) on the expression, \
         $(b,[\\@\\@lint.allow \"D1\"]) on the enclosing let-binding, or a \
         floating $(b,[\\@\\@\\@lint.allow \"D1 D2\"]) for the rest of the \
         file. Deep rules (A1/P1/H1) additionally require a rationale: \
         $(b,[\\@lint.allow \"A1: why this site is exempt\"]).";
      `P "Exits 0 when clean, 1 on violations, 2 on parse/usage errors.";
    ]
  in
  Cmd.v
    (Cmd.info "lint" ~doc ~man)
    Term.(
      const run_lint $ lint_paths_arg $ lint_rules_arg $ lint_json_arg
      $ lint_deep_arg)

(* --- main ------------------------------------------------------------- *)

let () =
  let doc = "deadlock removal using partial rollback (SIGMOD 1981)" in
  let info = Cmd.info "prb" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            sim_cmd;
            sweep_cmd;
            distrib_cmd;
            run_cmd;
            analyze_cmd;
            chaos_cmd;
            bench_cmd;
            lint_cmd;
          ]))
