type t =
  | Eager
  | Periodic of int
  | Lazy_on_timeout of { blocked_ticks : int; backoff : int }
  | Adaptive

let adaptive_min = 8
let adaptive_max = 512
let adaptive_start = 64

let equal a b =
  match (a, b) with
  | Eager, Eager | Adaptive, Adaptive -> true
  | Periodic m, Periodic n -> m = n
  | ( Lazy_on_timeout { blocked_ticks = b1; backoff = k1 },
      Lazy_on_timeout { blocked_ticks = b2; backoff = k2 } ) ->
      b1 = b2 && k1 = k2
  | (Eager | Periodic _ | Lazy_on_timeout _ | Adaptive), _ -> false

let to_string = function
  | Eager -> "eager"
  | Periodic n -> Printf.sprintf "periodic:%d" n
  | Lazy_on_timeout { blocked_ticks; backoff } ->
      Printf.sprintf "lazy:%d:%d" blocked_ticks backoff
  | Adaptive -> "adaptive"

let of_string s =
  match s with
  | "eager" -> Some Eager
  | "adaptive" -> Some Adaptive
  | _ -> (
      match String.split_on_char ':' s with
      | [ "periodic"; n ] -> (
          match int_of_string_opt n with
          | Some n when n > 0 -> Some (Periodic n)
          | Some _ | None -> None)
      | [ "lazy"; b ] -> (
          match int_of_string_opt b with
          | Some b when b > 0 ->
              Some (Lazy_on_timeout { blocked_ticks = b; backoff = 4 })
          | Some _ | None -> None)
      | [ "lazy"; b; k ] -> (
          match (int_of_string_opt b, int_of_string_opt k) with
          | Some b, Some k when b > 0 && k >= 0 && k <= 20 ->
              Some (Lazy_on_timeout { blocked_ticks = b; backoff = k })
          | _ -> None)
      | _ -> None)

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_eager = function
  | Eager -> true
  | Periodic _ | Lazy_on_timeout _ | Adaptive -> false

(* The watchdog bound: the longest a transaction may sit blocked with no
   detection pass having run since it blocked, before the engine forces a
   full sweep. Derived so that a healthy detector always beats it — the
   watchdog only fires when passes were lost (detector outage, arbitrarily
   backed-off lazy probes), never in steady state. *)
let stall_bound = function
  | Eager -> 0 (* detection is inline in the request path; never stalls *)
  | Periodic n -> 4 * n
  | Lazy_on_timeout { blocked_ticks; backoff } ->
      2 * blocked_ticks * (1 lsl min backoff 20)
  | Adaptive -> 4 * adaptive_max

let initial_interval = function
  | Eager -> 0
  | Periodic n -> n
  | Lazy_on_timeout { blocked_ticks; _ } -> blocked_ticks
  | Adaptive -> adaptive_start

let all_deferred =
  [
    Periodic 32;
    Lazy_on_timeout { blocked_ticks = 24; backoff = 4 };
    Adaptive;
  ]

let all = Eager :: all_deferred
