module Cutset = Prb_graph.Cutset
module Rng = Prb_util.Rng
module Txn_id = Prb_txn.Txn_id
module Entity = Prb_storage.Store.Entity

type txn = Txn_id.t
type entity = Prb_storage.Store.entity
type cycle = (txn * entity) list

type decision = {
  victims : (txn * entity list) list;
  optimal : bool;
  starved_fallback : bool;
}

(* Entities transaction [v] must release, over the given cycles. *)
let needed_entities cycles v =
  List.concat_map
    (fun cycle ->
      List.filter_map
        (fun (m, e) -> if Txn_id.equal m v then Some e else None)
        cycle)
    cycles
  |> List.sort_uniq Entity.compare

let decision_of cycles ~optimal ~immune chosen =
  {
    victims =
      (* victims are pairwise-distinct transactions *)
      List.map (fun v -> (v, needed_entities cycles v)) chosen
      |> List.sort (fun (a, _) (b, _) -> Txn_id.compare a b);
    optimal;
    (* the starvation guard had to be overridden: some cycle offered no
       non-immune victim, so an immune transaction is rolled back anyway
       (deadlocks must break; immunity bends before liveness does) *)
    starved_fallback = List.exists immune chosen;
  }

(* Iteratively break surviving cycles, picking a member of the first
   surviving cycle by [pick]. *)
let iterative_pick cycles pick =
  let rec loop chosen =
    let surviving =
      List.filter
        (fun cycle ->
          not
            (List.exists
               (fun (m, _) -> List.exists (Txn_id.equal m) chosen)
               cycle))
        cycles
    in
    match surviving with
    | [] -> List.rev chosen
    | cycle :: _ -> loop (pick cycle :: chosen)
  in
  loop []

let min_cost_cut ~requester cycles ~release_cost ~eligible ~immune =
  (* Hitting set over cycles restricted to eligible members. Starvation-
     immune members are dropped first; a cycle with only immune eligible
     members keeps them (immunity bends before liveness — the caller reads
     [starved_fallback] off the decision). A cycle with no eligible member
     at all falls back to the requester (which is on every cycle), so a
     cut always exists. *)
  let restricted =
    List.map
      (fun cycle ->
        match
          List.filter (fun (m, _) -> eligible m && not (immune m)) cycle
        with
        | _ :: _ as kept -> kept
        | [] -> (
            match List.filter (fun (m, _) -> eligible m) cycle with
            | [] ->
                List.filter (fun (m, _) -> Txn_id.equal m requester) cycle
            | kept -> kept))
      cycles
  in
  let instance =
    {
      Cutset.cycles = List.map (List.map fst) restricted;
      cost = (fun v -> float_of_int (release_cost v (needed_entities cycles v)));
    }
  in
  match Cutset.exact instance with
  | Some chosen -> (chosen, true)
  | None -> (Cutset.greedy instance, false)

let choose ?(immune = fun _ -> false) ~policy ~requester ~entry_order
    ~release_cost ~rng cycles =
  if cycles = [] then invalid_arg "Resolver.choose: no cycles";
  List.iter
    (fun cycle ->
      if not (List.exists (fun (m, _) -> Txn_id.equal m requester) cycle) then
        invalid_arg "Resolver.choose: requester missing from a cycle")
    cycles;
  (* The iterative policies pick among a cycle's non-immune members when
     any exist, else the whole cycle (same override rule as the cut). *)
  let pickable cycle =
    match List.filter (fun (m, _) -> not (immune m)) cycle with
    | [] -> cycle
    | kept -> kept
  in
  match policy with
  | Policy.Requester ->
      decision_of cycles ~optimal:false ~immune [ requester ]
  | Policy.Min_cost ->
      let chosen, optimal =
        min_cost_cut ~requester cycles ~release_cost
          ~eligible:(fun _ -> true)
          ~immune
      in
      decision_of cycles ~optimal ~immune chosen
  | Policy.Ordered_min_cost ->
      (* Theorem 2 with entry time as the partial order: a conflict may
         only preempt transactions that entered strictly later than the
         requester (so the oldest live transaction is never preempted and
         must eventually commit); a cycle whose members are all older
         falls back to rolling the requester itself. *)
      let eligible v = entry_order v > entry_order requester in
      let chosen, optimal =
        min_cost_cut ~requester cycles ~release_cost ~eligible ~immune
      in
      decision_of cycles ~optimal ~immune chosen
  | Policy.Youngest ->
      let pick cycle =
        let candidates = pickable cycle in
        let seed =
          if List.exists (fun (m, _) -> Txn_id.equal m requester) candidates
          then (requester, entry_order requester)
          else
            match candidates with
            | (m, _) :: _ -> (m, entry_order m)
            | [] -> (requester, entry_order requester)
        in
        fst
          (List.fold_left
             (fun ((_, best) as acc) (m, e) ->
               if entry_order m > best then (m, entry_order m)
               else (ignore e; acc))
             seed candidates)
      in
      decision_of cycles ~optimal:false ~immune (iterative_pick cycles pick)
  | Policy.Random_victim ->
      let pick cycle = fst (Rng.pick rng (Array.of_list (pickable cycle))) in
      decision_of cycles ~optimal:false ~immune (iterative_pick cycles pick)
