module Cutset = Prb_graph.Cutset
module Rng = Prb_util.Rng
module Txn_id = Prb_txn.Txn_id
module Entity = Prb_storage.Store.Entity

type txn = Txn_id.t
type entity = Prb_storage.Store.entity
type cycle = (txn * entity) list

type decision = {
  victims : (txn * entity list) list;
  optimal : bool;
  starved_fallback : bool;
}

(* One pass over the cycles builds the per-member released-entity table
   that both the cost function and the final decision read; entities are
   sorted and deduped once per member, not once per query. The cost
   function is consulted once per candidate per resolution (the cut
   solver memoises it), so with up to [cycle_limit] cycles of up to MPL
   members this table is what keeps victim selection linear in the cycle
   input instead of quadratic. The per-member entity set is exactly what
   [concat_map] + [sort_uniq] over the cycle list produced, so decisions
   are unchanged. *)
let rec member_slot_ (a : int array) v lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if a.(mid) < v then member_slot_ a v (mid + 1) hi
    else member_slot_ a v lo mid

let needed_table cycles =
  (* The distinct members of a resolution's cycles are the blocked
     transactions of one strongly connected component — bounded by the
     multiprogramming level even when the cycle list runs to the
     enumeration limit — so a sorted array with binary search beats
     hashing the member id once per (member, entity) pair of a long
     cycle stream. *)
  let members = ref (Array.make 16 0) in
  let raw : entity list array ref = ref (Array.make 16 []) in
  let n = ref 0 in
  List.iter
    (fun cycle ->
      List.iter
        (fun ((m : int), e) ->
          let p = member_slot_ !members m 0 !n in
          if p < !n && !members.(p) = m then !raw.(p) <- e :: !raw.(p)
          else begin
            if !n = Array.length !members then begin
              let nm = Array.make (2 * !n) 0 and nr = Array.make (2 * !n) [] in
              Array.blit !members 0 nm 0 !n;
              Array.blit !raw 0 nr 0 !n;
              members := nm;
              raw := nr
            end;
            Array.blit !members p !members (p + 1) (!n - p);
            Array.blit !raw p !raw (p + 1) (!n - p);
            !members.(p) <- m;
            !raw.(p) <- [ e ];
            incr n
          end)
        cycle)
    cycles;
  let members = !members and raw = !raw and n = !n in
  let memo : entity list option array = Array.make (max 1 n) None in
  fun v ->
    let p = member_slot_ members v 0 n in
    if p < n && members.(p) = v then
      match memo.(p) with
      | Some es -> es
      | None ->
          let es = List.sort_uniq Entity.compare raw.(p) in
          memo.(p) <- Some es;
          es
    else []

let decision_of ~needed ~optimal ~immune chosen =
  {
    victims =
      (* victims are pairwise-distinct transactions *)
      List.map (fun v -> (v, needed v)) chosen
      |> List.sort (fun (a, _) (b, _) -> Txn_id.compare a b);
    optimal;
    (* the starvation guard had to be overridden: some cycle offered no
       non-immune victim, so an immune transaction is rolled back anyway
       (deadlocks must break; immunity bends before liveness does) *)
    starved_fallback = List.exists immune chosen;
  }

(* Iteratively break surviving cycles, picking a member of the first
   surviving cycle by [pick]. *)
let iterative_pick cycles pick =
  let rec loop chosen =
    let surviving =
      List.filter
        (fun cycle ->
          not
            (List.exists
               (fun (m, _) -> List.exists (Txn_id.equal m) chosen)
               cycle))
        cycles
    in
    match surviving with
    | [] -> List.rev chosen
    | cycle :: _ -> loop (pick cycle :: chosen)
  in
  loop []

let min_cost_cut ~requester cycles ~needed ~release_cost ~eligible ~immune =
  (* Hitting set over cycles restricted to eligible members. Starvation-
     immune members are dropped first; a cycle with only immune eligible
     members keeps them (immunity bends before liveness — the caller reads
     [starved_fallback] off the decision). A cycle with no eligible member
     at all falls back to the requester (which is on every cycle), so a
     cut always exists. *)
  let restricted =
    List.map
      (fun cycle ->
        match
          List.filter_map
            (fun (m, _) ->
              if eligible m && not (immune m) then Some m else None)
            cycle
        with
        | _ :: _ as kept -> kept
        | [] -> (
            match
              List.filter_map
                (fun (m, _) -> if eligible m then Some m else None)
                cycle
            with
            | [] ->
                List.filter_map
                  (fun (m, _) ->
                    if Txn_id.equal m requester then Some m else None)
                  cycle
            | kept -> kept))
      cycles
  in
  let instance =
    {
      Cutset.cycles = restricted;
      cost = (fun v -> float_of_int (release_cost v (needed v)));
    }
  in
  match Cutset.exact instance with
  | Some chosen -> (chosen, true)
  | None -> (Cutset.greedy instance, false)

let choose ?(immune = fun _ -> false) ~policy ~requester ~entry_order
    ~release_cost ~rng cycles =
  if cycles = [] then invalid_arg "Resolver.choose: no cycles";
  List.iter
    (fun cycle ->
      if not (List.exists (fun (m, _) -> Txn_id.equal m requester) cycle) then
        invalid_arg "Resolver.choose: requester missing from a cycle")
    cycles;
  let needed = needed_table cycles in
  (* The iterative policies pick among a cycle's non-immune members when
     any exist, else the whole cycle (same override rule as the cut). *)
  let pickable cycle =
    match List.filter (fun (m, _) -> not (immune m)) cycle with
    | [] -> cycle
    | kept -> kept
  in
  match policy with
  | Policy.Requester ->
      decision_of ~needed ~optimal:false ~immune [ requester ]
  | Policy.Min_cost ->
      let chosen, optimal =
        min_cost_cut ~requester cycles ~needed ~release_cost
          ~eligible:(fun _ -> true)
          ~immune
      in
      decision_of ~needed ~optimal ~immune chosen
  | Policy.Ordered_min_cost ->
      (* Theorem 2 with entry time as the partial order: a conflict may
         only preempt transactions that entered strictly later than the
         requester (so the oldest live transaction is never preempted and
         must eventually commit); a cycle whose members are all older
         falls back to rolling the requester itself. *)
      let requester_order = entry_order requester in
      let eligible v = entry_order v > requester_order in
      let chosen, optimal =
        min_cost_cut ~requester cycles ~needed ~release_cost ~eligible ~immune
      in
      decision_of ~needed ~optimal ~immune chosen
  | Policy.Youngest ->
      let pick cycle =
        let candidates = pickable cycle in
        let seed =
          if List.exists (fun (m, _) -> Txn_id.equal m requester) candidates
          then (requester, entry_order requester)
          else
            match candidates with
            | (m, _) :: _ -> (m, entry_order m)
            | [] -> (requester, entry_order requester)
        in
        fst
          (List.fold_left
             (fun ((_, best) as acc) (m, e) ->
               if entry_order m > best then (m, entry_order m)
               else (ignore e; acc))
             seed candidates)
      in
      decision_of ~needed ~optimal:false ~immune (iterative_pick cycles pick)
  | Policy.Random_victim ->
      let pick cycle = fst (Rng.pick rng (Array.of_list (pickable cycle))) in
      decision_of ~needed ~optimal:false ~immune (iterative_pick cycles pick)
