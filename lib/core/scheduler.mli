(** The database concurrency control: a deterministic discrete-event
    scheduler executing transaction programs under two-phase locking with
    deadlock detection and partial-rollback removal.

    Each runnable transaction executes one operation per tick, round-robin
    through an event queue with deterministic tie-breaking; blocked
    transactions consume no ticks and wake when granted. A lock request
    that would close a cycle in the waits-for graph triggers resolution:
    cycles through the requester are enumerated, the {!Policy} picks
    victims via {!Resolver}, and each victim rolls back per its
    {!Prb_rollback.Strategy} — far enough to release the contested
    entities, and no further than that strategy can restore.

    Given the same store, programs, configuration and seed, every run is
    bit-for-bit identical. *)

type t

(** How the system deals with deadlocks — the paper's
    detect-and-partially-roll-back, or the classic alternatives it is
    positioned against. *)
type intervention =
  | Detect
      (** detect at request time, choose victims by {!Policy}, remove by
          partial rollback — the paper's scheme *)
  | Timeout_abort of int
      (** no detection at all: a transaction blocked for the given number
          of ticks restarts itself — the crude baseline of early systems;
          deadlocks persist until a timer fires and the victim loses
          everything *)
  | Wound_wait_c
      (** timestamp prevention: an older requester wounds younger
          blockers, which partially roll back just far enough to release
          the entity; a younger requester waits. No cycle can form. *)
  | Wait_die_c
      (** timestamp prevention: an older requester waits; a younger one
          "dies" (restarts, keeping its timestamp). No cycle can form. *)

type config = {
  strategy : Prb_rollback.Strategy.t;
  policy : Policy.t;
  intervention : intervention;
  detection : Detection_policy.t;
      (** when to run deadlock detection under [Detect]: [Eager]
          (default — at every blocked request, byte-identical to the
          pre-policy engine) or one of the deferred policies, which keep
          the request path detection-free and run scheduled sweeps or
          targeted probes instead (DESIGN.md Section 11). Deferred
          policies are guarded by a stall watchdog: a transaction blocked
          longer than {!Detection_policy.stall_bound} with no sweep since
          it blocked forces one. Ignored by the non-[Detect]
          interventions, which do not detect at all *)
  starvation_limit : int option;
      (** the starvation guard: [Some k] makes a transaction rolled back
          [k] times immune to victim selection (the resolver picks it only
          when some cycle offers nobody else, reported as
          [starvation_fallbacks]); [None] (default) disables the guard *)
  seed : int;  (** drives only the [Random_victim] policy *)
  max_ticks : int;  (** hard stop against livelock (paper Figure 2) *)
  cycle_limit : int;  (** bound on cycle enumeration per deadlock *)
  restart_delay : int;
      (** extra ticks before a rollback victim resumes; 0 reproduces the
          paper's model faithfully, small values break the lock-step
          re-collision pattern deterministic execution invites *)
  fair_locking : bool;
      (** [true] (default): queue-respecting grants — required for
          liveness with shared locks (see {!Prb_lock.Lock_table});
          [false]: the paper's availability rule, identical on
          exclusive-only workloads *)
  faults : Prb_fault.Fault.plan option;
      (** transaction crashes and detector outages (the centralised
          engine has no sites or messages): each scheduled crash picks a
          live growing transaction, rolls it back to state 0 and
          re-admits it after a delay that doubles with repeated crashes
          of the same transaction (DESIGN.md Section 7). Detector outages
          suppress the deferred policies' scheduled sweeps and probes
          (counted as [missed_passes]) and the watchdog re-arms for the
          first healthy tick, so recovery sweeps promptly; [Eager]
          detection is inline in the request path — not a detector
          service — and is unaffected *)
  clock : (unit -> float) option;
      (** when set (e.g. to [Unix.gettimeofday]), wall-clock seconds spent
          in deadlock detection are accumulated and reported by
          {!check_seconds} and {!enumerate_seconds}; [None] (default)
          keeps the request path free of clock calls. Never affects
          scheduling decisions, so runs stay bit-for-bit deterministic
          either way *)
}

val default_config : config
(** [Sdg] strategy, [Detect] intervention, [Eager] detection (no
    starvation limit), [Ordered_min_cost] policy, seed 1, 1_000_000
    ticks, 256 cycles, restart delay 0, fair locking, no faults. *)

val create : ?config:config -> Prb_storage.Store.t -> t

val config : t -> config
val store : t -> Prb_storage.Store.t

val submit :
  ?copy_allocation:(string -> int) -> t -> Prb_txn.Program.t -> int

(** Admit a transaction; returns its id. Ids increase with admission
    order, which is the entry order used by [Ordered_min_cost] and
    [Youngest]. [copy_allocation] grants per-object extra retained
    versions (see {!Prb_rollback.Txn_state.create} and
    {!Prb_rollback.Allocation}). @raise Invalid_argument on an invalid
    program. *)

val submit_at :
  ?copy_allocation:(string -> int) -> t -> at:int -> Prb_txn.Program.t -> int
(** Admit a transaction that arrives at a future tick (clamped to now):
    its first event fires then and its {!latency} clock starts then. Used
    by open-system (arrival process) simulations. Calls must be made in
    nondecreasing arrival order for ids to remain the entry order. *)

val step : t -> bool
(** Process one event; [false] when no work remains (all submitted
    transactions committed) or [max_ticks] was reached. *)

val run : t -> unit
(** Step until done. *)

val now : t -> int

val txn_state : t -> int -> Prb_rollback.Txn_state.t
(** @raise Not_found for unknown ids. *)

val all_txns : t -> int list
(** Submitted ids, ascending. *)

val n_committed : t -> int
val all_committed : t -> bool

val waits_for : t -> Prb_wfg.Waits_for.t
(** Live view — do not mutate. *)

val lock_table : t -> Prb_lock.Lock_table.t
(** Live view — do not mutate. *)

val history : t -> Prb_history.History.t

val check_seconds : t -> float
(** Wall-clock seconds spent inside the boolean deadlock checks — the
    [would_deadlock] probe of a blocked request and the cycle-membership
    census seeding each resolution round — when {!config}[.clock] is set;
    [0.] otherwise. The benchmark harness reports this (with
    {!enumerate_seconds}) as the detection-time share; victim selection
    and rollback application are deliberately excluded. *)

val check_calls : t -> int
(** Boolean deadlock checks actually run: [would_deadlock] probes under
    [Eager] plus the census pass seeding each fixpoint round of sweeps
    and probes. *)

val enumerate_seconds : t -> float
(** Wall-clock seconds spent enumerating the cycles a detected deadlock
    hands to the resolver, when {!config}[.clock] is set; [0.]
    otherwise. *)

val enumerate_calls : t -> int
(** Cycle enumerations run (one per resolution attempt that got past the
    boolean check). *)

val n_blocked_tracked : t -> int
(** Size of the internal blocked-since table (every currently-blocked
    transaction, whatever the intervention) — exposed so tests can assert
    it does not leak across commits. *)

(** Aggregate statistics over a (partial or finished) run. *)
type stats = {
  ticks : int;
  commits : int;
  deadlocks : int;  (** resolution rounds (>= 1 cycle each) *)
  cycles_broken : int;
  rollbacks : int;  (** victim rollbacks performed *)
  requeues : int;
      (** fair-queueing victims whose arc was broken by cancelling a
          pending request (no progress lost) *)
  ops_lost : int;  (** Σ progress destroyed by rollbacks *)
  overshoot_ops : int;
      (** the part of [ops_lost] beyond the minimal release point — 0
          under [Mcs], the whole prefix under [Total], the cost of
          non-well-defined states under [Sdg] *)
  ops_committed : int;  (** Σ program lengths of committed txns *)
  ops_executed : int;  (** Σ operations executed, re-execution included *)
  blocks : int;
  peak_copies : int;  (** max over transactions of peak local copies *)
  optimal_resolutions : int;  (** decisions from the exact cut solver *)
  timeouts : int;  (** [Timeout_abort] self-restarts *)
  preventions : int;  (** wounds ([Wound_wait_c]) or deaths ([Wait_die_c]) *)
  txn_crashes : int;  (** fault-plan transaction crashes that hit a victim *)
  detection_passes : int;
      (** scheduled sweeps and lazy probes run (0 under [Eager], whose
          checks count only in {!check_calls}) *)
  watchdog_fires : int;  (** full sweeps forced by the stall watchdog *)
  starvation_fallbacks : int;
      (** resolutions where a cycle offered no non-immune victim and the
          starvation guard was overridden *)
  missed_passes : int;  (** sweeps/probes suppressed by detector outages *)
  max_blocked_ticks : int;  (** longest completed blocking episode *)
  total_blocked_ticks : int;  (** Σ durations of completed episodes *)
  max_txn_rollbacks : int;
      (** rollbacks suffered by the worst-hit transaction — the quantity
          the starvation guard bounds by [starvation_limit] whenever
          [starvation_fallbacks] is 0 *)
}

val stats : t -> stats

val submit_tick : t -> int -> int option
(** Tick at which the transaction was admitted. *)

val commit_tick : t -> int -> int option
(** Tick at which it committed, once it has. *)

val latency : t -> int -> int option
(** [commit_tick - submit_tick]: the response time the paper's
    introduction worries about. *)

val set_deadlock_hook :
  t ->
  (requester:int -> cycles:Resolver.cycle list -> decision:Resolver.decision -> unit) ->
  unit
(** Observe every resolution round (tracing, preemption-chain metrics —
    e.g. Figure 2's mutual-preemption experiment). *)

val pp_stats : Format.formatter -> stats -> unit

exception Stuck of string
(** Raised when deadlock resolution fails to make progress (a bug guard,
    not an expected outcome). *)
