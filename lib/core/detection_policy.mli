(** When to look for deadlocks — the detection-scheduling axis that
    Section 3 of the paper leaves implicit (its scheduler detects at every
    blocked request) and that "On Optimal Deadlock Detection Scheduling"
    (Ling, Chen & Chiang) optimises explicitly.

    Eager detection is correct but taxes every blocked request with a
    reachability check; under high contention that check is 76–82% of
    engine wall time (experiment E13). The deferred policies below detect
    {e less often}, trading prompt resolution for a cheaper request path.
    Deferral admits {e multi-cycle} deadlocks (several cycles alive at
    once, not all through one requester), which is exactly the regime the
    paper's Section 3.2 minimum-cost vertex cut was built for — the
    scheduler routes deferred resolutions through {!Prb_graph.Cutset}.

    Every policy is made safe by two scheduler-level nets (DESIGN.md
    Section 11): a {e stall watchdog} — if any transaction has been
    blocked longer than {!stall_bound} with no detection pass since it
    blocked, a full sweep is forced, so the engine can be slow but never
    stuck — and a {e starvation guard} — a transaction rolled back at
    least [starvation_limit] times becomes immune to victim selection,
    bounding the repeated-victim livelock that Figure 2 otherwise only
    caps with [max_ticks]. *)

type t =
  | Eager
      (** detect at every blocked request — the paper's scheme and the
          historical default; byte-identical to the pre-policy engine *)
  | Periodic of int
      (** a full detection sweep every [n] ticks; blocked requests pay
          nothing *)
  | Lazy_on_timeout of { blocked_ticks : int; backoff : int }
      (** a blocked transaction arms a timer for [blocked_ticks]; expiry
          triggers a targeted probe of its reachable waits-for slice. A
          false alarm (no cycle) doubles that transaction's next timer, up
          to [2^backoff] times — transactions that merely wait long stop
          paying for probes *)
  | Adaptive
      (** a sweep cadence tuned online to the observed deadlock-arrival
          rate (after Ling et al.): a sweep that finds deadlocks halves
          the interval, two consecutive empty sweeps double it, clamped to
          [adaptive_min]..[adaptive_max] *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val of_string : string -> t option
(** Accepts [eager], [periodic:N], [lazy:B], [lazy:B:K], [adaptive]. *)

val is_eager : t -> bool

val stall_bound : t -> int
(** Watchdog bound in ticks: blocked longer than this with no detection
    pass since blocking forces a full sweep. 0 for [Eager] (inline
    detection cannot stall). *)

val initial_interval : t -> int
(** First scheduled pass/probe delay; 0 for [Eager]. *)

val adaptive_min : int
val adaptive_max : int
val adaptive_start : int

val all : t list
(** Representative instances of every policy, for sweeps and matrices. *)

val all_deferred : t list
(** [all] without [Eager]. *)
