(** Choosing which transactions to roll back, and how far, to break a
    deadlock.

    The input is the set of simple cycles the blocked request closed, each
    given as the list of members paired with the entity that member would
    have to release to delete its arc — the "state of highest index in
    which T_i does not hold a lock on an entity [in conflict]" framing of
    Section 3.1. Exclusive-only systems contribute exactly one cycle
    (Theorem 1); shared/exclusive systems contribute many, all through the
    requester (Section 3.2), making the optimum a minimum-cost vertex cut
    which we solve exactly when small and greedily otherwise.

    The resolver is pure: it never mutates the scheduler's state, which
    makes policies unit-testable against hand-built cycle sets (the
    figures). *)

type txn = int
type entity = Prb_storage.Store.entity

type cycle = (txn * entity) list
(** Members in cycle order; each paired with the entity whose release
    deletes that member's inbound arc. The requester appears in every
    cycle. *)

type decision = {
  victims : (txn * entity list) list;
      (** each victim with every entity it must release (the union over
          all cycles it was chosen to break), sorted by txn id *)
  optimal : bool;
      (** true when produced by the exact cut solver; false for greedy
          fallback and for the non-optimising policies *)
  starved_fallback : bool;
      (** true when the starvation guard had to be overridden: some cycle
          offered no non-immune victim, so an [immune] transaction was
          chosen anyway (a deadlock must break; immunity bends before
          liveness does) *)
}

val choose :
  ?immune:(txn -> bool) ->
  policy:Policy.t ->
  requester:txn ->
  entry_order:(txn -> int) ->
  release_cost:(txn -> entity list -> int) ->
  rng:Prb_util.Rng.t ->
  cycle list ->
  decision
(** @raise Invalid_argument on an empty cycle list or a cycle missing the
    requester. [release_cost v es] is the progress lost if [v] rolls back
    far enough to release all of [es].

    [immune] marks transactions the starvation guard shields from victim
    selection (rolled back too many times already). Every policy prefers
    non-immune members of each cycle; a cycle whose members are all immune
    falls back to them and the decision reports [starved_fallback].
    Defaults to no one, which leaves every policy's choice unchanged. *)
