module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Lock_mode = Prb_txn.Lock_mode
module Lock_table = Prb_lock.Lock_table
module Waits_for = Prb_wfg.Waits_for
module Strategy = Prb_rollback.Strategy
module Txn_state = Prb_rollback.Txn_state
module History = Prb_history.History
module History_stack = Prb_rollback.History_stack
module Pqueue = Prb_util.Dense.Pqueue
module Rng = Prb_util.Rng
module Util = Prb_util.Util
module Txn_id = Prb_txn.Txn_id
module Fault = Prb_fault.Fault

type intervention =
  | Detect
  | Timeout_abort of int
  | Wound_wait_c
  | Wait_die_c

type config = {
  strategy : Strategy.t;
  policy : Policy.t;
  intervention : intervention;
  detection : Detection_policy.t;
  starvation_limit : int option;
  seed : int;
  max_ticks : int;
  cycle_limit : int;
  restart_delay : int;
  fair_locking : bool;
  faults : Fault.plan option;
  clock : (unit -> float) option;
}

let default_config =
  {
    strategy = Strategy.Sdg;
    policy = Policy.Ordered_min_cost;
    intervention = Detect;
    detection = Detection_policy.Eager;
    starvation_limit = None;
    seed = 1;
    max_ticks = 1_000_000;
    cycle_limit = 256;
    restart_delay = 0;
    fair_locking = true;
    faults = None;
    clock = None;
  }

exception Stuck of string

(* Debug tracing: enable with Logs.Src.set_level (e.g. via the CLI's
   --verbose) to watch grants, blocks, deadlocks and rollbacks. *)
let src = Logs.Src.create "prb.scheduler" ~doc:"partial-rollback scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

(* Events live in a dense int-payload queue ({!Pqueue}): each entry is a
   (tag, a, b) triple, so the steady-state tick loop pushes and pops
   without allocating. The tags: *)

let ev_exec = 0 (* [a] = transaction id *)
let ev_timer = 1 (* a [Timeout_abort] timer; [a] = transaction id *)

let ev_crash_txn = 2
(* a scheduled transaction crash; [a] is the plan's victim selector
   (possibly negative), resolved against the live growing transactions
   when the crash fires *)

let ev_detect_tick = 3
(* a scheduled detection pass ([Periodic]/[Adaptive]); fires a full
   sweep and reschedules itself, so the queue never drains while
   transactions are deadlocked *)

let ev_probe = 4
(* a [Lazy_on_timeout] probe for a blocked transaction [a]; [b] is the
   tick at which the wait being probed began, so a probe armed for an
   abandoned wait dies silently (the next block arms a fresh one) *)

let ev_watchdog = 5
(* the stall watchdog: periodically checks for a transaction blocked
   past the policy's stall bound with no detection pass since it
   blocked, and forces a full sweep if one exists *)

type t = {
  cfg : config;
  store : Store.t;
  locks : Lock_table.t;
  wfg : Waits_for.t;
  mutable txns : Txn_state.t option array;
      (** indexed by transaction id; ids are dense ([0 .. next_id)), and a
          slot is [Some] from submission onward (committed transactions
          stay, carrying their accounting) *)
  events : Pqueue.t;
  hist : History.t;
  rng : Rng.t;
  pool : History_stack.Pool.t;
      (** recycles history-stack buffers across all transactions *)
  mutable next_id : int;
  mutable tick : int;
  mutable commits : int;
  mutable deadlocks : int;
  mutable cycles_broken : int;
  mutable rollback_events : int;
  mutable requeue_events : int;
  mutable overshoot_ops : int;
  mutable optimal_resolutions : int;
  mutable timeout_events : int;
  mutable prevention_events : int;
  mutable txn_crash_events : int;
  mutable crash_counts : int array;
      (** crashes suffered per transaction, driving re-admission backoff *)
  mutable wait_dirty : bool array;
      (** flags transactions whose waits-for out-edges were (re)installed
          since the graph was last known acyclic; every cycle passes
          through one of them, so deadlock resolution seeds its search
          here instead of rescanning all blocked transactions each round.
          [dirty_ids.(0 .. n_dirty)] lists the flagged ids (unsorted,
          duplicate-free). *)
  mutable dirty_ids : int array;
  mutable n_dirty : int;
  mutable check_seconds : float;
      (** wall time inside the boolean deadlock checks — [would_deadlock]
          probes and [on_cycle_from] census passes — when the config
          supplies a clock *)
  mutable check_calls : int;
  mutable enumerate_seconds : float;
      (** wall time inside cycle enumeration ([cycles_through], the
          resolver's input), when the config supplies a clock *)
  mutable enumerate_calls : int;
  mutable blocked_since : int array;
      (** tick at which each currently-blocked transaction blocked ([-1]
          when untracked); feeds [Timeout_abort] timers, lazy probes, the
          stall watchdog and the blocked-duration statistics *)
  mutable n_blocked : int;  (** entries of [blocked_since] that are set *)
  mutable lazy_false : int array;
      (** per-transaction count of consecutive false-alarm lazy probes in
          the current blocking episode, driving probe backoff *)
  mutable rollback_counts : int array;
      (** rollbacks suffered per transaction, driving the starvation
          guard's victim immunity *)
  mutable last_detect_tick : int;
      (** tick of the last full detection sweep (not targeted probes —
          a probe only proves one reachable slice acyclic, which the
          watchdog must not mistake for global coverage) *)
  mutable detect_interval : int;  (** current [Adaptive] sweep cadence *)
  mutable quiet_passes : int;  (** consecutive empty [Adaptive] sweeps *)
  mutable detection_passes : int;
  mutable watchdog_fires : int;
  mutable starvation_fallbacks : int;
  mutable missed_passes : int;
  mutable max_blocked_ticks : int;
  mutable total_blocked_ticks : int;
  mutable submit_ticks : int array;  (** [-1] when never submitted *)
  mutable commit_ticks : int array;  (** [-1] when uncommitted *)
  mutable ops_committed : int;
  mutable deadlock_hook :
    (requester:int -> cycles:Resolver.cycle list -> decision:Resolver.decision -> unit)
    option;
}

let initial_txn_cap = 64

let create ?(config = default_config) store =
  let t =
  {
    cfg = config;
    store;
    locks = Lock_table.create ~fair:config.fair_locking ();
    wfg = Waits_for.create ();
    txns = Array.make initial_txn_cap None;
    events = Pqueue.create ();
    hist = History.create ();
    rng = Rng.make config.seed;
    pool = History_stack.Pool.create ();
    next_id = 0;
    tick = 0;
    commits = 0;
    deadlocks = 0;
    cycles_broken = 0;
    rollback_events = 0;
    requeue_events = 0;
    overshoot_ops = 0;
    optimal_resolutions = 0;
    timeout_events = 0;
    prevention_events = 0;
    txn_crash_events = 0;
    crash_counts = Array.make initial_txn_cap 0;
    wait_dirty = Array.make initial_txn_cap false;
    dirty_ids = Array.make 16 0;
    n_dirty = 0;
    check_seconds = 0.0;
    check_calls = 0;
    enumerate_seconds = 0.0;
    enumerate_calls = 0;
    blocked_since = Array.make initial_txn_cap (-1);
    n_blocked = 0;
    lazy_false = Array.make initial_txn_cap 0;
    rollback_counts = Array.make initial_txn_cap 0;
    last_detect_tick = 0;
    detect_interval = Detection_policy.initial_interval config.detection;
    quiet_passes = 0;
    detection_passes = 0;
    watchdog_fires = 0;
    starvation_fallbacks = 0;
    missed_passes = 0;
    max_blocked_ticks = 0;
    total_blocked_ticks = 0;
    submit_ticks = Array.make initial_txn_cap (-1);
    commit_ticks = Array.make initial_txn_cap (-1);
    ops_committed = 0;
    deadlock_hook = None;
  }
  in
  (match config.faults with
  | Some p when not (Fault.is_none p) ->
      List.iter
        (fun (c : Fault.txn_crash) ->
          Pqueue.push t.events ~priority:(max 1 c.Fault.crash_at)
            ~tag:ev_crash_txn ~a:c.Fault.victim ~b:0)
        p.Fault.txn_crashes
  | Some _ | None -> ());
  (* A deferred detection policy supplies its own wake sources up front:
     the sweep tick chain ([Periodic]/[Adaptive]) and the watchdog chain
     are both self-perpetuating, so the event queue cannot drain while
     deadlocked transactions sit with no [Exec] events of their own. *)
  (match config.intervention with
  | Detect when not (Detection_policy.is_eager config.detection) ->
      (match config.detection with
      | Detection_policy.Periodic _ | Detection_policy.Adaptive ->
          Pqueue.push t.events
            ~priority:(Detection_policy.initial_interval config.detection)
            ~tag:ev_detect_tick ~a:0 ~b:0
      | Detection_policy.Eager | Detection_policy.Lazy_on_timeout _ -> ());
      Pqueue.push t.events
        ~priority:(Detection_policy.stall_bound config.detection)
        ~tag:ev_watchdog ~a:0 ~b:0
  | Detect | Timeout_abort _ | Wound_wait_c | Wait_die_c -> ());
  t

let config t = t.cfg
let store t = t.store

(* Ids are allocated densely, so every per-transaction array grows in
   lockstep the moment a new id would fall off the end. *)
let ensure_txn_cap t id =
  let old = Array.length t.txns in
  if id >= old then begin
    let cap = max (id + 1) (2 * old) in
    let grow fill a =
      let b = Array.make cap fill in
      Array.blit a 0 b 0 old;
      b
    in
    t.txns <- grow None t.txns;
    t.crash_counts <- grow 0 t.crash_counts;
    t.wait_dirty <- grow false t.wait_dirty;
    t.blocked_since <- grow (-1) t.blocked_since;
    t.lazy_false <- grow 0 t.lazy_false;
    t.rollback_counts <- grow 0 t.rollback_counts;
    t.submit_ticks <- grow (-1) t.submit_ticks;
    t.commit_ticks <- grow (-1) t.commit_ticks
  end

let submit_at ?copy_allocation t ~at program =
  let at = max at t.tick in
  let id = t.next_id in
  t.next_id <- id + 1;
  ensure_txn_cap t id;
  let ts =
    Txn_state.create ?copy_allocation ~pool:t.pool ~strategy:t.cfg.strategy
      ~id ~store:t.store program
  in
  t.txns.(id) <- Some ts;
  t.submit_ticks.(id) <- at;
  Waits_for.add_txn t.wfg id;
  Pqueue.push t.events ~priority:(max (t.tick + 1) at) ~tag:ev_exec ~a:id ~b:0;
  id

let submit ?copy_allocation t program =
  submit_at ?copy_allocation t ~at:t.tick program

let txn_state t id =
  if id < 0 || id >= t.next_id then raise Not_found
  else
    match t.txns.(id) with Some ts -> ts | None -> raise Not_found

let all_txns t = List.init t.next_id Fun.id

let now t = t.tick
let n_committed t = t.commits
let all_committed t = t.commits = t.next_id
let waits_for t = t.wfg
let lock_table t = t.locks
let history t = t.hist
let check_seconds t = t.check_seconds
let check_calls t = t.check_calls
let enumerate_seconds t = t.enumerate_seconds
let enumerate_calls t = t.enumerate_calls
let n_blocked_tracked t = t.n_blocked

let schedule t id =
  Pqueue.push t.events ~priority:(t.tick + 1) ~tag:ev_exec ~a:id ~b:0

(* Every (re)installation of wait edges goes through here so the dirty
   set stays a sound overapproximation of "out-edges changed since the
   graph was last acyclic" — the invariant resolve_deadlocks leans on.
   The flag array keeps [dirty_ids] duplicate-free. *)
let[@lint.allow
     "A1: amortized dirty-set doubling; steady-state marking writes in \
      place"] set_wait t ~waiter ~holders e =
  Waits_for.set_wait t.wfg ~waiter ~holders e;
  if not t.wait_dirty.(waiter) then begin
    t.wait_dirty.(waiter) <- true;
    (if t.n_dirty = Array.length t.dirty_ids then begin
       let b = Array.make (2 * t.n_dirty) 0 in
       Array.blit t.dirty_ids 0 b 0 t.n_dirty;
       t.dirty_ids <- b
     end);
    t.dirty_ids.(t.n_dirty) <- waiter;
    t.n_dirty <- t.n_dirty + 1
  end

(* After the holder set of [e] changed without a grant, blocked waiters'
   waits-for edges must track the new holders. O(1) exit when nothing
   queues on [e]. *)
let[@lint.allow
     "A1: runs only when a contended entity's holder set changed; \
      re-pointing consumes the waiter/blocker lists the lock-table API \
      returns, and the uncontended path exits at the has_waiters \
      check"] refresh_waiters t e =
  if Lock_table.has_waiters t.locks e then
    List.iter
      (fun (w, _) ->
        match Lock_table.blockers t.locks w with
        | [] -> () (* about to be granted by the caller's grant pass *)
        | holders -> set_wait t ~waiter:w ~holders e)
      (Lock_table.waiters t.locks e)

(* A tracked wait ended (grant, rollback, restart, crash): fold its
   duration into the blocked-time statistics and drop the episode state.
   Every path that unblocks a transaction funnels through here — including
   rollback victims, which the stats fold used to lose entirely. *)
let note_unblocked t id =
  let since = t.blocked_since.(id) in
  if since >= 0 then begin
    let d = t.tick - since in
    if d > t.max_blocked_ticks then t.max_blocked_ticks <- d;
    t.total_blocked_ticks <- t.total_blocked_ticks + d;
    t.blocked_since.(id) <- -1;
    t.n_blocked <- t.n_blocked - 1;
    t.lazy_false.(id) <- 0
  end

let note_rollback t v = t.rollback_counts.(v) <- t.rollback_counts.(v) + 1

(* The starvation guard: a transaction rolled back at least
   [starvation_limit] times is shielded from victim selection (the
   resolver falls back to it only when a cycle offers nobody else). *)
let immune t v =
  match t.cfg.starvation_limit with
  | Some k -> t.rollback_counts.(v) >= k
  | None -> false

let process_one_grant t w mode e =
  (Log.debug (fun m ->
       m "[%d] grant %a(%s) to T%d (from queue)" t.tick Lock_mode.pp mode e
         w)
   [@lint.allow "A1: log msgf closure renders only when a reporter is armed"]);
  Waits_for.clear_wait t.wfg w;
  note_unblocked t w;
  let ts = txn_state t w in
  History.note_grant t.hist ~tick:t.tick w e mode;
  Txn_state.lock_granted ts;
  schedule t w

let rec process_grants t = function
  | [] -> ()
  | (w, mode, e) :: rest ->
      process_one_grant t w mode e;
      process_grants t rest

(* [Lock_table.release]/[cancel_wait] report (waiter, mode) pairs for one
   known entity: processing them directly keeps the steady release path
   free of the triple-list rebuild. *)
let rec process_grants_on t e = function
  | [] -> ()
  | (w, mode) :: rest ->
      process_one_grant t w mode e;
      process_grants_on t e rest

(* Release one lock of [id] on [e] and propagate: grants wake waiters,
   survivors re-point their edges. *)
let release_lock t id e =
  process_grants_on t e (Lock_table.release t.locks id e);
  refresh_waiters t e

(* --- Deadlock resolution ------------------------------------------- *)

(* Cycles through the requester, converted to the resolver's (member,
   entity-to-release) form. A waits-for cycle [r; v1; ...; vk] has edges
   r->v1 (r waits for v1 on e1) ... vk->r; deleting the arc into a member
   means that member releases the entity labelling the arc. *)
let[@lint.allow
     "A1: enumerates and relabels the cycles through the requester — the \
      resolver's input, allocated only when resolution actually \
      runs"] resolver_cycles ?limit t requester =
  let limit =
    match limit with Some l -> min l t.cfg.cycle_limit | None -> t.cfg.cycle_limit
  in
  t.enumerate_calls <- t.enumerate_calls + 1;
  let raw =
    match t.cfg.clock with
    | None -> Waits_for.cycles_through ~limit t.wfg requester
    | Some clk ->
        let t0 = clk () in
        let r = Waits_for.cycles_through ~limit t.wfg requester in
        t.enumerate_seconds <- t.enumerate_seconds +. (clk () -. t0);
        r
  in
  let label u v =
    match Waits_for.wait_label t.wfg u v with
    | Some e -> e
    | None -> raise (Stuck "waits-for edge vanished during resolution")
  in
  List.map
    (fun cycle ->
      let rec arcs = function
        | [] -> []
        | [ last ] -> [ (requester, label last requester) ]
        | u :: (v :: _ as rest) -> (v, label u v) :: arcs rest
      in
      arcs cycle)
    raw

(* An arc into a cycle member is labelled with the entity whose
   availability the predecessor awaits. The member breaks the arc either
   by rolling back far enough to release the entity (it holds it), or —
   under fair queueing, where waits-for edges also point at conflicting
   requests queued ahead — by cancelling its own pending request for that
   entity and requeueing at the tail. *)
let split_arcs ts entities =
  List.partition (fun e -> Txn_state.holds ts e <> None) entities

let release_cost t v entities =
  let ts = txn_state t v in
  let held, queued = split_arcs ts entities in
  let rollback_part =
    match held with
    | [] -> 0
    | es ->
        let target =
          List.fold_left
            (fun acc e -> min acc (Txn_state.rollback_target ts e))
            max_int es
        in
        Txn_state.cost_of_target ts target
  in
  (* Requeueing loses no progress but is not free: charge one op so the
     optimiser does not see it as a universally-winning move. *)
  rollback_part + if queued = [] then 0 else 1

let cancel_pending_request t v =
  match Lock_table.cancel_wait t.locks v with
  | Some (e, grants) ->
      process_grants_on t e grants;
      refresh_waiters t e
  | None -> ()

(* Self-restart: the transaction abandons its pending request, rolls back
   to state 0 releasing everything, and starts over (keeping its id, which
   is its timestamp). The prevention/timeout baselines use it directly;
   deferred deadlock resolution uses it (with a re-admission delay) to
   escalate repeat victims. *)
let[@lint.allow
     "A1: a restart abandons the pending request and rolls the victim \
      back to state 0 — restart machinery allocates by design, off the \
      grant fast path"] self_restart ?(extra_delay = 0) t id =
  let ts = txn_state t id in
  cancel_pending_request t id;
  Waits_for.clear_wait t.wfg id;
  note_unblocked t id;
  let released = Txn_state.rollback_to ts Txn_state.restart_target in
  t.rollback_events <- t.rollback_events + 1;
  note_rollback t id;
  List.iter
    (fun e ->
      History.discard t.hist id e;
      release_lock t id e)
    released;
  Pqueue.push t.events
    ~priority:(t.tick + 1 + t.cfg.restart_delay + extra_delay)
    ~tag:ev_exec ~a:id ~b:0

(* How many rollbacks a transaction may suffer before a deferred round
   stops rolling it back partially and escalates to a delayed full
   restart. Deferred resolution restarts its victims into the same
   deterministic workload that just deadlocked them; without escalation
   the hot-set regulars re-collide forever (a limit cycle — Figure 2's
   pathology resurrected by batching), and a partial-rollback victim
   cannot simply be parked with a long backoff because it keeps holding
   its remaining locks, turning the backoff into a convoy. The full
   restart releases everything, so the quadratic re-admission delay
   below desynchronises the herd without stalling anyone behind it. *)
let deferred_escalation = 4

let apply_partial_rollback t ~deferred ~stagger v entities =
  let ts = txn_state t v in
  let held, _queued = split_arcs ts entities in
  (* A blocked victim abandons its pending request; shrinking its queue
     may unblock waiters behind it, and survivors re-point their edges.
     When every arc is a queue arc this cancel-and-retry (the transaction
     re-issues the request and lands at the queue tail) is the whole
     remedy. *)
  cancel_pending_request t v;
  Waits_for.clear_wait t.wfg v;
  note_unblocked t v;
  (match held with
  | [] -> t.requeue_events <- t.requeue_events + 1
  | es ->
      let target =
        List.fold_left
          (fun acc e -> min acc (Txn_state.rollback_target ts e))
          (Txn_state.lock_index ts)
          es
      in
      (* Overshoot: progress destroyed beyond the minimal release point —
         zero under MCS, the whole prefix under Total, the price of
         non-well-defined states under SDG. *)
      let minimal =
        List.fold_left
          (fun acc e ->
            match Txn_state.lock_state_of ts e with
            | Some k -> min acc k
            | None -> acc)
          (Txn_state.lock_index ts) es
      in
      t.overshoot_ops <-
        t.overshoot_ops
        + Txn_state.cost_of_target ts target
        - Txn_state.cost_of_target ts minimal;
      Log.info (fun m ->
          m "[%d] partial rollback of T%d to %s (releasing %s)" t.tick v
            (if target = Txn_state.restart_target then "restart"
             else Printf.sprintf "lock state %d" target)
            (String.concat "," es));
      let released = Txn_state.rollback_to ts target in
      t.rollback_events <- t.rollback_events + 1;
      note_rollback t v;
      List.iter
        (fun e ->
          History.discard t.hist v e;
          release_lock t v e)
        released);
  (* A deferred pass can roll back many victims in one round; restarted in
     lockstep at [t+1] they re-request the same hot entities in the same
     order and the next pass faces the same cycles. Stagger the herd by
     victim position and back off early repeat victims quadratically —
     deterministic, and zero in eager rounds, whose replay output must
     stay byte-identical. (Victims past [deferred_escalation] never reach
     this push; {!apply_rollback} escalates them to a delayed full
     restart, so the backoff here stays too short to convoy waiters
     behind a still-held lock.) *)
  let backoff =
    if not deferred then 0
    else
      let n = t.rollback_counts.(v) in
      stagger + (n * n)
  in
  Pqueue.push t.events
    ~priority:(t.tick + 1 + t.cfg.restart_delay + backoff)
    ~tag:ev_exec ~a:v ~b:0

let apply_rollback ?(deferred = false) ?(stagger = 0) t v entities =
  let prior = t.rollback_counts.(v) in
  if deferred && prior >= deferred_escalation then
    self_restart t v ~extra_delay:(stagger + min 4096 (prior * prior))
  else apply_partial_rollback t ~deferred ~stagger v entities

(* Victim policy for one resolution round. An eager round sees only
   cycles a single request just closed, where the configured policy's
   trade-offs were calibrated; a deferred pass (sweep or probe) can face
   several cycles that accreted between passes — exactly the multi-cycle
   regime Section 3.2's minimum-cost vertex cut was built for — so the
   iterative single-victim policies are routed through the cut solver
   ([Ordered_min_cost], keeping Theorem 2's preemption order). Policies
   that already are cuts run unchanged. *)
let resolution_policy t ~deferred cycles =
  if
    deferred
    && (match cycles with _ :: _ :: _ -> true | [] | [ _ ] -> false)
    &&
    match t.cfg.policy with
    | Policy.Min_cost | Policy.Ordered_min_cost -> false
    | Policy.Requester | Policy.Youngest | Policy.Random_victim -> true
  then Policy.Ordered_min_cost
  else t.cfg.policy

(* A deferred round's cycle-enumeration budget. The eager path enumerates
   up to [cycle_limit] cycles through the requester because its victim
   choices are part of the replayable contract. A deferred pass — sweep
   fixpoint or targeted probe — re-examines the graph after every cut, so
   it can feed the Section 3.2 cut solver a small sample per round and
   let iteration make up the difference. On the dense graphs deferral
   accretes, DFS cycle enumeration is the dominant detection cost, and
   this budget is where the deferred policies' wall-clock win over eager
   detection comes from. (Sampling is only safe together with the
   escalation below: small cuts roll back fewer victims per round, and
   without escalation the survivors re-collide indefinitely.) *)
let deferred_cycle_budget = 8

(* One resolution round: count it, pick victims, apply the rollbacks. *)
let[@lint.allow
     "A1: a resolution round builds the resolver decision and applies \
      the victims' rollbacks; it runs only on a detected \
      deadlock"] resolve_round t ~deferred requester cycles =
  Log.info (fun m ->
      m "[%d] deadlock: %d cycle(s) through T%d" t.tick (List.length cycles)
        requester);
  t.deadlocks <- t.deadlocks + 1;
  t.cycles_broken <- t.cycles_broken + List.length cycles;
  let decision =
    Resolver.choose ~immune:(immune t)
      ~policy:(resolution_policy t ~deferred cycles)
      ~requester
      ~entry_order:(fun v -> Txn_state.entry_order (txn_state t v))
      ~release_cost:(release_cost t) ~rng:t.rng cycles
  in
  if decision.Resolver.optimal then
    t.optimal_resolutions <- t.optimal_resolutions + 1;
  if decision.Resolver.starved_fallback then
    t.starvation_fallbacks <- t.starvation_fallbacks + 1;
  (match t.deadlock_hook with
  | Some hook -> hook ~requester ~cycles ~decision
  | None -> ());
  List.iteri
    (fun i (v, entities) -> apply_rollback ~deferred ~stagger:i t v entities)
    decision.Resolver.victims

(* Resolve until no blocked transaction lies on a cycle. New requests can
   only close cycles through the requester, but a resolution round's side
   effects (requeues, grants, edge re-pointing) can leave or create cycles
   elsewhere.

   The fixpoint is incremental: the graph was acyclic the last time the
   dirty set was cleared, and every edge (re)installation since marks its
   waiter dirty, so any cycle now alive passes through a dirty blocked
   transaction. Each round therefore seeds one SCC pass at the dirty
   transactions instead of running full cycle analyses over every blocked
   transaction; a round with no blocked dirty transaction, or whose seeded
   SCC pass finds no cycle, proves the whole graph acyclic and clears the
   set. The requester examined first is chosen exactly as the full rescan
   did — [primary] when it lies on a cycle, else the smallest blocked id
   on one — so victim choices (and hence all statistics) are unchanged.

   [primary = None] is a full sweep (deferred policies, watchdog): same
   fixpoint, no preferred requester. Only this fixpoint may clear the
   dirty set — its convergence proves the whole graph acyclic, which a
   targeted probe's single reachable slice never does. *)
let rd_converged t =
  for i = 0 to t.n_dirty - 1 do
    t.wait_dirty.(t.dirty_ids.(i)) <- false
  done;
  t.n_dirty <- 0

(* Ascending-id seed order is part of the replayable contract (it was
   [Util.sorted_keys] over the dirty table); a round's resolutions can
   append new dirty ids, so the prefix is re-sorted every round. The
   insertion-shift is a top-level int-annotated helper so the sort
   neither builds a closure nor falls back to polymorphic compare. *)
let rec rd_shift (a : int array) j x =
  if j >= 0 && a.(j) > x then begin
    a.(j + 1) <- a.(j);
    rd_shift a (j - 1) x
  end
  else a.(j + 1) <- x

let rd_sort_dirty t =
  let a = t.dirty_ids in
  for i = 1 to t.n_dirty - 1 do
    rd_shift a (i - 1) a.(i)
  done

let[@lint.allow
     "A1: builds the SCC seed list only while dirty blocked transactions \
      exist; the clean-graph fixpoint round allocates \
      nothing"] rec rd_seeds t i acc =
  if i < 0 then acc
  else
    let id = t.dirty_ids.(i) in
    rd_seeds t (i - 1)
      (if Waits_for.is_blocked t.wfg id then id :: acc else acc)

(* One cycle-handling step of the fixpoint: victim selection over the
   cycles through the first candidate that yields any within budget.
   Returns whether a round was applied (and the fixpoint must rerun). *)
let[@lint.allow
     "A1: runs only when the seeded SCC pass reported a cycle — cycle \
      enumeration and victim selection allocate their reports by \
      design"] rd_round t ~deferred primary on_cycle =
  let candidates =
    match primary with
    | Some p when List.exists (Txn_id.equal p) on_cycle ->
        p :: List.filter (fun v -> not (Txn_id.equal v p)) on_cycle
    | Some _ | None -> on_cycle
  in
  let cycle_site =
    List.find_map
      (fun b ->
        match
          resolver_cycles
            ?limit:(if deferred then Some deferred_cycle_budget else None)
            t b
        with
        | [] -> None
        | cycles -> Some (b, cycles))
      candidates
  in
  match cycle_site with
  | None ->
      (* Cycle enumeration hit its budget everywhere it looked: leave the
         dirty set in place so the next resolution revisits these
         transactions. *)
      false
  | Some (requester, cycles) ->
      resolve_round t ~deferred requester cycles;
      true

(* The cycle-membership census is the "check" half of the detection
   accounting — the boolean question "is anyone deadlocked?" — as opposed
   to the cycle enumeration the resolver consumes, which bills to the
   enumerate counters inside [resolver_cycles]. *)
let[@lint.allow
     "A1: check wall-clock accounting boxes floats only when a clock is \
      configured; the census list is the detector's report"] checked_on_cycle
    t seeds =
  t.check_calls <- t.check_calls + 1;
  match t.cfg.clock with
  | None -> Waits_for.on_cycle_from t.wfg seeds
  | Some clk ->
      let t0 = clk () in
      let r = Waits_for.on_cycle_from t.wfg seeds in
      t.check_seconds <- t.check_seconds +. (clk () -. t0);
      r

let rec rd_fixpoint t ~deferred primary round =
  if round > 1000 then raise (Stuck "deadlock resolution did not converge");
  rd_sort_dirty t;
  match rd_seeds t (t.n_dirty - 1) [] with
  | [] -> rd_converged t
  | seeds -> (
      match checked_on_cycle t seeds with
      | [] -> rd_converged t
      | on_cycle ->
          if rd_round t ~deferred primary on_cycle then
            rd_fixpoint t ~deferred primary (round + 1))

let[@hot] resolve_deadlocks t ~deferred primary =
  rd_fixpoint t ~deferred primary 1

(* A targeted lazy probe: examine only the waits-for slice reachable from
   the one transaction whose timer expired, resolving until that slice is
   cycle-free. Returns whether any deadlock was found. Never touches the
   dirty set — an acyclic slice says nothing about the rest of the
   graph. *)
let resolve_probe t id =
  let found = ref false in
  let continue_ = ref true in
  let round = ref 0 in
  while !continue_ do
    incr round;
    if !round > 1000 then raise (Stuck "probe resolution did not converge");
    match checked_on_cycle t [ id ] with
    | [] -> continue_ := false
    | on_cycle -> (
        let requester =
          if List.exists (Txn_id.equal id) on_cycle then id
          else List.fold_left min (List.hd on_cycle) on_cycle
        in
        match resolver_cycles ~limit:deferred_cycle_budget t requester with
        | [] ->
            (* enumeration budget exhausted; leave it to the watchdog's
               full sweep rather than spinning here *)
            continue_ := false
        | cycles ->
            found := true;
            resolve_round t ~deferred:true requester cycles)
  done;
  !found

(* A full detection sweep (periodic/adaptive tick or watchdog): one run
   of the global fixpoint, whose check/enumerate cost bills itself at the
   waits-for call sites. Returns whether it found any deadlock, which
   drives the adaptive cadence. *)
let[@lint.allow
     "A1: a full detection sweep is scheduled work off the request \
      path"] run_sweep t =
  t.detection_passes <- t.detection_passes + 1;
  let before = t.deadlocks in
  resolve_deadlocks t ~deferred:true None;
  t.last_detect_tick <- t.tick;
  t.deadlocks > before

(* Detector outages model the asynchronous detector service being down:
   scheduled passes and probes are suppressed (counted as missed) while
   the current tick lies inside an outage window. Eager detection is not
   a service — it is inline in the lock-request path (the paper's scheme
   has no separate detector process) — so it is unaffected. *)
let in_detector_outage t =
  match t.cfg.faults with
  | Some p -> Fault.in_outage p t.tick
  | None -> false

(* First tick at or after now that lies outside every outage window. *)
let[@lint.allow
     "A1: consulted only while the detector sits inside an injected \
      outage window — fault-plan bookkeeping, not steady-state \
      work"] outage_end t =
  match t.cfg.faults with
  | None -> t.tick
  | Some p ->
      List.fold_left
        (fun acc (o : Fault.outage) ->
          if o.Fault.out_from <= acc && acc < o.Fault.out_until then
            o.Fault.out_until
          else acc)
        t.tick
        (List.sort
           (fun (a : Fault.outage) b ->
             Int.compare a.Fault.out_from b.Fault.out_from)
           p.Fault.detector_outages)

(* Wound-wait (centralised): the older requester wounds each younger
   blocker, which partially rolls back just far enough to release the
   entity (or requeues, if it was merely queued ahead); shrinking-phase
   blockers are immune and safe to wait for. *)
let[@lint.allow
     "A1: a wound rolls the younger blocker back far enough to release \
      the entity — the prevention baseline's rollback path allocates its \
      restart machinery by design"] wound_younger_blockers t requester e
    blockers =
  List.iter
    (fun b ->
      if
        b > requester
        && Txn_state.phase (txn_state t b) = Txn_state.Growing
      then begin
        t.prevention_events <- t.prevention_events + 1;
        Log.info (fun m -> m "[%d] T%d wounds T%d over %s" t.tick requester b e);
        apply_rollback t b [ e ]
      end)
    blockers

(* A transaction crash (fault plan): the victim loses its volatile state —
   rollback to state 0, releasing everything — and is re-admitted after a
   delay that doubles with repeated crashes of the same transaction.
   Shrinking transactions are past their commit point and immune, so the
   plan's victim selector resolves against live growing transactions
   only (modulo their count, keeping plans replayable on any workload). *)
let[@lint.allow
     "A1: fault-injection path — a crash rolls the victim back to state \
      0 and re-admits it after a backoff; crash machinery allocates by \
      design"] crash_transaction t selector =
  let live =
    List.filter
      (fun id -> Txn_state.phase (txn_state t id) = Txn_state.Growing)
      (all_txns t)
  in
  match live with
  | [] -> ()
  | _ :: _ ->
      let id = List.nth live (abs selector mod List.length live) in
      let n = 1 + t.crash_counts.(id) in
      t.crash_counts.(id) <- n;
      t.txn_crash_events <- t.txn_crash_events + 1;
      Log.info (fun m -> m "[%d] T%d crashed (crash #%d)" t.tick id n);
      let to_ =
        match t.cfg.faults with
        | Some p -> p.Fault.timeouts
        | None -> Fault.default_timeouts
      in
      let delay =
        to_.Fault.readmit_delay * (1 lsl min (n - 1) to_.Fault.backoff_cap)
      in
      let ts = txn_state t id in
      cancel_pending_request t id;
      Waits_for.clear_wait t.wfg id;
      note_unblocked t id;
      let released = Txn_state.rollback_to ts Txn_state.restart_target in
      t.rollback_events <- t.rollback_events + 1;
      note_rollback t id;
      List.iter
        (fun e ->
          History.discard t.hist id e;
          release_lock t id e)
        released;
      Pqueue.push t.events ~priority:(t.tick + 1 + delay) ~tag:ev_exec ~a:id ~b:0

(* --- Executing one transaction step -------------------------------- *)

(* Wait-die: is some blocker older (smaller id = earlier timestamp) than
   the requester? Top-level and int-annotated for the hot request path. *)
let rec any_blocker_older (id : int) = function
  | [] -> false
  | b :: rest -> b < id || any_blocker_older id rest

let handle_lock_request t id mode e =
  let ts = txn_state t id in
  match Lock_table.request t.locks id mode e with
  | Lock_table.Granted ->
      History.note_grant t.hist ~tick:t.tick id e mode;
      Txn_state.lock_granted ts;
      (* A direct grant can change the holder set under queued waiters
         (a shared request joining shared holders past a queued exclusive
         one): their waits-for edges must follow, or cycles through the
         new holder are invisible to later deadlock checks. *)
      refresh_waiters t e;
      schedule t id
  | Lock_table.Blocked holders -> (
      (Log.debug (fun m ->
           m "[%d] T%d blocked on %a(%s) behind %s" t.tick id Lock_mode.pp
             mode e
             (String.concat "," (List.map (Printf.sprintf "T%d") holders)))
       [@lint.allow
         "A1: log msgf closure renders only when a reporter is armed"]);
      set_wait t ~waiter:id ~holders e;
      (* Every block is tracked, whatever the intervention: the duration
         feeds the blocked-time statistics, the lazy probes and the stall
         watchdog; [Timeout_abort] timers read it as before. *)
      if t.blocked_since.(id) < 0 then t.n_blocked <- t.n_blocked + 1;
      t.blocked_since.(id) <- t.tick;
      match t.cfg.intervention with
      | Detect -> (
          match t.cfg.detection with
          | Detection_policy.Eager ->
              (* Edges installed; a deadlock exists iff some blocker
                 reaches the waiter (Section 3.1's descendant check).
                 Only the boolean probe itself is a "check" — resolution
                 bills its enumeration to the enumerate counters and its
                 rollback work to nobody. *)
              t.check_calls <- t.check_calls + 1;
              let deadlock =
                (match t.cfg.clock with
                | None -> Waits_for.would_deadlock t.wfg ~waiter:id ~holders
                | Some clk ->
                    let t0 = clk () in
                    let r =
                      Waits_for.would_deadlock t.wfg ~waiter:id ~holders
                    in
                    t.check_seconds <- t.check_seconds +. (clk () -. t0);
                    r)
                [@lint.allow
                  "A1: check wall-clock accounting boxes floats only \
                   when a clock is configured"]
              in
              if deadlock then
                (resolve_deadlocks t ~deferred:false (Some id)
                 [@lint.allow
                   "A1: a detected deadlock hands the requester to \
                    resolution, which allocates by design"])
          | Detection_policy.Periodic _ | Detection_policy.Adaptive ->
              (* the request path pays nothing; the sweep chain detects *)
              ()
          | Detection_policy.Lazy_on_timeout { blocked_ticks; _ } ->
              Pqueue.push t.events
                ~priority:(t.tick + blocked_ticks)
                ~tag:ev_probe ~a:id ~b:t.tick)
      | Timeout_abort n ->
          Pqueue.push t.events ~priority:(t.tick + n) ~tag:ev_timer ~a:id ~b:0
      | Wound_wait_c -> wound_younger_blockers t id e holders
      | Wait_die_c ->
          if any_blocker_older id holders then begin
            (* younger than a blocker: die, keeping the timestamp *)
            t.prevention_events <- t.prevention_events + 1;
            (Log.info (fun m -> m "[%d] T%d dies over %s" t.tick id e)
             [@lint.allow
               "A1: log msgf closure renders only when a reporter is \
                armed"]);
            self_restart t id
          end)

let handle_unlock t id =
  let ts = txn_state t id in
  let e, final = Txn_state.perform_unlock ts in
  (match final with Some v -> Store.install t.store e v | None -> ());
  History.note_release t.hist ~tick:t.tick id e;
  release_lock t id e;
  schedule t id

let[@lint.allow
     "A1: commit retires the transaction — final installs, release-all \
      regrants, history certification and pool returns run once per \
      transaction, off the per-operation path"] handle_commit t id =
  let ts = txn_state t id in
  let finals = Txn_state.commit ts in
  List.iter (fun (e, v) -> Store.install t.store e v) finals;
  let held = Lock_table.held_by t.locks id in
  List.iter
    (fun (e, _) -> History.note_release t.hist ~tick:t.tick id e)
    held;
  let grants = Lock_table.release_all t.locks id in
  process_grants t grants;
  (* Every entity whose holder set changed needs its waiters re-pointed. *)
  List.iter (fun (e, _) -> refresh_waiters t e) held;
  Waits_for.remove_txn t.wfg id;
  History.commit_txn t.hist id;
  (* A committer was never blocked at this point, but a stale
     [blocked_since] entry may still linger (set on a block, cleared on
     grant paths only) — drop it without folding it into the duration
     stats (the wait it describes ended long ago). *)
  if t.blocked_since.(id) >= 0 then begin
    t.blocked_since.(id) <- -1;
    t.n_blocked <- t.n_blocked - 1
  end;
  t.lazy_false.(id) <- 0;
  Log.debug (fun m -> m "[%d] T%d committed" t.tick id);
  t.commit_ticks.(id) <- t.tick;
  t.commits <- t.commits + 1;
  t.ops_committed <- t.ops_committed + Program.length (Txn_state.program ts);
  (* The transaction is retired: its remaining history buffers go back to
     the pool for the next admission. The accounting the stats fold reads
     (ops lost/executed, peak copies, rollbacks) survives disposal. *)
  Txn_state.dispose ts

let exec_one t id =
  let ts = txn_state t id in
  match Txn_state.phase ts with
  | Txn_state.Committed -> ()
  | Txn_state.Growing | Txn_state.Shrinking -> (
      if Waits_for.is_blocked t.wfg id then
        (* Stale wakeup for a transaction that re-blocked; it will be
           rescheduled on grant. *)
        ()
      else
        match Txn_state.next_action ts with
        | Txn_state.Need_lock (mode, e) -> handle_lock_request t id mode e
        | Txn_state.Need_unlock _ -> handle_unlock t id
        | Txn_state.Data_step ->
            Txn_state.exec_data_op ts;
            schedule t id
        | Txn_state.At_end -> handle_commit t id)

let handle_timer t id =
  (* a Timeout_abort timer: restart the waiter if it is still stuck on
     the same wait *)
  let n =
    match t.cfg.intervention with
    | Timeout_abort n -> n
    | Detect | Wound_wait_c | Wait_die_c -> max_int
  in
  let since = t.blocked_since.(id) in
  if since >= 0 && Waits_for.is_blocked t.wfg id then
    if since + n <= t.tick then begin
      t.timeout_events <- t.timeout_events + 1;
      (Log.info (fun m -> m "[%d] T%d timed out; restarting" t.tick id)
       [@lint.allow
         "A1: log msgf closure renders only when a reporter is armed"]);
      self_restart t id
    end
    else Pqueue.push t.events ~priority:(since + n) ~tag:ev_timer ~a:id ~b:0

let[@lint.allow
     "A1: the sweep chain runs once per detection tick, not per \
      operation; sweep dispatch, outage checks and cadence adaptation \
      are off the request path"] handle_detect_tick t =
  (* the sweep chain: run (or miss, during an outage) a full pass and
     reschedule — self-perpetuating so deadlocked configurations always
     have a pending wake source *)
  match t.cfg.detection with
  | Detection_policy.Periodic n ->
      if in_detector_outage t then t.missed_passes <- t.missed_passes + 1
      else ignore (run_sweep t);
      Pqueue.push t.events ~priority:(t.tick + n) ~tag:ev_detect_tick ~a:0 ~b:0
  | Detection_policy.Adaptive ->
      (if in_detector_outage t then t.missed_passes <- t.missed_passes + 1
       else begin
         let found = run_sweep t in
         if found then begin
           (* deadlocks are arriving: halve the interval *)
           t.detect_interval <-
             max Detection_policy.adaptive_min (t.detect_interval / 2);
           t.quiet_passes <- 0
         end
         else begin
           t.quiet_passes <- t.quiet_passes + 1;
           if t.quiet_passes >= 2 then begin
             (* two consecutive empty sweeps: back off *)
             t.detect_interval <-
               min Detection_policy.adaptive_max (t.detect_interval * 2);
             t.quiet_passes <- 0
           end
         end
       end);
      Pqueue.push t.events ~priority:(t.tick + t.detect_interval)
        ~tag:ev_detect_tick ~a:0 ~b:0
  | Detection_policy.Eager | Detection_policy.Lazy_on_timeout _ -> ()

let[@lint.allow
     "A1: the opt-in lazy-probe policy resolves one reachable slice per \
      expired timer with backoff re-arming — probe bookkeeping is off \
      the request path"] handle_probe t id armed =
  match t.cfg.detection with
  | Detection_policy.Lazy_on_timeout { blocked_ticks; backoff } ->
      let since = t.blocked_since.(id) in
      if since >= 0 && since = armed && Waits_for.is_blocked t.wfg id then
        if in_detector_outage t then begin
          (* detector down: the probe is lost; re-arm past the outage
             (the watchdog, re-armed at the outage end itself, checks
             first on recovery) *)
          t.missed_passes <- t.missed_passes + 1;
          Pqueue.push t.events
            ~priority:(outage_end t + blocked_ticks)
            ~tag:ev_probe ~a:id ~b:armed
        end
        else begin
          t.detection_passes <- t.detection_passes + 1;
          let found = resolve_probe t id in
          if found then begin
            t.lazy_false.(id) <- 0;
            (* resolution may have left [id] blocked (it survived as a
               non-victim): watch the still-running wait with a fresh
               timer *)
            let since' = t.blocked_since.(id) in
            if since' >= 0 && Waits_for.is_blocked t.wfg id then
              Pqueue.push t.events
                ~priority:(t.tick + blocked_ticks)
                ~tag:ev_probe ~a:id ~b:since'
          end
          else begin
            (* false alarm: the slice is acyclic, the wait is legitimate
               — double this transaction's next probe delay *)
            let n = t.lazy_false.(id) in
            t.lazy_false.(id) <- n + 1;
            Pqueue.push t.events
              ~priority:(t.tick + (blocked_ticks * (1 lsl min n backoff)))
              ~tag:ev_probe ~a:id ~b:armed
          end
        end
      else
        (* the wait this probe was armed for ended; a later block armed
           its own probe *)
        ()
  | Detection_policy.Eager | Detection_policy.Periodic _
  | Detection_policy.Adaptive ->
      ()

(* Ascending-id scan over tracked blocks, stopping at the first stalled
   transaction — the short-circuit the sorted fold had. Top-level and
   int-annotated so the per-arm watchdog check allocates nothing. *)
let rec watchdog_scan t bound (id : int) =
  id < t.next_id
  && ((let since = t.blocked_since.(id) in
       since >= 0
       && t.tick - since >= bound
       && t.last_detect_tick <= since
       && Waits_for.is_blocked t.wfg id)
     || watchdog_scan t bound (id + 1))

let handle_watchdog t =
  (* the liveness net: a transaction blocked past the policy's stall
     bound with no full sweep since it blocked means passes were lost
     (outage, backed-off probes) — force one. Self-perpetuating at half
     the bound, so a stall is caught within 1.5x the bound of arising. *)
  let bound = Detection_policy.stall_bound t.cfg.detection in
  if in_detector_outage t then
    (* suppressed like any detection while the detector is down; re-armed
       for the first healthy tick so recovery sweeps promptly *)
    Pqueue.push t.events ~priority:(outage_end t) ~tag:ev_watchdog ~a:0 ~b:0
  else begin
    if watchdog_scan t bound 0 then begin
      t.watchdog_fires <- t.watchdog_fires + 1;
      (Log.info (fun m ->
           m "[%d] stall watchdog: forcing a full sweep" t.tick)
       [@lint.allow
         "A1: log msgf closure renders only when a reporter is armed"]);
      ignore (run_sweep t)
    end;
    Pqueue.push t.events
      ~priority:(t.tick + max (bound / 2) 1)
      ~tag:ev_watchdog ~a:0 ~b:0
  end

let[@hot] step t =
  if all_committed t then false
  else if not (Pqueue.pop t.events) then
    (* Live transactions with an empty event queue means a wakeup was
       lost — always a bug, never a valid quiescent state (an acyclic
       waits-for graph has a runnable transaction, and runnable
       transactions hold events). *)
    raise (Stuck "event queue drained with live transactions")
  else begin
    let tick = Pqueue.cur_prio t.events in
    if tick > t.cfg.max_ticks then false
    else begin
      t.tick <- max t.tick tick;
      let tag = Pqueue.cur_tag t.events in
      let a = Pqueue.cur_a t.events in
      let b = Pqueue.cur_b t.events in
      if tag = ev_exec then exec_one t a
      else if tag = ev_crash_txn then crash_transaction t a
      else if tag = ev_timer then handle_timer t a
      else if tag = ev_detect_tick then handle_detect_tick t
      else if tag = ev_probe then handle_probe t a b
      else handle_watchdog t;
      true
    end
  end

let run t =
  while step t do
    ()
  done

type stats = {
  ticks : int;
  commits : int;
  deadlocks : int;
  cycles_broken : int;
  rollbacks : int;
  requeues : int;
  ops_lost : int;
  overshoot_ops : int;
  ops_committed : int;
  ops_executed : int;
  blocks : int;
  peak_copies : int;
  optimal_resolutions : int;
  timeouts : int;
  preventions : int;
  txn_crashes : int;
  detection_passes : int;
  watchdog_fires : int;
  starvation_fallbacks : int;
  missed_passes : int;
  max_blocked_ticks : int;
  total_blocked_ticks : int;
  max_txn_rollbacks : int;
}

let set_deadlock_hook t hook = t.deadlock_hook <- Some hook

let submit_tick t id =
  if id >= 0 && id < t.next_id && t.submit_ticks.(id) >= 0 then
    Some t.submit_ticks.(id)
  else None

let commit_tick t id =
  if id >= 0 && id < t.next_id && t.commit_ticks.(id) >= 0 then
    Some t.commit_ticks.(id)
  else None

let latency t id =
  match (submit_tick t id, commit_tick t id) with
  | Some s, Some c -> Some (c - s)
  | _ -> None

let stats t =
  (* One ascending pass accumulating all three per-transaction
     aggregates. *)
  let ops_lost = ref 0 and ops_executed = ref 0 and peak_copies = ref 0 in
  for id = 0 to t.next_id - 1 do
    match t.txns.(id) with
    | Some ts ->
        ops_lost := !ops_lost + Txn_state.ops_lost ts;
        ops_executed := !ops_executed + Txn_state.total_executed ts;
        peak_copies := max !peak_copies (Txn_state.peak_copies ts)
    | None -> ()
  done;
  let ops_lost = !ops_lost
  and ops_executed = !ops_executed
  and peak_copies = !peak_copies in
  {
    ticks = t.tick;
    commits = t.commits;
    deadlocks = t.deadlocks;
    cycles_broken = t.cycles_broken;
    rollbacks = t.rollback_events;
    requeues = t.requeue_events;
    overshoot_ops = t.overshoot_ops;
    ops_lost;
    ops_committed = t.ops_committed;
    ops_executed;
    blocks = Lock_table.n_blocks t.locks;
    peak_copies;
    optimal_resolutions = t.optimal_resolutions;
    timeouts = t.timeout_events;
    preventions = t.prevention_events;
    txn_crashes = t.txn_crash_events;
    detection_passes = t.detection_passes;
    watchdog_fires = t.watchdog_fires;
    starvation_fallbacks = t.starvation_fallbacks;
    missed_passes = t.missed_passes;
    max_blocked_ticks = t.max_blocked_ticks;
    total_blocked_ticks = t.total_blocked_ticks;
    max_txn_rollbacks =
      (let m = ref 0 in
       for id = 0 to t.next_id - 1 do
         if t.rollback_counts.(id) > !m then m := t.rollback_counts.(id)
       done;
       !m);
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>ticks: %d@,commits: %d@,deadlocks: %d (cycles broken: %d)@,\
     rollbacks: %d (+%d requeues)@,ops lost: %d (overshoot %d)@,\
     ops committed: %d@,ops executed: %d@,blocks: %d@,peak copies: %d@,\
     optimal resolutions: %d@,timeouts: %d, preventions: %d@,\
     txn crashes: %d"
    s.ticks s.commits s.deadlocks s.cycles_broken s.rollbacks s.requeues
    s.ops_lost s.overshoot_ops s.ops_committed s.ops_executed s.blocks
    s.peak_copies s.optimal_resolutions s.timeouts s.preventions
    s.txn_crashes;
  (* The deferred-detection and blocked-duration lines appear only when a
     scheduled detector or timeout ran, keeping eager fixed-seed output
     byte-identical to the pre-policy engine. *)
  if
    s.detection_passes > 0 || s.watchdog_fires > 0 || s.missed_passes > 0
    || s.starvation_fallbacks > 0 || s.timeouts > 0
  then
    Fmt.pf ppf
      "@,detection passes: %d (missed: %d)@,\
       watchdog fires: %d, starvation fallbacks: %d@,\
       max blocked: %d ticks (total %d), max txn rollbacks: %d"
      s.detection_passes s.missed_passes s.watchdog_fires
      s.starvation_fallbacks s.max_blocked_ticks s.total_blocked_ticks
      s.max_txn_rollbacks;
  Fmt.pf ppf "@]"
