module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Lock_mode = Prb_txn.Lock_mode
module Lock_table = Prb_lock.Lock_table
module Waits_for = Prb_wfg.Waits_for
module Strategy = Prb_rollback.Strategy
module Txn_state = Prb_rollback.Txn_state
module History = Prb_history.History
module Heap = Prb_util.Heap
module Rng = Prb_util.Rng
module Util = Prb_util.Util
module Txn_id = Prb_txn.Txn_id
module Fault = Prb_fault.Fault

type intervention =
  | Detect
  | Timeout_abort of int
  | Wound_wait_c
  | Wait_die_c

type config = {
  strategy : Strategy.t;
  policy : Policy.t;
  intervention : intervention;
  seed : int;
  max_ticks : int;
  cycle_limit : int;
  restart_delay : int;
  fair_locking : bool;
  faults : Fault.plan option;
  clock : (unit -> float) option;
}

let default_config =
  {
    strategy = Strategy.Sdg;
    policy = Policy.Ordered_min_cost;
    intervention = Detect;
    seed = 1;
    max_ticks = 1_000_000;
    cycle_limit = 256;
    restart_delay = 0;
    fair_locking = true;
    faults = None;
    clock = None;
  }

exception Stuck of string

(* Debug tracing: enable with Logs.Src.set_level (e.g. via the CLI's
   --verbose) to watch grants, blocks, deadlocks and rollbacks. *)
let src = Logs.Src.create "prb.scheduler" ~doc:"partial-rollback scheduler"

module Log = (val Logs.src_log src : Logs.LOG)

type event =
  | Exec of int
  | Timer of int  (** a [Timeout_abort] timer for the transaction *)
  | Crash_txn of int
      (** a scheduled transaction crash; the payload is the plan's victim
          selector, resolved against the live growing transactions when
          the crash fires *)

type t = {
  cfg : config;
  store : Store.t;
  locks : Lock_table.t;
  wfg : Waits_for.t;
  txns : (int, Txn_state.t) Hashtbl.t;
  events : event Heap.t;
  hist : History.t;
  rng : Rng.t;
  mutable next_id : int;
  mutable tick : int;
  mutable commits : int;
  mutable deadlocks : int;
  mutable cycles_broken : int;
  mutable rollback_events : int;
  mutable requeue_events : int;
  mutable overshoot_ops : int;
  mutable optimal_resolutions : int;
  mutable timeout_events : int;
  mutable prevention_events : int;
  mutable txn_crash_events : int;
  crash_counts : (int, int) Hashtbl.t;
      (** crashes suffered per transaction, driving re-admission backoff *)
  wait_dirty : (int, unit) Hashtbl.t;
      (** transactions whose waits-for out-edges were (re)installed since
          the graph was last known acyclic; every cycle passes through one
          of them, so deadlock resolution seeds its search here instead of
          rescanning all blocked transactions each round *)
  mutable detect_seconds : float;
  mutable detect_calls : int;
  blocked_since : (int, int) Hashtbl.t;
  submit_ticks : (int, int) Hashtbl.t;
  commit_ticks : (int, int) Hashtbl.t;
  mutable ops_committed : int;
  mutable deadlock_hook :
    (requester:int -> cycles:Resolver.cycle list -> decision:Resolver.decision -> unit)
    option;
}

let create ?(config = default_config) store =
  let t =
  {
    cfg = config;
    store;
    locks = Lock_table.create ~fair:config.fair_locking ();
    wfg = Waits_for.create ();
    txns = Hashtbl.create 64;
    events = Heap.create ();
    hist = History.create ();
    rng = Rng.make config.seed;
    next_id = 0;
    tick = 0;
    commits = 0;
    deadlocks = 0;
    cycles_broken = 0;
    rollback_events = 0;
    requeue_events = 0;
    overshoot_ops = 0;
    optimal_resolutions = 0;
    timeout_events = 0;
    prevention_events = 0;
    txn_crash_events = 0;
    crash_counts = Hashtbl.create 8;
    wait_dirty = Hashtbl.create 16;
    detect_seconds = 0.0;
    detect_calls = 0;
    blocked_since = Hashtbl.create 16;
    submit_ticks = Hashtbl.create 64;
    commit_ticks = Hashtbl.create 64;
    ops_committed = 0;
    deadlock_hook = None;
  }
  in
  (match config.faults with
  | Some p when not (Fault.is_none p) ->
      List.iter
        (fun (c : Fault.txn_crash) ->
          Heap.push t.events ~priority:(max 1 c.Fault.crash_at)
            (Crash_txn c.Fault.victim))
        p.Fault.txn_crashes
  | Some _ | None -> ());
  t

let config t = t.cfg
let store t = t.store

let submit_at ?copy_allocation t ~at program =
  let at = max at t.tick in
  let id = t.next_id in
  t.next_id <- id + 1;
  let ts =
    Txn_state.create ?copy_allocation ~strategy:t.cfg.strategy ~id
      ~store:t.store program
  in
  Hashtbl.replace t.txns id ts;
  Hashtbl.replace t.submit_ticks id at;
  Waits_for.add_txn t.wfg id;
  Heap.push t.events ~priority:(max (t.tick + 1) at) (Exec id);
  id

let submit ?copy_allocation t program =
  submit_at ?copy_allocation t ~at:t.tick program

let txn_state t id =
  match Hashtbl.find_opt t.txns id with
  | Some ts -> ts
  | None -> raise Not_found

let all_txns t = Util.sorted_keys Txn_id.compare t.txns

let now t = t.tick
let n_committed t = t.commits
let all_committed t = t.commits = Hashtbl.length t.txns
let waits_for t = t.wfg
let lock_table t = t.locks
let history t = t.hist
let detection_seconds t = t.detect_seconds
let detection_calls t = t.detect_calls
let n_blocked_tracked t = Hashtbl.length t.blocked_since

let schedule t id = Heap.push t.events ~priority:(t.tick + 1) (Exec id)

(* Every (re)installation of wait edges goes through here so the dirty
   set stays a sound overapproximation of "out-edges changed since the
   graph was last acyclic" — the invariant resolve_deadlocks leans on. *)
let set_wait t ~waiter ~holders e =
  Waits_for.set_wait t.wfg ~waiter ~holders e;
  Hashtbl.replace t.wait_dirty waiter ()

(* After the holder set of [e] changed without a grant, blocked waiters'
   waits-for edges must track the new holders. O(1) exit when nothing
   queues on [e]. *)
let refresh_waiters t e =
  if Lock_table.has_waiters t.locks e then
    List.iter
      (fun (w, _) ->
        match Lock_table.blockers t.locks w with
        | [] -> () (* about to be granted by the caller's grant pass *)
        | holders -> set_wait t ~waiter:w ~holders e)
      (Lock_table.waiters t.locks e)

let process_grants t grants =
  List.iter
    (fun (w, mode, e) ->
      Log.debug (fun m ->
          m "[%d] grant %a(%s) to T%d (from queue)" t.tick Lock_mode.pp mode
            e w);
      Waits_for.clear_wait t.wfg w;
      Hashtbl.remove t.blocked_since w;
      let ts = txn_state t w in
      History.note_grant t.hist ~tick:t.tick w e mode;
      Txn_state.lock_granted ts;
      schedule t w)
    grants

(* Release one lock of [id] on [e] and propagate: grants wake waiters,
   survivors re-point their edges. *)
let release_lock t id e =
  let grants = Lock_table.release t.locks id e in
  process_grants t (List.map (fun (w, m) -> (w, m, e)) grants);
  refresh_waiters t e

(* --- Deadlock resolution ------------------------------------------- *)

(* Cycles through the requester, converted to the resolver's (member,
   entity-to-release) form. A waits-for cycle [r; v1; ...; vk] has edges
   r->v1 (r waits for v1 on e1) ... vk->r; deleting the arc into a member
   means that member releases the entity labelling the arc. *)
let resolver_cycles t requester =
  let raw = Waits_for.cycles_through ~limit:t.cfg.cycle_limit t.wfg requester in
  let label u v =
    match List.assoc_opt v (Waits_for.waits t.wfg u) with
    | Some e -> e
    | None -> raise (Stuck "waits-for edge vanished during resolution")
  in
  List.map
    (fun cycle ->
      let rec arcs = function
        | [] -> []
        | [ last ] -> [ (requester, label last requester) ]
        | u :: (v :: _ as rest) -> (v, label u v) :: arcs rest
      in
      arcs cycle)
    raw

(* An arc into a cycle member is labelled with the entity whose
   availability the predecessor awaits. The member breaks the arc either
   by rolling back far enough to release the entity (it holds it), or —
   under fair queueing, where waits-for edges also point at conflicting
   requests queued ahead — by cancelling its own pending request for that
   entity and requeueing at the tail. *)
let split_arcs ts entities =
  List.partition (fun e -> Txn_state.holds ts e <> None) entities

let release_cost t v entities =
  let ts = txn_state t v in
  let held, queued = split_arcs ts entities in
  let rollback_part =
    match held with
    | [] -> 0
    | es ->
        let target =
          List.fold_left
            (fun acc e -> min acc (Txn_state.rollback_target ts e))
            max_int es
        in
        Txn_state.cost_of_target ts target
  in
  (* Requeueing loses no progress but is not free: charge one op so the
     optimiser does not see it as a universally-winning move. *)
  rollback_part + if queued = [] then 0 else 1

let cancel_pending_request t v =
  match Lock_table.cancel_wait t.locks v with
  | Some (e, grants) ->
      process_grants t (List.map (fun (w, m) -> (w, m, e)) grants);
      refresh_waiters t e
  | None -> ()

let apply_rollback t v entities =
  let ts = txn_state t v in
  let held, _queued = split_arcs ts entities in
  (* A blocked victim abandons its pending request; shrinking its queue
     may unblock waiters behind it, and survivors re-point their edges.
     When every arc is a queue arc this cancel-and-retry (the transaction
     re-issues the request and lands at the queue tail) is the whole
     remedy. *)
  cancel_pending_request t v;
  Waits_for.clear_wait t.wfg v;
  (match held with
  | [] -> t.requeue_events <- t.requeue_events + 1
  | es ->
      let target =
        List.fold_left
          (fun acc e -> min acc (Txn_state.rollback_target ts e))
          (Txn_state.lock_index ts)
          es
      in
      (* Overshoot: progress destroyed beyond the minimal release point —
         zero under MCS, the whole prefix under Total, the price of
         non-well-defined states under SDG. *)
      let minimal =
        List.fold_left
          (fun acc e ->
            match Txn_state.lock_state_of ts e with
            | Some k -> min acc k
            | None -> acc)
          (Txn_state.lock_index ts) es
      in
      t.overshoot_ops <-
        t.overshoot_ops
        + Txn_state.cost_of_target ts target
        - Txn_state.cost_of_target ts minimal;
      Log.info (fun m ->
          m "[%d] partial rollback of T%d to %s (releasing %s)" t.tick v
            (if target = Txn_state.restart_target then "restart"
             else Printf.sprintf "lock state %d" target)
            (String.concat "," es));
      let released = Txn_state.rollback_to ts target in
      t.rollback_events <- t.rollback_events + 1;
      List.iter
        (fun e ->
          History.discard t.hist v e;
          release_lock t v e)
        released);
  Heap.push t.events ~priority:(t.tick + 1 + t.cfg.restart_delay) (Exec v)

(* Resolve until no blocked transaction lies on a cycle. New requests can
   only close cycles through the requester, but a resolution round's side
   effects (requeues, grants, edge re-pointing) can leave or create cycles
   elsewhere.

   The fixpoint is incremental: the graph was acyclic the last time the
   dirty set was cleared, and every edge (re)installation since marks its
   waiter dirty, so any cycle now alive passes through a dirty blocked
   transaction. Each round therefore seeds one SCC pass at the dirty
   transactions instead of running full cycle analyses over every blocked
   transaction; a round with no blocked dirty transaction, or whose seeded
   SCC pass finds no cycle, proves the whole graph acyclic and clears the
   set. The requester examined first is chosen exactly as the full rescan
   did — [primary] when it lies on a cycle, else the smallest blocked id
   on one — so victim choices (and hence all statistics) are unchanged. *)
let resolve_deadlocks t primary =
  let round = ref 0 in
  let converged () = Hashtbl.reset t.wait_dirty in
  let rec fixpoint () =
    incr round;
    if !round > 1000 then
      raise (Stuck "deadlock resolution did not converge");
    let seeds =
      List.filter
        (fun id -> Waits_for.is_blocked t.wfg id)
        (Util.sorted_keys Txn_id.compare t.wait_dirty)
    in
    if seeds = [] then converged ()
    else
      match Waits_for.on_cycle_from t.wfg seeds with
      | [] -> converged ()
      | on_cycle -> (
          let candidates =
            if List.exists (Txn_id.equal primary) on_cycle then
              primary
              :: List.filter (fun v -> not (Txn_id.equal v primary)) on_cycle
            else on_cycle
          in
          let cycle_site =
            List.find_map
              (fun b ->
                match resolver_cycles t b with
                | [] -> None
                | cycles -> Some (b, cycles))
              candidates
          in
          match cycle_site with
          | None ->
              (* Cycle enumeration hit its budget everywhere it looked:
                 leave the dirty set in place so the next resolution
                 revisits these transactions. *)
              ()
          | Some (requester, cycles) ->
              Log.info (fun m ->
                  m "[%d] deadlock: %d cycle(s) through T%d" t.tick
                    (List.length cycles) requester);
              t.deadlocks <- t.deadlocks + 1;
              t.cycles_broken <- t.cycles_broken + List.length cycles;
              let decision =
                Resolver.choose ~policy:t.cfg.policy ~requester
                  ~entry_order:(fun v -> Txn_state.entry_order (txn_state t v))
                  ~release_cost:(release_cost t) ~rng:t.rng cycles
              in
              if decision.Resolver.optimal then
                t.optimal_resolutions <- t.optimal_resolutions + 1;
              (match t.deadlock_hook with
              | Some hook -> hook ~requester ~cycles ~decision
              | None -> ());
              List.iter
                (fun (v, entities) -> apply_rollback t v entities)
                decision.Resolver.victims;
              fixpoint ())
  in
  fixpoint ()

(* Self-restart for the prevention/timeout baselines: the transaction
   abandons its pending request and starts over (keeping its id, which is
   its timestamp). *)
let self_restart t id =
  let ts = txn_state t id in
  cancel_pending_request t id;
  Waits_for.clear_wait t.wfg id;
  Hashtbl.remove t.blocked_since id;
  let released = Txn_state.rollback_to ts Txn_state.restart_target in
  t.rollback_events <- t.rollback_events + 1;
  List.iter
    (fun e ->
      History.discard t.hist id e;
      release_lock t id e)
    released;
  Heap.push t.events ~priority:(t.tick + 1 + t.cfg.restart_delay) (Exec id)

(* Wound-wait (centralised): the older requester wounds each younger
   blocker, which partially rolls back just far enough to release the
   entity (or requeues, if it was merely queued ahead); shrinking-phase
   blockers are immune and safe to wait for. *)
let wound_younger_blockers t requester e blockers =
  List.iter
    (fun b ->
      if
        b > requester
        && Txn_state.phase (txn_state t b) = Txn_state.Growing
      then begin
        t.prevention_events <- t.prevention_events + 1;
        Log.info (fun m -> m "[%d] T%d wounds T%d over %s" t.tick requester b e);
        apply_rollback t b [ e ]
      end)
    blockers

(* A transaction crash (fault plan): the victim loses its volatile state —
   rollback to state 0, releasing everything — and is re-admitted after a
   delay that doubles with repeated crashes of the same transaction.
   Shrinking transactions are past their commit point and immune, so the
   plan's victim selector resolves against live growing transactions
   only (modulo their count, keeping plans replayable on any workload). *)
let crash_transaction t selector =
  let live =
    List.filter
      (fun id -> Txn_state.phase (txn_state t id) = Txn_state.Growing)
      (all_txns t)
  in
  match live with
  | [] -> ()
  | _ :: _ ->
      let id = List.nth live (abs selector mod List.length live) in
      let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.crash_counts id) in
      Hashtbl.replace t.crash_counts id n;
      t.txn_crash_events <- t.txn_crash_events + 1;
      Log.info (fun m -> m "[%d] T%d crashed (crash #%d)" t.tick id n);
      let to_ =
        match t.cfg.faults with
        | Some p -> p.Fault.timeouts
        | None -> Fault.default_timeouts
      in
      let delay =
        to_.Fault.readmit_delay * (1 lsl min (n - 1) to_.Fault.backoff_cap)
      in
      let ts = txn_state t id in
      cancel_pending_request t id;
      Waits_for.clear_wait t.wfg id;
      Hashtbl.remove t.blocked_since id;
      let released = Txn_state.rollback_to ts Txn_state.restart_target in
      t.rollback_events <- t.rollback_events + 1;
      List.iter
        (fun e ->
          History.discard t.hist id e;
          release_lock t id e)
        released;
      Heap.push t.events ~priority:(t.tick + 1 + delay) (Exec id)

(* --- Executing one transaction step -------------------------------- *)

let handle_lock_request t id mode e =
  let ts = txn_state t id in
  match Lock_table.request t.locks id mode e with
  | Lock_table.Granted ->
      History.note_grant t.hist ~tick:t.tick id e mode;
      Txn_state.lock_granted ts;
      (* A direct grant can change the holder set under queued waiters
         (a shared request joining shared holders past a queued exclusive
         one): their waits-for edges must follow, or cycles through the
         new holder are invisible to later deadlock checks. *)
      refresh_waiters t e;
      schedule t id
  | Lock_table.Blocked holders -> (
      Log.debug (fun m ->
          m "[%d] T%d blocked on %a(%s) behind %s" t.tick id Lock_mode.pp
            mode e
            (String.concat "," (List.map (Printf.sprintf "T%d") holders)));
      set_wait t ~waiter:id ~holders e;
      match t.cfg.intervention with
      | Detect ->
          (* Edges installed; a deadlock exists iff some blocker reaches
             the waiter (Section 3.1's descendant check). *)
          t.detect_calls <- t.detect_calls + 1;
          let t0 = match t.cfg.clock with Some clk -> clk () | None -> 0.0 in
          if Waits_for.would_deadlock t.wfg ~waiter:id ~holders then
            resolve_deadlocks t id;
          (match t.cfg.clock with
          | Some clk -> t.detect_seconds <- t.detect_seconds +. clk () -. t0
          | None -> ())
      | Timeout_abort n ->
          Hashtbl.replace t.blocked_since id t.tick;
          Heap.push t.events ~priority:(t.tick + n) (Timer id)
      | Wound_wait_c -> wound_younger_blockers t id e holders
      | Wait_die_c ->
          if List.exists (fun b -> b < id) holders then begin
            (* younger than a blocker: die, keeping the timestamp *)
            t.prevention_events <- t.prevention_events + 1;
            Log.info (fun m -> m "[%d] T%d dies over %s" t.tick id e);
            self_restart t id
          end)

let handle_unlock t id =
  let ts = txn_state t id in
  let e, final = Txn_state.perform_unlock ts in
  (match final with Some v -> Store.install t.store e v | None -> ());
  History.note_release t.hist ~tick:t.tick id e;
  release_lock t id e;
  schedule t id

let handle_commit t id =
  let ts = txn_state t id in
  let finals = Txn_state.commit ts in
  List.iter (fun (e, v) -> Store.install t.store e v) finals;
  let held = Lock_table.held_by t.locks id in
  List.iter
    (fun (e, _) -> History.note_release t.hist ~tick:t.tick id e)
    held;
  let grants = Lock_table.release_all t.locks id in
  process_grants t grants;
  (* Every entity whose holder set changed needs its waiters re-pointed. *)
  List.iter (fun (e, _) -> refresh_waiters t e) held;
  Waits_for.remove_txn t.wfg id;
  History.commit_txn t.hist id;
  (* A committer was never blocked at this point, but its timeout-mode
     [blocked_since] entry may still linger (set on a block, cleared on
     grant paths only) — drop it so the table cannot grow without bound
     over a long run. *)
  Hashtbl.remove t.blocked_since id;
  Log.debug (fun m -> m "[%d] T%d committed" t.tick id);
  Hashtbl.replace t.commit_ticks id t.tick;
  t.commits <- t.commits + 1;
  t.ops_committed <- t.ops_committed + Program.length (Txn_state.program ts)

let exec_one t id =
  let ts = txn_state t id in
  match Txn_state.phase ts with
  | Txn_state.Committed -> ()
  | Txn_state.Growing | Txn_state.Shrinking -> (
      if Waits_for.is_blocked t.wfg id then
        (* Stale wakeup for a transaction that re-blocked; it will be
           rescheduled on grant. *)
        ()
      else
        match Txn_state.next_action ts with
        | Txn_state.Need_lock (mode, e) -> handle_lock_request t id mode e
        | Txn_state.Need_unlock _ -> handle_unlock t id
        | Txn_state.Data_step ->
            Txn_state.exec_data_op ts;
            schedule t id
        | Txn_state.At_end -> handle_commit t id)

let step t =
  if all_committed t then false
  else
    match Heap.pop t.events with
    | None ->
        (* Live transactions with an empty event queue means a wakeup was
           lost — always a bug, never a valid quiescent state (an acyclic
           waits-for graph has a runnable transaction, and runnable
           transactions hold events). *)
        raise (Stuck "event queue drained with live transactions")
    | Some (tick, ev) ->
        if tick > t.cfg.max_ticks then false
        else begin
          t.tick <- max t.tick tick;
          (match ev with
          | Exec id -> exec_one t id
          | Crash_txn selector -> crash_transaction t selector
          | Timer id -> (
              (* a Timeout_abort timer: restart the waiter if it is still
                 stuck on the same wait *)
              let n =
                match t.cfg.intervention with
                | Timeout_abort n -> n
                | Detect | Wound_wait_c | Wait_die_c -> max_int
              in
              match Hashtbl.find_opt t.blocked_since id with
              | Some since when Waits_for.is_blocked t.wfg id ->
                  if since + n <= t.tick then begin
                    t.timeout_events <- t.timeout_events + 1;
                    Log.info (fun m -> m "[%d] T%d timed out; restarting" t.tick id);
                    self_restart t id
                  end
                  else Heap.push t.events ~priority:(since + n) ev
              | Some _ | None -> ()));
          true
        end

let run t =
  while step t do
    ()
  done

type stats = {
  ticks : int;
  commits : int;
  deadlocks : int;
  cycles_broken : int;
  rollbacks : int;
  requeues : int;
  ops_lost : int;
  overshoot_ops : int;
  ops_committed : int;
  ops_executed : int;
  blocks : int;
  peak_copies : int;
  optimal_resolutions : int;
  timeouts : int;
  preventions : int;
  txn_crashes : int;
}

let set_deadlock_hook t hook = t.deadlock_hook <- Some hook

let submit_tick t id = Hashtbl.find_opt t.submit_ticks id
let commit_tick t id = Hashtbl.find_opt t.commit_ticks id

let latency t id =
  match (submit_tick t id, commit_tick t id) with
  | Some s, Some c -> Some (c - s)
  | _ -> None

let stats t =
  (* One sorted pass accumulating all three per-transaction aggregates. *)
  let ops_lost, ops_executed, peak_copies =
    Util.fold_sorted Txn_id.compare
      (fun _ ts (lost, execd, peak) ->
        ( lost + Txn_state.ops_lost ts,
          execd + Txn_state.total_executed ts,
          max peak (Txn_state.peak_copies ts) ))
      t.txns (0, 0, 0)
  in
  {
    ticks = t.tick;
    commits = t.commits;
    deadlocks = t.deadlocks;
    cycles_broken = t.cycles_broken;
    rollbacks = t.rollback_events;
    requeues = t.requeue_events;
    overshoot_ops = t.overshoot_ops;
    ops_lost;
    ops_committed = t.ops_committed;
    ops_executed;
    blocks = Lock_table.n_blocks t.locks;
    peak_copies;
    optimal_resolutions = t.optimal_resolutions;
    timeouts = t.timeout_events;
    preventions = t.prevention_events;
    txn_crashes = t.txn_crash_events;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>ticks: %d@,commits: %d@,deadlocks: %d (cycles broken: %d)@,\
     rollbacks: %d (+%d requeues)@,ops lost: %d (overshoot %d)@,\
     ops committed: %d@,ops executed: %d@,blocks: %d@,peak copies: %d@,\
     optimal resolutions: %d@,timeouts: %d, preventions: %d@,\
     txn crashes: %d@]"
    s.ticks s.commits s.deadlocks s.cycles_broken s.rollbacks s.requeues
    s.ops_lost s.overshoot_ops s.ops_committed s.ops_executed s.blocks
    s.peak_copies s.optimal_resolutions s.timeouts s.preventions
    s.txn_crashes
