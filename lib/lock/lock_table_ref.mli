(** Reference implementation of {!Lock_table} (the original
    hashtable-of-entries representation), retained for differential
    testing only.

    The lock manager: shared/exclusive locks over entities with FIFO wait
    queues.

    Two grant disciplines are provided:

    - {b Fair} (default): a request is granted iff it is compatible with
      every current holder {e and} every request queued ahead of it; on
      release, the queue is drained strictly in FIFO order (stopping at
      the first waiter that still conflicts). Blocked requests wait both
      for conflicting holders and for conflicting requests ahead of them
      in the queue, and the waits-for edges reported by {!blockers}
      include both.
    - {b Availability} ([~fair:false]): the paper's Section 2 rule — a
      request is granted iff the entity is "available", i.e. compatible
      with the current holders, and waiters wait for holders only. This
      admits writer starvation (a stream of shared locks can hold off an
      exclusive request forever), which combined with partial rollback
      produces live-lock: a victim releases its shared lock and
      immediately re-acquires it past the starving writer. DESIGN.md
      discusses the deviation; the two disciplines coincide on
      exclusive-only workloads, which is what the paper's Section 3.1
      figures use.

    Lock upgrades (shared held, exclusive requested) are supported: the
    holder converts in place when alone, otherwise waits for the other
    holders (conversions take priority over queued requests and bypass
    queue fairness — the usual discipline, since a conversion can never
    sit behind a request that needs the converter to go away). *)

type txn = int
type entity = Prb_storage.Store.entity
type mode = Prb_txn.Lock_mode.t

type t

val create : ?fair:bool -> unit -> t
(** [fair] defaults to [true]. *)

val is_fair : t -> bool

type outcome =
  | Granted
  | Blocked of txn list
      (** the transactions the requester now waits for: conflicting
          holders, plus conflicting queued-ahead requesters under the fair
          discipline (sorted, non-empty, never includes the requester) *)

val request : t -> txn -> mode -> entity -> outcome
(** @raise Invalid_argument when the transaction already holds the entity
    in this or a stronger mode (an upgrade S->X is the one legal
    re-request), or when it is already waiting for something (a
    transaction blocks on one request at a time). *)

val release : t -> txn -> entity -> (txn * mode) list
(** Release a held lock; returns the waiters granted as a consequence, in
    grant order (an upgrade grant is reported with mode [Exclusive]).
    @raise Invalid_argument if not held. *)

val cancel_wait : t -> txn -> (entity * (txn * mode) list) option
(** Forget the transaction's pending request (used when a waiter is
    chosen as deadlock victim): returns the entity it was queued on and
    any waiters granted because the queue shrank. [None] if it was not
    waiting. *)

val release_all : t -> txn -> (txn * mode * entity) list
(** Release everything the transaction holds and cancel its pending wait,
    if any. Returns all grants triggered, in release order. *)

val holders : t -> entity -> (txn * mode) list
(** Sorted by transaction id. *)

val waiters : t -> entity -> (txn * mode) list
(** FIFO order. *)

val has_waiters : t -> entity -> bool
(** O(1): does the entity have a non-empty wait queue? Lets release paths
    skip the waiter re-pointing pass for uncontended entities. *)

val held_by : t -> txn -> (entity * mode) list
(** Sorted by entity. O(locks held): served from a per-transaction index,
    not a scan over every entry in the table. *)

val n_held : t -> txn -> int
(** O(1): how many locks the transaction holds. *)

val holds : t -> txn -> entity -> mode option
(** O(1) via the per-transaction index. *)

val waiting_for : t -> txn -> (entity * mode) option
(** The transaction's pending request, if blocked. *)

val blockers : t -> txn -> txn list
(** Whom the transaction's pending request currently waits for (see
    {!outcome}); [[]] when it is not waiting. Recompute after every
    release or cancellation: holder sets and queues evolve while a waiter
    sleeps. *)

(** Conflict taxonomy of Section 3.2 (holder conflicts only). *)
type conflict_kind =
  | No_conflict
  | Type1  (** shared request vs. exclusive holder *)
  | Type2  (** exclusive request vs. any holder(s) *)

val classify : t -> txn -> mode -> entity -> conflict_kind

(* Counters for the experiment harness. *)

val n_requests : t -> int
val n_blocks : t -> int
val n_upgrades : t -> int

val n_entries : t -> int
(** Live entries in the table. Entries are dropped as soon as both their
    holder set and queue drain, so this tracks currently held-or-contended
    entities, not every entity ever locked. *)
