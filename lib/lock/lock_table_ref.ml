(* Reference implementation of [Lock_table], retained verbatim from the
   hashtable-of-entries version so the qcheck differential properties in
   test_lock can assert the dense slot-indexed rewrite is observationally
   identical. Not used by any engine. *)

module Lock_mode = Prb_txn.Lock_mode
module Txn_id = Prb_txn.Txn_id
module Entity = Prb_storage.Store.Entity
module Util = Prb_util.Util

type txn = Txn_id.t
type entity = Prb_storage.Store.entity
type mode = Lock_mode.t

type entry = {
  mutable holding : (txn * mode) list; (* unordered *)
  mutable queue : (txn * mode) list; (* FIFO: head = oldest waiter *)
}

type t = {
  fair : bool;
  entries : (entity, entry) Hashtbl.t;
  wait_of : (txn, entity * mode) Hashtbl.t;
  held_of : (txn, (entity, mode) Hashtbl.t) Hashtbl.t;
      (* txn -> its held locks; the per-transaction index that makes
         [held_by]/[release_all] O(locks held) instead of a scan over
         every entry in the table *)
  mutable requests : int;
  mutable blocks : int;
  mutable upgrades : int;
}

let create ?(fair = true) () =
  {
    fair;
    entries = Hashtbl.create 128;
    wait_of = Hashtbl.create 32;
    held_of = Hashtbl.create 32;
    requests = 0;
    blocks = 0;
    upgrades = 0;
  }

let is_fair t = t.fair

let entry t e =
  match Hashtbl.find_opt t.entries e with
  | Some entry -> entry
  | None ->
      let entry = { holding = []; queue = [] } in
      Hashtbl.replace t.entries e entry;
      entry

(* Entries whose holder set and queue both drained are dropped, so the
   entry table tracks only contended-or-held entities instead of every
   entity ever touched. *)
let gc_entry t e entry =
  if entry.holding = [] && entry.queue = [] then Hashtbl.remove t.entries e

let index_grant t who e mode =
  let held =
    match Hashtbl.find_opt t.held_of who with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 8 in
        Hashtbl.replace t.held_of who h;
        h
  in
  Hashtbl.replace held e mode

let index_release t who e =
  match Hashtbl.find_opt t.held_of who with
  | None -> ()
  | Some held ->
      Hashtbl.remove held e;
      if Hashtbl.length held = 0 then Hashtbl.remove t.held_of who

type outcome = Granted | Blocked of txn list

let conflicting_holders entry who mode =
  List.filter_map
    (fun (h, m) ->
      if h <> who && not (Lock_mode.compatible m mode) then Some h else None)
    entry.holding

(* Queued requests ahead of [who] (the whole queue when [who] is absent)
   that conflict with a request in [mode]. *)
let conflicting_queued_ahead entry who mode =
  let rec scan = function
    | [] -> []
    | (w, _) :: _ when w = who -> []
    | (w, m) :: rest ->
        if not (Lock_mode.compatible m mode) then w :: scan rest
        else scan rest
  in
  scan entry.queue

let is_upgrade entry who = List.mem_assoc who entry.holding

(* Whom would a request by [who] in [mode] wait for right now? Upgrades
   bypass queue fairness (a conversion waits only for the other
   holders). *)
let current_blockers t entry who mode =
  let holders = conflicting_holders entry who mode in
  let queued =
    if t.fair && not (is_upgrade entry who) then
      conflicting_queued_ahead entry who mode
    else []
  in
  List.sort_uniq Txn_id.compare (holders @ queued)

let grant t entry e who mode =
  entry.holding <-
    (who, mode) :: List.filter (fun (h, _) -> h <> who) entry.holding;
  index_grant t who e mode

let request t txn mode e =
  if Hashtbl.mem t.wait_of txn then
    invalid_arg "Lock_table.request: transaction is already waiting";
  t.requests <- t.requests + 1;
  let entry = entry t e in
  let held = List.assoc_opt txn entry.holding in
  (match (held, mode) with
  | Some Lock_mode.Exclusive, _ | Some Lock_mode.Shared, Lock_mode.Shared ->
      invalid_arg "Lock_table.request: lock already held"
  | Some Lock_mode.Shared, Lock_mode.Exclusive -> t.upgrades <- t.upgrades + 1
  | None, _ -> ());
  match current_blockers t entry txn mode with
  | [] -> begin
      grant t entry e txn mode;
      Granted
    end
  | blockers ->
      t.blocks <- t.blocks + 1;
      entry.queue <- entry.queue @ [ (txn, mode) ];
      Hashtbl.replace t.wait_of txn (e, mode);
      Blocked blockers

(* Drain the queue after holders or the queue itself changed.

   Upgrade waiters are served first, whenever they are the sole holder.
   Then, under the fair discipline, grants proceed strictly from the head
   and stop at the first waiter that still conflicts with the holders;
   under the availability discipline, every waiter compatible with the
   holders is granted regardless of position. *)
let try_grants t e entry =
  let granted = ref [] in
  let grant_waiter (w, m) =
    grant t entry e w m;
    Hashtbl.remove t.wait_of w;
    granted := (w, m) :: !granted
  in
  (* Pass 1: conversions. *)
  let rec upgrades_pass () =
    let convertible =
      List.find_opt
        (fun (w, _) ->
          is_upgrade entry w && List.for_all (fun (h, _) -> h = w) entry.holding)
        entry.queue
    in
    match convertible with
    | Some (w, m) ->
        entry.queue <- List.filter (fun (x, _) -> x <> w) entry.queue;
        grant_waiter (w, m);
        upgrades_pass ()
    | None -> ()
  in
  upgrades_pass ();
  if t.fair then begin
    let rec fifo () =
      match entry.queue with
      | (w, m) :: rest when not (is_upgrade entry w) ->
          if conflicting_holders entry w m = [] then begin
            entry.queue <- rest;
            grant_waiter (w, m);
            fifo ()
          end
      | _ -> ()
    in
    fifo ()
  end
  else begin
    let still = ref [] in
    List.iter
      (fun (w, m) ->
        let ok =
          if is_upgrade entry w then
            List.for_all (fun (h, _) -> h = w) entry.holding
          else conflicting_holders entry w m = []
        in
        if ok then grant_waiter (w, m) else still := (w, m) :: !still)
      entry.queue;
    entry.queue <- List.rev !still
  end;
  gc_entry t e entry;
  List.rev !granted

let release t txn e =
  match Hashtbl.find_opt t.entries e with
  | None -> invalid_arg "Lock_table.release: lock not held"
  | Some entry ->
      if not (List.mem_assoc txn entry.holding) then
        invalid_arg "Lock_table.release: lock not held";
      entry.holding <- List.filter (fun (h, _) -> h <> txn) entry.holding;
      index_release t txn e;
      try_grants t e entry

let cancel_wait t txn =
  match Hashtbl.find_opt t.wait_of txn with
  | None -> None
  | Some (e, _) ->
      Hashtbl.remove t.wait_of txn;
      (match Hashtbl.find_opt t.entries e with
      | Some entry ->
          entry.queue <- List.filter (fun (w, _) -> w <> txn) entry.queue;
          (* Removing a queued conflict may unblock those behind it. *)
          Some (e, try_grants t e entry)
      | None -> Some (e, []))

let held_by t txn =
  match Hashtbl.find_opt t.held_of txn with
  | None -> []
  | Some held -> Util.sorted_bindings Entity.compare held

let n_held t txn =
  match Hashtbl.find_opt t.held_of txn with
  | None -> 0
  | Some held -> Hashtbl.length held

let release_all t txn =
  let cancel_grants =
    match cancel_wait t txn with
    | Some (e, grants) -> List.map (fun (w, m) -> (w, m, e)) grants
    | None -> []
  in
  cancel_grants
  @ List.concat_map
      (fun (e, _) -> List.map (fun (w, m) -> (w, m, e)) (release t txn e))
      (held_by t txn)

let holders t e =
  match Hashtbl.find_opt t.entries e with
  | None -> []
  | Some entry ->
      (* holders are pairwise distinct, so keying the sort on the id alone
         is a total order *)
      List.sort (fun (a, _) (b, _) -> Txn_id.compare a b) entry.holding

let waiters t e =
  match Hashtbl.find_opt t.entries e with None -> [] | Some entry -> entry.queue

let has_waiters t e =
  match Hashtbl.find_opt t.entries e with
  | None -> false
  | Some entry -> entry.queue <> []

let holds t txn e =
  match Hashtbl.find_opt t.held_of txn with
  | None -> None
  | Some held -> Hashtbl.find_opt held e

let waiting_for t txn = Hashtbl.find_opt t.wait_of txn

let blockers t txn =
  match waiting_for t txn with
  | None -> []
  | Some (e, mode) -> (
      match Hashtbl.find_opt t.entries e with
      | None -> []
      | Some entry -> current_blockers t entry txn mode)

type conflict_kind = No_conflict | Type1 | Type2

let classify t txn mode e =
  match Hashtbl.find_opt t.entries e with
  | None -> No_conflict
  | Some entry -> (
      match (conflicting_holders entry txn mode, mode) with
      | [], _ -> No_conflict
      | _ :: _, Lock_mode.Shared -> Type1
      | _ :: _, Lock_mode.Exclusive -> Type2)

let n_requests t = t.requests
let n_blocks t = t.blocks
let n_upgrades t = t.upgrades
let n_entries t = Hashtbl.length t.entries
