module Lock_mode = Prb_txn.Lock_mode
module Txn_id = Prb_txn.Txn_id
module Entity = Prb_storage.Store.Entity
module Interner = Prb_util.Dense.Interner

type txn = Txn_id.t
type entity = Prb_storage.Store.entity
type mode = Lock_mode.t

(* Dense representation: entities are interned to contiguous slot ids and
   every per-entity / per-transaction map is a flat array indexed by that
   id. Holder sets and FIFO queues live in per-slot packed int buffers
   (txn * 2 lor mode bit), so the request/grant/release hot path touches
   no hashtable but the interner's (one lookup per request) and allocates
   nothing when a request is granted or an uncontended lock released.
   Holder-set order is not observable through the API (every reader sorts
   or tests membership), so holders use swap-remove; queues preserve FIFO
   order with a sliding window. The previous hashtable-of-entries
   implementation is retained verbatim as [Lock_table_ref] for the
   differential tests. *)

let bit_of_mode = function Lock_mode.Shared -> 0 | Lock_mode.Exclusive -> 1
let mode_of_bit b = if b = 1 then Lock_mode.Exclusive else Lock_mode.Shared

(* Shared/Shared is the only compatible pair, so two mode bits conflict
   iff either is set. *)
let bits_conflict a b = a lor b <> 0

type t = {
  fair : bool;
  ids : Interner.t;
  (* entity-slot-indexed *)
  mutable live : bool array; (* mirrors presence in the old entry table *)
  mutable hold_buf : int array array; (* packed (txn, mode); unordered *)
  mutable hold_len : int array;
  mutable q_buf : int array array; (* packed (txn, mode); FIFO window *)
  mutable q_start : int array;
  mutable q_len : int array;
  (* txn-indexed *)
  mutable wait_eid : int array; (* -1 = not waiting *)
  mutable wait_mode : int array;
  mutable held_buf : int array array; (* packed (eid, mode) *)
  mutable held_len : int array;
  mutable txn_cap : int;
  mutable scratch : int array; (* blocker collection *)
  mutable entries : int;
  mutable requests : int;
  mutable blocks : int;
  mutable upgrades : int;
}

let create ?(fair = true) () =
  {
    fair;
    ids = Interner.create ~size_hint:128 ();
    live = [||];
    hold_buf = [||];
    hold_len = [||];
    q_buf = [||];
    q_start = [||];
    q_len = [||];
    wait_eid = [||];
    wait_mode = [||];
    held_buf = [||];
    held_len = [||];
    txn_cap = 0;
    scratch = [||];
    entries = 0;
    requests = 0;
    blocks = 0;
    upgrades = 0;
  }

let is_fair t = t.fair

let[@lint.allow "A1: amortized geometric growth, never on the steady-state path"] grow_int cap fill arr =
  let narr = Array.make cap fill in
  Array.blit arr 0 narr 0 (Array.length arr);
  narr

let[@lint.allow "A1: amortized geometric growth, never on the steady-state path"] grow_bufs cap arr =
  let narr = Array.make cap [||] in
  Array.blit arr 0 narr 0 (Array.length arr);
  narr

let[@lint.allow "A1: amortized geometric growth, never on the steady-state path"] ensure_eid t eid =
  if eid >= Array.length t.live then begin
    let cap = max 64 (max (eid + 1) (2 * Array.length t.live)) in
    let nl = Array.make cap false in
    Array.blit t.live 0 nl 0 (Array.length t.live);
    t.live <- nl;
    t.hold_buf <- grow_bufs cap t.hold_buf;
    t.hold_len <- grow_int cap 0 t.hold_len;
    t.q_buf <- grow_bufs cap t.q_buf;
    t.q_start <- grow_int cap 0 t.q_start;
    t.q_len <- grow_int cap 0 t.q_len
  end

let ensure_txn t who =
  if who < 0 then invalid_arg "Lock_table: negative transaction id";
  if who >= t.txn_cap then begin
    let cap = max 64 (max (who + 1) (2 * t.txn_cap)) in
    t.wait_eid <- grow_int cap (-1) t.wait_eid;
    t.wait_mode <- grow_int cap 0 t.wait_mode;
    t.held_buf <- grow_bufs cap t.held_buf;
    t.held_len <- grow_int cap 0 t.held_len;
    t.txn_cap <- cap
  end

(* Append a packed value to a per-slot buffer owned by [bufs.(i)]. *)
let[@lint.allow "A1: amortized buffer doubling; the append itself writes in place"] buf_push bufs lens i v =
  let buf = bufs.(i) in
  let n = lens.(i) in
  let buf =
    if n >= Array.length buf then begin
      let nbuf = Array.make (max 4 (2 * Array.length buf)) 0 in
      Array.blit buf 0 nbuf 0 n;
      bufs.(i) <- nbuf;
      nbuf
    end
    else buf
  in
  buf.(n) <- v;
  lens.(i) <- n + 1

(* The scan loops below take their state as explicit parameters instead
   of capturing it in a local closure: these sit on the [@hot] grant and
   release paths, and a capturing [let rec] allocates its closure on every
   call. *)

let rec holder_index buf n who i =
  if i >= n then -1 else if buf.(i) lsr 1 = who then i else holder_index buf n who (i + 1)

(* Index of [who] in the holder set of [eid], or -1. *)
let find_holding t eid who =
  holder_index t.hold_buf.(eid) t.hold_len.(eid) who 0

let is_upgrade t eid who = find_holding t eid who >= 0

(* All holders are [who] itself (conversion admissible): holders are
   pairwise distinct, so this is "sole holder". *)
let sole_holder t eid who = t.hold_len.(eid) = 1 && is_upgrade t eid who

let rec conflicting_from buf n who mode_bit i =
  if i >= n then false
  else
    let p = buf.(i) in
    (p lsr 1 <> who && bits_conflict (p land 1) mode_bit)
    || conflicting_from buf n who mode_bit (i + 1)

let has_conflicting_holder t eid who mode_bit =
  conflicting_from t.hold_buf.(eid) t.hold_len.(eid) who mode_bit 0

let scratch_push t n v =
  if n >= Array.length t.scratch then
    t.scratch <- grow_int (max 16 (2 * Array.length t.scratch)) 0 t.scratch;
  t.scratch.(n) <- v;
  n + 1

(* Whom would a request by [who] in [mode] wait for right now? Conflicting
   holders, plus (fair discipline, non-upgrades only — a conversion waits
   for the other holders alone) conflicting requests queued ahead of
   [who]. Sorted, deduplicated. *)
let rec scratch_holders t eid who mode_bit hbuf i stop n =
  if i >= stop then n
  else
    let p = hbuf.(i) in
    let n =
      if p lsr 1 <> who && bits_conflict (p land 1) mode_bit then
        scratch_push t n (p lsr 1)
      else n
    in
    scratch_holders t eid who mode_bit hbuf (i + 1) stop n

(* Queued conflicts ahead of [who]; the scan stops at [who] itself. *)
let rec scratch_queued t who mode_bit qbuf i stop n =
  if i >= stop then n
  else
    let p = qbuf.(i) in
    if p lsr 1 = who then n
    else
      let n =
        if bits_conflict (p land 1) mode_bit then scratch_push t n (p lsr 1)
        else n
      in
      scratch_queued t who mode_bit qbuf (i + 1) stop n

let rec insert_shift (a : int array) j v =
  if j >= 0 && a.(j) > v then begin
    a.(j + 1) <- a.(j);
    insert_shift a (j - 1) v
  end
  else a.(j + 1) <- v

let[@lint.allow
     "A1: builds the blocker list on the blocked path only; the granted \
      fast path returns the static empty list"] build_blockers a n i prev acc
    =
  let rec build i prev acc =
    if i < 0 then acc
    else if i < n - 1 && a.(i) = prev then build (i - 1) prev acc
    else build (i - 1) a.(i) (a.(i) :: acc)
  in
  build i prev acc

let current_blockers t eid who mode_bit =
  let n =
    scratch_holders t eid who mode_bit t.hold_buf.(eid) 0 t.hold_len.(eid) 0
  in
  let n =
    if t.fair && not (is_upgrade t eid who) then
      let s = t.q_start.(eid) in
      scratch_queued t who mode_bit t.q_buf.(eid) s (s + t.q_len.(eid)) n
    else n
  in
  (* insertion sort + dedup on the scratch prefix; blocker sets are tiny *)
  let a = t.scratch in
  for i = 1 to n - 1 do
    insert_shift a (i - 1) a.(i)
  done;
  if n = 0 then [] else build_blockers a n (n - 1) min_int []

let rec index_grant_from t buf n who eid mode_bit i =
  if i >= n then buf_push t.held_buf t.held_len who ((eid lsl 1) lor mode_bit)
  else if buf.(i) lsr 1 = eid then buf.(i) <- (eid lsl 1) lor mode_bit
  else index_grant_from t buf n who eid mode_bit (i + 1)

let index_grant t who eid mode_bit =
  index_grant_from t t.held_buf.(who) t.held_len.(who) who eid mode_bit 0

let rec index_release_from t buf n who eid i =
  if i >= n then ()
  else if buf.(i) lsr 1 = eid then begin
    buf.(i) <- buf.(n - 1);
    t.held_len.(who) <- n - 1
  end
  else index_release_from t buf n who eid (i + 1)

let index_release t who eid =
  index_release_from t t.held_buf.(who) t.held_len.(who) who eid 0

let[@hot] grant t eid who mode_bit =
  let i = find_holding t eid who in
  if i >= 0 then t.hold_buf.(eid).(i) <- (who lsl 1) lor mode_bit
  else buf_push t.hold_buf t.hold_len eid ((who lsl 1) lor mode_bit);
  index_grant t who eid mode_bit

(* Entries whose holder set and queue both drained are dropped from the
   live set, so [n_entries] tracks only contended-or-held entities. *)
let gc_entry t eid =
  if t.live.(eid) && t.hold_len.(eid) = 0 && t.q_len.(eid) = 0 then begin
    t.live.(eid) <- false;
    t.q_start.(eid) <- 0;
    t.entries <- t.entries - 1
  end

let[@lint.allow "A1: amortized FIFO-window doubling; the enqueue itself writes in place"] queue_push t eid who mode_bit =
  let buf = t.q_buf.(eid) in
  let s = t.q_start.(eid) in
  let n = t.q_len.(eid) in
  if s + n >= Array.length buf && s > 0 then begin
    (* slide the FIFO window back to the base before growing *)
    Array.blit buf s buf 0 n;
    t.q_start.(eid) <- 0
  end;
  let s = t.q_start.(eid) in
  if s + n >= Array.length buf then begin
    let nbuf = Array.make (max 4 (2 * Array.length buf)) 0 in
    Array.blit buf s nbuf 0 n;
    t.q_buf.(eid) <- nbuf;
    t.q_start.(eid) <- 0
  end;
  let s = t.q_start.(eid) in
  t.q_buf.(eid).(s + n) <- (who lsl 1) lor mode_bit;
  t.q_len.(eid) <- n + 1

(* Remove the queued request at absolute position [p], preserving FIFO
   order of the rest. *)
let queue_remove_at t eid p =
  let s = t.q_start.(eid) in
  let n = t.q_len.(eid) in
  if p = s then t.q_start.(eid) <- s + 1
  else Array.blit t.q_buf.(eid) (p + 1) t.q_buf.(eid) p (s + n - p - 1);
  t.q_len.(eid) <- n - 1

type outcome = Granted | Blocked of txn list

let[@hot] request t who mode e =
  ensure_txn t who;
  if t.wait_eid.(who) >= 0 then
    invalid_arg "Lock_table.request: transaction is already waiting";
  t.requests <- t.requests + 1;
  let eid = Interner.intern t.ids e in
  ensure_eid t eid;
  if not t.live.(eid) then begin
    t.live.(eid) <- true;
    t.entries <- t.entries + 1
  end;
  let mode_bit = bit_of_mode mode in
  let hi = find_holding t eid who in
  (if hi >= 0 then
     (* held exclusively, or re-requesting the held shared mode: caller
        bug; a shared holder asking exclusive is the upgrade case *)
     if t.hold_buf.(eid).(hi) land 1 = 1 || mode_bit = 0 then
       invalid_arg "Lock_table.request: lock already held"
     else t.upgrades <- t.upgrades + 1);
  match current_blockers t eid who mode_bit with
  | [] ->
      grant t eid who mode_bit;
      Granted
  | blockers ->
      t.blocks <- t.blocks + 1;
      queue_push t eid who mode_bit;
      t.wait_eid.(who) <- eid;
      t.wait_mode.(who) <- mode_bit;
      (Blocked blockers
      [@lint.allow
        "A1: the blocked-path outcome carries its blocker list by design"])

(* Drain the queue after holders or the queue itself changed.

   Upgrade waiters are served first, whenever they are the sole holder.
   Then, under the fair discipline, grants proceed strictly from the head
   and stop at the first waiter that still conflicts with the holders;
   under the availability discipline, every waiter compatible with the
   holders is granted regardless of position. *)
let[@lint.allow "A1: runs only after a release or cancellation on a contended entity and returns the grant report the scheduler re-dispatches; the uncontended release path exits at the empty-queue check"] try_grants t eid =
  if t.q_len.(eid) = 0 then begin
    gc_entry t eid;
    []
  end
  else begin
    let granted = ref [] in
    let grant_waiter who mode_bit =
      grant t eid who mode_bit;
      t.wait_eid.(who) <- -1;
      granted := (who, mode_of_bit mode_bit) :: !granted
    in
    (* Pass 1: conversions. *)
    let rec upgrades_pass () =
      let s = t.q_start.(eid) in
      let rec find p =
        if p >= s + t.q_len.(eid) then -1
        else if sole_holder t eid (t.q_buf.(eid).(p) lsr 1) then p
        else find (p + 1)
      in
      let p = find s in
      if p >= 0 then begin
        let packed = t.q_buf.(eid).(p) in
        queue_remove_at t eid p;
        grant_waiter (packed lsr 1) (packed land 1);
        upgrades_pass ()
      end
    in
    upgrades_pass ();
    if t.fair then begin
      let continue = ref true in
      while !continue && t.q_len.(eid) > 0 do
        let packed = t.q_buf.(eid).(t.q_start.(eid)) in
        let w = packed lsr 1 in
        if
          (not (is_upgrade t eid w))
          && not (has_conflicting_holder t eid w (packed land 1))
        then begin
          queue_remove_at t eid t.q_start.(eid);
          grant_waiter w (packed land 1)
        end
        else continue := false
      done
    end
    else begin
      (* Grants mutate the holder set as the scan proceeds, exactly like
         the list version; survivors compact to the buffer base. *)
      let buf = t.q_buf.(eid) in
      let s = t.q_start.(eid) in
      let n = t.q_len.(eid) in
      let kept = ref 0 in
      for p = s to s + n - 1 do
        let packed = buf.(p) in
        let w = packed lsr 1 in
        let ok =
          if is_upgrade t eid w then sole_holder t eid w
          else not (has_conflicting_holder t eid w (packed land 1))
        in
        if ok then grant_waiter w (packed land 1)
        else begin
          buf.(!kept) <- packed;
          incr kept
        end
      done;
      t.q_start.(eid) <- 0;
      t.q_len.(eid) <- !kept
    end;
    gc_entry t eid;
    List.rev !granted
  end

let[@hot] release t who e =
  let fail () = invalid_arg "Lock_table.release: lock not held" in
  match Interner.find_opt t.ids e with
  | None -> fail ()
  | Some eid ->
      if eid >= Array.length t.live || not t.live.(eid) then fail ();
      ensure_txn t who;
      let i = find_holding t eid who in
      if i < 0 then fail ();
      let n = t.hold_len.(eid) in
      t.hold_buf.(eid).(i) <- t.hold_buf.(eid).(n - 1);
      t.hold_len.(eid) <- n - 1;
      index_release t who eid;
      try_grants t eid

let[@lint.allow "A1: cancellation happens only on rollback/timeout, off the steady-state grant path; returns the regrant report"] cancel_wait t who =
  ensure_txn t who;
  let eid = t.wait_eid.(who) in
  if eid < 0 then None
  else begin
    t.wait_eid.(who) <- -1;
    let e = Interner.name t.ids eid in
    if not t.live.(eid) then Some (e, [])
    else begin
      let s = t.q_start.(eid) in
      let rec find p =
        if p >= s + t.q_len.(eid) then -1
        else if t.q_buf.(eid).(p) lsr 1 = who then p
        else find (p + 1)
      in
      let p = find s in
      if p >= 0 then queue_remove_at t eid p;
      (* Removing a queued conflict may unblock those behind it. *)
      Some (e, try_grants t eid)
    end
  end

let held_by t txn =
  if txn < 0 || txn >= t.txn_cap then []
  else begin
    let buf = t.held_buf.(txn) in
    let rec collect i acc =
      if i < 0 then acc
      else
        let p = buf.(i) in
        collect (i - 1)
          ((Interner.name t.ids (p lsr 1), mode_of_bit (p land 1)) :: acc)
    in
    List.sort
      (fun (a, _) (b, _) -> Entity.compare a b)
      (collect (t.held_len.(txn) - 1) [])
  end

let n_held t txn = if txn < 0 || txn >= t.txn_cap then 0 else t.held_len.(txn)

let release_all t txn =
  let cancel_grants =
    match cancel_wait t txn with
    | Some (e, grants) -> List.map (fun (w, m) -> (w, m, e)) grants
    | None -> []
  in
  cancel_grants
  @ List.concat_map
      (fun (e, _) -> List.map (fun (w, m) -> (w, m, e)) (release t txn e))
      (held_by t txn)

let holders t e =
  match Interner.find_opt t.ids e with
  | None -> []
  | Some eid ->
      if eid >= Array.length t.live then []
      else begin
        let buf = t.hold_buf.(eid) in
        let rec collect i acc =
          if i < 0 then acc
          else
            let p = buf.(i) in
            collect (i - 1) ((p lsr 1, mode_of_bit (p land 1)) :: acc)
        in
        (* holders are pairwise distinct, so keying the sort on the id
           alone is a total order *)
        List.sort
          (fun (a, _) (b, _) -> Txn_id.compare a b)
          (collect (t.hold_len.(eid) - 1) [])
      end

let waiters t e =
  match Interner.find_opt t.ids e with
  | None -> []
  | Some eid ->
      if eid >= Array.length t.live then []
      else begin
        let buf = t.q_buf.(eid) in
        let s = t.q_start.(eid) in
        let rec collect i acc =
          if i < s then acc
          else
            let p = buf.(i) in
            collect (i - 1) ((p lsr 1, mode_of_bit (p land 1)) :: acc)
        in
        collect (s + t.q_len.(eid) - 1) []
      end

let has_waiters t e =
  match Interner.find_opt t.ids e with
  | None -> false
  | Some eid -> eid < Array.length t.live && t.q_len.(eid) > 0

let holds t txn e =
  if txn < 0 || txn >= t.txn_cap then None
  else
    match Interner.find_opt t.ids e with
    | None -> None
    | Some eid ->
        let buf = t.held_buf.(txn) in
        let n = t.held_len.(txn) in
        let rec go i =
          if i >= n then None
          else if buf.(i) lsr 1 = eid then Some (mode_of_bit (buf.(i) land 1))
          else go (i + 1)
        in
        go 0

let waiting_for t txn =
  if txn < 0 || txn >= t.txn_cap || t.wait_eid.(txn) < 0 then None
  else
    Some (Interner.name t.ids t.wait_eid.(txn), mode_of_bit t.wait_mode.(txn))

let blockers t txn =
  if txn < 0 || txn >= t.txn_cap || t.wait_eid.(txn) < 0 then []
  else current_blockers t t.wait_eid.(txn) txn t.wait_mode.(txn)

type conflict_kind = No_conflict | Type1 | Type2

let classify t txn mode e =
  match Interner.find_opt t.ids e with
  | None -> No_conflict
  | Some eid ->
      if
        eid >= Array.length t.live
        || not (has_conflicting_holder t eid txn (bit_of_mode mode))
      then No_conflict
      else
        (match mode with
        | Lock_mode.Shared -> Type1
        | Lock_mode.Exclusive -> Type2)

let n_requests t = t.requests
let n_blocks t = t.blocks
let n_upgrades t = t.upgrades
let n_entries t = t.entries
