(** The global database: a map from entity names to values.

    Per the paper's Section 4 model, a transaction's writes land in
    transaction-local copies; the *global value* of an entity "does not
    change until the transaction unlocks it". Consequently only two
    operations mutate the store: initial population and the final-value
    install performed at unlock/commit time. Rollback never touches the
    store — that invariant is what makes partial rollback cheap, and tests
    assert it. *)

type entity = string
(** Entity names; the paper's a, b, c ... or generated ["e0042"]. *)

(** Explicit comparisons for entity names. Replay-critical modules must
    compare entities through this module rather than the polymorphic
    primitives (static-analysis rule D2). *)
module Entity : sig
  type t = entity

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

type t

val create : unit -> t

val of_list : (entity * Value.t) list -> t

val define : t -> entity -> Value.t -> unit
(** Add (or reset) an entity. Used for schema population, not by
    transactions. *)

val mem : t -> entity -> bool

val get : t -> entity -> Value.t
(** Global value of an entity. @raise Not_found on undefined entities. *)

val find_opt : t -> entity -> Value.t option

val install : t -> entity -> Value.t -> unit
(** Commit-time publication of a final local value (the unlock step of the
    paper's model). @raise Not_found on undefined entities, because a
    transaction can only unlock what it locked and it can only have locked
    defined entities. *)

val entities : t -> entity list
(** Sorted. *)

val size : t -> int

val snapshot : t -> (entity * Value.t) list
(** Sorted association list of the full state, for tests and consistency
    checks. *)

val equal_state : t -> t -> bool

val install_count : t -> int
(** Number of [install] calls since creation — the experiment harness uses
    it to verify rollbacks never wrote the store. *)

(** Consistency constraints (Section 2's "set of consistent states"). *)
module Constraint : sig
  type store = t
  type t

  val make : name:string -> (store -> bool) -> t
  val name : t -> string
  val holds : t -> store -> bool

  val sum_preserved : name:string -> entity list -> expected:int -> t
  (** The classic bank-balances invariant: the listed entities' integer
      values sum to [expected]. *)

  val all_hold : t list -> store -> (unit, string list) result
  (** [Error names] lists the violated constraints. *)
end
