type entity = string

module Entity = struct
  type t = entity

  let equal = String.equal
  let compare = String.compare
  let hash = Hashtbl.hash
  let pp = Format.pp_print_string
end

type t = {
  table : (entity, Value.t) Hashtbl.t;
  mutable installs : int;
}

let create () = { table = Hashtbl.create 256; installs = 0 }

let define t e v = Hashtbl.replace t.table e v

let of_list bindings =
  let t = create () in
  List.iter (fun (e, v) -> define t e v) bindings;
  t

let mem t e = Hashtbl.mem t.table e

let get t e =
  match Hashtbl.find_opt t.table e with
  | Some v -> v
  | None -> raise Not_found

let find_opt t e = Hashtbl.find_opt t.table e

let[@lint.allow
     "A1: installs a final/committed value over an existing key — \
      Hashtbl.replace touches a bucket only on the replace path, once \
      per entity per transaction"] install t e v =
  if not (mem t e) then raise Not_found;
  Hashtbl.replace t.table e v;
  t.installs <- t.installs + 1

let entities t =
  Hashtbl.fold (fun e _ acc -> e :: acc) t.table []
  |> List.sort Entity.compare

let size t = Hashtbl.length t.table

let snapshot t = List.map (fun e -> (e, get t e)) (entities t)

(* Size check then single-pass membership lookup — no sorted snapshots.
   Equal sizes make the one-directional containment an equality. *)
let equal_state a b =
  size a = size b
  && (try
        Hashtbl.iter
          (fun e va ->
            match find_opt b e with
            | Some vb when Value.equal va vb -> ()
            | _ -> raise Exit)
          a.table;
        true
      with Exit -> false)

let install_count t = t.installs

module Constraint = struct
  type store = t
  type t = { name : string; check : store -> bool }

  let make ~name check = { name; check }
  let name t = t.name
  let holds t store = t.check store

  let sum_preserved ~name entities ~expected =
    make ~name (fun store ->
        let sum =
          List.fold_left
            (fun acc e ->
              match find_opt store e with
              | Some v -> acc + Value.as_int v
              | None -> acc)
            0 entities
        in
        sum = expected)

  let all_hold constraints store =
    match List.filter (fun c -> not (holds c store)) constraints with
    | [] -> Ok ()
    | bad -> Error (List.map name bad)
end
