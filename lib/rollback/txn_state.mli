(** The runtime of one executing transaction.

    A [Txn_state.t] holds everything the concurrency control needs to run,
    suspend, partially roll back and resume one transaction: the program
    counter, the lock records (one per lock state, in the paper's
    one-to-one correspondence with locked entities), the per-object version
    histories dictated by the rollback {!Strategy}, and the space/progress
    accounting the experiments report.

    The scheduler drives it through {!next_action} / {!lock_granted} /
    {!exec_data_op} / {!perform_unlock} / {!commit}; deadlock resolution
    uses {!rollback_target} / {!cost_to_release} / {!rollback_to}.

    Writes never touch the global store: exclusively locked entities are
    shadowed by a local history whose final value the scheduler installs
    at unlock or commit (paper Section 4's local-copy model), so rollback
    is purely local. *)

type t

type entity = Prb_storage.Store.entity
type var = Prb_txn.Expr.var

val create :
  ?copy_allocation:(string -> int) ->
  ?pool:History_stack.Pool.t ->
  strategy:Strategy.t ->
  id:int ->
  store:Prb_storage.Store.t ->
  Prb_txn.Program.t ->
  t
(** [copy_allocation] grants extra retained versions to individual
    objects on top of the strategy's uniform budget (keys are
    {!Prb_txn.Program.write_profile}'s ["G:entity"] / ["L:local"];
    default none; ignored under [Mcs]'s unbounded budget) — the
    non-uniform storage allocation of the paper's closing question,
    computed by {!Allocation}. [pool] recycles history-stack buffers
    across histories and transactions (see {!History_stack.Pool});
    schedulers share one pool across every transaction they run.
    @raise Invalid_argument when the program fails
    {!Prb_txn.Program.validate}. *)

val dispose : t -> unit
(** Return every remaining history buffer to the creation [pool] (no-op
    without one). Call when retiring the transaction, after its
    accounting has been read; the state must not be driven afterwards. *)

val id : t -> int
val program : t -> Prb_txn.Program.t
val strategy : t -> Strategy.t

type phase =
  | Growing  (** still issuing lock requests; may be rolled back *)
  | Shrinking  (** has unlocked; immune to rollback (paper Section 2) *)
  | Committed

val phase : t -> phase
val pp_phase : Format.formatter -> phase -> unit

val pc : t -> int
(** Program counter = state index at quiescent points: the paper's
    rollback cost [S_l - S_m] is a difference of these. *)

val lock_index : t -> int
(** Number of lock requests granted so far = the current lock state. *)

val finished : t -> bool

(** What the scheduler must do to advance this transaction one step. *)
type action =
  | Need_lock of Prb_txn.Lock_mode.t * entity
  | Need_unlock of entity
  | Data_step  (** a Read/Write/Assign; run it with {!exec_data_op} *)
  | At_end  (** program exhausted; {!commit} it *)

val next_action : t -> action

val lock_granted : t -> unit
(** The pending [Need_lock] was granted: record lock state [lock_index]
    (entity, mode, pc), shadow the entity with a history when exclusive,
    advance. @raise Invalid_argument if the current op is not a [Lock]. *)

val exec_data_op : t -> unit
(** Execute the [Read]/[Write]/[Assign] at [pc].
    @raise Invalid_argument on a lock-discipline op. *)

val perform_unlock : t -> entity * Prb_storage.Value.t option
(** Execute the [Unlock] at [pc]: leave the growing phase, drop the
    entity's shadow and return the final value the scheduler must install
    (None for shared locks). The scheduler releases the lock itself. *)

val commit : t -> (entity * Prb_storage.Value.t) list
(** Terminate at end of program: returns the final values of entities
    still held exclusively, for installation; the scheduler releases all
    remaining locks. Marks the transaction [Committed]. *)

(* Locks and views *)

val locks_held : t -> (entity * Prb_txn.Lock_mode.t * int) list
(** (entity, mode, lock state that acquired it), ascending by lock
    state. *)

val holds : t -> entity -> Prb_txn.Lock_mode.t option
val lock_state_of : t -> entity -> int option

val read_view : t -> entity -> Prb_storage.Value.t
(** The value the transaction currently sees for a held entity: its shadow
    copy when exclusive, the global value when shared.
    @raise Not_found if not held. *)

val local_value : t -> var -> Prb_storage.Value.t
(** Current value of a local variable. @raise Not_found if undeclared. *)

(* Rollback *)

val restart_target : int
(** The pseudo-target [-1]: a full restart (reset to pc 0, declared
    initial locals, re-execute everything). Always available; the
    remove-and-restart of [7,10]. Distinct from lock state 0, which keeps
    the pre-lock local computation — the distinction that makes Figure 1's
    costs (current state index − lock state index) come out exactly. *)

val well_defined : t -> int -> bool
(** Is lock state [q] (0 <= q <= lock_index) restorable for every live
    object under the current histories? (Under [Mcs] every state is;
    under a bounded budget, overwritten segments are not.) *)

val well_defined_states : t -> int list

val rollback_target : t -> entity -> int
(** The target the strategy would roll to in order to release the entity:
    {!restart_target} for [Total]; the entity's lock state for [Mcs]; the
    nearest well-defined state at or below it — falling back to
    {!restart_target} — for [Sdg]/[Sdg_k].
    @raise Invalid_argument if the entity is not held. *)

val cost_of_target : t -> int -> int
(** Progress lost by rolling to a target: [pc - pc_at_that_state] ([pc]
    itself for {!restart_target}). *)

val cost_to_release : t -> entity -> int
(** [cost_of_target t (rollback_target t entity)]. *)

val rollback_to : t -> int -> entity list
(** Perform the rollback of Section 2: restore locals and surviving
    shadows to their values at the target lock state (or restart, for
    {!restart_target}), discard newer history, reset [pc], and return the
    entities whose locks the scheduler must now release (those acquired
    at lock states [>= target]).
    @raise Invalid_argument when not [Growing], when the target exceeds
    the current lock state, or when a non-restart target is not
    well-defined. *)

(* Accounting *)

val total_executed : t -> int
(** Operations executed including re-execution after rollbacks — the
    "work" metric; [pc] is net progress. *)

val n_rollbacks : t -> int
val ops_lost : t -> int
(** Cumulative progress destroyed by rollbacks (Σ of pc drops). *)

val current_copies : t -> int
(** Local copies currently charged to this transaction (Theorem 3
    accounting): Σ over shadowed objects of retained versions + 1. *)

val peak_copies : t -> int

val monitored_writes : t -> int
(** Writes executed while a rollback could still occur (before the last
    lock request was granted) — the monitoring overhead a three-phase
    structure eliminates (paper Section 5). *)

val entry_order : t -> int
(** Tie-break identity for Theorem 2's partial order; equals {!id} (ids
    are assigned in admission order by the scheduler). *)

val pp : Format.formatter -> t -> unit
