(* Reference implementation of [History_stack], retained verbatim from
   the cons-list version so the qcheck differential properties in
   test_rollback can assert the arena-backed rewrite is observationally
   identical. Not used by any engine. *)

module Value = Prb_storage.Value

(* One retained version. The cell is mutable so that the write-coalescing
   fast path (two writes in the same lock segment) updates the value in
   place instead of re-allocating a cons and a pair per write — the MCS
   hot path allocates nothing once a segment has its cell. *)
type cell = { c_idx : int; mutable c_val : Value.t }

type t = {
  budget : int;
  created : int;
  initial : Value.t;
  mutable versions : cell list; (* newest first; lock indices strictly decreasing *)
  mutable n_versions : int;
  mutable damaged : (int * int) list; (* [lo, hi) ascending, disjoint, merged *)
  mutable peak : int;
}

let create ~budget ~created_at ~initial =
  if budget < 1 then invalid_arg "History_stack.create: budget < 1";
  {
    budget;
    created = created_at;
    initial;
    versions = [];
    n_versions = 0;
    damaged = [];
    peak = 1;
  }

let created_at t = t.created

let current t =
  match t.versions with [] -> t.initial | c :: _ -> c.c_val

let n_versions t = t.n_versions
let n_copies t = t.n_versions + 1
let peak_copies t = t.peak

let add_damage t lo hi =
  if lo < hi then begin
    (* Insert and merge; the list stays short (one interval per eviction,
       adjacent evictions merge). *)
    let merged =
      let rec insert = function
        | [] -> [ (lo, hi) ]
        | (a, b) :: rest ->
            if hi < a then (lo, hi) :: (a, b) :: rest
            else if b < lo then (a, b) :: insert rest
            else
              (* overlap or adjacency *)
              insert_merged (min a lo) (max b hi) rest
      and insert_merged a b = function
        | [] -> [ (a, b) ]
        | (c, d) :: rest ->
            if b < c then (a, b) :: (c, d) :: rest
            else insert_merged a (max b d) rest
      in
      insert t.damaged
    in
    t.damaged <- merged
  end

(* Evict the oldest retained version; the states it covered — from its own
   write index up to the next version's — become damaged. *)
let evict_oldest t =
  let rec split acc = function
    | [] -> assert false
    | [ last ] ->
        let upper =
          match acc with [] -> assert false | c :: _ -> c.c_idx
        in
        (List.rev acc, last.c_idx, upper)
    | x :: rest -> split (x :: acc) rest
  in
  let kept, lo, hi = split [] t.versions in
  t.versions <- kept;
  t.n_versions <- t.n_versions - 1;
  add_damage t lo hi

let write t ~lock_index value =
  (match t.versions with
  | c :: _ when lock_index < c.c_idx ->
      invalid_arg "History_stack.write: lock index went backwards"
  | _ -> ());
  (match t.versions with
  | c :: _ when c.c_idx = lock_index ->
      (* Same segment: only the final value of a segment is observable at
         any lock state, so coalesce — in place, no allocation. *)
      c.c_val <- value
  | _ ->
      t.versions <- { c_idx = lock_index; c_val = value } :: t.versions;
      t.n_versions <- t.n_versions + 1;
      if t.n_versions > t.budget then evict_oldest t);
  if t.n_versions + 1 > t.peak then t.peak <- t.n_versions + 1

let damaged t = t.damaged

let is_restorable t q =
  not (List.exists (fun (lo, hi) -> lo <= q && q < hi) t.damaged)

let value_at t q =
  if not (is_restorable t q) then None
  else
    let rec newest_at = function
      | [] -> t.initial
      | c :: rest -> if c.c_idx <= q then c.c_val else newest_at rest
    in
    Some (newest_at t.versions)

let truncate t q =
  if not (is_restorable t q) then
    invalid_arg "History_stack.truncate: target state is damaged";
  (* Versions are newest-first with strictly decreasing indices: the
     survivors are a suffix, shared as-is instead of rebuilt. *)
  let rec drop n = function
    | c :: rest when c.c_idx > q -> drop (n + 1) rest
    | kept -> (n, kept)
  in
  let dropped, kept = drop 0 t.versions in
  t.versions <- kept;
  t.n_versions <- t.n_versions - dropped;
  (* Damage intervals are ascending and disjoint, so those ending at or
     before [q] are a prefix. *)
  let rec keep = function
    | (lo, hi) :: rest when hi <= q -> (lo, hi) :: keep rest
    | _ -> []
  in
  t.damaged <- keep t.damaged

let pp ppf t =
  Fmt.pf ppf "@[<h>history(created=%d, current=%a, versions=[%a], damaged=[%a])@]"
    t.created Value.pp (current t)
    Fmt.(
      list ~sep:(any "; ") (fun ppf c ->
          pf ppf "%d:%a" c.c_idx Value.pp c.c_val))
    t.versions
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any ",") int int))
    t.damaged
