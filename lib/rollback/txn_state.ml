module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Entity = Prb_storage.Store.Entity
module Util = Prb_util.Util
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Lock_mode = Prb_txn.Lock_mode

type entity = Store.entity
type var = Expr.var

type phase = Growing | Shrinking | Committed

type lock_record = {
  lr_entity : entity;
  lr_mode : Lock_mode.t;
  lr_pc : int; (* position of the lock op = state index at this lock state *)
}

type t = {
  id : int;
  program : Program.t;
  strategy : Strategy.t;
  store : Store.t;
  budget : int;
  copy_alloc : (string -> int) option;
      (* [None] skips the per-object key construction entirely — the
         common case; the keys only exist for non-uniform allocation *)
  pool : History_stack.Pool.t option;
  n_locks : int; (* Program.n_locks, cached off the per-write path *)
  env_fun : var -> Value.t; (* one closure over [locals] for Expr.eval *)
  mutable pc : int;
  mutable lock_idx : int;
  mutable phase : phase;
  locals : (var, History_stack.t) Hashtbl.t;
  shadows : (entity, History_stack.t) Hashtbl.t; (* X-held entities *)
  mutable records : lock_record list; (* newest first; length = lock_idx *)
  mutable total_executed : int;
  mutable rollbacks : int;
  mutable ops_lost : int;
  mutable monitored_writes : int;
  mutable peak_copies : int;
  mutable live_copies : int;
      (* Σ over locals and shadows of History_stack.n_copies, maintained
         incrementally so the per-operation accounting is O(1) instead of
         re-summing every history on every step. *)
}

let object_budget budget copy_alloc prefix name =
  if budget = max_int then budget
  else
    match copy_alloc with
    | None -> budget
    | Some f -> budget + max 0 (f (prefix ^ name))

let acquire_stack pool ~budget ~created_at ~initial =
  match pool with
  | Some p -> History_stack.Pool.acquire p ~budget ~created_at ~initial
  | None -> History_stack.create ~budget ~created_at ~initial

let recycle_stack pool h =
  match pool with Some p -> History_stack.Pool.release p h | None -> ()

let create ?copy_allocation ?pool ~strategy ~id ~store program =
  (match Program.validate program with
  | Ok () -> ()
  | Error ((i, v) :: _) ->
      invalid_arg
        (Fmt.str "Txn_state.create: invalid program %s: op %d: %a"
           program.Program.name i Program.pp_violation v)
  | Error [] -> assert false);
  let budget = Strategy.version_budget strategy in
  let locals = Hashtbl.create 8 in
  List.iter
    (fun (v, init) ->
      Hashtbl.replace locals v
        (acquire_stack pool
           ~budget:(object_budget budget copy_allocation "L:" v)
           ~created_at:0 ~initial:init))
    program.Program.locals;
  let env_fun v =
    match Hashtbl.find_opt locals v with
    | Some h -> History_stack.current h
    | None -> raise Not_found
  in
  {
    id;
    program;
    strategy;
    store;
    budget;
    copy_alloc = copy_allocation;
    pool;
    n_locks = Program.n_locks program;
    env_fun;
    pc = 0;
    lock_idx = 0;
    phase = Growing;
    locals;
    shadows = Hashtbl.create 8;
    records = [];
    total_executed = 0;
    rollbacks = 0;
    ops_lost = 0;
    monitored_writes = 0;
    peak_copies = 0;
    live_copies = List.length program.Program.locals;
  }

let id t = t.id
let program t = t.program
let strategy t = t.strategy
let phase t = t.phase

let pp_phase ppf = function
  | Growing -> Fmt.string ppf "growing"
  | Shrinking -> Fmt.string ppf "shrinking"
  | Committed -> Fmt.string ppf "committed"

let pc t = t.pc
let lock_index t = t.lock_idx
let finished t = t.pc >= Program.length t.program

type action =
  | Need_lock of Lock_mode.t * entity
  | Need_unlock of entity
  | Data_step
  | At_end

let[@lint.allow
     "A1: the action variant is the dispatch API between transaction \
      state and scheduler — a short-lived two-word block per executed \
      op, retained nowhere"] next_action t =
  if finished t then At_end
  else
    match t.program.Program.ops.(t.pc) with
    | Program.Lock (m, e) -> Need_lock (m, e)
    | Program.Unlock e -> Need_unlock e
    | Program.Read _ | Program.Write _ | Program.Assign _ -> Data_step

let all_histories t =
  List.map snd (Util.sorted_bindings String.compare t.locals)
  @ List.map snd (Util.sorted_bindings Entity.compare t.shadows)

let current_copies t = t.live_copies

let note_copies t =
  if t.live_copies > t.peak_copies then t.peak_copies <- t.live_copies

let[@lint.allow
     "A1: a grant appends the lock record and, for exclusives, acquires \
      the pooled shadow stack — the retained-copy machinery the paper \
      charges per lock, not incidental allocation"] lock_granted t =
  (if finished t then
     invalid_arg "Txn_state.lock_granted: current op is not a lock request"
   else
     match t.program.Program.ops.(t.pc) with
     | Program.Lock (mode, e) ->
         t.records <-
           { lr_entity = e; lr_mode = mode; lr_pc = t.pc } :: t.records;
         if Lock_mode.equal mode Lock_mode.Exclusive then begin
           let budget = object_budget t.budget t.copy_alloc "G:" e in
           (match Hashtbl.find_opt t.shadows e with
           | Some old ->
               t.live_copies <- t.live_copies - History_stack.n_copies old;
               recycle_stack t.pool old
           | None -> ());
           Hashtbl.replace t.shadows e
             (acquire_stack t.pool ~budget ~created_at:t.lock_idx
                ~initial:(Store.get t.store e));
           t.live_copies <- t.live_copies + 1
         end;
         t.lock_idx <- t.lock_idx + 1;
         t.pc <- t.pc + 1;
         t.total_executed <- t.total_executed + 1
     | Program.Unlock _ | Program.Read _ | Program.Write _ | Program.Assign _
       ->
         invalid_arg "Txn_state.lock_granted: current op is not a lock request");
  note_copies t

let local_history t v =
  match Hashtbl.find_opt t.locals v with
  | Some h -> h
  | None -> raise Not_found

let local_value t v = History_stack.current (local_history t v)

let holds_record t e =
  List.find_opt (fun r -> String.equal r.lr_entity e) t.records

let holds t e = Option.map (fun r -> r.lr_mode) (holds_record t e)

let read_view t e =
  match Hashtbl.find_opt t.shadows e with
  | Some h -> History_stack.current h
  | None -> (
      match holds t e with
      | Some Lock_mode.Shared -> Store.get t.store e
      | Some Lock_mode.Exclusive -> assert false (* shadow must exist *)
      | None -> raise Not_found)

(* A write may add a version, coalesce in place, or trade a new version
   against an eviction; charge whatever the history's copy count actually
   did. *)
let counted_write t h value =
  let before = History_stack.n_copies h in
  History_stack.write h ~lock_index:t.lock_idx value;
  t.live_copies <- t.live_copies + History_stack.n_copies h - before

let write_local t v value =
  counted_write t (local_history t v) value;
  if t.lock_idx < t.n_locks then t.monitored_writes <- t.monitored_writes + 1

let write_entity t e value =
  match Hashtbl.find_opt t.shadows e with
  | Some h ->
      counted_write t h value;
      if t.lock_idx < t.n_locks then
        t.monitored_writes <- t.monitored_writes + 1
  | None -> invalid_arg "Txn_state: write to entity without exclusive shadow"

let[@lint.allow
     "A1: data ops evaluate expressions and produce the values they \
      write — value computation allocates its results by \
      design"] exec_data_op t =
  (if finished t then
     invalid_arg "Txn_state.exec_data_op: current op is not a data op"
   else
     match t.program.Program.ops.(t.pc) with
     | Program.Read (e, v) -> write_local t v (read_view t e)
     | Program.Write (e, x) -> write_entity t e (Expr.eval t.env_fun x)
     | Program.Assign (v, x) -> write_local t v (Expr.eval t.env_fun x)
     | Program.Lock _ | Program.Unlock _ ->
         invalid_arg "Txn_state.exec_data_op: current op is not a data op");
  t.pc <- t.pc + 1;
  t.total_executed <- t.total_executed + 1;
  note_copies t

let[@lint.allow
     "A1: retiring the shadow returns the final value for installation; \
      the (entity, option) pair is the API's return shape, once per \
      unlock"] perform_unlock t =
  let fail () =
    invalid_arg "Txn_state.perform_unlock: current op is not an unlock"
  in
  if finished t then fail ()
  else
    match t.program.Program.ops.(t.pc) with
    | Program.Unlock e ->
        let final =
          match Hashtbl.find_opt t.shadows e with
          | Some h ->
              Hashtbl.remove t.shadows e;
              t.live_copies <- t.live_copies - History_stack.n_copies h;
              let v = History_stack.current h in
              recycle_stack t.pool h;
              Some v
          | None -> None
        in
        t.phase <- Shrinking;
        t.pc <- t.pc + 1;
        t.total_executed <- t.total_executed + 1;
        (e, final)
    | Program.Lock _ | Program.Read _ | Program.Write _ | Program.Assign _ ->
        fail ()

let commit t =
  if not (finished t) then invalid_arg "Txn_state.commit: program not finished";
  let bindings = Util.sorted_bindings Entity.compare t.shadows in
  let finals = List.map (fun (e, h) -> (e, History_stack.current h)) bindings in
  List.iter
    (fun (_, h) ->
      t.live_copies <- t.live_copies - History_stack.n_copies h;
      recycle_stack t.pool h)
    bindings;
  Hashtbl.reset t.shadows;
  t.phase <- Committed;
  finals

let locks_held t =
  List.mapi (fun k r -> (r.lr_entity, r.lr_mode, k)) (List.rev t.records)

let lock_state_of t e =
  let rec scan k = function
    | [] -> None
    | r :: rest ->
        if String.equal r.lr_entity e then Some k else scan (k - 1) rest
  in
  scan (t.lock_idx - 1) t.records

(* Restorability sweeps probe many lock states against the same set of
   histories; [all_histories] (a sort of every binding) is hoisted out of
   the per-state loop. *)
let restorable_all hists q =
  List.for_all (fun h -> History_stack.is_restorable h q) hists

let well_defined t q =
  if q < 0 || q > t.lock_idx then false
  else restorable_all (all_histories t) q

let well_defined_states t =
  let hists = all_histories t in
  List.filter (restorable_all hists) (List.init (t.lock_idx + 1) Fun.id)

(* The pseudo-target [restart_target] (-1) is a full restart: reset to
   pc 0 with declared initial locals and re-execute everything, the
   remove-and-restart of [7,10]. It needs no stored copies and is always
   available. Lock state 0 is distinct: it keeps the pre-lock local
   computation (cost counted from the first lock request, matching
   Figure 1's state-index arithmetic). *)
let restart_target = -1

let rollback_target t e =
  match lock_state_of t e with
  | None -> invalid_arg "Txn_state.rollback_target: entity not held"
  | Some k -> (
      match t.strategy with
      | Strategy.Total -> restart_target
      | Strategy.Mcs -> k
      | Strategy.Sdg | Strategy.Sdg_k _ ->
          let hists = all_histories t in
          let rec best q =
            if q < 0 then restart_target
            else if restorable_all hists q then q
            else best (q - 1)
          in
          best k)

(* State index at a rollback target: the position of the q-th lock
   request ([records] is newest-first, so offset [lock_idx - 1 - q]), or
   0 for the restart pseudo-target, whose cost is the whole progress. *)
let pc_at_lock_state t q =
  if q = restart_target then 0
  else (List.nth t.records (t.lock_idx - 1 - q)).lr_pc

let cost_of_target t q = t.pc - pc_at_lock_state t q

let cost_to_release t e = cost_of_target t (rollback_target t e)

let reset_locals t =
  Util.iter_sorted String.compare
    (fun _ h -> recycle_stack t.pool h)
    t.locals;
  Hashtbl.reset t.locals;
  List.iter
    (fun (v, init) ->
      let budget = object_budget t.budget t.copy_alloc "L:" v in
      Hashtbl.replace t.locals v
        (acquire_stack t.pool ~budget ~created_at:0 ~initial:init))
    t.program.Program.locals

let rollback_to t target =
  if t.phase <> Growing then
    invalid_arg "Txn_state.rollback_to: transaction is not in growing phase";
  if target < restart_target || target > t.lock_idx then
    invalid_arg "Txn_state.rollback_to: target out of range";
  if target >= 0 && not (well_defined t target) then
    invalid_arg "Txn_state.rollback_to: target state is not well-defined";
  let old_pc = t.pc in
  let released = List.map (fun r -> r.lr_entity) t.records in
  let released =
    if target = restart_target then begin
      (* Full restart: locals are rebuilt from declared initials and the
         whole program, pre-lock prefix included, re-executes. *)
      reset_locals t;
      Util.iter_sorted Entity.compare
        (fun _ h -> recycle_stack t.pool h)
        t.shadows;
      Hashtbl.reset t.shadows;
      t.live_copies <- List.length t.program.Program.locals;
      t.records <- [];
      t.lock_idx <- 0;
      t.pc <- 0;
      released
    end
    else begin
      (* Lock records for lock states >= target are undone. [records] is
         newest-first: the first [lock_idx - target] entries. *)
      let n_undone = t.lock_idx - target in
      let rec split acc k records =
        if k = 0 then (List.rev acc, records)
        else
          match records with
          | [] -> assert false
          | r :: rest -> split (r :: acc) (k - 1) rest
      in
      let undone, kept = split [] n_undone t.records in
      List.iter
        (fun r ->
          match Hashtbl.find_opt t.shadows r.lr_entity with
          | Some h ->
              t.live_copies <- t.live_copies - History_stack.n_copies h;
              Hashtbl.remove t.shadows r.lr_entity;
              recycle_stack t.pool h
          | None -> ())
        undone;
      let counted_truncate _ h =
        let before = History_stack.n_copies h in
        History_stack.truncate h target;
        t.live_copies <- t.live_copies + History_stack.n_copies h - before
      in
      Util.iter_sorted String.compare counted_truncate t.locals;
      Util.iter_sorted Entity.compare counted_truncate t.shadows;
      t.records <- kept;
      t.lock_idx <- target;
      (* The oldest undone record is the lock request at state [target]:
         execution resumes by re-issuing that request. *)
      (match undone with
      | [] -> () (* target = current lock state: nothing to undo *)
      | _ -> t.pc <- (List.nth undone (n_undone - 1)).lr_pc);
      List.map (fun r -> r.lr_entity) undone
    end
  in
  t.rollbacks <- t.rollbacks + 1;
  t.ops_lost <- t.ops_lost + (old_pc - t.pc);
  released

(* Hand every remaining history back to the pool when the scheduler
   retires the transaction (after its accounting has been read). The
   state must not be driven afterwards. *)
let dispose t =
  Util.iter_sorted String.compare
    (fun _ h -> recycle_stack t.pool h)
    t.locals;
  Util.iter_sorted Entity.compare
    (fun _ h -> recycle_stack t.pool h)
    t.shadows;
  Hashtbl.reset t.locals;
  Hashtbl.reset t.shadows;
  t.live_copies <- 0

let total_executed t = t.total_executed
let n_rollbacks t = t.rollbacks
let ops_lost t = t.ops_lost
let peak_copies t = max t.peak_copies (current_copies t)
let monitored_writes t = t.monitored_writes
let entry_order t = t.id

let pp ppf t =
  Fmt.pf ppf
    "@[<h>T%d[%s pc=%d lock_idx=%d %a locks={%a} copies=%d rollbacks=%d]@]"
    t.id t.program.Program.name t.pc t.lock_idx pp_phase t.phase
    Fmt.(list ~sep:(any ", ") (fun ppf (e, m, k) ->
             pf ppf "%s:%a@@%d" e Lock_mode.pp m k))
    (locks_held t) (current_copies t) t.rollbacks
