module Program = Prb_txn.Program
module Ugraph = Prb_graph.Ugraph

let spans program =
  (* (first segment, last segment, all segments) per object written in >= 2
     distinct segments. *)
  List.filter_map
    (fun (_, segments) ->
      match segments with
      | [] -> None
      | first :: _ ->
          let last = List.fold_left max first segments in
          if last > first then Some (first, last, segments) else None)
    (Program.write_profile program)

let of_program program =
  let n = Program.n_locks program in
  let g = Ugraph.create () in
  for q = 0 to n do
    Ugraph.add_vertex g q
  done;
  for q = 0 to n - 1 do
    Ugraph.add_edge g q (q + 1)
  done;
  List.iter
    (fun (first, _, segments) ->
      let u = first - 1 in
      List.iter
        (fun w -> if w > first then Ugraph.add_edge g u w)
        segments)
    (spans program);
  g

let damage_intervals program =
  let intervals =
    List.map (fun (first, last, _) -> (first, last)) (spans program)
    |> List.sort (fun (a, b) (c, d) ->
           match Int.compare a c with 0 -> Int.compare b d | n -> n)
  in
  let rec merge = function
    | (a, b) :: (c, d) :: rest when c <= b -> merge ((a, max b d) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge intervals

let well_defined_states program =
  let n = Program.n_locks program in
  let damaged = damage_intervals program in
  (* State 0 is always reachable: rolling back to the first lock request is
     a restart, re-executing the (purely local, deterministic) pre-lock
     prefix — no stored copy is needed. *)
  let ok q = q = 0 || not (List.exists (fun (lo, hi) -> lo <= q && q < hi) damaged) in
  List.filter ok (List.init (n + 1) Fun.id)

let well_defined_via_articulation program =
  let n = Program.n_locks program in
  if n = 0 then [ 0 ]
  else
    let g = of_program program in
    let cuts = Ugraph.articulation_points g in
    let interior = List.filter (fun q -> q > 0 && q < n) cuts in
    List.sort_uniq Int.compare (0 :: n :: interior)

let to_dot program =
  let n = Program.n_locks program in
  let wd = well_defined_states program in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "graph sdg {\n  rankdir=LR;\n";
  for q = 0 to n do
    Buffer.add_string buf
      (Printf.sprintf "  s%d [label=\"%d\"%s];\n" q q
         (if List.mem q wd then ", shape=doublecircle" else ", shape=circle"))
  done;
  for q = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "  s%d -- s%d;\n" q (q + 1))
  done;
  List.iter
    (fun (obj, segments) ->
      match segments with
      | [] -> ()
      | first :: _ ->
          List.iter
            (fun w ->
              if w > first then
                Buffer.add_string buf
                  (Printf.sprintf "  s%d -- s%d [style=dashed, label=%S];\n"
                     (first - 1) w obj))
            segments)
    (Program.write_profile program);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let rollback_overshoot program entity =
  match Program.lock_state_of_entity program entity with
  | None -> None
  | Some k ->
      let ok = well_defined_states program in
      let best =
        List.fold_left (fun acc q -> if q <= k then max acc q else acc) 0 ok
      in
      Some (k - best)
