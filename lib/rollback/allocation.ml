module Program = Prb_txn.Program

type t = (string * int) list

let lookup alloc key =
  match List.assoc_opt key alloc with Some e -> e | None -> 0

(* Distinct write segments per object, ascending. *)
let segments program =
  List.filter_map
    (fun (key, raw) ->
      match List.sort_uniq Int.compare raw with
      | [] | [ _ ] -> None (* single-segment writers cause no damage *)
      | segs -> Some (key, segs))
    (Program.write_profile program)

let chunks program =
  List.map
    (fun (key, segs) ->
      (* segs = s_1 < ... < s_m; the j-th extra copy frees
         [s_{m-j}, s_{m-j+1}), newest chunk first. *)
      let arr = Array.of_list segs in
      let m = Array.length arr in
      let cs = List.init (m - 1) (fun j -> (arr.(m - 1 - j - 1), arr.(m - 1 - j))) in
      (key, cs))
    (segments program)

let damage_with program ~allocation =
  List.filter_map
    (fun (key, segs) ->
      let arr = Array.of_list segs in
      let m = Array.length arr in
      let e = min (max 0 (allocation key)) (m - 1) in
      let hi = arr.(m - 1 - e) in
      let lo = arr.(0) in
      if lo < hi then Some (lo, hi) else None)
    (segments program)

let well_defined_with program ~allocation =
  let n = Program.n_locks program in
  let damaged = damage_with program ~allocation in
  let ok q =
    q = 0 || not (List.exists (fun (lo, hi) -> lo <= q && q < hi) damaged)
  in
  List.filter ok (List.init (n + 1) Fun.id)

let count_wd program allocation =
  List.length (well_defined_with program ~allocation:(lookup allocation))

let gain program alloc = count_wd program alloc - count_wd program []

let normalize alloc =
  (* one entry per object key, so sorting on the key is a total order *)
  List.filter (fun (_, e) -> e > 0) alloc
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let greedy program ~budget =
  let all_chunks = chunks program in
  let rec spend remaining alloc =
    if remaining = 0 then alloc
    else
      let base = count_wd program alloc in
      let candidates =
        List.filter_map
          (fun (key, cs) ->
            let taken = lookup alloc key in
            if taken >= List.length cs then None
            else
              let alloc' = (key, taken + 1) :: List.remove_assoc key alloc in
              let g = count_wd program alloc' - base in
              if g > 0 then Some (key, alloc', g) else None)
          all_chunks
      in
      match candidates with
      | [] -> alloc (* no chunk helps: stop early *)
      | _ ->
          let best =
            List.fold_left
              (fun acc (key, alloc', g) ->
                match acc with
                | None -> Some (key, alloc', g)
                | Some (bk, _, bg) as keep ->
                    if g > bg || (g = bg && key < bk) then Some (key, alloc', g)
                    else keep)
              None candidates
          in
          (match best with
          | Some (_, alloc', _) -> spend (remaining - 1) alloc'
          | None -> alloc)
  in
  normalize (spend (max 0 budget) [])

let exact program ~budget =
  let objs = chunks program in
  (* enumerate every distribution of [0..budget] copies over the objects,
     capped per object at its chunk count *)
  let best = ref ([], count_wd program [], 0) in
  let consider alloc spent =
    let wd = count_wd program alloc in
    let _, best_wd, best_spent = !best in
    if
      wd > best_wd
      || (wd = best_wd && spent < best_spent)
      || (wd = best_wd && spent = best_spent
          && normalize alloc < (let a, _, _ = !best in a))
    then best := (normalize alloc, wd, spent)
  in
  let rec enumerate objs remaining alloc spent =
    consider alloc spent;
    match objs with
    | [] -> ()
    | (key, cs) :: rest ->
        let cap = min remaining (List.length cs) in
        for e = 0 to cap do
          enumerate rest (remaining - e)
            (if e = 0 then alloc else (key, e) :: alloc)
            (spent + e)
        done
  in
  enumerate objs (max 0 budget) [] 0;
  let a, _, _ = !best in
  a
