module Value = Prb_storage.Value

(* Arena-backed representation: the retained versions live in a pair of
   parallel growable arrays (lock indices / values), oldest at [start],
   newest at [start + len - 1], indices strictly increasing. The
   write-coalescing fast path (two writes in the same lock segment)
   stores in place; appending past capacity first compacts the window to
   the array base, then doubles — so a bounded-budget history reuses the
   same buffers for its whole life, and a {!Pool} recycles those buffers
   across histories (grant/release churn allocates nothing in steady
   state). *)
type t = {
  mutable budget : int;
  mutable created : int;
  mutable initial : Value.t;
  mutable idxs : int array;
  mutable vals : Value.t array;
  mutable start : int;
  mutable len : int;
  mutable damaged : (int * int) list; (* [lo, hi) ascending, disjoint, merged *)
  mutable peak : int;
}

let create ~budget ~created_at ~initial =
  if budget < 1 then invalid_arg "History_stack.create: budget < 1";
  {
    budget;
    created = created_at;
    initial;
    idxs = [||];
    vals = [||];
    start = 0;
    len = 0;
    damaged = [];
    peak = 1;
  }

let created_at t = t.created

let current t =
  if t.len = 0 then t.initial else t.vals.(t.start + t.len - 1)

let n_versions t = t.len
let n_copies t = t.len + 1
let peak_copies t = t.peak

let[@lint.allow
     "A1: runs only when the bounded budget evicts a version; merging \
      the damaged-interval list is off the within-budget coalescing \
      path"] add_damage t lo hi =
  if lo < hi then begin
    (* Insert and merge; the list stays short (one interval per eviction,
       adjacent evictions merge). *)
    let merged =
      let rec insert = function
        | [] -> [ (lo, hi) ]
        | (a, b) :: rest ->
            if hi < a then (lo, hi) :: (a, b) :: rest
            else if b < lo then (a, b) :: insert rest
            else
              (* overlap or adjacency *)
              insert_merged (min a lo) (max b hi) rest
      and insert_merged a b = function
        | [] -> [ (a, b) ]
        | (c, d) :: rest ->
            if b < c then (a, b) :: (c, d) :: rest
            else insert_merged a (max b d) rest
      in
      insert t.damaged
    in
    t.damaged <- merged
  end

(* Evict the oldest retained version; the states it covered — from its own
   write index up to the next version's — become damaged. *)
let evict_oldest t =
  assert (t.len >= 2);
  let lo = t.idxs.(t.start) and hi = t.idxs.(t.start + 1) in
  t.start <- t.start + 1;
  t.len <- t.len - 1;
  add_damage t lo hi

let[@lint.allow
     "A1: amortized geometric growth — compaction reuses the buffers in \
      place and doubling happens only past capacity, never in steady \
      state"] append t lock_index value =
  let cap = Array.length t.idxs in
  if t.start + t.len >= cap then begin
    if t.start > 0 then begin
      (* slide the window back to the base; buffers are reused in place *)
      Array.blit t.idxs t.start t.idxs 0 t.len;
      Array.blit t.vals t.start t.vals 0 t.len;
      t.start <- 0
    end;
    if t.len >= Array.length t.idxs then begin
      let ncap = max 4 (2 * Array.length t.idxs) in
      let ni = Array.make ncap 0 in
      let nv = Array.make ncap t.initial in
      Array.blit t.idxs 0 ni 0 t.len;
      Array.blit t.vals 0 nv 0 t.len;
      t.idxs <- ni;
      t.vals <- nv
    end
  end;
  t.idxs.(t.start + t.len) <- lock_index;
  t.vals.(t.start + t.len) <- value;
  t.len <- t.len + 1

let[@hot] write t ~lock_index value =
  if t.len > 0 && lock_index < t.idxs.(t.start + t.len - 1) then
    invalid_arg "History_stack.write: lock index went backwards";
  if t.len > 0 && t.idxs.(t.start + t.len - 1) = lock_index then
    (* Same segment: only the final value of a segment is observable at
       any lock state, so coalesce — in place, no allocation. *)
    t.vals.(t.start + t.len - 1) <- value
  else begin
    append t lock_index value;
    if t.len > t.budget then evict_oldest t
  end;
  if t.len + 1 > t.peak then t.peak <- t.len + 1

let damaged t = t.damaged

let is_restorable t q =
  not (List.exists (fun (lo, hi) -> lo <= q && q < hi) t.damaged)

let value_at t q =
  if not (is_restorable t q) then None
  else begin
    (* newest version written at or before [q], else the initial *)
    let rec newest_at i =
      if i < t.start then t.initial
      else if t.idxs.(i) <= q then t.vals.(i)
      else newest_at (i - 1)
    in
    Some (newest_at (t.start + t.len - 1))
  end

let truncate t q =
  if not (is_restorable t q) then
    invalid_arg "History_stack.truncate: target state is damaged";
  (* Indices are strictly increasing: the survivors are a prefix of the
     window, kept in place. *)
  while t.len > 0 && t.idxs.(t.start + t.len - 1) > q do
    t.len <- t.len - 1
  done;
  (* Damage intervals are ascending and disjoint, so those ending at or
     before [q] are a prefix. *)
  let rec keep = function
    | (lo, hi) :: rest when hi <= q -> (lo, hi) :: keep rest
    | _ -> []
  in
  t.damaged <- keep t.damaged

let pp ppf t =
  let versions =
    let rec collect i acc =
      if i < t.start then acc
      else collect (i - 1) ((t.idxs.(i), t.vals.(i)) :: acc)
    in
    (* newest first, matching the original cons-list rendering *)
    List.rev (collect (t.start + t.len - 1) [])
  in
  Fmt.pf ppf "@[<h>history(created=%d, current=%a, versions=[%a], damaged=[%a])@]"
    t.created Value.pp (current t)
    Fmt.(
      list ~sep:(any "; ") (fun ppf (i, v) -> pf ppf "%d:%a" i Value.pp v))
    versions
    Fmt.(list ~sep:(any "; ") (pair ~sep:(any ",") int int))
    t.damaged

module Pool = struct
  type stack = t

  let create_stack = create

  type t = { mutable free : stack list; mutable pooled : int }

  let create () = { free = []; pooled = 0 }

  let reset s ~budget ~created_at ~initial =
    if budget < 1 then invalid_arg "History_stack.Pool.acquire: budget < 1";
    s.budget <- budget;
    s.created <- created_at;
    s.initial <- initial;
    s.start <- 0;
    s.len <- 0;
    s.damaged <- [];
    s.peak <- 1;
    (* Drop references to the previous owner's values so recycling never
       retains (or leaks into observation — see the contamination test)
       another history's data. *)
    Array.fill s.vals 0 (Array.length s.vals) initial;
    s

  let acquire t ~budget ~created_at ~initial =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        t.pooled <- t.pooled - 1;
        reset s ~budget ~created_at ~initial
    | [] -> create_stack ~budget ~created_at ~initial

  let release t s =
    t.free <- s :: t.free;
    t.pooled <- t.pooled + 1

  let n_pooled t = t.pooled
end
