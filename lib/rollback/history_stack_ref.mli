(** Reference implementation of {!History_stack} (the original cons-list
    representation), retained for differential testing only.

    Per-object version history — the unified mechanism behind all four
    rollback strategies.

    One history tracks one object: a global entity the transaction holds
    exclusively, or one of its local variables. It records the values the
    object assumed, keyed by the lock segment ([lock index]) of the write
    that produced them, exactly like the stacks of the paper's multi-lock
    copy strategy (Section 4). A {e retention budget} bounds how many
    versions are kept; when a push would exceed it, the oldest non-live
    version is evicted and the lock states it covered become {e damaged} —
    non-restorable — which is precisely the information the paper encodes
    in the state-dependency graph.

    Conventions (DESIGN.md Section 4): lock state [L_q] is the state just
    before the q-th lock request; an operation's lock index is the number
    of lock requests before it, so a version written at lock index [w]
    covers [L_q] for [q >= w] until the next version supersedes it. The
    [initial] value (the entity's global value at lock time, or a local's
    value at history creation) covers every state before the first write
    and is never evicted — the database itself stores it, so it costs no
    extra copy. *)

type t

val create :
  budget:int -> created_at:int -> initial:Prb_storage.Value.t -> t
(** [budget >= 1] is the maximum number of retained versions (the live
    copy counts); [created_at] is the lock index at history creation (the
    entity's lock request index, or 0 for locals).
    @raise Invalid_argument if [budget < 1]. *)

val created_at : t -> int

val current : t -> Prb_storage.Value.t
(** The live local copy: the newest version, or the initial value when the
    object was never written. *)

val write : t -> lock_index:int -> Prb_storage.Value.t -> unit
(** Record a write performed in the given lock segment. Two writes in the
    same segment coalesce (only the segment's final value can be seen by
    any lock state). May evict under budget pressure, extending the damage
    set. @raise Invalid_argument if [lock_index] decreases. *)

val n_versions : t -> int
(** Currently retained versions (0 when never written). *)

val n_copies : t -> int
(** Local copies charged to this object in the paper's space accounting:
    retained versions plus one for the saved initial. *)

val peak_copies : t -> int
(** High-water mark of {!n_copies}. *)

val damaged : t -> (int * int) list
(** Damaged lock-state intervals [[lo, hi)], disjoint, ascending, merged:
    [L_q] with [lo <= q < hi] cannot be restored for this object. Empty
    under an [Mcs]-sized budget. *)

val is_restorable : t -> int -> bool
(** Can this object's value at [L_q] be reproduced? False iff [q] lies in
    a damaged interval. *)

val value_at : t -> int -> Prb_storage.Value.t option
(** The object's value at lock state [L_q]; [None] when damaged. *)

val truncate : t -> int -> unit
(** Roll the history back to lock state [q]: discard versions written at
    lock index [> q] and damage intervals lying beyond [q]. The caller
    guarantees [q] is restorable (checked: @raise Invalid_argument
    otherwise). After truncation {!current} equals the value at [L_q]. *)

val pp : Format.formatter -> t -> unit
