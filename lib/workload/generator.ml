module Rng = Prb_util.Rng
module Zipf = Prb_util.Zipf
module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr

type params = {
  n_entities : int;
  min_locks : int;
  max_locks : int;
  read_fraction : float;
  zipf_theta : float;
  min_writes : int;
  max_writes : int;
  clustering : float;
  compute_ops : int;
  three_phase : bool;
  explicit_unlocks : bool;
}

let default_params =
  {
    n_entities = 64;
    min_locks = 3;
    max_locks = 6;
    read_fraction = 0.3;
    zipf_theta = 0.6;
    min_writes = 1;
    max_writes = 2;
    clustering = 0.5;
    compute_ops = 1;
    three_phase = false;
    explicit_unlocks = true;
  }

let entity_name i = Printf.sprintf "e%04d" i

let populate params =
  let store = Store.create () in
  for i = 0 to params.n_entities - 1 do
    Store.define store (entity_name i)
      (Value.mix (Value.int (i + 1)))
  done;
  store

(* One register per lock state: a register is written only in its own
   segment (the read and the computes coalesce there), so local variables
   never damage lock states and the clustering / three-phase knobs
   measure entity-write structure alone. *)
let reg i = Printf.sprintf "r%d" i

(* Draw [k] distinct entities under the skew distribution. *)
let draw_entities zipf rng k =
  let seen = Hashtbl.create 8 in
  let rec draw acc remaining guard =
    if remaining = 0 then List.rev acc
    else if guard > 10_000 then
      (* Pathological skew: fall back to a linear scan for fresh ranks. *)
      let rec fresh i =
        if Hashtbl.mem seen i then fresh (i + 1) else i
      in
      let i = fresh 0 in
      Hashtbl.replace seen i ();
      draw (i :: acc) (remaining - 1) 0
    else
      let i = Zipf.sample zipf rng in
      if Hashtbl.mem seen i then draw acc remaining (guard + 1)
      else begin
        Hashtbl.replace seen i ();
        draw (i :: acc) (remaining - 1) 0
      end
  in
  draw [] k 0

let generate_one ?zipf params rng ~name =
  if params.min_locks < 1 || params.max_locks < params.min_locks then
    invalid_arg "Generator: bad lock bounds";
  if params.max_locks > params.n_entities then
    invalid_arg "Generator: more locks than entities";
  (* The sampler's rank table is O(n_entities) floats and deterministic in
     [params]; callers generating many programs pass one shared table
     instead of paying that allocation per transaction. *)
  let zipf =
    match zipf with
    | Some z -> z
    | None -> Zipf.make ~n:params.n_entities ~theta:params.zipf_theta
  in
  let k =
    Rng.int_in rng params.min_locks (min params.max_locks params.n_entities)
  in
  let ranks = draw_entities zipf rng k in
  let entities = List.map entity_name ranks in
  let modes =
    List.map
      (fun _ ->
        if Rng.chance rng params.read_fraction then Prb_txn.Lock_mode.Shared
        else Prb_txn.Lock_mode.Exclusive)
      entities
  in
  (* Plan writes: entity locked at lock state [i] may be written in
     segments [i+1 .. k]; clustering biases towards [i+1]. *)
  let planned : (int, Program.op list ref) Hashtbl.t = Hashtbl.create 8 in
  let plan segment op =
    match Hashtbl.find_opt planned segment with
    | Some l -> l := op :: !l
    | None -> Hashtbl.replace planned segment (ref [ op ])
  in
  List.iteri
    (fun i (e, mode) ->
      if Prb_txn.Lock_mode.equal mode Prb_txn.Lock_mode.Exclusive then begin
        let n_writes = Rng.int_in rng params.min_writes params.max_writes in
        for _ = 1 to n_writes do
          let segment =
            if params.three_phase then k
              (* acquire/update/release: all updates after the last lock *)
            else if Rng.chance rng params.clustering then i + 1
            else Rng.int_in rng (i + 1) k
          in
          let expr =
            Expr.Add
              (Expr.Mix (Expr.Var (reg i)), Expr.Const (Value.int (Rng.int rng 1000)))
          in
          plan segment (Program.write e expr)
        done
      end)
    (List.combine entities modes);
  (* Assemble: lock i, then segment i+1 = read + compute + planned writes. *)
  let ops = ref [] in
  let emit op = ops := op :: !ops in
  List.iteri
    (fun i (e, mode) ->
      emit (Program.Lock (mode, e));
      emit (Program.read e (reg i));
      let prev = reg (max 0 (i - 1)) in
      for _ = 1 to params.compute_ops do
        emit
          (Program.assign (reg i)
             (Expr.Add (Expr.Mix (Expr.Var (reg i)), Expr.Var prev)))
      done;
      match Hashtbl.find_opt planned (i + 1) with
      | Some l -> List.iter emit (List.rev !l)
      | None -> ())
    (List.combine entities modes);
  if params.explicit_unlocks then List.iter (fun e -> emit (Program.unlock e)) entities;
  let locals = List.init k (fun i -> (reg i, Value.int 0)) in
  let program = Program.make ~name ~locals (List.rev !ops) in
  (match Program.validate program with
  | Ok () -> ()
  | Error ((i, v) :: _) ->
      invalid_arg
        (Fmt.str "Generator: produced invalid program (op %d: %a)" i
           Program.pp_violation v)
  | Error [] -> assert false);
  program

let generate params ~seed ~n =
  let rng = Rng.make seed in
  let zipf = Zipf.make ~n:params.n_entities ~theta:params.zipf_theta in
  List.init n (fun i ->
      generate_one ~zipf params (Rng.split rng) ~name:(Printf.sprintf "w%04d" i))
