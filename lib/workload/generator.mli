(** Synthetic workload generation.

    The paper's motivation is rising concurrency making deadlocks common;
    its evaluation artefacts are worked examples plus structural claims.
    To quantify those claims we need a workload whose contention knobs we
    control. This generator produces valid two-phase transaction programs
    parameterised by the levers the paper discusses:

    - database size and Zipf skew (contention),
    - transaction length (locks per transaction),
    - shared-lock fraction (Section 3.2's harder optimisation problem),
    - writes per entity and {e write clustering} (Section 5 / Figure 5),
    - three-phase restructuring (Section 5's acquire/update/release).

    Everything is deterministic in the seed. *)

type params = {
  n_entities : int;  (** database size *)
  min_locks : int;
  max_locks : int;  (** locks per transaction, uniform *)
  read_fraction : float;  (** probability a lock is shared *)
  zipf_theta : float;  (** access skew; 0 = uniform *)
  min_writes : int;
  max_writes : int;  (** writes per exclusively locked entity *)
  clustering : float;
      (** probability that a write lands in its entity's first usable
          segment (right after the lock) rather than a uniformly random
          later segment; 1.0 reproduces Figure 5's clustered structure *)
  compute_ops : int;  (** local assignments per segment (pure work) *)
  three_phase : bool;
      (** place every write after the last lock request
          (acquire/update/release structure, Section 5) *)
  explicit_unlocks : bool;
      (** emit unlock operations (otherwise locks release at commit) *)
}

val default_params : params
(** 64 entities, 3–6 locks, 30% shared, theta 0.6, 1–2 writes, clustering
    0.5, 1 compute op, no restructuring, explicit unlocks. *)

val entity_name : int -> string
(** ["e0042"]-style names used by {!populate} and the generator. *)

val populate : params -> Prb_storage.Store.t
(** A store holding entities [e0000 .. e(n-1)], each initialised to a
    deterministic value. *)

val generate_one :
  ?zipf:Prb_util.Zipf.t -> params -> Prb_util.Rng.t -> name:string ->
  Prb_txn.Program.t
(** One valid program drawn from the distribution. [zipf] supplies a
    pre-built sampler for [n_entities]/[zipf_theta] — the table is
    deterministic in the params, so sharing it across calls changes
    nothing but the allocation bill; omitted, a fresh one is built. *)

val generate : params -> seed:int -> n:int -> Prb_txn.Program.t list
(** [n] programs named ["w0000" ...], deterministic in [seed]. Every
    program passes {!Prb_txn.Program.validate} (asserted). *)
