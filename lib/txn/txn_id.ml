type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Fun.id
let pp ppf id = Fmt.pf ppf "T%d" id
