(** Transaction identifiers.

    Ids are assigned densely by the schedulers in submission order, which
    doubles as the timestamp for age-based policies (wound-wait,
    wait-die, youngest-victim). The representation is an [int], but
    comparison sites must use this module's [equal]/[compare] rather than
    the polymorphic primitives — the static analyzer (rule D2) rejects
    polymorphic compare in replay-critical modules so that id ordering is
    explicit and survives a future change of representation. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Renders as ["T42"]. *)
