(** The E13 scaling benchmark: a reproducible throughput sweep over
    transaction count × contention on both engines, reported as a table
    and as machine-readable JSON ([BENCH_scale.json]) so successive PRs
    accumulate a performance trajectory.

    Shared by [bench/main.exe -- E13] and [prb bench]. Simulation
    outcomes (commits, deadlocks, ticks) are deterministic in the baked
    seed; wall-clock, detection-share and allocation figures are
    machine-dependent by nature. *)

type point = {
  engine : string;  (** ["central"] or ["distrib"] *)
  txns : int;
  contention : string;  (** ["low"] or ["high"] *)
  entities : int;
  theta : float;
  mpl : int;
  commits : int;
  ticks : int;
  deadlocks : int;
  rollbacks : int;
  wall_seconds : float;
  commits_per_sec : float;  (** throughput, commits per wall-clock second *)
  check_seconds : float;
      (** wall-clock spent in the boolean deadlock checks — would-deadlock
          probes and cycle-membership censuses *)
  check_share : float;  (** [check_seconds /. wall_seconds]; [nan] if n/a *)
  check_calls : int;
  enumerate_seconds : float;
      (** wall-clock spent enumerating cycles for the resolver *)
  enumerate_share : float;
      (** [enumerate_seconds /. wall_seconds]; [nan] if n/a *)
  enumerate_calls : int;
  allocated_mwords : float;  (** OCaml heap words allocated, in millions *)
}

val schema_version : int
(** Version stamped into (and required of) [BENCH_scale.json]: bumped
    when a field split or rename would make old baselines unreadable. *)

val sweep : ?quick:bool -> unit -> point list
(** Run the full grid: txns ∈ \{100, 1k, 5k\} (quick: \{100, 500\}) ×
    contention ∈ \{low, high\} × engine ∈ \{central, distrib\}. Each
    point is the fastest of three identical runs — outcomes are
    deterministic in the seed, so repetition only stabilises the timing
    figures the regression gate compares. *)

val print_table : point list -> unit

(** {2 E14: the detection-policy sweep}

    One measured cell of policy × contention × detector-outage on the
    {e centralised} engine, with the starvation guard armed. The sweep
    answers the deferred-detection question: how much of eager
    detection's request-path cost does each policy recover, and what does
    that cost in blocking time (liveness counters ride along). *)

type policy_point = {
  p_policy : string;  (** {!Prb_core.Detection_policy.to_string} *)
  p_contention : string;  (** ["low"] or ["high"] *)
  p_txns : int;
  p_outage : bool;  (** ran under the detector-outage fault plan *)
  p_commits : int;
  p_ticks : int;
  p_deadlocks : int;
  p_rollbacks : int;
  p_wall_seconds : float;
  p_commits_per_sec : float;
  p_check_seconds : float;
  p_check_share : float;
  p_check_calls : int;
  p_enumerate_seconds : float;
  p_enumerate_share : float;
  p_enumerate_calls : int;
  p_detection_passes : int;  (** scheduled sweeps/probes that ran *)
  p_watchdog_fires : int;
  p_max_blocked_ticks : int;  (** longest completed blocking episode *)
}

val sweep_policies : ?quick:bool -> unit -> policy_point list
(** Every {!Prb_core.Detection_policy.all} policy × contention ∈
    \{low, high\} × fault plan ∈ \{none, detector-outage\} at 5000 txns
    (quick: 500), each point the fastest of three runs. *)

val print_policy_table : policy_point list -> unit

val policy_speedups : policy_point list -> (policy_point * float) list
(** Each non-eager point paired with [eager_wall /. policy_wall] from the
    eager point of the same (contention, outage, txns) cell — only where
    commits are equal, so a speedup can never be bought with lost work. *)

val best_central_speedup : policy_point list -> (string * float) option
(** The largest {!policy_speedups} entry among high-contention,
    outage-free points — the figure the E14 acceptance gate checks. *)

val to_json : ?quick:bool -> ?policies:policy_point list -> point list -> string

val write_json :
  path:string -> ?quick:bool -> ?policies:policy_point list -> point list -> unit

exception Parse_error of string

val load : path:string -> point list
(** Read the points back from a file written by {!write_json} (a minimal
    parser for exactly this module's JSON; [null] floats round-trip as
    [nan]). Ignores any [policy_points] section, so baselines written
    before or after E14 load interchangeably. @raise Parse_error on
    malformed input, on a [schema_version] other than {!schema_version}
    (a versionless file is implicitly version 1), or [Sys_error] on an
    unreadable path. *)

val load_policies : path:string -> policy_point list
(** Read the E14 section back from a file written by {!write_json};
    [[]] when the file predates the section. @raise Parse_error /
    [Sys_error] as {!load}. *)

val compare_against :
  tolerance:float -> baseline:point list -> point list -> string list * int
(** Regression gate: match each baseline point to a current point by
    (engine, txns, contention) and flag those whose [commits_per_sec]
    fell more than [tolerance] (a fraction, e.g. [0.2]) below baseline.
    Returns the failure descriptions and the number of points compared;
    baseline points with no current counterpart (and vice versa) are
    ignored, so a quick sweep can be gated against a full-grid
    baseline. *)
