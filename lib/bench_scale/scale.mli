(** The E13 scaling benchmark: a reproducible throughput sweep over
    transaction count × contention on both engines, reported as a table
    and as machine-readable JSON ([BENCH_scale.json]) so successive PRs
    accumulate a performance trajectory.

    Shared by [bench/main.exe -- E13] and [prb bench]. Simulation
    outcomes (commits, deadlocks, ticks) are deterministic in the baked
    seed; wall-clock, detection-share and allocation figures are
    machine-dependent by nature. *)

type point = {
  engine : string;  (** ["central"] or ["distrib"] *)
  txns : int;
  contention : string;  (** ["low"] or ["high"] *)
  entities : int;
  theta : float;
  mpl : int;
  commits : int;
  ticks : int;
  deadlocks : int;
  rollbacks : int;
  wall_seconds : float;
  commits_per_sec : float;  (** throughput, commits per wall-clock second *)
  detect_seconds : float;
      (** wall-clock spent in deadlock detection/resolution (central
          engine only; the multi-site engine is not clock-instrumented) *)
  detect_share : float;  (** [detect_seconds /. wall_seconds]; [nan] if n/a *)
  detect_calls : int;
  allocated_mwords : float;  (** OCaml heap words allocated, in millions *)
}

val sweep : ?quick:bool -> unit -> point list
(** Run the full grid: txns ∈ \{100, 1k, 5k\} (quick: \{100, 500\}) ×
    contention ∈ \{low, high\} × engine ∈ \{central, distrib\}. Each
    point is the fastest of three identical runs — outcomes are
    deterministic in the seed, so repetition only stabilises the timing
    figures the regression gate compares. *)

val print_table : point list -> unit

val to_json : ?quick:bool -> point list -> string

val write_json : path:string -> ?quick:bool -> point list -> unit

exception Parse_error of string

val load : path:string -> point list
(** Read the points back from a file written by {!write_json} (a minimal
    parser for exactly this module's JSON; [null] floats round-trip as
    [nan]). @raise Parse_error on malformed input, [Sys_error] on an
    unreadable path. *)

val compare_against :
  tolerance:float -> baseline:point list -> point list -> string list * int
(** Regression gate: match each baseline point to a current point by
    (engine, txns, contention) and flag those whose [commits_per_sec]
    fell more than [tolerance] (a fraction, e.g. [0.2]) below baseline.
    Returns the failure descriptions and the number of points compared;
    baseline points with no current counterpart (and vice versa) are
    ignored, so a quick sweep can be gated against a full-grid
    baseline. *)
