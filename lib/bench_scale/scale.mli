(** The E13 scaling benchmark: a reproducible throughput sweep over
    transaction count × contention on both engines, reported as a table
    and as machine-readable JSON ([BENCH_scale.json]) so successive PRs
    accumulate a performance trajectory.

    Shared by [bench/main.exe -- E13] and [prb bench]. Simulation
    outcomes (commits, deadlocks, ticks) are deterministic in the baked
    seed; wall-clock, detection-share and allocation figures are
    machine-dependent by nature. *)

type point = {
  engine : string;  (** ["central"] or ["distrib"] *)
  txns : int;
  contention : string;  (** ["low"] or ["high"] *)
  entities : int;
  theta : float;
  mpl : int;
  commits : int;
  ticks : int;
  deadlocks : int;
  rollbacks : int;
  wall_seconds : float;
  commits_per_sec : float;  (** throughput, commits per wall-clock second *)
  detect_seconds : float;
      (** wall-clock spent in deadlock detection/resolution (central
          engine only; the multi-site engine is not clock-instrumented) *)
  detect_share : float;  (** [detect_seconds /. wall_seconds]; [nan] if n/a *)
  detect_calls : int;
  allocated_mwords : float;  (** OCaml heap words allocated, in millions *)
}

val sweep : ?quick:bool -> unit -> point list
(** Run the full grid: txns ∈ \{100, 1k, 5k\} (quick: \{100, 500\}) ×
    contention ∈ \{low, high\} × engine ∈ \{central, distrib\}. *)

val print_table : point list -> unit

val to_json : ?quick:bool -> point list -> string

val write_json : path:string -> ?quick:bool -> point list -> unit
