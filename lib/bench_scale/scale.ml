module Table = Prb_util.Table
module Scheduler = Prb_core.Scheduler
module Detection_policy = Prb_core.Detection_policy
module Fault = Prb_fault.Fault
module Sim = Prb_sim.Sim
module Strategy = Prb_rollback.Strategy
module Generator = Prb_workload.Generator
module D = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim

type point = {
  engine : string;  (* "central" | "distrib" *)
  txns : int;
  contention : string;  (* "low" | "high" *)
  entities : int;
  theta : float;
  mpl : int;
  commits : int;
  ticks : int;
  deadlocks : int;
  rollbacks : int;
  wall_seconds : float;
  commits_per_sec : float;
  check_seconds : float;
  check_share : float;
  check_calls : int;
  enumerate_seconds : float;
  enumerate_share : float;
  enumerate_calls : int;
  allocated_mwords : float;
}

(* BENCH_scale.json schema. Version 2 split the detection accounting
   into check (boolean deadlock probes and censuses) and enumerate
   (cycle enumeration for the resolver) fields; version 1 — files
   without the field — carried a single detect_seconds/share/calls
   triple that also folded victim selection and rollback application
   into "detection". *)
let schema_version = 2

let seed = 11
let mpl = 16
let max_ticks = 10_000_000

(* The two ends of the contention axis. Low contention scales the
   database with the transaction count (conflicts stay rare, the run
   stresses table bookkeeping); high contention pins a small hot set so
   the waits-for machinery dominates — the regime where detection cost
   rules 2PL throughput. *)
let params_of ~contention ~txns =
  let n_entities =
    match contention with
    | `Low -> min 20_000 (8 * txns)
    | `High -> 64
  in
  let zipf_theta = match contention with `Low -> 0.0 | `High -> 0.8 in
  ( n_entities,
    zipf_theta,
    {
      Generator.default_params with
      n_entities;
      zipf_theta;
      read_fraction = 0.3;
      min_locks = 3;
      max_locks = 6;
    } )

let contention_name = function `Low -> "low" | `High -> "high"

(* Allocation across minor and major heaps, in words, ignoring what was
   merely promoted (counted once in minor). *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let measure f =
  let w0 = allocated_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  let w1 = allocated_words () in
  (r, t1 -. t0, (w1 -. w0) /. 1e6)

let run_central ~contention ~txns =
  let n_entities, theta, params = params_of ~contention ~txns in
  (* Workload synthesis happens outside the timed region — the point
     measures the engine, not the generator (the distributed points
     always measured this way; the central ones used to fold synthesis
     in, understating engine throughput by ~40% at low contention). *)
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed ~n:txns in
  let config =
    {
      Sim.scheduler =
        {
          Scheduler.default_config with
          strategy = Strategy.Sdg;
          seed;
          max_ticks;
          clock = Some Unix.gettimeofday;
        };
      mpl;
    }
  in
  let r, wall, mwords = measure (fun () -> Sim.run ~config ~store programs) in
  let s = r.Sim.stats in
  {
    engine = "central";
    txns;
    contention = contention_name contention;
    entities = n_entities;
    theta;
    mpl;
    commits = s.Scheduler.commits;
    ticks = s.Scheduler.ticks;
    deadlocks = s.Scheduler.deadlocks;
    rollbacks = s.Scheduler.rollbacks;
    wall_seconds = wall;
    commits_per_sec =
      (if wall > 0.0 then float_of_int s.Scheduler.commits /. wall else nan);
    check_seconds = r.Sim.check_seconds;
    check_share = (if wall > 0.0 then r.Sim.check_seconds /. wall else nan);
    check_calls = r.Sim.check_calls;
    enumerate_seconds = r.Sim.enumerate_seconds;
    enumerate_share =
      (if wall > 0.0 then r.Sim.enumerate_seconds /. wall else nan);
    enumerate_calls = r.Sim.enumerate_calls;
    allocated_mwords = mwords;
  }

let run_distrib ~contention ~txns =
  let n_entities, theta, params = params_of ~contention ~txns in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed ~n:txns in
  let config =
    {
      Dist_sim.scheduler =
        {
          D.default_config with
          n_sites = 4;
          seed;
          max_ticks;
          clock = Some Unix.gettimeofday;
        };
      mpl;
    }
  in
  let r, wall, mwords =
    measure (fun () -> Dist_sim.run ~config ~store programs)
  in
  let s = r.Dist_sim.stats in
  {
    engine = "distrib";
    txns;
    contention = contention_name contention;
    entities = n_entities;
    theta;
    mpl;
    commits = s.D.commits;
    ticks = s.D.ticks;
    deadlocks = s.D.deadlocks;
    rollbacks = s.D.rollbacks;
    wall_seconds = wall;
    commits_per_sec =
      (if wall > 0.0 then float_of_int s.D.commits /. wall else nan);
    check_seconds = s.D.check_seconds;
    check_share = (if wall > 0.0 then s.D.check_seconds /. wall else nan);
    check_calls = s.D.check_calls;
    enumerate_seconds = s.D.enumerate_seconds;
    enumerate_share =
      (if wall > 0.0 then s.D.enumerate_seconds /. wall else nan);
    enumerate_calls = s.D.enumerate_calls;
    allocated_mwords = mwords;
  }

(* The smallest points finish in single-digit milliseconds, where
   scheduler noise swamps a 20% regression gate; every point therefore
   reports the fastest of [reps] identical runs. Simulation outcomes are
   deterministic in the seed, so the repetitions differ only in timing. *)
let reps = 3

let best_of f =
  let rec go best k =
    if k = 0 then best
    else
      let p = f () in
      go (if p.wall_seconds < best.wall_seconds then p else best) (k - 1)
  in
  go (f ()) (reps - 1)

let sweep ?(quick = false) () =
  let txn_counts = if quick then [ 100; 500 ] else [ 100; 1000; 5000 ] in
  List.concat_map
    (fun contention ->
      List.concat_map
        (fun txns ->
          [
            best_of (fun () -> run_central ~contention ~txns);
            best_of (fun () -> run_distrib ~contention ~txns);
          ])
        txn_counts)
    [ `Low; `High ]

(* --- E14: the detection-policy sweep ---------------------------------- *)

type policy_point = {
  p_policy : string;
  p_contention : string;
  p_txns : int;
  p_outage : bool;
  p_commits : int;
  p_ticks : int;
  p_deadlocks : int;
  p_rollbacks : int;
  p_wall_seconds : float;
  p_commits_per_sec : float;
  p_check_seconds : float;
  p_check_share : float;
  p_check_calls : int;
  p_enumerate_seconds : float;
  p_enumerate_share : float;
  p_enumerate_calls : int;
  p_detection_passes : int;
  p_watchdog_fires : int;
  p_max_blocked_ticks : int;
}

(* The guard is armed on every E14 point so the sweep measures the
   production configuration of the deferred policies, not an
   unprotected one. *)
let policy_starvation_limit = 8

(* The detector is dark for a 1000-tick window early in the run — long
   enough to swallow many scheduled passes of every policy, early enough
   that the watchdog's forced recovery sweep still has most of the run
   left to show up in the timing. *)
let policy_outage_plan =
  {
    Fault.none with
    Fault.fault_seed = seed;
    detector_outages = [ { Fault.out_from = 200; out_until = 1200 } ];
  }

let run_policy ~detection ~contention ~txns ~outage =
  let _, _, params = params_of ~contention ~txns in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed ~n:txns in
  let config =
    {
      Sim.scheduler =
        {
          Scheduler.default_config with
          strategy = Strategy.Sdg;
          seed;
          max_ticks;
          clock = Some Unix.gettimeofday;
          detection;
          starvation_limit = Some policy_starvation_limit;
          faults = (if outage then Some policy_outage_plan else None);
        };
      mpl;
    }
  in
  let r, wall, _ = measure (fun () -> Sim.run ~config ~store programs) in
  let s = r.Sim.stats in
  {
    p_policy = Detection_policy.to_string detection;
    p_contention = contention_name contention;
    p_txns = txns;
    p_outage = outage;
    p_commits = s.Scheduler.commits;
    p_ticks = s.Scheduler.ticks;
    p_deadlocks = s.Scheduler.deadlocks;
    p_rollbacks = s.Scheduler.rollbacks;
    p_wall_seconds = wall;
    p_commits_per_sec =
      (if wall > 0.0 then float_of_int s.Scheduler.commits /. wall else nan);
    p_check_seconds = r.Sim.check_seconds;
    p_check_share = (if wall > 0.0 then r.Sim.check_seconds /. wall else nan);
    p_check_calls = r.Sim.check_calls;
    p_enumerate_seconds = r.Sim.enumerate_seconds;
    p_enumerate_share =
      (if wall > 0.0 then r.Sim.enumerate_seconds /. wall else nan);
    p_enumerate_calls = r.Sim.enumerate_calls;
    p_detection_passes = s.Scheduler.detection_passes;
    p_watchdog_fires = s.Scheduler.watchdog_fires;
    p_max_blocked_ticks = s.Scheduler.max_blocked_ticks;
  }

let best_of_policy f =
  let rec go best k =
    if k = 0 then best
    else
      let p = f () in
      go (if p.p_wall_seconds < best.p_wall_seconds then p else best) (k - 1)
  in
  go (f ()) (reps - 1)

let sweep_policies ?(quick = false) () =
  let txns = if quick then 500 else 5000 in
  List.concat_map
    (fun contention ->
      List.concat_map
        (fun outage ->
          List.map
            (fun detection ->
              best_of_policy (fun () ->
                  run_policy ~detection ~contention ~txns ~outage))
            Detection_policy.all)
        [ false; true ])
    [ `Low; `High ]

(* Speedups relative to the eager point of the same (contention, outage,
   txns) cell — only claimed at equal commits, so a policy cannot "win"
   by finishing fewer transactions. *)
let policy_speedups pts =
  List.filter_map
    (fun p ->
      if String.equal p.p_policy "eager" then None
      else
        match
          List.find_opt
            (fun e ->
              String.equal e.p_policy "eager"
              && String.equal e.p_contention p.p_contention
              && e.p_outage = p.p_outage && e.p_txns = p.p_txns)
            pts
        with
        | Some e when e.p_commits = p.p_commits && p.p_wall_seconds > 0.0 ->
            Some (p, e.p_wall_seconds /. p.p_wall_seconds)
        | _ -> None)
    pts

let best_central_speedup pts =
  policy_speedups pts
  |> List.filter (fun (p, _) ->
         String.equal p.p_contention "high" && not p.p_outage)
  |> List.fold_left
       (fun acc (p, s) ->
         match acc with
         | Some (_, s0) when s0 >= s -> acc
         | _ -> Some (p.p_policy, s))
       None

let print_policy_table pts =
  let speedups = policy_speedups pts in
  let speedup_cell p =
    if String.equal p.p_policy "eager" then "1.00x"
    else
      match
        List.find_opt (fun (q, _) -> q == p) speedups
      with
      | Some (_, s) -> Printf.sprintf "%.2fx" s
      | None -> "-" (* unequal commits: no comparable speedup *)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E14: detection-policy sweep (central, mpl %d, seed %d, \
            starvation limit %d)"
           mpl seed policy_starvation_limit)
      [
        ("policy", Table.Left);
        ("contention", Table.Left);
        ("outage", Table.Left);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("wall s", Table.Right);
        ("speedup", Table.Right);
        ("check share", Table.Right);
        ("enum share", Table.Right);
        ("passes", Table.Right);
        ("watchdog", Table.Right);
        ("max blocked", Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          p.p_policy;
          p.p_contention;
          (if p.p_outage then "yes" else "no");
          Table.cell_int p.p_commits;
          Table.cell_int p.p_deadlocks;
          Table.cell_float ~decimals:3 p.p_wall_seconds;
          speedup_cell p;
          (if Float.is_nan p.p_check_share then "-"
           else Table.cell_pct p.p_check_share);
          (if Float.is_nan p.p_enumerate_share then "-"
           else Table.cell_pct p.p_enumerate_share);
          Table.cell_int p.p_detection_passes;
          Table.cell_int p.p_watchdog_fires;
          Table.cell_int p.p_max_blocked_ticks;
        ])
    pts;
  Table.print table

let print_table points =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E13: scaling sweep (mpl %d, seed %d, sdg rollback)"
           mpl seed)
      [
        ("engine", Table.Left);
        ("contention", Table.Left);
        ("txns", Table.Right);
        ("entities", Table.Right);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("wall s", Table.Right);
        ("commits/s", Table.Right);
        ("check share", Table.Right);
        ("enum share", Table.Right);
        ("alloc Mw", Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          p.engine;
          p.contention;
          Table.cell_int p.txns;
          Table.cell_int p.entities;
          Table.cell_int p.commits;
          Table.cell_int p.deadlocks;
          Table.cell_float ~decimals:3 p.wall_seconds;
          Table.cell_float ~decimals:1 p.commits_per_sec;
          (if Float.is_nan p.check_share then "-"
           else Table.cell_pct p.check_share);
          (if Float.is_nan p.enumerate_share then "-"
           else Table.cell_pct p.enumerate_share);
          Table.cell_float ~decimals:1 p.allocated_mwords;
        ])
    points;
  Table.print table

(* Hand-rolled JSON: the dependency footprint stays what the repo already
   has. Floats are printed with enough digits to round-trip. *)
let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let point_to_json p =
  String.concat ""
    [
      "    {";
      Printf.sprintf "\"engine\": %S, " p.engine;
      Printf.sprintf "\"txns\": %d, " p.txns;
      Printf.sprintf "\"contention\": %S, " p.contention;
      Printf.sprintf "\"entities\": %d, " p.entities;
      Printf.sprintf "\"zipf_theta\": %s, " (json_float p.theta);
      Printf.sprintf "\"mpl\": %d, " p.mpl;
      Printf.sprintf "\"commits\": %d, " p.commits;
      Printf.sprintf "\"ticks\": %d, " p.ticks;
      Printf.sprintf "\"deadlocks\": %d, " p.deadlocks;
      Printf.sprintf "\"rollbacks\": %d, " p.rollbacks;
      Printf.sprintf "\"wall_seconds\": %s, " (json_float p.wall_seconds);
      Printf.sprintf "\"commits_per_sec\": %s, " (json_float p.commits_per_sec);
      Printf.sprintf "\"check_seconds\": %s, " (json_float p.check_seconds);
      Printf.sprintf "\"check_share\": %s, " (json_float p.check_share);
      Printf.sprintf "\"check_calls\": %d, " p.check_calls;
      Printf.sprintf "\"enumerate_seconds\": %s, "
        (json_float p.enumerate_seconds);
      Printf.sprintf "\"enumerate_share\": %s, " (json_float p.enumerate_share);
      Printf.sprintf "\"enumerate_calls\": %d, " p.enumerate_calls;
      Printf.sprintf "\"allocated_mwords\": %s" (json_float p.allocated_mwords);
      "}";
    ]

let policy_point_to_json p =
  String.concat ""
    [
      "    {";
      Printf.sprintf "\"policy\": %S, " p.p_policy;
      Printf.sprintf "\"contention\": %S, " p.p_contention;
      Printf.sprintf "\"txns\": %d, " p.p_txns;
      Printf.sprintf "\"outage\": %b, " p.p_outage;
      Printf.sprintf "\"commits\": %d, " p.p_commits;
      Printf.sprintf "\"ticks\": %d, " p.p_ticks;
      Printf.sprintf "\"deadlocks\": %d, " p.p_deadlocks;
      Printf.sprintf "\"rollbacks\": %d, " p.p_rollbacks;
      Printf.sprintf "\"wall_seconds\": %s, " (json_float p.p_wall_seconds);
      Printf.sprintf "\"commits_per_sec\": %s, "
        (json_float p.p_commits_per_sec);
      Printf.sprintf "\"check_seconds\": %s, " (json_float p.p_check_seconds);
      Printf.sprintf "\"check_share\": %s, " (json_float p.p_check_share);
      Printf.sprintf "\"check_calls\": %d, " p.p_check_calls;
      Printf.sprintf "\"enumerate_seconds\": %s, "
        (json_float p.p_enumerate_seconds);
      Printf.sprintf "\"enumerate_share\": %s, "
        (json_float p.p_enumerate_share);
      Printf.sprintf "\"enumerate_calls\": %d, " p.p_enumerate_calls;
      Printf.sprintf "\"detection_passes\": %d, " p.p_detection_passes;
      Printf.sprintf "\"watchdog_fires\": %d, " p.p_watchdog_fires;
      Printf.sprintf "\"max_blocked_ticks\": %d" p.p_max_blocked_ticks;
      "}";
    ]

let to_json ?(quick = false) ?(policies = []) points =
  String.concat "\n"
    ([
       "{";
       "  \"experiment\": \"E13\",";
       Printf.sprintf "  \"schema_version\": %d," schema_version;
       "  \"description\": \"throughput scaling sweep: txns x contention, \
        both engines\",";
       Printf.sprintf "  \"quick\": %b," quick;
       Printf.sprintf "  \"seed\": %d," seed;
       Printf.sprintf "  \"mpl\": %d," mpl;
       "  \"points\": [";
     ]
    @ [ String.concat ",\n" (List.map point_to_json points) ]
    @ (match policies with
      | [] -> [ "  ]" ]
      | _ ->
          [ "  ],"; "  \"policy_points\": [" ]
          @ [ String.concat ",\n" (List.map policy_point_to_json policies) ]
          @ [ "  ]" ])
    @ [ "}"; "" ])

let write_json ~path ?(quick = false) ?(policies = []) points =
  let oc = open_out path in
  output_string oc (to_json ~quick ~policies points);
  close_out oc

(* --- Reading benchmark JSON back (regression gate) -------------------- *)

exception Parse_error of string

type json =
  | J_null
  | J_bool of bool
  | J_num of float
  | J_str of string
  | J_list of json list
  | J_obj of (string * json) list

(* A minimal recursive-descent parser covering the JSON this module
   itself emits — objects, arrays, strings, numbers, null, bools. *)
let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let len = String.length lit in
    if !pos + len <= n && String.equal (String.sub s !pos len) lit then begin
      pos := !pos + len;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' ->
            incr pos;
            Buffer.contents b
        | '\\' ->
            incr pos;
            if !pos >= n then fail "truncated escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 't' -> Buffer.add_char b '\t'
            | 'r' -> Buffer.add_char b '\r'
            | c -> fail (Printf.sprintf "unsupported escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char b c;
            incr pos;
            go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          J_obj []
        end
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                J_obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          J_list []
        end
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elements (v :: acc)
            | Some ']' ->
                incr pos;
                J_list (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
    | Some 'n' -> literal "null" J_null
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          incr pos
        done;
        if !pos = start then fail "unexpected character";
        (match float_of_string_opt (String.sub s start (!pos - start)) with
        | Some f -> J_num f
        | None -> fail "malformed number")
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let obj_field name = function
  | J_obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> raise (Parse_error ("missing field \"" ^ name ^ "\"")))
  | _ -> raise (Parse_error "expected an object")

let as_float = function
  | J_num f -> f
  | J_null -> nan (* json_float writes NaN as null *)
  | _ -> raise (Parse_error "expected a number")

let as_int = function
  | J_num f when Float.is_integer f -> int_of_float f
  | _ -> raise (Parse_error "expected an integer")

let as_string = function
  | J_str s -> s
  | _ -> raise (Parse_error "expected a string")

let as_list = function
  | J_list l -> l
  | _ -> raise (Parse_error "expected an array")

let point_of_json j =
  {
    engine = as_string (obj_field "engine" j);
    txns = as_int (obj_field "txns" j);
    contention = as_string (obj_field "contention" j);
    entities = as_int (obj_field "entities" j);
    theta = as_float (obj_field "zipf_theta" j);
    mpl = as_int (obj_field "mpl" j);
    commits = as_int (obj_field "commits" j);
    ticks = as_int (obj_field "ticks" j);
    deadlocks = as_int (obj_field "deadlocks" j);
    rollbacks = as_int (obj_field "rollbacks" j);
    wall_seconds = as_float (obj_field "wall_seconds" j);
    commits_per_sec = as_float (obj_field "commits_per_sec" j);
    check_seconds = as_float (obj_field "check_seconds" j);
    check_share = as_float (obj_field "check_share" j);
    check_calls = as_int (obj_field "check_calls" j);
    enumerate_seconds = as_float (obj_field "enumerate_seconds" j);
    enumerate_share = as_float (obj_field "enumerate_share" j);
    enumerate_calls = as_int (obj_field "enumerate_calls" j);
    allocated_mwords = as_float (obj_field "allocated_mwords" j);
  }

let as_bool = function
  | J_bool b -> b
  | _ -> raise (Parse_error "expected a boolean")

(* Optional lookup: lets a new reader accept files written before a
   section existed (and vice versa), so --compare keeps working across
   schema growth. *)
let obj_field_opt name = function
  | J_obj fields -> List.assoc_opt name fields
  | _ -> None

let policy_point_of_json j =
  {
    p_policy = as_string (obj_field "policy" j);
    p_contention = as_string (obj_field "contention" j);
    p_txns = as_int (obj_field "txns" j);
    p_outage = as_bool (obj_field "outage" j);
    p_commits = as_int (obj_field "commits" j);
    p_ticks = as_int (obj_field "ticks" j);
    p_deadlocks = as_int (obj_field "deadlocks" j);
    p_rollbacks = as_int (obj_field "rollbacks" j);
    p_wall_seconds = as_float (obj_field "wall_seconds" j);
    p_commits_per_sec = as_float (obj_field "commits_per_sec" j);
    p_check_seconds = as_float (obj_field "check_seconds" j);
    p_check_share = as_float (obj_field "check_share" j);
    p_check_calls = as_int (obj_field "check_calls" j);
    p_enumerate_seconds = as_float (obj_field "enumerate_seconds" j);
    p_enumerate_share = as_float (obj_field "enumerate_share" j);
    p_enumerate_calls = as_int (obj_field "enumerate_calls" j);
    p_detection_passes = as_int (obj_field "detection_passes" j);
    p_watchdog_fires = as_int (obj_field "watchdog_fires" j);
    p_max_blocked_ticks = as_int (obj_field "max_blocked_ticks" j);
  }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* A file without the version field predates the check/enumerate split
   (implicitly version 1): fail with a pointed message instead of a
   puzzling "missing field check_seconds" from the first point. *)
let check_schema j =
  let v =
    match obj_field_opt "schema_version" j with Some v -> as_int v | None -> 1
  in
  if v <> schema_version then
    raise
      (Parse_error
         (Printf.sprintf
            "schema_version %d, expected %d — regenerate the baseline with \
             'prb bench --json BENCH_scale.json --policies'"
            v schema_version))

let load ~path =
  let j = parse_json (read_file path) in
  check_schema j;
  List.map point_of_json (as_list (obj_field "points" j))

let load_policies ~path =
  let j = parse_json (read_file path) in
  match obj_field_opt "policy_points" j with
  | None -> []
  | Some l ->
      check_schema j;
      List.map policy_point_of_json (as_list l)

let same_point a b =
  String.equal a.engine b.engine
  && a.txns = b.txns
  && String.equal a.contention b.contention

(* Each baseline point gates two regressions at the same tolerance: a
   throughput floor and an allocation ceiling (a perf win paid for with
   garbage shows up in tail latency and the collector, not the mean). *)
let compare_against ~tolerance ~baseline points =
  let compared = ref 0 in
  let failures =
    List.concat_map
      (fun b ->
        match List.find_opt (same_point b) points with
        | None -> []
        | Some p ->
            incr compared;
            let throughput =
              let floor = b.commits_per_sec *. (1.0 -. tolerance) in
              if p.commits_per_sec < floor then
                [
                  Printf.sprintf
                    "%s/%s/%d txns: %.1f commits/s, %.1f%% below baseline \
                     %.1f (tolerance %.0f%%)"
                    b.engine b.contention b.txns p.commits_per_sec
                    (100.0
                    *. (1.0 -. (p.commits_per_sec /. b.commits_per_sec)))
                    b.commits_per_sec (100.0 *. tolerance);
                ]
              else []
            in
            let allocation =
              if
                Float.is_nan b.allocated_mwords
                || b.allocated_mwords <= 0.0
                || Float.is_nan p.allocated_mwords
              then []
              else
                let ceiling = b.allocated_mwords *. (1.0 +. tolerance) in
                if p.allocated_mwords > ceiling then
                  [
                    Printf.sprintf
                      "%s/%s/%d txns: %.1f Mwords allocated, %.1f%% above \
                       baseline %.1f (tolerance %.0f%%)"
                      b.engine b.contention b.txns p.allocated_mwords
                      (100.0
                      *. ((p.allocated_mwords /. b.allocated_mwords) -. 1.0))
                      b.allocated_mwords (100.0 *. tolerance);
                  ]
                else []
            in
            throughput @ allocation)
      baseline
  in
  (failures, !compared)
