module Table = Prb_util.Table
module Scheduler = Prb_core.Scheduler
module Sim = Prb_sim.Sim
module Strategy = Prb_rollback.Strategy
module Generator = Prb_workload.Generator
module D = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim

type point = {
  engine : string;  (* "central" | "distrib" *)
  txns : int;
  contention : string;  (* "low" | "high" *)
  entities : int;
  theta : float;
  mpl : int;
  commits : int;
  ticks : int;
  deadlocks : int;
  rollbacks : int;
  wall_seconds : float;
  commits_per_sec : float;
  detect_seconds : float;
  detect_share : float;
  detect_calls : int;
  allocated_mwords : float;
}

let seed = 11
let mpl = 16
let max_ticks = 10_000_000

(* The two ends of the contention axis. Low contention scales the
   database with the transaction count (conflicts stay rare, the run
   stresses table bookkeeping); high contention pins a small hot set so
   the waits-for machinery dominates — the regime where detection cost
   rules 2PL throughput. *)
let params_of ~contention ~txns =
  let n_entities =
    match contention with
    | `Low -> min 20_000 (8 * txns)
    | `High -> 64
  in
  let zipf_theta = match contention with `Low -> 0.0 | `High -> 0.8 in
  ( n_entities,
    zipf_theta,
    {
      Generator.default_params with
      n_entities;
      zipf_theta;
      read_fraction = 0.3;
      min_locks = 3;
      max_locks = 6;
    } )

let contention_name = function `Low -> "low" | `High -> "high"

(* Allocation across minor and major heaps, in words, ignoring what was
   merely promoted (counted once in minor). *)
let allocated_words () =
  let s = Gc.quick_stat () in
  s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words

let measure f =
  let w0 = allocated_words () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t1 = Unix.gettimeofday () in
  let w1 = allocated_words () in
  (r, t1 -. t0, (w1 -. w0) /. 1e6)

let run_central ~contention ~txns =
  let n_entities, theta, params = params_of ~contention ~txns in
  let config =
    {
      Sim.scheduler =
        {
          Scheduler.default_config with
          strategy = Strategy.Sdg;
          seed;
          max_ticks;
          clock = Some Unix.gettimeofday;
        };
      mpl;
    }
  in
  let r, wall, mwords =
    measure (fun () -> Sim.run_generated ~config ~params ~seed ~n_txns:txns ())
  in
  let s = r.Sim.stats in
  {
    engine = "central";
    txns;
    contention = contention_name contention;
    entities = n_entities;
    theta;
    mpl;
    commits = s.Scheduler.commits;
    ticks = s.Scheduler.ticks;
    deadlocks = s.Scheduler.deadlocks;
    rollbacks = s.Scheduler.rollbacks;
    wall_seconds = wall;
    commits_per_sec =
      (if wall > 0.0 then float_of_int s.Scheduler.commits /. wall else nan);
    detect_seconds = r.Sim.detect_seconds;
    detect_share = (if wall > 0.0 then r.Sim.detect_seconds /. wall else nan);
    detect_calls = r.Sim.detect_calls;
    allocated_mwords = mwords;
  }

let run_distrib ~contention ~txns =
  let n_entities, theta, params = params_of ~contention ~txns in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed ~n:txns in
  let config =
    {
      Dist_sim.scheduler =
        { D.default_config with n_sites = 4; seed; max_ticks };
      mpl;
    }
  in
  let r, wall, mwords =
    measure (fun () -> Dist_sim.run ~config ~store programs)
  in
  let s = r.Dist_sim.stats in
  {
    engine = "distrib";
    txns;
    contention = contention_name contention;
    entities = n_entities;
    theta;
    mpl;
    commits = s.D.commits;
    ticks = s.D.ticks;
    deadlocks = s.D.deadlocks;
    rollbacks = s.D.rollbacks;
    wall_seconds = wall;
    commits_per_sec =
      (if wall > 0.0 then float_of_int s.D.commits /. wall else nan);
    (* the multi-site engine is not clock-instrumented; its detection
       cost is visible only through wall time *)
    detect_seconds = 0.0;
    detect_share = nan;
    detect_calls = 0;
    allocated_mwords = mwords;
  }

let sweep ?(quick = false) () =
  let txn_counts = if quick then [ 100; 500 ] else [ 100; 1000; 5000 ] in
  List.concat_map
    (fun contention ->
      List.concat_map
        (fun txns ->
          [ run_central ~contention ~txns; run_distrib ~contention ~txns ])
        txn_counts)
    [ `Low; `High ]

let print_table points =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "E13: scaling sweep (mpl %d, seed %d, sdg rollback)"
           mpl seed)
      [
        ("engine", Table.Left);
        ("contention", Table.Left);
        ("txns", Table.Right);
        ("entities", Table.Right);
        ("commits", Table.Right);
        ("deadlocks", Table.Right);
        ("wall s", Table.Right);
        ("commits/s", Table.Right);
        ("detect share", Table.Right);
        ("alloc Mw", Table.Right);
      ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          p.engine;
          p.contention;
          Table.cell_int p.txns;
          Table.cell_int p.entities;
          Table.cell_int p.commits;
          Table.cell_int p.deadlocks;
          Table.cell_float ~decimals:3 p.wall_seconds;
          Table.cell_float ~decimals:1 p.commits_per_sec;
          (if Float.is_nan p.detect_share then "-"
           else Table.cell_pct p.detect_share);
          Table.cell_float ~decimals:1 p.allocated_mwords;
        ])
    points;
  Table.print table

(* Hand-rolled JSON: the dependency footprint stays what the repo already
   has. Floats are printed with enough digits to round-trip. *)
let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.6g" f

let point_to_json p =
  String.concat ""
    [
      "    {";
      Printf.sprintf "\"engine\": %S, " p.engine;
      Printf.sprintf "\"txns\": %d, " p.txns;
      Printf.sprintf "\"contention\": %S, " p.contention;
      Printf.sprintf "\"entities\": %d, " p.entities;
      Printf.sprintf "\"zipf_theta\": %s, " (json_float p.theta);
      Printf.sprintf "\"mpl\": %d, " p.mpl;
      Printf.sprintf "\"commits\": %d, " p.commits;
      Printf.sprintf "\"ticks\": %d, " p.ticks;
      Printf.sprintf "\"deadlocks\": %d, " p.deadlocks;
      Printf.sprintf "\"rollbacks\": %d, " p.rollbacks;
      Printf.sprintf "\"wall_seconds\": %s, " (json_float p.wall_seconds);
      Printf.sprintf "\"commits_per_sec\": %s, " (json_float p.commits_per_sec);
      Printf.sprintf "\"detect_seconds\": %s, " (json_float p.detect_seconds);
      Printf.sprintf "\"detect_share\": %s, " (json_float p.detect_share);
      Printf.sprintf "\"detect_calls\": %d, " p.detect_calls;
      Printf.sprintf "\"allocated_mwords\": %s" (json_float p.allocated_mwords);
      "}";
    ]

let to_json ?(quick = false) points =
  String.concat "\n"
    ([
       "{";
       "  \"experiment\": \"E13\",";
       "  \"description\": \"throughput scaling sweep: txns x contention, \
        both engines\",";
       Printf.sprintf "  \"quick\": %b," quick;
       Printf.sprintf "  \"seed\": %d," seed;
       Printf.sprintf "  \"mpl\": %d," mpl;
       "  \"points\": [";
     ]
    @ [ String.concat ",\n" (List.map point_to_json points) ]
    @ [ "  ]"; "}"; "" ])

let write_json ~path ?(quick = false) points =
  let oc = open_out path in
  output_string oc (to_json ~quick points);
  close_out oc
