(** Deterministic views of hash tables.

    [Hashtbl] iteration order is a function of the hash seed, the table's
    history and the stdlib version; replaying a run byte-for-byte must not
    depend on it. Replay-critical modules traverse tables only through
    these helpers, which sort the bindings by key under an explicit
    comparator — the static analyzer ([lib/lint], rule D1) enforces the
    discipline.

    All helpers assume tables with at most one binding per key
    ([Hashtbl.replace] semantics). *)

val sorted_bindings :
  ('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** [sorted_bindings cmp tbl] is the bindings of [tbl] sorted by key. *)

val sorted_keys : ('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** [sorted_keys cmp tbl] is the keys of [tbl] in ascending [cmp] order. *)

val iter_sorted :
  ('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted cmp f tbl] applies [f] to each binding in ascending key
    order. *)

val fold_sorted :
  ('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted cmp f tbl init] folds over the bindings in ascending key
    order. *)
