(* Deterministic views of hash tables.

   [Hashtbl] iteration order depends on the hash function, the table's
   insertion/removal history and (across compiler versions) the stdlib's
   bucket layout — none of which the replay discipline may depend on.
   Every replay-critical module therefore routes table traversals through
   this module, which materialises the bindings and sorts them by key
   under an explicit comparator. The analyzer in [lib/lint] (rule D1)
   rejects direct [Hashtbl.iter]/[Hashtbl.fold] in those modules, so this
   file is the single place where hash-order traversal is allowed to
   happen.

   All functions assume [Hashtbl.replace]-style tables (at most one
   binding per key), which is how every table in this repository is used;
   with duplicate keys the relative order of equal keys would again be
   hash order. *)

let sorted_bindings cmp tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> cmp a b)

let sorted_keys cmp tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort cmp

let iter_sorted cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings cmp tbl)

let fold_sorted cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings cmp tbl)
