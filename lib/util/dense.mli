(** Dense int-indexed building blocks for the flat, allocation-free hot
    paths (DESIGN.md Section 12).

    All three structures are deterministic: behaviour depends only on the
    call sequence, never on hashing, addresses or clocks, so replay
    discipline is preserved when replay-critical modules are rebuilt on
    top of them. *)

module Interner : sig
  (** Maps strings (entity names) to contiguous slot ids [0, 1, 2, ...]
      in first-intern order, with O(1) reverse lookup. Ids are never
      recycled — an interner grows monotonically with the name universe,
      which for this system is the store's entity set. *)

  type t

  val create : ?size_hint:int -> unit -> t
  val intern : t -> string -> int
  (** Existing id, or the next unused one for a fresh name. *)

  val find_opt : t -> string -> int option
  val name : t -> int -> string
  (** @raise Invalid_argument on an id never returned by {!intern}. *)

  val count : t -> int
end

module Slots : sig
  (** Generational slot allocator: free slots are recycled LIFO, and each
      release bumps the slot's generation so stale references to a
      recycled slot are detectable ({!handle}/{!handle_valid} — the
      aliasing test in test_util leans on this). *)

  type t

  val create : unit -> t
  val alloc : t -> int
  val release : t -> int -> unit
  (** @raise Invalid_argument if the slot is not live. *)

  val generation : t -> int -> int
  val in_use : t -> int -> bool
  val capacity : t -> int
  (** Slots ever created (live + free). *)

  val n_live : t -> int

  val handle : t -> int -> int
  (** Pack (slot, current generation) into one int. *)

  val handle_valid : t -> int -> bool
  (** Does the handle still name the live incarnation of its slot? False
      once the slot was released (and after any recycling). *)
end

module Pqueue : sig
  (** Int-payload binary min-heap on parallel int arrays. The tie-break
      is (priority, push sequence) — exactly {!Heap}'s — so an event loop
      moved onto this queue pops in the identical order. Push and pop
      allocate nothing in steady state: {!pop} deposits the popped entry
      into the [cur_*] fields instead of returning an option. *)

  type t

  val create : unit -> t
  val is_empty : t -> bool
  val size : t -> int

  val push : t -> priority:int -> tag:int -> a:int -> b:int -> unit
  (** [tag]/[a]/[b] encode the event payload; [a] and [b] may be any int
      (negative selectors included) — pass 0 when unused. They are
      mandatory so a full application never boxes them in [Some]: push
      sits on the [@hot] (allocation-free) path. *)

  val pop : t -> bool
  (** False on an empty queue; true after depositing the minimum entry
      into the [cur_*] accessors. *)

  val cur_prio : t -> int
  val cur_tag : t -> int
  val cur_a : t -> int
  val cur_b : t -> int

  val clear : t -> unit
end
