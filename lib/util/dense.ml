(* Dense int-indexed building blocks for the flat hot paths (DESIGN.md
   Section 12): a string interner mapping entity names to contiguous slot
   ids, a generational slot allocator for recyclable buffers, and an
   int-payload priority queue whose steady-state push/pop allocates
   nothing. All three are deterministic: behaviour depends only on the
   call sequence, never on hashing or allocation addresses. *)

let grow_int_array arr size fill =
  let cap = Array.length arr in
  if size < cap then arr
  else begin
    let ncap = max 16 (max (size + 1) (2 * cap)) in
    let narr = Array.make ncap fill in
    Array.blit arr 0 narr 0 cap;
    narr
  end

module Interner = struct
  type t = {
    fwd : (string, int) Hashtbl.t;
    mutable names : string array;
    mutable n : int;
  }

  let create ?(size_hint = 64) () =
    { fwd = Hashtbl.create size_hint; names = [||]; n = 0 }

  let[@lint.allow
       "A1: allocates only when a fresh entity name is interned; repeat \
        lookups on the hot lock path hit the table"] intern t name =
    match Hashtbl.find_opt t.fwd name with
    | Some id -> id
    | None ->
        let id = t.n in
        if id >= Array.length t.names then begin
          let ncap = max 16 (2 * Array.length t.names) in
          let nn = Array.make ncap "" in
          Array.blit t.names 0 nn 0 t.n;
          t.names <- nn
        end;
        t.names.(id) <- name;
        t.n <- id + 1;
        Hashtbl.replace t.fwd name id;
        id

  let find_opt t name = Hashtbl.find_opt t.fwd name

  let name t id =
    if id < 0 || id >= t.n then invalid_arg "Interner.name: unknown id";
    t.names.(id)

  let count t = t.n
end

module Slots = struct
  type t = {
    mutable gens : int array;  (* generation per slot, bumped on release *)
    mutable live : bool array;
    mutable free : int array;  (* LIFO free list *)
    mutable n_free : int;
    mutable n : int;  (* slots ever created *)
  }

  let create () = { gens = [||]; live = [||]; free = [||]; n_free = 0; n = 0 }

  let alloc t =
    if t.n_free > 0 then begin
      t.n_free <- t.n_free - 1;
      let s = t.free.(t.n_free) in
      t.live.(s) <- true;
      s
    end
    else begin
      let s = t.n in
      t.gens <- grow_int_array t.gens s 0;
      if s >= Array.length t.live then begin
        let nl = Array.make (max 16 (2 * Array.length t.live)) false in
        Array.blit t.live 0 nl 0 (Array.length t.live);
        t.live <- nl
      end;
      t.live.(s) <- true;
      t.n <- s + 1;
      s
    end

  let release t s =
    if s < 0 || s >= t.n || not t.live.(s) then
      invalid_arg "Slots.release: slot not live";
    t.live.(s) <- false;
    t.gens.(s) <- t.gens.(s) + 1;
    t.free <- grow_int_array t.free t.n_free 0;
    t.free.(t.n_free) <- s;
    t.n_free <- t.n_free + 1

  let generation t s =
    if s < 0 || s >= t.n then invalid_arg "Slots.generation: unknown slot";
    t.gens.(s)

  let in_use t s = s >= 0 && s < t.n && t.live.(s)
  let capacity t = t.n
  let n_live t = t.n - t.n_free

  (* A handle packs (slot, generation) so a recycled slot id can never be
     mistaken for the transaction/segment that used to own it. *)
  let handle t s = (s * 1_000_003) + (t.gens.(s) mod 1_000_003)
  let handle_valid t h =
    let s = h / 1_000_003 in
    in_use t s && h - (s * 1_000_003) = t.gens.(s) mod 1_000_003
end

module Pqueue = struct
  (* Int-payload binary min-heap on parallel arrays. Tie-break is
     (priority, push sequence) — exactly [Heap]'s, so an event loop moved
     onto this queue replays byte-identically. Popping deposits the entry
     into the [cur_*] fields instead of allocating an option/tuple. *)
  type t = {
    mutable prio : int array;
    mutable seq : int array;
    mutable tag : int array;
    mutable a : int array;
    mutable b : int array;
    mutable size : int;
    mutable next_seq : int;
    mutable cur_prio : int;
    mutable cur_tag : int;
    mutable cur_a : int;
    mutable cur_b : int;
  }

  let create () =
    {
      prio = [||];
      seq = [||];
      tag = [||];
      a = [||];
      b = [||];
      size = 0;
      next_seq = 0;
      cur_prio = 0;
      cur_tag = 0;
      cur_a = 0;
      cur_b = 0;
    }

  let is_empty t = t.size = 0
  let size t = t.size

  let less t i j =
    t.prio.(i) < t.prio.(j)
    || (t.prio.(i) = t.prio.(j) && t.seq.(i) < t.seq.(j))

  let swap t i j =
    let tmp = t.prio.(i) in t.prio.(i) <- t.prio.(j); t.prio.(j) <- tmp;
    let tmp = t.seq.(i) in t.seq.(i) <- t.seq.(j); t.seq.(j) <- tmp;
    let tmp = t.tag.(i) in t.tag.(i) <- t.tag.(j); t.tag.(j) <- tmp;
    let tmp = t.a.(i) in t.a.(i) <- t.a.(j); t.a.(j) <- tmp;
    let tmp = t.b.(i) in t.b.(i) <- t.b.(j); t.b.(j) <- tmp

  let[@lint.allow
       "A1: amortized geometric growth — allocates only when the heap \
        doubles, never in steady state"] ensure_capacity t =
    let cap = Array.length t.prio in
    if t.size = cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      let extend arr =
        let narr = Array.make ncap 0 in
        Array.blit arr 0 narr 0 cap;
        narr
      in
      t.prio <- extend t.prio;
      t.seq <- extend t.seq;
      t.tag <- extend t.tag;
      t.a <- extend t.a;
      t.b <- extend t.b
    end

  (* Both sift loops are top-level tail-recursive functions rather than
     local closures or ref-index while-loops: the hot path ([@hot] below)
     must not allocate, and a capturing local function or a fresh [ref]
     per call would. *)
  let rec sift_up t i =
    if i > 0 && less t i ((i - 1) / 2) then begin
      let parent = (i - 1) / 2 in
      swap t i parent;
      sift_up t parent
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < t.size && less t l i then l else i in
    let smallest = if r < t.size && less t r smallest then r else smallest in
    if smallest <> i then begin
      swap t i smallest;
      sift_down t smallest
    end

  (* [a]/[b] are mandatory (not optional with defaults) so that a full
     application never boxes them in [Some] at the call site. *)
  let[@hot] push t ~priority ~tag ~a ~b =
    ensure_capacity t;
    let i = t.size in
    t.prio.(i) <- priority;
    t.seq.(i) <- t.next_seq;
    t.tag.(i) <- tag;
    t.a.(i) <- a;
    t.b.(i) <- b;
    t.next_seq <- t.next_seq + 1;
    t.size <- t.size + 1;
    sift_up t i

  let[@hot] pop t =
    if t.size = 0 then false
    else begin
      t.cur_prio <- t.prio.(0);
      t.cur_tag <- t.tag.(0);
      t.cur_a <- t.a.(0);
      t.cur_b <- t.b.(0);
      t.size <- t.size - 1;
      if t.size > 0 then begin
        let last = t.size in
        t.prio.(0) <- t.prio.(last);
        t.seq.(0) <- t.seq.(last);
        t.tag.(0) <- t.tag.(last);
        t.a.(0) <- t.a.(last);
        t.b.(0) <- t.b.(last);
        sift_down t 0
      end;
      true
    end

  let cur_prio t = t.cur_prio
  let cur_tag t = t.cur_tag
  let cur_a t = t.cur_a
  let cur_b t = t.cur_b

  let clear t =
    t.size <- 0;
    t.next_seq <- 0
end
