(** The labelled concurrency graph G(T) of Section 3.

    The paper draws an arc [<T_j, T_i>] labelled [A] when [T_i] waits to
    lock entity [A] held by [T_j]. We store the transposed, conventional
    waits-for orientation — an edge [waiter -> holder] — which has the same
    cycles; Theorem 1's "forest" shape appears here as: every vertex has
    out-degree at most one (a transaction waits for at most one exclusive
    holder) and no cycle exists.

    Invariant maintained by the scheduler: a transaction has out-edges iff
    it is blocked, and all its out-edges carry the single entity it is
    waiting for. *)

type txn = int
type entity = Prb_storage.Store.entity

type t

val create : unit -> t

val add_txn : t -> txn -> unit
(** Register a transaction vertex (idempotent). *)

val remove_txn : t -> txn -> unit
(** Drop a vertex and all incident edges (commit/total removal). *)

val set_wait : t -> waiter:txn -> holders:txn list -> entity -> unit
(** Replace the waiter's out-edges: it now waits for each holder, on the
    given entity. @raise Invalid_argument if [holders] contains the
    waiter. *)

val clear_wait : t -> txn -> unit
(** The waiter is no longer blocked (granted or rolled back). *)

val waits : t -> txn -> (txn * entity) list
(** Current out-edges of a transaction, sorted by holder id. *)

val wait_label : t -> txn -> txn -> entity option
(** Entity labelling the arc [waiter -> holder], if the edge is present.
    Allocation-free (one membership scan plus an array read) — the
    resolver relabels every arc of every enumerated cycle through this. *)

val waiting_on : t -> txn -> (txn * entity) list
(** In-edges: who waits for this transaction, sorted by waiter id. *)

val is_blocked : t -> txn -> bool

val txns : t -> txn list
val edges : t -> (txn * txn * entity) list
(** (waiter, holder, entity), lexicographic. *)

val would_deadlock : t -> waiter:txn -> holders:txn list -> bool
(** Would blocking [waiter] on [holders] close a cycle? True iff some
    holder already reaches the waiter — the descendant check of
    Section 3.1 (on the transposed orientation). The graph is not
    modified. One multi-source early-exit DFS over all holders (shared
    visited set), not a full reachability pass per holder. *)

val on_cycle_from : t -> txn list -> txn list
(** Transactions lying on some waits-for cycle reachable from the seeds,
    ascending. Sound as a full cycle census whenever every cycle is known
    to pass through a seed — the scheduler seeds it with the transactions
    whose wait edges changed since the graph was last acyclic. *)

val cycles_through : ?limit:int -> t -> txn -> txn list list
(** All simple cycles containing the transaction, each starting at it —
    after a deadlock has materialised (edges installed), these are the
    cycles the victim choice must break. *)

val is_exclusive_forest : t -> bool
(** Theorem 1 shape check for exclusive-only systems: out-degree <= 1
    everywhere and acyclic. *)

val pp : Format.formatter -> t -> unit
(** Renders edges as ["T2 -b-> T3"] lines, matching the paper's figures. *)

val to_dot : t -> string
(** Graphviz rendering, for the examples. *)
