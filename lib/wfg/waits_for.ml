module Txn_id = Prb_txn.Txn_id

type txn = Txn_id.t
type entity = Prb_storage.Store.entity

(* Dense representation: transaction ids index flat arrays directly.
   Adjacency is kept in per-vertex sorted int buffers (ascending — the
   same order [Iset] iteration gave the Digraph-backed version, so every
   traversal visits neighbours identically and replay stays
   byte-identical). The scheduler invariant that all out-edges of a
   waiter carry one entity lets the (waiter, holder) -> entity label
   table collapse to a single string per waiter. Detection queries
   ([would_deadlock], the Tarjan census, cycle enumeration) run on
   stamp-versioned scratch arrays owned by [t]: no per-call hashtables,
   no allocation unless a cycle is actually reported. The Digraph-backed
   implementation is retained verbatim as [Waits_for_ref] for the
   differential tests. *)
type t = {
  mutable present : bool array;
  mutable out_buf : int array array; (* holders of v, ascending *)
  mutable out_len : int array;
  mutable in_buf : int array array; (* waiters on v, ascending *)
  mutable in_len : int array;
  mutable label : string array; (* entity of v's out-edges; out_len > 0 *)
  mutable cap : int;
  (* stamp-versioned scratch: mark.(v) = current stamp <=> v in the set *)
  mutable stamp : int;
  mutable fwd_mark : int array;
  mutable bwd_mark : int array;
  mutable seen_mark : int array;
  mutable on_path : bool array;
  mutable stack : int array;
  (* Tarjan scratch *)
  mutable idx : int array; (* valid when seen_mark.(v) = stamp *)
  mutable low : int array;
  mutable on_stack : bool array;
  (* Pearce–Kelly dynamic topological order (DESIGN §14). While [n_viol]
     is 0, [ord] is a valid topological position for every present vertex
     that has ever touched an edge: each edge waiter -> holder satisfies
     ord(waiter) < ord(holder), so the graph is provably acyclic and
     [would_deadlock] runs as an order-bounded search instead of a full
     DFS. Edge insertions that break the order are repaired by reordering
     the affected region ([pk_repair]); an insertion that closes a cycle
     (or arrives while a cycle is live) cannot be repaired and is merely
     counted, and every query falls back to the unbounded DFS until the
     violating edges are deleted again. [ord] values are never mutated
     while [n_viol] > 0, so the count stays exact under deletion. *)
  mutable ord : int array;
  mutable orded : bool array; (* ord.(v) assigned (vertex touched an edge) *)
  mutable n_viol : int; (* edges with ord(waiter) > ord(holder) *)
  mutable next_lo : int; (* fresh-waiter positions, strictly decreasing *)
  mutable next_hi : int; (* fresh-holder positions, strictly increasing *)
  mutable pk_f : int array; (* repair scratch: forward affected set *)
  mutable pk_b : int array; (* repair scratch: backward affected set *)
  mutable pk_pool : int array; (* repair scratch: pooled positions *)
}

let create () =
  {
    present = [||];
    out_buf = [||];
    out_len = [||];
    in_buf = [||];
    in_len = [||];
    label = [||];
    cap = 0;
    stamp = 0;
    fwd_mark = [||];
    bwd_mark = [||];
    seen_mark = [||];
    on_path = [||];
    stack = [||];
    idx = [||];
    low = [||];
    on_stack = [||];
    ord = [||];
    orded = [||];
    n_viol = 0;
    next_lo = -1;
    next_hi = 1;
    pk_f = [||];
    pk_b = [||];
    pk_pool = [||];
  }

let[@lint.allow
     "A1: amortized geometric growth — allocates only when a dense array \
      doubles, never in steady state"] grow_int cap fill arr =
  let narr = Array.make cap fill in
  Array.blit arr 0 narr 0 (Array.length arr);
  narr

let[@lint.allow
     "A1: amortized geometric growth of the per-transaction arrays; a \
      steady-state call on an in-range id allocates nothing"] ensure t v =
  if v < 0 then invalid_arg "Waits_for: negative transaction id";
  if v >= t.cap then begin
    let cap = max 64 (max (v + 1) (2 * t.cap)) in
    let nb = Array.make cap false in
    Array.blit t.present 0 nb 0 t.cap;
    t.present <- nb;
    let bufs = Array.make cap [||] in
    Array.blit t.out_buf 0 bufs 0 t.cap;
    t.out_buf <- bufs;
    let bufs = Array.make cap [||] in
    Array.blit t.in_buf 0 bufs 0 t.cap;
    t.in_buf <- bufs;
    t.out_len <- grow_int cap 0 t.out_len;
    t.in_len <- grow_int cap 0 t.in_len;
    let nl = Array.make cap "" in
    Array.blit t.label 0 nl 0 t.cap;
    t.label <- nl;
    t.fwd_mark <- grow_int cap 0 t.fwd_mark;
    t.bwd_mark <- grow_int cap 0 t.bwd_mark;
    t.seen_mark <- grow_int cap 0 t.seen_mark;
    let nb = Array.make cap false in
    Array.blit t.on_path 0 nb 0 t.cap;
    t.on_path <- nb;
    t.idx <- grow_int cap 0 t.idx;
    t.low <- grow_int cap 0 t.low;
    let nb = Array.make cap false in
    Array.blit t.on_stack 0 nb 0 t.cap;
    t.on_stack <- nb;
    t.ord <- grow_int cap 0 t.ord;
    let nb = Array.make cap false in
    Array.blit t.orded 0 nb 0 t.cap;
    t.orded <- nb;
    t.cap <- cap
  end

(* Lowest position in [buf.(0..n-1)] (ascending) not below [v]. Top-level
   and int-annotated so the hot insert/remove paths neither build a
   closure nor fall back to the polymorphic comparison. *)
let rec scan_pos (buf : int array) n v p =
  if p < n && buf.(p) < v then scan_pos buf n v (p + 1) else p

(* Insert [v] into the ascending buffer at [i]; no-op when present.
   Returns whether the buffer changed, so edge bookkeeping (the violation
   count) only fires on a genuinely new edge. *)
let[@lint.allow
     "A1: amortized per-vertex adjacency doubling; the steady-state \
      insert shifts in place"] sorted_insert (bufs : int array array) lens
    i v =
  let buf = bufs.(i) in
  let n = lens.(i) in
  let p = scan_pos buf n v 0 in
  if p < n && buf.(p) = v then false
  else begin
    let buf =
      if n >= Array.length buf then begin
        let nbuf = Array.make (max 4 (2 * Array.length buf)) 0 in
        Array.blit buf 0 nbuf 0 n;
        bufs.(i) <- nbuf;
        nbuf
      end
      else buf
    in
    Array.blit buf p buf (p + 1) (n - p);
    buf.(p) <- v;
    lens.(i) <- n + 1;
    true
  end

let sorted_remove (bufs : int array array) lens i v =
  let buf = bufs.(i) in
  let n = lens.(i) in
  let p = scan_pos buf n v 0 in
  if p < n && buf.(p) = v then begin
    Array.blit buf (p + 1) buf p (n - p - 1);
    lens.(i) <- n - 1
  end

let add_txn t v =
  ensure t v;
  t.present.(v) <- true

let next_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

(* --- Pearce–Kelly dynamic topological order ------------------------- *)

(* A vertex gets its position the first time it touches an edge, by role:
   fresh waiters go below every assigned position, fresh holders above.
   A newly blocked transaction waiting on established holders and a
   newly contended holder are both in order immediately, so the common
   lock-conflict shapes never trigger a reorder. (Both counters are
   strictly monotone, so "below/above everything so far" stays true no
   matter how repair later permutes the assigned positions.) *)
let ord_as_waiter t v =
  if not t.orded.(v) then begin
    t.orded.(v) <- true;
    t.ord.(v) <- t.next_lo;
    t.next_lo <- t.next_lo - 1
  end

let ord_as_holder t v =
  if not t.orded.(v) then begin
    t.orded.(v) <- true;
    t.ord.(v) <- t.next_hi;
    t.next_hi <- t.next_hi + 1
  end

let[@lint.allow
     "A1: amortized geometric growth of the repair scratch buffers; a \
      steady-state push writes in place"] pk_push (buf : int array) n v =
  let buf =
    if n >= Array.length buf then begin
      let nbuf = Array.make (max 64 (2 * Array.length buf)) 0 in
      Array.blit buf 0 nbuf 0 n;
      nbuf
    end
    else buf
  in
  buf.(n) <- v;
  buf

exception Found

(* Forward DFS from the new edge's head, restricted to positions below
   the tail's: collects the affected descendants into [pk_f] and raises
   [Found] on reaching the tail (the insertion closes a cycle). A path
   ascends in [ord], so the bound loses nothing. *)
let rec pk_fwd t stamp ub (target : int) v i nf =
  if i >= t.out_len.(v) then nf
  else begin
    let w = t.out_buf.(v).(i) in
    if w = target then raise Found
    else if t.ord.(w) < ub && t.fwd_mark.(w) <> stamp then begin
      t.fwd_mark.(w) <- stamp;
      t.pk_f <- pk_push t.pk_f nf w;
      let nf = pk_fwd t stamp ub target w 0 (nf + 1) in
      pk_fwd t stamp ub target v (i + 1) nf
    end
    else pk_fwd t stamp ub target v (i + 1) nf
  end

(* Backward DFS from the new edge's tail, restricted to positions above
   the head's: collects the affected ancestors into [pk_b]. *)
let rec pk_bwd t stamp lb v i nb =
  if i >= t.in_len.(v) then nb
  else begin
    let u = t.in_buf.(v).(i) in
    if t.ord.(u) > lb && t.bwd_mark.(u) <> stamp then begin
      t.bwd_mark.(u) <- stamp;
      t.pk_b <- pk_push t.pk_b nb u;
      let nb = pk_bwd t stamp lb u 0 (nb + 1) in
      pk_bwd t stamp lb v (i + 1) nb
    end
    else pk_bwd t stamp lb v (i + 1) nb
  end

(* Insertion sort of the vertex prefix [a.(0..n-1)] ascending by current
   position: affected regions are small, and the helpers stay int-typed
   and closure-free. *)
let rec pk_shift (a : int array) (ord : int array) j v =
  if j >= 0 && ord.(a.(j)) > ord.(v) then begin
    a.(j + 1) <- a.(j);
    pk_shift a ord (j - 1) v
  end
  else a.(j + 1) <- v

let pk_sort (a : int array) (ord : int array) n =
  for i = 1 to n - 1 do
    pk_shift a ord (i - 1) a.(i)
  done

(* Merge the two position-sorted runs' positions ascending into [pool]. *)
let rec pk_merge (b : int array) nb (f : int array) nf (pool : int array)
    (ord : int array) i j =
  if i < nb && (j >= nf || ord.(b.(i)) < ord.(f.(j))) then begin
    pool.(i + j) <- ord.(b.(i));
    pk_merge b nb f nf pool ord (i + 1) j
  end
  else if j < nf then begin
    pool.(i + j) <- ord.(f.(j));
    pk_merge b nb f nf pool ord i (j + 1)
  end

let[@lint.allow
     "A1: amortized geometric growth of the pooled-position \
      buffer"] pk_room t n =
  if n > Array.length t.pk_pool then
    t.pk_pool <- Array.make (max 64 (max n (2 * Array.length t.pk_pool))) 0

(* Repair the order for a new edge [w -> h] with ord(w) > ord(h), given a
   currently valid order (n_viol = 0) and the edge already in the
   adjacency. Classic Pearce–Kelly: the affected region is the ord
   interval [ord(h), ord(w)]; the ancestors of [w] inside it must all end
   up before the descendants of [h] inside it, so both sets keep their
   relative order and share out the sorted pool of their old positions,
   ancestors first. Everything outside the region is untouched. Returns
   [false] — with no reorder applied — when the forward pass reaches [w],
   i.e. the insertion closed a cycle and no topological order exists. *)
let pk_repair t w h =
  let ub = t.ord.(w) and lb = t.ord.(h) in
  let stamp = next_stamp t in
  t.fwd_mark.(h) <- stamp;
  t.pk_f <- pk_push t.pk_f 0 h;
  match pk_fwd t stamp ub w h 0 1 with
  | exception Found -> false
  | nf ->
      t.bwd_mark.(w) <- stamp;
      t.pk_b <- pk_push t.pk_b 0 w;
      let nb = pk_bwd t stamp lb w 0 1 in
      pk_sort t.pk_f t.ord nf;
      pk_sort t.pk_b t.ord nb;
      pk_room t (nb + nf);
      pk_merge t.pk_b nb t.pk_f nf t.pk_pool t.ord 0 0;
      for i = 0 to nb - 1 do
        t.ord.(t.pk_b.(i)) <- t.pk_pool.(i)
      done;
      for j = 0 to nf - 1 do
        t.ord.(t.pk_f.(j)) <- t.pk_pool.(nb + j)
      done;
      true

(* A new edge [waiter -> holder] that breaks the order: repairable only
   from a valid order; a cycle-closing edge — or any violation arriving
   while one is live — is counted instead, and the count is exact because
   [ord] is frozen until it returns to zero. *)
let note_new_edge t waiter holder =
  if t.ord.(waiter) > t.ord.(holder) then
    if t.n_viol > 0 || not (pk_repair t waiter holder) then
      t.n_viol <- t.n_viol + 1

let[@hot] clear_wait t v =
  if v >= 0 && v < t.cap then begin
    for i = 0 to t.out_len.(v) - 1 do
      let h = t.out_buf.(v).(i) in
      sorted_remove t.in_buf t.in_len h v;
      if t.ord.(v) > t.ord.(h) then t.n_viol <- t.n_viol - 1
    done;
    t.out_len.(v) <- 0
  end

let remove_txn t v =
  if v >= 0 && v < t.cap then begin
    clear_wait t v;
    for i = 0 to t.in_len.(v) - 1 do
      let u = t.in_buf.(v).(i) in
      sorted_remove t.out_buf t.out_len u v;
      if t.ord.(u) > t.ord.(v) then t.n_viol <- t.n_viol - 1
    done;
    t.in_len.(v) <- 0;
    t.present.(v) <- false;
    t.orded.(v) <- false
  end

(* Closure-free [List.mem] over transaction ids for the hot queries. *)
let rec mem_txn (v : int) = function
  | [] -> false
  | h :: rest -> h = v || mem_txn v rest

let rec link_holders t waiter = function
  | [] -> ()
  | h :: rest ->
      ensure t h;
      t.present.(h) <- true;
      if sorted_insert t.out_buf t.out_len waiter h then begin
        ignore (sorted_insert t.in_buf t.in_len h waiter : bool);
        ord_as_holder t h;
        note_new_edge t waiter h
      end;
      link_holders t waiter rest

let[@hot] set_wait t ~waiter ~holders entity =
  if mem_txn waiter holders then
    invalid_arg "Waits_for.set_wait: waiter among holders";
  ensure t waiter;
  clear_wait t waiter;
  t.present.(waiter) <- true;
  (match holders with [] -> () | _ :: _ -> ord_as_waiter t waiter);
  link_holders t waiter holders;
  t.label.(waiter) <- entity

let waits t v =
  if v < 0 || v >= t.cap then []
  else begin
    let buf = t.out_buf.(v) in
    let rec collect i acc =
      if i < 0 then acc else collect (i - 1) ((buf.(i), t.label.(v)) :: acc)
    in
    collect (t.out_len.(v) - 1) []
  end

let waiting_on t v =
  if v < 0 || v >= t.cap then []
  else begin
    let buf = t.in_buf.(v) in
    let rec collect i acc =
      if i < 0 then acc
      else collect (i - 1) ((buf.(i), t.label.(buf.(i))) :: acc)
    in
    collect (t.in_len.(v) - 1) []
  end

let is_blocked t v = v >= 0 && v < t.cap && t.out_len.(v) > 0

let txns t =
  let rec collect v acc =
    if v < 0 then acc
    else collect (v - 1) (if t.present.(v) then v :: acc else acc)
  in
  collect (t.cap - 1) []

let edges t =
  (* waiters ascending, holders ascending within each: lexicographic *)
  List.concat_map
    (fun w ->
      List.map (fun (h, e) -> (w, h, e)) (waits t w))
    (txns t)

let stack_push t n v =
  if n >= Array.length t.stack then
    t.stack <- grow_int (max 64 (2 * Array.length t.stack)) 0 t.stack;
  t.stack.(n) <- v;
  n + 1

(* multi-source early-exit DFS from the holders along waits-for edges;
   only set membership matters, so the stamped scratch serves as the
   visited set and nothing is allocated. The stack top is threaded
   through top-level helpers instead of a [ref]/closure pair so the
   whole query stays allocation-free.

   [ub] bounds the search by topological position: while the dynamic
   order is valid, any path into [waiter] ascends in [ord] and so stays
   strictly below [ord waiter] — vertices above it can be pruned without
   changing the answer. Callers with no valid order pass [max_int],
   which restores the unbounded search. *)
let rec dd_succ t stamp waiter ub v i top =
  if i >= t.out_len.(v) then top
  else begin
    let w = t.out_buf.(v).(i) in
    if w = waiter then raise Found
    else if t.ord.(w) < ub && t.seen_mark.(w) <> stamp then begin
      t.seen_mark.(w) <- stamp;
      dd_succ t stamp waiter ub v (i + 1) (stack_push t top w)
    end
    else dd_succ t stamp waiter ub v (i + 1) top
  end

let dd_expand t stamp waiter ub v top =
  if v >= 0 && v < t.cap then dd_succ t stamp waiter ub v 0 top else top

let rec dd_seed t stamp waiter ub top = function
  | [] -> top
  | h :: rest ->
      dd_seed t stamp waiter ub (dd_expand t stamp waiter ub h top) rest

let rec dd_drain t stamp waiter ub top =
  top > 0
  && dd_drain t stamp waiter ub
       (dd_expand t stamp waiter ub t.stack.(top - 1) (top - 1))

let[@hot] would_deadlock t ~waiter ~holders =
  mem_txn waiter holders
  || (waiter >= 0 && waiter < t.cap
      && t.in_len.(waiter) > 0
      &&
      (* Any path from a holder back to the waiter ends in one of the
         waiter's in-edges, so a waiter nobody waits on is unreachable
         and the search is skipped outright. When the dynamic order is
         valid the search is further bounded by the waiter's position —
         after [set_wait] has installed (and repaired) the new edges,
         every holder sits above the waiter and the query touches only
         the holders' out-buffers. A live violation means a cycle may be
         present and the order proves nothing: fall back to the
         unbounded DFS. *)
      let ub = if t.n_viol = 0 then t.ord.(waiter) else max_int in
      let stamp = next_stamp t in
      match dd_drain t stamp waiter ub (dd_seed t stamp waiter ub 0 holders) with
      | _ -> false
      | exception Found -> true)

(* Mark every vertex reachable from [v] along [buf]/[len] edges with
   [stamp] in [mark]. [v] itself is marked only if re-reached — exactly
   the Digraph [reach_set] convention ([root] marked forward <=> root on
   a cycle). *)
let reach t mark buf len stamp v =
  let top = ref 0 in
  let expand v =
    let b = buf.(v) in
    for i = 0 to len.(v) - 1 do
      let w = b.(i) in
      if mark.(w) <> stamp then begin
        mark.(w) <- stamp;
        top := stack_push t !top w
      end
    done
  in
  expand v;
  while !top > 0 do
    decr top;
    expand t.stack.(!top)
  done

let cycles_through ?(limit = 10_000) t root =
  if root < 0 || root >= t.cap || not t.present.(root) then []
  else begin
    (* Every simple cycle through [root] lies inside [root]'s strongly
       connected component, so restrict the search to vertices that both
       are reachable from the root and reach it. The [budget] caps edge
       traversals — even within an SCC the simple-path space can be
       exponential. Truncation is safe for deadlock resolution: breaking
       the reported cycles and re-enumerating reaches the rest. *)
    let stamp = next_stamp t in
    reach t t.fwd_mark t.out_buf t.out_len stamp root;
    reach t t.bwd_mark t.in_buf t.in_len stamp root;
    let in_scc v = t.fwd_mark.(v) = stamp && t.bwd_mark.(v) = stamp in
    if t.fwd_mark.(root) <> stamp then [] (* root is on no cycle at all *)
    else begin
      let budget = 200 * (limit + 50) in
      let cycles = ref [] in
      let count = ref 0 in
      let steps = ref 0 in
      let path = ref [||] in
      let plen = ref 0 in
      let path_push v =
        if !plen >= Array.length !path then
          path := grow_int (max 16 (2 * Array.length !path)) 0 !path;
        !path.(!plen) <- v;
        incr plen
      in
      let record () =
        let rec build i acc =
          if i < 0 then acc else build (i - 1) (!path.(i) :: acc)
        in
        cycles := build (!plen - 1) [] :: !cycles;
        incr count
      in
      let exhausted () = !count >= limit || !steps >= budget in
      let rec dfs v =
        if not (exhausted ()) then begin
          let buf = t.out_buf.(v) in
          for i = 0 to t.out_len.(v) - 1 do
            let w = buf.(i) in
            incr steps;
            if not (exhausted ()) then
              if w = root then record ()
              else if in_scc w && not t.on_path.(w) then begin
                t.on_path.(w) <- true;
                path_push w;
                dfs w;
                decr plen;
                t.on_path.(w) <- false
              end
          done
        end
      in
      t.on_path.(root) <- true;
      path_push root;
      dfs root;
      t.on_path.(root) <- false;
      List.rev !cycles
    end
  end

let mem_edge t u v =
  let buf = t.out_buf.(u) in
  let rec go i = i < t.out_len.(u) && (buf.(i) = v || go (i + 1)) in
  go 0

(* All of a waiter's out-edges carry its single pending entity, so the
   arc label is an edge-membership test plus one array read — no waits
   list is built. Cycle relabelling reads one label per arc of every
   enumerated cycle, which made the list-building lookup a measurable
   slice of high-contention resolution. *)
let wait_label t u v = if mem_edge t u v then Some t.label.(u) else None

(* Tarjan restricted to the subgraph reachable from the seeds; the
   output is the ascending list of vertices in non-trivial SCCs (or with
   a self-loop, which [set_wait] actually forbids). Only membership is
   observable, so the visit order is free as long as neighbour iteration
   stays ascending. *)
let[@lint.allow
     "A1: the Tarjan census allocates its SCC stack and returns the \
      cyclic-vertex list — run once per detection pass or fixpoint \
      round, never per lock operation"] on_cycle_from t seeds =
  let stamp = next_stamp t in
  let counter = ref 0 in
  let sstack = ref [] in
  let cyclic = ref [] in
  let rec strongconnect v =
    t.seen_mark.(v) <- stamp;
    t.idx.(v) <- !counter;
    t.low.(v) <- !counter;
    incr counter;
    sstack := v :: !sstack;
    t.on_stack.(v) <- true;
    let buf = t.out_buf.(v) in
    for i = 0 to t.out_len.(v) - 1 do
      let w = buf.(i) in
      if t.seen_mark.(w) <> stamp then begin
        strongconnect w;
        if t.low.(w) < t.low.(v) then t.low.(v) <- t.low.(w)
      end
      else if t.on_stack.(w) then
        if t.idx.(w) < t.low.(v) then t.low.(v) <- t.idx.(w)
    done;
    if t.low.(v) = t.idx.(v) then begin
      let rec pop acc =
        match !sstack with
        | [] -> acc
        | w :: rest ->
            sstack := rest;
            t.on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      match pop [] with
      | [ u ] -> if mem_edge t u u then cyclic := u :: !cyclic
      | comp -> cyclic := List.rev_append comp !cyclic
    end
  in
  List.iter
    (fun v ->
      if
        v >= 0 && v < t.cap && t.present.(v) && t.seen_mark.(v) <> stamp
      then strongconnect v)
    seeds;
  List.sort_uniq Txn_id.compare !cyclic

let has_cycle t =
  (* stamped colouring: seen = visited, on_path = grey *)
  let stamp = next_stamp t in
  let exception Cycle in
  let rec dfs v =
    t.seen_mark.(v) <- stamp;
    t.on_path.(v) <- true;
    let buf = t.out_buf.(v) in
    for i = 0 to t.out_len.(v) - 1 do
      let w = buf.(i) in
      if t.on_path.(w) then raise Cycle
      else if t.seen_mark.(w) <> stamp then dfs w
    done;
    t.on_path.(v) <- false
  in
  let rec clear = function
    | [] -> ()
    | v :: rest ->
        t.on_path.(v) <- false;
        clear rest
  in
  let rec roots v =
    if v >= t.cap then false
    else if t.present.(v) && t.seen_mark.(v) <> stamp then
      match dfs v with () -> roots (v + 1) | exception Cycle -> true
    else roots (v + 1)
  in
  let found = roots 0 in
  if found then clear (txns t);
  found

let is_exclusive_forest t =
  let rec degrees v =
    v >= t.cap || ((not t.present.(v)) || t.out_len.(v) <= 1) && degrees (v + 1)
  in
  degrees 0 && not (has_cycle t)

let pp ppf t =
  match edges t with
  | [] -> Fmt.string ppf "(no waits)"
  | es ->
      Fmt.pf ppf "@[<v>%a@]"
        Fmt.(
          list ~sep:cut (fun ppf (w, h, e) -> pf ppf "T%d -%s-> T%d" w e h))
        es

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph waits_for {\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  T%d;\n" v))
    (txns t);
  List.iter
    (fun (w, h, e) ->
      Buffer.add_string buf (Printf.sprintf "  T%d -> T%d [label=%S];\n" w h e))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
