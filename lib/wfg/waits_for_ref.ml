(* Reference implementation of [Waits_for], retained verbatim from the
   Digraph-backed version so the qcheck differential properties in
   test_wfg can assert the dense adjacency-array rewrite is
   observationally identical. Not used by any engine. *)

module Digraph = Prb_graph.Digraph
module Txn_id = Prb_txn.Txn_id

type txn = Txn_id.t
type entity = Prb_storage.Store.entity

type t = {
  graph : Digraph.t;
  labels : (txn * txn, entity) Hashtbl.t; (* (waiter, holder) -> entity *)
}

let create () = { graph = Digraph.create (); labels = Hashtbl.create 64 }

let add_txn t txn = Digraph.add_vertex t.graph txn

let remove_txn t txn =
  List.iter
    (fun h -> Hashtbl.remove t.labels (txn, h))
    (Digraph.succ t.graph txn);
  List.iter
    (fun w -> Hashtbl.remove t.labels (w, txn))
    (Digraph.pred t.graph txn);
  Digraph.remove_vertex t.graph txn

let clear_wait t txn =
  List.iter
    (fun h ->
      Hashtbl.remove t.labels (txn, h);
      Digraph.remove_edge t.graph txn h)
    (Digraph.succ t.graph txn)

let set_wait t ~waiter ~holders entity =
  if List.exists (Txn_id.equal waiter) holders then
    invalid_arg "Waits_for.set_wait: waiter among holders";
  clear_wait t waiter;
  List.iter
    (fun h ->
      Digraph.add_edge t.graph waiter h;
      Hashtbl.replace t.labels (waiter, h) entity)
    holders

let waits t txn =
  List.map
    (fun h -> (h, Hashtbl.find t.labels (txn, h)))
    (Digraph.succ t.graph txn)

let waiting_on t txn =
  List.map
    (fun w -> (w, Hashtbl.find t.labels (w, txn)))
    (Digraph.pred t.graph txn)

let is_blocked t txn = Digraph.out_degree t.graph txn > 0

let txns t = Digraph.vertices t.graph

let edges t =
  List.map
    (fun (w, h) -> (w, h, Hashtbl.find t.labels (w, h)))
    (Digraph.edges t.graph)

let would_deadlock t ~waiter ~holders =
  List.exists (Txn_id.equal waiter) holders
  || Digraph.path_exists_from_any t.graph holders waiter

let cycles_through ?limit t txn = Digraph.cycles_through ?limit t.graph txn

let on_cycle_from t seeds = Digraph.cyclic_vertices_from t.graph seeds

let is_exclusive_forest t = Digraph.is_forest_inverted t.graph

let pp ppf t =
  let es = edges t in
  if es = [] then Fmt.string ppf "(no waits)"
  else
    Fmt.pf ppf "@[<v>%a@]"
      Fmt.(
        list ~sep:cut (fun ppf (w, h, e) -> pf ppf "T%d -%s-> T%d" w e h))
      es

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph waits_for {\n";
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  T%d;\n" v))
    (txns t);
  List.iter
    (fun (w, h, e) ->
      Buffer.add_string buf (Printf.sprintf "  T%d -> T%d [label=%S];\n" w h e))
    (edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
