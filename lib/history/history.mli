(** Execution histories and the conflict-serializability check —
    maintained {e streaming}, in bounded memory.

    Section 2 of the paper asserts that rollbacks "do not interfere with
    the serializability of the two-phase protocol"; this module is the
    oracle our property tests and the chaos harness use to hold the whole
    engine to that claim.

    We record, per transaction and entity, the interval during which the
    lock was held (shared intervals are reads, exclusive intervals are
    writes — the store-visible write happens at the unlock that installs
    the final local copy). Work undone by a rollback is {!discard}ed: a
    released entity was never observed by anyone (the local copy dies, the
    global value never changed), so it must leave no trace in the history.
    Serializability of the {e committed} transactions is then acyclicity
    of the precedence graph over conflicting intervals.

    Unlike the naive construction (retained as {!History_naive} for
    differential testing), the conflict graph is maintained online: when a
    transaction commits, each of its intervals is checked only against the
    retained committed intervals on the {e same entity} — O(conflicting
    accessors), not O(all intervals ever). Once a committed transaction
    has no retained predecessors and lies entirely before the truncation
    watermark (the earliest grant tick any live transaction can still
    commit), it is {e folded} into the serial-order prefix and its
    intervals are dropped, so retained state is proportional to the active
    window rather than the run length. DESIGN.md §10 gives the argument
    that folding preserves the verdict exactly.

    Precondition inherited from the engines: ticks passed to {!note_grant}
    and {!note_release} are non-decreasing over the lifetime of a history
    (both schedulers' clocks are monotone). The truncation watermark —
    and therefore verdict equivalence with the naive construction — relies
    on it. *)

type txn = int
type entity = Prb_storage.Store.entity
type mode = Prb_txn.Lock_mode.t

type interval = {
  txn : txn;
  entity : entity;
  mode : mode;
  granted_at : int;
  released_at : int;
}

type t

val create : unit -> t

val note_grant : t -> tick:int -> txn -> entity -> mode -> unit
(** A lock was granted (an upgrade re-grant replaces the open shared
    interval with an exclusive one). *)

val note_release : t -> tick:int -> txn -> entity -> unit
(** The lock was released at unlock/commit time: closes the open
    interval. Ignored when no interval is open (shared locks released by a
    rollback are discarded instead). *)

val discard : t -> txn -> entity -> unit
(** Partial rollback released this entity: erase the open interval. *)

val discard_txn : t -> txn -> unit
(** Total removal of a transaction: erase its open intervals and any
    closed-but-uncommitted ones. O(1) — live state is indexed per
    transaction, not scanned from a global table. *)

val commit_txn : t -> txn -> unit
(** Transaction finished; its closed intervals join the committed history:
    conflict edges against retained intervals on the same entities are
    added immediately, and any newly quiescent committed prefix is folded
    into the serial-order witness. O(own intervals x same-entity retained
    accessors). @raise Invalid_argument if it still has an open interval
    (checked in O(1) via the per-transaction open-interval index). *)

val committed : t -> interval list
(** {e Retained} committed intervals (those not yet folded into the
    witness prefix), sorted by grant tick then txn. Small histories whose
    transactions are still inside the active window see every committed
    interval here, matching the naive construction. *)

val precedence_graph : t -> Prb_graph.Digraph.t
(** A copy of the retained precedence graph. Vertices: retained committed
    transactions. Edge [a -> b] when [a] and [b] hold conflicting locks on
    an entity and [a]'s interval ends before [b]'s begins. Folded
    transactions and their (prefix -> later) edges are not represented —
    the witness prefix already orders them. *)

val overlapping_conflicts : t -> (interval * interval) list
(** Conflicting committed intervals that overlap in time — impossible
    under a correct lock manager; non-empty means the engine is broken.
    Each pair is reported once, smaller transaction id first, detected at
    the later commit; recorded violations survive folding. *)

val serializable : t -> bool
(** No overlapping conflicts and an acyclic precedence graph. Exactly the
    naive verdict: folding only removes transactions that can no longer
    lie on any cycle or overlap. *)

val equivalent_serial_order : t -> txn list option
(** A serial order witnessing serializability, when it holds: the folded
    prefix followed by a topological order of the retained graph. Always a
    valid linearisation of the full (naive) precedence graph, though not
    necessarily the same witness the naive construction picks when
    several are valid. *)

val n_retained_intervals : t -> int
(** Committed intervals currently retained for conflict checking — the
    quantity prefix truncation keeps proportional to the active window. *)

val n_retained_txns : t -> int

val n_folded : t -> int
(** Committed transactions already folded into the witness prefix. *)
