module Digraph = Prb_graph.Digraph
module Lock_mode = Prb_txn.Lock_mode

type txn = History.txn
type entity = History.entity
type mode = History.mode

type interval = History.interval = {
  txn : txn;
  entity : entity;
  mode : mode;
  granted_at : int;
  released_at : int;
}

type t = {
  open_intervals : (txn * entity, mode * int) Hashtbl.t;
  pending : (txn, interval list ref) Hashtbl.t;
  mutable committed : interval list;
}

let create () =
  {
    open_intervals = Hashtbl.create 64;
    pending = Hashtbl.create 32;
    committed = [];
  }

let note_grant t ~tick txn entity mode =
  Hashtbl.replace t.open_intervals (txn, entity) (mode, tick)

let pending_of t txn =
  match Hashtbl.find_opt t.pending txn with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace t.pending txn l;
      l

let note_release t ~tick txn entity =
  match Hashtbl.find_opt t.open_intervals (txn, entity) with
  | None -> ()
  | Some (mode, granted_at) ->
      Hashtbl.remove t.open_intervals (txn, entity);
      let l = pending_of t txn in
      l := { txn; entity; mode; granted_at; released_at = tick } :: !l

let discard t txn entity = Hashtbl.remove t.open_intervals (txn, entity)

let discard_txn t txn =
  Hashtbl.iter
    (fun (tx, e) _ -> if tx = txn then Hashtbl.remove t.open_intervals (tx, e))
    (Hashtbl.copy t.open_intervals);
  Hashtbl.remove t.pending txn

let commit_txn t txn =
  Hashtbl.iter
    (fun (tx, _) _ ->
      if tx = txn then
        invalid_arg "History_naive.commit_txn: transaction still holds a lock")
    t.open_intervals;
  (match Hashtbl.find_opt t.pending txn with
  | Some l -> t.committed <- !l @ t.committed
  | None -> ());
  Hashtbl.remove t.pending txn

let committed t =
  List.sort
    (fun a b ->
      compare (a.granted_at, a.txn, a.entity) (b.granted_at, b.txn, b.entity))
    t.committed

let conflicting a b =
  a.txn <> b.txn
  && String.equal a.entity b.entity
  && not (Lock_mode.compatible a.mode b.mode)

let precedence_graph t =
  let g = Digraph.create () in
  let intervals = committed t in
  let txns = List.sort_uniq compare (List.map (fun i -> i.txn) intervals) in
  List.iter (fun tx -> Digraph.add_vertex g tx) txns;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if conflicting a b && a.released_at <= b.granted_at then
            Digraph.add_edge g a.txn b.txn)
        intervals)
    intervals;
  g

let overlapping_conflicts t =
  let intervals = committed t in
  let overlaps a b = a.granted_at < b.released_at && b.granted_at < a.released_at in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if conflicting a b && a.txn < b.txn && overlaps a b then Some (a, b)
          else None)
        intervals)
    intervals

let serializable t =
  overlapping_conflicts t = [] && not (Digraph.has_cycle (precedence_graph t))

let equivalent_serial_order t =
  if overlapping_conflicts t <> [] then None
  else Digraph.topological_sort (precedence_graph t)
