module Digraph = Prb_graph.Digraph
module Lock_mode = Prb_txn.Lock_mode

type txn = int
type entity = Prb_storage.Store.entity
type mode = Lock_mode.t

type interval = {
  txn : txn;
  entity : entity;
  mode : mode;
  granted_at : int;
  released_at : int;
}

(* Live (uncommitted) bookkeeping for one transaction: its open intervals
   keyed by entity, its closed-but-uncommitted intervals, and the
   earliest grant tick it has ever produced. The latter is the
   transaction's contribution to the truncation watermark: every interval
   it will ever commit was (or will be) granted at or after it. Discards
   may remove the interval that set the minimum; keeping the stale, lower
   value is conservative — it only delays folding, never unsoundly
   permits it. *)
type live = {
  open_ivs : (entity, mode * int) Hashtbl.t;
  mutable pending : interval list; (* newest first *)
  mutable first_granted : int;
}

(* A committed transaction still retained for conflict checking. *)
type committed_info = {
  ci_intervals : interval list; (* chronological *)
  ci_max_released : int;
}

type t = {
  live : (txn, live) Hashtbl.t;
  retained : (txn, committed_info) Hashtbl.t;
  by_entity : (entity, interval list ref) Hashtbl.t;
      (* retained committed intervals touching each entity *)
  graph : Digraph.t; (* precedence over retained committed txns *)
  mutable folded_rev : txn list; (* serial-order prefix, newest first *)
  mutable n_folded : int;
  mutable violations : (interval * interval) list; (* newest first *)
  mutable now : int; (* highest tick observed *)
  mutable n_retained : int; (* retained committed intervals *)
}

let create () =
  {
    live = Hashtbl.create 64;
    retained = Hashtbl.create 64;
    by_entity = Hashtbl.create 64;
    graph = Digraph.create ();
    folded_rev = [];
    n_folded = 0;
    violations = [];
    now = 0;
    n_retained = 0;
  }

let[@lint.allow
     "A1: lazily creates the per-transaction certifier record on its \
      first grant only"] live_of t txn ~tick =
  match Hashtbl.find_opt t.live txn with
  | Some l -> l
  | None ->
      let l =
        { open_ivs = Hashtbl.create 4; pending = []; first_granted = tick }
      in
      Hashtbl.replace t.live txn l;
      l

let[@lint.allow
     "A1: per-grant provenance bookkeeping — the streaming \
      serializability certifier's input is built here by \
      design"] note_grant t ~tick txn entity mode =
  if tick > t.now then t.now <- tick;
  let l = live_of t txn ~tick in
  if tick < l.first_granted then l.first_granted <- tick;
  Hashtbl.replace l.open_ivs entity (mode, tick)

let[@lint.allow
     "A1: per-release certifier bookkeeping — closing the grant interval \
      records it for the streaming serializability check, by \
      design"] note_release t ~tick txn entity =
  if tick > t.now then t.now <- tick;
  match Hashtbl.find_opt t.live txn with
  | None -> ()
  | Some l -> (
      match Hashtbl.find_opt l.open_ivs entity with
      | None -> ()
      | Some (mode, granted_at) ->
          Hashtbl.remove l.open_ivs entity;
          l.pending <-
            { txn; entity; mode; granted_at; released_at = tick } :: l.pending)

(* Dropping a live record once it is empty lets the watermark advance past
   the transaction's stale [first_granted]; any later re-grant re-creates
   the record at the (necessarily later) new tick. *)
let drop_live_if_empty t txn l =
  if Hashtbl.length l.open_ivs = 0 && l.pending = [] then
    Hashtbl.remove t.live txn

let discard t txn entity =
  match Hashtbl.find_opt t.live txn with
  | None -> ()
  | Some l ->
      Hashtbl.remove l.open_ivs entity;
      drop_live_if_empty t txn l

let discard_txn t txn = Hashtbl.remove t.live txn

(* --- Streaming conflict-graph maintenance ---------------------------- *)

let conflicting a b =
  a.txn <> b.txn
  && String.equal a.entity b.entity
  && not (Lock_mode.compatible a.mode b.mode)

let overlaps a b =
  a.granted_at < b.released_at && b.granted_at < a.released_at

(* The truncation watermark W: every interval committed from this point
   on is granted at tick >= W. Minimum over [now] (future grants happen
   at or after the present) and every live transaction's earliest grant
   (its pending intervals are already bounded by it). Order-independent
   minimum, so direct table iteration is safe. *)
let watermark t =
  Hashtbl.fold (fun _ l acc -> min acc l.first_granted) t.live t.now

(* Fold every retained committed transaction that can no longer interact
   with the future into the serial-order prefix: no predecessors among
   retained transactions (so its prefix position is final) and strictly
   quiescent (all intervals released before the watermark, so no future
   interval can overlap it or precede it). Folding removes its intervals
   from the per-entity indexes — the edges it would have contributed to
   future commits all point prefix -> future, which the prefix order
   already witnesses. *)
let fold_one t txn ci =
  List.iter
    (fun iv ->
      match Hashtbl.find_opt t.by_entity iv.entity with
      | None -> ()
      | Some l -> (
          l := List.filter (fun b -> b.txn <> txn) !l;
          match !l with
          | [] -> Hashtbl.remove t.by_entity iv.entity
          | _ -> ()))
    ci.ci_intervals;
  Digraph.remove_vertex t.graph txn;
  Hashtbl.remove t.retained txn;
  t.n_retained <- t.n_retained - List.length ci.ci_intervals;
  t.folded_rev <- txn :: t.folded_rev;
  t.n_folded <- t.n_folded + 1

(* The retained ids are sorted once per call; each successful fold
   restarts the scan from the front of the (shrinking) list, because
   removing a vertex can zero the in-degree of a smaller retained id.
   The fold sequence — always the smallest currently-foldable id — is
   identical to re-sorting every round, without the per-round sort the
   old loop paid on each commit. *)
let fold_ready t =
  let w = watermark t in
  let foldable txn =
    match Hashtbl.find_opt t.retained txn with
    | None -> None
    | Some ci ->
        if ci.ci_max_released < w && Digraph.in_degree t.graph txn = 0 then
          Some ci
        else None
  in
  let ids = Prb_util.Util.sorted_keys Int.compare t.retained in
  let rec scan = function
    | [] -> ()
    | txn :: rest -> (
        match foldable txn with
        | Some ci ->
            fold_one t txn ci;
            (* folded ids answer [None] from now on, so restarting on the
               original list re-picks the smallest foldable survivor *)
            scan ids
        | None -> scan rest)
  in
  scan ids

let commit_txn t txn =
  match Hashtbl.find_opt t.live txn with
  | None -> ()
  | Some l ->
      if Hashtbl.length l.open_ivs > 0 then
        invalid_arg "History.commit_txn: transaction still holds a lock";
      Hashtbl.remove t.live txn;
      let intervals = List.rev l.pending in
      (match intervals with
      | [] -> () (* no committed interval: no vertex, like the naive graph *)
      | _ ->
          Digraph.add_vertex t.graph txn;
          let max_released = ref min_int in
          List.iter
            (fun a ->
              if a.released_at > !max_released then
                max_released := a.released_at;
              (match Hashtbl.find_opt t.by_entity a.entity with
              | None -> ()
              | Some peers ->
                  List.iter
                    (fun b ->
                      if conflicting a b then begin
                        if overlaps a b then
                          t.violations <-
                            (if a.txn < b.txn then (a, b) else (b, a))
                            :: t.violations;
                        if a.released_at <= b.granted_at then
                          Digraph.add_edge t.graph a.txn b.txn;
                        if b.released_at <= a.granted_at then
                          Digraph.add_edge t.graph b.txn a.txn
                      end)
                    !peers);
              (match Hashtbl.find_opt t.by_entity a.entity with
              | Some peers -> peers := a :: !peers
              | None -> Hashtbl.replace t.by_entity a.entity (ref [ a ])))
            intervals;
          Hashtbl.replace t.retained txn
            {
              ci_intervals = intervals;
              ci_max_released = !max_released;
            };
          t.n_retained <- t.n_retained + List.length intervals;
          fold_ready t)

(* --- Queries ---------------------------------------------------------- *)

let committed t =
  let all =
    Hashtbl.fold (fun _ ci acc -> ci.ci_intervals @ acc) t.retained []
  in
  List.sort
    (fun a b ->
      compare (a.granted_at, a.txn, a.entity) (b.granted_at, b.txn, b.entity))
    all

let precedence_graph t = Digraph.copy t.graph

let overlapping_conflicts t =
  List.sort
    (fun (a1, b1) (a2, b2) ->
      compare
        (a1.granted_at, a1.txn, a1.entity, b1.txn, b1.entity)
        (a2.granted_at, a2.txn, a2.entity, b2.txn, b2.entity))
    t.violations

let serializable t = t.violations = [] && not (Digraph.has_cycle t.graph)

let equivalent_serial_order t =
  if t.violations <> [] then None
  else
    match Digraph.topological_sort t.graph with
    | None -> None
    | Some order -> Some (List.rev_append t.folded_rev order)

let n_retained_intervals t = t.n_retained
let n_retained_txns t = Hashtbl.length t.retained
let n_folded t = t.n_folded
