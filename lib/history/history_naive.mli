(** The original O(I²) serializability construction, retained verbatim as
    the differential-testing reference for the streaming checker.

    This is the seed implementation of {!History}: every query re-derives
    its answer from the full committed interval list — the conflict graph
    by an all-pairs scan, overlap detection likewise — and nothing is ever
    truncated. It is quadratic in run length and exists only so property
    tests can replay one random API trace into both implementations and
    assert that the streaming checker's verdict is identical and its
    witness linearises this module's precedence graph. Engines must use
    {!History}. *)

type txn = History.txn
type entity = History.entity
type mode = History.mode

type interval = History.interval = {
  txn : txn;
  entity : entity;
  mode : mode;
  granted_at : int;
  released_at : int;
}

type t

val create : unit -> t
val note_grant : t -> tick:int -> txn -> entity -> mode -> unit
val note_release : t -> tick:int -> txn -> entity -> unit
val discard : t -> txn -> entity -> unit
val discard_txn : t -> txn -> unit
val commit_txn : t -> txn -> unit

val committed : t -> interval list
(** Every committed interval, sorted by grant tick then txn. *)

val precedence_graph : t -> Prb_graph.Digraph.t
(** The full conflict graph, rebuilt by the quadratic pairwise scan. *)

val overlapping_conflicts : t -> (interval * interval) list
val serializable : t -> bool
val equivalent_serial_order : t -> txn list option
