module Rng = Prb_util.Rng

type site_crash = { site : int; at : int; downtime : int }
type outage = { out_from : int; out_until : int }
type txn_crash = { crash_at : int; victim : int }

type msg_faults = {
  loss : float;
  dup : float;
  delay : float;
  max_delay : int;
}

type timeouts = {
  request_timeout : int;
  backoff_base : int;
  backoff_cap : int;
  degraded_timeout : int;
  readmit_delay : int;
}

type plan = {
  fault_seed : int;
  horizon : int;
  msg : msg_faults;
  site_crashes : site_crash list;
  detector_outages : outage list;
  txn_crashes : txn_crash list;
  timeouts : timeouts;
  rebuild_locks : bool;
}

let default_timeouts =
  {
    request_timeout = 40;
    backoff_base = 10;
    backoff_cap = 5;
    degraded_timeout = 120;
    readmit_delay = 20;
  }

let no_msg_faults = { loss = 0.0; dup = 0.0; delay = 0.0; max_delay = 0 }

let none =
  {
    fault_seed = 0;
    horizon = 0;
    msg = no_msg_faults;
    site_crashes = [];
    detector_outages = [];
    txn_crashes = [];
    timeouts = default_timeouts;
    rebuild_locks = true;
  }

let is_none p =
  p.site_crashes = [] && p.detector_outages = [] && p.txn_crashes = []
  && p.msg.loss = 0.0 && p.msg.dup = 0.0 && p.msg.delay = 0.0

let random ?(n_sites = 0) ~seed ~horizon () =
  let rng = Rng.make (0x6661756c74 lxor seed) in
  let msg =
    {
      loss = Rng.float rng 0.2;
      dup = Rng.float rng 0.2;
      delay = Rng.float rng 0.3;
      max_delay = 1 + Rng.int rng 6;
    }
  in
  let site_crashes =
    if n_sites <= 0 then []
    else
      List.init (Rng.int rng 3) (fun _ ->
          {
            site = Rng.int rng n_sites;
            at = 10 + Rng.int rng (max 1 (horizon - 10));
            downtime = 20 + Rng.int rng 120;
          })
  in
  let detector_outages =
    List.init (Rng.int rng 2) (fun _ ->
        let from_ = Rng.int rng (max 1 horizon) in
        { out_from = from_; out_until = from_ + 50 + Rng.int rng 250 })
  in
  let txn_crashes =
    (* early in the horizon, while the workload is still in flight *)
    List.init (Rng.int rng 3) (fun _ ->
        { crash_at = 2 + Rng.int rng (max 1 (horizon / 8));
          victim = Rng.int rng 64 })
  in
  {
    fault_seed = seed;
    horizon;
    msg;
    site_crashes;
    detector_outages;
    txn_crashes;
    timeouts = default_timeouts;
    rebuild_locks = true;
  }

(* Top-level scan: [in_outage] sits on the scheduler's per-tick
   detection checks, so it must not build a closure per call. *)
let rec outage_covers (tick : int) = function
  | [] -> false
  | o :: rest ->
      (o.out_from <= tick && tick < o.out_until) || outage_covers tick rest

let in_outage p tick = outage_covers tick p.detector_outages

let backoff to_ ~attempt =
  let n = min (max 0 attempt) to_.backoff_cap in
  to_.backoff_base * (1 lsl n)

let pp_plan ppf p =
  Fmt.pf ppf
    "@[<v>fault plan (seed %d, horizon %d)@,\
     msg: loss %.2f dup %.2f delay %.2f (max %d)@,\
     site crashes: %a@,detector outages: %a@,txn crashes: %a@,\
     rebuild locks on recovery: %b@]"
    p.fault_seed p.horizon p.msg.loss p.msg.dup p.msg.delay p.msg.max_delay
    Fmt.(list ~sep:comma (fun ppf c ->
        pf ppf "site %d @@%d for %d" c.site c.at c.downtime))
    p.site_crashes
    Fmt.(list ~sep:comma (fun ppf o ->
        pf ppf "[%d,%d)" o.out_from o.out_until))
    p.detector_outages
    Fmt.(list ~sep:comma (fun ppf c ->
        pf ppf "victim %d @@%d" c.victim c.crash_at))
    p.txn_crashes p.rebuild_locks

type t = { p : plan; rng : Rng.t }

let make p = { p; rng = Rng.make (0x6368616f73 lxor p.fault_seed) }
let plan t = t.p

type delivery = Deliver of int | Duplicate of int * int | Lose

let roll_delay t =
  if t.p.msg.max_delay <= 0 then 0
  else if Rng.chance t.rng t.p.msg.delay then 1 + Rng.int t.rng t.p.msg.max_delay
  else 0

let roll t ~tick =
  if tick >= t.p.horizon || is_none t.p then Deliver 0
  else if Rng.chance t.rng t.p.msg.loss then Lose
  else if Rng.chance t.rng t.p.msg.dup then
    Duplicate (roll_delay t, roll_delay t)
  else Deliver (roll_delay t)

let shipment_arrives t ~tick =
  tick >= t.p.horizon || not (Rng.chance t.rng t.p.msg.loss)
