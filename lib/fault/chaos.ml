module Fault = Prb_fault.Fault
module Store = Prb_storage.Store
module Value = Prb_storage.Value
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Rng = Prb_util.Rng
module Lock_table = Prb_lock.Lock_table
module History = Prb_history.History
module Scheduler = Prb_core.Scheduler
module Detection_policy = Prb_core.Detection_policy
module D = Prb_distrib.Dist_scheduler

type engine = Centralized | Distributed

type report = {
  engine : engine;
  seed : int;
  label : string;
  plan : Fault.plan;
  commits : int;
  ticks : int;
  faults_seen : int;
  violations : string list;
}

let engine_name = function
  | Centralized -> "centralized"
  | Distributed -> "distributed"

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s%s seed %d: %d commits in %d ticks, %d faults — %s@,%a@]"
    (engine_name r.engine)
    (if String.equal r.label "" then "" else " [" ^ r.label ^ "]")
    r.seed r.commits r.ticks r.faults_seen
    (if r.violations = [] then "ok"
     else String.concat "; " r.violations)
    Fault.pp_plan r.plan

let failures = List.filter (fun r -> r.violations <> [])

(* --- The workload: bank transfers, sum of balances conserved --------- *)

let n_accounts = 12
let n_txns = 10
let balance = 100
let n_sites = 3
let max_ticks = 50_000

let accounts = List.init n_accounts (fun i -> Printf.sprintf "a%02d" i)

let fresh_store () =
  Store.of_list (List.map (fun a -> (a, Value.int balance)) accounts)

let conserved =
  Store.Constraint.sum_preserved ~name:"balance sum" accounts
    ~expected:(n_accounts * balance)

(* Transfers lock their two accounts in draw order, not canonical order —
   deadlocks are the point, not a bug, here. *)
let transfer_programs ~seed =
  let rng = Rng.make (0x7472616e lxor seed) in
  List.init n_txns (fun k ->
      let i = Rng.int rng n_accounts in
      let j = (i + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
      let src = List.nth accounts i and dst = List.nth accounts j in
      let amt = 1 + Rng.int rng 10 in
      Program.make
        ~name:(Printf.sprintf "x%02d" k)
        ~locals:[ ("s", Value.int 0); ("d", Value.int 0) ]
        [
          Program.lock_x src;
          Program.lock_x dst;
          Program.read src "s";
          Program.read dst "d";
          Program.write src Expr.(var "s" - int amt);
          Program.write dst Expr.(var "d" + int amt);
        ])

(* --- One execution, one fingerprint ---------------------------------- *)

(* Everything an invariant check or a replay comparison needs. *)
type execution = {
  x_commits : int;
  x_ticks : int;
  x_faults : int;
  x_all_committed : bool;
  x_serializable : bool;
  x_witness_ok : bool;
      (** a serializable verdict came with a serial-order witness — guards
          the streaming checker's verdict/witness agreement *)
  x_residual_locks : (string * int) list;  (** entity, holders+waiters *)
  x_store : (Store.entity * Value.t) list;
  x_sum_ok : bool;
  x_stuck : string option;
  x_max_rollbacks : int;  (** worst-hit transaction's rollback count *)
  x_starved_fallbacks : int;  (** starvation-guard overrides *)
  x_forced_restarts : int;
      (** restarts outside victim selection (degraded-mode timeout
          aborts), which the starvation bound must excuse *)
}

let residual_locks locks =
  List.filter_map
    (fun e ->
      match
        List.length (Lock_table.holders locks e)
        + List.length (Lock_table.waiters locks e)
      with
      | 0 -> None
      | n -> Some (e, n))
    accounts

let exec_centralized ?(detection = Detection_policy.Eager) ?starvation_limit
    ~seed plan =
  let store = fresh_store () in
  let config =
    {
      Scheduler.default_config with
      seed;
      max_ticks;
      faults = Some plan;
      detection;
      starvation_limit;
    }
  in
  let sched = Scheduler.create ~config store in
  List.iter (fun p -> ignore (Scheduler.submit sched p))
    (transfer_programs ~seed);
  let stuck =
    try
      Scheduler.run sched;
      None
    with Scheduler.Stuck msg -> Some msg
  in
  let s = Scheduler.stats sched in
  let history = Scheduler.history sched in
  let serializable = History.serializable history in
  {
    x_commits = s.Scheduler.commits;
    x_ticks = s.Scheduler.ticks;
    x_faults = s.Scheduler.txn_crashes;
    x_all_committed = Scheduler.all_committed sched;
    x_serializable = serializable;
    x_witness_ok =
      (not serializable)
      || Option.is_some (History.equivalent_serial_order history);
    x_residual_locks = residual_locks (Scheduler.lock_table sched);
    x_store = Store.snapshot store;
    x_sum_ok = Store.Constraint.holds conserved store;
    x_stuck = stuck;
    x_max_rollbacks = s.Scheduler.max_txn_rollbacks;
    x_starved_fallbacks = s.Scheduler.starvation_fallbacks;
    x_forced_restarts = s.Scheduler.timeouts;
  }

let exec_distributed ?(detection = Detection_policy.Eager) ?starvation_limit
    ~seed plan =
  let store = fresh_store () in
  let config =
    {
      D.default_config with
      n_sites;
      seed;
      max_ticks;
      faults = Some plan;
      detection_policy = detection;
      starvation_limit;
    }
  in
  let sched = D.create config store in
  List.iteri
    (fun k p -> ignore (D.submit sched ~home:(k mod n_sites) p))
    (transfer_programs ~seed);
  let stuck =
    try
      D.run sched;
      None
    with D.Stuck msg -> Some msg
  in
  let s = D.stats sched in
  let history = D.history sched in
  let serializable = History.serializable history in
  {
    x_commits = s.D.commits;
    x_ticks = s.D.ticks;
    x_faults =
      s.D.msgs_lost + s.D.msgs_duplicated + s.D.site_crashes
      + s.D.missed_rounds;
    x_all_committed = D.all_committed sched;
    x_serializable = serializable;
    x_witness_ok =
      (not serializable)
      || Option.is_some (History.equivalent_serial_order history);
    x_residual_locks = residual_locks (D.lock_table sched);
    x_store = Store.snapshot store;
    x_sum_ok = Store.Constraint.holds conserved store;
    x_stuck = stuck;
    x_max_rollbacks = s.D.max_txn_rollbacks;
    x_starved_fallbacks = s.D.starvation_fallbacks;
    x_forced_restarts = s.D.timeout_aborts;
  }

let execute ?detection ?starvation_limit engine ~seed plan =
  match engine with
  | Centralized -> exec_centralized ?detection ?starvation_limit ~seed plan
  | Distributed -> exec_distributed ?detection ?starvation_limit ~seed plan

let check x =
  let v = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> v := m :: !v) fmt in
  (match x.x_stuck with
  | Some msg -> fail "stuck: %s" msg
  | None -> ());
  if not x.x_all_committed then
    fail "stuck transactions: only %d/%d committed" x.x_commits n_txns;
  if not x.x_serializable then fail "committed history not serializable";
  if not x.x_witness_ok then
    fail "serializable verdict without a serial-order witness";
  if not x.x_sum_ok then fail "balance sum not conserved";
  (* Residual rows are orphans only once every owner is gone. *)
  if x.x_all_committed && x.x_residual_locks <> [] then
    fail "orphaned locks on %s"
      (String.concat ","
         (List.map (fun (e, n) -> Printf.sprintf "%s(%d)" e n)
            x.x_residual_locks));
  List.rev !v

let same_execution a b =
  a.x_commits = b.x_commits && a.x_ticks = b.x_ticks
  && a.x_faults = b.x_faults
  && a.x_residual_locks = b.x_residual_locks
  && List.for_all2
       (fun (e1, v1) (e2, v2) -> String.equal e1 e2 && Value.equal v1 v2)
       a.x_store b.x_store

let run_one engine ~seed ~plan =
  let x = execute engine ~seed plan in
  let x' = execute engine ~seed plan in
  let violations =
    check x
    @ if same_execution x x' then [] else [ "replay diverged from first run" ]
  in
  {
    engine;
    seed;
    label = "";
    plan;
    commits = x.x_commits;
    ticks = x.x_ticks;
    faults_seen = x.x_faults;
    violations;
  }

let sweep ?(horizon = 400) ~seeds () =
  List.concat_map
    (fun seed ->
      let central = Fault.random ~seed ~horizon () in
      let distrib = Fault.random ~n_sites ~seed ~horizon () in
      [
        run_one Centralized ~seed ~plan:central;
        run_one Distributed ~seed ~plan:distrib;
      ])
    (List.init seeds (fun s -> s))

(* --- The detection-policy x outage matrix ----------------------------- *)

(* Low enough that the guard is actually exercised on this workload, high
   enough that resolution never needs an immune victim on clean plans. *)
let starvation_k = 4

(* The no-starvation bound: with the guard at [k] and no fallback
   resolutions, no transaction can be rolled back more than [k] times as
   a victim — any excess must be covered by restarts that bypass victim
   selection entirely (degraded-mode timeout aborts). *)
let check_starvation x =
  if
    x.x_starved_fallbacks = 0
    && x.x_max_rollbacks > starvation_k + x.x_forced_restarts
  then
    [
      Printf.sprintf
        "starvation bound violated: a txn rolled back %d times (limit %d, \
         forced restarts %d)"
        x.x_max_rollbacks starvation_k x.x_forced_restarts;
    ]
  else []

(* An outage-only plan: the detector service is dark for a window long
   enough to cover several scheduled passes of every policy, and nothing
   else fails — so any violation is attributable to detection scheduling,
   not to crash recovery. *)
let outage_only_plan ~seed =
  {
    Fault.none with
    Fault.fault_seed = seed;
    detector_outages = [ { Fault.out_from = 60; out_until = 800 } ];
  }

let run_one_policy engine ~seed ~detection ~outage =
  let plan = if outage then outage_only_plan ~seed else Fault.none in
  let x =
    execute ~detection ~starvation_limit:starvation_k engine ~seed plan
  in
  let x' =
    execute ~detection ~starvation_limit:starvation_k engine ~seed plan
  in
  let violations =
    check x @ check_starvation x
    @ if same_execution x x' then [] else [ "replay diverged from first run" ]
  in
  {
    engine;
    seed;
    label =
      Detection_policy.to_string detection
      ^ (if outage then "/outage" else "/clean");
    plan;
    commits = x.x_commits;
    ticks = x.x_ticks;
    faults_seen = x.x_faults;
    violations;
  }

let policy_matrix ~seeds () =
  List.concat_map
    (fun seed ->
      List.concat_map
        (fun detection ->
          List.concat_map
            (fun outage ->
              [
                run_one_policy Centralized ~seed ~detection ~outage;
                run_one_policy Distributed ~seed ~detection ~outage;
              ])
            [ false; true ])
        Detection_policy.all)
    (List.init seeds (fun s -> s))
