(** Deterministic fault plans and the injector runtime.

    The engines model a failure-free world by default; this module supplies
    the regime the paper's Section 3.3 actually lives in — sites that
    crash and recover, messages that get lost, duplicated or delayed, a
    global detector that misses rounds, and transactions that die mid-run.

    A {!plan} is pure data: every fault is either scheduled explicitly
    (site crashes, detector outages, transaction crashes) or drawn from a
    private SplitMix64 stream seeded by [fault_seed] (per-message faults).
    Given the same (scheduler seed, plan) a run is bit-for-bit replayable —
    the chaos harness ({!Chaos}) asserts exactly that.

    Faults stop at [horizon]: past it every message is delivered instantly
    and no new crash or outage begins, so a finite workload always drains
    and the end-of-run invariants are meaningful. *)

type site_crash = {
  site : int;
  at : int;  (** tick the site dies *)
  downtime : int;  (** ticks until it recovers and rebuilds its lock table *)
}

type outage = { out_from : int; out_until : int }
(** Global-detector outage window [\[out_from, out_until)]. *)

type txn_crash = {
  crash_at : int;
  victim : int;
      (** index into the live growing transactions (sorted by id) at
          [crash_at], taken modulo their count — stable under replay *)
}

type msg_faults = {
  loss : float;  (** P(a remote message vanishes) *)
  dup : float;  (** P(it is delivered twice) *)
  delay : float;  (** P(it is delayed) *)
  max_delay : int;  (** delay is uniform in [\[1, max_delay\]] ticks *)
}

type timeouts = {
  request_timeout : int;
      (** ticks a requester waits for evidence its remote request arrived
          (a grant, or its presence in the queue) before retransmitting *)
  backoff_base : int;  (** first retry backoff increment *)
  backoff_cap : int;  (** maximum doublings of [backoff_base] *)
  degraded_timeout : int;
      (** while the global detector is out, a transaction blocked at least
          this long is timeout-aborted (full restart) *)
  readmit_delay : int;
      (** re-admission delay after a transaction crash; doubles per crash
          of the same transaction, capped by [backoff_cap] *)
}

type plan = {
  fault_seed : int;
  horizon : int;
  msg : msg_faults;
  site_crashes : site_crash list;
  detector_outages : outage list;
  txn_crashes : txn_crash list;
  timeouts : timeouts;
  rebuild_locks : bool;
      (** [false] deliberately skips the lock-table rebuild on site
          recovery — a broken recovery path the harness must catch *)
}

val default_timeouts : timeouts
(** request_timeout 40, backoff_base 10, backoff_cap 5,
    degraded_timeout 120, readmit_delay 20. *)

val none : plan
(** The empty plan: no faults ever. Engines treat [Some none] exactly like
    [None]. *)

val is_none : plan -> bool

val random : ?n_sites:int -> seed:int -> horizon:int -> unit -> plan
(** A randomized plan drawn deterministically from [seed]: 0–2 site
    crashes (when [n_sites] > 0), 0–1 detector outages, 0–2 transaction
    crashes, and message-fault rates up to loss 0.2 / dup 0.2 / delay 0.3
    with delays up to 6 ticks. [n_sites] defaults to 0 (no site crashes —
    the centralised engine has no sites). *)

val in_outage : plan -> int -> bool
(** Is the global detector out at this tick? *)

val backoff : timeouts -> attempt:int -> int
(** Bounded exponential backoff: [backoff_base * 2^min(attempt,
    backoff_cap)], attempt 0 giving [backoff_base]. *)

val pp_plan : Format.formatter -> plan -> unit

(** {1 Injector runtime} *)

type t
(** A plan plus its live message-fault stream. Create one per scheduler;
    replaying a run means recreating it from the same plan. *)

val make : plan -> t
val plan : t -> plan

(** Fate of one remote message. Delays are extra ticks on top of the
    engine's unit delivery latency. *)
type delivery =
  | Deliver of int  (** arrives once, after this extra delay *)
  | Duplicate of int * int  (** arrives twice, at two delays *)
  | Lose

val roll : t -> tick:int -> delivery
(** Roll the fate of a message sent at [tick]. Past the plan's horizon
    (or under a fault-free plan) always [Deliver 0]. *)

val shipment_arrives : t -> tick:int -> bool
(** Fate of one site's waits-for shipment to the global detector: [false]
    means the detector works without that site's edges this round. *)
