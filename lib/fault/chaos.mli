(** The chaos harness: randomized fault plans swept over both engines,
    with every run held to the system's safety and liveness contracts.

    Each run executes a bank-transfer workload (whose balance sum is a
    conserved quantity) under a deterministic {!Prb_fault.Fault.plan} and then
    asserts five invariants:

    + {b serializability} of the committed history,
    + {b conservation} — the accounts still sum to the initial total,
    + {b no orphaned locks} — the lock table is empty once everything
      committed,
    + {b no stuck transactions} — every submitted transaction commits
      (no [Stuck], no tick-budget exhaustion),
    + {b replay determinism} — running the same (seed, plan) twice gives
      bit-for-bit identical stats and final store.

    A report with an empty [violations] list is a pass. The harness is
    the robustness analogue of the property tests: the failure regime is
    exactly where a recovery bug (e.g. skipping the lock-table rebuild —
    [rebuild_locks = false]) turns into an orphaned lock or a wedged
    transaction, and the harness is built to catch it. *)

type engine = Centralized | Distributed

type report = {
  engine : engine;
  seed : int;
  label : string;
      (** which matrix cell produced this report ("policy/outage" for
          {!policy_matrix}; empty for plain runs) *)
  plan : Prb_fault.Fault.plan;
  commits : int;
  ticks : int;
  faults_seen : int;
      (** messages lost + duplicated + site crashes + txn crashes +
          missed detector rounds — how much chaos actually landed *)
  violations : string list;  (** empty = every invariant held *)
}

val pp_report : Format.formatter -> report -> unit

val run_one : engine -> seed:int -> plan:Prb_fault.Fault.plan -> report
(** Run the workload for [seed] under [plan] (twice, for the replay
    check) and verify all five invariants. *)

val sweep : ?horizon:int -> seeds:int -> unit -> report list
(** For each seed in [0 .. seeds-1], draw a randomized plan per engine
    ({!Prb_fault.Fault.random}; site crashes only for the distributed one) and
    {!run_one} both engines — [2 * seeds] reports, deterministic in the
    seed range. [horizon] defaults to 400 ticks. *)

val policy_matrix : seeds:int -> unit -> report list
(** The liveness matrix for deferred detection: every
    {!Prb_core.Detection_policy.all} policy, on both engines, under a
    clean plan and under a detector-outage-only plan (nothing else fails,
    so violations are attributable to detection scheduling), with the
    starvation guard armed. Each cell is checked for the five {!run_one}
    invariants {e plus} the no-starvation bound: when no resolution had
    to override victim immunity, no transaction may have been rolled back
    more than the guard's limit (excused only by degraded-mode forced
    restarts, which bypass victim selection). [4 * 2 * 2 * seeds]
    reports, deterministic in the seed range. *)

val failures : report list -> report list
(** Reports with a non-empty violation list. *)
