module Iset = Set.Make (Int)

type t = {
  succs : (int, Iset.t ref) Hashtbl.t;
  preds : (int, Iset.t ref) Hashtbl.t;
  mutable n_edges : int;
}

let create () =
  { succs = Hashtbl.create 64; preds = Hashtbl.create 64; n_edges = 0 }

let copy t =
  let dup tbl =
    let out = Hashtbl.create (Hashtbl.length tbl) in
    Hashtbl.iter (fun k v -> Hashtbl.replace out k (ref !v)) tbl;
    out
  in
  { succs = dup t.succs; preds = dup t.preds; n_edges = t.n_edges }

let add_vertex t v =
  if not (Hashtbl.mem t.succs v) then begin
    Hashtbl.replace t.succs v (ref Iset.empty);
    Hashtbl.replace t.preds v (ref Iset.empty)
  end

let mem_vertex t v = Hashtbl.mem t.succs v

let adj tbl v = match Hashtbl.find_opt tbl v with None -> Iset.empty | Some s -> !s

let mem_edge t u v = Iset.mem v (adj t.succs u)

let remove_vertex t v =
  if mem_vertex t v then begin
    let out = adj t.succs v and inc = adj t.preds v in
    t.n_edges <-
      t.n_edges - Iset.cardinal out - Iset.cardinal inc
      + (if Iset.mem v out then 1 else 0);
    Iset.iter
      (fun w ->
        match Hashtbl.find_opt t.preds w with
        | Some s -> s := Iset.remove v !s
        | None -> ())
      out;
    Iset.iter
      (fun w ->
        match Hashtbl.find_opt t.succs w with
        | Some s -> s := Iset.remove v !s
        | None -> ())
      inc;
    Hashtbl.remove t.succs v;
    Hashtbl.remove t.preds v
  end

let add_edge t u v =
  add_vertex t u;
  add_vertex t v;
  let su = Hashtbl.find t.succs u and pv = Hashtbl.find t.preds v in
  if not (Iset.mem v !su) then t.n_edges <- t.n_edges + 1;
  su := Iset.add v !su;
  pv := Iset.add u !pv

let remove_edge t u v =
  (match Hashtbl.find_opt t.succs u with
  | Some s ->
      if Iset.mem v !s then begin
        t.n_edges <- t.n_edges - 1;
        s := Iset.remove v !s
      end
  | None -> ());
  match Hashtbl.find_opt t.preds v with
  | Some s -> s := Iset.remove u !s
  | None -> ()

let succ t v = Iset.elements (adj t.succs v)
let pred t v = Iset.elements (adj t.preds v)

(* Allocation-free traversal of a vertex's neighbours, in ascending order
   (same order as [succ]/[pred], so traversals stay deterministic). The
   hot paths below use these instead of materialising element lists. *)
let iter_succ f t v = Iset.iter f (adj t.succs v)
let iter_pred f t v = Iset.iter f (adj t.preds v)
let fold_succ f t v init = Iset.fold f (adj t.succs v) init
let out_degree t v = Iset.cardinal (adj t.succs v)
let in_degree t v = Iset.cardinal (adj t.preds v)

let vertices t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.succs [] |> List.sort compare

let edges t =
  Hashtbl.fold
    (fun u s acc -> Iset.fold (fun v acc -> (u, v) :: acc) !s acc)
    t.succs []
  |> List.sort compare

let n_vertices t = Hashtbl.length t.succs
let n_edges t = t.n_edges

let reachable t source =
  let seen = Hashtbl.create 16 in
  let rec visit v =
    Iset.iter
      (fun w ->
        if not (Hashtbl.mem seen w) then begin
          Hashtbl.replace seen w ();
          visit w
        end)
      (adj t.succs v)
  in
  visit source;
  seen

exception Found_target

(* Early-exit DFS: stop the moment [target] shows up among the frontier,
   instead of materialising the whole reachable set first. Iterative, so a
   long chain cannot overflow the stack. *)
let search_from t sources target =
  let seen = Hashtbl.create 16 in
  let stack = Stack.create () in
  let expand v =
    Iset.iter
      (fun w ->
        if w = target then raise Found_target
        else if not (Hashtbl.mem seen w) then begin
          Hashtbl.replace seen w ();
          Stack.push w stack
        end)
      (adj t.succs v)
  in
  try
    List.iter expand sources;
    while not (Stack.is_empty stack) do
      expand (Stack.pop stack)
    done;
    false
  with Found_target -> true

let path_exists t u v = search_from t [ u ] v
let path_exists_from_any t sources v = search_from t sources v

(* Iterative DFS with colouring; on finding a back edge, reconstruct the
   cycle from the recursion stack. *)
let find_cycle t =
  let white = 0 and grey = 1 and black = 2 in
  let colour = Hashtbl.create 64 in
  let col v = match Hashtbl.find_opt colour v with None -> white | Some c -> c in
  let result = ref None in
  let rec dfs stack v =
    Hashtbl.replace colour v grey;
    let stack = v :: stack in
    iter_succ
      (fun w ->
        if !result = None then
          match col w with
          | c when c = grey ->
              (* Slice the stack from [v] back to [w]. *)
              let rec take acc = function
                | [] -> acc
                | x :: xs -> if x = w then x :: acc else take (x :: acc) xs
              in
              result := Some (take [] stack)
          | c when c = white -> dfs stack w
          | _ -> ())
      t v;
    Hashtbl.replace colour v black
  in
  let rec try_roots = function
    | [] -> ()
    | v :: rest ->
        if !result = None && col v = white then dfs [] v;
        if !result = None then try_roots rest
  in
  try_roots (vertices t);
  !result

let has_cycle t = find_cycle t <> None

(* Vertices reachable from [source] along edges of [adj]. *)
let reach_set adj source =
  let seen = Hashtbl.create 16 in
  let rec visit v =
    Iset.iter
      (fun w ->
        if not (Hashtbl.mem seen w) then begin
          Hashtbl.replace seen w ();
          visit w
        end)
      (adj v)
  in
  visit source;
  seen

let cycles_through ?(limit = 10_000) ?budget t root =
  if not (mem_vertex t root) then []
  else begin
    (* Every simple cycle through [root] lies inside [root]'s strongly
       connected component, so restrict the search to vertices that both
       are reachable from the root and reach it. This makes the
       cycle-free case linear and ensures every explored path can still
       close into a cycle, so the [limit] fills quickly. [budget]
       additionally caps edge traversals — even within an SCC the
       simple-path space can be exponential. Truncation is safe for
       deadlock resolution: breaking the reported cycles and
       re-enumerating reaches the rest. *)
    let forward = reach_set (fun v -> adj t.succs v) root in
    let backward = reach_set (fun v -> adj t.preds v) root in
    let in_scc v = Hashtbl.mem forward v && Hashtbl.mem backward v in
    if not (Hashtbl.mem forward root) then []
      (* root is on no cycle at all *)
    else begin
      let budget = match budget with Some b -> b | None -> 200 * (limit + 50) in
      let cycles = ref [] in
      let count = ref 0 in
      let steps = ref 0 in
      let on_path = Hashtbl.create 16 in
      let exhausted () = !count >= limit || !steps >= budget in
      let rec dfs path v =
        if not (exhausted ()) then
          iter_succ
            (fun w ->
              incr steps;
              if not (exhausted ()) then
                if w = root then begin
                  cycles := List.rev path :: !cycles;
                  incr count
                end
                else if in_scc w && not (Hashtbl.mem on_path w) then begin
                  Hashtbl.replace on_path w ();
                  dfs (w :: path) w;
                  Hashtbl.remove on_path w
                end)
            t v
      in
      Hashtbl.replace on_path root ();
      dfs [ root ] root;
      List.rev !cycles
    end
  end

let cycle_through t root =
  match cycles_through ~limit:1 t root with [] -> None | c :: _ -> Some c

let is_forest_inverted t =
  List.for_all (fun v -> out_degree t v <= 1) (vertices t) && not (has_cycle t)

(* Tarjan, restricted to the subgraph reachable from [roots]. Every SCC
   fully reachable from a root is reported exactly; vertices unreachable
   from all roots are not visited at all. [scc] passes every vertex. *)
let scc_from t roots =
  let index = Hashtbl.create 64 in
  let lowlink = Hashtbl.create 64 in
  let on_stack = Hashtbl.create 64 in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    iter_succ
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      t v;
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := List.sort compare (pop []) :: !components
    end
  in
  List.iter
    (fun v ->
      if mem_vertex t v && not (Hashtbl.mem index v) then strongconnect v)
    roots;
  List.rev !components

let scc t = scc_from t (vertices t)

let cyclic_vertices_from t roots =
  List.concat_map
    (fun comp ->
      match comp with
      | [ v ] -> if mem_edge t v v then [ v ] else []
      | _ -> comp)
    (scc_from t roots)
  |> List.sort compare

let topological_sort t =
  if has_cycle t then None
  else begin
    let seen = Hashtbl.create 64 in
    let order = ref [] in
    let rec visit v =
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.replace seen v ();
        iter_succ visit t v;
        order := v :: !order
      end
    in
    List.iter visit (vertices t);
    Some !order
  end
