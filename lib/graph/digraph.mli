(** Mutable directed graph over integer vertices.

    This is the substrate for the paper's concurrency graphs: waits-for
    relations between transactions. Vertex ids are arbitrary ints (we use
    transaction ids); the structure is hash-based so ids need not be dense.

    Edges are unlabelled here — the waits-for layer keeps its own
    entity-label maps — because cycle analysis only needs structure. *)

type t

val create : unit -> t

val copy : t -> t

val add_vertex : t -> int -> unit
(** Idempotent. *)

val remove_vertex : t -> int -> unit
(** Removes the vertex and every incident edge. Idempotent. *)

val mem_vertex : t -> int -> bool

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts [u -> v], creating missing vertices.
    Idempotent (simple graph). *)

val remove_edge : t -> int -> int -> unit

val mem_edge : t -> int -> int -> bool

val succ : t -> int -> int list
(** Successors of a vertex (empty for unknown vertices), in ascending
    order so traversals are deterministic. *)

val pred : t -> int -> int list

val iter_succ : (int -> unit) -> t -> int -> unit
(** Apply to each successor in ascending order, without materialising a
    list — the allocation-free form the traversal hot paths use. *)

val iter_pred : (int -> unit) -> t -> int -> unit

val fold_succ : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a

val out_degree : t -> int -> int
val in_degree : t -> int -> int

val vertices : t -> int list
(** Ascending order. *)

val edges : t -> (int * int) list
(** Lexicographic order. *)

val n_vertices : t -> int
(** O(1) — the vertex table's size. *)

val n_edges : t -> int
(** O(1) — maintained incrementally by the edge operations rather than
    recounted by a table scan. *)

val reachable : t -> int -> (int, unit) Hashtbl.t
(** Vertices reachable from the source by one or more edges (the source
    itself is included only if it lies on a cycle through itself). *)

val path_exists : t -> int -> int -> bool
(** [path_exists g u v] — is there a directed path (length >= 1) from [u]
    to [v]? Early-exit DFS: stops the moment [v] is reached instead of
    computing full reachability, so a target adjacent to the source is
    O(out-degree) no matter how large the graph. *)

val path_exists_from_any : t -> int list -> int -> bool
(** [path_exists_from_any g sources v] — does a directed path (length
    >= 1) reach [v] from {e any} source? One DFS with a shared visited
    set and early exit, not one full traversal per source — the deadlock
    check for a multi-holder block ([Waits_for.would_deadlock]). *)

val find_cycle : t -> int list option
(** Some simple cycle as a vertex list [v1; ...; vk] with implied edges
    [v1->v2 ... vk->v1], or [None] if the graph is acyclic. *)

val has_cycle : t -> bool

val cycle_through : t -> int -> int list option
(** A simple cycle containing the given vertex, if any; the returned list
    starts at that vertex. *)

val cycles_through : ?limit:int -> ?budget:int -> t -> int -> int list list
(** All simple cycles containing the vertex (each starting at it), for the
    shared-lock deadlock analysis where one wait can close many cycles.
    Enumeration stops after [limit] cycles (default 10_000) or [budget]
    edge traversals (default [200 * (limit + 50)]) — the simple-path space
    is exponential on dense graphs, so both caps are needed. Truncation is
    safe for resolution loops that re-enumerate after acting. *)

val is_forest_inverted : t -> bool
(** True iff every vertex has out-degree <= 1 and the graph is acyclic —
    the shape Theorem 1 gives exclusive-lock waits-for graphs (each waiter
    waits for exactly one holder). *)

val scc : t -> int list list
(** Strongly connected components (Tarjan), each sorted ascending, in
    reverse topological order of the condensation. *)

val scc_from : t -> int list -> int list list
(** SCCs of the subgraph reachable from the given roots (Tarjan seeded at
    the roots; unknown roots are skipped). Any SCC containing a root, or
    reachable from one, is reported exactly as {!scc} would. *)

val cyclic_vertices_from : t -> int list -> int list
(** Ascending list of vertices that lie on some cycle reachable from the
    roots: members of non-trivial SCCs, plus self-loops. Used by the
    incremental deadlock fixpoint — every new cycle must pass through a
    vertex whose out-edges changed, so seeding here with the dirty set
    finds every cycle. *)

val topological_sort : t -> int list option
(** [None] when cyclic. *)
