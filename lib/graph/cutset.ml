module Iset = Set.Make (Int)

type instance = { cycles : int list list; cost : int -> float }

let total_cost t set = List.fold_left (fun acc v -> acc +. t.cost v) 0.0 set

let is_cut t set =
  let s = Iset.of_list set in
  List.for_all (fun cycle -> List.exists (fun v -> Iset.mem v s) cycle) t.cycles

(* Both solvers run on a prepared flat form of the instance: candidate
   vertices deduped ascending, the cost function evaluated once per
   candidate (it is pure but arbitrarily expensive — the resolver's cost
   walks rollback targets per call, so memoising it here is the bulk of
   the E13 high-contention win), and per-candidate bitmasks over the
   cycle list so "which cycles does this set hit" is word-parallel
   instead of a list scan per (vertex, cycle) pair. Search order, tie
   breaks and the float pruning epsilons are exactly the original
   list/Iset solver's, so every decision — including which of several
   optima is found first, and the node at which the budget trips — is
   unchanged. *)
type prep = {
  verts : int array;  (* candidate vertex ids, ascending *)
  costs : float array;  (* costs.(i) = cost verts.(i) *)
  ncyc : int;
  nwords : int;  (* words of 63 bits covering the cycle list *)
  vmask : int array array;  (* vmask.(i): cycles containing verts.(i) *)
  vert_cycs : int array array;  (* per candidate: cycle indices, ascending *)
  cyc_verts : int array array;  (* per cycle: candidate indices, ascending *)
  full : int array;  (* mask with one bit per cycle *)
}

let rec popcount_ x acc =
  if x = 0 then acc else popcount_ (x land (x - 1)) (acc + 1)

let popcount x = popcount_ x 0

let rec vert_index_ (verts : int array) v lo hi =
  if lo >= hi then lo
  else
    let mid = (lo + hi) / 2 in
    if verts.(mid) < v then vert_index_ verts v (mid + 1) hi
    else vert_index_ verts v lo mid

let vert_index verts v = vert_index_ verts v 0 (Array.length verts)

(* Shift-insert [v] into the sorted prefix [a.(0..n-1)]; returns the new
   prefix length. The candidate sets here are tiny (bounded by the
   multiprogramming level) while the cycle stream is long, so binary
   search plus an occasional shift beats a comparison sort of the whole
   stream. *)
let sorted_insert_distinct (a : int array) n v =
  let p = vert_index_ a v 0 n in
  if p < n && a.(p) = v then n
  else begin
    Array.blit a p a (p + 1) (n - p);
    a.(p) <- v;
    n + 1
  end

let prepare t =
  let ncyc = List.length t.cycles in
  let nwords = max 1 ((ncyc + 62) / 63) in
  (* Flatten the cycle lists once: vertex ids into one buffer with cycle
     boundaries, accumulating the sorted distinct candidate set as the
     stream goes by. *)
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 t.cycles in
  let flat = Array.make (max 1 total) 0 in
  let bounds = Array.make (ncyc + 1) 0 in
  let cand = Array.make (max 1 total) 0 in
  let ncand = ref 0 in
  let pos = ref 0 in
  List.iteri
    (fun c cycle ->
      bounds.(c) <- !pos;
      List.iter
        (fun v ->
          flat.(!pos) <- v;
          incr pos;
          ncand := sorted_insert_distinct cand !ncand v)
        cycle;
      bounds.(c + 1) <- !pos)
    t.cycles;
  let ncand = !ncand in
  let verts = Array.sub cand 0 ncand in
  let costs = Array.init ncand (fun i -> t.cost verts.(i)) in
  let vmask = Array.init ncand (fun _ -> Array.make nwords 0) in
  let cyc_verts =
    let buf = Array.make (max 1 ncand) 0 in
    Array.init ncyc (fun c ->
        let m = ref 0 in
        for k = bounds.(c) to bounds.(c + 1) - 1 do
          m := sorted_insert_distinct buf !m (vert_index verts flat.(k))
        done;
        let members = Array.sub buf 0 !m in
        Array.iter
          (fun i ->
            vmask.(i).(c / 63) <- vmask.(i).(c / 63) lor (1 lsl (c mod 63)))
          members;
        members)
  in
  let vert_cycs =
    Array.init ncand (fun i ->
        let acc = ref [] in
        for c = ncyc - 1 downto 0 do
          if vmask.(i).(c / 63) land (1 lsl (c mod 63)) <> 0 then
            acc := c :: !acc
        done;
        Array.of_list !acc)
  in
  let full = Array.make nwords 0 in
  for c = 0 to ncyc - 1 do
    full.(c / 63) <- full.(c / 63) lor (1 lsl (c mod 63))
  done;
  { verts; costs; ncyc; nwords; vmask; vert_cycs; cyc_verts; full }

(* Cycles hit by candidate [i] among the still-alive cycles. *)
let hits_alive p covered i =
  let n = ref 0 in
  for w = 0 to p.nwords - 1 do
    n := !n + popcount (p.vmask.(i).(w) land lnot covered.(w))
  done;
  !n

let all_covered p covered =
  let ok = ref true in
  for w = 0 to p.nwords - 1 do
    if covered.(w) land p.full.(w) <> p.full.(w) then ok := false
  done;
  !ok

(* Index of the first cycle not hit by the chosen set, or [-1]. The cycle
   list order is the branching order of the original solver, so it must
   be the lowest cycle index, not just any uncovered one. *)
let first_surviving p covered =
  let r = ref (-1) in
  let w = ref 0 in
  while !r < 0 && !w < p.nwords do
    let miss = p.full.(!w) land lnot covered.(!w) in
    if miss <> 0 then begin
      let bit = ref 0 in
      while miss land (1 lsl !bit) = 0 do
        incr bit
      done;
      r := (!w * 63) + !bit
    end;
    incr w
  done;
  !r

let chosen_elements p chosen =
  let acc = ref [] in
  for i = Array.length p.verts - 1 downto 0 do
    if chosen.(i) then acc := p.verts.(i) :: !acc
  done;
  !acc

(* Greedy hitting set over the prepared instance; identical pick sequence
   to the classic fold: candidates of the alive cycles ascending, a
   strictly-better-by-1e-12 score replaces, so the lowest vertex wins
   ties. *)
let greedy_prepared p =
  let ncand = Array.length p.verts in
  let chosen = Array.make ncand false in
  let covered = Array.make p.nwords 0 in
  let rec loop () =
    if not (all_covered p covered) then begin
      let best = ref (-1) in
      let best_score = ref 0.0 in
      for i = 0 to ncand - 1 do
        let hits = hits_alive p covered i in
        if hits > 0 then begin
          let score = float_of_int hits /. Float.max p.costs.(i) 1e-9 in
          if !best < 0 || score > !best_score +. 1e-12 then begin
            best := i;
            best_score := score
          end
        end
      done;
      (* [best < 0] would mean an alive cycle with no members: impossible
         (cycles are non-empty vertex lists). *)
      if !best >= 0 then begin
        chosen.(!best) <- true;
        for w = 0 to p.nwords - 1 do
          covered.(w) <- covered.(w) lor p.vmask.(!best).(w)
        done;
        loop ()
      end
    end
  in
  loop ();
  chosen_elements p chosen

let greedy t = greedy_prepared (prepare t)

exception Budget_exhausted

let exact ?(node_budget = 1_000_000) t =
  (* Branch and bound on the first surviving cycle: one branch per vertex of
     that cycle. Upper bound initialised by the greedy solution. *)
  let p = prepare t in
  let ncand = Array.length p.verts in
  let greedy_set = greedy_prepared p in
  let best_set = ref greedy_set in
  let best_cost =
    ref (List.fold_left (fun acc v -> acc +. t.cost v) 0.0 greedy_set)
  in
  let nodes = ref 0 in
  let chosen = Array.make ncand false in
  let covered = Array.make p.nwords 0 in
  (* Per-cycle hit counts back the covered bitmap out on backtrack: a
     cycle's bit clears only when its last chosen member leaves. *)
  let hit_count = Array.make (max 1 p.ncyc) 0 in
  let add i =
    chosen.(i) <- true;
    Array.iter
      (fun c ->
        hit_count.(c) <- hit_count.(c) + 1;
        if hit_count.(c) = 1 then
          covered.(c / 63) <- covered.(c / 63) lor (1 lsl (c mod 63)))
      p.vert_cycs.(i)
  in
  let remove i =
    chosen.(i) <- false;
    Array.iter
      (fun c ->
        hit_count.(c) <- hit_count.(c) - 1;
        if hit_count.(c) = 0 then
          covered.(c / 63) <- covered.(c / 63) land lnot (1 lsl (c mod 63)))
      p.vert_cycs.(i)
  in
  let rec search chosen_cost =
    incr nodes;
    if !nodes > node_budget then raise Budget_exhausted;
    if chosen_cost < !best_cost -. 1e-12 then begin
      match first_surviving p covered with
      | -1 ->
          best_set := chosen_elements p chosen;
          best_cost := chosen_cost
      | cyc ->
          Array.iter
            (fun i ->
              if not chosen.(i) then begin
                add i;
                search (chosen_cost +. p.costs.(i));
                remove i
              end)
            p.cyc_verts.(cyc)
    end
  in
  match search 0.0 with
  | () -> Some !best_set
  | exception Budget_exhausted -> None
