(* Typedtree extraction and the intra-repo call graph for the deep pass.

   One walk per compilation unit distills every top-level function into a
   flat [def]: its parameters, its [[@hot]] / [[@lint.allow]] markings,
   and an ordered stream of the events the deep rules care about —
   allocation sites (A1), calls with their argument identifiers (A1
   reachability, P1 sequencing, H1 confinement) and slot-handle escapes
   (H1). The global phase (Lint_deep) never re-touches the typedtree: it
   resolves call candidates against the definition table, closes the
   graph, and applies the rules to the event streams.

   Reference resolution: paths print through dune's wrapper aliases
   ([Pqueue.push] with [module Pqueue = Prb_util.Dense.Pqueue] in scope),
   so each unit records its module aliases and rewrites reference heads
   through them; bare identifiers resolve by [Ident] identity against the
   unit's own definitions. Every candidate is a dotted canonical key in
   the same namespace as {!Lint_cmt.canonical_of_modname}. *)

module T = Typedtree
module TI = Tast_iterator
open Typedtree

type call = {
  c_loc : Location.t;
  candidates : string list;  (** canonical callee keys, best first *)
  args : (string option * string option) list;
      (** (label, argument identifier) in call order; [None] identifiers
          are non-variable arguments *)
  c_allowed : string list;  (** rationale-carrying allows in scope *)
}

type alloc = { a_loc : Location.t; a_what : string; a_allowed : string list }

type escape = { e_loc : Location.t; e_what : string; e_allowed : string list }

type event = Call of call | Alloc of alloc | Escape of escape

type def = {
  key : string;
  d_loc : Location.t;
  hot : bool;
  params : (string option * string) list;
      (** (label, unique ident) of the currying spine, in order *)
  d_allowed : string list;
  events : event list;
}

type unit_info = {
  u_name : string;
  u_source : string;
  u_lib : string option;
  defs : def list;
  bad_allows : (Location.t * string) list;
      (** deep-rule suppressions missing their required rationale *)
}

(* --- Canonical-key taxonomy ------------------------------------------- *)

let components k = String.split_on_char '.' k

let last_component k =
  match List.rev (components k) with x :: _ -> x | [] -> k

let has_component k c = List.exists (String.equal c) (components k)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

(* The partial-rollback exception (P1): calls routed through the rollback
   layer neither count as releases nor as acquires. The layer is
   [lib/rollback] in the real tree; fixtures model it with a module
   component literally named [Rollback]. *)
let is_rollback_key k =
  starts_with ~prefix:"Prb_rollback." k || has_component k "Rollback"

type lock_prim = Lp_acquire | Lp_release | Lp_none

(* Lock primitives are recognised structurally — a module component named
   [Lock_table] (the real [Prb_lock.Lock_table] or a fixture stub) — so
   the discipline is checkable on self-contained sources. The transaction
   is always the second positional argument. *)
let lock_prim_of k =
  if not (has_component k "Lock_table") then Lp_none
  else
    match last_component k with
    | "request" -> Lp_acquire
    | "release" | "release_all" | "cancel_wait" -> Lp_release
    | _ -> Lp_none

let lock_prim_txn_pos = 1

let is_slots_key k = has_component k "Slots"
let is_slots_create k = is_slots_key k && String.equal (last_component k) "create"

let is_slots_handle_producer k =
  is_slots_key k
  && match last_component k with "alloc" | "handle" -> true | _ -> false

let is_unsafe_key k =
  let l = last_component k in
  starts_with ~prefix:"unsafe_" l
  && (has_component k "Array" || has_component k "Bytes"
     || has_component k "String" || has_component k "Float")

(* --- Known-allocating stdlib calls (A1) -------------------------------- *)

let alloc_prims =
  [
    ("Stdlib.ref", "ref cell");
    ("Stdlib.@", "list append");
    ("Stdlib.^", "string append");
    ("Stdlib.List.append", "list append");
    ("Stdlib.List.concat", "list concat");
    ("Stdlib.List.concat_map", "list concat_map");
    ("Stdlib.List.map", "List.map result list");
    ("Stdlib.List.mapi", "List.mapi result list");
    ("Stdlib.List.rev", "List.rev result list");
    ("Stdlib.List.rev_append", "list rev_append");
    ("Stdlib.List.init", "List.init result list");
    ("Stdlib.List.filter", "List.filter result list");
    ("Stdlib.List.filter_map", "List.filter_map result list");
    ("Stdlib.List.sort", "List.sort result list");
    ("Stdlib.List.sort_uniq", "List.sort_uniq result list");
    ("Stdlib.List.stable_sort", "List.stable_sort result list");
    ("Stdlib.List.of_seq", "list of_seq");
    ("Stdlib.List.to_seq", "sequence");
    ("Stdlib.Array.make", "Array.make");
    ("Stdlib.Array.init", "Array.init");
    ("Stdlib.Array.append", "Array.append");
    ("Stdlib.Array.concat", "Array.concat");
    ("Stdlib.Array.sub", "Array.sub");
    ("Stdlib.Array.copy", "Array.copy");
    ("Stdlib.Array.of_list", "Array.of_list");
    ("Stdlib.Array.to_list", "Array.to_list");
    ("Stdlib.Array.map", "Array.map");
    ("Stdlib.Array.mapi", "Array.mapi");
    ("Stdlib.String.concat", "String.concat");
    ("Stdlib.String.sub", "String.sub");
    ("Stdlib.String.make", "String.make");
    ("Stdlib.String.init", "String.init");
    ("Stdlib.Bytes.create", "Bytes.create");
    ("Stdlib.Bytes.make", "Bytes.make");
    ("Stdlib.Bytes.sub", "Bytes.sub");
    ("Stdlib.Bytes.to_string", "Bytes.to_string");
    ("Stdlib.Bytes.of_string", "Bytes.of_string");
    ("Stdlib.Hashtbl.create", "Hashtbl.create");
    ("Stdlib.Hashtbl.add", "Hashtbl.add (bucket)");
    ("Stdlib.Hashtbl.replace", "Hashtbl.replace (bucket)");
    ("Stdlib.Buffer.create", "Buffer.create");
    ("Stdlib.Buffer.contents", "Buffer.contents");
    ("Stdlib.Queue.create", "Queue.create");
    ("Stdlib.Queue.add", "Queue.add (cell)");
    ("Stdlib.Queue.push", "Queue.push (cell)");
    ("Stdlib.Stack.create", "Stack.create");
    ("Stdlib.Stack.push", "Stack.push (cell)");
    ("Stdlib.string_of_int", "string_of_int");
    ("Stdlib.string_of_float", "string_of_float");
    ("Stdlib.string_of_bool", "string_of_bool");
  ]

let formatting_prefixes =
  [ "Stdlib.Printf."; "Stdlib.Format."; "Fmt."; "Stdlib.Scanf." ]

let float_prims =
  [
    "Stdlib.+."; "Stdlib.-."; "Stdlib.*."; "Stdlib./."; "Stdlib.~-.";
    "Stdlib.float_of_int"; "Stdlib.Float.of_int"; "Stdlib.sqrt";
    "Stdlib.abs_float"; "Stdlib.mod_float"; "Stdlib.ceil"; "Stdlib.floor";
  ]

let poly_prims =
  [
    "Stdlib.compare"; "Stdlib.="; "Stdlib.<>"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>="; "Stdlib.min"; "Stdlib.max";
    "Stdlib.Hashtbl.hash";
  ]

let alloc_prim_of k =
  match List.assoc_opt k alloc_prims with
  | Some d -> Some d
  | None ->
      if List.exists (fun p -> starts_with ~prefix:p k) formatting_prefixes
      then Some "formatting"
      else None

(* --- Type helpers ------------------------------------------------------ *)

let type_head t =
  match Types.get_desc t with
  | Types.Tconstr (p, _, _) -> Some (Path.name p)
  | _ -> None

let is_immediate_type t =
  match type_head t with
  | Some ("int" | "bool" | "char" | "unit") -> true
  | _ -> false

let is_arrow_type t =
  match Types.get_desc t with Types.Tarrow _ -> true | _ -> false

(* --- Attribute helpers ------------------------------------------------- *)

let deep_ids = [ "A1"; "P1"; "H1" ]

let is_hot_attrs (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) ->
      String.equal a.attr_name.txt "hot"
      || String.equal a.attr_name.txt "lint.hot")
    attrs

(* Split the allows on [attrs] into (granted deep-or-any ids backed by a
   rationale or not needing one, deep ids suppressed without the required
   rationale at loc). Untyped ids pass through untouched — the deep pass
   only consumes A1/P1/H1. *)
let allow_partition (attrs : Parsetree.attributes) =
  List.fold_left
    (fun (ok, bad) (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt "lint.allow") then (ok, bad)
      else
        match a.attr_payload with
        | Parsetree.PStr
            [
              {
                pstr_desc =
                  Parsetree.Pstr_eval
                    ( {
                        pexp_desc =
                          Parsetree.Pexp_constant
                            (Parsetree.Pconst_string (s, _, _));
                        _;
                      },
                      _ );
                _;
              };
            ] ->
            let ids, rationale = Lint.parse_allow_payload s in
            let ids = List.map String.uppercase_ascii ids in
            List.fold_left
              (fun (ok, bad) id ->
                if List.mem id deep_ids && rationale = None then
                  (ok, (a.attr_loc, id) :: bad)
                else (id :: ok, bad))
              (ok, bad) ids
        | _ -> (ok, bad))
    ([], []) attrs

(* --- Static constants (no runtime allocation) -------------------------- *)

let rec is_static_const (e : T.expression) =
  match e.exp_desc with
  | T.Texp_constant _ -> true
  | T.Texp_construct (_, _, args) -> List.for_all is_static_const args
  | T.Texp_tuple es -> List.for_all is_static_const es
  | T.Texp_variant (_, Some e) -> is_static_const e
  | T.Texp_variant (_, None) -> true
  | _ -> false

(* --- Free variables (closure allocation) ------------------------------- *)

let rec pat_idents : type k. k T.general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | T.Tpat_var (id, _) -> [ Ident.unique_name id ]
  | T.Tpat_alias (p, id, _) -> Ident.unique_name id :: pat_idents p
  | T.Tpat_tuple ps -> List.concat_map pat_idents ps
  | T.Tpat_construct (_, _, ps, _) -> List.concat_map pat_idents ps
  | T.Tpat_variant (_, Some p, _) -> pat_idents p
  | T.Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> pat_idents p) fields
  | T.Tpat_array ps -> List.concat_map pat_idents ps
  | T.Tpat_lazy p -> pat_idents p
  | T.Tpat_or (a, b, _) -> pat_idents a @ pat_idents b
  | T.Tpat_value v -> pat_idents (v :> T.value T.general_pattern)
  | T.Tpat_exception p -> pat_idents p
  | _ -> []

(* A function with no free variables is allocated statically by the
   compiler, so only closures that actually capture something count as
   allocations. [extra_bound] carries the names bound by an enclosing
   [let rec] group whose right-hand sides we are inside: a recursive
   reference to a closed function is resolved statically, not captured. *)
let free_variables ~globals ~extra_bound (e : T.expression) =
  let used = Hashtbl.create 16 and bound = Hashtbl.create 16 in
  let bind ids = List.iter (fun i -> Hashtbl.replace bound i ()) ids in
  let it =
      {
        TI.default_iterator with
        expr =
          (fun self e ->
            (match e.exp_desc with
            | T.Texp_ident (Path.Pident id, _, _) ->
                Hashtbl.replace used (Ident.unique_name id) ()
            | T.Texp_function { param; cases; _ } ->
                bind [ Ident.unique_name param ];
                List.iter (fun (c : _ T.case) -> bind (pat_idents c.c_lhs))
                  cases
            | T.Texp_match (_, cases, _) ->
                List.iter (fun (c : _ T.case) -> bind (pat_idents c.c_lhs))
                  cases
            | T.Texp_try (_, cases) ->
                List.iter (fun (c : _ T.case) -> bind (pat_idents c.c_lhs))
                  cases
            | T.Texp_let (_, vbs, _) ->
                List.iter
                  (fun (vb : T.value_binding) -> bind (pat_idents vb.vb_pat))
                  vbs
            | T.Texp_for (id, _, _, _, _, _) -> bind [ Ident.unique_name id ]
            | _ -> ());
            TI.default_iterator.expr self e);
      }
  in
  it.expr it e;
  Hashtbl.fold
    (fun k () acc ->
      if
        Hashtbl.mem bound k || Hashtbl.mem globals k
        || List.mem k extra_bound
      then acc
      else k :: acc)
    used []

(* --- Per-unit extraction ----------------------------------------------- *)

type ctx = {
  unit_name : string;
  aliases : (string, string) Hashtbl.t;  (* local module -> canonical *)
  def_idents : (string, string) Hashtbl.t;  (* Ident.unique_name -> key *)
  mutable file_allows : string list;
  mutable all_bad : (Location.t * string) list;
  (* per-def walk state *)
  mutable events : event list;  (* reversed *)
  mutable scopes : string list list;
  mutable rec_bound : string list;
  mutable taint : (string, unit) Hashtbl.t;
}

let active_allows ctx =
  ctx.file_allows @ List.concat ctx.scopes

let record_bad ctx bad = ctx.all_bad <- bad @ ctx.all_bad

let with_allows ctx attrs f =
  let ok, bad = allow_partition attrs in
  record_bad ctx bad;
  match ok with
  | [] -> f ()
  | _ ->
      ctx.scopes <- ok :: ctx.scopes;
      Fun.protect ~finally:(fun () -> ctx.scopes <- List.tl ctx.scopes) f

let push_event ctx ev = ctx.events <- ev :: ctx.events

let record_alloc ctx loc what =
  push_event ctx
    (Alloc { a_loc = loc; a_what = what; a_allowed = active_allows ctx })

let record_escape ctx loc what =
  push_event ctx
    (Escape { e_loc = loc; e_what = what; e_allowed = active_allows ctx })

(* Candidate canonical keys for a reference, best first. *)
let candidates ctx (p : Path.t) =
  match p with
  | Path.Pident id -> (
      match Hashtbl.find_opt ctx.def_idents (Ident.unique_name id) with
      | Some key -> [ key ]
      | None -> [])
  | _ -> (
      let raw = Lint_cmt.canonical_path (Path.name p) in
      match String.split_on_char '.' raw with
      | head :: rest -> (
          match Hashtbl.find_opt ctx.aliases head with
          | Some target ->
              [ String.concat "." (target :: rest);
                ctx.unit_name ^ "." ^ raw ]
          | None -> [ raw; ctx.unit_name ^ "." ^ raw ])
      | [] -> [ raw ])

let label_name = function
  | Asttypes.Nolabel -> None
  | Asttypes.Labelled s | Asttypes.Optional s -> Some s

let arg_ident (a : T.expression option) =
  match a with
  | Some { exp_desc = T.Texp_ident (Path.Pident id, _, _); _ } ->
      Some (Ident.unique_name id)
  | _ -> None

let is_tainted ctx (e : T.expression) =
  match e.exp_desc with
  | T.Texp_ident (Path.Pident id, _, _) ->
      Hashtbl.mem ctx.taint (Ident.unique_name id)
  | T.Texp_apply ({ exp_desc = T.Texp_ident (p, _, _); _ }, _) ->
      List.exists is_slots_handle_producer (candidates ctx p)
  | _ -> false

let record_apply ctx (p : Path.t) (fn : T.expression) (whole : T.expression)
    args =
  let loc = fn.exp_loc in
  let cands = candidates ctx p in
  (match cands with
  | c :: _ -> (
      match alloc_prim_of c with
      | Some what -> record_alloc ctx loc what
      | None ->
          if List.mem c float_prims then
            record_alloc ctx loc "boxed float arithmetic"
          else if List.mem c poly_prims then (
            match args with
            | (_, Some a) :: _ when not (is_immediate_type a.exp_type) ->
                record_alloc ctx loc
                  (Printf.sprintf
                     "polymorphic primitive (%s) on non-immediate operands"
                     (last_component c))
            | _ -> ()))
  | [] -> ());
  (* a handle flowing into a ref cell escapes like a field store *)
  (match (cands, args) with
  | "Stdlib.ref" :: _, [ (_, Some a) ] when is_tainted ctx a ->
      record_escape ctx loc "slot handle captured in a ref cell"
  | _ -> ());
  (* partial application allocates the intermediate closure *)
  if List.exists (fun (_, a) -> a = None) args then
    record_alloc ctx loc "partial application (intermediate closure)"
  else if is_arrow_type whole.exp_type then
    record_alloc ctx loc "partial application (result is a function)";
  push_event ctx
    (Call
       {
         c_loc = loc;
         candidates = cands;
         args = List.map (fun (l, a) -> (label_name l, arg_ident a)) args;
         c_allowed = active_allows ctx;
       })

let body_iterator ctx =
  let expr (self : TI.iterator) (e : T.expression) =
    with_allows ctx e.exp_attributes @@ fun () ->
    match e.exp_desc with
    | T.Texp_ident (p, _, _) -> (
        (* a bare reference to a repo function: conservative call edge *)
        match candidates ctx p with
        | [] -> ()
        | cands ->
            push_event ctx
              (Call
                 {
                   c_loc = e.exp_loc;
                   candidates = cands;
                   args = [];
                   c_allowed = active_allows ctx;
                 }))
    | T.Texp_apply (({ exp_desc = T.Texp_ident (p, _, _); _ } as fn), args) ->
        with_allows ctx fn.exp_attributes (fun () ->
            record_apply ctx p fn e args);
        List.iter (fun (_, a) -> Option.iter (self.expr self) a) args
    | T.Texp_apply (fn, args) ->
        if List.exists (fun (_, a) -> a = None) args then
          record_alloc ctx e.exp_loc "partial application (intermediate closure)";
        self.expr self fn;
        List.iter (fun (_, a) -> Option.iter (self.expr self) a) args
    | T.Texp_function _ ->
        (match
           free_variables ~globals:ctx.def_idents
             ~extra_bound:ctx.rec_bound e
         with
        | [] -> ()  (* closed: statically allocated *)
        | _ ->
            record_alloc ctx e.exp_loc
              "closure construction (captures its environment; hoist the \
               local function and pass its captures explicitly)");
        TI.default_iterator.expr self e
    | T.Texp_let (Asttypes.Recursive, vbs, body) ->
        let bound =
          List.concat_map (fun (vb : T.value_binding) -> pat_idents vb.vb_pat)
            vbs
        in
        let saved = ctx.rec_bound in
        ctx.rec_bound <- bound @ saved;
        List.iter (self.value_binding self) vbs;
        ctx.rec_bound <- saved;
        self.expr self body
    | T.Texp_tuple _ when not (is_static_const e) ->
        record_alloc ctx e.exp_loc "tuple";
        TI.default_iterator.expr self e
    | T.Texp_construct (_, cd, args) when args <> [] && not (is_static_const e)
      ->
        record_alloc ctx e.exp_loc
          (match cd.Types.cstr_name with
          | "::" -> "list cons"
          | "Some" -> "Some boxing (optional argument or option result)"
          | name -> Printf.sprintf "constructor %s (heap block)" name);
        TI.default_iterator.expr self e
    | T.Texp_variant (_, Some _) when not (is_static_const e) ->
        record_alloc ctx e.exp_loc "polymorphic variant";
        TI.default_iterator.expr self e
    | T.Texp_record { fields; _ } ->
        record_alloc ctx e.exp_loc "record";
        Array.iter
          (fun (ld, rld) ->
            match rld with
            | T.Overridden (_, fe) when is_tainted ctx fe ->
                record_escape ctx fe.T.exp_loc
                  (Printf.sprintf "slot handle stored into field %s"
                     ld.Types.lbl_name)
            | _ -> ())
          fields;
        TI.default_iterator.expr self e
    | T.Texp_setfield (_, _, ld, fe) ->
        if is_tainted ctx fe then
          record_escape ctx fe.T.exp_loc
            (Printf.sprintf "slot handle stored into mutable field %s"
               ld.Types.lbl_name);
        TI.default_iterator.expr self e
    | T.Texp_array _ ->
        record_alloc ctx e.exp_loc "array literal";
        TI.default_iterator.expr self e
    | T.Texp_lazy _ ->
        record_alloc ctx e.exp_loc "lazy suspension";
        TI.default_iterator.expr self e
    | T.Texp_pack _ ->
        record_alloc ctx e.exp_loc "first-class module";
        TI.default_iterator.expr self e
    | _ -> TI.default_iterator.expr self e
  in
  let value_binding (self : TI.iterator) (vb : T.value_binding) =
    with_allows ctx vb.T.vb_attributes @@ fun () ->
    (match (vb.T.vb_pat.T.pat_desc, vb.T.vb_expr.T.exp_desc) with
    | ( T.Tpat_var (id, _),
        T.Texp_apply ({ exp_desc = T.Texp_ident (p, _, _); _ }, _) )
      when List.exists is_slots_handle_producer (candidates ctx p) ->
        Hashtbl.replace ctx.taint (Ident.unique_name id) ()
    | _ -> ());
    TI.default_iterator.value_binding self vb
  in
  { TI.default_iterator with expr; value_binding }

(* Peel the currying spine of a definition: parameters in order, then the
   body expressions (all case bodies and guards for a [function] arm). *)
let rec peel params (e : T.expression) =
  match e.exp_desc with
  | T.Texp_function { arg_label; param; cases; _ } -> (
      let params = params @ [ (label_name arg_label, Ident.unique_name param) ] in
      match cases with
      | [ { c_guard = None; c_rhs; _ } ] -> peel params c_rhs
      | cases ->
          ( params,
            List.concat_map
              (fun (c : _ T.case) ->
                (match c.c_guard with Some g -> [ g ] | None -> [])
                @ [ c.c_rhs ])
              cases ))
  | _ -> (params, [ e ])

(* Pass A: collect aliases and definition keys (so forward references and
   mutual recursion resolve); Pass B: walk each body. *)

type pending = {
  p_key : string;
  p_loc : Location.t;
  p_hot : bool;
  p_allowed : string list;
  p_expr : T.expression;
}

let rec collect_structure ctx ~prefix (str : T.structure) acc =
  List.fold_left
    (fun acc (item : T.structure_item) ->
      match item.str_desc with
      | T.Tstr_value (_, vbs) ->
          List.fold_left
            (fun acc (vb : T.value_binding) ->
              let ok, bad = allow_partition vb.vb_attributes in
              record_bad ctx bad;
              match vb.vb_pat.pat_desc with
              | T.Tpat_var (id, name) ->
                  let key = prefix ^ name.txt in
                  Hashtbl.replace ctx.def_idents (Ident.unique_name id) key;
                  {
                    p_key = key;
                    p_loc = vb.vb_loc;
                    p_hot = is_hot_attrs vb.vb_attributes;
                    p_allowed = ok;
                    p_expr = vb.vb_expr;
                  }
                  :: acc
              | _ ->
                  (* anonymous top-level binding: analyzable, never hot *)
                  {
                    p_key = prefix ^ "_toplevel";
                    p_loc = vb.vb_loc;
                    p_hot = false;
                    p_allowed = ok;
                    p_expr = vb.vb_expr;
                  }
                  :: acc)
            acc vbs
      | T.Tstr_module mb -> collect_module ctx ~prefix mb acc
      | T.Tstr_recmodule mbs ->
          List.fold_left (fun acc mb -> collect_module ctx ~prefix mb acc) acc
            mbs
      | T.Tstr_attribute a ->
          let ok, bad = allow_partition [ a ] in
          record_bad ctx bad;
          ctx.file_allows <- ok @ ctx.file_allows;
          acc
      | _ -> acc)
    acc str.str_items

and collect_module ctx ~prefix (mb : T.module_binding) acc =
  let name =
    match mb.mb_id with
    | Some id -> Ident.name id
    | None -> (
        match mb.mb_name.txt with Some n -> n | None -> "_")
  in
  let rec strip (me : T.module_expr) =
    match me.mod_desc with
    | T.Tmod_constraint (me, _, _, _) -> strip me
    | desc -> desc
  in
  match strip mb.mb_expr with
  | T.Tmod_ident (p, _) ->
      let target =
        let raw = Lint_cmt.canonical_path (Path.name p) in
        match String.split_on_char '.' raw with
        | head :: rest -> (
            match Hashtbl.find_opt ctx.aliases head with
            | Some t -> String.concat "." (t :: rest)
            | None -> raw)
        | [] -> raw
      in
      Hashtbl.replace ctx.aliases name target;
      acc
  | T.Tmod_structure str ->
      collect_structure ctx ~prefix:(prefix ^ name ^ ".") str acc
  | _ -> acc

let extract (u : Lint_cmt.unit_source) =
  let ctx =
    {
      unit_name = u.name;
      aliases = Hashtbl.create 16;
      def_idents = Hashtbl.create 64;
      file_allows = [];
      all_bad = [];
      events = [];
      scopes = [];
      rec_bound = [];
      taint = Hashtbl.create 8;
    }
  in
  let pending =
    List.rev (collect_structure ctx ~prefix:(u.name ^ ".") u.structure [])
  in
  let defs =
    List.map
      (fun p ->
        ctx.events <- [];
        ctx.scopes <- [];
        ctx.rec_bound <- [];
        ctx.taint <- Hashtbl.create 8;
        let params, bodies = peel [] p.p_expr in
        let it = body_iterator ctx in
        List.iter (fun b -> it.expr it b) bodies;
        {
          key = p.p_key;
          d_loc = p.p_loc;
          hot = p.p_hot;
          params;
          d_allowed = p.p_allowed;
          events = List.rev ctx.events;
        })
      pending
  in
  let context = Lint.context_of_path u.source in
  {
    u_name = u.name;
    u_source = u.source;
    u_lib = context.Lint.lib;
    defs;
    bad_allows = List.rev ctx.all_bad;
  }

(* --- The global call graph --------------------------------------------- *)

type graph = {
  units : unit_info list;
  table : (string, unit_info * def) Hashtbl.t;  (* key -> owning unit, def *)
}

let build units =
  let table = Hashtbl.create 256 in
  List.iter
    (fun u ->
      List.iter
        (fun d ->
          if not (Hashtbl.mem table d.key) then Hashtbl.add table d.key (u, d))
        u.defs)
    units;
  { units; table }

let resolve g (c : call) =
  let rec go = function
    | [] -> None
    | k :: rest -> (
        match Hashtbl.find_opt g.table k with
        | Some (u, d) -> Some (k, u, d)
        | None -> go rest)
  in
  go c.candidates

(* Map each call argument onto the callee's parameter index: labelled
   arguments match the parameter with the same label, positional ones
   pair up with the positional parameters in order. *)
let arg_param_indices (callee : def) (c : call) =
  let params = Array.of_list callee.params in
  let n = Array.length params in
  let positional =
    (* indices of unlabelled params, in order *)
    let rec go i acc =
      if i >= n then List.rev acc
      else go (i + 1) (if fst params.(i) = None then i :: acc else acc)
    in
    go 0 []
  in
  let rec assign args positional acc =
    match args with
    | [] -> List.rev acc
    | (label, ident) :: rest -> (
        match label with
        | None -> (
            match positional with
            | p :: ptail -> assign rest ptail ((p, ident) :: acc)
            | [] -> assign rest [] ((-1, ident) :: acc))
        | Some l ->
            let idx = ref (-1) in
            for i = 0 to n - 1 do
              if fst params.(i) = Some l then idx := i
            done;
            assign rest positional ((!idx, ident) :: acc))
  in
  assign c.args positional []

(* Interprocedural summaries for P1: [released_params g key] is the set
   of parameter indices whose transaction is (transitively) released by
   calling the function; same for acquisitions. Calls through the
   rollback layer are the sanctioned exception and do not propagate. *)

type summaries = {
  released : (string, int list) Hashtbl.t;
  acquired : (string, int list) Hashtbl.t;
}

let lock_summaries g =
  let released = Hashtbl.create 64 and acquired = Hashtbl.create 64 in
  let param_index_of_ident (d : def) ident =
    let rec go i = function
      | [] -> -1
      | (_, p) :: rest -> if String.equal p ident then i else go (i + 1) rest
    in
    go 0 d.params
  in
  let step tbl prim_matches summary_tbl =
    (* one propagation pass; returns whether anything grew *)
    let grew = ref false in
    List.iter
      (fun u ->
        List.iter
          (fun d ->
            if not (is_rollback_key d.key) then
              let cur =
                Option.value ~default:[] (Hashtbl.find_opt tbl d.key)
              in
              let add i =
                if i >= 0 && not (List.mem i cur || List.mem i
                                  (Option.value ~default:[]
                                     (Hashtbl.find_opt tbl d.key)))
                then begin
                  Hashtbl.replace tbl d.key
                    (i
                    :: Option.value ~default:[] (Hashtbl.find_opt tbl d.key));
                  grew := true
                end
              in
              List.iter
                (function
                  | Call c -> (
                      let direct =
                        List.exists
                          (fun k ->
                            (not (is_rollback_key k)) && prim_matches k)
                          c.candidates
                      in
                      if direct then begin
                        (* the txn is the second positional argument *)
                        let positional =
                          List.filter (fun (l, _) -> l = None) c.args
                        in
                        match List.nth_opt positional lock_prim_txn_pos with
                        | Some (_, Some ident) ->
                            add (param_index_of_ident d ident)
                        | _ -> ()
                      end
                      else
                        match resolve g c with
                        | Some (k, _, callee)
                          when not (is_rollback_key k) -> (
                            match Hashtbl.find_opt summary_tbl k with
                            | Some idxs ->
                                List.iter
                                  (fun (pidx, ident) ->
                                    match ident with
                                    | Some ident when List.mem pidx idxs ->
                                        add (param_index_of_ident d ident)
                                    | _ -> ())
                                  (arg_param_indices callee c)
                            | None -> ())
                        | _ -> ())
                  | Alloc _ | Escape _ -> ())
                d.events)
          u.defs)
      g.units;
    !grew
  in
  let fix tbl prim_matches =
    while step tbl prim_matches tbl do
      ()
    done
  in
  fix released (fun k -> lock_prim_of k = Lp_release);
  fix acquired (fun k -> lock_prim_of k = Lp_acquire);
  { released; acquired }
