(** prb-lint: static determinism and protocol-invariant checks.

    The repository's core promise — byte-identical fixed-seed replay of
    [prb sim]/[prb run]/[prb sweep]/[prb distrib]/[prb chaos] — must not
    rest on convention. This analyzer parses every module under [lib/]
    and [bin/] (no type information needed; the rules are syntactic by
    design so they run on any tree that parses) and enforces the repo
    invariants as named, individually suppressible rules:

    - {b D1} — no [Hashtbl.iter]/[Hashtbl.fold] in replay-critical
      libraries ([core], [sim], [distrib], [fault], [wfg], [lock],
      [rollback]): hash-order traversal depends on the stdlib version and
      the table's history. Route traversals through
      {!Prb_util.Util.sorted_bindings} and friends instead.
    - {b D2} — no polymorphic comparison in replay-critical libraries:
      bare [compare]/[Stdlib.compare] anywhere, and [(=)]/[(<>)] passed
      as first-class comparator values. Abstract ids must be compared
      with their module's own order ([Txn_id.compare],
      [Store.Entity.compare], [Site_id.compare]) so id ordering is
      explicit and survives representation changes. Direct infix [=] on
      concrete values is deterministic and stays allowed.
    - {b D3} — no ambient randomness ([Random.self_init], or any use of
      the global [Random] module) anywhere, and no wall clock
      ([Unix.gettimeofday], [Unix.time], [Sys.time]) outside the opt-in
      detection-clock provider ([lib/bench_scale]). Seeded randomness
      goes through {!Prb_util.Rng}.
    - {b L1} — layering: [lib/core] and [lib/lock] must not reference
      [Prb_sim] or [Prb_workload] (the engines must stay usable without
      the simulation stack); lock-table internals are reachable only
      through [Lock_table]'s interface.
    - {b L2} — no unguarded catch-all arm ([_] or a variable) in a match
      over the distributed protocol message type ([Dist_scheduler.event]),
      so adding a message variant forces every handler site to decide.

    - {b L3} — production code (everything under [lib/], [bin/] and
      [bench/]) must not reference a [*_ref] module
      ([Lock_table_ref], [Waits_for_ref], [History_stack_ref]): the
      reference implementations exist only as differential-test oracles
      and must never creep back onto a hot path.

    Three further rules — {b A1} (hot paths are allocation-free), {b P1}
    (static two-phase locking discipline) and {b H1} (slot handles do not
    escape their arena) — need type and call-graph information and are
    implemented by the typed deep pass ({!Lint_deep}, [prb lint --deep]).
    Their ids are declared here so rule filters, reports and suppression
    share one namespace.

    Suppression: attach [[@lint.allow "D1"]] to an expression or a
    [let]-binding ([[@@lint.allow "D1"]]), or float
    [[@@@lint.allow "D1 D2"]] to cover the rest of the file. Ids may be
    separated by spaces or commas. A rationale follows after a colon —
    [[@lint.allow "A1: amortized buffer growth"]] — and is {e required}
    by the deep rules. *)

type rule = D1 | D2 | D3 | L1 | L2 | L3 | A1 | P1 | H1

val all_rules : rule list

val untyped_rules : rule list
(** The rules the syntactic pass implements. *)

val deep_rules : rule list
(** The rules that need the typed pass ({!Lint_deep}). *)

val rule_id : rule -> string
(** ["D1"], ["D2"], ... *)

val rule_of_id : string -> rule option
(** Case-insensitive inverse of {!rule_id}. *)

val rule_doc : rule -> string
(** One-line description, for [--help] and the README rule table. *)

(** Which invariants apply to a compilation unit. Derived from the file's
    path ({!context_of_path}); fixtures override it via the
    [<lib>__name.ml] naming convention. *)
type context = {
  lib : string option;  (** directory under [lib/], [None] for [bin/] *)
  replay_critical : bool;  (** D1/D2 enforced *)
  clock_provider : bool;  (** wall-clock allowed ([lib/bench_scale]) *)
  distrib : bool;  (** L2 enforced *)
}

val context_of_path : string -> context
(** [lib/<name>/x.ml] maps to library [<name>]; a path under [bin/] maps
    to the CLI context; a basename of the form [<name>__rest.ml] (used by
    the lint fixtures) forces library [<name>] ([bin__rest.ml] forces the
    CLI context). Anything else gets a neutral context where only the
    everywhere-rules (D3) apply. *)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

val pp_violation : Format.formatter -> violation -> unit
(** Renders [file:line:col: rule-id message] — greppable, editor-clickable. *)

val compare_violation : violation -> violation -> int
(** Report order: (file, line, rule-id), then column and message as
    deterministic tie-breaks. Line-major and column-free in the leading
    keys so reports diff stably across filesystems and formatters. *)

val violation_json : violation -> string
(** One violation as a JSON object (for [prb lint --json]). *)

val schema_version : int
(** Version of the [--json] report shape, carried in the report itself. *)

val report_json : violation list -> string
(** The full [--json] report: [{"schema_version":N,"findings":[...]}],
    findings sorted with {!compare_violation}. *)

val parse_allow_payload : string -> string list * string option
(** Split an allow payload into rule ids and the optional rationale after
    the first [':']. *)

val allow_specs : Parsetree.attributes -> (string list * string option) list
(** Every [[@lint.allow]] spec carried by the attributes, parsed. *)

val check_source :
  ?rules:rule list ->
  context:context ->
  file:string ->
  string ->
  (violation list, string) result
(** Parse [source] (an implementation) and run the enabled [rules]
    (default: all) under [context]. Violations are sorted by position.
    [Error] carries a parse-error message. *)

val check_file :
  ?rules:rule list -> ?context:context -> string -> (violation list, string) result
(** {!check_source} on a file's contents; [context] defaults to
    {!context_of_path}. *)

val scan :
  ?rules:rule list ->
  string list ->
  violation list * (string * string) list
(** [scan paths] lints every [*.ml] under the given files/directories
    (skipping [_build] and dot-directories), returning all violations and
    any (file, parse-error) pairs. Deterministic order. *)
