(* Syntactic analysis only: the rules are designed so that the parsed AST
   carries enough evidence (module paths, identifier shapes, match-arm
   structure), which keeps the analyzer independent of the build — it can
   lint a tree that does not even typecheck yet. The flip side is that
   rules name concrete module paths (e.g. [Hashtbl.iter], [Prb_sim]); a
   rename there must update this file. *)

module P = Parsetree
module A = Ast_iterator

type rule = D1 | D2 | D3 | L1 | L2 | L3 | A1 | P1 | H1

let all_rules = [ D1; D2; D3; L1; L2; L3; A1; P1; H1 ]

let untyped_rules = [ D1; D2; D3; L1; L2; L3 ]

let deep_rules = [ A1; P1; H1 ]

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | A1 -> "A1"
  | P1 -> "P1"
  | H1 -> "H1"

let rule_of_id s =
  match String.uppercase_ascii s with
  | "D1" -> Some D1
  | "D2" -> Some D2
  | "D3" -> Some D3
  | "L1" -> Some L1
  | "L2" -> Some L2
  | "L3" -> Some L3
  | "A1" -> Some A1
  | "P1" -> Some P1
  | "H1" -> Some H1
  | _ -> None

let rule_doc = function
  | D1 ->
      "no Hashtbl.iter/fold in replay-critical libraries (hash-order \
       traversal); use Util.sorted_bindings"
  | D2 ->
      "no polymorphic compare in replay-critical libraries; use the id \
       module's equal/compare"
  | D3 ->
      "no ambient Random, and no wall clock outside the opt-in detection \
       clock; use the seeded Rng"
  | L1 ->
      "layering: lib/core and lib/lock must not depend on lib/sim or \
       lib/workload"
  | L2 ->
      "no catch-all arm in matches over the distributed protocol message \
       type"
  | L3 ->
      "production code must not depend on a *_ref reference module (they \
       exist for the differential tests only)"
  | A1 ->
      "[deep] functions marked [@hot] must not allocate, transitively \
       through repo-local calls"
  | P1 ->
      "[deep] no lock acquire statically reachable after a same-\
       transaction release outside the rollback layer (2PL growth-phase \
       discipline)"
  | H1 ->
      "[deep] Dense.Slots handles stay inside their arena's module and \
       Array.unsafe_* stays confined to lib/util"

type context = {
  lib : string option;
  replay_critical : bool;
  clock_provider : bool;
  distrib : bool;
}

let replay_critical_libs =
  [ "core"; "sim"; "distrib"; "fault"; "wfg"; "lock"; "rollback" ]

let context_of_lib name =
  {
    lib = Some name;
    replay_critical = List.mem name replay_critical_libs;
    clock_provider = String.equal name "bench_scale";
    distrib = String.equal name "distrib";
  }

let bin_context =
  { lib = None; replay_critical = false; clock_provider = false; distrib = false }

let neutral_context =
  { lib = None; replay_critical = false; clock_provider = false; distrib = false }

(* bench/ is production code for lint purposes: D3 applies in full (the
   harness draws from the seeded Rng; its timing goes through the
   bench_scale clock provider), and the explicitly-sanctioned sites carry
   [@lint.allow "D3"]. *)
let bench_context = neutral_context

let context_of_path path =
  let base = Filename.basename path in
  let from_marker =
    (* fixture convention: <lib>__anything.ml pins the context *)
    match String.index_opt base '_' with
    | Some i
      when i > 0 && i + 1 < String.length base && base.[i + 1] = '_' ->
        Some (String.sub base 0 i)
    | _ -> None
  in
  match from_marker with
  | Some "bin" -> bin_context
  | Some "bench" -> bench_context
  | Some "clean" | Some "deep" -> neutral_context
  | Some name -> context_of_lib name
  | None -> (
      let segments = String.split_on_char '/' path in
      let rec find = function
        | "lib" :: name :: _ :: _ -> Some (context_of_lib name)
        | "bin" :: _ :: _ -> Some bin_context
        | "bench" :: _ :: _ -> Some bench_context
        | _ :: rest -> find rest
        | [] -> None
      in
      (* the file itself is the last segment, hence the [_ :: _] tails *)
      match find segments with Some c -> c | None -> neutral_context)

type violation = {
  file : string;
  line : int;
  col : int;
  rule : rule;
  message : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s:%d:%d: %s %s" v.file v.line v.col (rule_id v.rule)
    v.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let violation_json v =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape v.file) v.line v.col (rule_id v.rule)
    (json_escape v.message)

(* Reports sort by (file, line, rule-id) — not by column — so a report
   diffs stably across checkouts and filesystems even when a formatter
   nudges intra-line positions. Column and message break the remaining
   ties deterministically. *)
let compare_violation a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match String.compare (rule_id a.rule) (rule_id b.rule) with
          | 0 -> (
              match Int.compare a.col b.col with
              | 0 -> String.compare a.message b.message
              | n -> n)
          | n -> n)
      | n -> n)
  | n -> n

let schema_version = 2

let report_json violations =
  let vs = List.sort compare_violation violations in
  Printf.sprintf "{\"schema_version\":%d,\"findings\":[%s]}" schema_version
    (String.concat ",\n " (List.map violation_json vs))

(* --- Longident helpers ------------------------------------------------ *)

let rec lid_head = function
  | Longident.Lident s -> s
  | Longident.Ldot (l, _) -> lid_head l
  | Longident.Lapply (l, _) -> lid_head l

let rec lid_last_module = function
  (* the module component closest to the value name: [Stdlib.Hashtbl.iter]
     and [Hashtbl.iter] both answer ["Hashtbl"] *)
  | Longident.Lident _ -> None
  | Longident.Ldot (Longident.Lident m, _) -> Some m
  | Longident.Ldot (l, _) -> (
      match l with
      | Longident.Ldot (_, m) -> Some m
      | _ -> lid_last_module l)
  | Longident.Lapply (_, l) -> lid_last_module l

(* --- Attribute handling ----------------------------------------------- *)

(* An allow payload is "IDS" or "IDS: rationale" — e.g.
   [[@lint.allow "D1 D2"]] or [[@lint.allow "A1: amortized growth"]].
   The deep rules (A1/P1/H1) refuse a suppression whose rationale is
   missing or empty; the syntactic rules ignore the rationale. *)
let parse_allow_payload s =
  let ids_part, rationale =
    match String.index_opt s ':' with
    | Some i ->
        let r = String.sub s (i + 1) (String.length s - i - 1) in
        let r = String.trim r in
        (String.sub s 0 i, if String.equal r "" then None else Some r)
    | None -> (s, None)
  in
  let ids =
    String.split_on_char ' ' ids_part
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun x -> not (String.equal x ""))
  in
  (ids, rationale)

let allow_specs (attrs : P.attributes) =
  List.filter_map
    (fun (a : P.attribute) ->
      if String.equal a.attr_name.txt "lint.allow" then
        match a.attr_payload with
        | P.PStr
            [
              {
                pstr_desc =
                  P.Pstr_eval
                    ( { pexp_desc = P.Pexp_constant (P.Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            Some (parse_allow_payload s)
        | _ -> None
      else None)
    attrs

let allow_ids attrs = List.concat_map fst (allow_specs attrs)

(* --- The checker ------------------------------------------------------ *)

let protocol_ctors =
  (* Dist_scheduler.event: the distributed protocol message type. Adding a
     variant there should extend this list — test_lint cross-checks. *)
  [
    "Exec";
    "Detector";
    "Req_arrive";
    "Req_timeout";
    "Grant_arrive";
    "Release_arrive";
    "Release_retry";
    "Crash";
    "Recover";
  ]

let check_structure ?(rules = all_rules) ~(context : context) ~file str =
  let found = ref [] in
  let scope_allows = ref [] in
  let file_allows = ref [] in
  let allowed id =
    List.mem id !file_allows
    || List.exists (fun ids -> List.mem id ids) !scope_allows
  in
  let emit rule (loc : Location.t) message =
    if List.mem rule rules && not (allowed (rule_id rule)) then
      let p = loc.loc_start in
      found :=
        {
          file;
          line = p.Lexing.pos_lnum;
          col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
          rule;
          message;
        }
        :: !found
  in
  let with_allows ids f =
    match ids with
    | [] -> f ()
    | _ ->
        scope_allows := ids :: !scope_allows;
        f ();
        scope_allows := List.tl !scope_allows
  in
  let in_ref_module =
    (* the *_ref modules may reference themselves and each other *)
    Filename.check_suffix (Filename.basename file) "_ref.ml"
  in
  let rec lid_components = function
    | Longident.Lident s -> [ s ]
    | Longident.Ldot (l, s) -> s :: lid_components l
    | Longident.Lapply (a, b) -> lid_components a @ lid_components b
  in
  (* Rules over one identifier reference. [applied] distinguishes the
     function position of an application: infix [a = b] is allowed, while
     [=] handed to a higher-order function is a polymorphic comparator. *)
  let check_lid ~applied lid loc =
    (if not in_ref_module then
       match
         List.find_opt
           (fun c ->
             String.length c > 4
             && c.[0] >= 'A'
             && c.[0] <= 'Z'
             && Filename.check_suffix c "_ref")
           (lid_components lid)
       with
       | Some m ->
           emit L3 loc
             (Printf.sprintf
                "dependency on reference module %s: the *_ref modules exist \
                 only as differential-test oracles; production code uses the \
                 dense implementations"
                m)
       | None -> ());
    (match lid_last_module lid with
    | Some "Hashtbl" when context.replay_critical -> (
        match Longident.last lid with
        | ("iter" | "fold") as f ->
            emit D1 loc
              (Printf.sprintf
                 "Hashtbl.%s traverses in hash order, which depends on the \
                  stdlib version and the table's history; route through \
                  Util.sorted_bindings / Util.iter_sorted"
                 f)
        | _ -> ())
    | _ -> ());
    (if context.replay_critical then
       match lid with
       | Longident.Lident "compare"
       | Longident.Ldot (Longident.Lident "Stdlib", "compare") ->
           emit D2 loc
             "polymorphic compare; use the id module's order (Txn_id.compare, \
              Store.Entity.compare, Site_id.compare, Int.compare, ...)"
       | Longident.Lident (("=" | "<>") as op)
       | Longident.Ldot (Longident.Lident "Stdlib", (("=" | "<>") as op))
         when not applied ->
           emit D2 loc
             (Printf.sprintf
                "polymorphic (%s) used as a comparator value; use the id \
                 module's equal"
                op)
       | _ -> ());
    (match lid_head lid with
    | "Random" ->
        let detail =
          match Longident.last lid with
          | "self_init" -> "Random.self_init seeds from the environment"
          | _ -> "the ambient Random module shares hidden global state"
        in
        emit D3 loc
          (detail ^ "; replay-deterministic code draws from the seeded Rng")
    | _ -> ());
    (match lid with
    | Longident.Ldot (Longident.Lident "Unix", (("gettimeofday" | "time") as f))
    | Longident.Ldot (Longident.Lident "Sys", ("time" as f))
      when not context.clock_provider ->
        emit D3 loc
          (Printf.sprintf
             "wall clock (%s) outside the opt-in detection clock; thread a \
              [clock] through the config instead"
             f)
    | _ -> ());
    match (context.lib, lid_head lid) with
    | Some (("core" | "lock") as l), (("Prb_sim" | "Prb_workload") as dep) ->
        emit L1 loc
          (Printf.sprintf
             "layering violation: lib/%s must not depend on %s (the engines \
              must stay usable without the simulation stack)"
             l dep)
    | _ -> ()
  in
  let rec pat_ctor_heads (p : P.pattern) =
    match p.ppat_desc with
    | P.Ppat_construct ({ txt; _ }, _) -> [ Longident.last txt ]
    | P.Ppat_or (a, b) -> pat_ctor_heads a @ pat_ctor_heads b
    | P.Ppat_alias (p, _) | P.Ppat_constraint (p, _) -> pat_ctor_heads p
    | _ -> []
  in
  let rec is_catch_all (p : P.pattern) =
    match p.ppat_desc with
    | P.Ppat_any | P.Ppat_var _ -> true
    | P.Ppat_alias (p, _) | P.Ppat_constraint (p, _) -> is_catch_all p
    | P.Ppat_or (a, b) -> is_catch_all a || is_catch_all b
    | _ -> false
  in
  let check_cases (cases : P.case list) =
    if context.distrib then
      let on_protocol =
        List.exists
          (fun (c : P.case) ->
            List.exists
              (fun h -> List.mem h protocol_ctors)
              (pat_ctor_heads c.pc_lhs))
          cases
      in
      if on_protocol then
        List.iter
          (fun (c : P.case) ->
            if c.pc_guard = None && is_catch_all c.pc_lhs then
              emit L2 c.pc_lhs.ppat_loc
                "catch-all arm in a match over the distributed protocol \
                 message type; name every variant so new messages force \
                 explicit handling")
          cases
  in
  let expr (self : A.iterator) (e : P.expression) =
    with_allows (allow_ids e.pexp_attributes) @@ fun () ->
    match e.pexp_desc with
    | P.Pexp_apply (({ pexp_desc = P.Pexp_ident { txt; loc }; _ } as fn), args)
      ->
        with_allows (allow_ids fn.pexp_attributes) (fun () ->
            check_lid ~applied:true txt loc);
        List.iter (fun (_, a) -> self.expr self a) args
    | P.Pexp_ident { txt; loc } -> check_lid ~applied:false txt loc
    | P.Pexp_match (_, cases) | P.Pexp_function cases ->
        check_cases cases;
        A.default_iterator.expr self e
    | _ -> A.default_iterator.expr self e
  in
  let typ (self : A.iterator) (t : P.core_type) =
    (match t.ptyp_desc with
    | P.Ptyp_constr ({ txt; loc }, _) | P.Ptyp_class ({ txt; loc }, _) ->
        check_lid ~applied:false txt loc
    | _ -> ());
    A.default_iterator.typ self t
  in
  let pat (self : A.iterator) (p : P.pattern) =
    (match p.ppat_desc with
    | P.Ppat_construct ({ txt; loc }, _) -> check_lid ~applied:false txt loc
    | _ -> ());
    A.default_iterator.pat self p
  in
  let module_expr (self : A.iterator) (m : P.module_expr) =
    (match m.pmod_desc with
    | P.Pmod_ident { txt; loc } -> check_lid ~applied:false txt loc
    | _ -> ());
    A.default_iterator.module_expr self m
  in
  let value_binding (self : A.iterator) (vb : P.value_binding) =
    with_allows (allow_ids vb.pvb_attributes) @@ fun () ->
    A.default_iterator.value_binding self vb
  in
  let structure (self : A.iterator) items =
    List.iter
      (fun (item : P.structure_item) ->
        match item.pstr_desc with
        | P.Pstr_attribute a ->
            (* floating [@@@lint.allow ...]: covers the rest of the file *)
            file_allows := allow_ids [ a ] @ !file_allows
        | _ -> self.structure_item self item)
      items
  in
  let iterator =
    {
      A.default_iterator with
      expr;
      typ;
      pat;
      module_expr;
      value_binding;
      structure;
    }
  in
  iterator.structure iterator str;
  List.sort compare_violation !found

let parse_implementation ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | ast -> Ok ast
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error (Format.asprintf "%a" Location.print_report report)
      | Some `Already_displayed | None -> Error (Printexc.to_string exn))

let check_source ?rules ~context ~file source =
  match parse_implementation ~file source with
  | Ok str -> Ok (check_structure ?rules ~context ~file str)
  | Error e -> Error e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?rules ?context path =
  let context =
    match context with Some c -> c | None -> context_of_path path
  in
  check_source ?rules ~context ~file:path (read_file path)

let scan ?rules paths =
  let rec walk acc path =
    if Sys.file_exists path && Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if
               String.equal name "_build"
               || (String.length name > 0 && name.[0] = '.')
             then acc
             else walk acc (Filename.concat path name))
           acc
    else if Filename.check_suffix path ".ml" then path :: acc
    else acc
  in
  let files = List.rev (List.fold_left walk [] paths) in
  List.fold_left
    (fun (vs, errs) f ->
      match check_file ?rules f with
      | Ok v -> (vs @ v, errs)
      | Error e -> (vs, errs @ [ (f, e) ]))
    ([], []) files
