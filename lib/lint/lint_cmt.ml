(* Typed-tree acquisition for the deep pass (Lint_deep).

   Two sources feed the same analysis:

   - [.cmt] files, produced by any [-bin-annot] build (dune always passes
     it), loaded with [Cmt_format]. This is how the real tree is checked:
     the typedtree in a cmt carries every inferred type and resolved path,
     so the analysis needs no environment reconstruction.
   - in-process typechecking of standalone sources ([typecheck_source]),
     used by the test fixtures: a fixture that only references the stdlib
     is typed against the compiler's initial environment, no build
     required.

   Dune's wrapped libraries compile [lib/util/dense.ml] as the unit
   [Prb_util__Dense] but resolve cross-library references through the
   generated alias module, printing paths like [Prb_util.Dense.Pqueue.push].
   [canonical_of_modname] maps the compiled unit name onto that dotted
   spelling so definition keys and reference paths meet in one namespace. *)

type unit_source = {
  name : string;  (** canonical module name, e.g. ["Prb_util.Dense"] *)
  source : string;  (** source path as recorded at compile time *)
  structure : Typedtree.structure;
}

(* "Prb_util__Dense" -> "Prb_util.Dense" (every "__" is a wrapper join:
   repo module names never contain a double underscore of their own). *)
let canonical_of_modname name =
  let buf = Buffer.create (String.length name) in
  let n = String.length name in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && name.[!i] = '_' && name.[!i + 1] = '_' then begin
      Buffer.add_char buf '.';
      (* the wrapper join lowercases nothing, but the member unit is
         capitalized in the path spelling *)
      if !i + 2 < n then begin
        Buffer.add_char buf (Char.uppercase_ascii name.[!i + 2]);
        i := !i + 3
      end
      else i := !i + 2
    end
    else begin
      Buffer.add_char buf name.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let canonical_path p = canonical_of_modname p

(* A generated wrapper ([prb_core.ml-gen]) only aliases its members; it is
   not user code and its "source" does not exist in the tree. *)
let is_generated_alias (cmt : Cmt_format.cmt_infos) =
  match cmt.cmt_sourcefile with
  | Some f -> Filename.check_suffix f ".ml-gen"
  | None -> true

let read_cmt path =
  match Cmt_format.read_cmt path with
  | exception _ -> Error (Printf.sprintf "%s: unreadable cmt" path)
  | cmt -> (
      if is_generated_alias cmt then Ok None
      else
        match cmt.cmt_annots with
        | Cmt_format.Implementation structure ->
            Ok
              (Some
                 {
                   name = canonical_of_modname cmt.cmt_modname;
                   source =
                     (match cmt.cmt_sourcefile with
                     | Some f -> f
                     | None -> path);
                   structure;
                 })
        | Cmt_format.Partial_implementation _ ->
            Error (Printf.sprintf "%s: partial typedtree (build error?)" path)
        | _ -> Ok None (* an interface or pack: nothing to analyze *))

(* Walk [root] for cmt files. Unlike the source scanner this must descend
   into dot-directories: dune keeps its object files under
   [.<lib>.objs/byte/]. The [_build/install] mirror is skipped so each
   unit loads exactly once. *)
let find_cmts root =
  let rec walk acc path =
    if Sys.file_exists path && Sys.is_directory path then
      Sys.readdir path |> Array.to_list |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if String.equal name "install" || String.equal name ".git" then
               acc
             else walk acc (Filename.concat path name))
           acc
    else if Filename.check_suffix path ".cmt" then path :: acc
    else acc
  in
  List.rev (walk [] root)

let load_units root =
  List.fold_left
    (fun (units, errs) path ->
      match read_cmt path with
      | Ok (Some u) -> (u :: units, errs)
      | Ok None -> (units, errs)
      | Error e -> (units, (path, e) :: errs))
    ([], []) (find_cmts root)
  |> fun (units, errs) ->
  ( List.sort (fun a b -> String.compare a.name b.name) units,
    List.rev errs )

(* --- In-process typechecking (fixtures) ------------------------------- *)

let env = lazy (Compmisc.init_path (); Compmisc.initial_env ())

let typecheck_source ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match
    let ast = Parse.implementation lexbuf in
    let str, _sig, _names, _shape, _env =
      Typemod.type_structure (Lazy.force env) ast
    in
    str
  with
  | str -> Ok str
  | exception exn -> (
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
          Error (Format.asprintf "%a" Location.print_report report)
      | Some `Already_displayed | None -> Error (Printexc.to_string exn))

(* Fixture units keep their file-derived name verbatim (no "__" wrapper
   interpretation): [deep/core__p1_bad.ml] becomes unit [Core__p1_bad]. *)
let unit_of_source ~file source =
  match typecheck_source ~file source with
  | Error _ as e -> e
  | Ok structure ->
      let base = Filename.remove_extension (Filename.basename file) in
      Ok { name = String.capitalize_ascii base; source = file; structure }
