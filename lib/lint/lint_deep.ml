(* The typed deep pass: A1 (allocation-free hot paths), P1 (static
   two-phase locking discipline) and H1 (slot-handle confinement), applied
   to the event streams Lint_graph distills from typed trees.

   A1 closes the call graph from every [[@hot]] root: an allocation
   anywhere in the reachable set is a violation, attributed back to its
   root through the discovery chain. A binding-level
   [[@lint.allow "A1: why"]] vouches for the whole subtree hanging off
   that definition (the annotation is the reviewed boundary between the
   steady-state lane and machinery that allocates by design); an
   expression-level allow vouches for one call site.

   P1 tracks, per definition in [lib/core]/[lib/distrib], which
   transaction variables have had a lock released (directly or through a
   callee's interprocedural summary) and flags any later acquire for the
   same variable — unless the call routes through the rollback layer,
   which is the partial-rollback exception of the source paper.

   H1 confines the [Dense.Slots] API to [lib/util] and to the modules
   that own an arena (those that call [Slots.create]), flags slot handles
   stored into fields or ref cells, and keeps [Array.unsafe_*] inside
   [lib/util]. *)

module G = Lint_graph

let violation rule (loc : Location.t) message =
  let p = loc.loc_start in
  {
    Lint.file = p.pos_fname;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    rule;
    message;
  }

let allowed id l = List.mem id l

(* --- A1 ---------------------------------------------------------------- *)

let a1_check (g : G.graph) =
  let parents : (string, string option) Hashtbl.t = Hashtbl.create 64 in
  let queue = Queue.create () in
  let roots =
    List.concat_map
      (fun (u : G.unit_info) ->
        List.filter_map
          (fun (d : G.def) -> if d.hot then Some d.key else None)
          u.defs)
      g.units
    |> List.sort String.compare
  in
  List.iter
    (fun k ->
      if not (Hashtbl.mem parents k) then begin
        Hashtbl.add parents k None;
        Queue.add k queue
      end)
    roots;
  let out = ref [] in
  let chain k =
    let rec up k acc =
      match Hashtbl.find_opt parents k with
      | Some (Some p) -> up p (p :: acc)
      | _ -> acc
    in
    up k []
  in
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    match Hashtbl.find_opt g.table key with
    | None -> ()
    | Some (_, d) ->
        if not (allowed "A1" d.d_allowed) then
          List.iter
            (fun ev ->
              match ev with
              | G.Alloc a ->
                  if not (allowed "A1" a.a_allowed) then
                    let path = chain key in
                    let where =
                      match path with
                      | [] -> Printf.sprintf "in [@hot] %s" key
                      | root :: _ ->
                          Printf.sprintf "in %s, reachable from [@hot] %s%s"
                            key root
                            (match path with
                            | [ _ ] -> ""
                            | _ ->
                                " via "
                                ^ String.concat " -> " (List.tl path))
                    in
                    out :=
                      violation Lint.A1 a.a_loc
                        (Printf.sprintf
                           "heap allocation (%s) %s; hot paths must be \
                            allocation-free (suppress with [@lint.allow \
                            \"A1: rationale\"])"
                           a.a_what where)
                      :: !out
              | G.Call c ->
                  if not (allowed "A1" c.c_allowed) then (
                    match G.resolve g c with
                    | Some (k, _, _) when not (Hashtbl.mem parents k) ->
                        Hashtbl.add parents k (Some key);
                        Queue.add k queue
                    | _ -> ())
              | G.Escape _ -> ())
            d.events
  done;
  List.rev !out

(* --- P1 ---------------------------------------------------------------- *)

let p1_units = [ "core"; "distrib" ]

let p1_check (g : G.graph) =
  let s = G.lock_summaries g in
  let out = ref [] in
  List.iter
    (fun (u : G.unit_info) ->
      match u.u_lib with
      | Some lib when List.mem lib p1_units ->
          List.iter
            (fun (d : G.def) ->
              if not (allowed "P1" d.d_allowed) then begin
                let released = Hashtbl.create 8 in
                List.iter
                  (fun ev ->
                    match ev with
                    | G.Call c ->
                        let rollback =
                          List.exists G.is_rollback_key c.candidates
                        in
                        if not rollback then begin
                          let positional =
                            List.filter (fun (l, _) -> l = None) c.args
                          in
                          let prim =
                            List.fold_left
                              (fun acc k ->
                                match acc with
                                | G.Lp_none -> G.lock_prim_of k
                                | _ -> acc)
                              G.Lp_none c.candidates
                          in
                          let flags = ref [] and rels = ref [] in
                          (match prim with
                          | G.Lp_acquire -> (
                              match
                                List.nth_opt positional G.lock_prim_txn_pos
                              with
                              | Some (_, Some id) when Hashtbl.mem released id
                                ->
                                  flags := [ c.c_loc ]
                              | _ -> ())
                          | G.Lp_release -> (
                              match
                                List.nth_opt positional G.lock_prim_txn_pos
                              with
                              | Some (_, Some id) -> rels := [ id ]
                              | _ -> ())
                          | G.Lp_none -> (
                              match G.resolve g c with
                              | Some (k, _, callee)
                                when not (G.is_rollback_key k) ->
                                  let pairs = G.arg_param_indices callee c in
                                  let acq =
                                    Option.value ~default:[]
                                      (Hashtbl.find_opt s.G.acquired k)
                                  and rel =
                                    Option.value ~default:[]
                                      (Hashtbl.find_opt s.G.released k)
                                  in
                                  List.iter
                                    (fun (pidx, ident) ->
                                      match ident with
                                      | Some id ->
                                          if
                                            List.mem pidx acq
                                            && Hashtbl.mem released id
                                          then flags := c.c_loc :: !flags;
                                          if List.mem pidx rel then
                                            rels := id :: !rels
                                      | None -> ())
                                    pairs
                              | _ -> ()));
                          if not (allowed "P1" c.c_allowed) then
                            List.iter
                              (fun loc ->
                                out :=
                                  violation Lint.P1 loc
                                    (Printf.sprintf
                                       "lock acquired for a transaction \
                                        after one of its locks was released \
                                        (in %s): the growth phase has ended; \
                                        re-acquisition is only legitimate \
                                        through the rollback layer \
                                        (partial-rollback exception)"
                                       d.key)
                                  :: !out)
                              !flags;
                          List.iter
                            (fun id -> Hashtbl.replace released id ())
                            !rels
                        end
                    | G.Alloc _ | G.Escape _ -> ())
                  d.events
              end)
            u.defs
      | _ -> ())
    g.units;
  List.rev !out

(* --- H1 ---------------------------------------------------------------- *)

let h1_check (g : G.graph) =
  let out = ref [] in
  List.iter
    (fun (u : G.unit_info) ->
      let in_util = u.u_lib = Some "util" in
      if not in_util then begin
        let owns_arena =
          List.exists
            (fun (d : G.def) ->
              List.exists
                (function
                  | G.Call c -> List.exists G.is_slots_create c.candidates
                  | _ -> false)
                d.events)
            u.defs
        in
        List.iter
          (fun (d : G.def) ->
            if not (allowed "H1" d.d_allowed) then
              List.iter
                (fun ev ->
                  match ev with
                  | G.Call c when not (allowed "H1" c.c_allowed) ->
                      if
                        (not owns_arena)
                        && List.exists G.is_slots_key c.candidates
                      then
                        out :=
                          violation Lint.H1 c.c_loc
                            (Printf.sprintf
                               "Slots arena API used in %s, which owns no \
                                arena (never calls Slots.create): \
                                generational handles must stay inside \
                                their arena's owner or lib/util"
                               d.key)
                          :: !out
                      else if List.exists G.is_unsafe_key c.candidates then
                        out :=
                          violation Lint.H1 c.c_loc
                            "unchecked access (unsafe_* primitive) outside \
                             lib/util: bounds discipline is centralized in \
                             the arena layer"
                          :: !out
                  | G.Escape e when not (allowed "H1" e.e_allowed) ->
                      out :=
                        violation Lint.H1 e.e_loc
                          (Printf.sprintf
                             "%s (in %s): slot handles are transient \
                              capabilities and must not be persisted \
                              outside their arena owner"
                             e.e_what d.key)
                        :: !out
                  | _ -> ())
                d.events)
          u.defs
      end)
    g.units;
  List.rev !out

(* --- Driver ------------------------------------------------------------ *)

let meta_violations (units : G.unit_info list) =
  List.concat_map
    (fun (u : G.unit_info) ->
      List.map
        (fun (loc, id) ->
          let rule =
            match Lint.rule_of_id id with Some r -> r | None -> Lint.A1
          in
          violation rule loc
            (Printf.sprintf
               "suppressing %s requires a rationale: write [@lint.allow \
                \"%s: why this site is exempt\"]"
               id id))
        u.bad_allows)
    units

let analyze (sources : Lint_cmt.unit_source list) =
  let units = List.map G.extract sources in
  let g = G.build units in
  List.sort Lint.compare_violation
    (meta_violations units @ a1_check g @ p1_check g @ h1_check g)

let check_source ~file source =
  match Lint_cmt.unit_of_source ~file source with
  | Error _ as e -> e
  | Ok u -> Ok (analyze [ u ])

let check_file file =
  match In_channel.with_open_bin file In_channel.input_all with
  | exception Sys_error e -> Error e
  | source -> check_source ~file source

(* Locate the tree to analyze. From a source checkout this is
   [_build/default/lib] (dune always builds with -bin-annot); when the
   linter itself runs inside the build context (the @lint-deep alias) the
   current root already contains the .objs directories. *)
let rec find_project_root dir =
  if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
  else
    let parent = Filename.dirname dir in
    if String.equal parent dir then None else find_project_root parent

let scan_build ?root () =
  let root =
    match root with
    | Some r -> r
    | None -> (
        match find_project_root (Sys.getcwd ()) with
        | Some r -> r
        | None -> Sys.getcwd ())
  in
  let candidate = Filename.concat root "_build/default" in
  let base =
    if Sys.file_exists (Filename.concat candidate "lib") then candidate
    else root
  in
  let units, errs = Lint_cmt.load_units (Filename.concat base "lib") in
  if units = [] then
    ( [],
      ( Filename.concat base "lib",
        "no .cmt files found (run a dune build first: dune emits bin-annot \
         by default)" )
      :: errs )
  else (analyze units, errs)
