(** Umbrella module: the whole library under one namespace.

    [open Prb] (or [Prb.Scheduler], ...) gives downstream code the public
    API without tracking the internal package structure. Sub-libraries
    remain individually linkable ([prb.core], [prb.rollback], ...) for
    users who want a slimmer dependency cone. *)

(* storage *)
module Value = Prb_storage.Value
module Store = Prb_storage.Store

(* transactions *)
module Txn_id = Prb_txn.Txn_id
module Lock_mode = Prb_txn.Lock_mode
module Expr = Prb_txn.Expr
module Program = Prb_txn.Program
module Parser = Prb_txn.Parser

(* locking and waits *)
module Lock_table = Prb_lock.Lock_table
module Waits_for = Prb_wfg.Waits_for

(* rollback engines *)
module Strategy = Prb_rollback.Strategy
module History_stack = Prb_rollback.History_stack
module Sdg_view = Prb_rollback.Sdg_view
module Allocation = Prb_rollback.Allocation
module Txn_state = Prb_rollback.Txn_state

(* concurrency control *)
module Policy = Prb_core.Policy
module Detection_policy = Prb_core.Detection_policy
module Resolver = Prb_core.Resolver
module Scheduler = Prb_core.Scheduler

(* serializability oracle *)
module History = Prb_history.History

(* workloads and simulation *)
module Generator = Prb_workload.Generator
module Scenarios = Prb_workload.Scenarios
module Sim = Prb_sim.Sim

(* distribution *)
module Site_id = Prb_distrib.Site_id
module Dist_scheduler = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim

(* static analysis *)
module Lint = Prb_lint.Lint

(* substrates *)
module Util = Prb_util.Util
module Rng = Prb_util.Rng
module Zipf = Prb_util.Zipf
module Stats = Prb_util.Stats
module Table = Prb_util.Table
module Heap = Prb_util.Heap
module Digraph = Prb_graph.Digraph
module Ugraph = Prb_graph.Ugraph
module Cutset = Prb_graph.Cutset
