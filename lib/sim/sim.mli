(** Closed-system simulation driver: keep a fixed multiprogramming level
    (MPL) of concurrent transactions, admit the next program whenever one
    commits, and reduce a finished run to the derived metrics the
    experiments report. *)

type config = {
  scheduler : Prb_core.Scheduler.config;
  mpl : int;  (** concurrent transactions held in the system *)
}

val default_config : config

type result = {
  stats : Prb_core.Scheduler.stats;
  n_txns : int;
  throughput : float;  (** commits per 1000 ticks *)
  deadlock_rate : float;  (** deadlock resolutions per committed txn *)
  mean_rollback_cost : float;
      (** ops lost per rollback event; [nan] when no rollbacks *)
  wasted_fraction : float;
      (** (ops executed - net committed progress) / ops executed *)
  serializable : bool;
  peak_copies : int;
  store_installs : int;
  check_seconds : float;
      (** wall-clock seconds spent in the boolean deadlock checks
          (would-deadlock probes, cycle-membership censuses) when the
          scheduler config carries a [clock]; [0.] otherwise *)
  check_calls : int;  (** boolean deadlock checks run *)
  enumerate_seconds : float;
      (** wall-clock seconds spent enumerating cycles for the resolver
          when the scheduler config carries a [clock]; [0.] otherwise *)
  enumerate_calls : int;  (** cycle enumerations run *)
}

val run :
  ?config:config ->
  store:Prb_storage.Store.t ->
  Prb_txn.Program.t list ->
  result
(** Run all programs to commit (or until the scheduler's tick limit).
    Deterministic in the scheduler seed. *)

val run_generated :
  ?config:config ->
  params:Prb_workload.Generator.params ->
  seed:int ->
  n_txns:int ->
  unit ->
  result
(** Convenience: populate a store from [params], generate [n_txns]
    programs and {!run} them. *)

val pp_result : Format.formatter -> result -> unit

(** Open-system runs: transactions arrive by a Poisson-like process
    instead of being held at a fixed multiprogramming level — the
    response-time view of the paper's introduction. *)
module Open : sig
  type open_result = {
    closed : result;  (** the underlying run and its metrics *)
    offered_rate : float;  (** requested arrivals per 1000 ticks *)
    mean_latency : float;  (** submit-to-commit ticks, committed txns *)
    p50_latency : float;
    p95_latency : float;
    max_latency : float;
  }

  val run :
    ?scheduler:Prb_core.Scheduler.config ->
    store:Prb_storage.Store.t ->
    arrivals_per_ktick:float ->
    arrival_seed:int ->
    Prb_txn.Program.t list ->
    open_result
  (** Submit the programs with exponential(ish) inter-arrival times drawn
      from [arrival_seed] at the given offered load, run to completion,
      and report latency percentiles. Deterministic. *)

  val pp : Format.formatter -> open_result -> unit
end
