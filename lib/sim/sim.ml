module Scheduler = Prb_core.Scheduler
module History = Prb_history.History
module Store = Prb_storage.Store

type config = { scheduler : Scheduler.config; mpl : int }

let default_config = { scheduler = Scheduler.default_config; mpl = 8 }

type result = {
  stats : Scheduler.stats;
  n_txns : int;
  throughput : float;
  deadlock_rate : float;
  mean_rollback_cost : float;
  wasted_fraction : float;
  serializable : bool;
  peak_copies : int;
  store_installs : int;
  check_seconds : float;
  check_calls : int;
  enumerate_seconds : float;
  enumerate_calls : int;
}

let run ?(config = default_config) ~store programs =
  if config.mpl < 1 then invalid_arg "Sim.run: mpl must be >= 1";
  let sched = Scheduler.create ~config:config.scheduler store in
  let pending = ref programs in
  let submitted = ref 0 in
  let submit_next () =
    match !pending with
    | [] -> ()
    | p :: rest ->
        pending := rest;
        incr submitted;
        ignore (Scheduler.submit sched p)
  in
  (* Keep [mpl] transactions in the system until the program list dries
     up; every non-blocked live transaction always has a pending event, so
     [step] returning false means the run is over. *)
  let refill () =
    while
      !pending <> [] && !submitted - Scheduler.n_committed sched < config.mpl
    do
      submit_next ()
    done
  in
  refill ();
  while Scheduler.step sched do
    refill ()
  done;
  let stats = Scheduler.stats sched in
  let n_txns = List.length programs in
  let fl = float_of_int in
  {
    stats;
    n_txns;
    throughput =
      (if stats.Scheduler.ticks = 0 then nan
       else 1000.0 *. fl stats.Scheduler.commits /. fl stats.Scheduler.ticks);
    deadlock_rate =
      (if stats.Scheduler.commits = 0 then nan
       else fl stats.Scheduler.deadlocks /. fl stats.Scheduler.commits);
    mean_rollback_cost =
      (if stats.Scheduler.rollbacks = 0 then nan
       else fl stats.Scheduler.ops_lost /. fl stats.Scheduler.rollbacks);
    wasted_fraction =
      (if stats.Scheduler.ops_executed = 0 then nan
       else
         fl (stats.Scheduler.ops_executed - stats.Scheduler.ops_committed)
         /. fl stats.Scheduler.ops_executed);
    serializable = History.serializable (Scheduler.history sched);
    peak_copies = stats.Scheduler.peak_copies;
    store_installs = Store.install_count store;
    check_seconds = Scheduler.check_seconds sched;
    check_calls = Scheduler.check_calls sched;
    enumerate_seconds = Scheduler.enumerate_seconds sched;
    enumerate_calls = Scheduler.enumerate_calls sched;
  }

let run_generated ?config ~params ~seed ~n_txns () =
  let store = Prb_workload.Generator.populate params in
  let programs = Prb_workload.Generator.generate params ~seed ~n:n_txns in
  run ?config ~store programs

module Open = struct
  type open_result = {
    closed : result;
    offered_rate : float;
    mean_latency : float;
    p50_latency : float;
    p95_latency : float;
    max_latency : float;
  }

  let run ?(scheduler = Scheduler.default_config) ~store ~arrivals_per_ktick
      ~arrival_seed programs =
    if arrivals_per_ktick <= 0.0 then
      invalid_arg "Sim.Open.run: arrival rate must be positive";
    let rng = Prb_util.Rng.make arrival_seed in
    let per_tick = arrivals_per_ktick /. 1000.0 in
    let sched = Scheduler.create ~config:scheduler store in
    (* exponential inter-arrival times, accumulated and rounded *)
    let clock = ref 0.0 in
    let ids =
      List.map
        (fun p ->
          let u = Float.max 1e-12 (Prb_util.Rng.float rng 1.0) in
          clock := !clock +. (-.Float.log u /. per_tick);
          Scheduler.submit_at sched ~at:(int_of_float !clock) p)
        programs
    in
    while Scheduler.step sched do
      ()
    done;
    let stats = Scheduler.stats sched in
    let latencies =
      List.filter_map
        (fun id -> Option.map float_of_int (Scheduler.latency sched id))
        ids
      |> Array.of_list
    in
    let n_txns = List.length programs in
    let fl = float_of_int in
    let closed =
      {
        stats;
        n_txns;
        throughput =
          (if stats.Scheduler.ticks = 0 then nan
           else 1000.0 *. fl stats.Scheduler.commits /. fl stats.Scheduler.ticks);
        deadlock_rate =
          (if stats.Scheduler.commits = 0 then nan
           else fl stats.Scheduler.deadlocks /. fl stats.Scheduler.commits);
        mean_rollback_cost =
          (if stats.Scheduler.rollbacks = 0 then nan
           else fl stats.Scheduler.ops_lost /. fl stats.Scheduler.rollbacks);
        wasted_fraction =
          (if stats.Scheduler.ops_executed = 0 then nan
           else
             fl (stats.Scheduler.ops_executed - stats.Scheduler.ops_committed)
             /. fl stats.Scheduler.ops_executed);
        serializable = History.serializable (Scheduler.history sched);
        peak_copies = stats.Scheduler.peak_copies;
        store_installs = Store.install_count store;
        check_seconds = Scheduler.check_seconds sched;
        check_calls = Scheduler.check_calls sched;
        enumerate_seconds = Scheduler.enumerate_seconds sched;
        enumerate_calls = Scheduler.enumerate_calls sched;
      }
    in
    let pct p =
      if Array.length latencies = 0 then nan
      else Prb_util.Stats.percentile latencies p
    in
    {
      closed;
      offered_rate = arrivals_per_ktick;
      mean_latency =
        (if Array.length latencies = 0 then nan
         else Array.fold_left ( +. ) 0.0 latencies /. fl (Array.length latencies));
      p50_latency = pct 50.0;
      p95_latency = pct 95.0;
      max_latency = pct 100.0;
    }

  let pp ppf r =
    Fmt.pf ppf
      "@[<v>offered: %.1f txns/kTick@,commits: %d@,latency mean %.1f, p50 \
       %.1f, p95 %.1f, max %.1f ticks@,serializable: %b@]"
      r.offered_rate r.closed.stats.Scheduler.commits r.mean_latency
      r.p50_latency r.p95_latency r.max_latency r.closed.serializable
end

let pp_result ppf r =
  Fmt.pf ppf
    "@[<v>txns: %d@,%a@,throughput: %.2f commits/kTick@,\
     deadlock rate: %.3f/txn@,mean rollback cost: %.2f ops@,\
     wasted work: %.1f%%@,serializable: %b@]"
    r.n_txns Scheduler.pp_stats r.stats r.throughput r.deadlock_rate
    r.mean_rollback_cost (100.0 *. r.wasted_fraction) r.serializable
