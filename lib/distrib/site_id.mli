(** Site identifiers for the multi-site engine.

    Sites are numbered [0 .. n_sites - 1]; the partition function
    [Dist_scheduler.site_of] maps entities onto them. As with
    {!Prb_txn.Txn_id}, comparison sites must use this module's
    [equal]/[compare] — the static analyzer (rule D2) rejects the
    polymorphic primitives in replay-critical modules. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Renders as ["S3"]. *)
