type t = int

let equal = Int.equal
let compare = Int.compare
let pp ppf s = Fmt.pf ppf "S%d" s
