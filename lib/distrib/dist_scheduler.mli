(** Distributed execution substrate for Section 3.3.

    Entities are partitioned across sites; transactions run from a home
    site and acquire locks remotely, paying messages. The lock tables
    behave exactly as in the centralised engine (locking is per entity, so
    correctness is unchanged); what the distribution changes is {e what
    the deadlock detector can see and when}, and {e what a rollback
    costs in communication}:

    - {b Local_then_global}: a site detects immediately any cycle all of
      whose contested entities live on that site; cross-site cycles are
      only found by a periodic global detector to which every site ships
      its waits-for edges (paper: "the occurrence of deadlocks involving a
      number of sites cannot be detected by [a single] site").
    - {b Wound_wait}: the timestamp-based prevention the paper cites as an
      alternative — an older requester wounds a younger holder, which
      {e partially rolls back} just far enough to release the entity
      (the paper's point that such mechanisms "in no way invalidate the
      advantages of rolling a transaction back to the latest possible
      state"); a younger requester simply waits. No cycles can form.

    Message accounting (flat cost model, documented in DESIGN.md):
    remote lock request/grant = 2, remote release = 1, wound = 1 per
    remote holder site, global detection round = one WFG shipment per
    site, and — partial-rollback strategies only — every time a
    transaction's lock stream moves between sites its version bookkeeping
    follows it (messages +1, [shipped_copies] += its current copy count),
    the overhead Section 3.3 warns about.

    {2 Failure model}

    A {!Prb_fault.Fault.plan} in the config turns on the failure regime
    (DESIGN.md Section 7). With a plan installed, remote lock requests,
    grant replies, and unlock/commit releases become real messages that
    can be lost, duplicated or delayed; requesters keep a timeout probe
    alive and retransmit with bounded exponential backoff, and every
    handler is idempotent, so duplicates and stale replies are harmless.
    Sites crash and recover: a crash fully restarts every growing
    transaction homed there and partially rolls back (per strategy, to
    the last state not touching the site) every growing remote holder of
    its entities; shrinking transactions are immune (past their commit
    point — Section 2's no-rollback-after-unlock rule). On recovery the
    site's lock-table fragment is rebuilt: queued requests are dropped
    (their owners retransmit on probe) and holder rows not backed by a
    surviving transaction are purged. While the global detector is in an
    outage window the scheduler degrades to per-transaction timeout-abort
    of long-blocked transactions. Rollback-released locks are always
    released synchronously (a reliable coordination round, matching the
    seed's per-site message accounting) — an asynchronous release could
    race with the victim's own re-request of the same entity.

    Runs remain deterministic in (config seed, fault plan): replaying the
    same pair reproduces the run bit-for-bit. *)

type detection =
  | Local_then_global of int
      (** period (ticks) between global detection rounds *)
  | Wound_wait

type config = {
  n_sites : int;
  detection : detection;
  detection_policy : Prb_core.Detection_policy.t;
      (** cadence of the global-detector service under
          [Local_then_global]: [Eager] (default) runs a full round at
          every firing, every [period] ticks — byte-identical to the
          pre-policy engine. The deferred policies reschedule the service
          by their own rule — [Periodic n] fires every [n] ticks,
          [Adaptive] tunes its interval to the deadlock-arrival rate, and
          [Lazy_on_timeout] ships nothing unless some transaction has
          been blocked at least [blocked_ticks] (backing off after rounds
          that find no cycle, capped at half the stall bound). A stall
          watchdog folded into the firing chain forces a round whenever a
          transaction has been blocked past
          {!Prb_core.Detection_policy.stall_bound} with no round since it
          blocked. Site-local block-time detection is inline in the
          request path (not a service) and always runs. Ignored under
          [Wound_wait] *)
  starvation_limit : int option;
      (** [Some k]: a transaction rolled back [k] times becomes immune to
          victim selection (overridden only when a cycle offers nobody
          else, counted as [starvation_fallbacks]); [None] (default)
          disables the guard *)
  strategy : Prb_rollback.Strategy.t;
  policy : Prb_core.Policy.t;
  seed : int;
  max_ticks : int;
  cycle_limit : int;
  restart_delay : int;
  faults : Prb_fault.Fault.plan option;
      (** [None] (default) is the failure-free world; [Some plan] enables
          site crashes, message faults and detector outages *)
  clock : (unit -> float) option;
      (** wall-clock source for the detection-cost accounting
          ({!stats.check_seconds}/{!stats.enumerate_seconds}); [None]
          (default) records zero. Orthogonal to determinism: the clock
          only feeds the cost counters, never control flow *)
}

val default_config : config
(** 4 sites, [Local_then_global 50], [Eager] detection policy (no
    starvation limit), [Sdg], no faults, and — unlike the centralised
    engine — the [Youngest] victim policy: periodic global detection
    works from stale snapshots without a meaningful requester, and the
    cost-optimising policies then re-victimise the same cheap transaction
    every round (Figure 2's pathology resurrected by staleness; measured
    in E10b). Age-based selection converges, which is why the distributed
    literature the paper cites uses timestamps. (Deferred rounds facing
    more than one cycle are nonetheless routed through the Section 3.2
    vertex cut as [Ordered_min_cost] — with the starvation guard
    available to bound any re-victimisation.) *)

type t

val create :
  ?site_of:(Prb_storage.Store.entity -> int) ->
  config ->
  Prb_storage.Store.t ->
  t
(** [site_of] defaults to a deterministic hash of the entity name modulo
    [n_sites]. *)

val submit : t -> home:int -> Prb_txn.Program.t -> int
(** Timestamps for wound-wait are admission order (smaller id = older). *)

val step : t -> bool
val run : t -> unit

val now : t -> int
val n_committed : t -> int
val all_committed : t -> bool
val txn_state : t -> int -> Prb_rollback.Txn_state.t
val history : t -> Prb_history.History.t
val site_of : t -> Prb_storage.Store.entity -> int

val site_up : t -> int -> bool
(** False while the site is crashed (always true without a fault plan). *)

val waits_for : t -> Prb_wfg.Waits_for.t
(** Live view — do not mutate. *)

val lock_table : t -> Prb_lock.Lock_table.t
(** Live view — do not mutate. *)

type stats = {
  ticks : int;
  commits : int;
  deadlocks : int;
  local_deadlocks : int;  (** resolved instantly by one site *)
  global_deadlocks : int;  (** found only by the periodic detector *)
  wounds : int;
  rollbacks : int;
  ops_lost : int;
  messages : int;
  shipped_copies : int;
      (** version-bookkeeping volume that chased moving transactions —
          zero under [Total] *)
  detection_rounds : int;
  (* failure-regime counters; all zero without a fault plan *)
  site_crashes : int;
  site_recoveries : int;
  purged_locks : int;  (** stale rows dropped by lock-table rebuilds *)
  msgs_lost : int;
  msgs_duplicated : int;
  retransmissions : int;
  timeout_aborts : int;  (** degraded-mode aborts while the detector was out *)
  missed_rounds : int;  (** detection rounds skipped by detector outages *)
  deferred_detection : bool;
      (** the run used a non-[Eager] detection policy; drives which stat
          lines {!pp_stats} prints, keeping eager output byte-identical *)
  watchdog_fires : int;
      (** rounds forced by the stall watchdog (a transaction blocked past
          the stall bound with no round since it blocked) *)
  skipped_rounds : int;
      (** [Lazy_on_timeout] firings that shipped nothing because nobody
          had waited long enough *)
  starvation_fallbacks : int;
      (** resolutions where a cycle offered no non-immune victim and the
          starvation guard was overridden *)
  max_blocked_ticks : int;  (** longest completed blocking episode *)
  total_blocked_ticks : int;  (** Σ durations of completed episodes *)
  max_txn_rollbacks : int;
      (** rollbacks suffered by the worst-hit transaction — bounded by
          [starvation_limit] plus degraded-mode forced restarts whenever
          [starvation_fallbacks] is 0 *)
  check_seconds : float;
      (** wall time inside the block-time would-deadlock probes; 0 unless
          the config supplies a {!config.clock} *)
  check_calls : int;  (** would-deadlock probes run at block time *)
  enumerate_seconds : float;
      (** wall time enumerating cycles for the resolver, block-time local
          checks and global rounds alike; 0 unless the config supplies a
          clock *)
  enumerate_calls : int;  (** cycle enumerations run *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

exception Stuck of string
