module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Lock_mode = Prb_txn.Lock_mode
module Lock_table = Prb_lock.Lock_table
module Waits_for = Prb_wfg.Waits_for
module Strategy = Prb_rollback.Strategy
module Txn_state = Prb_rollback.Txn_state
module History = Prb_history.History
module Heap = Prb_util.Heap
module Rng = Prb_util.Rng
module Util = Prb_util.Util
module Txn_id = Prb_txn.Txn_id
module Policy = Prb_core.Policy
module Resolver = Prb_core.Resolver
module Detection_policy = Prb_core.Detection_policy
module Fault = Prb_fault.Fault

type detection = Local_then_global of int | Wound_wait

type config = {
  n_sites : int;
  detection : detection;
  detection_policy : Detection_policy.t;
      (** cadence of the global-detector service under
          [Local_then_global]: [Eager] (default) fires a full round every
          [period] ticks — byte-identical to the pre-policy engine — while
          the deferred policies reschedule the service by their own rule
          (periodic cadence, adaptive interval, or lazy skip-until-
          someone-waited-long-enough), guarded by the stall watchdog.
          Site-local block-time detection is inline in the request path
          (not a service) and always runs. Ignored under [Wound_wait] *)
  starvation_limit : int option;
      (** [Some k]: a transaction rolled back [k] times becomes immune to
          victim selection (overridden only when a cycle offers nobody
          else); [None] (default) disables the guard *)
  strategy : Strategy.t;
  policy : Policy.t;
  seed : int;
  max_ticks : int;
  cycle_limit : int;
  restart_delay : int;
  faults : Fault.plan option;
  clock : (unit -> float) option;
      (** wall-clock source for the detection-cost accounting
          ({!stats.check_seconds}/{!stats.enumerate_seconds}); [None]
          (default) records zero *)
}

(* The default victim policy differs from the centralised engine's:
   under periodic global detection the resolver works from a stale
   snapshot with no meaningful "requester", and cost-optimising policies
   (min-cost, ordered-min-cost) then re-victimise the same cheap
   transaction round after round — the Figure 2 pathology resurrected by
   staleness (measured in experiment E10b). The age-based rule converges,
   which is exactly why the distributed literature the paper cites [1,7,
   10] uses timestamps for victim selection. *)
let default_config =
  {
    n_sites = 4;
    detection = Local_then_global 50;
    detection_policy = Detection_policy.Eager;
    starvation_limit = None;
    strategy = Strategy.Sdg;
    policy = Policy.Youngest;
    seed = 1;
    max_ticks = 1_000_000;
    cycle_limit = 256;
    restart_delay = 0;
    faults = None;
    clock = None;
  }

exception Stuck of string

(* Without a fault plan every remote interaction is synchronous (the seed
   model: messages are counted, never materialised). With a plan, remote
   lock requests, grant replies and unlock/commit releases become events
   that can be lost, duplicated or delayed; crashes and recoveries are
   events too. *)
type event =
  | Exec of int
  | Detector
  | Req_arrive of int * Lock_mode.t * Store.entity
      (** a (possibly retransmitted) remote lock request reaches the
          entity's site *)
  | Req_timeout of int * Store.entity
      (** requester-side probe: retransmit a lost request, rediscover a
          lost grant *)
  | Grant_arrive of int * Store.entity
      (** the site's grant reply reaches the requester *)
  | Release_arrive of int * Store.entity
  | Release_retry of int * Store.entity * int  (** attempt count *)
  | Crash of int * int  (** site, downtime *)
  | Recover of int

type meta = {
  home : int;
  mutable last_site : int;
  mutable pending : (Lock_mode.t * Store.entity) option;
      (** the remote request in flight (or queued remotely); the owner is
          parked until a grant is observed *)
  mutable attempt : int;  (** retransmissions of the pending request *)
}

type t = {
  cfg : config;
  store : Store.t;
  site_fn : Store.entity -> int;
  locks : Lock_table.t;
  wfg : Waits_for.t;
  txns : (int, Txn_state.t) Hashtbl.t;
  metas : (int, meta) Hashtbl.t;
  events : event Heap.t;
  hist : History.t;
  rng : Rng.t;
  faults : Fault.t option;
  down : bool array;
  up_at : int array;  (** recovery tick of a currently-down site *)
  blocked_since : (int, int) Hashtbl.t;
  mutable inflight_releases : int;
      (** release messages not yet delivered; the run is quiescent only
          once they drain, or end-of-run lock-table checks would see
          phantom rows *)
  mutable next_id : int;
  mutable tick : int;
  mutable commits : int;
  mutable deadlocks : int;
  mutable local_deadlocks : int;
  mutable global_deadlocks : int;
  mutable wounds : int;
  mutable rollback_events : int;
  mutable messages : int;
  mutable shipped_copies : int;
  mutable detection_rounds : int;
  mutable site_crashes : int;
  mutable site_recoveries : int;
  mutable purged_locks : int;
  mutable msgs_lost : int;
  mutable msgs_duplicated : int;
  mutable retransmissions : int;
  mutable timeout_aborts : int;
  mutable missed_rounds : int;
  rollback_counts : (int, int) Hashtbl.t;
      (** rollbacks per transaction, driving the starvation guard *)
  mutable last_round_tick : int;
      (** tick of the last global round that actually ran; the stall
          watchdog compares it against blocking times *)
  mutable detect_interval : int;
      (** current service cadence ([Adaptive]/[Lazy_on_timeout]) *)
  mutable quiet_rounds : int;  (** consecutive empty [Adaptive] rounds *)
  mutable watchdog_fires : int;
  mutable skipped_rounds : int;
      (** lazy firings that shipped nothing (nobody waited long enough) *)
  mutable starvation_fallbacks : int;
  mutable max_blocked_ticks : int;
  mutable total_blocked_ticks : int;
  mutable check_seconds : float;
      (** wall time inside the block-time would-deadlock probes, when the
          config supplies a clock *)
  mutable check_calls : int;
  mutable enumerate_seconds : float;
      (** wall time enumerating cycles for the resolver (local and global
          rounds), when the config supplies a clock *)
  mutable enumerate_calls : int;
}

let default_site_of n_sites e =
  (Prb_storage.Value.as_int (Prb_storage.Value.text e)) mod n_sites

let create ?site_of config store =
  if config.n_sites < 1 then invalid_arg "Dist_scheduler: n_sites < 1";
  let site_fn =
    match site_of with
    | Some f -> f
    | None -> default_site_of config.n_sites
  in
  let faults =
    match config.faults with
    | Some p when not (Fault.is_none p) -> Some (Fault.make p)
    | Some _ | None -> None
  in
  let t =
    {
      cfg = config;
      store;
      site_fn;
      locks = Lock_table.create ~fair:true ();
      wfg = Waits_for.create ();
      txns = Hashtbl.create 64;
      metas = Hashtbl.create 64;
      events = Heap.create ();
      hist = History.create ();
      rng = Rng.make config.seed;
      faults;
      down = Array.make config.n_sites false;
      up_at = Array.make config.n_sites 0;
      blocked_since = Hashtbl.create 16;
      inflight_releases = 0;
      next_id = 0;
      tick = 0;
      commits = 0;
      deadlocks = 0;
      local_deadlocks = 0;
      global_deadlocks = 0;
      wounds = 0;
      rollback_events = 0;
      messages = 0;
      shipped_copies = 0;
      detection_rounds = 0;
      site_crashes = 0;
      site_recoveries = 0;
      purged_locks = 0;
      msgs_lost = 0;
      msgs_duplicated = 0;
      retransmissions = 0;
      timeout_aborts = 0;
      missed_rounds = 0;
      rollback_counts = Hashtbl.create 16;
      last_round_tick = 0;
      detect_interval =
        (match config.detection_policy with
        | Detection_policy.Eager ->
            (match config.detection with
            | Local_then_global period -> period
            | Wound_wait -> 0)
        | p -> Detection_policy.initial_interval p);
      quiet_rounds = 0;
      watchdog_fires = 0;
      skipped_rounds = 0;
      starvation_fallbacks = 0;
      max_blocked_ticks = 0;
      total_blocked_ticks = 0;
      check_seconds = 0.0;
      check_calls = 0;
      enumerate_seconds = 0.0;
      enumerate_calls = 0;
    }
  in
  (match config.detection with
  | Local_then_global period ->
      if period < 1 then invalid_arg "Dist_scheduler: period < 1";
      Heap.push t.events ~priority:period Detector
  | Wound_wait -> ());
  (match faults with
  | Some f ->
      List.iter
        (fun (c : Fault.site_crash) ->
          if c.Fault.site >= 0 && c.Fault.site < config.n_sites then
            Heap.push t.events ~priority:(max 1 c.Fault.at)
              (Crash (c.Fault.site, max 1 c.Fault.downtime)))
        (Fault.plan f).Fault.site_crashes
  | None -> ());
  t

let site_of t e = t.site_fn e
let waits_for t = t.wfg
let lock_table t = t.locks
let now t = t.tick
let n_committed t = t.commits
let all_committed t = t.commits = Hashtbl.length t.txns
let quiescent t = all_committed t && t.inflight_releases = 0
let history t = t.hist
let site_up t s = not t.down.(s)

let txn_state t id =
  match Hashtbl.find_opt t.txns id with
  | Some ts -> ts
  | None -> raise Not_found

let meta t id = Hashtbl.find t.metas id

let timeouts t =
  match t.faults with
  | Some f -> (Fault.plan f).Fault.timeouts
  | None -> Fault.default_timeouts

let push t ~at ev = Heap.push t.events ~priority:at ev

let push_release t ~at ev =
  t.inflight_releases <- t.inflight_releases + 1;
  push t ~at ev

(* A tracked wait ended: fold its duration into the blocked-time stats
   and drop the entry. Every unblocking path funnels through here. *)
let note_unblocked t id =
  match Hashtbl.find_opt t.blocked_since id with
  | None -> ()
  | Some since ->
      let d = t.tick - since in
      if d > t.max_blocked_ticks then t.max_blocked_ticks <- d;
      t.total_blocked_ticks <- t.total_blocked_ticks + d;
      Hashtbl.remove t.blocked_since id

let note_rollback t v =
  let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.rollback_counts v) in
  Hashtbl.replace t.rollback_counts v n

let immune t v =
  match t.cfg.starvation_limit with
  | Some k ->
      Option.value ~default:0 (Hashtbl.find_opt t.rollback_counts v) >= k
  | None -> false

let submit t ~home program =
  if home < 0 || home >= t.cfg.n_sites then
    invalid_arg "Dist_scheduler.submit: bad home site";
  let id = t.next_id in
  t.next_id <- id + 1;
  let ts =
    Txn_state.create ~strategy:t.cfg.strategy ~id ~store:t.store program
  in
  Hashtbl.replace t.txns id ts;
  Hashtbl.replace t.metas id
    { home; last_site = home; pending = None; attempt = 0 };
  Waits_for.add_txn t.wfg id;
  push t ~at:(t.tick + 1) (Exec id);
  id

let schedule t id = push t ~at:(t.tick + 1) (Exec id)

let refresh_waiters t e =
  List.iter
    (fun (w, _) ->
      match Lock_table.blockers t.locks w with
      | [] -> ()
      | holders -> Waits_for.set_wait t.wfg ~waiter:w ~holders e)
    (Lock_table.waiters t.locks e)

(* --- Messaging ------------------------------------------------------- *)

(* The requester learns its lock was granted (synchronously, via a grant
   reply, or via a probe that rediscovers a grant whose reply was lost). *)
let notify_grant t w e =
  let ts = txn_state t w in
  let m = meta t w in
  m.pending <- None;
  m.attempt <- 0;
  Txn_state.lock_granted ts;
  (* The lock stream of [w] has now touched [e]'s site: partial
     strategies ship their bookkeeping along (Section 3.3). *)
  let s = site_of t e in
  if s <> m.last_site then begin
    if not (Strategy.equal t.cfg.strategy Strategy.Total) then begin
      t.messages <- t.messages + 1;
      t.shipped_copies <- t.shipped_copies + Txn_state.current_copies ts
    end;
    m.last_site <- s
  end;
  schedule t w

let send_grant t f w e =
  t.messages <- t.messages + 1;
  match Fault.roll f ~tick:t.tick with
  | Fault.Deliver d -> push t ~at:(t.tick + 1 + d) (Grant_arrive (w, e))
  | Fault.Duplicate (d1, d2) ->
      t.msgs_duplicated <- t.msgs_duplicated + 1;
      push t ~at:(t.tick + 1 + d1) (Grant_arrive (w, e));
      push t ~at:(t.tick + 1 + d2) (Grant_arrive (w, e))
  | Fault.Lose -> t.msgs_lost <- t.msgs_lost + 1
      (* the waiter's probe keeps running while its request is pending:
         it will rediscover the grant in the lock table *)

let process_grants t grants =
  List.iter
    (fun (w, mode, e) ->
      Waits_for.clear_wait t.wfg w;
      note_unblocked t w;
      History.note_grant t.hist ~tick:t.tick w e mode;
      match t.faults with
      | Some _ when t.down.(site_of t e) ->
          (* decided in memory that died with the site; the rebuild will
             purge the row and the waiter's probe re-requests *)
          t.msgs_lost <- t.msgs_lost + 1
      | Some f when site_of t e <> (meta t w).home -> send_grant t f w e
      | _ -> notify_grant t w e)
    grants

(* Table-side release plus propagation; no message accounting. *)
let do_release t id e =
  let grants = Lock_table.release t.locks id e in
  process_grants t (List.map (fun (w, m) -> (w, m, e)) grants);
  refresh_waiters t e

let release_lock t id e =
  if site_of t e <> (meta t id).home then t.messages <- t.messages + 1;
  do_release t id e

let transmit_release t f id e ~attempt =
  t.messages <- t.messages + 1;
  let to_ = (Fault.plan f).Fault.timeouts in
  if t.down.(site_of t e) then
    (* swallowed by the dead site; the row dies in the rebuild *)
    t.msgs_lost <- t.msgs_lost + 1
  else
    match Fault.roll f ~tick:t.tick with
    | Fault.Deliver d -> push_release t ~at:(t.tick + 1 + d) (Release_arrive (id, e))
    | Fault.Duplicate (d1, d2) ->
        t.msgs_duplicated <- t.msgs_duplicated + 1;
        push_release t ~at:(t.tick + 1 + d1) (Release_arrive (id, e));
        push_release t ~at:(t.tick + 1 + d2) (Release_arrive (id, e))
    | Fault.Lose ->
        t.msgs_lost <- t.msgs_lost + 1;
        push_release t
          ~at:(t.tick + to_.Fault.request_timeout + Fault.backoff to_ ~attempt)
          (Release_retry (id, e, attempt + 1))

(* Unlock/commit releases travel as (retried, idempotent) messages under
   a fault plan. Rollback releases never do: a transaction that rolled
   back re-executes and may re-request the same entity, and an in-flight
   release racing that re-request could destroy the fresh lock — so
   rollback is modelled as a reliable coordination round (which is what
   the per-site message accounting below already charges for). *)
let async_release t id e =
  match t.faults with
  | Some f when site_of t e <> (meta t id).home ->
      transmit_release t f id e ~attempt:0
  | _ -> release_lock t id e

let release_after_rollback t id e =
  if t.down.(site_of t e) then ()
    (* the site's table fragment is gone; recovery purges the row *)
  else release_lock t id e

let transmit_request t f id mode e =
  t.messages <- t.messages + 1;
  if t.down.(site_of t e) then t.msgs_lost <- t.msgs_lost + 1
  else
    match Fault.roll f ~tick:t.tick with
    | Fault.Deliver d -> push t ~at:(t.tick + 1 + d) (Req_arrive (id, mode, e))
    | Fault.Duplicate (d1, d2) ->
        t.msgs_duplicated <- t.msgs_duplicated + 1;
        push t ~at:(t.tick + 1 + d1) (Req_arrive (id, mode, e));
        push t ~at:(t.tick + 1 + d2) (Req_arrive (id, mode, e))
    | Fault.Lose -> t.msgs_lost <- t.msgs_lost + 1

let send_request t f id mode e =
  let m = meta t id in
  m.pending <- Some (mode, e);
  m.attempt <- 0;
  transmit_request t f id mode e;
  push t ~at:(t.tick + (timeouts t).Fault.request_timeout) (Req_timeout (id, e))

(* --- Rollback application (shared with both detection modes) --------- *)

let split_arcs ts entities =
  List.partition (fun e -> Txn_state.holds ts e <> None) entities

let release_cost t v entities =
  let ts = txn_state t v in
  let held, queued = split_arcs ts entities in
  let rollback_part =
    match held with
    | [] -> 0
    | es ->
        let target =
          List.fold_left
            (fun acc e -> min acc (Txn_state.rollback_target ts e))
            max_int es
        in
        Txn_state.cost_of_target ts target
  in
  rollback_part + if queued = [] then 0 else 1

let cancel_pending_request t v =
  match Lock_table.cancel_wait t.locks v with
  | Some (e, grants) ->
      process_grants t (List.map (fun (w, m) -> (w, m, e)) grants);
      refresh_waiters t e
  | None -> ()

let forget_wait t v =
  cancel_pending_request t v;
  let m = meta t v in
  (match m.pending with
  | Some (_, e)
    when Lock_table.holds t.locks v e <> None
         && Txn_state.holds (txn_state t v) e = None ->
      (* Granted table-side but the reply never reached us (lost or still
         in flight) and now we are rolling back: the lock would leak —
         hand it straight back. A down site's fragment is reconciled by
         its rebuild instead. *)
      History.discard t.hist v e;
      if not t.down.(site_of t e) then release_lock t v e
  | Some _ | None -> ());
  Waits_for.clear_wait t.wfg v;
  note_unblocked t v;
  m.pending <- None;
  m.attempt <- 0

let apply_partial_rollback t ~deferred ~stagger v entities =
  let ts = txn_state t v in
  let held, _queued = split_arcs ts entities in
  forget_wait t v;
  (match held with
  | [] -> ()
  | es ->
      let target =
        List.fold_left
          (fun acc e -> min acc (Txn_state.rollback_target ts e))
          (Txn_state.lock_index ts)
          es
      in
      let released = Txn_state.rollback_to ts target in
      t.rollback_events <- t.rollback_events + 1;
      note_rollback t v;
      (* One coordination message per remote site whose entities the
         rollback released. *)
      let home = (meta t v).home in
      let sites =
        List.sort_uniq Site_id.compare (List.map (site_of t) released)
        |> List.filter (fun s -> not (Site_id.equal s home))
      in
      t.messages <- t.messages + List.length sites;
      List.iter
        (fun e ->
          History.discard t.hist v e;
          release_after_rollback t v e)
        released);
  (* Deferred rounds restart a whole batch of victims at once; restarting
     them in lockstep replays the exact collision that formed the cycles
     (the workload is deterministic), so the batch limit-cycles forever.
     Stagger victims by their position in the batch and back repeat
     victims off quadratically — same scheme as the centralised engine. *)
  let backoff =
    if not deferred then 0
    else
      let n =
        match Hashtbl.find_opt t.rollback_counts v with
        | Some n -> n
        | None -> 0
      in
      stagger + (n * n)
  in
  push t ~at:(t.tick + 1 + t.cfg.restart_delay + backoff) (Exec v)

(* Full restart: site-crash of the home site, or a degraded-mode timeout
   abort while the global detector is out. *)
let restart_txn t id ~resume_at =
  let ts = txn_state t id in
  let m = meta t id in
  forget_wait t id;
  let released = Txn_state.rollback_to ts Txn_state.restart_target in
  t.rollback_events <- t.rollback_events + 1;
  note_rollback t id;
  List.iter
    (fun e ->
      History.discard t.hist id e;
      release_after_rollback t id e)
    released;
  m.last_site <- m.home;
  push t ~at:resume_at (Exec id)

(* How many rollbacks a victim may suffer before a deferred round stops
   rolling it back partially and escalates to a delayed full restart. A
   long backoff on a partial-rollback victim is a convoy — it still holds
   its surviving locks while it waits — so repeat victims instead release
   everything and re-enter after a quadratically growing delay, which
   breaks both the convoy and the re-victimisation loop the stale-snapshot
   cost policies are prone to (the E10b pathology). *)
let deferred_escalation = 4

let apply_rollback ?(deferred = false) ?(stagger = 0) t v entities =
  let prior =
    match Hashtbl.find_opt t.rollback_counts v with Some n -> n | None -> 0
  in
  if deferred && prior >= deferred_escalation then
    restart_txn t v
      ~resume_at:
        (t.tick + 1 + t.cfg.restart_delay + stagger + min 4096 (prior * prior))
  else apply_partial_rollback t ~deferred ~stagger v entities

(* --- Cycle detection ------------------------------------------------- *)

let resolver_cycles t requester =
  t.enumerate_calls <- t.enumerate_calls + 1;
  let raw =
    match t.cfg.clock with
    | None -> Waits_for.cycles_through ~limit:t.cfg.cycle_limit t.wfg requester
    | Some clk ->
        let t0 = clk () in
        let r =
          Waits_for.cycles_through ~limit:t.cfg.cycle_limit t.wfg requester
        in
        t.enumerate_seconds <- t.enumerate_seconds +. (clk () -. t0);
        r
  in
  let label u v =
    match Waits_for.wait_label t.wfg u v with
    | Some e -> e
    | None -> raise (Stuck "waits-for edge vanished during resolution")
  in
  List.map
    (fun cycle ->
      let rec arcs = function
        | [] -> []
        | [ last ] -> [ (requester, label last requester) ]
        | u :: (v :: _ as rest) -> (v, label u v) :: arcs rest
      in
      arcs cycle)
    raw

let is_local_cycle t cycle =
  match cycle with
  | [] -> true
  | (_, e0) :: rest ->
      let s = site_of t e0 in
      List.for_all (fun (_, e) -> site_of t e = s) rest

(* Under a deferred detection policy a round can face several cycles that
   accreted between rounds — the Section 3.2 multi-cycle regime — so the
   single-victim policies are routed through the minimum-cost vertex cut
   ([Ordered_min_cost], keeping Theorem 2's preemption order). Eager
   rounds keep the configured policy untouched. *)
let resolution_policy t cycles =
  if
    (not (Detection_policy.is_eager t.cfg.detection_policy))
    && (match cycles with _ :: _ :: _ -> true | [] | [ _ ] -> false)
    &&
    match t.cfg.policy with
    | Policy.Min_cost | Policy.Ordered_min_cost -> false
    | Policy.Requester | Policy.Youngest | Policy.Random_victim -> true
  then Policy.Ordered_min_cost
  else t.cfg.policy

let resolve_cycles ?(deferred = false) t requester cycles =
  t.deadlocks <- t.deadlocks + 1;
  let decision =
    Resolver.choose ~immune:(immune t)
      ~policy:(resolution_policy t cycles)
      ~requester
      ~entry_order:(fun v -> Txn_state.entry_order (txn_state t v))
      ~release_cost:(release_cost t) ~rng:t.rng cycles
  in
  if decision.Resolver.starved_fallback then
    t.starvation_fallbacks <- t.starvation_fallbacks + 1;
  List.iteri
    (fun i (v, entities) -> apply_rollback ~deferred ~stagger:i t v entities)
    decision.Resolver.victims

(* Local detection at block time: a site resolves instantly any cycle
   whose contested entities all live on it. *)
let rec resolve_local t requester round =
  if round > 1000 then raise (Stuck "local resolution did not converge");
  if Waits_for.is_blocked t.wfg requester then begin
    let local =
      List.filter (is_local_cycle t) (resolver_cycles t requester)
    in
    if local <> [] then begin
      t.local_deadlocks <- t.local_deadlocks + 1;
      resolve_cycles t requester local;
      resolve_local t requester (round + 1)
    end
  end

(* Block-time detection under the cost clock: only the boolean
   would-deadlock probe is a "check"; a local resolution it triggers
   bills its cycle enumeration to the enumerate counters inside
   [resolver_cycles] (victim selection and rollback application are
   resolution, not detection, and stay untimed). *)
let local_check t id ~holders =
  t.check_calls <- t.check_calls + 1;
  let hit =
    match t.cfg.clock with
    | None -> Waits_for.would_deadlock t.wfg ~waiter:id ~holders
    | Some clk ->
        let t0 = clk () in
        let r = Waits_for.would_deadlock t.wfg ~waiter:id ~holders in
        t.check_seconds <- t.check_seconds +. (clk () -. t0);
        r
  in
  if hit then resolve_local t id 0

let blocked_txns t =
  List.filter (fun id -> Waits_for.is_blocked t.wfg id) (Waits_for.txns t.wfg)

(* Global detector: every site ships its waits-for edges to a coordinator
   which resolves everything it sees, local or not. Under a fault plan a
   site's shipment can be lost (and down sites ship nothing), so the
   coordinator only acts on cycles all of whose arcs it can see; missed
   cycles survive to the next round. *)
let run_global_detection t =
  t.detection_rounds <- t.detection_rounds + 1;
  let cycle_visible =
    match t.faults with
    | None ->
        t.messages <- t.messages + t.cfg.n_sites;
        fun _ -> true
    | Some f ->
        let vis =
          Array.init t.cfg.n_sites (fun s ->
              if t.down.(s) then false
              else begin
                t.messages <- t.messages + 1;
                Fault.shipment_arrives f ~tick:t.tick
              end)
        in
        fun cycle -> List.for_all (fun (_, e) -> vis.(site_of t e)) cycle
  in
  let round = ref 0 in
  let rec fixpoint () =
    incr round;
    if !round > 1000 then raise (Stuck "global detection did not converge");
    let site =
      List.find_map
        (fun b ->
          match List.filter cycle_visible (resolver_cycles t b) with
          | [] -> None
          | cycles -> Some (b, cycles))
        (blocked_txns t)
    in
    match site with
    | None -> ()
    | Some (requester, cycles) ->
        t.global_deadlocks <- t.global_deadlocks + 1;
        resolve_cycles
          ~deferred:(not (Detection_policy.is_eager t.cfg.detection_policy))
          t requester cycles;
        fixpoint ()
  in
  fixpoint ()

(* Detector outage: no global rounds run; long-blocked transactions are
   timeout-aborted instead (graceful degradation — cross-site cycles
   cannot be seen, so break them blindly but fairly). *)
let degrade t =
  let to_ = timeouts t in
  List.iter
    (fun b ->
      match Hashtbl.find_opt t.blocked_since b with
      | Some since when t.tick - since >= to_.Fault.degraded_timeout ->
          t.timeout_aborts <- t.timeout_aborts + 1;
          restart_txn t b ~resume_at:(t.tick + 1 + t.cfg.restart_delay)
      | Some _ | None -> ())
    (List.sort Txn_id.compare (blocked_txns t))

(* One firing of the global-detector service: decide per the detection
   policy whether a round actually runs, and return the delay until the
   next firing. The firing chain itself is policy-independent and
   self-perpetuating, so deferral can never leave deadlocked
   configurations without a pending wake source. *)
let detector_round t ~period =
  let next_delay () =
    match t.cfg.detection_policy with
    | Detection_policy.Eager -> period
    | Detection_policy.Periodic n -> n
    | Detection_policy.Adaptive | Detection_policy.Lazy_on_timeout _ ->
        t.detect_interval
  in
  match t.faults with
  | Some f when Fault.in_outage (Fault.plan f) t.tick ->
      (* detector service down, whatever the policy: degrade gracefully
         (timeout-abort long-blocked transactions) and keep the cadence —
         the first post-outage firing runs the watchdog check below *)
      t.missed_rounds <- t.missed_rounds + 1;
      degrade t;
      next_delay ()
  | _ -> (
      let run_round () =
        let before = t.deadlocks in
        run_global_detection t;
        t.last_round_tick <- t.tick;
        t.deadlocks > before
      in
      match t.cfg.detection_policy with
      | Detection_policy.Eager ->
          ignore (run_round ());
          period
      | Detection_policy.Periodic n ->
          ignore (run_round ());
          n
      | Detection_policy.Adaptive ->
          if run_round () then begin
            t.detect_interval <-
              max Detection_policy.adaptive_min (t.detect_interval / 2);
            t.quiet_rounds <- 0
          end
          else begin
            t.quiet_rounds <- t.quiet_rounds + 1;
            if t.quiet_rounds >= 2 then begin
              t.detect_interval <-
                min Detection_policy.adaptive_max (t.detect_interval * 2);
              t.quiet_rounds <- 0
            end
          end;
          t.detect_interval
      | Detection_policy.Lazy_on_timeout { blocked_ticks; backoff } ->
          let bound =
            Detection_policy.stall_bound t.cfg.detection_policy
          in
          let oldest, stalled =
            Util.fold_sorted Txn_id.compare
              (fun id since ((o, s) as acc) ->
                if Waits_for.is_blocked t.wfg id then
                  ( max o (t.tick - since),
                    s
                    || t.tick - since >= bound
                       && t.last_round_tick <= since )
                else acc)
              t.blocked_since (0, false)
          in
          if stalled then begin
            (* the watchdog: blocked past the stall bound with no round
               since — lost rounds (outage) or runaway backoff; force a
               round and reset the cadence *)
            t.watchdog_fires <- t.watchdog_fires + 1;
            ignore (run_round ());
            t.detect_interval <- blocked_ticks;
            blocked_ticks
          end
          else if oldest >= blocked_ticks then begin
            (if run_round () then t.detect_interval <- blocked_ticks
             else begin
               (* false alarm: long waits but no cycle — back off, capped
                  at half the stall bound so the watchdog stays behind *)
               let cap = blocked_ticks * (1 lsl min backoff 20) in
               t.detect_interval <- min cap (t.detect_interval * 2)
             end);
            t.detect_interval
          end
          else begin
            (* nobody has waited long enough to suspect a deadlock: skip
               the round, shipping no edges at all *)
            t.skipped_rounds <- t.skipped_rounds + 1;
            t.detect_interval
          end)

(* Wound-wait: an older requester wounds every younger blocker — holders
   roll back to release the entity, younger queued requests requeue
   behind. Shrinking transactions are immune (Section 2's no-rollback-
   after-unlock rule) and exempt: they issue no more lock requests, so
   they can never sit on a cycle, and they will release on their own.
   Afterwards every wait edge points to an older or shrinking
   transaction, and no cycle can ever close. *)
let wound_wait t requester e blockers =
  List.iter
    (fun b ->
      if
        b > requester
        && Txn_state.phase (txn_state t b) = Txn_state.Growing
      then begin
        t.wounds <- t.wounds + 1;
        if site_of t e <> (meta t b).home then t.messages <- t.messages + 1;
        apply_rollback t b [ e ]
      end)
    blockers

(* --- Site crash and recovery ----------------------------------------- *)

let partial_crash_rollback t id ~site =
  let ts = txn_state t id in
  let on_site =
    List.filter_map
      (fun (e, _, _) -> if site_of t e = site then Some e else None)
      (Txn_state.locks_held ts)
  in
  if on_site <> [] then begin
    forget_wait t id;
    let target =
      List.fold_left
        (fun acc e -> min acc (Txn_state.rollback_target ts e))
        (Txn_state.lock_index ts)
        on_site
    in
    let released = Txn_state.rollback_to ts target in
    t.rollback_events <- t.rollback_events + 1;
    note_rollback t id;
    List.iter
      (fun e ->
        History.discard t.hist id e;
        release_after_rollback t id e)
      released;
    push t ~at:(t.tick + 1 + t.cfg.restart_delay) (Exec id)
  end

let crash_site t s downtime =
  if not t.down.(s) then begin
    t.site_crashes <- t.site_crashes + 1;
    t.down.(s) <- true;
    t.up_at.(s) <- t.tick + downtime;
    push t ~at:(t.tick + downtime) (Recover s);
    let ids = Util.sorted_keys Txn_id.compare t.txns in
    (* Coordinators at the site die with it: every growing transaction
       homed there restarts from scratch once the site is back. Shrinking
       transactions are past their commit point and immune — their state
       survives in the recovery log. *)
    List.iter
      (fun id ->
        let ts = txn_state t id in
        if Txn_state.phase ts = Txn_state.Growing && (meta t id).home = s then
          restart_txn t id ~resume_at:(t.up_at.(s) + 1 + t.cfg.restart_delay))
      ids;
    (* Remote transactions lose whatever they hold at the site: roll each
       back (per strategy) to its last state not touching it. *)
    List.iter
      (fun id ->
        let ts = txn_state t id in
        if Txn_state.phase ts = Txn_state.Growing && (meta t id).home <> s then
          partial_crash_rollback t id ~site:s)
      ids
  end

(* Recovery rebuilds the site's lock-table fragment from surviving
   transaction state: queued requests died with the site (their owners
   retransmit on probe timeout), and holder rows not backed by a live
   transaction that still holds the entity are purged. Skipping this —
   plan.rebuild_locks = false — leaves phantom holders that block every
   later requester forever; the chaos harness exists to catch exactly
   that kind of recovery bug. *)
let rebuild_site_locks t s =
  List.iter
    (fun e ->
      if site_of t e = s then begin
        (* tail-first, so removing one waiter never grants another *)
        List.iter
          (fun (w, _) ->
            (match Lock_table.cancel_wait t.locks w with
            | Some (e', grants) ->
                process_grants t
                  (List.map (fun (x, m) -> (x, m, e')) grants);
                refresh_waiters t e'
            | None -> ());
            Waits_for.clear_wait t.wfg w;
            note_unblocked t w)
          (List.rev (Lock_table.waiters t.locks e));
        List.iter
          (fun (h, _) ->
            let stale =
              match Hashtbl.find_opt t.txns h with
              | None -> true
              | Some ts ->
                  Txn_state.phase ts = Txn_state.Committed
                  || Txn_state.holds ts e = None
            in
            if stale then begin
              t.purged_locks <- t.purged_locks + 1;
              History.discard t.hist h e;
              let grants = Lock_table.release t.locks h e in
              process_grants t (List.map (fun (w, m) -> (w, m, e)) grants)
            end)
          (Lock_table.holders t.locks e);
        refresh_waiters t e
      end)
    (Store.entities t.store)

let recover_site t s =
  t.down.(s) <- false;
  t.site_recoveries <- t.site_recoveries + 1;
  match t.faults with
  | Some f when not (Fault.plan f).Fault.rebuild_locks -> ()
  | _ -> rebuild_site_locks t s

(* --- Message handlers ------------------------------------------------- *)

let req_arrive t id mode e =
  if t.down.(site_of t e) then ()
  else
    let m = meta t id in
    match m.pending with
    | Some (mode', e') when String.equal e' e && Lock_mode.equal mode' mode -> (
        let f = match t.faults with Some f -> f | None -> assert false in
        match Lock_table.holds t.locks id e with
        | Some held
          when not
                 (Lock_mode.equal held Lock_mode.Shared
                 && Lock_mode.equal mode Lock_mode.Exclusive) ->
            (* a retransmission of a request already granted: the grant
               reply was lost — resend it (idempotent on arrival) *)
            send_grant t f id e
        | _ ->
            if Lock_table.waiting_for t.locks id <> None then
              () (* already queued: duplicate arrival *)
            else (
              match Lock_table.request t.locks id mode e with
              | Lock_table.Granted ->
                  History.note_grant t.hist ~tick:t.tick id e mode;
                  refresh_waiters t e;
                  send_grant t f id e
              | Lock_table.Blocked holders -> (
                  Waits_for.set_wait t.wfg ~waiter:id ~holders e;
                  Hashtbl.replace t.blocked_since id t.tick;
                  match t.cfg.detection with
                  | Wound_wait -> wound_wait t id e holders
                  | Local_then_global _ -> local_check t id ~holders)))
    | Some _ | None -> () (* the transaction moved on; stale request *)

let req_timeout t id e =
  match t.faults with
  | None -> ()
  | Some f -> (
      let m = meta t id in
      match m.pending with
      | Some (mode, e') when String.equal e' e ->
          let to_ = (Fault.plan f).Fault.timeouts in
          if t.down.(site_of t e) then
            (* the site cannot answer a probe; any table row we might see
               is dead memory — stay parked until after its rebuild *)
            push t ~at:(t.tick + to_.Fault.request_timeout)
              (Req_timeout (id, e))
          else
          let satisfied =
            match Lock_table.holds t.locks id e with
            | Some Lock_mode.Exclusive -> true
            | Some Lock_mode.Shared -> Lock_mode.equal mode Lock_mode.Shared
            | None -> false
          in
          if satisfied then begin
            (* grant reply lost: the probe rediscovers the lock *)
            Waits_for.clear_wait t.wfg id;
            note_unblocked t id;
            notify_grant t id e
          end
          else if Lock_table.waiting_for t.locks id <> None then
            (* queued at the site: stay parked, keep probing *)
            push t ~at:(t.tick + to_.Fault.request_timeout) (Req_timeout (id, e))
          else begin
            (* the request (or our queue entry, if the site crashed)
               vanished: retransmit with bounded exponential backoff *)
            m.attempt <- m.attempt + 1;
            t.retransmissions <- t.retransmissions + 1;
            transmit_request t f id mode e;
            push t
              ~at:
                (t.tick + to_.Fault.request_timeout
                + Fault.backoff to_ ~attempt:m.attempt)
              (Req_timeout (id, e))
          end
      | Some _ | None -> () (* stale probe *))

let grant_arrive t id e =
  match Lock_table.holds t.locks id e with
  | None -> () (* released or purged before the reply landed *)
  | Some held -> (
      let m = meta t id in
      let ts = txn_state t id in
      match m.pending with
      | Some (mode, e') when String.equal e' e ->
          let satisfies =
            match held with
            | Lock_mode.Exclusive -> true
            | Lock_mode.Shared -> Lock_mode.equal mode Lock_mode.Shared
          in
          if satisfies then begin
            Waits_for.clear_wait t.wfg id;
            note_unblocked t id;
            notify_grant t id e
          end
      | Some _ | None ->
          if Txn_state.holds ts e <> None then
            () (* duplicate of an accepted grant *)
          else begin
            (* granted to a transaction that rolled back meanwhile: hand
               the lock straight back so it cannot leak *)
            History.discard t.hist id e;
            release_lock t id e
          end)

let release_arrive t id e =
  if t.down.(site_of t e) then ()
    (* the site died again before the release landed; rebuild reconciles *)
  else
    match Lock_table.holds t.locks id e with
    | None -> () (* duplicate delivery, or the row was purged *)
    | Some _ -> do_release t id e

let release_retry t id e attempt =
  match t.faults with
  | None -> ()
  | Some f ->
      if Lock_table.holds t.locks id e = None then ()
      else begin
        t.retransmissions <- t.retransmissions + 1;
        transmit_release t f id e ~attempt
      end

(* --- Transaction stepping -------------------------------------------- *)

let handle_lock_request t id mode e =
  let ts = txn_state t id in
  let m = meta t id in
  match t.faults with
  | Some f when site_of t e <> m.home -> send_request t f id mode e
  | _ -> (
      if site_of t e <> m.home then t.messages <- t.messages + 2;
      match Lock_table.request t.locks id mode e with
      | Lock_table.Granted ->
          History.note_grant t.hist ~tick:t.tick id e mode;
          Txn_state.lock_granted ts;
          let s = site_of t e in
          if s <> m.last_site then begin
            if not (Strategy.equal t.cfg.strategy Strategy.Total) then begin
              t.messages <- t.messages + 1;
              t.shipped_copies <- t.shipped_copies + Txn_state.current_copies ts
            end;
            m.last_site <- s
          end;
          refresh_waiters t e;
          schedule t id
      | Lock_table.Blocked holders -> (
          Waits_for.set_wait t.wfg ~waiter:id ~holders e;
          Hashtbl.replace t.blocked_since id t.tick;
          match t.cfg.detection with
          | Wound_wait -> wound_wait t id e holders
          | Local_then_global _ -> local_check t id ~holders))

let handle_unlock t id =
  let ts = txn_state t id in
  let e, final = Txn_state.perform_unlock ts in
  (match final with Some v -> Store.install t.store e v | None -> ());
  History.note_release t.hist ~tick:t.tick id e;
  async_release t id e;
  schedule t id

let handle_commit t id =
  let ts = txn_state t id in
  let finals = Txn_state.commit ts in
  List.iter (fun (e, v) -> Store.install t.store e v) finals;
  let held = Lock_table.held_by t.locks id in
  List.iter (fun (e, _) -> History.note_release t.hist ~tick:t.tick id e) held;
  let home = (meta t id).home in
  (match t.faults with
  | None ->
      let grants = Lock_table.release_all t.locks id in
      List.iter
        (fun (e, _) -> if site_of t e <> home then t.messages <- t.messages + 1)
        held;
      process_grants t grants;
      List.iter (fun (e, _) -> refresh_waiters t e) held
  | Some f ->
      (* each remaining lock is released by its own (retried) message *)
      List.iter
        (fun (e, _) ->
          if site_of t e <> home then transmit_release t f id e ~attempt:0
          else do_release t id e)
        held);
  Waits_for.remove_txn t.wfg id;
  History.commit_txn t.hist id;
  t.commits <- t.commits + 1

let exec_one t id =
  let ts = txn_state t id in
  match Txn_state.phase ts with
  | Txn_state.Committed -> ()
  | Txn_state.Growing | Txn_state.Shrinking -> (
      let m = meta t id in
      if Waits_for.is_blocked t.wfg id then ()
      else if m.pending <> None then () (* awaiting a remote reply *)
      else if t.down.(m.home) then
        (* our own site is down: nothing runs until it recovers *)
        push t ~at:(t.up_at.(m.home) + 1) (Exec id)
      else
        match Txn_state.next_action ts with
        | Txn_state.Need_lock (mode, e) -> handle_lock_request t id mode e
        | Txn_state.Need_unlock _ -> handle_unlock t id
        | Txn_state.Data_step ->
            Txn_state.exec_data_op ts;
            schedule t id
        | Txn_state.At_end -> handle_commit t id)

let step t =
  if quiescent t then false
  else
    match Heap.pop t.events with
    | None -> raise (Stuck "event queue drained with live transactions")
    | Some (tick, ev) ->
        if tick > t.cfg.max_ticks then false
        else begin
          t.tick <- max t.tick tick;
          (match ev with
          | Exec id -> exec_one t id
          | Detector -> (
              match t.cfg.detection with
              | Local_then_global period ->
                  let delay = detector_round t ~period in
                  push t ~at:(t.tick + delay) Detector
              | Wound_wait -> ())
          | Req_arrive (id, mode, e) -> req_arrive t id mode e
          | Req_timeout (id, e) -> req_timeout t id e
          | Grant_arrive (id, e) -> grant_arrive t id e
          | Release_arrive (id, e) ->
              t.inflight_releases <- t.inflight_releases - 1;
              release_arrive t id e
          | Release_retry (id, e, attempt) ->
              t.inflight_releases <- t.inflight_releases - 1;
              release_retry t id e attempt
          | Crash (s, downtime) -> crash_site t s downtime
          | Recover s -> recover_site t s);
          true
        end

let run t =
  while step t do
    ()
  done

type stats = {
  ticks : int;
  commits : int;
  deadlocks : int;
  local_deadlocks : int;
  global_deadlocks : int;
  wounds : int;
  rollbacks : int;
  ops_lost : int;
  messages : int;
  shipped_copies : int;
  detection_rounds : int;
  site_crashes : int;
  site_recoveries : int;
  purged_locks : int;
  msgs_lost : int;
  msgs_duplicated : int;
  retransmissions : int;
  timeout_aborts : int;
  missed_rounds : int;
  deferred_detection : bool;
      (** the run used a non-[Eager] detection policy (drives which stat
          lines print, keeping eager output byte-identical) *)
  watchdog_fires : int;
  skipped_rounds : int;
  starvation_fallbacks : int;
  max_blocked_ticks : int;
  total_blocked_ticks : int;
  max_txn_rollbacks : int;
  check_seconds : float;
      (** wall time inside the block-time would-deadlock probes; 0 unless
          the config supplies a {!config.clock} *)
  check_calls : int;  (** would-deadlock probes run at block time *)
  enumerate_seconds : float;
      (** wall time enumerating cycles for the resolver, local checks and
          global rounds alike; 0 unless the config supplies a clock *)
  enumerate_calls : int;  (** cycle enumerations run *)
}

let stats t =
  let fold f init =
    Util.fold_sorted Txn_id.compare (fun _ ts acc -> f acc ts) t.txns init
  in
  {
    ticks = t.tick;
    commits = t.commits;
    deadlocks = t.deadlocks;
    local_deadlocks = t.local_deadlocks;
    global_deadlocks = t.global_deadlocks;
    wounds = t.wounds;
    rollbacks = t.rollback_events;
    ops_lost = fold (fun acc ts -> acc + Txn_state.ops_lost ts) 0;
    messages = t.messages;
    shipped_copies = t.shipped_copies;
    detection_rounds = t.detection_rounds;
    site_crashes = t.site_crashes;
    site_recoveries = t.site_recoveries;
    purged_locks = t.purged_locks;
    msgs_lost = t.msgs_lost;
    msgs_duplicated = t.msgs_duplicated;
    retransmissions = t.retransmissions;
    timeout_aborts = t.timeout_aborts;
    missed_rounds = t.missed_rounds;
    deferred_detection =
      not (Detection_policy.is_eager t.cfg.detection_policy);
    watchdog_fires = t.watchdog_fires;
    skipped_rounds = t.skipped_rounds;
    starvation_fallbacks = t.starvation_fallbacks;
    max_blocked_ticks = t.max_blocked_ticks;
    total_blocked_ticks = t.total_blocked_ticks;
    max_txn_rollbacks =
      Util.fold_sorted Txn_id.compare
        (fun _ n acc -> max acc n)
        t.rollback_counts 0;
    check_seconds = t.check_seconds;
    check_calls = t.check_calls;
    enumerate_seconds = t.enumerate_seconds;
    enumerate_calls = t.enumerate_calls;
  }

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>ticks: %d@,commits: %d@,deadlocks: %d (local %d, global %d)@,\
     wounds: %d@,rollbacks: %d@,ops lost: %d@,messages: %d@,\
     shipped copies: %d@,detection rounds: %d@,\
     crashes: %d (recovered %d, purged locks %d)@,\
     msgs lost: %d, duplicated: %d, retransmissions: %d@,\
     timeout aborts: %d, missed detector rounds: %d"
    s.ticks s.commits s.deadlocks s.local_deadlocks s.global_deadlocks
    s.wounds s.rollbacks s.ops_lost s.messages s.shipped_copies
    s.detection_rounds s.site_crashes s.site_recoveries s.purged_locks
    s.msgs_lost s.msgs_duplicated s.retransmissions s.timeout_aborts
    s.missed_rounds;
  if s.deferred_detection then
    Fmt.pf ppf
      "@,skipped rounds: %d, watchdog fires: %d, starvation fallbacks: %d@,\
       max blocked: %d ticks (total %d), max txn rollbacks: %d"
      s.skipped_rounds s.watchdog_fires s.starvation_fallbacks
      s.max_blocked_ticks s.total_blocked_ticks s.max_txn_rollbacks;
  Fmt.pf ppf "@]"
