(* E13: scaling sweep — throughput (commits per wall-clock second),
   detection-time share and allocation volume at txns ∈ {100, 1k, 5k} ×
   contention ∈ {low, high}, on both engines. Writes BENCH_scale.json in
   the current directory so the perf trajectory is machine-readable
   across PRs (see EXPERIMENTS.md E13). *)

module Scale = Prb_bench_scale.Scale

let json_path = "BENCH_scale.json"

let run () =
  Common.header "E13" "scaling sweep (throughput, detection share, allocs)";
  let quick = !Common.quick in
  let points = Scale.sweep ~quick () in
  Scale.print_table points;
  Scale.write_json ~path:json_path ~quick points;
  Common.note "wrote %s (%d points%s)" json_path (List.length points)
    (if quick then ", quick mode" else "");
  Common.note
    "low contention scales the database with the transaction count\n\
     (bookkeeping-bound); high contention pins a 64-entity hot set so\n\
     waits-for maintenance and deadlock detection dominate — the regime\n\
     where the indexed lock table and early-exit detection pay off."
