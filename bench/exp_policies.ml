(* E14: detection-policy sweep — each deferred policy (periodic, lazy
   timeout probes, adaptive) against eager detection at low/high
   contention, with and without a detector-outage fault plan, on the
   centralised engine with the starvation guard armed. Reports wall-time
   speedup over eager at equal commits plus the liveness counters
   (detection passes, watchdog fires, longest blocking episode), and
   folds the points into BENCH_scale.json next to E13's so the perf
   trajectory carries both (see EXPERIMENTS.md E14). *)

module Scale = Prb_bench_scale.Scale

let json_path = "BENCH_scale.json"

let run () =
  Common.header "E14" "detection-policy sweep (deferral vs eager)";
  let quick = !Common.quick in
  let policies = Scale.sweep_policies ~quick () in
  Scale.print_policy_table policies;
  (match Scale.best_central_speedup policies with
  | Some (policy, s) ->
      Common.note
        "best high-contention speedup over eager at equal commits: %.2fx (%s)"
        s policy
  | None ->
      Common.note
        "no deferred policy matched eager's commits at high contention");
  (* Compose with E13: keep its points if the file already has them, so
     running E13 then E14 (or either alone) leaves a coherent file. *)
  let points =
    try Scale.load ~path:json_path
    with Sys_error _ | Scale.Parse_error _ -> []
  in
  Scale.write_json ~path:json_path ~quick ~policies points;
  Common.note "wrote %s (%d E13 + %d E14 points%s)" json_path
    (List.length points) (List.length policies)
    (if quick then ", quick mode" else "");
  Common.note
    "eager detection pays a cycle search on every blocked request — at\n\
     high contention that is most of the wall clock. The deferred\n\
     policies batch that work into scheduled sweeps or targeted probes;\n\
     the stall watchdog and the starvation guard bound what deferral may\n\
     cost any single transaction."
