(* E12: fault injection and recovery (DESIGN.md Section 7) — what the
   failure regime costs, and that the recovery machinery holds the
   system's invariants under it. *)

open Common
module D = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim
module Fault = Prb_fault.Fault
module Chaos = Prb_chaos.Chaos

let base_params =
  {
    Generator.default_params with
    n_entities = 40;
    zipf_theta = 0.6;
    max_locks = 5;
  }

let run_faulted ?(n_sites = 4) ?(max_ticks = 600_000) ~n_txns plan =
  let store = Generator.populate base_params in
  let programs = Generator.generate base_params ~seed:3 ~n:n_txns in
  let config =
    {
      Dist_sim.scheduler =
        {
          D.default_config with
          n_sites;
          detection = D.Local_then_global 40;
          seed = 3;
          max_ticks;
          faults = (if Fault.is_none plan then None else Some plan);
        };
      mpl = 10;
    }
  in
  Dist_sim.run ~config ~store programs

(* message-fault sweep: loss and duplication vs retransmission traffic *)
let message_faults n_txns =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "message loss/duplication sweep (4 sites, %d txns, horizon 4000)"
           n_txns)
      [
        ("loss", Table.Right);
        ("dup", Table.Right);
        ("commits", Table.Right);
        ("lost", Table.Right);
        ("dup'd", Table.Right);
        ("retransmits", Table.Right);
        ("msgs/commit", Table.Right);
        ("ticks", Table.Right);
      ]
  in
  List.iter
    (fun (loss, dup) ->
      let plan =
        {
          Fault.none with
          fault_seed = 11;
          horizon = 4_000;
          msg = { Fault.loss; dup; delay = 0.1; max_delay = 4 };
        }
      in
      let r = run_faulted ~n_txns plan in
      let s = r.Dist_sim.stats in
      Table.add_row table
        [
          f2 loss;
          f2 dup;
          i s.D.commits;
          i s.D.msgs_lost;
          i s.D.msgs_duplicated;
          i s.D.retransmissions;
          f2 r.Dist_sim.messages_per_commit;
          i s.D.ticks;
        ])
    [ (0.0, 0.0); (0.05, 0.05); (0.15, 0.15); (0.3, 0.3) ];
  Table.print table;
  note
    "every lost request or grant costs one timeout window before the\n\
     probe retransmits, so loss stretches the run far more than it\n\
     inflates message counts; duplicates are absorbed by idempotent\n\
     handlers and cost nothing but the wire traffic."

(* site-crash sweep: recovery work vs crash frequency *)
let site_crashes n_txns =
  let table =
    Table.create
      ~title:
        (Printf.sprintf "site-crash sweep (4 sites, %d txns, downtime 80)"
           n_txns)
      [
        ("crashes", Table.Right);
        ("commits", Table.Right);
        ("recoveries", Table.Right);
        ("rollbacks", Table.Right);
        ("purged locks", Table.Right);
        ("ops lost", Table.Right);
        ("ticks", Table.Right);
      ]
  in
  List.iter
    (fun n_crashes ->
      let plan =
        {
          Fault.none with
          fault_seed = 12;
          horizon = 8_000;
          site_crashes =
            List.init n_crashes (fun k ->
                {
                  Fault.site = k mod 4;
                  at = 60 + (220 * k);
                  downtime = 80;
                });
        }
      in
      let r = run_faulted ~n_txns plan in
      let s = r.Dist_sim.stats in
      Table.add_row table
        [
          i s.D.site_crashes;
          i s.D.commits;
          i s.D.site_recoveries;
          i s.D.rollbacks;
          i s.D.purged_locks;
          i s.D.ops_lost;
          i s.D.ticks;
        ])
    [ 0; 1; 2; 4 ];
  Table.print table;
  note
    "a crash restarts the growing transactions homed on the site and\n\
     partially rolls back remote holders of its entities — the same\n\
     roll-back-to-the-latest-safe-state machinery the paper builds for\n\
     deadlocks, reused as crash recovery; the rebuild purges whatever\n\
     lock rows the dead site's departures orphaned."

(* detector outage: degraded timeout-abort keeps the system live *)
let detector_outage n_txns =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "detector outage (4 sites, %d txns, detection period 40)" n_txns)
      [
        ("outage", Table.Left);
        ("commits", Table.Right);
        ("missed rounds", Table.Right);
        ("timeout aborts", Table.Right);
        ("deadlocks l/g", Table.Left);
        ("ticks", Table.Right);
      ]
  in
  List.iter
    (fun (label, outages) ->
      let plan =
        {
          Fault.none with
          fault_seed = 13;
          horizon = 20_000;
          detector_outages = outages;
        }
      in
      let r = run_faulted ~n_txns plan in
      let s = r.Dist_sim.stats in
      Table.add_row table
        [
          label;
          i s.D.commits;
          i s.D.missed_rounds;
          i s.D.timeout_aborts;
          Printf.sprintf "%d/%d" s.D.local_deadlocks s.D.global_deadlocks;
          i s.D.ticks;
        ])
    [
      ("none", []);
      ("[0,2k)", [ { Fault.out_from = 0; out_until = 2_000 } ]);
      ("[0,10k)", [ { Fault.out_from = 0; out_until = 10_000 } ]);
    ];
  Table.print table;
  note
    "with the global detector out, cross-site deadlocks are invisible;\n\
     the engine degrades to timeout-aborting long-blocked transactions —\n\
     the crude baseline the paper improves on, now serving as the\n\
     fallback that keeps the system live until detection returns."

(* chaos summary: randomized plans, both engines, every invariant *)
let chaos_summary () =
  let seeds = scale 20 in
  let reports = Chaos.sweep ~seeds () in
  let table =
    Table.create
      ~title:(Printf.sprintf "chaos harness (%d seeds x 2 engines)" seeds)
      [
        ("engine", Table.Left);
        ("runs", Table.Right);
        ("clean", Table.Right);
        ("faults seen", Table.Right);
        ("commits", Table.Right);
      ]
  in
  List.iter
    (fun (engine, label) ->
      let rs = List.filter (fun r -> r.Chaos.engine = engine) reports in
      let clean =
        List.length (List.filter (fun r -> r.Chaos.violations = []) rs)
      in
      let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
      Table.add_row table
        [
          label;
          i (List.length rs);
          i clean;
          i (sum (fun r -> r.Chaos.faults_seen));
          i (sum (fun r -> r.Chaos.commits));
        ])
    [ (Chaos.Centralized, "centralized"); (Chaos.Distributed, "distributed") ];
  Table.print table;
  (match Chaos.failures reports with
  | [] -> ()
  | bad ->
      List.iter (fun r -> Fmt.pr "CHAOS FAILURE: %a@." Chaos.pp_report r) bad);
  note
    "each run checks serializability, store-sum conservation, no orphaned\n\
     locks, no stuck transactions, and bit-for-bit replay determinism."

let run () =
  header "E12 / DESIGN 7" "fault injection and recovery";
  let n_txns = scale 80 in
  message_faults n_txns;
  site_crashes n_txns;
  detector_outage (scale 60);
  chaos_summary ()
