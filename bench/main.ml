(* The experiment harness: regenerates every figure of the paper and the
   quantitative sweeps behind its claims (experiment ids E1-E12, see
   DESIGN.md Section 5 and EXPERIMENTS.md), then reports micro-benchmark
   costs of the hot paths.

   Usage:
     dune exec bench/main.exe            full sweeps (a few minutes)
     dune exec bench/main.exe -- quick   scaled-down sweeps
     dune exec bench/main.exe -- E7      a single experiment section
*)

let sections =
  [
    ("E1-E5", "paper figures 1-5", Exp_figures.run);
    ("E6+E11", "storage accounting and SDG+k", Exp_storage.run);
    ("E7+E8", "trade-off sweep and victim ablation", Exp_tradeoff.run);
    ("E9", "three-phase structure", Exp_structure.run);
    ("E10", "distributed systems", Exp_distrib.run);
    ("E12", "fault injection and recovery", Exp_faults.run);
    ("E13", "scaling sweep (writes BENCH_scale.json)", Exp_scale.run);
    ("E14", "detection-policy sweep (deferral vs eager)", Exp_policies.run);
    ("MICRO", "hot-path micro-benchmarks", Micro.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  Common.quick := List.mem "quick" args;
  let wanted =
    List.filter (fun a -> a <> "quick") args
  in
  let selected =
    if wanted = [] then sections
    else
      List.filter
        (fun (id, _, _) ->
          List.exists
            (fun w ->
              let contains hay needle =
                let nh = String.length hay and nn = String.length needle in
                let rec scan i =
                  i + nn <= nh
                  && (String.sub hay i nn = needle || scan (i + 1))
                in
                scan 0
              in
              contains id w)
            wanted)
        sections
  in
  if selected = [] then begin
    prerr_endline "no matching experiment section; available:";
    List.iter (fun (id, d, _) -> Printf.eprintf "  %-8s %s\n" id d) sections;
    exit 1
  end;
  print_endline
    "Deadlock Removal Using Partial Rollback — experiment harness";
  print_endline
    (if !Common.quick then "(quick mode: sweeps scaled down)"
     else "(full sweeps; pass `quick` to scale down)");
  List.iter (fun (_, _, run) -> run ()) selected
