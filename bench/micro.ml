(* Micro-benchmarks of the hot paths (bechamel): deadlock detection,
   cycle enumeration, history-stack writes, rollback execution, SDG
   analysis. One Test.make per mechanism; estimated ns/op printed as a
   table. *)

open Bechamel
open Toolkit
module Table = Prb_util.Table
module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Digraph = Prb_graph.Digraph
module Ugraph = Prb_graph.Ugraph
module Waits_for = Prb_wfg.Waits_for
module History_stack = Prb_rollback.History_stack
module Txn_state = Prb_rollback.Txn_state
module Sdg_view = Prb_rollback.Sdg_view
module Strategy = Prb_rollback.Strategy

(* A 40-txn waits-for chain with a cycle at the end. *)
let chain_wfg () =
  let g = Waits_for.create () in
  for i = 0 to 40 do
    Waits_for.add_txn g i
  done;
  for i = 0 to 39 do
    Waits_for.set_wait g ~waiter:i ~holders:[ i + 1 ] "e"
  done;
  g

let bench_would_deadlock =
  let g = chain_wfg () in
  Test.make ~name:"would_deadlock (40-txn chain)"
    (Staged.stage (fun () -> Waits_for.would_deadlock g ~waiter:40 ~holders:[ 0 ]))

(* Multi-holder deadlock check on a long chain: one multi-source DFS with
   a shared visited set, where the naive form paid one full reachability
   pass per holder. *)
let bench_would_deadlock_multi =
  let g = Waits_for.create () in
  for i = 0 to 1000 do
    Waits_for.add_txn g i
  done;
  for i = 0 to 999 do
    Waits_for.set_wait g ~waiter:i ~holders:[ i + 1 ] "e"
  done;
  Test.make ~name:"would_deadlock (1k chain, 8 holders)"
    (Staged.stage (fun () ->
         Waits_for.would_deadlock g ~waiter:0
           ~holders:[ 100; 200; 300; 400; 500; 600; 700; 800 ]))

(* Adversarial shapes for the dynamic topological order behind
   [would_deadlock] (DESIGN §14): each stresses a different part of the
   bounded affected-region search. *)

(* A long chain probed "downhill": the probe edge agrees with the
   maintained order, so the affected region is empty and the check
   answers without walking the chain at all. *)
let bench_wd_chain_acyclic =
  let n = 4000 in
  let g = Waits_for.create () in
  for i = 0 to n do
    Waits_for.add_txn g i
  done;
  for i = 0 to n - 1 do
    Waits_for.set_wait g ~waiter:i ~holders:[ i + 1 ] "e"
  done;
  Test.make ~name:"would_deadlock order-pruned (4k chain, acyclic)"
    (Staged.stage (fun () -> Waits_for.would_deadlock g ~waiter:0 ~holders:[ n ]))

(* The same chain probed "uphill" from tail to head: the one probe that
   genuinely closes the cycle, so the search must traverse the whole
   affected region before saying yes — the worst case the prune cannot
   shrink. *)
let bench_wd_chain_cycle =
  let n = 4000 in
  let g = Waits_for.create () in
  for i = 0 to n do
    Waits_for.add_txn g i
  done;
  for i = 0 to n - 1 do
    Waits_for.set_wait g ~waiter:i ~holders:[ i + 1 ] "e"
  done;
  Test.make ~name:"would_deadlock cycle-confirming (4k chain)"
    (Staged.stage (fun () -> Waits_for.would_deadlock g ~waiter:n ~holders:[ 0 ]))

(* A convoy star: every spoke waits on the hub, and the probe asks
   whether the hub may wait back on a handful of them — the shape an
   exclusive hot entity produces under high contention. *)
let bench_wd_star =
  let spokes = 256 in
  let g = Waits_for.create () in
  Waits_for.add_txn g 0;
  for i = 1 to spokes do
    Waits_for.add_txn g i;
    Waits_for.set_wait g ~waiter:i ~holders:[ 0 ] "h"
  done;
  Test.make ~name:"would_deadlock star (256 spokes, 5 holders)"
    (Staged.stage (fun () ->
         Waits_for.would_deadlock g ~waiter:0 ~holders:[ 1; 64; 128; 192; 256 ]))

(* Near-cycle churn: close the chain's back edge (freezing the order
   while the violation is live), probe under the frozen order, then
   reopen it. Exercises the insert/freeze/unfreeze maintenance path that
   deferred detection hits every time a real cycle forms and is then
   resolved. *)
let bench_wd_churn =
  let n = 512 in
  let g = Waits_for.create () in
  for i = 0 to n do
    Waits_for.add_txn g i
  done;
  for i = 0 to n - 1 do
    Waits_for.set_wait g ~waiter:i ~holders:[ i + 1 ] "e"
  done;
  Test.make ~name:"near-cycle churn (512 chain close/probe/reopen)"
    (Staged.stage (fun () ->
         Waits_for.set_wait g ~waiter:n ~holders:[ 0 ] "c";
         ignore (Waits_for.would_deadlock g ~waiter:1 ~holders:[ 0 ]);
         Waits_for.clear_wait g n))

(* Commit-path held-locks lookup: O(locks held) via the per-transaction
   index, independent of how many entries the table has accumulated. *)
let bench_held_by =
  let t = Prb_lock.Lock_table.create () in
  let mode = Prb_txn.Lock_mode.Exclusive in
  for i = 0 to 4999 do
    ignore (Prb_lock.Lock_table.request t 1 mode (Printf.sprintf "a%d" i));
    ignore (Prb_lock.Lock_table.request t 2 mode (Printf.sprintf "b%d" i))
  done;
  ignore (Prb_lock.Lock_table.request t 3 mode "z1");
  ignore (Prb_lock.Lock_table.request t 3 mode "z2");
  ignore (Prb_lock.Lock_table.request t 3 mode "z3");
  Test.make ~name:"held_by (3 held, 10k-entry table)"
    (Staged.stage (fun () -> Prb_lock.Lock_table.held_by t 3))

(* The dirty-set resolution fixpoint end to end: a small high-contention
   run whose deadlock resolutions dominate the tick loop. *)
let bench_fixpoint =
  let params =
    {
      Prb_workload.Generator.default_params with
      n_entities = 12;
      zipf_theta = 0.9;
      min_locks = 3;
      max_locks = 6;
    }
  in
  Test.make ~name:"resolution fixpoint (20-txn contended run)"
    (Staged.stage (fun () ->
         Prb_sim.Sim.run_generated ~params ~seed:5 ~n_txns:20 ()))

let bench_cycles_through =
  let g = Waits_for.create () in
  (* figure-3-like fan: requester waits 6 shared holders, each waits back *)
  for i = 1 to 6 do
    Waits_for.add_txn g i
  done;
  Waits_for.add_txn g 0;
  Waits_for.set_wait g ~waiter:0 ~holders:[ 1; 2; 3; 4; 5; 6 ] "f";
  for i = 1 to 6 do
    Waits_for.set_wait g ~waiter:i ~holders:[ 0 ] "x"
  done;
  Test.make ~name:"cycles_through (6-cycle fan)"
    (Staged.stage (fun () -> Waits_for.cycles_through g 0))

let bench_history_write =
  Test.make ~name:"history write (mcs, 16 segments)"
    (Staged.stage (fun () ->
         let h =
           History_stack.create ~budget:max_int ~created_at:0
             ~initial:(Value.int 0)
         in
         for w = 1 to 16 do
           History_stack.write h ~lock_index:w (Value.int w)
         done))

let growing_program =
  Program.make ~name:"bench"
    ~locals:[ ("v", Value.int 0) ]
    (List.concat_map
       (fun i ->
         [
           Program.lock_x (Printf.sprintf "E%d" i);
           Program.read (Printf.sprintf "E%d" i) "v";
           Program.write (Printf.sprintf "E%d" i) Expr.(Mix (var "v"));
         ])
       (List.init 6 Fun.id))

let bench_store () =
  Store.of_list (List.init 6 (fun i -> (Printf.sprintf "E%d" i, Value.int i)))

let bench_txn_execute =
  let store = bench_store () in
  Test.make ~name:"execute 6-lock transaction (sdg)"
    (Staged.stage (fun () ->
         let ts =
           Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store growing_program
         in
         let rec go () =
           match Txn_state.next_action ts with
           | Txn_state.Need_lock _ ->
               Txn_state.lock_granted ts;
               go ()
           | Txn_state.Data_step ->
               Txn_state.exec_data_op ts;
               go ()
           | Txn_state.Need_unlock _ | Txn_state.At_end -> ()
         in
         go ()))

let bench_rollback =
  let store = bench_store () in
  Test.make ~name:"grow + partial rollback (mcs)"
    (Staged.stage (fun () ->
         let ts =
           Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store growing_program
         in
         let rec go () =
           match Txn_state.next_action ts with
           | Txn_state.Need_lock _ ->
               Txn_state.lock_granted ts;
               go ()
           | Txn_state.Data_step ->
               Txn_state.exec_data_op ts;
               go ()
           | Txn_state.Need_unlock _ | Txn_state.At_end -> ()
         in
         go ();
         ignore (Txn_state.rollback_to ts 3)))

let bench_sdg_analysis =
  Test.make ~name:"static SDG analysis (6 locks)"
    (Staged.stage (fun () -> Sdg_view.well_defined_states growing_program))

(* The steady-state lock hot path: grant then release against a warm
   table whose entity slots are already interned, so the loop touches
   only the dense per-entity buffers. *)
let bench_lock_grant_release =
  let t = Prb_lock.Lock_table.create () in
  let mode = Prb_txn.Lock_mode.Exclusive in
  let names = Array.init 16 (Printf.sprintf "W%d") in
  Array.iter
    (fun e ->
      ignore (Prb_lock.Lock_table.request t 0 mode e);
      ignore (Prb_lock.Lock_table.release t 0 e))
    names;
  Test.make ~name:"lock grant+release (warm, 16 entities)"
    (Staged.stage (fun () ->
         Array.iter
           (fun e ->
             ignore (Prb_lock.Lock_table.request t 0 mode e);
             ignore (Prb_lock.Lock_table.release t 0 e))
           names))

(* Re-interning a known name — the per-request cost of the slot map that
   replaced the string-keyed spine. *)
let bench_interner =
  let it = Prb_util.Dense.Interner.create () in
  let names = Array.init 64 (Printf.sprintf "E%d") in
  Array.iter (fun e -> ignore (Prb_util.Dense.Interner.intern it e)) names;
  Test.make ~name:"interner re-lookup (64 warm names)"
    (Staged.stage (fun () ->
         Array.iter
           (fun e -> ignore (Prb_util.Dense.Interner.intern it e))
           names))

(* Segment recycling: a full history lifetime (create, 16 writes,
   dispose) against a warm pool, so every buffer comes from and returns
   to the free list instead of the allocator. *)
let bench_pool_recycle =
  let pool = History_stack.Pool.create () in
  let cycle () =
    let h =
      History_stack.Pool.acquire pool ~budget:max_int ~created_at:0
        ~initial:(Value.int 0)
    in
    for w = 1 to 16 do
      History_stack.write h ~lock_index:w (Value.int w)
    done;
    History_stack.Pool.release pool h
  in
  cycle ();
  Test.make ~name:"history lifetime via pool (16 writes)"
    (Staged.stage cycle)

let bench_articulation =
  let g = Ugraph.create () in
  for i = 0 to 19 do
    Ugraph.add_edge g i (i + 1)
  done;
  Ugraph.add_edge g 2 9;
  Ugraph.add_edge g 5 15;
  Test.make ~name:"articulation points (21 vertices)"
    (Staged.stage (fun () -> Ugraph.articulation_points g))

let bench_scc =
  let g = Digraph.create () in
  for i = 0 to 49 do
    Digraph.add_edge g i ((i + 1) mod 50)
  done;
  Test.make ~name:"tarjan scc (50-cycle)"
    (Staged.stage (fun () -> Digraph.scc g))

let run () =
  Common.header "MICRO" "hot-path costs (bechamel, ns/op)";
  let tests =
    [
      bench_would_deadlock;
      bench_would_deadlock_multi;
      bench_wd_chain_acyclic;
      bench_wd_chain_cycle;
      bench_wd_star;
      bench_wd_churn;
      bench_held_by;
      bench_fixpoint;
      bench_cycles_through;
      bench_history_write;
      bench_txn_execute;
      bench_rollback;
      bench_sdg_analysis;
      bench_lock_grant_release;
      bench_interner;
      bench_pool_recycle;
      bench_articulation;
      bench_scc;
    ]
  in
  let quota = if !Common.quick then 0.1 else 0.5 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let table =
    Table.create
      [ ("benchmark", Table.Left); ("ns/op", Table.Right); ("r²", Table.Right) ]
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let ns =
            match Analyze.OLS.estimates ols_result with
            | Some [ est ] -> Table.cell_float ~decimals:1 est
            | Some _ | None -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Table.cell_float ~decimals:4 r
            | None -> "-"
          in
          Table.add_row table [ name; ns; r2 ])
        analyzed)
    tests;
  Table.print table
