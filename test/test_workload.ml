(* Tests for Prb_workload: the generator's promises and the domain
   scenarios. *)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Lock_mode = Prb_txn.Lock_mode
module Generator = Prb_workload.Generator
module Scenarios = Prb_workload.Scenarios
module Sdg_view = Prb_rollback.Sdg_view

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_populate () =
  let params = { Generator.default_params with n_entities = 10 } in
  let store = Generator.populate params in
  checki "size" 10 (Store.size store);
  checkb "names" true (Store.mem store "e0009");
  checkb "deterministic" true
    (Store.equal_state store (Generator.populate params))

let test_generate_deterministic () =
  let ps = Generator.default_params in
  let a = Generator.generate ps ~seed:9 ~n:20 in
  let b = Generator.generate ps ~seed:9 ~n:20 in
  checkb "same programs" true (List.for_all2 Program.equal a b);
  let c = Generator.generate ps ~seed:10 ~n:20 in
  checkb "different seed differs" false (List.for_all2 Program.equal a c)

let test_shared_zipf_is_transparent () =
  (* The sampler table is deterministic in the params, so passing one
     shared instance must change nothing about the drawn programs. *)
  let ps = Generator.default_params in
  let zipf =
    Prb_util.Zipf.make ~n:ps.Generator.n_entities ~theta:ps.Generator.zipf_theta
  in
  List.iter
    (fun seed ->
      let rng1 = Prb_util.Rng.make seed and rng2 = Prb_util.Rng.make seed in
      let fresh = Generator.generate_one ps rng1 ~name:"w" in
      let shared = Generator.generate_one ~zipf ps rng2 ~name:"w" in
      checkb "fresh and shared sampler agree" true (Program.equal fresh shared))
    [ 1; 7; 42 ]

let test_generate_valid () =
  List.iter
    (fun seed ->
      List.iter
        (fun p -> checkb "valid" true (Program.validate p = Ok ()))
        (Generator.generate Generator.default_params ~seed ~n:50))
    [ 1; 2; 3 ]

let test_lock_bounds_respected () =
  let params =
    { Generator.default_params with min_locks = 2; max_locks = 4 }
  in
  List.iter
    (fun p ->
      let n = Program.n_locks p in
      checkb "within bounds" true (n >= 2 && n <= 4))
    (Generator.generate params ~seed:4 ~n:60)

let test_read_fraction_extremes () =
  let all_x =
    Generator.generate
      { Generator.default_params with read_fraction = 0.0 }
      ~seed:5 ~n:30
  in
  let count_mode mode p =
    Array.fold_left
      (fun acc op ->
        match op with
        | Program.Lock (m, _) when Lock_mode.equal m mode -> acc + 1
        | _ -> acc)
      0 p.Program.ops
  in
  checkb "no shared locks" true
    (List.for_all (fun p -> count_mode Lock_mode.Shared p = 0) all_x);
  let all_s =
    Generator.generate
      { Generator.default_params with read_fraction = 1.0 }
      ~seed:5 ~n:30
  in
  checkb "no exclusive locks" true
    (List.for_all (fun p -> count_mode Lock_mode.Exclusive p = 0) all_s)

let test_three_phase_param () =
  let params =
    { Generator.default_params with three_phase = true; read_fraction = 0.0 }
  in
  List.iter
    (fun p -> checkb "three-phase structure" true (Program.is_three_phase p))
    (Generator.generate params ~seed:6 ~n:40)

let test_clustering_improves_well_defined () =
  (* aggregate over many programs: clustered workloads leave fewer
     destroyed states than scattered ones *)
  let fraction_wd params seed =
    let programs = Generator.generate params ~seed ~n:60 in
    let wd, states =
      List.fold_left
        (fun (wd, states) p ->
          ( wd + List.length (Sdg_view.well_defined_states p),
            states + Program.n_locks p + 1 ))
        (0, 0) programs
    in
    float_of_int wd /. float_of_int states
  in
  let base =
    { Generator.default_params with min_writes = 2; max_writes = 3; max_locks = 7 }
  in
  let clustered = fraction_wd { base with clustering = 1.0 } 13 in
  let scattered = fraction_wd { base with clustering = 0.0 } 13 in
  checkb "clustering preserves more states" true (clustered > scattered)

let test_generator_rejects_bad_params () =
  Alcotest.check_raises "locks > entities"
    (Invalid_argument "Generator: more locks than entities") (fun () ->
      ignore
        (Generator.generate
           { Generator.default_params with n_entities = 2; max_locks = 5 }
           ~seed:1 ~n:1))

(* --- Scenarios --- *)

let test_transfer_shape () =
  let p = Scenarios.transfer ~name:"t" ~from_acct:0 ~to_acct:1 ~amount:5 in
  checkb "valid" true (Program.validate p = Ok ());
  checki "two locks" 2 (Program.n_locks p);
  checkb "no damage (single write per entity)" true (Program.damage_span p = 0)

let test_audit_shape () =
  let p = Scenarios.audit ~name:"a" ~accounts:[ 0; 1; 2 ] in
  checkb "valid" true (Program.validate p = Ok ());
  let all_shared =
    Array.for_all
      (function
        | Program.Lock (m, _) -> Lock_mode.equal m Lock_mode.Shared
        | _ -> true)
      p.Program.ops
  in
  checkb "all locks shared" true all_shared

let test_bank_invariant_on_serial_run () =
  let store = Scenarios.bank_store ~n_accounts:4 ~balance:100 in
  let sched = Prb_core.Scheduler.create store in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.transfer ~name:"t0" ~from_acct:0 ~to_acct:1 ~amount:30)
  in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.transfer ~name:"t1" ~from_acct:2 ~to_acct:3 ~amount:5)
  in
  Prb_core.Scheduler.run sched;
  checkb "invariant" true
    (Store.Constraint.holds
       (Scenarios.balance_invariant ~n_accounts:4 ~balance:100)
       store);
  checkb "moved" true (Value.equal (Store.get store "acct001") (Value.int 130))

let test_order_and_restock () =
  let store = Scenarios.inventory_store ~n_items:3 ~stock:50 in
  let sched = Prb_core.Scheduler.create store in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.order ~name:"o" ~items:[ (0, 10); (1, 5) ])
  in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.restock ~name:"r" ~item:0 ~quantity:7)
  in
  Prb_core.Scheduler.run sched;
  checkb "item0 = 50 - 10 + 7" true
    (Value.equal (Store.get store "item000") (Value.int 47));
  checkb "item1 = 45" true (Value.equal (Store.get store "item001") (Value.int 45))

let test_order_never_negative () =
  let store = Scenarios.inventory_store ~n_items:1 ~stock:5 in
  let sched = Prb_core.Scheduler.create store in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.order ~name:"big" ~items:[ (0, 99) ])
  in
  Prb_core.Scheduler.run sched;
  checkb "clamped at zero" true
    (Value.equal (Store.get store "item000") (Value.int 0))

let test_order_entry () =
  let store =
    Scenarios.order_entry_store ~n_warehouses:1 ~districts_per_warehouse:2
      ~items_per_warehouse:5 ~stock:100
  in
  let sched = Prb_core.Scheduler.create store in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.new_order ~name:"o1" ~warehouse:0 ~district:0
         ~lines:[ (1, 10); (3, 4) ])
  in
  let _ =
    Prb_core.Scheduler.submit sched
      (Scenarios.new_order ~name:"o2" ~warehouse:0 ~district:0
         ~lines:[ (3, 1) ])
  in
  Prb_core.Scheduler.run sched;
  checkb "done" true (Prb_core.Scheduler.all_committed sched);
  (* district counter advanced twice *)
  checkb "order ids consumed" true
    (Value.equal
       (Store.get store (Scenarios.district_counter ~warehouse:0 ~district:0))
       (Value.int 3));
  checkb "stock 3 decremented by both" true
    (Value.equal
       (Store.get store (Scenarios.stock_entry ~warehouse:0 ~item:3))
       (Value.int 95));
  checkb "ytd totals quantities" true
    (Value.equal (Store.get store (Scenarios.warehouse_ytd 0)) (Value.int 15))

let test_order_entry_programs_valid () =
  checkb "new_order valid" true
    (Program.validate
       (Scenarios.new_order ~name:"o" ~warehouse:0 ~district:1
          ~lines:[ (0, 1); (2, 2); (4, 3) ])
    = Ok ());
  checkb "stock_level valid" true
    (Program.validate
       (Scenarios.stock_level ~name:"s" ~warehouse:0 ~items:[ 0; 1; 2 ])
    = Ok ())

let test_sdg_dot_render () =
  let p =
    Scenarios.new_order ~name:"o" ~warehouse:0 ~district:0
      ~lines:[ (0, 1); (1, 2) ]
  in
  let dot = Sdg_view.to_dot p in
  let contains needle =
    let nh = String.length dot and nn = String.length needle in
    let rec scan i = i + nn <= nh && (String.sub dot i nn = needle || scan (i + 1)) in
    scan 0
  in
  checkb "graph header" true (contains "graph sdg {");
  checkb "has chain edge" true (contains "s0 -- s1");
  checkb "has dashed write edge" true (contains "style=dashed")

let () =
  Alcotest.run "prb_workload"
    [
      ( "generator",
        [
          Alcotest.test_case "populate" `Quick test_populate;
          Alcotest.test_case "deterministic" `Quick test_generate_deterministic;
          Alcotest.test_case "shared zipf transparent" `Quick
            test_shared_zipf_is_transparent;
          Alcotest.test_case "always valid" `Quick test_generate_valid;
          Alcotest.test_case "lock bounds" `Quick test_lock_bounds_respected;
          Alcotest.test_case "read fraction extremes" `Quick test_read_fraction_extremes;
          Alcotest.test_case "three-phase param" `Quick test_three_phase_param;
          Alcotest.test_case "clustering effect" `Quick
            test_clustering_improves_well_defined;
          Alcotest.test_case "bad params" `Quick test_generator_rejects_bad_params;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "transfer shape" `Quick test_transfer_shape;
          Alcotest.test_case "audit shape" `Quick test_audit_shape;
          Alcotest.test_case "bank invariant" `Quick test_bank_invariant_on_serial_run;
          Alcotest.test_case "order and restock" `Quick test_order_and_restock;
          Alcotest.test_case "order clamps at zero" `Quick test_order_never_negative;
          Alcotest.test_case "order entry end-to-end" `Quick test_order_entry;
          Alcotest.test_case "order entry programs valid" `Quick
            test_order_entry_programs_valid;
          Alcotest.test_case "SDG dot rendering" `Quick test_sdg_dot_render;
        ] );
    ]
