(* Tests for Prb_storage: values, the global store, constraints. *)

module Value = Prb_storage.Value
module Store = Prb_storage.Store

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Value --- *)

let test_value_equal () =
  checkb "ints" true (Value.equal (Value.int 3) (Value.int 3));
  checkb "ints differ" false (Value.equal (Value.int 3) (Value.int 4));
  checkb "texts" true (Value.equal (Value.text "x") (Value.text "x"));
  checkb "bools" true (Value.equal (Value.bool true) (Value.bool true));
  checkb "cross kind" false (Value.equal (Value.int 1) (Value.bool true))

let test_value_compare_total () =
  let vs =
    [ Value.int (-1); Value.int 5; Value.text "a"; Value.text "b";
      Value.bool false; Value.bool true ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Value.compare a b and c2 = Value.compare b a in
          checkb "antisymmetric" true (compare c1 0 = compare 0 c2))
        vs)
    vs

let test_value_arithmetic () =
  checkb "add" true (Value.equal (Value.add (Value.int 2) (Value.int 3)) (Value.int 5));
  checkb "sub" true (Value.equal (Value.sub (Value.int 2) (Value.int 3)) (Value.int (-1)));
  checkb "mul" true (Value.equal (Value.mul (Value.int 4) (Value.int 3)) (Value.int 12));
  checkb "neg" true (Value.equal (Value.neg (Value.int 9)) (Value.int (-9)));
  checkb "min" true (Value.equal (Value.min_v (Value.int 2) (Value.int 7)) (Value.int 2));
  checkb "max" true (Value.equal (Value.max_v (Value.int 2) (Value.int 7)) (Value.int 7))

let test_value_as_int () =
  checki "int" 42 (Value.as_int (Value.int 42));
  checki "bool true" 1 (Value.as_int (Value.bool true));
  checki "bool false" 0 (Value.as_int (Value.bool false));
  checki "text deterministic" (Value.as_int (Value.text "abc"))
    (Value.as_int (Value.text "abc"));
  checkb "text spread" true
    (Value.as_int (Value.text "abc") <> Value.as_int (Value.text "abd"))

let test_value_mix_deterministic () =
  checkb "mix deterministic" true
    (Value.equal (Value.mix (Value.int 7)) (Value.mix (Value.int 7)));
  checkb "mix changes value" false
    (Value.equal (Value.mix (Value.int 7)) (Value.int 7));
  checkb "mix non-negative int" true
    (Value.as_int (Value.mix (Value.int (-3))) >= 0)

let test_value_to_string () =
  checks "int" "7" (Value.to_string (Value.int 7));
  checks "text quoted" "\"hi\"" (Value.to_string (Value.text "hi"));
  checks "bool" "true" (Value.to_string (Value.bool true))

(* --- Store --- *)

let test_store_define_get () =
  let s = Store.create () in
  Store.define s "x" (Value.int 1);
  checkb "mem" true (Store.mem s "x");
  checkb "get" true (Value.equal (Store.get s "x") (Value.int 1));
  checkb "find_opt none" true (Store.find_opt s "y" = None);
  Alcotest.check_raises "get missing" Not_found (fun () ->
      ignore (Store.get s "missing"))

let test_store_install () =
  let s = Store.of_list [ ("x", Value.int 1) ] in
  Store.install s "x" (Value.int 2);
  checkb "installed" true (Value.equal (Store.get s "x") (Value.int 2));
  checki "install count" 1 (Store.install_count s);
  Alcotest.check_raises "install undefined" Not_found (fun () ->
      Store.install s "nope" (Value.int 0))

let test_store_entities_sorted () =
  let s = Store.of_list [ ("b", Value.int 0); ("a", Value.int 0); ("c", Value.int 0) ] in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (Store.entities s);
  checki "size" 3 (Store.size s)

let test_store_snapshot_equal () =
  let a = Store.of_list [ ("x", Value.int 1); ("y", Value.text "v") ] in
  let b = Store.of_list [ ("y", Value.text "v"); ("x", Value.int 1) ] in
  checkb "equal state" true (Store.equal_state a b);
  Store.install b "x" (Value.int 9);
  checkb "diverged" false (Store.equal_state a b)

let test_store_equal_state_edges () =
  let empty1 = Store.create () and empty2 = Store.create () in
  checkb "empty stores equal" true (Store.equal_state empty1 empty2);
  (* Same size, different key sets: the lookup pass must reject. *)
  let a = Store.of_list [ ("x", Value.int 1); ("y", Value.int 2) ] in
  let b = Store.of_list [ ("x", Value.int 1); ("z", Value.int 2) ] in
  checkb "same size, different keys" false (Store.equal_state a b);
  checkb "asymmetric arg order too" false (Store.equal_state b a);
  (* Subset: sizes differ. *)
  let c = Store.of_list [ ("x", Value.int 1) ] in
  checkb "strict subset" false (Store.equal_state c a);
  checkb "strict superset" false (Store.equal_state a c)

(* --- Constraints --- *)

let test_constraint_sum () =
  let s = Store.of_list [ ("a", Value.int 60); ("b", Value.int 40) ] in
  let c =
    Store.Constraint.sum_preserved ~name:"total" [ "a"; "b" ] ~expected:100
  in
  checkb "holds" true (Store.Constraint.holds c s);
  Store.install s "a" (Value.int 59);
  checkb "violated" false (Store.Constraint.holds c s);
  Store.install s "b" (Value.int 41);
  checkb "restored" true (Store.Constraint.holds c s)

let test_constraint_all_hold () =
  let s = Store.of_list [ ("a", Value.int 1) ] in
  let ok = Store.Constraint.make ~name:"ok" (fun _ -> true) in
  let bad = Store.Constraint.make ~name:"bad" (fun _ -> false) in
  checkb "all ok" true (Store.Constraint.all_hold [ ok ] s = Ok ());
  (match Store.Constraint.all_hold [ ok; bad ] s with
  | Error [ "bad" ] -> ()
  | _ -> Alcotest.fail "expected bad to be reported")

(* qcheck: install then get round-trips *)
let qcheck_install_get =
  QCheck.Test.make ~name:"install/get round-trip" ~count:300
    QCheck.(pair (list (pair small_string small_int)) small_int)
    (fun (bindings, v) ->
      QCheck.assume (bindings <> []);
      let s =
        Store.of_list (List.map (fun (e, x) -> (e, Value.int x)) bindings)
      in
      let e, _ = List.hd bindings in
      Store.install s e (Value.int v);
      Value.equal (Store.get s e) (Value.int v))

let () =
  Alcotest.run "prb_storage"
    [
      ( "value",
        [
          Alcotest.test_case "equal" `Quick test_value_equal;
          Alcotest.test_case "compare total" `Quick test_value_compare_total;
          Alcotest.test_case "arithmetic" `Quick test_value_arithmetic;
          Alcotest.test_case "as_int" `Quick test_value_as_int;
          Alcotest.test_case "mix" `Quick test_value_mix_deterministic;
          Alcotest.test_case "to_string" `Quick test_value_to_string;
        ] );
      ( "store",
        [
          Alcotest.test_case "define/get" `Quick test_store_define_get;
          Alcotest.test_case "install" `Quick test_store_install;
          Alcotest.test_case "entities sorted" `Quick test_store_entities_sorted;
          Alcotest.test_case "snapshot equality" `Quick test_store_snapshot_equal;
          Alcotest.test_case "equal_state edge cases" `Quick
            test_store_equal_state_edges;
          QCheck_alcotest.to_alcotest qcheck_install_get;
        ] );
      ( "constraint",
        [
          Alcotest.test_case "sum preserved" `Quick test_constraint_sum;
          Alcotest.test_case "all_hold" `Quick test_constraint_all_hold;
        ] );
    ]
