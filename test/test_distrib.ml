(* Tests for Prb_distrib: the multi-site engine, both detection schemes,
   and the message accounting of Section 3.3. *)

module D = Prb_distrib.Dist_scheduler
module Dist_sim = Prb_distrib.Dist_sim
module Generator = Prb_workload.Generator
module Strategy = Prb_rollback.Strategy
module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module History = Prb_history.History

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let params =
  { Generator.default_params with n_entities = 24; zipf_theta = 0.7; max_locks = 5 }

let run_workload ?(n = 60) ?(mpl = 8) detection strategy =
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed:4 ~n in
  let config =
    {
      Dist_sim.scheduler =
        {
          D.default_config with
          n_sites = 4;
          detection;
          strategy;
          seed = 4;
          max_ticks = 400_000;
        };
      mpl;
    }
  in
  Dist_sim.run ~config ~store programs

let test_local_global_completes () =
  List.iter
    (fun strategy ->
      let r = run_workload (D.Local_then_global 40) strategy in
      checki "all commit" 60 r.Dist_sim.stats.D.commits;
      checkb "serializable" true r.Dist_sim.serializable)
    Strategy.all_basic

let test_wound_wait_completes_deadlock_free () =
  List.iter
    (fun strategy ->
      let r = run_workload D.Wound_wait strategy in
      checki "all commit" 60 r.Dist_sim.stats.D.commits;
      checki "zero deadlocks" 0 r.Dist_sim.stats.D.deadlocks;
      checkb "wounds happened" true (r.Dist_sim.stats.D.wounds > 0);
      checkb "serializable" true r.Dist_sim.serializable)
    Strategy.all_basic

let test_total_ships_nothing () =
  let r = run_workload (D.Local_then_global 40) Strategy.Total in
  checki "no bookkeeping shipped" 0 r.Dist_sim.stats.D.shipped_copies

let test_partial_ships_bookkeeping () =
  let r = run_workload (D.Local_then_global 40) Strategy.Sdg in
  checkb "bookkeeping follows moving txns" true
    (r.Dist_sim.stats.D.shipped_copies > 0)

let test_messages_accounted () =
  let r = run_workload (D.Local_then_global 40) Strategy.Sdg in
  checkb "remote traffic exists" true (r.Dist_sim.stats.D.messages > 0);
  checkb "detector ran" true (r.Dist_sim.stats.D.detection_rounds > 0)

let test_single_site_degenerates () =
  (* one site: everything local, no messages, local detection only *)
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed:4 ~n:40 in
  let config =
    {
      Dist_sim.scheduler =
        {
          D.default_config with
          n_sites = 1;
          detection = D.Local_then_global 40;
          seed = 4;
        };
      mpl = 8;
    }
  in
  let r = Dist_sim.run ~config ~store programs in
  checki "commits" 40 r.Dist_sim.stats.D.commits;
  checki "no global deadlocks" 0 r.Dist_sim.stats.D.global_deadlocks;
  checki "no remote messages" 0
    (r.Dist_sim.stats.D.messages - r.Dist_sim.stats.D.detection_rounds)

let test_cross_site_deadlock_needs_global_detector () =
  (* a two-site deadlock: the contested entities live on different sites,
     so neither site alone can see the cycle; only the global detector
     resolves it. *)
  let store = Store.of_list [ ("ea", Value.int 0); ("eb", Value.int 0) ] in
  let site_of = function "ea" -> 0 | _ -> 1 in
  let config =
    { D.default_config with n_sites = 2; detection = D.Local_then_global 25 }
  in
  let d = D.create ~site_of config store in
  let p name first second =
    Program.make ~name ~locals:[ ("v", Value.int 0) ]
      [
        Program.lock_x first;
        Program.read first "v";
        Program.lock_x second;
        Program.write second Expr.(var "v" + int 1);
      ]
  in
  let _ = D.submit d ~home:0 (p "t0" "ea" "eb") in
  let _ = D.submit d ~home:1 (p "t1" "eb" "ea") in
  D.run d;
  let s = D.stats d in
  checki "both commit" 2 s.D.commits;
  checki "no local deadlock seen" 0 s.D.local_deadlocks;
  checkb "global detector resolved it" true (s.D.global_deadlocks >= 1);
  checkb "stalled until a detection round" true (s.D.detection_rounds >= 1);
  checkb "serializable" true (History.serializable (D.history d))

let test_same_site_deadlock_resolved_locally () =
  let store = Store.of_list [ ("ea", Value.int 0); ("eb", Value.int 0) ] in
  let site_of _ = 0 in
  let config =
    { D.default_config with n_sites = 2; detection = D.Local_then_global 1000 }
  in
  let d = D.create ~site_of config store in
  let p name first second =
    Program.make ~name ~locals:[ ("v", Value.int 0) ]
      [
        Program.lock_x first;
        Program.read first "v";
        Program.lock_x second;
        Program.write second Expr.(var "v" + int 1);
      ]
  in
  let _ = D.submit d ~home:0 (p "t0" "ea" "eb") in
  let _ = D.submit d ~home:0 (p "t1" "eb" "ea") in
  D.run d;
  let s = D.stats d in
  checki "both commit" 2 s.D.commits;
  checkb "resolved locally, immediately" true (s.D.local_deadlocks >= 1);
  checkb "well before the first detection round" true (s.D.ticks < 100)

let test_wound_wait_orders_by_age () =
  (* older requester wounds younger holder; the younger requester waits *)
  let store = Store.of_list [ ("ea", Value.int 0) ] in
  let config = { D.default_config with n_sites = 1; detection = D.Wound_wait } in
  let d = D.create config store in
  let hold =
    Program.make ~name:"holder" ~locals:[ ("v", Value.int 0) ]
      [
        Program.lock_x "ea";
        Program.read "ea" "v";
        Program.read "ea" "v";
        Program.read "ea" "v";
        Program.write "ea" Expr.(var "v" + int 1);
      ]
  in
  (* t0 (older) arrives second at the entity: holder is t1? — here t1 is
     the younger and holds; t0's request wounds it. *)
  let slow_start =
    Program.make ~name:"older" ~locals:[ ("w", Value.int 0) ]
      [
        Program.assign "w" (Expr.int 1);
        Program.assign "w" (Expr.int 2);
        Program.lock_x "ea";
        Program.write "ea" (Expr.int 99);
      ]
  in
  let _ = D.submit d ~home:0 slow_start (* id 0 = older *) in
  let _ = D.submit d ~home:0 hold (* id 1 = younger, locks first *) in
  D.run d;
  let s = D.stats d in
  checki "both commit" 2 s.D.commits;
  checkb "the younger holder was wounded" true (s.D.wounds >= 1);
  checkb "serializable" true (History.serializable (D.history d))

let test_deterministic () =
  let run () =
    let r = run_workload (D.Local_then_global 40) Strategy.Sdg in
    r.Dist_sim.stats
  in
  checkb "same stats" true (run () = run ())

(* qcheck: any (seed, detection, strategy) combination completes
   serializably. *)
let qcheck_distrib_serializable =
  QCheck.Test.make
    ~name:"distributed runs complete serializably for all configurations"
    ~count:20
    QCheck.(triple small_int bool (int_bound 2))
    (fun (seed, wound, strat_i) ->
      let strategy = List.nth Strategy.all_basic strat_i in
      let detection = if wound then D.Wound_wait else D.Local_then_global 30 in
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed ~n:30 in
      let config =
        {
          Dist_sim.scheduler =
            {
              D.default_config with
              n_sites = 3;
              detection;
              strategy;
              seed;
              max_ticks = 200_000;
            };
          mpl = 6;
        }
      in
      let r = Dist_sim.run ~config ~store programs in
      r.Dist_sim.stats.D.commits = 30 && r.Dist_sim.serializable)

(* Deferred detection policies on the multi-site engine: global rounds
   batch several accreted cycles, and their victims restart staggered with
   escalation for repeat victims — without that, the deterministic
   workload replays the same collision forever (the livelock this test
   regresses). Every deferred policy must still complete the contended
   workload. *)
let test_deferred_policies_complete () =
  let module DP = Prb_core.Detection_policy in
  List.iter
    (fun detection_policy ->
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed:4 ~n:60 in
      let config =
        {
          Dist_sim.scheduler =
            {
              D.default_config with
              n_sites = 4;
              detection = D.Local_then_global 40;
              detection_policy;
              starvation_limit = Some 8;
              seed = 4;
              max_ticks = 400_000;
            };
          mpl = 8;
        }
      in
      let r = Dist_sim.run ~config ~store programs in
      let s = r.Dist_sim.stats in
      checki
        (Fmt.str "all commit under %a" DP.pp detection_policy)
        60 s.D.commits;
      checkb "cycles were actually deferred to global rounds" true
        (s.D.global_deadlocks >= 1);
      checkb "serializable" true r.Dist_sim.serializable)
    DP.all_deferred

let () =
  Alcotest.run "prb_distrib"
    [
      ( "workloads",
        [
          Alcotest.test_case "local+global completes" `Slow test_local_global_completes;
          Alcotest.test_case "wound-wait completes" `Quick
            test_wound_wait_completes_deadlock_free;
          Alcotest.test_case "total ships nothing" `Quick test_total_ships_nothing;
          Alcotest.test_case "partial ships bookkeeping" `Quick
            test_partial_ships_bookkeeping;
          Alcotest.test_case "messages accounted" `Quick test_messages_accounted;
          Alcotest.test_case "single site degenerates" `Quick test_single_site_degenerates;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          QCheck_alcotest.to_alcotest qcheck_distrib_serializable;
        ] );
      ( "detection",
        [
          Alcotest.test_case "cross-site needs global detector" `Quick
            test_cross_site_deadlock_needs_global_detector;
          Alcotest.test_case "same-site resolved locally" `Quick
            test_same_site_deadlock_resolved_locally;
          Alcotest.test_case "wound-wait ages" `Quick test_wound_wait_orders_by_age;
          Alcotest.test_case "deferred policies complete" `Slow
            test_deferred_policies_complete;
        ] );
    ]
