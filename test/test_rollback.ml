(* Tests for Prb_rollback: history stacks, the static SDG analysis, and
   the transaction runtime — including oracle-based properties: a rollback
   to any well-defined state must restore exactly the values the
   transaction had there, and re-execution after a rollback must commit
   the same final values as an undisturbed run. *)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Strategy = Prb_rollback.Strategy
module History_stack = Prb_rollback.History_stack
module Sdg_view = Prb_rollback.Sdg_view
module Txn_state = Prb_rollback.Txn_state
module Rng = Prb_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkil = Alcotest.(check (list int))

let vint = Value.int

(* --- Strategy --- *)

let test_strategy_roundtrip () =
  List.iter
    (fun s ->
      checkb "of_string inverts to_string" true
        (Strategy.of_string (Strategy.to_string s) = Some s))
    [ Strategy.Total; Strategy.Mcs; Strategy.Sdg; Strategy.Sdg_k 0; Strategy.Sdg_k 7 ];
  checkb "garbage" true (Strategy.of_string "bogus" = None);
  checkb "negative k" true (Strategy.of_string "sdg+-1" = None)

let test_strategy_budget () =
  checki "total" 1 (Strategy.version_budget Strategy.Total);
  checki "sdg" 1 (Strategy.version_budget Strategy.Sdg);
  checki "sdg+3" 4 (Strategy.version_budget (Strategy.Sdg_k 3));
  checkb "mcs unbounded" true (Strategy.version_budget Strategy.Mcs = max_int)

(* --- History_stack --- *)

let test_hs_initial () =
  let h = History_stack.create ~budget:max_int ~created_at:2 ~initial:(vint 10) in
  checkb "current = initial" true (Value.equal (History_stack.current h) (vint 10));
  checki "no versions" 0 (History_stack.n_versions h);
  checki "one copy (the saved initial)" 1 (History_stack.n_copies h);
  checkb "restorable everywhere" true
    (List.for_all (History_stack.is_restorable h) [ 0; 1; 2; 3; 9 ])

let test_hs_write_and_value_at () =
  let h = History_stack.create ~budget:max_int ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 10);
  History_stack.write h ~lock_index:3 (vint 30);
  checkb "current" true (Value.equal (History_stack.current h) (vint 30));
  checkb "value at 0" true (History_stack.value_at h 0 = Some (vint 0));
  checkb "value at 1" true (History_stack.value_at h 1 = Some (vint 10));
  checkb "value at 2" true (History_stack.value_at h 2 = Some (vint 10));
  checkb "value at 3" true (History_stack.value_at h 3 = Some (vint 30));
  checkb "value at 9" true (History_stack.value_at h 9 = Some (vint 30))

let test_hs_same_segment_coalesces () =
  let h = History_stack.create ~budget:1 ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:2 (vint 1);
  History_stack.write h ~lock_index:2 (vint 2);
  checki "one version" 1 (History_stack.n_versions h);
  checkb "no damage" true (History_stack.damaged h = []);
  checkb "latest wins" true (Value.equal (History_stack.current h) (vint 2))

let test_hs_eviction_damages () =
  (* budget 1 = single live copy (the Sdg discipline) *)
  let h = History_stack.create ~budget:1 ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 10);
  checkb "no damage after first write" true (History_stack.damaged h = []);
  History_stack.write h ~lock_index:4 (vint 40);
  checkb "damage [1,4)" true (History_stack.damaged h = [ (1, 4) ]);
  checkb "0 restorable" true (History_stack.is_restorable h 0);
  checkb "1 destroyed" false (History_stack.is_restorable h 1);
  checkb "3 destroyed" false (History_stack.is_restorable h 3);
  checkb "4 restorable (current)" true (History_stack.is_restorable h 4);
  checkb "value_at destroyed is None" true (History_stack.value_at h 2 = None)

let test_hs_damage_merges () =
  let h = History_stack.create ~budget:1 ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 1);
  History_stack.write h ~lock_index:3 (vint 3);
  History_stack.write h ~lock_index:5 (vint 5);
  checkb "merged interval" true (History_stack.damaged h = [ (1, 5) ])

let test_hs_budget_k () =
  (* budget 3 = Sdg_k 2: three retained versions *)
  let h = History_stack.create ~budget:3 ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 1);
  History_stack.write h ~lock_index:2 (vint 2);
  History_stack.write h ~lock_index:3 (vint 3);
  checkb "all restorable with budget 3" true
    (List.for_all (History_stack.is_restorable h) [ 0; 1; 2; 3 ]);
  History_stack.write h ~lock_index:4 (vint 4);
  checkb "oldest interval damaged" true (History_stack.damaged h = [ (1, 2) ]);
  checkb "2 still restorable" true (History_stack.is_restorable h 2)

let test_hs_truncate () =
  let h = History_stack.create ~budget:max_int ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 1);
  History_stack.write h ~lock_index:3 (vint 3);
  History_stack.truncate h 2;
  checkb "value back to segment-1 write" true
    (Value.equal (History_stack.current h) (vint 1));
  checki "one version left" 1 (History_stack.n_versions h);
  History_stack.truncate h 0;
  checkb "back to initial" true (Value.equal (History_stack.current h) (vint 0))

let test_hs_truncate_damaged_rejected () =
  let h = History_stack.create ~budget:1 ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 1);
  History_stack.write h ~lock_index:4 (vint 4);
  Alcotest.check_raises "damaged target"
    (Invalid_argument "History_stack.truncate: target state is damaged")
    (fun () -> History_stack.truncate h 2)

let test_hs_peak_copies () =
  let h = History_stack.create ~budget:max_int ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 1);
  History_stack.write h ~lock_index:2 (vint 2);
  checki "peak = 2 versions + initial" 3 (History_stack.peak_copies h);
  History_stack.truncate h 0;
  checki "peak survives truncation" 3 (History_stack.peak_copies h)

let test_hs_coalesce_after_truncate () =
  let h = History_stack.create ~budget:max_int ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:1 (vint 1);
  History_stack.write h ~lock_index:3 (vint 3);
  History_stack.truncate h 2;
  (* The survivors of a truncate are kept as-is; a same-segment write into
     the surviving newest version coalesces in place without disturbing
     earlier states. *)
  History_stack.write h ~lock_index:1 (vint 7);
  checki "still one version" 1 (History_stack.n_versions h);
  checkb "coalesced value wins" true
    (Value.equal (History_stack.current h) (vint 7));
  checkb "initial untouched" true (History_stack.value_at h 0 = Some (vint 0));
  checkb "covers later states" true
    (History_stack.value_at h 5 = Some (vint 7))

let test_hs_backwards_write_rejected () =
  let h = History_stack.create ~budget:max_int ~created_at:0 ~initial:(vint 0) in
  History_stack.write h ~lock_index:3 (vint 3);
  Alcotest.check_raises "lock index decreased"
    (Invalid_argument "History_stack.write: lock index went backwards")
    (fun () -> History_stack.write h ~lock_index:2 (vint 2))

(* qcheck: a bounded-budget stack answers value_at exactly like an
   unbounded one wherever it claims restorability. *)
let qcheck_hs_agrees_with_unbounded =
  QCheck.Test.make ~name:"bounded stack is a sound partial view" ~count:500
    QCheck.(pair (int_range 1 4) (list (pair (int_range 0 9) small_int)))
    (fun (budget, writes) ->
      let writes =
        List.sort (fun (a, _) (b, _) -> compare a b) writes
      in
      let bounded = History_stack.create ~budget ~created_at:0 ~initial:(vint 0) in
      let full = History_stack.create ~budget:max_int ~created_at:0 ~initial:(vint 0) in
      List.iter
        (fun (w, v) ->
          History_stack.write bounded ~lock_index:w (vint v);
          History_stack.write full ~lock_index:w (vint v))
        writes;
      List.for_all
        (fun q ->
          match History_stack.value_at bounded q with
          | None -> true (* claims nothing *)
          | Some v -> History_stack.value_at full q = Some v)
        (List.init 11 Fun.id))

(* --- Sdg_view --- *)

(* lock A, write A, lock B, lock C, write A again: damage [1,3) *)
let sdg_program =
  Program.make ~name:"sdg"
    ~locals:[ ("v", vint 0) ]
    [
      Program.lock_x "A";
      Program.write "A" (Expr.int 1);
      Program.lock_x "B";
      Program.lock_x "C";
      Program.write "A" (Expr.int 2);
    ]

let test_sdg_damage_intervals () =
  checkb "interval [1,3)" true (Sdg_view.damage_intervals sdg_program = [ (1, 3) ])

let test_sdg_well_defined () =
  checkil "0 and 3" [ 0; 3 ] (Sdg_view.well_defined_states sdg_program)

let test_sdg_articulation_agrees () =
  checkil "same set via articulation points"
    (Sdg_view.well_defined_states sdg_program)
    (Sdg_view.well_defined_via_articulation sdg_program)

let test_sdg_no_writes () =
  let p =
    Program.make ~name:"ro" ~locals:[]
      [ Program.lock_s "A"; Program.lock_s "B" ]
  in
  checkil "all states well-defined" [ 0; 1; 2 ] (Sdg_view.well_defined_states p)

let test_sdg_rollback_overshoot () =
  (* releasing C (lock state 2) forces a fall-back to state 0 under a
     single-copy implementation: states 1 and 2 are damaged. *)
  checkb "overshoot 2" true (Sdg_view.rollback_overshoot sdg_program "C" = Some 2);
  checkb "A itself is fine" true (Sdg_view.rollback_overshoot sdg_program "A" = Some 0);
  checkb "unknown entity" true (Sdg_view.rollback_overshoot sdg_program "Z" = None)

(* qcheck: the two well-definedness computations agree on random
   programs. *)
let random_program seed =
  let rng = Rng.make seed in
  let n_locks = 2 + Rng.int rng 5 in
  let entities = List.init n_locks (fun i -> Printf.sprintf "E%d" i) in
  let ops = ref [] in
  List.iteri
    (fun i e ->
      ops := Program.lock_x e :: !ops;
      (* random writes to already-locked entities *)
      for _ = 0 to Rng.int rng 3 do
        let target = Rng.int rng (i + 1) in
        ops :=
          Program.write
            (Printf.sprintf "E%d" target)
            (Expr.int (Rng.int rng 100))
          :: !ops
      done)
    entities;
  Program.make ~name:(Printf.sprintf "rand%d" seed) ~locals:[] (List.rev !ops)

let qcheck_sdg_views_agree =
  QCheck.Test.make ~name:"interval and articulation views agree" ~count:500
    QCheck.small_int (fun seed ->
      let p = random_program seed in
      Sdg_view.well_defined_states p = Sdg_view.well_defined_via_articulation p)

(* --- Txn_state: driving helpers --- *)

let fresh_store () =
  Store.of_list
    (List.map
       (fun i -> (Printf.sprintf "E%d" i, vint (100 + i)))
       (List.init 8 Fun.id))

(* Grant-everything driver. *)
let advance_to ts stop_pc =
  while Txn_state.pc ts < stop_pc do
    match Txn_state.next_action ts with
    | Txn_state.Need_lock _ -> Txn_state.lock_granted ts
    | Txn_state.Data_step -> Txn_state.exec_data_op ts
    | Txn_state.Need_unlock _ -> ignore (Txn_state.perform_unlock ts)
    | Txn_state.At_end -> failwith "advance_to: past end"
  done

let run_to_end ts =
  let rec go () =
    match Txn_state.next_action ts with
    | Txn_state.Need_lock _ ->
        Txn_state.lock_granted ts;
        go ()
    | Txn_state.Data_step ->
        Txn_state.exec_data_op ts;
        go ()
    | Txn_state.Need_unlock _ ->
        ignore (Txn_state.perform_unlock ts);
        go ()
    | Txn_state.At_end -> Txn_state.commit ts
  in
  go ()

(* growing-phase program used by the unit tests below:
   pc: 0 lock E0 | 1 read E0 v | 2 write E0 | 3 lock E1 | 4 write E1
     | 5 assign v | 6 lock E2 | 7 write E0 (damages E0's states) *)
let growing_program =
  Program.make ~name:"grow"
    ~locals:[ ("v", vint 0) ]
    [
      Program.lock_x "E0";
      Program.read "E0" "v";
      Program.write "E0" Expr.(var "v" + int 1);
      Program.lock_x "E1";
      Program.write "E1" (Expr.int 5);
      Program.assign "v" Expr.(var "v" + int 100);
      Program.lock_x "E2";
      Program.write "E0" Expr.(var "v" * int 2);
    ]

let test_txn_basic_execution () =
  let store = fresh_store () in
  let ts =
    Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store growing_program
  in
  advance_to ts 8;
  checki "pc" 8 (Txn_state.pc ts);
  checki "lock index" 3 (Txn_state.lock_index ts);
  checkb "holds E0" true (Txn_state.holds ts "E0" = Some Prb_txn.Lock_mode.Exclusive);
  checkb "lock states" true
    (List.map (fun (e, _, k) -> (e, k)) (Txn_state.locks_held ts)
    = [ ("E0", 0); ("E1", 1); ("E2", 2) ]);
  (* E0 = 100 initially; read v=100; write E0 = 101; v = 200; E0 = 400 *)
  checkb "shadow value" true (Value.equal (Txn_state.read_view ts "E0") (vint 400));
  checkb "local" true (Value.equal (Txn_state.local_value ts "v") (vint 200));
  checkb "store never touched" true
    (Value.equal (Store.get store "E0") (vint 100))

let test_txn_costs () =
  let ts =
    Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store:(fresh_store ())
      growing_program
  in
  advance_to ts 8;
  (* releasing E2 (locked at state 2, pc 6): cost 8-6=2; E1 (state 1, pc 3):
     cost 5; E0 (state 0, pc 0): cost 8 *)
  checki "cost E2" 2 (Txn_state.cost_to_release ts "E2");
  checki "cost E1" 5 (Txn_state.cost_to_release ts "E1");
  checki "cost E0" 8 (Txn_state.cost_to_release ts "E0")

let test_txn_rollback_mcs_exact () =
  let store = fresh_store () in
  let ts = Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store growing_program in
  advance_to ts 8;
  let released = Txn_state.rollback_to ts 1 in
  checkb "released E1, E2" true (List.sort compare released = [ "E1"; "E2" ]);
  checki "pc back to lock E1's request" 3 (Txn_state.pc ts);
  checki "lock idx" 1 (Txn_state.lock_index ts);
  (* at L_1 (before lock E1): E0 was 101, v was 100 *)
  checkb "E0 restored" true (Value.equal (Txn_state.read_view ts "E0") (vint 101));
  checkb "v restored" true (Value.equal (Txn_state.local_value ts "v") (vint 100));
  checki "ops lost" 5 (Txn_state.ops_lost ts);
  checki "one rollback" 1 (Txn_state.n_rollbacks ts)

let test_txn_rollback_restart () =
  let store = fresh_store () in
  let ts = Txn_state.create ~strategy:Strategy.Total ~id:0 ~store growing_program in
  advance_to ts 8;
  checki "total targets restart" Txn_state.restart_target
    (Txn_state.rollback_target ts "E2");
  let released = Txn_state.rollback_to ts Txn_state.restart_target in
  checki "everything released" 3 (List.length released);
  checki "pc 0" 0 (Txn_state.pc ts);
  checkb "locals reset" true (Value.equal (Txn_state.local_value ts "v") (vint 0))

let test_txn_sdg_overshoot () =
  let store = fresh_store () in
  let ts = Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store growing_program in
  advance_to ts 8;
  (* E0 written in segments 1 and 3 -> damage [1,3): states 1,2 destroyed.
     Releasing E2 (lock state 2) must overshoot to state 0. *)
  checkil "well-defined states" [ 0; 3 ] (Txn_state.well_defined_states ts);
  checki "target for E2 overshoots to 0" 0 (Txn_state.rollback_target ts "E2");
  let released = Txn_state.rollback_to ts 0 in
  checkb "all three released" true
    (List.sort compare released = [ "E0"; "E1"; "E2" ]);
  checki "pc = first lock request" 0 (Txn_state.pc ts)

let test_txn_sdg_k_keeps_more () =
  let store = fresh_store () in
  let ts =
    Txn_state.create ~strategy:(Strategy.Sdg_k 2) ~id:0 ~store growing_program
  in
  advance_to ts 8;
  checkil "every state well-defined with extra copies" [ 0; 1; 2; 3 ]
    (Txn_state.well_defined_states ts);
  checki "minimal target for E2" 2 (Txn_state.rollback_target ts "E2")

let test_txn_rollback_requires_growing () =
  let store = fresh_store () in
  let p =
    Program.make ~name:"u" ~locals:[]
      [ Program.lock_x "E0"; Program.unlock "E0"; ]
  in
  let ts = Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store p in
  advance_to ts 2;
  checkb "shrinking" true (Txn_state.phase ts = Txn_state.Shrinking);
  Alcotest.check_raises "immune after unlock"
    (Invalid_argument "Txn_state.rollback_to: transaction is not in growing phase")
    (fun () -> ignore (Txn_state.rollback_to ts 0))

let test_txn_commit_values () =
  let store = fresh_store () in
  let ts = Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store growing_program in
  advance_to ts 8;
  let finals = run_to_end ts in
  checkb "committed" true (Txn_state.phase ts = Txn_state.Committed);
  checkb "E0 final" true (List.assoc "E0" finals |> Value.equal (vint 400));
  checkb "E1 final" true (List.assoc "E1" finals |> Value.equal (vint 5))

let test_txn_monitored_writes () =
  let store = fresh_store () in
  let three_phase =
    Program.make ~name:"tp" ~locals:[]
      [
        Program.lock_x "E0";
        Program.lock_x "E1";
        Program.write "E0" (Expr.int 1);
        Program.write "E1" (Expr.int 2);
      ]
  in
  let ts = Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store three_phase in
  advance_to ts 4;
  checki "no monitored writes in a three-phase txn" 0
    (Txn_state.monitored_writes ts);
  let ts2 =
    Txn_state.create ~strategy:Strategy.Sdg ~id:1 ~store growing_program
  in
  advance_to ts2 8;
  checkb "spread writes are monitored" true (Txn_state.monitored_writes ts2 > 0)

(* The incremental copy counter must track the histories through every
   path that touches them: shadow creation, fresh and coalescing writes,
   unlock, partial rollback (shadow drops + truncation) and restart. *)
let test_txn_copy_accounting () =
  let store = Store.of_list [ ("E0", vint 10); ("E1", vint 20) ] in
  let p =
    Program.make ~name:"copies"
      ~locals:[ ("v", vint 0) ]
      [
        Program.lock_x "E0";
        Program.write "E0" (Expr.int 1);
        Program.write "E0" (Expr.int 2);
        Program.lock_x "E1";
        Program.write "E1" (Expr.int 3);
        Program.assign "v" (Expr.int 4);
        Program.unlock "E0";
        Program.unlock "E1";
      ]
  in
  let ts = Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store p in
  checki "initial: the local's saved initial" 1 (Txn_state.current_copies ts);
  Txn_state.lock_granted ts (* lock E0: shadow initial *);
  checki "after lock E0" 2 (Txn_state.current_copies ts);
  Txn_state.exec_data_op ts (* write E0: new version *);
  checki "after first write" 3 (Txn_state.current_copies ts);
  Txn_state.exec_data_op ts (* same-segment write: coalesces *);
  checki "coalesced write adds nothing" 3 (Txn_state.current_copies ts);
  Txn_state.lock_granted ts (* lock E1 *);
  checki "after lock E1" 4 (Txn_state.current_copies ts);
  Txn_state.exec_data_op ts (* write E1 *);
  checki "after E1 write" 5 (Txn_state.current_copies ts);
  Txn_state.exec_data_op ts (* assign v *);
  checki "after assign" 6 (Txn_state.current_copies ts);
  (* Partial rollback to L_1: E1's shadow (2 copies) goes, the v version
     written at lock index 2 truncates away; E0's write at index 1 stays. *)
  let released = Txn_state.rollback_to ts 1 in
  checkb "E1 released" true (released = [ "E1" ]);
  checki "after partial rollback" 3 (Txn_state.current_copies ts);
  checki "peak saw the high-water mark" 6 (Txn_state.peak_copies ts);
  (* Full restart: only the declared local's initial remains charged. *)
  let _ = Txn_state.rollback_to ts Txn_state.restart_target in
  checki "after restart" 1 (Txn_state.current_copies ts)

(* --- Oracle properties ------------------------------------------------ *)

(* Random growing-phase program over a few entities; locks interleaved
   with reads, writes and local computation. *)
let oracle_program seed =
  let rng = Rng.make seed in
  let n_locks = 2 + Rng.int rng 4 in
  let ops = ref [] in
  for i = 0 to n_locks - 1 do
    ops := Program.lock_x (Printf.sprintf "E%d" i) :: !ops;
    for _ = 0 to Rng.int rng 3 do
      let target = Printf.sprintf "E%d" (Rng.int rng (i + 1)) in
      match Rng.int rng 3 with
      | 0 -> ops := Program.read target "v" :: !ops
      | 1 ->
          ops :=
            Program.write target Expr.(Mix (var "v") + int (Rng.int rng 50))
            :: !ops
      | _ ->
          ops :=
            Program.assign "v" Expr.(Mix (var "v") + var "w") :: !ops
    done;
    if Rng.bool rng then
      ops := Program.assign "w" Expr.(var "w" + int 1) :: !ops
  done;
  Program.make
    ~name:(Printf.sprintf "oracle%d" seed)
    ~locals:[ ("v", vint 1); ("w", vint 2) ]
    (List.rev !ops)

(* Execute, remembering the (locals, shadow-values) snapshot at every lock
   state; the snapshot at L_k is taken just before the k-th lock request
   executes. *)
let run_with_snapshots ts =
  let snapshots = ref [] in
  let snap () =
    let locals =
      List.map
        (fun v -> (v, Txn_state.local_value ts v))
        [ "v"; "w" ]
    in
    let shadows =
      List.map
        (fun (e, _, _) -> (e, Txn_state.read_view ts e))
        (Txn_state.locks_held ts)
    in
    snapshots := (Txn_state.lock_index ts, (locals, shadows)) :: !snapshots
  in
  let rec go () =
    match Txn_state.next_action ts with
    | Txn_state.Need_lock _ ->
        snap ();
        Txn_state.lock_granted ts;
        go ()
    | Txn_state.Data_step ->
        Txn_state.exec_data_op ts;
        go ()
    | Txn_state.Need_unlock _ | Txn_state.At_end -> ()
  in
  go ();
  List.rev !snapshots

let snapshot_matches ts (locals, shadows) =
  List.for_all
    (fun (v, expected) -> Value.equal (Txn_state.local_value ts v) expected)
    locals
  && List.for_all
       (fun (e, expected) ->
         match Txn_state.holds ts e with
         | None -> false
         | Some _ -> Value.equal (Txn_state.read_view ts e) expected)
       shadows

let qcheck_rollback_restores_oracle strategy =
  let name =
    Printf.sprintf "rollback restores the oracle snapshot (%s)"
      (Strategy.to_string strategy)
  in
  QCheck.Test.make ~name ~count:200 QCheck.small_int (fun seed ->
      let program = oracle_program seed in
      let snapshots =
        let ts =
          Txn_state.create ~strategy ~id:0 ~store:(fresh_store ()) program
        in
        run_with_snapshots ts
      in
      let n_states = List.length snapshots in
      (* for each claimed well-defined state, replay and roll back *)
      List.for_all
        (fun q ->
          let ts =
            Txn_state.create ~strategy ~id:0 ~store:(fresh_store ()) program
          in
          let held_before =
            let _ = run_with_snapshots ts in
            Txn_state.locks_held ts
          in
          if not (Txn_state.well_defined ts q) then true
          else begin
            let released = Txn_state.rollback_to ts q in
            (* entities locked at state >= q released, earlier ones kept *)
            List.for_all
              (fun (e, _, k) ->
                if k >= q then List.mem e released
                else not (List.mem e released))
              held_before
            && Txn_state.lock_index ts = q
            && snapshot_matches ts (List.assoc q snapshots)
          end)
        (List.init n_states Fun.id))

let qcheck_mcs_reaches_every_state =
  QCheck.Test.make ~name:"mcs: every lock state is well-defined" ~count:200
    QCheck.small_int (fun seed ->
      let ts =
        Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store:(fresh_store ())
          (oracle_program seed)
      in
      let _ = run_with_snapshots ts in
      Txn_state.well_defined_states ts
      = List.init (Txn_state.lock_index ts + 1) Fun.id)

let qcheck_rollback_then_rerun_commits_same =
  QCheck.Test.make
    ~name:"re-execution after rollback commits identical values" ~count:200
    QCheck.(pair small_int (int_bound 4))
    (fun (seed, target_choice) ->
      let program = oracle_program seed in
      let reference =
        let ts =
          Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store:(fresh_store ())
            program
        in
        run_to_end ts
      in
      let ts =
        Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store:(fresh_store ())
          program
      in
      let _ = run_with_snapshots ts in
      let q = target_choice mod (Txn_state.lock_index ts + 1) in
      let _ = Txn_state.rollback_to ts q in
      (* re-grant and run to completion *)
      let finals = run_to_end ts in
      List.length finals = List.length reference
      && List.for_all2
           (fun (e1, v1) (e2, v2) -> e1 = e2 && Value.equal v1 v2)
           finals reference)

let qcheck_theorem3_bound =
  QCheck.Test.make
    ~name:"Theorem 3: MCS copies <= n(n+1)/2 + n*|L|" ~count:300
    QCheck.small_int (fun seed ->
      let ts =
        Txn_state.create ~strategy:Strategy.Mcs ~id:0 ~store:(fresh_store ())
          (oracle_program seed)
      in
      let _ = run_with_snapshots ts in
      let n = Txn_state.lock_index ts in
      let n_locals = 2 in
      (* our count also charges the saved initial per object: n more for
         globals, and locals can hold a version per segment 0..n plus the
         initial *)
      Txn_state.peak_copies ts
      <= (n * (n + 1) / 2) + n + ((n + 2) * n_locals))

let qcheck_single_copy_space =
  QCheck.Test.make ~name:"Total/Sdg keep one copy per object" ~count:200
    QCheck.small_int (fun seed ->
      List.for_all
        (fun strategy ->
          let ts =
            Txn_state.create ~strategy ~id:0 ~store:(fresh_store ())
              (oracle_program seed)
          in
          let _ = run_with_snapshots ts in
          let n = Txn_state.lock_index ts in
          (* per object: one live version + the saved initial *)
          Txn_state.peak_copies ts <= 2 * (n + 2))
        [ Strategy.Total; Strategy.Sdg ])

let qcheck_runtime_sdg_matches_static =
  QCheck.Test.make
    ~name:"runtime well-defined set = static Sdg_view on completed growth"
    ~count:300 QCheck.small_int (fun seed ->
      let program = oracle_program seed in
      let ts =
        Txn_state.create ~strategy:Strategy.Sdg ~id:0 ~store:(fresh_store ())
          program
      in
      let _ = run_with_snapshots ts in
      Txn_state.well_defined_states ts = Sdg_view.well_defined_states program)

(* --- Allocation (the paper's closing question) ------------------------ *)

module Allocation = Prb_rollback.Allocation

(* lock A..D; A written in segments 1,2,4; B in 2,3 *)
let alloc_program =
  Program.make ~name:"alloc"
    ~locals:[]
    [
      Program.lock_x "A";
      Program.write "A" (Expr.int 1);
      Program.lock_x "B";
      Program.write "A" (Expr.int 2);
      Program.write "B" (Expr.int 3);
      Program.lock_x "C";
      Program.write "B" (Expr.int 4);
      Program.lock_x "D";
      Program.write "A" (Expr.int 5);
    ]

let test_alloc_chunks () =
  let cs = Allocation.chunks alloc_program in
  (* A: segments 1,2,4 -> chunks [2,4) then [1,2); B: 2,3 -> [2,3) *)
  checkb "A chunks" true (List.assoc "G:A" cs = [ (2, 4); (1, 2) ]);
  checkb "B chunks" true (List.assoc "G:B" cs = [ (2, 3) ])

let test_alloc_zero_matches_sdg_view () =
  checkil "baseline = Sdg_view"
    (Sdg_view.well_defined_states alloc_program)
    (Allocation.well_defined_with alloc_program ~allocation:(fun _ -> 0))

let test_alloc_full_funding_restores_everything () =
  let n = Program.n_locks alloc_program in
  checkil "all states"
    (List.init (n + 1) Fun.id)
    (Allocation.well_defined_with alloc_program ~allocation:(fun _ -> 99))

let test_alloc_greedy_spends_where_it_pays () =
  (* one copy: A's newest chunk [2,4) frees states 2 and 3 — more than
     B's [2,3) which overlaps A's damage anyway *)
  let a1 = Allocation.greedy alloc_program ~budget:1 in
  checkb "first copy goes to A" true (Allocation.lookup a1 "G:A" = 1);
  checki "gain 1 state (3; 2 is still damaged by B)" 1
    (Allocation.gain alloc_program a1);
  let a3 = Allocation.greedy alloc_program ~budget:3 in
  checki "three copies free every state" 3 (Allocation.gain alloc_program a3)

let test_alloc_exact_small () =
  let e2 = Allocation.exact alloc_program ~budget:2 in
  (* two copies: best is A's newest + B's chunk, freeing 2 and 3 *)
  checki "exact gain with 2" 2 (Allocation.gain alloc_program e2)

let qcheck_alloc_greedy_sound =
  QCheck.Test.make
    ~name:"greedy never beats the exhaustive optimum and respects budgets"
    ~count:200
    QCheck.(pair small_int (int_bound 4))
    (fun (seed, budget) ->
      let p = random_program seed in
      let g = Allocation.greedy p ~budget in
      let e = Allocation.exact p ~budget in
      let spend a = List.fold_left (fun acc (_, n) -> acc + n) 0 a in
      Allocation.gain p g <= Allocation.gain p e
      && spend g <= budget
      && spend e <= budget)

let qcheck_alloc_monotone =
  QCheck.Test.make ~name:"allocation gain is monotone in budget" ~count:200
    QCheck.small_int (fun seed ->
      let p = random_program seed in
      let gains =
        List.map (fun b -> Allocation.gain p (Allocation.greedy p ~budget:b))
          [ 0; 1; 2; 3; 4 ]
      in
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing gains)

let qcheck_alloc_runtime_agreement =
  QCheck.Test.make
    ~name:"runtime honours the allocation (static = dynamic)" ~count:200
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, budget) ->
      let p = oracle_program seed in
      let alloc = Allocation.greedy p ~budget in
      let ts =
        Txn_state.create
          ~copy_allocation:(Allocation.lookup alloc)
          ~strategy:Strategy.Sdg ~id:0 ~store:(fresh_store ()) p
      in
      let _ = run_with_snapshots ts in
      Txn_state.well_defined_states ts
      = Allocation.well_defined_with p ~allocation:(Allocation.lookup alloc))

(* --- qcheck: the arena-backed stack vs the retained cons-list reference,
   fresh and pool-recycled --- *)

(* Drive an identical random lifetime — writes at nondecreasing lock
   indexes interleaved with truncates — through the arena-backed
   History_stack and through History_stack_ref (the original cons-list
   representation kept verbatim), comparing every observable after every
   step. [via_pool] runs the arena side through a warm Pool, so recycled
   buffers must be indistinguishable from fresh ones. *)
let qcheck_hs_dense_vs_reference via_pool =
  let module R = Prb_rollback.History_stack_ref in
  let name =
    Printf.sprintf "arena stack matches cons-list reference (%s)"
      (if via_pool then "pooled" else "fresh")
  in
  let pool = History_stack.Pool.create () in
  QCheck.Test.make ~name ~count:300
    QCheck.(pair (int_range 1 4) (small_list (pair bool (int_bound 8))))
    (fun (budget, script) ->
      let h =
        if via_pool then
          History_stack.Pool.acquire pool ~budget ~created_at:0
            ~initial:(Value.int 0)
        else History_stack.create ~budget ~created_at:0 ~initial:(Value.int 0)
      in
      let r = R.create ~budget ~created_at:0 ~initial:(Value.int 0) in
      let agree () =
        Value.equal (History_stack.current h) (R.current r)
        && History_stack.n_versions h = R.n_versions r
        && History_stack.n_copies h = R.n_copies r
        && History_stack.peak_copies h = R.peak_copies r
        && History_stack.damaged h = R.damaged r
        && List.for_all
             (fun q ->
               History_stack.is_restorable h q = R.is_restorable r q
               && History_stack.value_at h q = R.value_at r q)
             (List.init 10 Fun.id)
      in
      let last = ref 0 in
      let ok =
        List.for_all
          (fun (truncate, k) ->
            (if truncate then begin
               let q = min k !last in
               if History_stack.is_restorable h q then begin
                 History_stack.truncate h q;
                 R.truncate r q;
                 last := q
               end
             end
             else begin
               let li = max !last k in
               History_stack.write h ~lock_index:li (Value.int (li * 10 + k));
               R.write r ~lock_index:li (Value.int (li * 10 + k));
               last := li
             end);
            agree ())
          script
      in
      if via_pool then History_stack.Pool.release pool h;
      ok)

let () =
  Alcotest.run "prb_rollback"
    [
      ( "strategy",
        [
          Alcotest.test_case "string round-trip" `Quick test_strategy_roundtrip;
          Alcotest.test_case "budgets" `Quick test_strategy_budget;
        ] );
      ( "history_stack",
        [
          Alcotest.test_case "initial" `Quick test_hs_initial;
          Alcotest.test_case "write / value_at" `Quick test_hs_write_and_value_at;
          Alcotest.test_case "segment coalescing" `Quick test_hs_same_segment_coalesces;
          Alcotest.test_case "eviction damages" `Quick test_hs_eviction_damages;
          Alcotest.test_case "damage merges" `Quick test_hs_damage_merges;
          Alcotest.test_case "budget k" `Quick test_hs_budget_k;
          Alcotest.test_case "truncate" `Quick test_hs_truncate;
          Alcotest.test_case "truncate damaged" `Quick test_hs_truncate_damaged_rejected;
          Alcotest.test_case "coalesce after truncate" `Quick
            test_hs_coalesce_after_truncate;
          Alcotest.test_case "peak copies" `Quick test_hs_peak_copies;
          Alcotest.test_case "backwards write" `Quick test_hs_backwards_write_rejected;
          QCheck_alcotest.to_alcotest qcheck_hs_agrees_with_unbounded;
          QCheck_alcotest.to_alcotest (qcheck_hs_dense_vs_reference false);
          QCheck_alcotest.to_alcotest (qcheck_hs_dense_vs_reference true);
        ] );
      ( "sdg_view",
        [
          Alcotest.test_case "damage intervals" `Quick test_sdg_damage_intervals;
          Alcotest.test_case "well-defined states" `Quick test_sdg_well_defined;
          Alcotest.test_case "articulation agreement" `Quick test_sdg_articulation_agrees;
          Alcotest.test_case "read-only program" `Quick test_sdg_no_writes;
          Alcotest.test_case "rollback overshoot" `Quick test_sdg_rollback_overshoot;
          QCheck_alcotest.to_alcotest qcheck_sdg_views_agree;
        ] );
      ( "txn_state",
        [
          Alcotest.test_case "basic execution" `Quick test_txn_basic_execution;
          Alcotest.test_case "rollback costs" `Quick test_txn_costs;
          Alcotest.test_case "mcs exact rollback" `Quick test_txn_rollback_mcs_exact;
          Alcotest.test_case "total restart" `Quick test_txn_rollback_restart;
          Alcotest.test_case "sdg overshoot" `Quick test_txn_sdg_overshoot;
          Alcotest.test_case "sdg+k keeps more" `Quick test_txn_sdg_k_keeps_more;
          Alcotest.test_case "immune after unlock" `Quick
            test_txn_rollback_requires_growing;
          Alcotest.test_case "commit values" `Quick test_txn_commit_values;
          Alcotest.test_case "monitored writes" `Quick test_txn_monitored_writes;
          Alcotest.test_case "copy accounting" `Quick test_txn_copy_accounting;
        ] );
      ( "oracle properties",
        [
          QCheck_alcotest.to_alcotest
            (qcheck_rollback_restores_oracle Strategy.Mcs);
          QCheck_alcotest.to_alcotest
            (qcheck_rollback_restores_oracle Strategy.Sdg);
          QCheck_alcotest.to_alcotest
            (qcheck_rollback_restores_oracle (Strategy.Sdg_k 1));
          QCheck_alcotest.to_alcotest qcheck_mcs_reaches_every_state;
          QCheck_alcotest.to_alcotest qcheck_rollback_then_rerun_commits_same;
          QCheck_alcotest.to_alcotest qcheck_theorem3_bound;
          QCheck_alcotest.to_alcotest qcheck_single_copy_space;
          QCheck_alcotest.to_alcotest qcheck_runtime_sdg_matches_static;
        ] );
      ( "allocation",
        [
          Alcotest.test_case "chunks" `Quick test_alloc_chunks;
          Alcotest.test_case "zero matches Sdg_view" `Quick
            test_alloc_zero_matches_sdg_view;
          Alcotest.test_case "full funding" `Quick
            test_alloc_full_funding_restores_everything;
          Alcotest.test_case "greedy placement" `Quick
            test_alloc_greedy_spends_where_it_pays;
          Alcotest.test_case "exact small" `Quick test_alloc_exact_small;
          QCheck_alcotest.to_alcotest qcheck_alloc_greedy_sound;
          QCheck_alcotest.to_alcotest qcheck_alloc_monotone;
          QCheck_alcotest.to_alcotest qcheck_alloc_runtime_agreement;
        ] );
    ]
