(* Tests for Prb_lock.Lock_table under both grant disciplines. *)

module Lock_table = Prb_lock.Lock_table
module Lock_mode = Prb_txn.Lock_mode

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let s = Lock_mode.Shared
let x = Lock_mode.Exclusive

let granted = function Lock_table.Granted -> true | Lock_table.Blocked _ -> false
let blockers = function Lock_table.Granted -> [] | Lock_table.Blocked bs -> bs

(* --- Grants and conflicts (both disciplines agree) --- *)

let test_grant_free_entity () =
  let t = Lock_table.create () in
  checkb "X on free entity" true (granted (Lock_table.request t 1 x "a"));
  checkb "holds" true (Lock_table.holds t 1 "a" = Some x)

let test_shared_holders_coexist () =
  let t = Lock_table.create () in
  checkb "S" true (granted (Lock_table.request t 1 s "a"));
  checkb "second S" true (granted (Lock_table.request t 2 s "a"));
  checki "two holders" 2 (List.length (Lock_table.holders t "a"))

let test_exclusive_blocks () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  let outcome = Lock_table.request t 2 x "a" in
  checkb "blocked" false (granted outcome);
  checkb "blocked by holder" true (blockers outcome = [ 1 ]);
  checkb "waiting_for" true (Lock_table.waiting_for t 2 = Some ("a", x))

let test_shared_blocked_by_exclusive () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  checkb "S blocked by X" false (granted (Lock_table.request t 2 s "a"))

let test_release_grants_waiter () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  ignore (Lock_table.request t 2 x "a");
  let grants = Lock_table.release t 1 "a" in
  checkb "waiter granted" true (grants = [ (2, x) ]);
  checkb "new holder" true (Lock_table.holds t 2 "a" = Some x);
  checkb "no longer waiting" true (Lock_table.waiting_for t 2 = None)

let test_release_grants_shared_batch () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  ignore (Lock_table.request t 2 s "a");
  ignore (Lock_table.request t 3 s "a");
  let grants = Lock_table.release t 1 "a" in
  checkb "both shared waiters granted" true (grants = [ (2, s); (3, s) ])

let test_double_request_rejected () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  Alcotest.check_raises "re-lock" (Invalid_argument "Lock_table.request: lock already held")
    (fun () -> ignore (Lock_table.request t 1 x "a"))

let test_request_while_waiting_rejected () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  ignore (Lock_table.request t 2 x "a");
  Alcotest.check_raises "second wait"
    (Invalid_argument "Lock_table.request: transaction is already waiting")
    (fun () -> ignore (Lock_table.request t 2 x "b"))

let test_release_not_held_rejected () =
  let t = Lock_table.create () in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Lock_table.release: lock not held") (fun () ->
      ignore (Lock_table.release t 1 "a"))

(* --- Upgrades --- *)

let test_upgrade_sole_holder () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 s "a");
  checkb "converts in place" true (granted (Lock_table.request t 1 x "a"));
  checkb "now exclusive" true (Lock_table.holds t 1 "a" = Some x);
  checki "upgrade counted" 1 (Lock_table.n_upgrades t)

let test_upgrade_waits_for_other_holders () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 s "a");
  ignore (Lock_table.request t 2 s "a");
  let outcome = Lock_table.request t 1 x "a" in
  checkb "blocked on the other holder" true (blockers outcome = [ 2 ]);
  checkb "keeps shared meanwhile" true (Lock_table.holds t 1 "a" = Some s);
  let grants = Lock_table.release t 2 "a" in
  checkb "conversion granted on release" true (grants = [ (1, x) ]);
  checkb "exclusive now" true (Lock_table.holds t 1 "a" = Some x)

let test_upgrade_priority_over_queue () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 s "a");
  ignore (Lock_table.request t 2 s "a");
  ignore (Lock_table.request t 3 x "a") |> ignore;
  (* 3 queued first, then 1 asks to convert *)
  let outcome = Lock_table.request t 1 x "a" in
  checkb "conversion waits only for holders" true (blockers outcome = [ 2 ]);
  let grants = Lock_table.release t 2 "a" in
  checkb "conversion beats queued X" true (grants = [ (1, x) ])

(* --- Fair discipline --- *)

let test_fair_no_overtaking () =
  let t = Lock_table.create ~fair:true () in
  ignore (Lock_table.request t 1 s "a");
  ignore (Lock_table.request t 2 x "a") (* queued *);
  let outcome = Lock_table.request t 3 s "a" in
  checkb "S blocked behind queued X" false (granted outcome);
  checkb "waits for the queued X only (holder is compatible)" true
    (blockers outcome = [ 2 ]);
  (* 1 releases: X goes first, S still queued behind. *)
  let grants = Lock_table.release t 1 "a" in
  checkb "X granted alone" true (grants = [ (2, x) ]);
  let grants = Lock_table.release t 2 "a" in
  checkb "then the S" true (grants = [ (3, s) ])

let test_unfair_overtaking () =
  let t = Lock_table.create ~fair:false () in
  ignore (Lock_table.request t 1 s "a");
  ignore (Lock_table.request t 2 x "a") (* queued *);
  checkb "availability rule: S joins holders" true
    (granted (Lock_table.request t 3 s "a"))

let test_fair_compatible_jump () =
  (* A shared request with only compatible requests ahead may be granted
     immediately. *)
  let t = Lock_table.create ~fair:true () in
  ignore (Lock_table.request t 1 s "a");
  checkb "second S not blocked by first" true (granted (Lock_table.request t 2 s "a"))

let test_cancel_wait_unblocks_queue () =
  let t = Lock_table.create ~fair:true () in
  ignore (Lock_table.request t 1 s "a");
  ignore (Lock_table.request t 2 x "a") (* queued X *);
  ignore (Lock_table.request t 3 s "a") (* queued behind X *);
  match Lock_table.cancel_wait t 2 with
  | Some ("a", grants) ->
      checkb "S behind the cancelled X is granted" true (grants = [ (3, s) ])
  | Some _ | None -> Alcotest.fail "expected cancellation grants"

let test_cancel_wait_none () =
  let t = Lock_table.create () in
  checkb "not waiting" true (Lock_table.cancel_wait t 9 = None)

let test_release_all () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  ignore (Lock_table.request t 1 s "b");
  ignore (Lock_table.request t 2 x "a") (* queued *);
  let grants = Lock_table.release_all t 1 in
  checkb "everything released, waiter granted" true (grants = [ (2, x, "a") ]);
  checkb "nothing held" true (Lock_table.held_by t 1 = [])

let test_blockers_evolve () =
  let t = Lock_table.create ~fair:true () in
  ignore (Lock_table.request t 1 s "a");
  ignore (Lock_table.request t 2 s "a");
  ignore (Lock_table.request t 3 x "a");
  checkb "waits for both holders" true (Lock_table.blockers t 3 = [ 1; 2 ]);
  ignore (Lock_table.release t 1 "a");
  checkb "re-pointed to the survivor" true (Lock_table.blockers t 3 = [ 2 ])

let test_classify () =
  let t = Lock_table.create () in
  ignore (Lock_table.request t 1 x "a");
  ignore (Lock_table.request t 9 s "b");
  checkb "S vs X is Type1" true
    (Lock_table.classify t 2 s "a" = Lock_table.Type1);
  checkb "X vs any is Type2" true
    (Lock_table.classify t 2 x "a" = Lock_table.Type2);
  checkb "X vs S is Type2" true
    (Lock_table.classify t 2 x "b" = Lock_table.Type2);
  checkb "free entity" true
    (Lock_table.classify t 2 x "zzz" = Lock_table.No_conflict)

(* --- qcheck: safety invariant under random traffic --- *)

(* Random request/release traffic; after every step, granted locks must be
   pairwise compatible and no waiter may also hold its awaited entity in a
   satisfying mode. *)
let qcheck_no_conflicting_grants fair =
  let name =
    Printf.sprintf "no conflicting holders (%s)"
      (if fair then "fair" else "availability")
  in
  QCheck.Test.make ~name ~count:300
    QCheck.(list (triple (int_bound 4) bool (int_bound 2)))
    (fun script ->
      let t = Lock_table.create ~fair () in
      let entity i = Printf.sprintf "e%d" i in
      List.iter
        (fun (txn, is_req, ei) ->
          let e = entity ei in
          if is_req then begin
            match (Lock_table.holds t txn e, Lock_table.waiting_for t txn) with
            | _, Some _ -> () (* already waiting: skip *)
            | Some Lock_mode.Shared, _ ->
                ignore (Lock_table.request t txn x e) (* upgrade *)
            | Some Lock_mode.Exclusive, _ -> ()
            | None, None ->
                let mode = if txn mod 2 = 0 then s else x in
                ignore (Lock_table.request t txn mode e)
          end
          else
            match Lock_table.holds t txn e with
            | Some _ when Lock_table.waiting_for t txn = None ->
                ignore (Lock_table.release t txn e)
            | _ -> ignore (Lock_table.cancel_wait t txn))
        script;
      (* invariant: holders pairwise compatible *)
      List.for_all
        (fun ei ->
          let holders = Lock_table.holders t (entity ei) in
          List.for_all
            (fun (h1, m1) ->
              List.for_all
                (fun (h2, m2) -> h1 = h2 || Lock_mode.compatible m1 m2)
                holders)
            holders)
        [ 0; 1; 2 ])

(* --- qcheck: the indexed table vs a naive reference model --- *)

(* The table keeps a per-transaction held-locks index so that
   [held_by]/[holds]/[release_all] are O(locks held). This property drives
   random request/release/cancel traffic — including upgrades and the fair
   queue — against a naive flat-list model that is updated only from the
   observable outcomes (grant results), then checks every read-side
   accessor against the model after each step. Any drift between the
   index, the per-entity entries, and the waiter bookkeeping fails here. *)
let qcheck_index_vs_reference fair =
  let name =
    Printf.sprintf "indexed table matches naive reference (%s)"
      (if fair then "fair" else "availability")
  in
  let n_txns = 5 and n_entities = 3 in
  QCheck.Test.make ~name ~count:200
    QCheck.(
      list (triple (int_bound (n_txns - 1)) (int_bound 4) (int_bound (n_entities - 1))))
    (fun script ->
      let t = Lock_table.create ~fair () in
      let entity i = Printf.sprintf "e%d" i in
      let entities = List.init n_entities entity in
      let txns = List.init n_txns Fun.id in
      (* naive model: flat association lists, event-sourced from outcomes *)
      let held = ref [] (* (txn * entity * mode) list *)
      and waiting = ref [] (* (txn * entity * mode) list *) in
      let model_grant w e m =
        waiting := List.filter (fun (x, _, _) -> x <> w) !waiting;
        held := (w, e, m) :: List.filter (fun (x, e', _) -> (x, e') <> (w, e)) !held
      in
      let model_holds txn e =
        List.find_map
          (fun (x, e', m) -> if (x, e') = (txn, e) then Some m else None)
          !held
      in
      let check_agreement () =
        List.for_all
          (fun txn ->
            let model_held =
              List.filter_map
                (fun (x, e, m) -> if x = txn then Some (e, m) else None)
                !held
              |> List.sort compare
            in
            Lock_table.held_by t txn = model_held
            && Lock_table.n_held t txn = List.length model_held
            && Lock_table.waiting_for t txn
               = List.find_map
                   (fun (x, e, m) -> if x = txn then Some (e, m) else None)
                   !waiting
            && List.for_all
                 (fun e -> Lock_table.holds t txn e = model_holds txn e)
                 entities)
          txns
        && List.for_all
             (fun e ->
               Lock_table.holders t e
               = (List.filter_map
                    (fun (x, e', m) -> if e' = e then Some (x, m) else None)
                    !held
                 |> List.sort compare))
             entities
        (* gc: the entry table holds exactly the touched entities *)
        && Lock_table.n_entries t
           = List.length
               (List.filter
                  (fun e ->
                    List.exists (fun (_, e', _) -> e' = e) !held
                    || List.exists (fun (_, e', _) -> e' = e) !waiting)
                  entities)
      in
      List.for_all
        (fun (txn, op, ei) ->
          let e = entity ei in
          (match op with
          | 0 | 1 -> (
              let mode = if op = 0 then s else x in
              match (Lock_table.waiting_for t txn, Lock_table.holds t txn e) with
              | Some _, _ -> () (* already waiting: a request would raise *)
              | _, Some m
                when m = Lock_mode.Exclusive || mode = Lock_mode.Shared ->
                  () (* nothing to upgrade to *)
              | None, _ -> (
                  (* fresh request, or an S->X upgrade *)
                  match Lock_table.request t txn mode e with
                  | Lock_table.Granted -> model_grant txn e mode
                  | Lock_table.Blocked _ ->
                      waiting := (txn, e, mode) :: !waiting))
          | 2 ->
              if
                Lock_table.holds t txn e <> None
                && Lock_table.waiting_for t txn = None
              then begin
                held := List.filter (fun (x, e', _) -> (x, e') <> (txn, e)) !held;
                List.iter (fun (w, m) -> model_grant w e m)
                  (Lock_table.release t txn e)
              end
          | 3 -> (
              match Lock_table.cancel_wait t txn with
              | None -> ()
              | Some (e, grants) ->
                  waiting := List.filter (fun (x, _, _) -> x <> txn) !waiting;
                  List.iter (fun (w, m) -> model_grant w e m) grants)
          | _ ->
              held := List.filter (fun (x, _, _) -> x <> txn) !held;
              waiting := List.filter (fun (x, _, _) -> x <> txn) !waiting;
              List.iter (fun (w, m, e) -> model_grant w e m)
                (Lock_table.release_all t txn));
          check_agreement ())
        script)

(* --- qcheck: the dense (interned, packed-buffer) table vs the retained
   hashtable-of-entries reference --- *)

(* Lock_table_ref is the original representation kept verbatim for
   differential testing. Both tables receive the identical random script
   — requests (including upgrades), releases, cancels, release_all — and
   must agree on every outcome (grant/block with the same blocker set,
   waiters granted in the same order) and on every read-side accessor
   after every step. *)
let qcheck_dense_vs_reference fair =
  let module Ref = Prb_lock.Lock_table_ref in
  let name =
    Printf.sprintf "dense table matches retained reference (%s)"
      (if fair then "fair" else "availability")
  in
  let n_txns = 5 and n_entities = 3 in
  QCheck.Test.make ~name ~count:200
    QCheck.(
      list
        (triple (int_bound (n_txns - 1)) (int_bound 4)
           (int_bound (n_entities - 1))))
    (fun script ->
      let t = Lock_table.create ~fair () in
      let r = Ref.create ~fair () in
      let entity i = Printf.sprintf "e%d" i in
      let entities = List.init n_entities entity in
      let txns = List.init n_txns Fun.id in
      let outcomes_agree o o' =
        match (o, o') with
        | Lock_table.Granted, Ref.Granted -> true
        | Lock_table.Blocked bs, Ref.Blocked bs' -> bs = bs'
        | _ -> false
      in
      let agree () =
        List.for_all
          (fun txn ->
            Lock_table.held_by t txn = Ref.held_by r txn
            && Lock_table.n_held t txn = Ref.n_held r txn
            && Lock_table.waiting_for t txn = Ref.waiting_for r txn
            && Lock_table.blockers t txn = Ref.blockers r txn
            && List.for_all
                 (fun e -> Lock_table.holds t txn e = Ref.holds r txn e)
                 entities)
          txns
        && List.for_all
             (fun e ->
               Lock_table.holders t e = Ref.holders r e
               && Lock_table.waiters t e = Ref.waiters r e
               && Lock_table.has_waiters t e = Ref.has_waiters r e)
             entities
        && Lock_table.n_entries t = Ref.n_entries r
        && Lock_table.n_requests t = Ref.n_requests r
        && Lock_table.n_blocks t = Ref.n_blocks r
        && Lock_table.n_upgrades t = Ref.n_upgrades r
      in
      List.for_all
        (fun (txn, op, ei) ->
          let e = entity ei in
          (match op with
          | 0 | 1 -> (
              let mode = if op = 0 then s else x in
              (* skip scripts steps both tables would reject identically *)
              match (Lock_table.waiting_for t txn, Lock_table.holds t txn e) with
              | Some _, _ -> true
              | _, Some m when m = Lock_mode.Exclusive || mode = Lock_mode.Shared
                -> true
              | None, _ ->
                  outcomes_agree
                    (Lock_table.request t txn mode e)
                    (Ref.request r txn mode e))
          | 2 ->
              Lock_table.holds t txn e = None
              || Lock_table.waiting_for t txn <> None
              || Lock_table.release t txn e = Ref.release r txn e
          | 3 -> Lock_table.cancel_wait t txn = Ref.cancel_wait r txn
          | _ -> Lock_table.release_all t txn = Ref.release_all r txn)
          && agree ())
        script)

let () =
  Alcotest.run "prb_lock"
    [
      ( "grants",
        [
          Alcotest.test_case "free entity" `Quick test_grant_free_entity;
          Alcotest.test_case "shared coexist" `Quick test_shared_holders_coexist;
          Alcotest.test_case "exclusive blocks" `Quick test_exclusive_blocks;
          Alcotest.test_case "S blocked by X" `Quick test_shared_blocked_by_exclusive;
          Alcotest.test_case "release grants" `Quick test_release_grants_waiter;
          Alcotest.test_case "shared batch grant" `Quick test_release_grants_shared_batch;
          Alcotest.test_case "double request" `Quick test_double_request_rejected;
          Alcotest.test_case "request while waiting" `Quick
            test_request_while_waiting_rejected;
          Alcotest.test_case "release not held" `Quick test_release_not_held_rejected;
        ] );
      ( "upgrades",
        [
          Alcotest.test_case "sole holder converts" `Quick test_upgrade_sole_holder;
          Alcotest.test_case "waits for other holders" `Quick
            test_upgrade_waits_for_other_holders;
          Alcotest.test_case "priority over queue" `Quick test_upgrade_priority_over_queue;
        ] );
      ( "disciplines",
        [
          Alcotest.test_case "fair: no overtaking" `Quick test_fair_no_overtaking;
          Alcotest.test_case "availability: overtaking" `Quick test_unfair_overtaking;
          Alcotest.test_case "fair: compatible jump" `Quick test_fair_compatible_jump;
          Alcotest.test_case "cancel unblocks queue" `Quick test_cancel_wait_unblocks_queue;
          Alcotest.test_case "cancel nothing" `Quick test_cancel_wait_none;
          Alcotest.test_case "release_all" `Quick test_release_all;
          Alcotest.test_case "blockers evolve" `Quick test_blockers_evolve;
          Alcotest.test_case "conflict taxonomy" `Quick test_classify;
          QCheck_alcotest.to_alcotest (qcheck_no_conflicting_grants true);
          QCheck_alcotest.to_alcotest (qcheck_no_conflicting_grants false);
          QCheck_alcotest.to_alcotest (qcheck_index_vs_reference true);
          QCheck_alcotest.to_alcotest (qcheck_index_vs_reference false);
          QCheck_alcotest.to_alcotest (qcheck_dense_vs_reference true);
          QCheck_alcotest.to_alcotest (qcheck_dense_vs_reference false);
        ] );
    ]
