(* Integration tests for Prb_core.Scheduler: end-to-end deadlock removal,
   serializability, determinism, liveness of the ordered policies. *)

module Value = Prb_storage.Value
module Store = Prb_storage.Store
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module Strategy = Prb_rollback.Strategy
module Policy = Prb_core.Policy
module Scheduler = Prb_core.Scheduler
module History = Prb_history.History
module Txn_state = Prb_rollback.Txn_state
module Generator = Prb_workload.Generator

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let transfer ~name ~src ~dst ~amount =
  Program.make ~name
    ~locals:[ ("sb", Value.int 0); ("db", Value.int 0) ]
    [
      Program.lock_x src;
      Program.read src "sb";
      Program.write src Expr.(var "sb" - int amount);
      Program.lock_x dst;
      Program.read dst "db";
      Program.write dst Expr.(var "db" + int amount);
      Program.unlock src;
      Program.unlock dst;
    ]

let two_txn_deadlock strategy =
  let store = Store.of_list [ ("a", Value.int 100); ("b", Value.int 100) ] in
  let config = { Scheduler.default_config with strategy } in
  let sched = Scheduler.create ~config store in
  let _ = Scheduler.submit sched (transfer ~name:"ab" ~src:"a" ~dst:"b" ~amount:10) in
  let _ = Scheduler.submit sched (transfer ~name:"ba" ~src:"b" ~dst:"a" ~amount:20) in
  Scheduler.run sched;
  (store, sched)

let test_deadlock_resolved_all_strategies () =
  List.iter
    (fun strategy ->
      let store, sched = two_txn_deadlock strategy in
      let stats = Scheduler.stats sched in
      checki "both commit" 2 stats.Scheduler.commits;
      checkb "a deadlock happened" true (stats.Scheduler.deadlocks >= 1);
      checkb "serializable" true (History.serializable (Scheduler.history sched));
      (* money conserved *)
      checki "total" 200
        (Value.as_int (Store.get store "a") + Value.as_int (Store.get store "b")))
    (Strategy.all_basic @ [ Strategy.Sdg_k 1 ])

let test_no_conflict_no_deadlock () =
  let store = Store.of_list [ ("a", Value.int 0); ("b", Value.int 0) ] in
  let sched = Scheduler.create store in
  let p name e =
    Program.make ~name ~locals:[ ("v", Value.int 0) ]
      [ Program.lock_x e; Program.read e "v";
        Program.write e Expr.(var "v" + int 1); Program.unlock e ]
  in
  let _ = Scheduler.submit sched (p "t0" "a") in
  let _ = Scheduler.submit sched (p "t1" "b") in
  Scheduler.run sched;
  let stats = Scheduler.stats sched in
  checki "commits" 2 stats.Scheduler.commits;
  checki "no deadlocks" 0 stats.Scheduler.deadlocks;
  checki "no rollbacks" 0 stats.Scheduler.rollbacks

let test_blocking_without_deadlock () =
  (* same entity, same order: pure waiting, FIFO grants *)
  let store = Store.of_list [ ("a", Value.int 0) ] in
  let sched = Scheduler.create store in
  let p name =
    Program.make ~name ~locals:[ ("v", Value.int 0) ]
      [ Program.lock_x "a"; Program.read "a" "v";
        Program.write "a" Expr.(var "v" + int 1); Program.unlock "a" ]
  in
  let ids = List.map (fun i -> Scheduler.submit sched (p (Printf.sprintf "t%d" i)))
      [ 0; 1; 2 ] in
  ignore ids;
  Scheduler.run sched;
  let stats = Scheduler.stats sched in
  checki "commits" 3 stats.Scheduler.commits;
  checki "no deadlocks" 0 stats.Scheduler.deadlocks;
  checkb "blocks happened" true (stats.Scheduler.blocks >= 2);
  checkb "a = 3" true (Value.equal (Store.get store "a") (Value.int 3))

let test_partial_beats_total_on_cost () =
  (* a long transaction that deadlocks on its LAST lock: partial rollback
     loses a couple of ops, total loses everything. *)
  let mk strategy =
    let store =
      Store.of_list
        (List.map (fun e -> (e, Value.int 0)) [ "w1"; "w2"; "w3"; "x"; "y" ])
    in
    let long =
      Program.make ~name:"long" ~locals:[ ("v", Value.int 0) ]
        ([ Program.lock_x "w1"; Program.read "w1" "v";
           Program.lock_x "w2"; Program.read "w2" "v";
           Program.lock_x "w3"; Program.read "w3" "v";
           Program.lock_x "x"; Program.read "x" "v" ]
        @ [ Program.lock_x "y" ])
    in
    let short =
      Program.make ~name:"short" ~locals:[ ("v", Value.int 0) ]
        [ Program.lock_x "y"; Program.read "y" "v"; Program.assign "v" (Expr.int 0);
          Program.assign "v" (Expr.int 1); Program.assign "v" (Expr.int 2);
          Program.assign "v" (Expr.int 3); Program.assign "v" (Expr.int 4);
          Program.assign "v" (Expr.int 5); Program.assign "v" (Expr.int 6);
          Program.lock_x "x" ]
    in
    let config =
      { Scheduler.default_config with strategy; policy = Policy.Min_cost }
    in
    let sched = Scheduler.create ~config store in
    let _ = Scheduler.submit sched long in
    let _ = Scheduler.submit sched short in
    Scheduler.run sched;
    Scheduler.stats sched
  in
  let total = mk Strategy.Total and mcs = mk Strategy.Mcs in
  checki "both commit (total)" 2 total.Scheduler.commits;
  checki "both commit (mcs)" 2 mcs.Scheduler.commits;
  checkb "partial loses strictly less" true
    (mcs.Scheduler.ops_lost < total.Scheduler.ops_lost)

let test_determinism () =
  let run () =
    let params =
      { Generator.default_params with n_entities = 12; zipf_theta = 0.8 }
    in
    let store = Generator.populate params in
    let programs = Generator.generate params ~seed:5 ~n:40 in
    let sched = Scheduler.create store in
    List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
    Scheduler.run sched;
    (Scheduler.stats sched, Store.snapshot store)
  in
  let s1, snap1 = run () and s2, snap2 = run () in
  checkb "identical stats" true (s1 = s2);
  checkb "identical final state" true
    (List.for_all2
       (fun (e1, v1) (e2, v2) -> e1 = e2 && Value.equal v1 v2)
       snap1 snap2)

let test_deadlock_hook_fires () =
  let fired = ref 0 in
  let store = Store.of_list [ ("a", Value.int 0); ("b", Value.int 0) ] in
  let sched = Scheduler.create store in
  Scheduler.set_deadlock_hook sched (fun ~requester:_ ~cycles ~decision ->
      incr fired;
      checkb "at least one cycle" true (cycles <> []);
      checkb "at least one victim" true (decision.Prb_core.Resolver.victims <> []));
  let _ = Scheduler.submit sched (transfer ~name:"ab" ~src:"a" ~dst:"b" ~amount:1) in
  let _ = Scheduler.submit sched (transfer ~name:"ba" ~src:"b" ~dst:"a" ~amount:1) in
  Scheduler.run sched;
  checkb "hook fired" true (!fired >= 1)

let test_exclusive_only_single_cycle () =
  (* Theorem 1: with exclusive locks only, a wait response creates at most
     one cycle — every resolution must see exactly one. *)
  let params =
    {
      Generator.default_params with
      n_entities = 10;
      zipf_theta = 0.9;
      read_fraction = 0.0;
      max_locks = 5;
    }
  in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed:11 ~n:60 in
  (* availability-rule locking: waits point at holders only, which is the
     paper's model and the premise of Theorem 1 (under fair queueing a
     waiter also waits for queued-ahead requests, adding edges). *)
  let config = { Scheduler.default_config with fair_locking = false } in
  let sched = Scheduler.create ~config store in
  Scheduler.set_deadlock_hook sched (fun ~requester:_ ~cycles ~decision:_ ->
      checki "exactly one cycle (Theorem 1)" 1 (List.length cycles));
  List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
  Scheduler.run sched;
  checkb "all committed" true (Scheduler.all_committed sched)

let test_shared_multi_cycles_happen () =
  (* With shared locks, some resolution should see several cycles at once
     (Section 3.2) — checked over a contended read-heavy workload. *)
  let params =
    {
      Generator.default_params with
      n_entities = 8;
      zipf_theta = 1.0;
      read_fraction = 0.5;
      max_locks = 6;
    }
  in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed:3 ~n:80 in
  let sched = Scheduler.create store in
  let multi = ref false in
  Scheduler.set_deadlock_hook sched (fun ~requester:_ ~cycles ~decision:_ ->
      if List.length cycles > 1 then multi := true);
  List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
  Scheduler.run sched;
  checkb "multi-cycle deadlock observed" true !multi

let test_store_untouched_by_rollbacks () =
  (* rollbacks must never write the store: install count = X-locked
     entities of committed transactions only *)
  let store = Store.of_list [ ("a", Value.int 0); ("b", Value.int 0) ] in
  let sched = Scheduler.create store in
  let _ = Scheduler.submit sched (transfer ~name:"ab" ~src:"a" ~dst:"b" ~amount:1) in
  let _ = Scheduler.submit sched (transfer ~name:"ba" ~src:"b" ~dst:"a" ~amount:1) in
  Scheduler.run sched;
  checki "2 txns x 2 installs" 4 (Store.install_count store)

let test_liveness_under_contention () =
  (* the ordered and youngest policies finish a hot workload for several
     seeds and strategies; serializability holds every time *)
  List.iter
    (fun seed ->
      List.iter
        (fun policy ->
          List.iter
            (fun strategy ->
              let params =
                {
                  Generator.default_params with
                  n_entities = 10;
                  zipf_theta = 0.9;
                  max_locks = 6;
                }
              in
              let store = Generator.populate params in
              let programs = Generator.generate params ~seed ~n:50 in
              let config =
                {
                  Scheduler.default_config with
                  strategy;
                  policy;
                  seed;
                  max_ticks = 200_000;
                }
              in
              let sched = Scheduler.create ~config store in
              List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
              Scheduler.run sched;
              checkb "all committed" true (Scheduler.all_committed sched);
              checkb "serializable" true
                (History.serializable (Scheduler.history sched)))
            [ Strategy.Total; Strategy.Mcs; Strategy.Sdg ])
        [ Policy.Ordered_min_cost; Policy.Youngest ])
    [ 1; 2; 3; 4 ]

let test_growing_victims_only () =
  (* no transaction is ever rolled back after it unlocked something:
     watch phases of victims through the hook *)
  let params =
    { Generator.default_params with n_entities = 8; zipf_theta = 1.0 }
  in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed:8 ~n:60 in
  let sched = Scheduler.create store in
  Scheduler.set_deadlock_hook sched (fun ~requester:_ ~cycles:_ ~decision ->
      List.iter
        (fun (v, _) ->
          checkb "victim still growing" true
            (Txn_state.phase (Scheduler.txn_state sched v) = Txn_state.Growing))
        decision.Prb_core.Resolver.victims);
  List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
  Scheduler.run sched;
  checkb "done" true (Scheduler.all_committed sched)

let test_timeout_intervention () =
  (* classic two-txn deadlock with no detection: only the timer saves it *)
  let store = Store.of_list [ ("a", Value.int 0); ("b", Value.int 0) ] in
  let config =
    { Scheduler.default_config with intervention = Scheduler.Timeout_abort 20 }
  in
  let sched = Scheduler.create ~config store in
  let _ = Scheduler.submit sched (transfer ~name:"ab" ~src:"a" ~dst:"b" ~amount:1) in
  let _ = Scheduler.submit sched (transfer ~name:"ba" ~src:"b" ~dst:"a" ~amount:2) in
  Scheduler.run sched;
  let s = Scheduler.stats sched in
  checki "both commit" 2 s.Scheduler.commits;
  checki "no detection ran" 0 s.Scheduler.deadlocks;
  checkb "a timeout fired" true (s.Scheduler.timeouts >= 1);
  checkb "stall lasted at least the timer" true (s.Scheduler.ticks >= 20);
  (* the aborted transaction's blocking episode must show up in the
     duration stats (it used to be dropped on the self-restart path) *)
  checkb "abort episode measured" true (s.Scheduler.max_blocked_ticks >= 20);
  checkb "durations accumulate" true
    (s.Scheduler.total_blocked_ticks >= s.Scheduler.max_blocked_ticks);
  checki "blocked table drained" 0 (Scheduler.n_blocked_tracked sched);
  checkb "serializable" true (History.serializable (Scheduler.history sched))

let test_prevention_interventions () =
  List.iter
    (fun intervention ->
      let params =
        { Generator.default_params with n_entities = 12; zipf_theta = 0.9 }
      in
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed:6 ~n:40 in
      let config = { Scheduler.default_config with intervention; seed = 6 } in
      let sched = Scheduler.create ~config store in
      List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
      Scheduler.run sched;
      let s = Scheduler.stats sched in
      checkb "all commit" true (Scheduler.all_committed sched);
      checki "prevention never detects" 0 s.Scheduler.deadlocks;
      checkb "preemptions happened" true (s.Scheduler.preventions > 0);
      checkb "serializable" true (History.serializable (Scheduler.history sched)))
    [ Scheduler.Wound_wait_c; Scheduler.Wait_die_c ]

let test_wound_wait_spares_elders () =
  (* under wound-wait the oldest transaction is never rolled back *)
  let params =
    { Generator.default_params with n_entities = 10; zipf_theta = 0.9 }
  in
  let store = Generator.populate params in
  let programs = Generator.generate params ~seed:2 ~n:30 in
  let config =
    { Scheduler.default_config with intervention = Scheduler.Wound_wait_c; seed = 2 }
  in
  let sched = Scheduler.create ~config store in
  let ids = List.map (fun p -> Scheduler.submit sched p) programs in
  Scheduler.run sched;
  let oldest = List.hd ids in
  checki "oldest never rolled back" 0
    (Txn_state.n_rollbacks (Scheduler.txn_state sched oldest))

let test_dirty_set_fixpoint_contended () =
  (* Regression for the dirty-set resolution fixpoint: a hot workload that
     forces many multi-round resolutions (rollback regrants re-blocking
     transactions mid-fixpoint) must still clear every deadlock, and the
     optional detection clock must observe the work without perturbing
     it. *)
  let params =
    {
      Generator.default_params with
      n_entities = 10;
      zipf_theta = 0.95;
      min_locks = 3;
      max_locks = 6;
    }
  in
  let run clock =
    let store = Generator.populate params in
    let programs = Generator.generate params ~seed:13 ~n:40 in
    let config = { Scheduler.default_config with seed = 13; clock } in
    let sched = Scheduler.create ~config store in
    List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
    Scheduler.run sched;
    sched
  in
  let sched = run None in
  let s = Scheduler.stats sched in
  checkb "all commit" true (Scheduler.all_committed sched);
  checkb "deadlocks actually happened" true (s.Scheduler.deadlocks > 0);
  checkb "serializable" true (History.serializable (Scheduler.history sched));
  checkb "every lock request was checked" true
    (Scheduler.check_calls sched > 0);
  checkb "deadlocks enumerated cycles" true
    (Scheduler.enumerate_calls sched > 0);
  checkb "no clock, no seconds" true
    (Scheduler.check_seconds sched = 0.
    && Scheduler.enumerate_seconds sched = 0.);
  (* deterministic fake clock: each reading advances by 1ms *)
  let ticks = ref 0. in
  let fake () = ticks := !ticks +. 0.001; !ticks in
  let timed = run (Some fake) in
  let t = Scheduler.stats timed in
  checki "clock does not change scheduling: commits" s.Scheduler.commits
    t.Scheduler.commits;
  checki "clock does not change scheduling: deadlocks" s.Scheduler.deadlocks
    t.Scheduler.deadlocks;
  checki "clock does not change scheduling: ticks" s.Scheduler.ticks
    t.Scheduler.ticks;
  checkb "instrumented time accumulated" true
    (Scheduler.check_seconds timed > 0.
    && Scheduler.enumerate_seconds timed > 0.)

let test_blocked_since_no_leak () =
  (* blocked_since entries must be dropped on commit, not only on abort,
     so the timeout bookkeeping cannot accumulate across a run *)
  List.iter
    (fun intervention ->
      let params =
        { Generator.default_params with n_entities = 8; zipf_theta = 0.9 }
      in
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed:3 ~n:30 in
      let config = { Scheduler.default_config with intervention; seed = 3 } in
      let sched = Scheduler.create ~config store in
      List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
      Scheduler.run sched;
      checkb "all commit" true (Scheduler.all_committed sched);
      checki "blocked-since table drained" 0 (Scheduler.n_blocked_tracked sched))
    [ Scheduler.Detect; Scheduler.Timeout_abort 25 ]

(* qcheck: any (seed, strategy, livelock-free policy) combination over a
   contended workload commits everything, stays serializable, and never
   lets a rollback touch the store. *)
let qcheck_serializability_sweep =
  QCheck.Test.make ~name:"runs complete serializably for all configurations"
    ~count:40
    QCheck.(triple small_int (int_bound 3) (int_bound 1))
    (fun (seed, strat_i, pol_i) ->
      let strategy =
        List.nth
          [ Strategy.Total; Strategy.Mcs; Strategy.Sdg; Strategy.Sdg_k 2 ]
          strat_i
      in
      let policy =
        List.nth [ Policy.Ordered_min_cost; Policy.Youngest ] pol_i
      in
      let params =
        {
          Generator.default_params with
          n_entities = 14;
          zipf_theta = 0.8;
          max_locks = 5;
        }
      in
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed ~n:30 in
      let config =
        { Scheduler.default_config with strategy; policy; seed;
          max_ticks = 150_000 }
      in
      let sched = Scheduler.create ~config store in
      List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
      Scheduler.run sched;
      Scheduler.all_committed sched
      && History.serializable (Scheduler.history sched))

(* Deferred detection (DESIGN.md Section 11): cycles accrete between
   scheduled sweeps instead of being resolved at block time, and one pass
   then clears all of them. *)
let test_deferred_sweep_batches_cycles () =
  let module DP = Prb_core.Detection_policy in
  let module Waits_for = Prb_wfg.Waits_for in
  let store =
    Store.of_list
      (List.map (fun e -> (e, Value.int 100)) [ "a"; "b"; "c"; "d" ])
  in
  let config =
    { Scheduler.default_config with detection = DP.Periodic 16 }
  in
  let sched = Scheduler.create ~config store in
  let rounds = ref [] in
  Scheduler.set_deadlock_hook sched (fun ~requester:_ ~cycles ~decision:_ ->
      rounds := (Scheduler.now sched, List.length cycles) :: !rounds);
  (* two disjoint deadlocks, both fully formed within a few ticks *)
  let _ = Scheduler.submit sched (transfer ~name:"ab" ~src:"a" ~dst:"b" ~amount:1) in
  let _ = Scheduler.submit sched (transfer ~name:"ba" ~src:"b" ~dst:"a" ~amount:2) in
  let _ = Scheduler.submit sched (transfer ~name:"cd" ~src:"c" ~dst:"d" ~amount:3) in
  let _ = Scheduler.submit sched (transfer ~name:"dc" ~src:"d" ~dst:"c" ~amount:4) in
  Scheduler.run sched;
  let s = Scheduler.stats sched in
  checkb "all commit" true (Scheduler.all_committed sched);
  checkb "both cycles resolved" true (s.Scheduler.deadlocks >= 2);
  checkb "a scheduled sweep ran" true (s.Scheduler.detection_passes >= 1);
  (* deferral: nothing resolved before the first period boundary, even
     though both cycles were closed almost immediately *)
  List.iter
    (fun (tick, _) -> checkb "resolution waited for the sweep" true (tick >= 16))
    !rounds;
  (* removal left nothing behind: no residual waits, no orphaned locks *)
  checkb "waits-for graph drained" true
    (Waits_for.edges (Scheduler.waits_for sched) = []);
  checkb "no orphaned locks" true
    (List.for_all
       (fun id -> Prb_lock.Lock_table.n_held (Scheduler.lock_table sched) id = 0)
       (Scheduler.all_txns sched));
  checkb "serializable" true (History.serializable (Scheduler.history sched))

(* qcheck: every deferred policy, on a contended workload with the
   starvation guard armed, still commits everything, leaves the waits-for
   graph empty and the lock table clean, and keeps the worst-hit
   transaction within the guard's bound (unless a fallback was recorded —
   the one case the guard is allowed to be overridden). *)
let qcheck_deferred_liveness =
  let module DP = Prb_core.Detection_policy in
  let module Waits_for = Prb_wfg.Waits_for in
  QCheck.Test.make
    ~name:"deferred detection leaves no cycles, orphans or starvation"
    ~count:30
    QCheck.(triple small_int (int_bound 2) (int_bound 1))
    (fun (seed, pol_i, strat_i) ->
      let detection = List.nth DP.all_deferred pol_i in
      let strategy = List.nth [ Strategy.Sdg; Strategy.Total ] strat_i in
      let params =
        {
          Generator.default_params with
          n_entities = 14;
          zipf_theta = 0.8;
          max_locks = 5;
        }
      in
      let store = Generator.populate params in
      let programs = Generator.generate params ~seed ~n:30 in
      let config =
        {
          Scheduler.default_config with
          detection;
          starvation_limit = Some 6;
          strategy;
          seed;
          max_ticks = 500_000;
        }
      in
      let sched = Scheduler.create ~config store in
      List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
      Scheduler.run sched;
      let s = Scheduler.stats sched in
      Scheduler.all_committed sched
      && History.serializable (Scheduler.history sched)
      && Waits_for.edges (Scheduler.waits_for sched) = []
      && List.for_all
           (fun id ->
             Prb_lock.Lock_table.n_held (Scheduler.lock_table sched) id = 0)
           (Scheduler.all_txns sched)
      && (s.Scheduler.starvation_fallbacks > 0
         || s.Scheduler.max_txn_rollbacks <= 6)
      && Scheduler.n_blocked_tracked sched = 0)

(* qcheck: money conservation under concurrent transfers with deadlocks,
   for every strategy. *)
let qcheck_conservation =
  QCheck.Test.make ~name:"transfers conserve the total across rollbacks"
    ~count:40
    QCheck.(pair small_int (int_bound 3))
    (fun (seed, strat_i) ->
      let strategy =
        List.nth
          [ Strategy.Total; Strategy.Mcs; Strategy.Sdg; Strategy.Sdg_k 1 ]
          strat_i
      in
      let module Scenarios = Prb_workload.Scenarios in
      let module Rng = Prb_util.Rng in
      let n_accounts = 6 in
      let store = Scenarios.bank_store ~n_accounts ~balance:500 in
      let rng = Rng.make seed in
      let programs =
        List.init 25 (fun i ->
            let src = Rng.int rng n_accounts in
            let dst = (src + 1 + Rng.int rng (n_accounts - 1)) mod n_accounts in
            Scenarios.transfer
              ~name:(Printf.sprintf "x%d" i)
              ~from_acct:src ~to_acct:dst
              ~amount:(1 + Rng.int rng 40))
      in
      let config = { Scheduler.default_config with strategy; seed } in
      let sched = Scheduler.create ~config store in
      List.iter (fun p -> ignore (Scheduler.submit sched p)) programs;
      Scheduler.run sched;
      Scheduler.all_committed sched
      && Store.Constraint.holds
           (Scenarios.balance_invariant ~n_accounts ~balance:500)
           store)

let () =
  Alcotest.run "prb_scheduler"
    [
      ( "basics",
        [
          Alcotest.test_case "deadlock resolved (all strategies)" `Quick
            test_deadlock_resolved_all_strategies;
          Alcotest.test_case "no conflict" `Quick test_no_conflict_no_deadlock;
          Alcotest.test_case "blocking without deadlock" `Quick
            test_blocking_without_deadlock;
          Alcotest.test_case "partial beats total" `Quick test_partial_beats_total_on_cost;
          Alcotest.test_case "deterministic" `Quick test_determinism;
          Alcotest.test_case "hook fires" `Quick test_deadlock_hook_fires;
          Alcotest.test_case "store untouched by rollbacks" `Quick
            test_store_untouched_by_rollbacks;
        ] );
      ( "structure",
        [
          Alcotest.test_case "Theorem 1: single cycle (X only)" `Quick
            test_exclusive_only_single_cycle;
          Alcotest.test_case "Section 3.2: multi-cycle with S locks" `Quick
            test_shared_multi_cycles_happen;
          Alcotest.test_case "victims are growing" `Quick test_growing_victims_only;
          Alcotest.test_case "dirty-set fixpoint under contention" `Quick
            test_dirty_set_fixpoint_contended;
          Alcotest.test_case "blocked-since table drains" `Quick
            test_blocked_since_no_leak;
          Alcotest.test_case "deferred sweep batches cycles" `Quick
            test_deferred_sweep_batches_cycles;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "hot workload completes" `Slow
            test_liveness_under_contention;
        ] );
      ( "interventions",
        [
          Alcotest.test_case "timeout abort" `Quick test_timeout_intervention;
          Alcotest.test_case "wound-wait / wait-die" `Quick
            test_prevention_interventions;
          Alcotest.test_case "wound-wait spares elders" `Quick
            test_wound_wait_spares_elders;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_serializability_sweep;
          QCheck_alcotest.to_alcotest qcheck_deferred_liveness;
          QCheck_alcotest.to_alcotest qcheck_conservation;
        ] );
    ]
