(* Tests for Prb_util: rng, zipf, stats, heap, dense, table. *)

module Rng = Prb_util.Rng
module Zipf = Prb_util.Zipf
module Stats = Prb_util.Stats
module Heap = Prb_util.Heap
module Dense = Prb_util.Dense
module Table = Prb_util.Table

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.make 42 and b = Rng.make 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.make 1 and b = Rng.make 2 in
  checkb "different seeds diverge" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.make 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    checkb "in [0,10)" true (v >= 0 && v < 10)
  done

let test_rng_int_in_bounds () =
  let rng = Rng.make 7 in
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    checkb "in [-5,5]" true (v >= -5 && v <= 5)
  done

let test_rng_int_invalid () =
  let rng = Rng.make 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_float_bounds () =
  let rng = Rng.make 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    checkb "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let a = Rng.make 5 in
  let b = Rng.split a in
  (* After splitting, advancing [b] must not disturb [a]'s stream
     relative to a replay. *)
  let a' = Rng.make 5 in
  let _ = Rng.split a' in
  ignore (Rng.bits64 b);
  check Alcotest.int64 "parent stream unaffected by child" (Rng.bits64 a)
    (Rng.bits64 a')

let test_rng_copy () =
  let a = Rng.make 11 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues the stream" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_uniformity () =
  let rng = Rng.make 123 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      checkb "bucket within 10% of expectation" true
        (abs (c - (n / 10)) < n / 100))
    buckets

let test_rng_chance_extremes () =
  let rng = Rng.make 3 in
  checkb "p=0 never" false (Rng.chance rng 0.0);
  checkb "p=1 always" true (Rng.chance rng 1.0)

let test_rng_shuffle_permutation () =
  let rng = Rng.make 17 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick_member () =
  let rng = Rng.make 23 in
  let a = [| 2; 4; 8 |] in
  for _ = 1 to 50 do
    checkb "pick returns a member" true (Array.mem (Rng.pick rng a) a)
  done

(* --- Zipf --- *)

let test_zipf_uniform_theta0 () =
  let z = Zipf.make ~n:4 ~theta:0.0 in
  for i = 0 to 3 do
    check (Alcotest.float 1e-9) "uniform probability" 0.25 (Zipf.probability z i)
  done

let test_zipf_skew_orders_ranks () =
  let z = Zipf.make ~n:100 ~theta:1.0 in
  for i = 0 to 98 do
    checkb "monotone decreasing" true
      (Zipf.probability z i >= Zipf.probability z (i + 1))
  done

let test_zipf_probabilities_sum_to_one () =
  let z = Zipf.make ~n:37 ~theta:0.7 in
  let total = ref 0.0 in
  for i = 0 to 36 do
    total := !total +. Zipf.probability z i
  done;
  check (Alcotest.float 1e-9) "sums to 1" 1.0 !total

let test_zipf_sample_range_and_skew () =
  let z = Zipf.make ~n:10 ~theta:1.2 in
  let rng = Rng.make 99 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let i = Zipf.sample z rng in
    checkb "in range" true (i >= 0 && i < 10);
    counts.(i) <- counts.(i) + 1
  done;
  checkb "rank 0 hottest" true (counts.(0) > counts.(9))

let test_zipf_empirical_matches_theory () =
  let z = Zipf.make ~n:5 ~theta:0.8 in
  let rng = Rng.make 4 in
  let n = 50_000 in
  let counts = Array.make 5 0 in
  for _ = 1 to n do
    let i = Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  for i = 0 to 4 do
    let expected = Zipf.probability z i *. float_of_int n in
    checkb "within 5%" true
      (Float.abs (float_of_int counts.(i) -. expected) < 0.05 *. float_of_int n)
  done

let test_zipf_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Zipf.make: n must be positive")
    (fun () -> ignore (Zipf.make ~n:0 ~theta:1.0))

(* --- Stats --- *)

let test_stats_empty () =
  let s = Stats.create () in
  checki "count" 0 (Stats.count s);
  checkb "mean nan" true (Float.is_nan (Stats.mean s))

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  checki "count" 4 (Stats.count s);
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean s);
  check (Alcotest.float 1e-9) "total" 10.0 (Stats.total s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.min_value s);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.max_value s);
  check (Alcotest.float 1e-9) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_merge_equals_combined () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  List.iter
    (fun x ->
      Stats.add all x;
      if x < 3.0 then Stats.add a x else Stats.add b x)
    [ 1.0; 2.0; 3.0; 4.0; 5.0; 6.5 ];
  let m = Stats.merge a b in
  checki "count" (Stats.count all) (Stats.count m);
  check (Alcotest.float 1e-9) "mean" (Stats.mean all) (Stats.mean m);
  check (Alcotest.float 1e-6) "variance" (Stats.variance all) (Stats.variance m)

let test_stats_percentile () =
  let data = [| 10.0; 20.0; 30.0; 40.0 |] in
  check (Alcotest.float 1e-9) "p0" 10.0 (Stats.percentile data 0.0);
  check (Alcotest.float 1e-9) "p100" 40.0 (Stats.percentile data 100.0);
  check (Alcotest.float 1e-9) "median interpolates" 25.0 (Stats.median data)

let test_stats_percentile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.percentile: empty data")
    (fun () -> ignore (Stats.percentile [||] 50.0))

(* --- Heap --- *)

let test_heap_ordering () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h ~priority:p v)
    [ (5, "e"); (1, "a"); (3, "c"); (2, "b"); (4, "d") ];
  let order = List.init 5 (fun _ -> match Heap.pop h with
    | Some (_, v) -> v | None -> assert false) in
  check Alcotest.(list string) "sorted by priority" [ "a"; "b"; "c"; "d"; "e" ] order

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~priority:7 v) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> match Heap.pop h with
    | Some (_, v) -> v | None -> assert false) in
  check Alcotest.(list string) "ties pop in insertion order" [ "x"; "y"; "z" ] order

let test_heap_empty () =
  let h : int Heap.t = Heap.create () in
  checkb "empty" true (Heap.is_empty h);
  checkb "pop none" true (Heap.pop h = None);
  checkb "peek none" true (Heap.peek h = None)

let test_heap_interleaved () =
  let h = Heap.create () in
  Heap.push h ~priority:10 1;
  Heap.push h ~priority:5 2;
  checkb "peek min" true (Heap.peek h = Some (5, 2));
  checkb "pop min" true (Heap.pop h = Some (5, 2));
  Heap.push h ~priority:1 3;
  checkb "pop new min" true (Heap.pop h = Some (1, 3));
  checkb "pop last" true (Heap.pop h = Some (10, 1));
  checkb "now empty" true (Heap.is_empty h)

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~priority:1 "a";
  Heap.push h ~priority:2 "b";
  Heap.clear h;
  checkb "empty after clear" true (Heap.is_empty h);
  checki "size 0" 0 (Heap.size h);
  Heap.push h ~priority:5 "c";
  checkb "usable after clear" true (Heap.pop h = Some (5, "c"))

let test_stats_helpers () =
  let s = Stats.create () in
  Stats.add_int s 3;
  Stats.add_int s 5;
  check (Alcotest.float 1e-9) "add_int feeds mean" 4.0 (Stats.mean s);
  check (Alcotest.float 1e-9) "mean_of" 2.0 (Stats.mean_of [ 1.0; 2.0; 3.0 ]);
  checkb "mean_of empty is nan" true (Float.is_nan (Stats.mean_of []))

let test_heap_qcheck_sorted_drain =
  QCheck.Test.make ~name:"heap drains in nondecreasing priority" ~count:200
    QCheck.(list (int_bound 1000))
    (fun priorities ->
      let h = Heap.create () in
      List.iteri (fun i p -> Heap.push h ~priority:p i) priorities;
      let rec drain last =
        match Heap.pop h with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain min_int)

(* --- Dense --- *)

let test_interner_contiguous () =
  let it = Dense.Interner.create () in
  checki "first" 0 (Dense.Interner.intern it "a");
  checki "second" 1 (Dense.Interner.intern it "b");
  checki "re-intern stable" 0 (Dense.Interner.intern it "a");
  checki "third" 2 (Dense.Interner.intern it "c");
  checki "count" 3 (Dense.Interner.count it);
  check Alcotest.string "reverse" "b" (Dense.Interner.name it 1);
  checkb "find existing" true (Dense.Interner.find_opt it "c" = Some 2);
  checkb "find missing" true (Dense.Interner.find_opt it "z" = None)

let test_slots_lifo_recycle () =
  let s = Dense.Slots.create () in
  let a = Dense.Slots.alloc s in
  let b = Dense.Slots.alloc s in
  Dense.Slots.release s a;
  (* LIFO: the most recently released slot is reused first *)
  checki "recycled" a (Dense.Slots.alloc s);
  checkb "b still live" true (Dense.Slots.in_use s b);
  checki "capacity" 2 (Dense.Slots.capacity s)

let test_slots_stale_handle () =
  let s = Dense.Slots.create () in
  let a = Dense.Slots.alloc s in
  let h = Dense.Slots.handle s a in
  checkb "live handle valid" true (Dense.Slots.handle_valid s h);
  Dense.Slots.release s a;
  checkb "released handle invalid" false (Dense.Slots.handle_valid s h);
  let a' = Dense.Slots.alloc s in
  checki "slot recycled" a a';
  (* the recycled incarnation gets a fresh handle; the old one stays dead *)
  checkb "stale handle stays invalid" false (Dense.Slots.handle_valid s h);
  checkb "new handle valid" true
    (Dense.Slots.handle_valid s (Dense.Slots.handle s a'))

(* qcheck: under random alloc/release traffic no two live slots alias,
   counters stay consistent, and no stale handle ever validates — the
   property the schedulers' dense id spaces rely on. *)
let test_slots_qcheck_no_aliasing =
  QCheck.Test.make ~name:"slots: live ids distinct, stale handles dead"
    ~count:300
    QCheck.(list (pair bool (int_bound 7)))
    (fun script ->
      let s = Dense.Slots.create () in
      let live = ref [] (* slot ids, distinct *)
      and dead_handles = ref [] in
      List.iter
        (fun (alloc, k) ->
          if alloc || !live = [] then begin
            let id = Dense.Slots.alloc s in
            if List.mem id !live then failwith "alias: alloc returned live id";
            live := id :: !live
          end
          else begin
            let id = List.nth !live (k mod List.length !live) in
            dead_handles := Dense.Slots.handle s id :: !dead_handles;
            Dense.Slots.release s id;
            live := List.filter (fun x -> x <> id) !live
          end)
        script;
      List.for_all (fun id -> Dense.Slots.in_use s id) !live
      && Dense.Slots.n_live s = List.length !live
      && List.for_all
           (fun h -> not (Dense.Slots.handle_valid s h))
           !dead_handles)

(* qcheck: Pqueue pops in exactly Heap's order — same priorities, same
   tie-break by push sequence — so the scheduler's event loop is
   order-identical on either queue. Pops are interleaved with pushes to
   exercise ties created across drain boundaries. *)
let test_pqueue_qcheck_matches_heap =
  QCheck.Test.make ~name:"dense pqueue pops in Heap order" ~count:300
    QCheck.(list (pair (option (int_bound 20)) (int_bound 1000)))
    (fun script ->
      let q = Dense.Pqueue.create () and h = Heap.create () in
      let seq = ref 0 in
      let pops_agree () =
        match Heap.pop h with
        | None -> not (Dense.Pqueue.pop q)
        | Some (prio, (tag, a, b)) ->
            Dense.Pqueue.pop q
            && Dense.Pqueue.cur_prio q = prio
            && Dense.Pqueue.cur_tag q = tag
            && Dense.Pqueue.cur_a q = a
            && Dense.Pqueue.cur_b q = b
      in
      List.for_all
        (fun (pop, prio) ->
          if pop = None then begin
            let tag = !seq mod 6 and a = !seq - 500 and b = !seq * 3 in
            incr seq;
            Dense.Pqueue.push q ~priority:prio ~tag ~a ~b;
            Heap.push h ~priority:prio (tag, a, b);
            Dense.Pqueue.size q = Heap.size h
          end
          else pops_agree ())
        script
      &&
      (* drain the rest; the final iteration checks both report empty *)
      let rec drain () =
        if Heap.is_empty h then not (Dense.Pqueue.pop q)
        else pops_agree () && drain ()
      in
      drain ())

(* --- Table --- *)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
  in
  scan 0

let test_table_renders () =
  let t = Table.create ~title:"demo" [ ("k", Table.Left); ("v", Table.Right) ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  checkb "contains title" true (String.length s > 4 && String.sub s 0 4 = "demo");
  checkb "alpha present" true (contains s "alpha");
  checkb "right-aligned 22" true (contains s "| 22 |")

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "1"; "2" ])

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "pct" "12.5%" (Table.cell_pct 0.125);
  Alcotest.(check string) "ratio" "2.50x" (Table.cell_ratio 2.5);
  Alcotest.(check string) "nan" "-" (Table.cell_float nan)

let () =
  Alcotest.run "prb_util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in_bounds;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "uniformity" `Slow test_rng_uniformity;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick member" `Quick test_rng_pick_member;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "theta 0 uniform" `Quick test_zipf_uniform_theta0;
          Alcotest.test_case "skew monotone" `Quick test_zipf_skew_orders_ranks;
          Alcotest.test_case "probabilities sum" `Quick test_zipf_probabilities_sum_to_one;
          Alcotest.test_case "sample range and skew" `Slow test_zipf_sample_range_and_skew;
          Alcotest.test_case "empirical matches theory" `Slow test_zipf_empirical_matches_theory;
          Alcotest.test_case "invalid" `Quick test_zipf_invalid;
        ] );
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "merge" `Quick test_stats_merge_equals_combined;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "percentile invalid" `Quick test_stats_percentile_invalid;
          Alcotest.test_case "helpers" `Quick test_stats_helpers;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "fifo ties" `Quick test_heap_fifo_ties;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "interleaved" `Quick test_heap_interleaved;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          QCheck_alcotest.to_alcotest test_heap_qcheck_sorted_drain;
        ] );
      ( "dense",
        [
          Alcotest.test_case "interner contiguous" `Quick test_interner_contiguous;
          Alcotest.test_case "slots lifo recycle" `Quick test_slots_lifo_recycle;
          Alcotest.test_case "slots stale handle" `Quick test_slots_stale_handle;
          QCheck_alcotest.to_alcotest test_slots_qcheck_no_aliasing;
          QCheck_alcotest.to_alcotest test_pqueue_qcheck_matches_heap;
        ] );
      ( "table",
        [
          Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "cell formats" `Quick test_table_cells;
        ] );
    ]
