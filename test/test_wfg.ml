(* Tests for Prb_wfg.Waits_for: the labelled concurrency graph. *)

module W = Prb_wfg.Waits_for

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_set_and_clear_wait () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2; 3 ] "a";
  checkb "blocked" true (W.is_blocked g 1);
  checkb "waits" true (W.waits g 1 = [ (2, "a"); (3, "a") ]);
  checkb "in-edges of 2" true (W.waiting_on g 2 = [ (1, "a") ]);
  W.clear_wait g 1;
  checkb "cleared" false (W.is_blocked g 1);
  checkb "no edges" true (W.edges g = [])

let test_set_wait_replaces () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2 ] "a";
  W.set_wait g ~waiter:1 ~holders:[ 3 ] "b";
  checkb "old edge gone" true (W.waits g 1 = [ (3, "b") ])

let test_set_wait_self_rejected () =
  let g = W.create () in
  Alcotest.check_raises "self wait"
    (Invalid_argument "Waits_for.set_wait: waiter among holders") (fun () ->
      W.set_wait g ~waiter:1 ~holders:[ 1 ] "a")

let test_remove_txn () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2 ] "a";
  W.set_wait g ~waiter:3 ~holders:[ 1 ] "b";
  W.remove_txn g 1;
  checkb "vertex gone" false (List.mem 1 (W.txns g));
  checkb "incident edges gone" true (W.edges g = [])

let test_would_deadlock_direct () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2 ] "a";
  (* 2 blocking on 1 closes the cycle *)
  checkb "deadlock predicted" true (W.would_deadlock g ~waiter:2 ~holders:[ 1 ]);
  checkb "no deadlock on fresh" false (W.would_deadlock g ~waiter:2 ~holders:[ 3 ])

let test_would_deadlock_transitive () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2 ] "a";
  W.set_wait g ~waiter:2 ~holders:[ 3 ] "b";
  checkb "transitive cycle" true (W.would_deadlock g ~waiter:3 ~holders:[ 1 ]);
  checkb "chain extension fine" false (W.would_deadlock g ~waiter:4 ~holders:[ 1 ])

let test_cycles_through () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2; 3 ] "f";
  W.set_wait g ~waiter:2 ~holders:[ 1 ] "a";
  W.set_wait g ~waiter:3 ~holders:[ 1 ] "b";
  checki "two cycles through 1" 2 (List.length (W.cycles_through g 1));
  checki "one cycle through 2" 1 (List.length (W.cycles_through g 2))

let test_exclusive_forest () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2 ] "a";
  W.set_wait g ~waiter:3 ~holders:[ 2 ] "b";
  checkb "forest" true (W.is_exclusive_forest g);
  W.set_wait g ~waiter:4 ~holders:[ 5; 6 ] "c";
  checkb "shared wait breaks forest shape" false (W.is_exclusive_forest g)

let test_pp_and_dot () =
  let g = W.create () in
  W.set_wait g ~waiter:1 ~holders:[ 2 ] "a";
  let rendered = Fmt.str "%a" W.pp g in
  checkb "pp mentions edge" true (rendered = "T1 -a-> T2");
  let dot = W.to_dot g in
  checkb "dot has arrow" true
    (let needle = "T1 -> T2" in
     let rec scan i =
       i + String.length needle <= String.length dot
       && (String.sub dot i (String.length needle) = needle || scan (i + 1))
     in
     scan 0)

(* qcheck: would_deadlock(waiter, holders) is equivalent to adding the
   edges and finding a cycle through the waiter. *)
let qcheck_would_deadlock_oracle =
  QCheck.Test.make ~name:"would_deadlock matches add-and-check oracle"
    ~count:300
    QCheck.(
      pair
        (list (pair (int_range 0 5) (int_range 0 5)))
        (pair (int_range 0 5) (list (int_range 0 5))))
    (fun (edges, (waiter, holders)) ->
      (* install a consistent waits-for state: one entity per waiter *)
      let g = W.create () in
      let by_waiter = Hashtbl.create 8 in
      List.iter
        (fun (w, h) ->
          if w <> h then
            let hs = try Hashtbl.find by_waiter w with Not_found -> [] in
            Hashtbl.replace by_waiter w (h :: hs))
        edges;
      Hashtbl.iter
        (fun w hs -> W.set_wait g ~waiter:w ~holders:hs "e")
        by_waiter;
      let holders =
        List.sort_uniq compare (List.filter (fun h -> h <> waiter) holders)
      in
      QCheck.assume (holders <> []);
      QCheck.assume (not (W.is_blocked g waiter));
      let predicted = W.would_deadlock g ~waiter ~holders in
      W.set_wait g ~waiter ~holders "q";
      let actual = W.cycles_through g waiter <> [] in
      predicted = actual)

(* qcheck: the dense (slot-indexed adjacency) graph vs the retained
   hashtable reference — identical random set/clear/remove traffic, then
   every observable compared after every step, including the cycle
   enumeration the resolver consumes. *)
let qcheck_dense_vs_reference =
  let module R = Prb_wfg.Waits_for_ref in
  QCheck.Test.make ~name:"dense graph matches retained reference" ~count:300
    QCheck.(
      list
        (triple (int_bound 3) (int_range 0 5) (list_of_size Gen.(0 -- 3) (int_range 0 5))))
    (fun script ->
      let g = W.create () and r = R.create () in
      let ids = List.init 6 Fun.id in
      let agree () =
        W.txns g = R.txns r
        && W.edges g = R.edges r
        && W.is_exclusive_forest g = R.is_exclusive_forest r
        && List.for_all
             (fun i ->
               W.waits g i = R.waits r i
               && W.waiting_on g i = R.waiting_on r i
               && W.is_blocked g i = R.is_blocked r i
               && W.cycles_through g i = R.cycles_through r i)
             ids
        && W.on_cycle_from g ids = R.on_cycle_from r ids
      in
      List.for_all
        (fun (op, id, others) ->
          (match op with
          | 0 ->
              let holders =
                List.sort_uniq compare (List.filter (fun h -> h <> id) others)
              in
              if holders <> [] && not (W.is_blocked g id) then begin
                W.set_wait g ~waiter:id ~holders "e";
                R.set_wait r ~waiter:id ~holders "e"
              end
          | 1 ->
              W.clear_wait g id;
              R.clear_wait r id
          | 2 ->
              W.remove_txn g id;
              R.remove_txn r id
          | _ ->
              W.add_txn g id;
              R.add_txn r id);
          (* would_deadlock probes are pure; compare on the same args *)
          let holders =
            List.sort_uniq compare (List.filter (fun h -> h <> id) others)
          in
          (holders = []
          || W.is_blocked g id
          || W.would_deadlock g ~waiter:id ~holders
             = R.would_deadlock r ~waiter:id ~holders)
          && agree ())
        script)

(* qcheck: the Pearce–Kelly dynamic order under adversarial churn. The
   script allows everything the schedulers do and more: re-blocking an
   already blocked waiter (edge replacement), closing cycles and leaving
   them live across steps (the order freezes and queries must fall back),
   dissolving them again by clears/removes (the violation count must
   return to zero and the bounded fast path must be exact again). Every
   observable is compared against the Digraph-backed reference after
   every step, including the cycle enumerations the resolver consumes and
   a full-census acyclicity probe that would catch a violation counter
   stuck at zero (fast path answering from a stale order) or above it
   (needless fallback is invisible here, but a corrupted order is not
   once the count drops back). *)
let qcheck_dynamic_order_vs_reference =
  let module R = Prb_wfg.Waits_for_ref in
  QCheck.Test.make ~name:"dynamic topological order matches reference"
    ~count:200
    QCheck.(
      list_of_size Gen.(0 -- 25)
        (triple (int_bound 3) (int_range 0 9)
           (list_of_size Gen.(0 -- 2) (int_range 0 9))))
    (fun script ->
      let g = W.create () and r = R.create () in
      let ids = List.init 10 Fun.id in
      let agree step =
        W.txns g = R.txns r
        && W.edges g = R.edges r
        && W.is_exclusive_forest g = R.is_exclusive_forest r
        && W.on_cycle_from g ids = R.on_cycle_from r ids
        && List.for_all
             (fun i ->
               W.waits g i = R.waits r i
               && W.waiting_on g i = R.waiting_on r i
               && W.is_blocked g i = R.is_blocked r i
               && W.cycles_through ~limit:64 g i
                  = R.cycles_through ~limit:64 r i
               && (* pure probe: every id as hypothetical waiter on the
                     step's operand set *)
               let holders =
                 List.filter (fun h -> h <> i) (step : int list)
               in
               holders = []
               || W.would_deadlock g ~waiter:i ~holders
                  = R.would_deadlock r ~waiter:i ~holders)
             ids
      in
      List.for_all
        (fun (op, id, others) ->
          (match op with
          | 0 ->
              let holders =
                List.sort_uniq compare (List.filter (fun h -> h <> id) others)
              in
              if holders <> [] then begin
                (* no is_blocked guard: replacement re-blocks too *)
                W.set_wait g ~waiter:id ~holders "e";
                R.set_wait r ~waiter:id ~holders "e"
              end
          | 1 ->
              W.clear_wait g id;
              R.clear_wait r id
          | 2 ->
              W.remove_txn g id;
              R.remove_txn r id
          | _ ->
              W.add_txn g id;
              R.add_txn r id);
          agree others)
        script)

let () =
  Alcotest.run "prb_wfg"
    [
      ( "waits_for",
        [
          Alcotest.test_case "set/clear" `Quick test_set_and_clear_wait;
          Alcotest.test_case "replace" `Quick test_set_wait_replaces;
          Alcotest.test_case "self rejected" `Quick test_set_wait_self_rejected;
          Alcotest.test_case "remove txn" `Quick test_remove_txn;
          Alcotest.test_case "would_deadlock direct" `Quick test_would_deadlock_direct;
          Alcotest.test_case "would_deadlock transitive" `Quick
            test_would_deadlock_transitive;
          Alcotest.test_case "cycles through" `Quick test_cycles_through;
          Alcotest.test_case "forest shape" `Quick test_exclusive_forest;
          Alcotest.test_case "pp / dot" `Quick test_pp_and_dot;
          QCheck_alcotest.to_alcotest qcheck_would_deadlock_oracle;
          QCheck_alcotest.to_alcotest qcheck_dense_vs_reference;
          QCheck_alcotest.to_alcotest qcheck_dynamic_order_vs_reference;
        ] );
    ]
