(* Tests for Prb_graph: digraph algorithms, articulation points, cut
   sets — including qcheck properties against brute-force oracles. *)

module Digraph = Prb_graph.Digraph
module Ugraph = Prb_graph.Ugraph
module Cutset = Prb_graph.Cutset

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkil = Alcotest.(check (list int))

(* --- Digraph basics --- *)

let test_digraph_edges () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 1 3;
  Digraph.add_edge g 2 3;
  checkb "mem" true (Digraph.mem_edge g 1 2);
  checkb "not mem reversed" false (Digraph.mem_edge g 2 1);
  checkil "succ" [ 2; 3 ] (Digraph.succ g 1);
  checkil "pred" [ 1; 2 ] (Digraph.pred g 3);
  checki "n_edges" 3 (Digraph.n_edges g);
  Digraph.remove_edge g 1 2;
  checkb "removed" false (Digraph.mem_edge g 1 2);
  checki "n_edges after remove" 2 (Digraph.n_edges g)

let test_digraph_remove_vertex () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  Digraph.add_edge g 3 1;
  Digraph.remove_vertex g 2;
  checkb "vertex gone" false (Digraph.mem_vertex g 2);
  checkil "succ 1 empty" [] (Digraph.succ g 1);
  checkil "pred 3 empty" [] (Digraph.pred g 3);
  checkb "no cycle left" false (Digraph.has_cycle g)

let test_digraph_idempotent_ops () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 1 2;
  checki "simple graph" 1 (Digraph.n_edges g);
  Digraph.add_vertex g 1;
  checki "vertices stable" 2 (Digraph.n_vertices g);
  Digraph.remove_edge g 1 2;
  Digraph.remove_edge g 1 2;
  checki "remove idempotent" 0 (Digraph.n_edges g)

let test_digraph_copy_isolated () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  let h = Digraph.copy g in
  Digraph.add_edge h 2 1;
  checkb "copy has new edge" true (Digraph.mem_edge h 2 1);
  checkb "original untouched" false (Digraph.mem_edge g 2 1)

(* --- Cycles and reachability --- *)

let test_cycle_detection () =
  let g = Digraph.create () in
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 3;
  checkb "acyclic" false (Digraph.has_cycle g);
  Digraph.add_edge g 3 1;
  checkb "cyclic" true (Digraph.has_cycle g)

let test_self_loop_cycle () =
  let g = Digraph.create () in
  Digraph.add_edge g 5 5;
  checkb "self-loop is a cycle" true (Digraph.has_cycle g);
  checkb "cycle through 5" true (Digraph.cycle_through g 5 = Some [ 5 ])

let test_find_cycle_valid () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v)
    [ (1, 2); (2, 3); (3, 4); (4, 2); (1, 5) ];
  match Digraph.find_cycle g with
  | None -> Alcotest.fail "cycle expected"
  | Some cycle ->
      (* Every consecutive pair (and the wrap) must be an edge. *)
      let n = List.length cycle in
      checkb "non-empty" true (n > 0);
      List.iteri
        (fun i u ->
          let v = List.nth cycle ((i + 1) mod n) in
          checkb "cycle edge exists" true (Digraph.mem_edge g u v))
        cycle

let test_path_exists () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) [ (1, 2); (2, 3); (4, 1) ];
  checkb "path 4->3" true (Digraph.path_exists g 4 3);
  checkb "no path 3->4" false (Digraph.path_exists g 3 4);
  checkb "no empty path" false (Digraph.path_exists g 1 1)

let test_path_exists_early_exit () =
  (* A 100k-vertex chain where the target sits right next to the source:
     the search must stop at the first neighbour instead of materialising
     the whole reachable set. 300 calls complete far inside a generous
     CPU bound; the pre-early-exit implementation walked the full chain
     on every call and took tens of seconds. *)
  let g = Digraph.create () in
  let n = 100_000 in
  for i = 0 to n - 1 do
    Digraph.add_edge g i (i + 1)
  done;
  let t0 = Sys.time () in
  for _ = 1 to 300 do
    checkb "adjacent target found" true (Digraph.path_exists g 0 1)
  done;
  checkb "300 adjacent-target searches stay under 2s CPU" true
    (Sys.time () -. t0 < 2.0);
  checkb "full chain still reachable" true (Digraph.path_exists g 0 n);
  checkb "no reverse path" false (Digraph.path_exists g n 0)

let test_path_exists_from_any () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) [ (1, 2); (2, 3); (10, 11) ];
  checkb "second source reaches" true (Digraph.path_exists_from_any g [ 10; 1 ] 3);
  checkb "no source reaches" false (Digraph.path_exists_from_any g [ 10; 3 ] 1);
  checkb "no sources" false (Digraph.path_exists_from_any g [] 3);
  checkb "unknown source ignored" false (Digraph.path_exists_from_any g [ 99 ] 3);
  (* like path_exists, source = target needs an actual cycle *)
  checkb "source=target without loop" false (Digraph.path_exists_from_any g [ 3 ] 3);
  Digraph.add_edge g 3 3;
  checkb "self-loop closes it" true (Digraph.path_exists_from_any g [ 3 ] 3)

let test_scc_from () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v)
    [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5); (5, 4); (7, 7); (8, 9) ];
  let comps = List.sort compare (Digraph.scc_from g [ 1 ]) in
  checkb "components reachable from 1" true (comps = [ [ 1; 2; 3 ]; [ 4; 5 ] ]);
  checkb "unknown root skipped" true (Digraph.scc_from g [ 99 ] = []);
  checkil "on-cycle vertices from 1" [ 1; 2; 3; 4; 5 ]
    (Digraph.cyclic_vertices_from g [ 1 ]);
  checkil "self-loop is on-cycle" [ 7 ] (Digraph.cyclic_vertices_from g [ 7 ]);
  checkil "acyclic region has none" [] (Digraph.cyclic_vertices_from g [ 8 ]);
  (* seeding at every vertex matches the unrestricted on-cycle set *)
  checkil "all roots" [ 1; 2; 3; 4; 5; 7 ]
    (Digraph.cyclic_vertices_from g (Digraph.vertices g))

let test_cycles_through () =
  let g = Digraph.create () in
  (* two cycles through 1: 1-2-1 and 1-3-4-1; one cycle avoiding 1: 5-6-5 *)
  List.iter (fun (u, v) -> Digraph.add_edge g u v)
    [ (1, 2); (2, 1); (1, 3); (3, 4); (4, 1); (5, 6); (6, 5) ];
  let cycles = Digraph.cycles_through g 1 in
  checki "two cycles through 1" 2 (List.length cycles);
  List.iter (fun c -> checkb "starts at 1" true (List.hd c = 1)) cycles;
  checki "one cycle through 5" 1 (List.length (Digraph.cycles_through g 5))

let test_cycles_through_limit () =
  let g = Digraph.create () in
  (* complete digraph on 7 vertices: lots of cycles *)
  for u = 0 to 6 do
    for v = 0 to 6 do
      if u <> v then Digraph.add_edge g u v
    done
  done;
  let cycles = Digraph.cycles_through ~limit:5 g 0 in
  checki "respects limit" 5 (List.length cycles)

let test_cycles_through_budget () =
  let g = Digraph.create () in
  (* dense DAG: exponentially many paths, zero cycles *)
  for u = 0 to 15 do
    for v = u + 1 to 15 do
      Digraph.add_edge g u v
    done
  done;
  let cycles = Digraph.cycles_through ~limit:10 ~budget:10_000 g 0 in
  checki "no cycles, terminates fast" 0 (List.length cycles)

let test_forest_shape () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) [ (1, 2); (3, 2); (4, 3) ];
  checkb "inverted forest" true (Digraph.is_forest_inverted g);
  Digraph.add_edge g 2 5;
  checkb "still forest" true (Digraph.is_forest_inverted g);
  Digraph.add_edge g 2 6;
  checkb "out-degree 2 breaks it" false (Digraph.is_forest_inverted g)

let test_scc () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v)
    [ (1, 2); (2, 3); (3, 1); (3, 4); (4, 5); (5, 4) ];
  let comps = Digraph.scc g in
  let sorted = List.sort compare comps in
  checkb "components" true (sorted = [ [ 1; 2; 3 ]; [ 4; 5 ] ])

let test_topological_sort () =
  let g = Digraph.create () in
  List.iter (fun (u, v) -> Digraph.add_edge g u v) [ (1, 2); (1, 3); (3, 4); (2, 4) ];
  (match Digraph.topological_sort g with
  | None -> Alcotest.fail "expected topo order"
  | Some order ->
      let pos v =
        let rec idx i = function
          | [] -> assert false
          | x :: rest -> if x = v then i else idx (i + 1) rest
        in
        idx 0 order
      in
      List.iter
        (fun (u, v) -> checkb "edge respects order" true (pos u < pos v))
        (Digraph.edges g));
  Digraph.add_edge g 4 1;
  checkb "cyclic has none" true (Digraph.topological_sort g = None)

(* qcheck: has_cycle agrees with SCC-based oracle *)
let arbitrary_edges =
  QCheck.(list (pair (int_bound 7) (int_bound 7)))

let qcheck_cycle_vs_scc =
  QCheck.Test.make ~name:"has_cycle agrees with scc oracle" ~count:500
    arbitrary_edges (fun edges ->
      let g = Digraph.create () in
      List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
      let self_loop = List.exists (fun (u, v) -> u = v) (Digraph.edges g) in
      let oracle =
        self_loop
        || List.exists (fun c -> List.length c > 1) (Digraph.scc g)
      in
      Digraph.has_cycle g = oracle)

let qcheck_topo_iff_acyclic =
  QCheck.Test.make ~name:"topological_sort succeeds iff acyclic" ~count:500
    arbitrary_edges (fun edges ->
      let g = Digraph.create () in
      List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
      (Digraph.topological_sort g <> None) = not (Digraph.has_cycle g))

(* qcheck: the cached vertex/edge counters stay consistent with full
   enumeration under arbitrary add/remove churn, including remove_vertex
   tearing out incident edges and self-loops. *)
let qcheck_counts_vs_enumeration =
  QCheck.Test.make ~name:"cached counts match enumeration under churn"
    ~count:300
    QCheck.(list (triple (int_bound 2) (int_bound 5) (int_bound 5)))
    (fun ops ->
      let g = Digraph.create () in
      List.iter
        (fun (op, u, v) ->
          match op with
          | 0 -> Digraph.add_edge g u v
          | 1 -> Digraph.remove_edge g u v
          | _ -> Digraph.remove_vertex g u)
        ops;
      Digraph.n_edges g = List.length (Digraph.edges g)
      && Digraph.n_vertices g = List.length (Digraph.vertices g))

(* qcheck: path_exists_from_any is exactly the disjunction of per-source
   path_exists. *)
let qcheck_multi_source_vs_union =
  QCheck.Test.make ~name:"path_exists_from_any = exists path_exists"
    ~count:300
    QCheck.(pair arbitrary_edges (pair (list (int_bound 7)) (int_bound 7)))
    (fun (edges, (sources, target)) ->
      let g = Digraph.create () in
      List.iter (fun (u, v) -> Digraph.add_edge g u v) edges;
      Digraph.path_exists_from_any g sources target
      = List.exists (fun s -> Digraph.path_exists g s target) sources)

(* --- Ugraph --- *)

let test_ugraph_basics () =
  let g = Ugraph.create () in
  Ugraph.add_edge g 1 2;
  checkb "symmetric" true (Ugraph.mem_edge g 2 1);
  checkil "neighbours" [ 2 ] (Ugraph.neighbours g 1);
  Ugraph.remove_edge g 2 1;
  checkb "removed both ways" false (Ugraph.mem_edge g 1 2)

let test_ugraph_components () =
  let g = Ugraph.create () in
  Ugraph.add_edge g 1 2;
  Ugraph.add_edge g 3 4;
  Ugraph.add_vertex g 9;
  checkb "three components" true
    (Ugraph.connected_components g = [ [ 1; 2 ]; [ 3; 4 ]; [ 9 ] ]);
  checkb "not connected" false (Ugraph.is_connected g)

let test_articulation_chain () =
  let g = Ugraph.create () in
  for i = 0 to 4 do
    Ugraph.add_edge g i (i + 1)
  done;
  checkil "interior vertices are cut" [ 1; 2; 3; 4 ] (Ugraph.articulation_points g)

let test_articulation_cycle () =
  let g = Ugraph.create () in
  List.iter (fun (u, v) -> Ugraph.add_edge g u v) [ (0, 1); (1, 2); (2, 0) ];
  checkil "cycle has no cut vertex" [] (Ugraph.articulation_points g)

let test_articulation_bridge_of_cycles () =
  let g = Ugraph.create () in
  (* two triangles joined at vertex 2 *)
  List.iter (fun (u, v) -> Ugraph.add_edge g u v)
    [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ];
  checkil "shared vertex is cut" [ 2 ] (Ugraph.articulation_points g)

(* qcheck: articulation points vs brute force removal oracle *)
let qcheck_articulation_oracle =
  QCheck.Test.make ~name:"articulation points match removal oracle" ~count:300
    QCheck.(list (pair (int_bound 6) (int_bound 6)))
    (fun edges ->
      let g = Ugraph.create () in
      List.iter (fun (u, v) -> Ugraph.add_edge g u v) edges;
      let n_components h = List.length (Ugraph.connected_components h) in
      let oracle v =
        (* v is a cut vertex iff its removal strictly increases the
           number of components (isolated vertices decrease it, leaves
           keep it constant). *)
        let h = Ugraph.copy g in
        Ugraph.remove_vertex h v;
        n_components h > n_components g
      in
      let expected = List.filter oracle (Ugraph.vertices g) in
      Ugraph.articulation_points g = expected)

(* --- Cutset --- *)

let test_cutset_empty () =
  let inst = { Cutset.cycles = []; cost = (fun _ -> 1.0) } in
  checkb "empty instance" true (Cutset.exact inst = Some []);
  checkb "greedy empty" true (Cutset.greedy inst = [])

let test_cutset_single_cycle () =
  let inst =
    { Cutset.cycles = [ [ 1; 2; 3 ] ]; cost = (fun v -> float_of_int v) }
  in
  checkb "picks cheapest" true (Cutset.exact inst = Some [ 1 ])

let test_cutset_shared_vertex () =
  (* all cycles share vertex 1 which is cheap: cut = {1} *)
  let inst =
    {
      Cutset.cycles = [ [ 1; 2 ]; [ 1; 3 ]; [ 1; 4 ] ];
      cost = (fun v -> if v = 1 then 1.5 else 1.0);
    }
  in
  checkb "shared vertex wins" true (Cutset.exact inst = Some [ 1 ])

let test_cutset_prefers_split () =
  (* shared vertex too expensive: cut = the two others *)
  let inst =
    {
      Cutset.cycles = [ [ 1; 2 ]; [ 1; 3 ] ];
      cost = (fun v -> if v = 1 then 5.0 else 1.0);
    }
  in
  checkb "split cut" true (Cutset.exact inst = Some [ 2; 3 ])

let test_cutset_greedy_is_cut () =
  let inst =
    {
      Cutset.cycles = [ [ 1; 2; 3 ]; [ 3; 4 ]; [ 5; 1 ]; [ 2; 4; 5 ] ];
      cost = (fun v -> 1.0 +. (float_of_int v /. 10.0));
    }
  in
  checkb "greedy produces a cut" true (Cutset.is_cut inst (Cutset.greedy inst))

let qcheck_exact_beats_greedy =
  QCheck.Test.make ~name:"exact cut is a cut and costs <= greedy" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 5) (list_of_size (Gen.int_range 1 4) (int_bound 6)))
    (fun cycles ->
      let inst =
        { Cutset.cycles; cost = (fun v -> 1.0 +. float_of_int (v mod 3)) }
      in
      match Cutset.exact inst with
      | None -> QCheck.assume_fail ()
      | Some cut ->
          Cutset.is_cut inst cut
          && Cutset.total_cost inst cut
             <= Cutset.total_cost inst (Cutset.greedy inst) +. 1e-9)

let () =
  Alcotest.run "prb_graph"
    [
      ( "digraph",
        [
          Alcotest.test_case "edges" `Quick test_digraph_edges;
          Alcotest.test_case "remove vertex" `Quick test_digraph_remove_vertex;
          Alcotest.test_case "idempotent" `Quick test_digraph_idempotent_ops;
          Alcotest.test_case "copy isolation" `Quick test_digraph_copy_isolated;
        ] );
      ( "cycles",
        [
          Alcotest.test_case "detection" `Quick test_cycle_detection;
          Alcotest.test_case "self loop" `Quick test_self_loop_cycle;
          Alcotest.test_case "find_cycle valid" `Quick test_find_cycle_valid;
          Alcotest.test_case "path_exists" `Quick test_path_exists;
          Alcotest.test_case "path_exists early exit" `Quick
            test_path_exists_early_exit;
          Alcotest.test_case "path_exists_from_any" `Quick
            test_path_exists_from_any;
          Alcotest.test_case "scc_from seeds" `Quick test_scc_from;
          Alcotest.test_case "cycles through vertex" `Quick test_cycles_through;
          Alcotest.test_case "cycle limit" `Quick test_cycles_through_limit;
          Alcotest.test_case "exploration budget" `Quick test_cycles_through_budget;
          Alcotest.test_case "forest shape" `Quick test_forest_shape;
          Alcotest.test_case "scc" `Quick test_scc;
          Alcotest.test_case "topological sort" `Quick test_topological_sort;
          QCheck_alcotest.to_alcotest qcheck_cycle_vs_scc;
          QCheck_alcotest.to_alcotest qcheck_topo_iff_acyclic;
          QCheck_alcotest.to_alcotest qcheck_counts_vs_enumeration;
          QCheck_alcotest.to_alcotest qcheck_multi_source_vs_union;
        ] );
      ( "ugraph",
        [
          Alcotest.test_case "basics" `Quick test_ugraph_basics;
          Alcotest.test_case "components" `Quick test_ugraph_components;
          Alcotest.test_case "articulation: chain" `Quick test_articulation_chain;
          Alcotest.test_case "articulation: cycle" `Quick test_articulation_cycle;
          Alcotest.test_case "articulation: joined triangles" `Quick
            test_articulation_bridge_of_cycles;
          QCheck_alcotest.to_alcotest qcheck_articulation_oracle;
        ] );
      ( "cutset",
        [
          Alcotest.test_case "empty" `Quick test_cutset_empty;
          Alcotest.test_case "single cycle" `Quick test_cutset_single_cycle;
          Alcotest.test_case "shared vertex" `Quick test_cutset_shared_vertex;
          Alcotest.test_case "prefers split" `Quick test_cutset_prefers_split;
          Alcotest.test_case "greedy is cut" `Quick test_cutset_greedy_is_cut;
          QCheck_alcotest.to_alcotest qcheck_exact_beats_greedy;
        ] );
    ]
