(* Tests for the fault-injection and recovery layer: site crashes and
   lock-table rebuild, message-fault idempotence, detector-outage
   degradation, transaction crashes, replay determinism, and the chaos
   harness — including the deliberately broken recovery path (skipping
   the rebuild) that the harness must catch. *)

module Fault = Prb_fault.Fault
module Chaos = Prb_chaos.Chaos
module D = Prb_distrib.Dist_scheduler
module Scheduler = Prb_core.Scheduler
module Store = Prb_storage.Store
module Value = Prb_storage.Value
module Program = Prb_txn.Program
module Expr = Prb_txn.Expr
module History = Prb_history.History
module Lock_table = Prb_lock.Lock_table

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Plan plumbing ---------------------------------------------------- *)

let no_msg = { Fault.loss = 0.0; dup = 0.0; delay = 0.0; max_delay = 0 }

let test_plan_basics () =
  checkb "none is none" true (Fault.is_none Fault.none);
  checkb "a site crash makes it real" false
    (Fault.is_none
       {
         Fault.none with
         site_crashes = [ { Fault.site = 0; at = 5; downtime = 10 } ];
       });
  checki "backoff attempt 0" 10 (Fault.backoff Fault.default_timeouts ~attempt:0);
  checki "backoff attempt 3" 80 (Fault.backoff Fault.default_timeouts ~attempt:3);
  checki "backoff capped" 320 (Fault.backoff Fault.default_timeouts ~attempt:99);
  checkb "outage window" true
    (Fault.in_outage
       { Fault.none with detector_outages = [ { Fault.out_from = 10; out_until = 20 } ] }
       15);
  checkb "random plans deterministic" true
    (Fault.random ~n_sites:3 ~seed:5 ~horizon:400 ()
    = Fault.random ~n_sites:3 ~seed:5 ~horizon:400 ());
  checkb "random plans vary by seed" true
    (Fault.random ~n_sites:3 ~seed:5 ~horizon:400 ()
    <> Fault.random ~n_sites:3 ~seed:6 ~horizon:400 ())

(* --- A tiny two-site world ------------------------------------------- *)

(* Entities named "l*" live on site 0, "r*" on site 1. *)
let site_of e = if e.[0] = 'r' then 1 else 0

let two_site_store () =
  Store.of_list
    [ ("l0", Value.int 10); ("r0", Value.int 10) ]

let config ?(detection = D.Local_then_global 50) ?(max_ticks = 10_000) plan =
  {
    D.default_config with
    n_sites = 2;
    detection;
    max_ticks;
    faults = Some plan;
  }

let residual_rows locks =
  List.filter
    (fun e ->
      Lock_table.holders locks e <> [] || Lock_table.waiters locks e <> [])
    [ "l0"; "r0" ]

(* --- Site crash: partial rollback + recovery rebuild ------------------ *)

let test_site_crash_partial_rollback () =
  (* T0 (home 0) acquires the remote r0, then site 1 dies under it: the
     crash must roll T0 back to its last state not touching site 1, the
     rebuild must purge the dead row, and the retransmit path must let
     T0 reacquire and commit. *)
  let plan =
    {
      Fault.none with
      horizon = 500;
      site_crashes = [ { Fault.site = 1; at = 6; downtime = 30 } ];
      msg = no_msg;
    }
  in
  let store = two_site_store () in
  let sched = D.create ~site_of (config plan) store in
  let p =
    Program.make ~name:"t0" ~locals:[]
      [
        Program.lock_x "l0";
        Program.lock_x "r0";
        Program.write "l0" (Expr.int 1);
        Program.write "r0" (Expr.int 2);
      ]
  in
  ignore (D.submit sched ~home:0 p);
  D.run sched;
  let s = D.stats sched in
  checkb "all committed" true (D.all_committed sched);
  checki "one crash" 1 s.D.site_crashes;
  checki "one recovery" 1 s.D.site_recoveries;
  checkb "crash forced a rollback" true (s.D.rollbacks >= 1);
  checkb "rebuild purged the dead row" true (s.D.purged_locks >= 1);
  checkb "requests died with the site" true (s.D.msgs_lost >= 1);
  checkb "serializable" true (History.serializable (D.history sched));
  checkb "no residual locks" true (residual_rows (D.lock_table sched) = []);
  checkb "final writes installed" true
    (Value.as_int (Store.get store "r0") = 2
    && Value.as_int (Store.get store "l0") = 1)

let test_site_crash_during_deadlock () =
  (* Cross-site deadlock T0<->T1, then site 1 crashes mid-wait — before
     the global detector would have run. The crash restarts T1 (homed
     there), the rebuild cancels T0's dead queue entry, and both must
     still commit. *)
  let plan =
    {
      Fault.none with
      horizon = 500;
      site_crashes = [ { Fault.site = 1; at = 10; downtime = 25 } ];
      msg = no_msg;
    }
  in
  let store = two_site_store () in
  let sched = D.create ~site_of (config plan) store in
  let prog name first second =
    Program.make ~name ~locals:[]
      [
        Program.lock_x first;
        Program.lock_x second;
        Program.write first (Expr.int 7);
        Program.write second (Expr.int 8);
      ]
  in
  ignore (D.submit sched ~home:0 (prog "t0" "l0" "r0"));
  ignore (D.submit sched ~home:1 (prog "t1" "r0" "l0"));
  D.run sched;
  let s = D.stats sched in
  checkb "all committed" true (D.all_committed sched);
  checki "one crash" 1 s.D.site_crashes;
  checkb "serializable" true (History.serializable (D.history sched));
  checkb "no residual locks" true (residual_rows (D.lock_table sched) = [])

(* --- Message faults: duplication is idempotent ------------------------ *)

let test_duplicate_messages_idempotent () =
  (* Every message delivered twice: duplicate requests, grants and
     releases must all be absorbed without double-grants or phantom
     releases. *)
  let plan =
    {
      Fault.none with
      horizon = 5_000;
      msg = { Fault.loss = 0.0; dup = 1.0; delay = 0.0; max_delay = 0 };
    }
  in
  let store = two_site_store () in
  let sched = D.create ~site_of (config plan) store in
  let prog name first second =
    Program.make ~name ~locals:[]
      [
        Program.lock_x first;
        Program.lock_x second;
        Program.write first (Expr.int 3);
        Program.write second (Expr.int 4);
      ]
  in
  ignore (D.submit sched ~home:0 (prog "t0" "l0" "r0"));
  ignore (D.submit sched ~home:1 (prog "t1" "r0" "l0"));
  D.run sched;
  let s = D.stats sched in
  checkb "all committed" true (D.all_committed sched);
  checkb "duplicates actually happened" true (s.D.msgs_duplicated > 0);
  checkb "serializable" true (History.serializable (D.history sched));
  checkb "no residual locks" true (residual_rows (D.lock_table sched) = [])

(* --- Detector outage: degradation to timeout-abort -------------------- *)

let test_detector_outage_degrades () =
  (* A cross-site deadlock that only the global detector could see, and
     the detector is out: the engine must degrade to timeout-aborting
     long-blocked transactions, and still finish once the outage ends. *)
  let plan =
    {
      Fault.none with
      horizon = 5_000;
      detector_outages = [ { Fault.out_from = 0; out_until = 1_000 } ];
      msg = no_msg;
    }
  in
  let store = two_site_store () in
  let sched = D.create ~site_of (config ~max_ticks:50_000 plan) store in
  let prog name first second =
    Program.make ~name ~locals:[]
      [
        Program.lock_x first;
        Program.lock_x second;
        Program.write first (Expr.int 5);
        Program.write second (Expr.int 6);
      ]
  in
  ignore (D.submit sched ~home:0 (prog "t0" "l0" "r0"));
  ignore (D.submit sched ~home:1 (prog "t1" "r0" "l0"));
  D.run sched;
  let s = D.stats sched in
  checkb "all committed" true (D.all_committed sched);
  checkb "detector rounds were missed" true (s.D.missed_rounds >= 1);
  checkb "degraded mode aborted blocked txns" true (s.D.timeout_aborts >= 1);
  checkb "serializable" true (History.serializable (D.history sched));
  checkb "no residual locks" true (residual_rows (D.lock_table sched) = [])

(* A deadlock formed while the detector is out, under a deferred policy
   on the centralised engine: every scheduled sweep in the window is
   suppressed, so the blocked transactions overshoot the policy's stall
   bound — the watchdog must force a recovery sweep as soon as the
   detector is healthy again, and everything still commits. *)
let test_watchdog_fires_after_outage () =
  let module DP = Prb_core.Detection_policy in
  let plan =
    {
      Fault.none with
      horizon = 5_000;
      detector_outages = [ { Fault.out_from = 0; out_until = 400 } ];
      msg = no_msg;
    }
  in
  let store = Store.of_list [ ("a", Value.int 0); ("b", Value.int 0) ] in
  let config =
    {
      Scheduler.default_config with
      detection = DP.Periodic 16;
      faults = Some plan;
      max_ticks = 50_000;
    }
  in
  let sched = Scheduler.create ~config store in
  let prog name first second =
    Program.make ~name ~locals:[]
      [
        Program.lock_x first;
        Program.lock_x second;
        Program.write first (Expr.int 1);
        Program.write second (Expr.int 2);
      ]
  in
  ignore (Scheduler.submit sched (prog "t0" "a" "b"));
  ignore (Scheduler.submit sched (prog "t1" "b" "a"));
  Scheduler.run sched;
  let s = Scheduler.stats sched in
  checkb "all committed" true (Scheduler.all_committed sched);
  checkb "sweeps were suppressed" true (s.Scheduler.missed_passes >= 1);
  checkb "watchdog forced the recovery sweep" true
    (s.Scheduler.watchdog_fires >= 1);
  checkb "the deadlock was resolved, not timed out" true
    (s.Scheduler.deadlocks >= 1);
  checkb "serializable" true (History.serializable (Scheduler.history sched))

(* --- Transaction crashes (centralised engine) ------------------------- *)

let test_txn_crash_centralized () =
  let plan =
    {
      Fault.none with
      horizon = 500;
      txn_crashes = [ { Fault.crash_at = 4; victim = 0 } ];
      msg = no_msg;
    }
  in
  let store = Store.of_list [ ("a", Value.int 10); ("b", Value.int 10) ] in
  let config = { Scheduler.default_config with faults = Some plan } in
  let sched = Scheduler.create ~config store in
  (* padded with local work so the transactions are still growing when
     the crash fires at tick 4 *)
  let prog name e =
    Program.make ~name ~locals:[ ("x", Value.int 0) ]
      ([ Program.lock_x e ]
      @ List.init 4 (fun i -> Program.assign "x" (Expr.int i))
      @ [ Program.write e (Expr.int 9) ])
  in
  ignore (Scheduler.submit sched (prog "t0" "a"));
  ignore (Scheduler.submit sched (prog "t1" "b"));
  Scheduler.run sched;
  let s = Scheduler.stats sched in
  checkb "all committed" true (Scheduler.all_committed sched);
  checki "one txn crash" 1 s.Scheduler.txn_crashes;
  checkb "the crash rolled someone back" true (s.Scheduler.rollbacks >= 1);
  checkb "serializable" true
    (History.serializable (Scheduler.history sched))

(* --- Replay determinism under a messy plan ---------------------------- *)

let test_replay_determinism () =
  let plan =
    {
      Fault.none with
      horizon = 400;
      msg = { Fault.loss = 0.15; dup = 0.15; delay = 0.25; max_delay = 4 };
      site_crashes = [ { Fault.site = 1; at = 15; downtime = 40 } ];
      detector_outages = [ { Fault.out_from = 60; out_until = 200 } ];
    }
  in
  let run () =
    let store = two_site_store () in
    let sched = D.create ~site_of (config ~max_ticks:100_000 plan) store in
    let prog name first second =
      Program.make ~name ~locals:[]
        [
          Program.lock_x first;
          Program.lock_x second;
          Program.write first (Expr.int 11);
          Program.write second (Expr.int 12);
        ]
    in
    ignore (D.submit sched ~home:0 (prog "t0" "l0" "r0"));
    ignore (D.submit sched ~home:1 (prog "t1" "r0" "l0"));
    D.run sched;
    (D.stats sched, Store.snapshot store)
  in
  checkb "bit-for-bit replay" true (run () = run ())

(* --- The broken recovery path must be caught -------------------------- *)

(* T0 commits while site 1 is down, so its release of r0 is swallowed and
   reconciliation is left to the recovery rebuild. With the rebuild on,
   the phantom row is purged and T1 gets the lock; with the rebuild
   deliberately skipped (rebuild_locks = false) the committed phantom
   holds r0 forever and T1 wedges — exactly the failure class the chaos
   invariants (full commitment, empty lock table) exist to catch. *)
let broken_recovery_run ~rebuild_locks =
  let plan =
    {
      Fault.none with
      horizon = 500;
      site_crashes = [ { Fault.site = 1; at = 7; downtime = 30 } ];
      msg = no_msg;
      rebuild_locks;
    }
  in
  let store = two_site_store () in
  let sched = D.create ~site_of (config ~max_ticks:3_000 plan) store in
  (* T0: grabs r0, unlocks l0 to enter its shrinking phase before the
     crash (shrinking transactions are immune), then commits into the
     dead site. *)
  let t0 =
    Program.make ~name:"t0" ~locals:[]
      [
        Program.lock_x "r0";
        Program.lock_x "l0";
        Program.write "r0" (Expr.int 21);
        Program.unlock "l0";
      ]
  in
  (* T1: stalls on local work, then wants r0. *)
  let t1 =
    Program.make ~name:"t1" ~locals:[ ("x", Value.int 0) ]
      (List.init 6 (fun i -> Program.assign "x" (Expr.int i))
      @ [ Program.lock_x "r0"; Program.write "r0" (Expr.int 22) ])
  in
  ignore (D.submit sched ~home:0 t0);
  ignore (D.submit sched ~home:0 t1);
  D.run sched;
  sched

let test_rebuild_recovers () =
  let sched = broken_recovery_run ~rebuild_locks:true in
  checkb "all committed with rebuild" true (D.all_committed sched);
  checkb "phantom row purged" true ((D.stats sched).D.purged_locks >= 1);
  checkb "no residual locks" true (residual_rows (D.lock_table sched) = [])

let test_broken_rebuild_caught () =
  let sched = broken_recovery_run ~rebuild_locks:false in
  checkb "stuck transactions detected" false (D.all_committed sched);
  checkb "orphaned lock detected" true
    (residual_rows (D.lock_table sched) <> [])

(* --- The chaos sweep -------------------------------------------------- *)

let test_chaos_sweep () =
  (* >= 50 randomized (seed, fault plan) combinations across both
     engines; every invariant must hold on every one. *)
  let reports = Chaos.sweep ~seeds:25 () in
  checki "50 combinations" 50 (List.length reports);
  let bad = Chaos.failures reports in
  List.iter (fun r -> Fmt.epr "chaos failure: %a@." Chaos.pp_report r) bad;
  checkb "all chaos runs clean" true (bad = []);
  checkb "chaos actually injected faults" true
    (List.exists (fun r -> r.Chaos.faults_seen > 0) reports)

let test_chaos_policy_matrix () =
  (* every detection policy × detector-outage × engine: runs must stay
     deterministic, fully committed, orphan-free and starvation-free *)
  let reports = Chaos.policy_matrix ~seeds:2 () in
  checki "2 seeds x 4 policies x outage on/off x 2 engines" 32
    (List.length reports);
  let bad = Chaos.failures reports in
  List.iter (fun r -> Fmt.epr "chaos failure: %a@." Chaos.pp_report r) bad;
  checkb "all policy-matrix runs clean" true (bad = []);
  checkb "outage plans actually injected faults" true
    (List.exists (fun r -> r.Chaos.faults_seen > 0) reports)

let () =
  Alcotest.run "prb_fault"
    [
      ( "plan",
        [
          Alcotest.test_case "basics" `Quick test_plan_basics;
        ] );
      ( "site crash",
        [
          Alcotest.test_case "partial rollback + rebuild" `Quick
            test_site_crash_partial_rollback;
          Alcotest.test_case "crash during deadlock" `Quick
            test_site_crash_during_deadlock;
        ] );
      ( "messages",
        [
          Alcotest.test_case "duplicates idempotent" `Quick
            test_duplicate_messages_idempotent;
        ] );
      ( "detector outage",
        [
          Alcotest.test_case "degrades to timeout-abort" `Quick
            test_detector_outage_degrades;
          Alcotest.test_case "watchdog fires after outage" `Quick
            test_watchdog_fires_after_outage;
        ] );
      ( "txn crash",
        [
          Alcotest.test_case "centralized crash + readmit" `Quick
            test_txn_crash_centralized;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "replay bit-for-bit" `Quick
            test_replay_determinism;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "rebuild recovers" `Quick test_rebuild_recovers;
          Alcotest.test_case "broken rebuild caught" `Quick
            test_broken_rebuild_caught;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "sweep 50 plans" `Slow test_chaos_sweep;
          Alcotest.test_case "policy x outage matrix" `Slow
            test_chaos_policy_matrix;
        ] );
    ]
