(* Smoke test for the umbrella [Prb] module: the re-exports compose into
   the README's quickstart. *)

open Prb

let checkb = Alcotest.(check bool)

let test_umbrella_quickstart () =
  let store = Store.of_list [ ("a", Value.int 100); ("b", Value.int 100) ] in
  let sched = Scheduler.create store in
  let program name src dst amount =
    Program.make ~name
      ~locals:[ ("bal", Value.int 0) ]
      [
        Program.lock_x src;
        Program.read src "bal";
        Program.write src Expr.(var "bal" - int amount);
        Program.lock_x dst;
        Program.read dst "bal";
        Program.write dst Expr.(var "bal" + int amount);
      ]
  in
  let _ = Scheduler.submit sched (program "ab" "a" "b" 10) in
  let _ = Scheduler.submit sched (program "ba" "b" "a" 25) in
  Scheduler.run sched;
  checkb "all committed" true (Scheduler.all_committed sched);
  checkb "serializable" true (History.serializable (Scheduler.history sched));
  checkb "conserved" true
    (Value.as_int (Store.get store "a") + Value.as_int (Store.get store "b")
    = 200)

let test_umbrella_surface () =
  (* touch one item from every re-exported module so a missing export is
     a compile error here *)
  checkb "strategy" true (Strategy.to_string Strategy.Sdg = "sdg");
  checkb "policy" true (Policy.of_string "youngest" = Some Policy.Youngest);
  checkb "detection policy" true
    (Detection_policy.of_string "periodic:32"
    = Some (Detection_policy.Periodic 32));
  checkb "zipf" true (Zipf.n (Zipf.make ~n:3 ~theta:0.5) = 3);
  checkb "rng" true (Rng.int (Rng.make 1) 10 < 10);
  checkb "digraph" true (Digraph.n_vertices (Digraph.create ()) = 0);
  checkb "ugraph" true (Ugraph.n_vertices (Ugraph.create ()) = 0);
  checkb "cutset" true (Cutset.greedy { Cutset.cycles = []; cost = (fun _ -> 1.) } = []);
  checkb "heap" true (Heap.is_empty (Heap.create () : int Heap.t));
  checkb "stats" true (Stats.count (Stats.create ()) = 0);
  checkb "table" true (String.length (Table.render (Table.create [ ("x", Table.Left) ])) > 0);
  checkb "lock table" true (Lock_table.is_fair (Lock_table.create ()));
  checkb "waits-for" true (Waits_for.txns (Waits_for.create ()) = []);
  checkb "history stack" true
    (Value.equal
       (History_stack.current
          (History_stack.create ~budget:1 ~created_at:0 ~initial:(Value.int 7)))
       (Value.int 7));
  checkb "allocation" true (Allocation.lookup [] "G:x" = 0);
  checkb "parser" true
    (match Parser.parse "transaction t\n  lockX(a)\n" with
    | Ok p -> p.Program.name = "t"
    | Error _ -> false);
  checkb "sdg view" true
    (Sdg_view.well_defined_states
       (Program.make ~name:"p" ~locals:[] [ Program.lock_x "a" ])
    = [ 0; 1 ]);
  checkb "generator" true
    (List.length (Generator.generate Generator.default_params ~seed:1 ~n:2) = 2);
  checkb "scenarios" true
    (Program.validate (Scenarios.transfer ~name:"t" ~from_acct:0 ~to_acct:1 ~amount:1)
    = Ok ());
  checkb "dist scheduler config" true
    (Dist_scheduler.default_config.Dist_scheduler.n_sites = 4);
  checkb "dist sim config" true (Dist_sim.default_config.Dist_sim.mpl = 8);
  checkb "txn id" true (Txn_id.equal 3 3 && Txn_id.compare 1 2 < 0);
  checkb "site id" true (Site_id.equal 0 0 && Site_id.compare 2 1 > 0);
  checkb "util" true
    (let tbl = Hashtbl.create 4 in
     Hashtbl.replace tbl 2 "b";
     Hashtbl.replace tbl 1 "a";
     Util.sorted_bindings Int.compare tbl = [ (1, "a"); (2, "b") ]);
  checkb "lint" true (Lint.rule_of_id "d1" = Some Lint.D1)

let () =
  Alcotest.run "prb_umbrella"
    [
      ( "umbrella",
        [
          Alcotest.test_case "quickstart composes" `Quick test_umbrella_quickstart;
          Alcotest.test_case "surface complete" `Quick test_umbrella_surface;
        ] );
    ]
