(* Tests for Prb_history: the conflict-serializability oracle — both the
   streaming checker and its agreement with the retained naive
   construction. *)

module History = Prb_history.History
module Naive = Prb_history.History_naive
module Digraph = Prb_graph.Digraph
module Rng = Prb_util.Rng
module Lock_mode = Prb_txn.Lock_mode

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let s = Lock_mode.Shared
let x = Lock_mode.Exclusive

let test_serial_history () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:5 1 "a";
  History.commit_txn h 1;
  History.note_grant h ~tick:6 2 "a" x;
  History.note_release h ~tick:9 2 "a";
  History.commit_txn h 2;
  checkb "serializable" true (History.serializable h);
  checkb "order 1 then 2" true
    (History.equivalent_serial_order h = Some [ 1; 2 ])

let test_shared_reads_commute () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" s;
  History.note_grant h ~tick:1 2 "a" s;
  History.note_release h ~tick:5 1 "a";
  History.note_release h ~tick:6 2 "a";
  History.commit_txn h 1;
  History.commit_txn h 2;
  checkb "S/S overlap fine" true (History.serializable h);
  checkb "no precedence edge" true
    (Prb_graph.Digraph.n_edges (History.precedence_graph h) = 0)

let test_overlapping_conflict_detected () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_grant h ~tick:2 2 "a" x (* impossible under a correct lock
                                          manager — the oracle must flag it *);
  History.note_release h ~tick:5 1 "a";
  History.note_release h ~tick:6 2 "a";
  History.commit_txn h 1;
  History.commit_txn h 2;
  checki "one overlap" 1 (List.length (History.overlapping_conflicts h));
  checkb "not serializable" false (History.serializable h)

let test_cyclic_precedence () =
  let h = History.create () in
  (* T1 before T2 on a; T2 before T1 on b: classic non-serializable. *)
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  History.note_grant h ~tick:2 2 "a" x;
  History.note_release h ~tick:3 2 "a";
  History.note_grant h ~tick:2 2 "b" x;
  History.note_release h ~tick:3 2 "b";
  History.note_grant h ~tick:4 1 "b" x;
  History.note_release h ~tick:5 1 "b";
  History.commit_txn h 1;
  History.commit_txn h 2;
  checkb "cycle -> not serializable" false (History.serializable h);
  checkb "no serial order" true (History.equivalent_serial_order h = None)

let test_discard_erases () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.discard h 1 "a" (* partial rollback released it *);
  History.note_release h ~tick:9 1 "a" (* release after discard: no-op *);
  History.commit_txn h 1;
  checkb "no trace" true (History.committed h = [])

let test_discard_txn () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  History.note_grant h ~tick:2 1 "b" x;
  History.discard_txn h 1;
  History.commit_txn h 1;
  checkb "everything gone" true (History.committed h = [])

let test_commit_with_open_interval_rejected () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  Alcotest.check_raises "open interval"
    (Invalid_argument "History.commit_txn: transaction still holds a lock")
    (fun () -> History.commit_txn h 1)

let test_uncommitted_excluded () =
  let h = History.create () in
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  (* never committed *)
  checkb "nothing committed" true (History.committed h = []);
  checkb "vacuously serializable" true (History.serializable h)

let test_relock_after_rollback () =
  let h = History.create () in
  (* grant, discard (rollback), re-grant later: only the second interval
     survives *)
  History.note_grant h ~tick:0 1 "a" x;
  History.discard h 1 "a";
  History.note_grant h ~tick:10 1 "a" x;
  History.note_release h ~tick:12 1 "a";
  History.commit_txn h 1;
  (match History.committed h with
  | [ i ] ->
      checki "second grant tick" 10 i.History.granted_at;
      checki "release tick" 12 i.History.released_at
  | _ -> Alcotest.fail "expected exactly one interval")

(* --- Streaming-specific behaviour ------------------------------------ *)

let test_prefix_folding () =
  let h = History.create () in
  (* Three strictly sequential writers on "a". After each later commit the
     earlier transaction is quiescent with no retained predecessor, so it
     folds out of the retained window. *)
  History.note_grant h ~tick:0 1 "a" x;
  History.note_release h ~tick:1 1 "a";
  History.commit_txn h 1;
  History.note_grant h ~tick:2 2 "a" x;
  History.note_release h ~tick:3 2 "a";
  History.commit_txn h 2;
  History.note_grant h ~tick:4 3 "a" x;
  History.note_release h ~tick:5 3 "a";
  History.commit_txn h 3;
  checki "folded prefix" 2 (History.n_folded h);
  checki "one txn retained" 1 (History.n_retained_txns h);
  checki "one interval retained" 1 (History.n_retained_intervals h);
  checkb "witness spans folded and retained" true
    (History.equivalent_serial_order h = Some [ 1; 2; 3 ]);
  checkb "still serializable" true (History.serializable h)

let test_live_txn_blocks_folding () =
  let h = History.create () in
  History.note_grant h ~tick:0 9 "z" x (* early grant, never finishes *);
  History.note_grant h ~tick:1 1 "a" x;
  History.note_release h ~tick:2 1 "a";
  History.commit_txn h 1;
  History.note_grant h ~tick:3 2 "a" x;
  History.note_release h ~tick:4 2 "a";
  History.commit_txn h 2;
  (* T9's open interval pins the watermark at tick 0: nothing may fold,
     because T9 could still commit an interval conflicting with anything. *)
  checki "nothing folded" 0 (History.n_folded h);
  checki "both retained" 2 (History.n_retained_txns h);
  (* Once T9 disappears the next commit reclaims the backlog. *)
  History.discard_txn h 9;
  History.note_grant h ~tick:5 3 "a" x;
  History.note_release h ~tick:6 3 "a";
  History.commit_txn h 3;
  checki "backlog folded" 2 (History.n_folded h);
  checkb "witness intact" true
    (History.equivalent_serial_order h = Some [ 1; 2; 3 ])

let test_bounded_retention_long_run () =
  let h = History.create () in
  let n = 200 in
  for i = 1 to n do
    let tick = 2 * i in
    History.note_grant h ~tick i "a" x;
    History.note_grant h ~tick:(tick + 1) i "b" s;
    History.note_release h ~tick:(tick + 1) i "a";
    History.note_release h ~tick:(tick + 1) i "b";
    History.commit_txn h i
  done;
  checkb "serializable" true (History.serializable h);
  checkb "retention stays O(active window), not O(run)" true
    (History.n_retained_intervals h <= 4);
  checki "everything else folded" (n - History.n_retained_txns h)
    (History.n_folded h);
  checkb "witness is the full serial order" true
    (History.equivalent_serial_order h = Some (List.init n (fun i -> i + 1)))

(* --- Differential property vs the naive construction ------------------ *)

(* Replay one random API trace into both implementations. Ticks are
   monotone (the engines' precondition), transaction ids are never
   reused, and the trace mixes S/X grants, releases, discards, whole-txn
   discards and commits — including lock-manager-impossible overlapping
   X grants, which must be flagged identically. *)
let replay_random_trace seed =
  let rng = Rng.make seed in
  let stream = History.create () in
  let naive = Naive.create () in
  let entities = [| "a"; "b"; "c"; "d" |] in
  let tick = ref 0 in
  let next_id = ref 0 in
  (* id -> entities with an open interval *)
  let open_of : (int, string list ref) Hashtbl.t = Hashtbl.create 16 in
  let active = ref [] in
  let bump () = if Rng.chance rng 0.7 then incr tick in
  let grant id =
    let e = entities.(Rng.int rng (Array.length entities)) in
    let m = if Rng.chance rng 0.4 then s else x in
    bump ();
    History.note_grant stream ~tick:!tick id e m;
    Naive.note_grant naive ~tick:!tick id e m;
    let l = Hashtbl.find open_of id in
    if not (List.mem e !l) then l := e :: !l
  in
  let steps = 30 + Rng.int rng 50 in
  for _ = 1 to steps do
    match Rng.int rng 10 with
    | 0 | 1 when List.length !active < 6 ->
        incr next_id;
        let id = !next_id in
        Hashtbl.replace open_of id (ref []);
        active := id :: !active;
        grant id
    | 2 | 3 | 4 | 5 -> (
        match !active with
        | [] -> ()
        | l -> grant (List.nth l (Rng.int rng (List.length l))))
    | 6 | 7 -> (
        (* release or discard one open interval *)
        match !active with
        | [] -> ()
        | l -> (
            let id = List.nth l (Rng.int rng (List.length l)) in
            let opens = Hashtbl.find open_of id in
            match !opens with
            | [] -> ()
            | e :: rest ->
                opens := rest;
                if Rng.chance rng 0.75 then begin
                  bump ();
                  History.note_release stream ~tick:!tick id e;
                  Naive.note_release naive ~tick:!tick id e
                end
                else begin
                  History.discard stream id e;
                  Naive.discard naive id e
                end))
    | 8 -> (
        (* commit: close every open interval first *)
        match !active with
        | [] -> ()
        | l ->
            let id = List.nth l (Rng.int rng (List.length l)) in
            let opens = Hashtbl.find open_of id in
            List.iter
              (fun e ->
                bump ();
                History.note_release stream ~tick:!tick id e;
                Naive.note_release naive ~tick:!tick id e)
              !opens;
            opens := [];
            active := List.filter (fun i -> i <> id) !active;
            Hashtbl.remove open_of id;
            History.commit_txn stream id;
            Naive.commit_txn naive id)
    | _ -> (
        match !active with
        | [] -> ()
        | l ->
            let id = List.nth l (Rng.int rng (List.length l)) in
            active := List.filter (fun i -> i <> id) !active;
            Hashtbl.remove open_of id;
            History.discard_txn stream id;
            Naive.discard_txn naive id)
  done;
  (* Drain: commit every still-active transaction. *)
  List.iter
    (fun id ->
      let opens = Hashtbl.find open_of id in
      List.iter
        (fun e ->
          bump ();
          History.note_release stream ~tick:!tick id e;
          Naive.note_release naive ~tick:!tick id e)
        !opens;
      History.commit_txn stream id;
      Naive.commit_txn naive id)
    !active;
  (stream, naive)

let sorted_pairs l =
  List.sort compare
    (List.map
       (fun ((a : History.interval), (b : History.interval)) ->
         (a.txn, a.entity, a.granted_at, b.txn, b.entity, b.granted_at))
       l)

(* The streaming witness need not be the naive one (several linear
   extensions can be valid); it must cover exactly the naive vertex set
   and linearise every naive edge. *)
let valid_witness order naive_graph =
  let position = Hashtbl.create 32 in
  List.iteri (fun i v -> Hashtbl.replace position v i) order;
  List.sort_uniq Int.compare order = Digraph.vertices naive_graph
  && List.for_all
       (fun (u, v) -> Hashtbl.find position u < Hashtbl.find position v)
       (Digraph.edges naive_graph)

let streaming_agrees_with_naive seed =
  let stream, naive = replay_random_trace seed in
  let verdict_agrees = History.serializable stream = Naive.serializable naive in
  let overlaps_agree =
    sorted_pairs (History.overlapping_conflicts stream)
    = sorted_pairs (Naive.overlapping_conflicts naive)
  in
  let witness_ok =
    match
      (History.equivalent_serial_order stream, Naive.equivalent_serial_order naive)
    with
    | None, None -> true
    | Some order, Some _ -> valid_witness order (Naive.precedence_graph naive)
    | Some _, None | None, Some _ -> false
  in
  verdict_agrees && overlaps_agree && witness_ok

let qcheck_streaming_vs_naive =
  QCheck.Test.make ~count:300 ~name:"streaming checker agrees with naive"
    QCheck.small_nat streaming_agrees_with_naive

let () =
  Alcotest.run "prb_history"
    [
      ( "serializability",
        [
          Alcotest.test_case "serial history" `Quick test_serial_history;
          Alcotest.test_case "shared reads commute" `Quick test_shared_reads_commute;
          Alcotest.test_case "overlap detection" `Quick test_overlapping_conflict_detected;
          Alcotest.test_case "cyclic precedence" `Quick test_cyclic_precedence;
        ] );
      ( "rollback bookkeeping",
        [
          Alcotest.test_case "discard erases" `Quick test_discard_erases;
          Alcotest.test_case "discard txn" `Quick test_discard_txn;
          Alcotest.test_case "open interval rejected" `Quick
            test_commit_with_open_interval_rejected;
          Alcotest.test_case "uncommitted excluded" `Quick test_uncommitted_excluded;
          Alcotest.test_case "relock after rollback" `Quick test_relock_after_rollback;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "prefix folding" `Quick test_prefix_folding;
          Alcotest.test_case "live txn blocks folding" `Quick
            test_live_txn_blocks_folding;
          Alcotest.test_case "bounded retention" `Quick
            test_bounded_retention_long_run;
          QCheck_alcotest.to_alcotest qcheck_streaming_vs_naive;
        ] );
    ]
