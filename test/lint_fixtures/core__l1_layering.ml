(* Fires exactly L1: lib/core must not reach into the simulation stack. *)
let default_trace () = Prb_sim.Sim.run_default ()
