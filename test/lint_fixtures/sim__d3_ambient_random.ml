(* Fires exactly D3: ambient randomness breaks fixed-seed replay. *)
let jitter () =
  Random.self_init ();
  Random.int 100
