(* Clean on every rule: sorted traversal, explicit comparators, no ambient
   state. What the rest of the tree is supposed to look like. *)
let sorted_sum (tbl : (int, int) Hashtbl.t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.fold_left (fun acc (_, v) -> acc + v) 0

let same (a : int) (b : int) = Int.equal a b
