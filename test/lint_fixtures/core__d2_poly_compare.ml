(* Fires exactly D2: polymorphic compare where an id module owns the order. *)
let sort_ids (ids : int list) = List.sort compare ids
