(* Fires exactly D3: wall clock outside the opt-in detection clock. *)
let stamp () = Unix.gettimeofday ()
