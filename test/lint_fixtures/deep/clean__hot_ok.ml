(* Deep fixture: allocation-free hot code in the approved shape —
   int-annotated parameters, closed top-level recursion, in-place array
   updates. Must produce no findings. *)

let[@hot] bump (a : int array) i = a.(i) <- a.(i) + 1

let rec sum_from (a : int array) i acc =
  if i < 0 then acc else sum_from a (i - 1) (acc + a.(i))

let[@hot] total (a : int array) = sum_from a (Array.length a - 1) 0
