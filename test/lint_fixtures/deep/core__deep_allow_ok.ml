(* Deep fixture: rationale-backed suppressions. A binding-level allow
   cuts the whole definition out of the hot closure; an expression-level
   allow cuts just its subtree. Both carry rationales, so the unit is
   clean. *)

let[@lint.allow
     "A1: test boundary — this helper allocates its report by design"]
    report x =
  Some x

let[@hot] tick x =
  let r = report x in
  (match r with Some v -> v | None -> 0)
  + (List.length [ x ] [@lint.allow "A1: cold diagnostics subtree"])
