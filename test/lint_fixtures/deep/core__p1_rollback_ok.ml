(* Deep fixture: the partial-rollback exception. Reacquiring after a
   release is exactly what the paper's rollback layer does — calls that
   reach the lock table through a [Rollback] component are exempt from
   P1, so this unit must come back clean. *)

module Lock_table = struct
  let request (_ : int) (_ : int) (_ : string) = true
  let release (_ : int) (_ : int) (_ : string) = ()
end

module Rollback = struct
  let reacquire tbl txn e = ignore (Lock_table.request tbl txn e)
end

let ok tbl txn =
  Lock_table.release tbl txn "a";
  Rollback.reacquire tbl txn "a"
