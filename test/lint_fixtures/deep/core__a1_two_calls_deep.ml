(* Deep fixture: the allocation sits two calls below the [@hot] root —
   tick -> mid -> leaf — so flagging it requires the transitive
   call-graph closure, and the finding must carry the provenance chain. *)

let leaf n = [ n ]
let mid n = leaf (n + 1)
let[@hot] tick n = mid n
