(* Deep fixture: a bare [@lint.allow "A1"] with no rationale must be
   rejected — suppression of a deep rule requires a written reason. *)

let[@lint.allow "A1"] f x = (x, x)
let use = f
