(* Deep fixture: the seeded A1 positive from ISSUE 8 — a scheduler-tick
   shaped [@hot] function whose report helper allocates a tuple. The
   closed tail-recursive [drain] loop must NOT be flagged: it captures
   nothing, so the compiler compiles it statically. *)

let mk_report a b = (a, b)

let rec drain i acc = if i = 0 then acc else drain (i - 1) (acc + 1)

let[@hot] tick state =
  let n = drain 4 0 in
  state := n;
  mk_report n (n + 1)
