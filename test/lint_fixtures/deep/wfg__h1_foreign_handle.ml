(* Deep fixture: H1 positive — this unit never calls [Slots.create], so
   it does not own an arena and has no business minting slot handles. *)

module Slots = struct
  let alloc (_ : int) = 7
end

let grab arena = Slots.alloc arena
