(* Deep fixture: H1 positives inside an arena-owner unit. Owning the
   arena (calling [Slots.create]) licenses API calls, but a handle may
   still not escape into a mutable field, and [Array.unsafe_*] stays
   confined to lib/util. *)

module Slots = struct
  let create () = 0
  let alloc (_ : int) = 7
  let handle (_ : int) (s : int) = s
end

type cell = { mutable h : int }

let make () = Slots.create ()

let stash (c : cell) arena =
  let h = Slots.handle arena 3 in
  c.h <- h

let peek (a : int array) = Array.unsafe_get a 0
