(* Deep fixture: P1 positives. A transaction that releases a lock and
   then requests another violates two-phase discipline — both when the
   release is a direct [Lock_table] call and when it hides behind a
   helper whose released-parameter summary must flow interprocedurally. *)

module Lock_table = struct
  let request (_ : int) (_ : int) (_ : string) = true
  let release (_ : int) (_ : int) (_ : string) = ()
end

let shed tbl txn = Lock_table.release tbl txn "b"

let direct tbl txn =
  Lock_table.release tbl txn "a";
  Lock_table.request tbl txn "a"

let via_helper tbl txn =
  shed tbl txn;
  Lock_table.request tbl txn "c"
