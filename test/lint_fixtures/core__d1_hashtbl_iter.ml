(* Fires exactly D1: hash-order traversal in a replay-critical library. *)
let sum_sizes (tbl : (int, int list) Hashtbl.t) =
  let n = ref 0 in
  Hashtbl.iter (fun _ vs -> n := !n + List.length vs) tbl;
  !n
