(* Clean: the one real D1 hit is suppressed with the documented escape
   hatch, and the rest of the file is ordinary deterministic code. *)
let count (tbl : (int, int) Hashtbl.t) =
  Hashtbl.fold (fun _ _ n -> n + 1) tbl 0
[@@lint.allow "D1"]

let double xs = List.map (fun x -> x * 2) xs
