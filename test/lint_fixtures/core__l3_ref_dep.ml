(* Fixture: L3 — production code must not depend on a *_ref reference
   module; those exist only as differential-test oracles. *)

let oracle () = Heap_ref.create ()
