(* Fires exactly L2: a catch-all arm on the protocol message type means a
   new message variant would be silently dropped here. *)
type event = Req_arrive of int | Grant_arrive of int | Crash of int

let is_request = function Req_arrive _ -> true | _ -> false
